#include <gtest/gtest.h>

#include "benchmarks/classic.hpp"
#include "benchmarks/extra.hpp"
#include "benchmarks/random_dfg.hpp"
#include "benchmarks/suite.hpp"
#include "core/engine.hpp"
#include "dfg/analysis.hpp"
#include "core/optimizer.hpp"
#include "trojan/exec.hpp"
#include "vendor/catalogs.hpp"

namespace ht::benchmarks {
namespace {

using dfg::ResourceClass;

struct Expected {
  const char* name;
  int ops;
  int critical_path;
  int adders;
  int multipliers;
  int alus;
};

class ClassicBenchmarkTest : public ::testing::TestWithParam<Expected> {};

// Operation counts are the paper's Section 5 figures; critical paths are
// bounded by the tightest lambda of Tables 3/4 for each benchmark.
INSTANTIATE_TEST_SUITE_P(
    PaperSuite, ClassicBenchmarkTest,
    ::testing::Values(Expected{"polynom", 5, 3, 2, 3, 0},
                      Expected{"diff2", 11, 4, 4, 6, 1},
                      Expected{"dtmf", 11, 4, 6, 3, 2},
                      Expected{"mof2", 12, 7, 5, 7, 0},
                      Expected{"ellipticicass", 29, 8, 21, 8, 0},
                      Expected{"fir16", 31, 5, 15, 16, 0}),
    [](const auto& info) { return std::string(info.param.name); });

TEST_P(ClassicBenchmarkTest, MatchesPaperShape) {
  const Expected& expected = GetParam();
  const dfg::Dfg graph = by_name(expected.name).factory();
  graph.validate();
  EXPECT_EQ(graph.num_ops(), expected.ops);
  EXPECT_EQ(dfg::critical_path_length(graph), expected.critical_path);
  const auto counts = graph.ops_per_class();
  EXPECT_EQ(counts[static_cast<int>(ResourceClass::kAdder)],
            expected.adders);
  EXPECT_EQ(counts[static_cast<int>(ResourceClass::kMultiplier)],
            expected.multipliers);
  EXPECT_EQ(counts[static_cast<int>(ResourceClass::kAlu)], expected.alus);
}

TEST_P(ClassicBenchmarkTest, HasOutputsAndConnectedOps) {
  const dfg::Dfg graph = by_name(GetParam().name).factory();
  EXPECT_FALSE(graph.outputs().empty());
  // Every non-output op feeds something (no dead computation).
  for (dfg::OpId op = 0; op < graph.num_ops(); ++op) {
    const bool is_output =
        std::find(graph.outputs().begin(), graph.outputs().end(), op) !=
        graph.outputs().end();
    EXPECT_TRUE(is_output || !graph.children(op).empty())
        << "dangling op " << graph.op(op).name;
  }
}

TEST_P(ClassicBenchmarkTest, TightestTable3LambdaIsSchedulable) {
  const BenchmarkCase& entry = by_name(GetParam().name);
  const dfg::Dfg graph = entry.factory();
  int tightest = entry.table3.front().lambda;
  for (const TableRow& row : entry.table3) {
    tightest = std::min(tightest, row.lambda);
  }
  EXPECT_LE(dfg::critical_path_length(graph), tightest);
}

TEST_P(ClassicBenchmarkTest, Table4LambdaFitsBothPhases) {
  const BenchmarkCase& entry = by_name(GetParam().name);
  const int cp = dfg::critical_path_length(entry.factory());
  for (const TableRow& row : entry.table4) {
    EXPECT_GE(row.lambda, 2 * cp) << "row lambda " << row.lambda;
  }
}

TEST(SuiteTest, SixBenchmarksInPaperOrder) {
  const auto& suite = paper_suite();
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0].name, "polynom");
  EXPECT_EQ(suite[5].name, "fir16");
  for (const auto& entry : suite) {
    EXPECT_EQ(entry.table3.size(), 2u);
    EXPECT_EQ(entry.table4.size(), 2u);
  }
}

TEST(SuiteTest, UnknownNameThrows) {
  EXPECT_THROW(by_name("nonexistent"), util::SpecError);
}

// ---- functional spot checks (the graphs compute what they claim) ---------

TEST(FunctionalTest, PolynomComputesAbPlusCdPlusCde) {
  const dfg::Dfg graph = polynom();
  // inputs a,b,c,d,e
  const std::vector<trojan::Word> inputs = {2, 3, 5, 7, 11};
  const auto values = trojan::golden_eval(graph, inputs);
  const trojan::Word expected = 2 * 3 + 5 * 7 + (5 * 7) * 11;
  EXPECT_EQ(values[static_cast<std::size_t>(graph.outputs()[0])], expected);
}

TEST(FunctionalTest, Fir16ComputesDotProduct) {
  const dfg::Dfg graph = fir16();
  std::vector<trojan::Word> inputs;
  trojan::Word expected = 0;
  for (int i = 0; i < 16; ++i) {
    const trojan::Word x = i + 1;
    const trojan::Word h = 2 * i + 1;
    inputs.push_back(x);
    inputs.push_back(h);
    expected += x * h;
  }
  const auto values = trojan::golden_eval(graph, inputs);
  EXPECT_EQ(values[static_cast<std::size_t>(graph.outputs()[0])], expected);
}

TEST(FunctionalTest, Diff2EulerStep) {
  const dfg::Dfg graph = diff2();
  // x=1, y=2, u=3, dx=4, a=10
  const auto values = trojan::golden_eval(graph, {1, 2, 3, 4, 10});
  // u' = u - (3x)(u dx) - (3y)dx = 3 - 3*12 - 6*4 = -57
  // x' = 5, y' = 2 + 12 = 14, cont = (5 < 10) = 1
  std::vector<trojan::Word> outputs;
  for (dfg::OpId op : graph.outputs()) {
    outputs.push_back(values[static_cast<std::size_t>(op)]);
  }
  EXPECT_EQ(outputs, (std::vector<trojan::Word>{-57, 5, 14, 1}));
}

// ---- random generator -----------------------------------------------------

TEST(RandomDfgTest, RespectsOpCountAndValidates) {
  util::Rng rng(77);
  RandomDfgConfig config;
  config.num_ops = 25;
  const dfg::Dfg graph = random_dfg(config, rng);
  EXPECT_EQ(graph.num_ops(), 25);
  EXPECT_NO_THROW(graph.validate());
  EXPECT_FALSE(graph.outputs().empty());
}

TEST(RandomDfgTest, MaxDepthIsHonored) {
  util::Rng rng(78);
  RandomDfgConfig config;
  config.num_ops = 40;
  config.edge_probability = 0.9;
  config.max_depth = 4;
  for (int trial = 0; trial < 10; ++trial) {
    const dfg::Dfg graph = random_dfg(config, rng);
    EXPECT_LE(dfg::critical_path_length(graph), 4);
  }
}

TEST(RandomDfgTest, DeterministicGivenSeed) {
  RandomDfgConfig config;
  config.num_ops = 15;
  util::Rng rng_a(5);
  util::Rng rng_b(5);
  const dfg::Dfg a = random_dfg(config, rng_a);
  const dfg::Dfg b = random_dfg(config, rng_b);
  ASSERT_EQ(a.num_ops(), b.num_ops());
  for (dfg::OpId op = 0; op < a.num_ops(); ++op) {
    EXPECT_EQ(a.op(op).type, b.op(op).type);
    EXPECT_EQ(a.op(op).inputs, b.op(op).inputs);
  }
}

TEST(RandomDfgTest, ClassWeightsRespected) {
  util::Rng rng(79);
  RandomDfgConfig config;
  config.num_ops = 200;
  config.adder_weight = 1.0;
  config.multiplier_weight = 0.0;
  config.alu_weight = 0.0;
  const dfg::Dfg graph = random_dfg(config, rng);
  const auto counts = graph.ops_per_class();
  EXPECT_EQ(counts[static_cast<int>(ResourceClass::kAdder)], 200);
}

TEST(RandomDfgTest, ZeroWeightsThrow) {
  util::Rng rng(80);
  RandomDfgConfig config;
  config.adder_weight = 0;
  config.multiplier_weight = 0;
  config.alu_weight = 0;
  EXPECT_THROW(random_dfg(config, rng), util::SpecError);
}

// ---- extra (non-paper) kernels ---------------------------------------------

TEST(ExtraBenchmarksTest, ArLatticeShape) {
  const dfg::Dfg graph = ar_lattice();
  graph.validate();
  EXPECT_EQ(graph.num_ops(), 28);
  const auto counts = graph.ops_per_class();
  EXPECT_EQ(counts[static_cast<int>(ResourceClass::kMultiplier)], 16);
  EXPECT_EQ(counts[static_cast<int>(ResourceClass::kAdder)], 12);
  EXPECT_EQ(dfg::critical_path_length(graph), 14);
}

TEST(ExtraBenchmarksTest, Matmul2x2ComputesProduct) {
  const dfg::Dfg graph = matmul2x2();
  EXPECT_EQ(graph.num_ops(), 12);
  EXPECT_EQ(dfg::critical_path_length(graph), 2);
  // A = [1 2; 3 4], B = [5 6; 7 8] -> C = [19 22; 43 50].
  const auto values =
      trojan::golden_eval(graph, {1, 2, 3, 4, 5, 6, 7, 8});
  std::vector<trojan::Word> c;
  for (dfg::OpId op : graph.outputs()) {
    c.push_back(values[static_cast<std::size_t>(op)]);
  }
  EXPECT_EQ(c, (std::vector<trojan::Word>{19, 22, 43, 50}));
}

TEST(ExtraBenchmarksTest, Fft4ButterfliesAndWindow) {
  const dfg::Dfg graph = fft4();
  EXPECT_EQ(graph.num_ops(), 11);
  // x = {1,2,3,4}, unit window: X0 = 10, X1re = t1 = -2, X1im = -(x1-x3)=2,
  // X2 = (1+3)-(2+4) = -2.
  const auto values =
      trojan::golden_eval(graph, {1, 2, 3, 4, 1, 1, 1});
  std::vector<trojan::Word> outs;
  for (dfg::OpId op : graph.outputs()) {
    outs.push_back(values[static_cast<std::size_t>(op)]);
  }
  EXPECT_EQ(outs, (std::vector<trojan::Word>{10, -2, 2, -2}));
}

TEST(ExtraBenchmarksTest, ArLatticeComputesStages) {
  const dfg::Dfg graph = ar_lattice();
  // All reflection coefficients zero: f and b pass through unchanged, so
  // both outputs are f0*gain*atten and b0*gain*atten.
  std::vector<trojan::Word> inputs(
      static_cast<std::size_t>(graph.num_inputs()), 0);
  inputs[0] = 7;   // f0
  inputs[1] = 11;  // b0
  inputs[static_cast<std::size_t>(graph.num_inputs()) - 2] = 3;  // gain
  inputs[static_cast<std::size_t>(graph.num_inputs()) - 1] = 5;  // atten
  const auto values = trojan::golden_eval(graph, inputs);
  std::vector<trojan::Word> outs;
  for (dfg::OpId op : graph.outputs()) {
    outs.push_back(values[static_cast<std::size_t>(op)]);
  }
  EXPECT_EQ(outs, (std::vector<trojan::Word>{7 * 3 * 5, 11 * 3 * 5}));
}

TEST(ExtraBenchmarksTest, ExtrasSolveOnSection5Market) {
  for (const dfg::Dfg& graph : {matmul2x2(), fft4()}) {
    core::ProblemSpec spec;
    spec.graph = graph;
    spec.catalog = vendor::section5();
    const int cp = dfg::critical_path_length(spec.graph);
    spec.lambda_detection = cp + 2;
    spec.lambda_recovery = cp + 2;
    spec.with_recovery = true;
    spec.area_limit = 200000;
    core::OptimizerOptions options;
    options.strategy = core::Strategy::kHeuristic;
    options.time_limit_seconds = 10;
    const core::OptimizeResult result = core::synthesize(core::make_request(spec, options)).result;
    ASSERT_TRUE(result.has_solution()) << graph.name();
    EXPECT_TRUE(core::validate_solution(spec, result.solution).ok());
  }
}

}  // namespace
}  // namespace ht::benchmarks
