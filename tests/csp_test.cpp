#include <gtest/gtest.h>

#include "benchmarks/random_dfg.hpp"
#include "benchmarks/suite.hpp"
#include "core/csp_solver.hpp"
#include "core/validate.hpp"
#include "test_helpers.hpp"

namespace ht::core {
namespace {

using dfg::ResourceClass;
using test::motivational_detection_only;
using test::motivational_spec;

Palettes full_palettes(const ProblemSpec& spec) {
  Palettes palettes;
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    const auto rc = static_cast<ResourceClass>(cls);
    if (spec.graph.ops_per_class()[cls] == 0) continue;
    for (vendor::VendorId v = 0; v < spec.catalog.num_vendors(); ++v) {
      if (spec.catalog.offers(v, rc)) {
        palettes[static_cast<std::size_t>(cls)].push_back(v);
      }
    }
  }
  return palettes;
}

TEST(CspTest, SolvesMotivationalDetectionOnly) {
  const ProblemSpec spec = motivational_detection_only();
  const CspResult result = schedule_and_bind(spec, full_palettes(spec));
  ASSERT_EQ(result.status, CspResult::Status::kFeasible);
  EXPECT_TRUE(validate_solution(spec, result.solution).ok())
      << validate_solution(spec, result.solution).to_string();
}

TEST(CspTest, SolvesMotivationalWithRecovery) {
  const ProblemSpec spec = motivational_spec();
  const CspResult result = schedule_and_bind(spec, full_palettes(spec));
  ASSERT_EQ(result.status, CspResult::Status::kFeasible);
  EXPECT_TRUE(validate_solution(spec, result.solution).ok());
  EXPECT_LE(result.solution.total_area(spec), spec.area_limit);
}

TEST(CspTest, InfeasibleWithTooFewVendors) {
  // Detection Rule 1 alone needs two vendors per used class.
  const ProblemSpec spec = motivational_detection_only();
  Palettes palettes;
  palettes[static_cast<std::size_t>(ResourceClass::kAdder)] = {0};
  palettes[static_cast<std::size_t>(ResourceClass::kMultiplier)] = {0};
  const CspResult result = schedule_and_bind(spec, palettes);
  EXPECT_EQ(result.status, CspResult::Status::kInfeasible);
}

TEST(CspTest, RecoveryInfeasibleWithTwoVendors) {
  // NC/RC/REC of one op form a vendor triangle: two vendors cannot work.
  const ProblemSpec spec = motivational_spec();
  Palettes palettes;
  palettes[static_cast<std::size_t>(ResourceClass::kAdder)] = {0, 1};
  palettes[static_cast<std::size_t>(ResourceClass::kMultiplier)] = {0, 1};
  const CspResult result = schedule_and_bind(spec, palettes);
  EXPECT_EQ(result.status, CspResult::Status::kInfeasible);
}

TEST(CspTest, InfeasibleUnderImpossibleArea) {
  ProblemSpec spec = motivational_detection_only();
  spec.area_limit = 100;  // no multiplier fits
  const CspResult result = schedule_and_bind(spec, full_palettes(spec));
  EXPECT_EQ(result.status, CspResult::Status::kInfeasible);
}

TEST(CspTest, HonorsInstanceCap) {
  ProblemSpec spec = motivational_detection_only();
  spec.max_instances_per_offer = 1;
  const CspResult result = schedule_and_bind(spec, full_palettes(spec));
  ASSERT_EQ(result.status, CspResult::Status::kFeasible);
  const auto cores = result.solution.cores_used(spec);
  for (const CoreKey& core : cores) {
    EXPECT_EQ(core.instance, 0);
  }
}

TEST(CspTest, NodeLimitReported) {
  const ProblemSpec spec = motivational_spec();
  CspOptions options;
  options.max_nodes = 1;  // cannot finish in one node
  const CspResult result =
      schedule_and_bind(spec, full_palettes(spec), options);
  EXPECT_EQ(result.status, CspResult::Status::kNodeLimit);
}

TEST(CspTest, RandomizedSeedStillValid) {
  const ProblemSpec spec = motivational_spec();
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    CspOptions options;
    options.seed = seed;
    const CspResult result =
        schedule_and_bind(spec, full_palettes(spec), options);
    ASSERT_EQ(result.status, CspResult::Status::kFeasible);
    EXPECT_TRUE(validate_solution(spec, result.solution).ok());
  }
}

TEST(CspTest, TightLatencyEqualsCriticalPath) {
  ProblemSpec spec = test::easy_section5_spec(true);
  spec.lambda_detection = 3;  // polynom critical path
  spec.lambda_recovery = 3;
  const CspResult result = schedule_and_bind(spec, full_palettes(spec));
  ASSERT_EQ(result.status, CspResult::Status::kFeasible);
  EXPECT_LE(result.solution.detection_makespan(), 3);
  EXPECT_LE(result.solution.recovery_makespan(), 3);
}

// Property sweep: on random DFGs with the full Section 5 palette and roomy
// bounds, the CSP must always find a valid solution (the instance is
// under-constrained), and it must always validate.
class CspRandomDfgTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CspRandomDfgTest, ::testing::Range(1, 11));

TEST_P(CspRandomDfgTest, RoomyBoundsAlwaysFeasibleAndValid) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  benchmarks::RandomDfgConfig config;
  config.num_ops = static_cast<int>(rng.uniform_int(4, 16));
  config.max_depth = 5;
  ProblemSpec spec;
  spec.graph = benchmarks::random_dfg(config, rng);
  spec.catalog = vendor::section5();
  spec.lambda_detection = 8;
  spec.lambda_recovery = 8;
  spec.with_recovery = true;
  spec.area_limit = 500000;
  const CspResult result = schedule_and_bind(spec, full_palettes(spec));
  ASSERT_EQ(result.status, CspResult::Status::kFeasible)
      << "ops=" << spec.graph.num_ops();
  const auto report = validate_solution(spec, result.solution);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// All six paper benchmarks, detection-only, loosest Table 3 row: the CSP
// must find a valid binding when given a trimmed palette (three cheapest
// vendors per class — the shape the optimizer actually asks for; the full
// 8-vendor palette needlessly explodes the branching factor).
class CspPaperSuiteTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Rows, CspPaperSuiteTest, ::testing::Range(0, 6));

TEST_P(CspPaperSuiteTest, DetectionOnlyFeasibleOnPaperRows) {
  const auto& entry = benchmarks::paper_suite()[
      static_cast<std::size_t>(GetParam())];
  const auto row = entry.table3[0];
  ProblemSpec spec = make_detection_only_spec(
      entry.factory(), vendor::section5(), row.lambda, row.area);
  // Three smallest-AREA vendors per class: feasibility probing must not be
  // defeated by the cheap-license/large-area tradeoff (elliptic's tight
  // area bound rules out the cheapest multipliers entirely).
  Palettes palettes;
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    const auto rc = static_cast<ResourceClass>(cls);
    if (spec.graph.ops_per_class()[cls] == 0) continue;
    std::vector<vendor::VendorId> by_area =
        spec.catalog.vendors_by_cost(rc);
    std::sort(by_area.begin(), by_area.end(),
              [&](vendor::VendorId a, vendor::VendorId b) {
                return spec.catalog.offer(a, rc).area <
                       spec.catalog.offer(b, rc).area;
              });
    palettes[static_cast<std::size_t>(cls)] = {by_area[0], by_area[1],
                                               by_area[2]};
  }
  CspOptions options;
  options.max_nodes = 2'000'000;
  options.time_limit_seconds = 30;
  const CspResult result = schedule_and_bind(spec, palettes, options);
  ASSERT_EQ(result.status, CspResult::Status::kFeasible) << entry.name;
  EXPECT_TRUE(validate_solution(spec, result.solution).ok());
}

}  // namespace
}  // namespace ht::core
