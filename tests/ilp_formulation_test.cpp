#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/ilp_formulation.hpp"
#include "core/optimizer.hpp"
#include "test_helpers.hpp"

namespace ht::core {
namespace {

/// Tiny spec the full formulation solves fast: 3-op graph, 3 vendors,
/// single instance per offer.
ProblemSpec tiny_spec(bool with_recovery) {
  dfg::Dfg g("tiny");
  dfg::Operand a = g.add_input("a");
  dfg::Operand b = g.add_input("b");
  dfg::OpId m = g.mul(a, b, "m");
  dfg::OpId n = g.mul(b, a, "n");
  dfg::OpId s = g.add(dfg::Operand::op(m), dfg::Operand::op(n), "s");
  g.mark_output(s);

  vendor::Catalog catalog(4);
  for (vendor::VendorId v = 0; v < 4; ++v) {
    catalog.set_offer(v, dfg::ResourceClass::kAdder,
                      {500 + 10 * v, 400 + 50 * v});
    catalog.set_offer(v, dfg::ResourceClass::kMultiplier,
                      {6000 - 100 * v, 900 - 40 * v});
  }

  ProblemSpec spec;
  spec.graph = std::move(g);
  spec.catalog = std::move(catalog);
  spec.lambda_detection = 3;
  spec.lambda_recovery = with_recovery ? 2 : 0;
  spec.with_recovery = with_recovery;
  spec.area_limit = 40000;
  spec.max_instances_per_offer = 2;
  return spec;
}

TEST(IlpFormulationTest, ModelShapeDetectionOnly) {
  const ProblemSpec spec = tiny_spec(false);
  const IlpFormulation formulation(spec);
  const ilp::Model& model = formulation.model();
  EXPECT_GT(model.num_variables(), 0);
  EXPECT_GT(model.num_constraints(), 0);
  // delta variables exist for every (vendor, used class).
  for (vendor::VendorId v = 0; v < 4; ++v) {
    EXPECT_GE(formulation.delta_var(v, dfg::ResourceClass::kAdder), 0);
    EXPECT_GE(formulation.delta_var(v, dfg::ResourceClass::kMultiplier), 0);
    EXPECT_EQ(formulation.delta_var(v, dfg::ResourceClass::kAlu), -1);
  }
}

TEST(IlpFormulationTest, ScheduleVarsRespectWindows) {
  const ProblemSpec spec = tiny_spec(false);
  const IlpFormulation formulation(spec);
  // op 2 ('s', the add) has ASAP 2: no variable at cycle 1.
  for (vendor::VendorId v = 0; v < 4; ++v) {
    for (int m = 0; m < 2; ++m) {
      EXPECT_EQ(formulation.schedule_var(CopyKind::kNormal, 2, 1, v, m), -1);
    }
  }
  // ...but it exists somewhere in cycles 2..3.
  bool found = false;
  for (int cycle = 2; cycle <= 3; ++cycle) {
    for (vendor::VendorId v = 0; v < 4; ++v) {
      if (formulation.schedule_var(CopyKind::kNormal, 2, cycle, v, 0) >= 0) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(IlpFormulationTest, SolvesTinyDetectionOnly) {
  const ProblemSpec spec = tiny_spec(false);
  ilp::BnbOptions options;
  options.time_limit_seconds = 60;
  const OptimizeResult result = minimize_cost_ilp(spec, options);
  ASSERT_EQ(result.status, OptStatus::kOptimal) << to_string(result.status);
  EXPECT_TRUE(validate_solution(spec, result.solution).ok());
}

TEST(IlpFormulationTest, AgreesWithCspOptimizerDetectionOnly) {
  const ProblemSpec spec = tiny_spec(false);
  ilp::BnbOptions ilp_options;
  ilp_options.time_limit_seconds = 60;
  const OptimizeResult via_ilp = minimize_cost_ilp(spec, ilp_options);
  const OptimizeResult via_csp = synthesize(make_request(spec)).result;
  ASSERT_EQ(via_ilp.status, OptStatus::kOptimal);
  ASSERT_EQ(via_csp.status, OptStatus::kOptimal);
  EXPECT_EQ(via_ilp.cost, via_csp.cost);
}

TEST(IlpFormulationTest, AgreesWithCspOptimizerWithRecovery) {
  const ProblemSpec spec = tiny_spec(true);
  ilp::BnbOptions ilp_options;
  ilp_options.time_limit_seconds = 120;
  const OptimizeResult via_ilp = minimize_cost_ilp(spec, ilp_options);
  const OptimizeResult via_csp = synthesize(make_request(spec)).result;
  ASSERT_EQ(via_csp.status, OptStatus::kOptimal);
  ASSERT_TRUE(via_ilp.has_solution()) << to_string(via_ilp.status);
  if (via_ilp.status == OptStatus::kOptimal) {
    EXPECT_EQ(via_ilp.cost, via_csp.cost);
  } else {
    EXPECT_GE(via_ilp.cost, via_csp.cost);
  }
}

TEST(IlpFormulationTest, WarmStartProvesCspOptimum) {
  const ProblemSpec spec = tiny_spec(false);
  const OptimizeResult csp = synthesize(make_request(spec)).result;
  ASSERT_EQ(csp.status, OptStatus::kOptimal);
  ilp::BnbOptions options;
  options.time_limit_seconds = 120;
  const OptimizeResult warm =
      minimize_cost_ilp_warm(spec, csp.solution, options);
  ASSERT_TRUE(warm.has_solution());
  // The ILP must never find anything cheaper than the proven CSP optimum.
  EXPECT_EQ(warm.cost, csp.cost);
  if (warm.status == OptStatus::kOptimal) {
    EXPECT_TRUE(validate_solution(spec, warm.solution).ok());
  }
}

TEST(IlpFormulationTest, WarmStartCanImproveASuboptimalWarmSolution) {
  const ProblemSpec spec = tiny_spec(false);
  // Build a deliberately suboptimal warm solution: solve with the cheapest
  // multiplier vendor banned, then hand that design to the full-market ILP.
  ProblemSpec handicapped = spec;
  vendor::Catalog thinned(spec.catalog.num_vendors());
  const auto cheapest_mult =
      spec.catalog.vendors_by_cost(dfg::ResourceClass::kMultiplier).front();
  for (vendor::VendorId v = 0; v < spec.catalog.num_vendors(); ++v) {
    thinned.set_offer(v, dfg::ResourceClass::kAdder,
                      spec.catalog.offer(v, dfg::ResourceClass::kAdder));
    if (v != cheapest_mult) {
      thinned.set_offer(
          v, dfg::ResourceClass::kMultiplier,
          spec.catalog.offer(v, dfg::ResourceClass::kMultiplier));
    }
  }
  handicapped.catalog = thinned;
  const OptimizeResult warm = synthesize(make_request(handicapped)).result;
  ASSERT_TRUE(warm.has_solution());
  const OptimizeResult reference = synthesize(make_request(spec)).result;
  ASSERT_EQ(reference.status, OptStatus::kOptimal);
  ASSERT_GT(warm.cost, reference.cost);  // the handicap must have cost us

  ilp::BnbOptions options;
  options.time_limit_seconds = 120;
  const OptimizeResult improved =
      minimize_cost_ilp_warm(spec, warm.solution, options);
  ASSERT_TRUE(improved.has_solution());
  EXPECT_LE(improved.cost, warm.cost);
  EXPECT_TRUE(validate_solution(spec, improved.solution).ok());
  if (improved.status == OptStatus::kOptimal) {
    EXPECT_EQ(improved.cost, reference.cost);
  }
}

TEST(IlpFormulationTest, WarmStartRejectsInvalidWarmSolution) {
  const ProblemSpec spec = tiny_spec(false);
  Solution bogus(spec.graph.num_ops(), false);  // nothing scheduled
  EXPECT_THROW(minimize_cost_ilp_warm(spec, bogus), util::InternalError);
}

TEST(IlpFormulationTest, InfeasibleLatency) {
  ProblemSpec spec = tiny_spec(false);
  spec.lambda_detection = 1;  // critical path is 2
  const OptimizeResult result = minimize_cost_ilp(spec);
  EXPECT_EQ(result.status, OptStatus::kInfeasible);
}

TEST(IlpFormulationTest, DecodeRejectsWrongArity) {
  const ProblemSpec spec = tiny_spec(false);
  const IlpFormulation formulation(spec);
  EXPECT_THROW(formulation.decode({1.0, 0.0}), util::SpecError);
}

}  // namespace
}  // namespace ht::core
