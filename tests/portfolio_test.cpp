// Tests for the racing algorithm portfolio: the IncumbentPool commit rule,
// the SLS binder's safety properties, and the end-to-end determinism
// contract — portfolio mode must return the statuses and costs of the
// exact-only engine on proved rows, bit-identically across thread counts.
#include "core/incumbent_pool.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "benchmarks/suite.hpp"
#include "core/engine.hpp"
#include "core/sls_binder.hpp"
#include "core/validate.hpp"
#include "dfg/analysis.hpp"
#include "vendor/catalogs.hpp"

namespace ht::core {
namespace {

using dfg::ResourceClass;

/// The contested mixed-class fixture from csp_conflict_test: a feasible
/// adder subproblem interleaved with a multiplier pigeonhole. At
/// lambda = 4 the 10 multiplier detection copies cannot fit 2 vendors x
/// 4 cycles x 1 instance (infeasible); lambda = 5 gives exactly 10 slots
/// (feasible, tightly contested).
ProblemSpec mixed_contention_spec(int lambda) {
  ProblemSpec spec;
  dfg::Dfg graph("mixed");
  {
    const dfg::Operand a = graph.add_input("a");
    const dfg::Operand b = graph.add_input("b");
    graph.mark_output(graph.add(a, b));
  }
  for (int i = 0; i < 5; ++i) {
    const dfg::Operand a = graph.add_input("ma" + std::to_string(i));
    const dfg::Operand b = graph.add_input("mb" + std::to_string(i));
    graph.mark_output(graph.mul(a, b));
  }
  spec.graph = std::move(graph);
  vendor::Catalog catalog(4);
  catalog.set_offer(0, ResourceClass::kAdder, {100, 1000});
  catalog.set_offer(1, ResourceClass::kAdder, {100, 1001});
  catalog.set_offer(2, ResourceClass::kMultiplier, {100, 1002});
  catalog.set_offer(3, ResourceClass::kMultiplier, {100, 1003});
  spec.catalog = std::move(catalog);
  spec.lambda_detection = lambda;
  spec.with_recovery = false;
  spec.area_limit = 1'000'000;
  spec.max_instances_per_offer = 1;
  return spec;
}

/// Recovery-mode paper-suite spec, same shape as engine_test's slice of
/// the bench size sweep: Section 5 market, tight latency, one instance
/// per license so cheap sets get disproven before the winner.
ProblemSpec suite_spec(const benchmarks::BenchmarkCase& bench) {
  ProblemSpec spec;
  spec.graph = bench.factory();
  spec.catalog = vendor::section5();
  const int critical_path =
      dfg::critical_path_length(spec.graph, spec.op_latencies());
  spec.lambda_detection = critical_path + 1;
  spec.lambda_recovery = critical_path;
  spec.with_recovery = true;
  spec.area_limit = 400000;
  spec.max_instances_per_offer = 1;
  return spec;
}

SynthesisRequest exact_request(ProblemSpec spec) {
  SynthesisRequest request;
  request.spec = std::move(spec);
  request.strategy = Strategy::kExact;
  request.limits.csp_node_limit = 400'000;
  request.limits.max_combos = 4'000;
  request.limits.time_limit_seconds = 600;  // never the binding limit
  return request;
}

void expect_identical(const OptimizeResult& a, const OptimizeResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.status, b.status) << label;
  if (!a.has_solution()) return;
  EXPECT_EQ(a.cost, b.cost) << label;
  ASSERT_EQ(a.solution.num_ops(), b.solution.num_ops()) << label;
  for (CopyKind kind : a.solution.active_kinds()) {
    for (dfg::OpId op = 0; op < a.solution.num_ops(); ++op) {
      EXPECT_EQ(a.solution.at(kind, op), b.solution.at(kind, op))
          << label << " " << copy_kind_name(kind) << " op " << op;
    }
  }
}

// ---- IncumbentPool ------------------------------------------------------

Incumbent make_incumbent(long long cost, int rank, long index,
                         double seconds) {
  Incumbent entry;
  entry.cost = cost;
  entry.member_rank = rank;
  entry.palette_index = index;
  entry.solution = Solution(1, false);
  entry.publish_seconds = seconds;
  return entry;
}

TEST(IncumbentPoolTest, BestIsPublishOrderIndependent) {
  // The same entry set in two adversarial orders must elect the same
  // winner: lowest (cost, member rank, palette index).
  const std::vector<Incumbent> entries = {
      make_incumbent(50, 2, 9, 0.3), make_incumbent(40, 2, 4, 0.5),
      make_incumbent(40, 1, 7, 0.9), make_incumbent(40, 1, 2, 1.2),
      make_incumbent(60, 0, 0, 0.1),
  };
  IncumbentPool forward;
  for (const Incumbent& entry : entries) forward.publish(entry);
  std::vector<Incumbent> reversed(entries.rbegin(), entries.rend());
  IncumbentPool backward;
  for (const Incumbent& entry : reversed) backward.publish(entry);

  const auto best_f = forward.best();
  const auto best_b = backward.best();
  ASSERT_TRUE(best_f.has_value());
  ASSERT_TRUE(best_b.has_value());
  EXPECT_EQ(best_f->cost, 40);
  EXPECT_EQ(best_f->member_rank, 1);
  EXPECT_EQ(best_f->palette_index, 2);
  EXPECT_EQ(best_b->cost, best_f->cost);
  EXPECT_EQ(best_b->member_rank, best_f->member_rank);
  EXPECT_EQ(best_b->palette_index, best_f->palette_index);
  EXPECT_EQ(forward.best_cost_hint(), 40);
  EXPECT_EQ(backward.best_cost_hint(), 40);
  EXPECT_EQ(forward.published(), 5);
  EXPECT_EQ(forward.member_stats(1).published, 2);
  EXPECT_EQ(forward.member_stats(2).best_cost, 40);
}

TEST(IncumbentPoolTest, TimeToBestTracksWhenTheWinningCostFirstExisted) {
  IncumbentPool pool;
  pool.publish(make_incumbent(90, 1, 0, 0.2));
  EXPECT_DOUBLE_EQ(pool.best_cost_seconds(), 0.2);
  // Strictly cheaper resets the clock...
  pool.publish(make_incumbent(70, 2, 1, 0.6));
  EXPECT_DOUBLE_EQ(pool.best_cost_seconds(), 0.6);
  // ...an equal-cost entry may only move it earlier (stronger member wins
  // the commit, but the cost existed from the earlier time).
  pool.publish(make_incumbent(70, 1, 5, 0.4));
  EXPECT_DOUBLE_EQ(pool.best_cost_seconds(), 0.4);
  EXPECT_EQ(pool.best()->member_rank, 1);
  EXPECT_DOUBLE_EQ(pool.first_publish_seconds(), 0.2);
}

// ---- SLS binder ---------------------------------------------------------

TEST(SlsBinderTest, EveryReturnedBindingValidatesAndDeterministic) {
  for (const char* name : {"polynom", "diff2"}) {
    const ProblemSpec spec = suite_spec(benchmarks::by_name(name));
    SlsOptions options;
    options.seed = 7;
    long improvements = 0;
    long long last_cost = std::numeric_limits<long long>::max();
    options.on_improved = [&](const Solution& solution, long long cost,
                              long attempt) {
      EXPECT_TRUE(validate_solution(spec, solution).ok()) << name;
      EXPECT_LT(cost, last_cost) << name << ": improvements must descend";
      EXPECT_GE(attempt, 0) << name;
      last_cost = cost;
      ++improvements;
    };
    const SlsOutcome first = sls_search(spec, options);
    ASSERT_TRUE(first.feasible) << name;
    EXPECT_TRUE(validate_solution(spec, first.solution).ok()) << name;
    EXPECT_EQ(first.cost, first.solution.license_cost(spec)) << name;
    EXPECT_EQ(first.cost, last_cost) << name;
    EXPECT_GT(improvements, 0) << name;
    EXPECT_GT(first.steps, 0) << name;

    // Pure function of (spec, options): a rerun reproduces everything.
    options.on_improved = nullptr;
    const SlsOutcome second = sls_search(spec, options);
    EXPECT_EQ(second.cost, first.cost) << name;
    EXPECT_EQ(second.steps, first.steps) << name;
    EXPECT_EQ(second.candidates_validated, first.candidates_validated)
        << name;
  }
}

TEST(SlsBinderTest, CostNeverBeatsTheBoundsOffExactOptimum) {
  // SLS is incomplete: it may miss the optimum but must never claim a
  // cost below it. Reference = exact engine with every bound/prune off.
  for (const char* name : {"polynom", "diff2"}) {
    const ProblemSpec spec = suite_spec(benchmarks::by_name(name));
    SynthesisRequest reference = exact_request(spec);
    reference.pruning.cost_bounds = false;
    const OptimizeResult exact = synthesize(reference).result;
    ASSERT_EQ(exact.status, OptStatus::kOptimal) << name;

    SlsOptions options;
    options.seed = 3;
    const SlsOutcome sls = sls_search(spec, options);
    ASSERT_TRUE(sls.feasible) << name;
    EXPECT_GE(sls.cost, exact.cost) << name;
  }
}

TEST(SlsBinderTest, ReportsInfeasibleFixtureAsNotFeasible) {
  const SlsOutcome outcome =
      sls_search(mixed_contention_spec(4), SlsOptions{});
  EXPECT_FALSE(outcome.feasible);
  EXPECT_GT(outcome.steps, 0);
}

// ---- end-to-end determinism --------------------------------------------

TEST(PortfolioDeterminismTest, OnOffStatusesAndCostsMatchOnContestedFixture) {
  for (int lambda : {4, 5}) {
    SynthesisRequest request = exact_request(mixed_contention_spec(lambda));
    const OptimizeResult off = synthesize(request).result;
    request.portfolio.enabled = true;
    const OptimizeResult on = synthesize(request).result;
    const std::string label = "mixed lambda=" + std::to_string(lambda);
    ASSERT_EQ(off.status, on.status) << label;
    if (off.has_solution()) {
      EXPECT_EQ(off.cost, on.cost) << label;
      require_valid(request.spec, on.solution);
    }
    if (lambda == 4) {
      EXPECT_EQ(off.status, OptStatus::kInfeasible) << label;
    }
  }
}

TEST(PortfolioDeterminismTest, BitIdenticalAcrossThreadCountsOnPaperSuite) {
  // A representative slice of the suite keeps the test under budget.
  for (const char* name : {"polynom", "diff2", "mof2"}) {
    const benchmarks::BenchmarkCase& bench = benchmarks::by_name(name);
    SynthesisRequest request = exact_request(suite_spec(bench));
    request.portfolio.enabled = true;

    std::vector<OptimizeResult> results;
    for (int threads : {1, 4, 8}) {
      request.parallelism.threads = threads;
      results.push_back(synthesize(request).result);
    }
    expect_identical(results[0], results[1],
                     std::string(bench.name) + " 1v4");
    expect_identical(results[0], results[2],
                     std::string(bench.name) + " 1v8");

    // And the portfolio must not change the proved answer.
    request.portfolio.enabled = false;
    request.parallelism.threads = 1;
    const OptimizeResult off = synthesize(request).result;
    ASSERT_EQ(off.status, results[0].status) << bench.name;
    if (off.has_solution()) {
      EXPECT_EQ(off.cost, results[0].cost) << bench.name;
    }

    // Attribution fields are populated in portfolio mode.
    EXPECT_GE(results[0].stats.incumbents_published, 0);
    if (results[0].has_solution()) {
      EXPECT_GE(results[0].stats.best_source, 0) << bench.name;
      EXPECT_GE(results[0].stats.time_to_best_seconds, 0.0) << bench.name;
    }
  }
}

TEST(PortfolioDeterminismTest, SeederBindingCommitsOnlyAtTheExactCost) {
  // On the motivational fixture the portfolio must agree with exact-only
  // and produce a validated binding whatever member supplied it.
  SynthesisRequest request =
      exact_request(suite_spec(benchmarks::by_name("polynom")));
  const OptimizeResult off = synthesize(request).result;
  ASSERT_EQ(off.status, OptStatus::kOptimal);

  request.portfolio.enabled = true;
  const OptimizeResult on = synthesize(request).result;
  ASSERT_EQ(on.status, OptStatus::kOptimal);
  EXPECT_EQ(on.cost, off.cost);
  require_valid(request.spec, on.solution);
  EXPECT_GT(on.stats.incumbents_published, 0);
}

}  // namespace
}  // namespace ht::core
