#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/optimizer.hpp"
#include "rtl/elaborate.hpp"
#include "rtl/testbench.hpp"
#include "rtl/verilog.hpp"
#include "test_helpers.hpp"

namespace ht::rtl {
namespace {

// ---- netlist IR invariants --------------------------------------------------

TEST(NetlistTest, SingleDriverEnforced) {
  Netlist nl("t");
  const WireId w = nl.add_wire("w", 1);
  Cell a;
  a.kind = CellKind::kConst;
  a.name = "a";
  a.output = w;
  nl.add_cell(a);
  Cell b = a;
  b.name = "b";
  EXPECT_THROW(nl.add_cell(b), util::SpecError);
}

TEST(NetlistTest, PrimaryInputsCannotBeDriven) {
  Netlist nl("t");
  const WireId w = nl.add_wire("in", 64);
  nl.mark_input(w);
  Cell c;
  c.kind = CellKind::kConst;
  c.name = "c";
  c.output = w;
  EXPECT_THROW(nl.add_cell(c), util::SpecError);
}

TEST(NetlistTest, DanglingWireFailsValidation) {
  Netlist nl("t");
  nl.add_wire("floating", 1);
  EXPECT_THROW(nl.validate(), util::SpecError);
}

TEST(NetlistTest, CombinationalCycleDetected) {
  Netlist nl("t");
  const WireId a = nl.add_wire("a", 1);
  const WireId b = nl.add_wire("b", 1);
  Cell n1;
  n1.kind = CellKind::kNot;
  n1.name = "n1";
  n1.inputs = {b};
  n1.output = a;
  nl.add_cell(n1);
  Cell n2;
  n2.kind = CellKind::kNot;
  n2.name = "n2";
  n2.inputs = {a};
  n2.output = b;
  nl.add_cell(n2);
  EXPECT_THROW(nl.combinational_order(), util::SpecError);
}

TEST(NetlistTest, RegistersBreakCycles) {
  Netlist nl("t");
  const WireId a = nl.add_wire("a", 1);
  const WireId b = nl.add_wire("b", 1);
  Cell n;
  n.kind = CellKind::kNot;
  n.name = "n";
  n.inputs = {b};
  n.output = a;
  nl.add_cell(n);
  Cell r;
  r.kind = CellKind::kRegister;
  r.name = "r";
  r.inputs = {a};
  r.output = b;
  nl.add_cell(r);
  EXPECT_NO_THROW(nl.validate());
}

TEST(NetlistTest, BadWireWidthRejected) {
  Netlist nl("t");
  EXPECT_THROW(nl.add_wire("w", 0), util::SpecError);
  EXPECT_THROW(nl.add_wire("w", 65), util::SpecError);
}

TEST(NetlistTest, CaseMuxArityChecked) {
  Netlist nl("t");
  const WireId sel = nl.add_wire("s", 16);
  nl.mark_input(sel);
  const WireId out = nl.add_wire("o", 64);
  Cell m;
  m.kind = CellKind::kCaseMux;
  m.name = "m";
  m.inputs = {sel};         // no data inputs
  m.output = out;
  m.select_values = {1};    // ...but one select value
  nl.add_cell(m);
  EXPECT_THROW(nl.validate(), util::SpecError);
}

// ---- elaboration ---------------------------------------------------------

class ElaborateTest : public ::testing::Test {
 protected:
  static const core::ProblemSpec& spec() {
    static const core::ProblemSpec instance = test::motivational_spec();
    return instance;
  }
  static const core::Solution& solution() {
    static const core::Solution instance =
        core::synthesize(core::make_request(spec())).result.solution;
    return instance;
  }
};

TEST_F(ElaborateTest, ProducesValidNetlist) {
  const ElaboratedDesign design = elaborate(spec(), solution());
  EXPECT_NO_THROW(design.netlist.validate());
  EXPECT_EQ(design.total_steps,
            spec().lambda_detection + spec().lambda_recovery + 1);
  EXPECT_EQ(design.input_names.size(),
            static_cast<std::size_t>(spec().graph.num_inputs()));
  EXPECT_EQ(design.output_names.size(), spec().graph.outputs().size());
}

TEST_F(ElaborateTest, OneFuPerCoreInstance) {
  const ElaboratedDesign design = elaborate(spec(), solution());
  int fu_count = 0;
  for (const Cell& cell : design.netlist.cells()) {
    if (cell.kind == CellKind::kFu) ++fu_count;
  }
  EXPECT_EQ(fu_count,
            static_cast<int>(solution().cores_used(spec()).size()));
}

TEST_F(ElaborateTest, OneResultRegisterPerCopy) {
  const ElaboratedDesign design = elaborate(spec(), solution());
  int result_regs = 0;
  for (const Cell& cell : design.netlist.cells()) {
    if (cell.kind == CellKind::kRegister &&
        cell.name.rfind("r_", 0) == 0) {
      ++result_regs;
    }
  }
  EXPECT_EQ(result_regs, 3 * spec().graph.num_ops());
}

TEST_F(ElaborateTest, ComparatorPerDfgOutput) {
  const ElaboratedDesign design = elaborate(spec(), solution());
  int eqs = 0;
  for (const Cell& cell : design.netlist.cells()) {
    if (cell.kind == CellKind::kEq &&
        cell.name.rfind("check_out", 0) == 0) {
      ++eqs;
    }
  }
  EXPECT_EQ(eqs, static_cast<int>(spec().graph.outputs().size()));
}

TEST_F(ElaborateTest, DetectionOnlyHasNoRecoveryRegisters) {
  const core::ProblemSpec d_spec = test::motivational_detection_only();
  const core::OptimizeResult result = core::synthesize(core::make_request(d_spec)).result;
  ASSERT_TRUE(result.has_solution());
  const ElaboratedDesign design = elaborate(d_spec, result.solution);
  for (const Cell& cell : design.netlist.cells()) {
    EXPECT_EQ(cell.name.find("r_REC_"), std::string::npos) << cell.name;
  }
  EXPECT_EQ(design.total_steps, d_spec.lambda_detection + 1);
}

TEST_F(ElaborateTest, RejectsInvalidSolution) {
  core::Solution broken = solution();
  broken.at(core::CopyKind::kNormal, 0).cycle = 99;
  EXPECT_THROW(elaborate(spec(), broken), util::InternalError);
}

// ---- Verilog emission ------------------------------------------------------

TEST_F(ElaborateTest, VerilogHasModuleAndPorts) {
  const ElaboratedDesign design = elaborate(spec(), solution());
  const std::string verilog = to_verilog(design);
  EXPECT_NE(verilog.find("module polynom_thls"), std::string::npos);
  EXPECT_NE(verilog.find("input  wire clk"), std::string::npos);
  EXPECT_NE(verilog.find("trojan_detected"), std::string::npos);
  for (const std::string& input : design.input_names) {
    EXPECT_NE(verilog.find(input), std::string::npos) << input;
  }
  for (const std::string& output : design.output_names) {
    EXPECT_NE(verilog.find(output), std::string::npos) << output;
  }
  EXPECT_NE(verilog.find("endmodule"), std::string::npos);
}

TEST_F(ElaborateTest, VerilogStructurallyBalanced) {
  const ElaboratedDesign design = elaborate(spec(), solution());
  const std::string verilog = to_verilog(design);
  auto count = [&](const std::string& needle) {
    std::size_t occurrences = 0;
    std::size_t pos = 0;
    while ((pos = verilog.find(needle, pos)) != std::string::npos) {
      ++occurrences;
      pos += needle.size();
    }
    return occurrences;
  };
  EXPECT_EQ(count("case ("), count("endcase"));
  EXPECT_EQ(count("always @"), count("  end\n"));
  EXPECT_EQ(count("module "), count("endmodule"));
}

TEST_F(ElaborateTest, VerilogMentionsEveryVendorInstance) {
  const ElaboratedDesign design = elaborate(spec(), solution());
  const std::string verilog = to_verilog(design);
  for (const core::CoreKey& core : solution().cores_used(spec())) {
    const std::string tag = "vendor " + std::to_string(core.vendor + 1) +
                            " " + dfg::resource_class_name(core.rc);
    EXPECT_NE(verilog.find(tag), std::string::npos) << tag;
  }
}

// ---- testbench generation ---------------------------------------------------

TEST_F(ElaborateTest, TestbenchChecksEveryOutputPerFrame) {
  const ElaboratedDesign design = elaborate(spec(), solution());
  TestbenchOptions options;
  options.frames = {{1, 2, 3, 4, 5}, {9, 8, 7, 6, 5}};
  const std::string tb = to_verilog_testbench(spec(), design, options);
  EXPECT_NE(tb.find("module tb;"), std::string::npos);
  EXPECT_NE(tb.find("polynom_thls dut"), std::string::npos);
  // One check per (frame, data output) plus the detection-flag checks.
  auto count = [&](const std::string& needle) {
    std::size_t n = 0, pos = 0;
    while ((pos = tb.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  EXPECT_EQ(count("check64("),
            options.frames.size() * design.output_names.size() + 1);
  EXPECT_EQ(count("trojan_detected !== 1'b0"), options.frames.size());
  EXPECT_NE(tb.find("$finish"), std::string::npos);
}

TEST_F(ElaborateTest, TestbenchEmbedsGoldenValues) {
  const ElaboratedDesign design = elaborate(spec(), solution());
  TestbenchOptions options;
  options.frames = {{2, 3, 5, 7, 11}};
  const std::string tb = to_verilog_testbench(spec(), design, options);
  // golden s2 = 2*3 + 5*7 + 5*7*11 = 426 = 0x1aa.
  EXPECT_NE(tb.find("64'h00000000000001aa"), std::string::npos) << tb;
}

TEST_F(ElaborateTest, TestbenchRejectsBadFrames) {
  const ElaboratedDesign design = elaborate(spec(), solution());
  TestbenchOptions options;
  EXPECT_THROW(to_verilog_testbench(spec(), design, options),
               util::SpecError);
  options.frames = {{1, 2}};  // wrong arity
  EXPECT_THROW(to_verilog_testbench(spec(), design, options),
               util::SpecError);
}

}  // namespace
}  // namespace ht::rtl
