// Tests for the work-stealing pool behind the parallel synthesis engine:
// tasks all run exactly once, the waiting caller helps instead of
// deadlocking, groups are reusable, and the cancel token is a plain latch.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace ht::util {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3);

  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  TaskGroup group(pool);
  for (int i = 0; i < kTasks; ++i) {
    group.run([&hits, i] { hits[i].fetch_add(1); });
  }
  group.wait();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, ZeroWorkerPoolStillCompletesViaHelpingCaller) {
  // With no worker threads the caller must drain the queue inside wait().
  ThreadPool pool(0);
  std::atomic<int> done{0};
  TaskGroup group(pool);
  for (int i = 0; i < 64; ++i) {
    group.run([&done] { done.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, GroupIsReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  TaskGroup group(pool);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      group.run([&done] { done.fetch_add(1); });
    }
    group.wait();
    EXPECT_EQ(done.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, UnevenTaskSizesAllComplete) {
  // Mixed durations exercise stealing: short tasks queued behind a long one
  // must still finish (either stolen or run by the helping caller).
  ThreadPool pool(2);
  std::atomic<int> done{0};
  TaskGroup group(pool);
  group.run([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done.fetch_add(1);
  });
  for (int i = 0; i < 100; ++i) {
    group.run([&done] { done.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(done.load(), 101);
}

TEST(CancelTokenTest, LatchesAndResets) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
  token.request_cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::hardware_concurrency(), 1);
}

}  // namespace
}  // namespace ht::util
