#include <gtest/gtest.h>

#include "lp/lp_problem.hpp"
#include "util/rng.hpp"

namespace ht::lp {
namespace {

TEST(LpTest, TrivialBoundedMinimum) {
  // min x subject to x >= 3  ->  x = 3.
  LpProblem problem;
  const int x = problem.add_variable(0, kInf, 1.0);
  problem.add_constraint({{x, 1.0}}, Relation::kGe, 3.0);
  const LpResult result = solve(problem);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 3.0, 1e-7);
  EXPECT_NEAR(result.values[0], 3.0, 1e-7);
}

TEST(LpTest, TwoVariableTextbook) {
  // max 3x + 5y st x<=4, 2y<=12, 3x+2y<=18 (classic Dantzig example)
  // -> min -3x -5y; optimum x=2, y=6, objective -36.
  LpProblem problem;
  const int x = problem.add_variable(0, kInf, -3.0);
  const int y = problem.add_variable(0, kInf, -5.0);
  problem.add_constraint({{x, 1.0}}, Relation::kLe, 4.0);
  problem.add_constraint({{y, 2.0}}, Relation::kLe, 12.0);
  problem.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLe, 18.0);
  const LpResult result = solve(problem);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, -36.0, 1e-7);
  EXPECT_NEAR(result.values[static_cast<std::size_t>(x)], 2.0, 1e-7);
  EXPECT_NEAR(result.values[static_cast<std::size_t>(y)], 6.0, 1e-7);
}

TEST(LpTest, EqualityConstraint) {
  // min x + y st x + y = 5, x - y = 1 -> x=3, y=2.
  LpProblem problem;
  const int x = problem.add_variable(0, kInf, 1.0);
  const int y = problem.add_variable(0, kInf, 1.0);
  problem.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEq, 5.0);
  problem.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kEq, 1.0);
  const LpResult result = solve(problem);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.values[static_cast<std::size_t>(x)], 3.0, 1e-7);
  EXPECT_NEAR(result.values[static_cast<std::size_t>(y)], 2.0, 1e-7);
}

TEST(LpTest, DetectsInfeasible) {
  LpProblem problem;
  const int x = problem.add_variable(0, 1.0, 1.0);
  problem.add_constraint({{x, 1.0}}, Relation::kGe, 2.0);
  EXPECT_EQ(solve(problem).status, LpStatus::kInfeasible);
}

TEST(LpTest, DetectsUnbounded) {
  LpProblem problem;
  const int x = problem.add_variable(0, kInf, -1.0);  // min -x, x free up
  problem.add_constraint({{x, 1.0}}, Relation::kGe, 0.0);
  EXPECT_EQ(solve(problem).status, LpStatus::kUnbounded);
}

TEST(LpTest, RespectsVariableBounds) {
  // min -x with x in [2, 7] -> x = 7.
  LpProblem problem;
  const int x = problem.add_variable(2.0, 7.0, -1.0);
  const LpResult result = solve(problem);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.values[static_cast<std::size_t>(x)], 7.0, 1e-7);
}

TEST(LpTest, NonZeroLowerBoundsShift) {
  // min x + y, x >= 1.5, y >= 2.5, x + y >= 5 -> 5 total.
  LpProblem problem;
  const int x = problem.add_variable(1.5, kInf, 1.0);
  const int y = problem.add_variable(2.5, kInf, 1.0);
  problem.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGe, 5.0);
  const LpResult result = solve(problem);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 5.0, 1e-7);
}

TEST(LpTest, NegativeRhsNormalization) {
  // min x st -x <= -4  (i.e. x >= 4).
  LpProblem problem;
  const int x = problem.add_variable(0, kInf, 1.0);
  problem.add_constraint({{x, -1.0}}, Relation::kLe, -4.0);
  const LpResult result = solve(problem);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.values[static_cast<std::size_t>(x)], 4.0, 1e-7);
}

TEST(LpTest, DuplicateTermsAccumulate) {
  // min x with (0.5x + 0.5x) >= 3.
  LpProblem problem;
  const int x = problem.add_variable(0, kInf, 1.0);
  problem.add_constraint({{x, 0.5}, {x, 0.5}}, Relation::kGe, 3.0);
  const LpResult result = solve(problem);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.values[static_cast<std::size_t>(x)], 3.0, 1e-7);
}

TEST(LpTest, DegenerateRedundantConstraints) {
  LpProblem problem;
  const int x = problem.add_variable(0, kInf, 1.0);
  const int y = problem.add_variable(0, kInf, 1.0);
  for (int i = 0; i < 5; ++i) {
    problem.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGe, 4.0);
  }
  problem.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEq, 4.0);
  const LpResult result = solve(problem);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 4.0, 1e-7);
}

TEST(LpTest, BadBoundsThrow) {
  LpProblem problem;
  EXPECT_THROW(problem.add_variable(2.0, 1.0), util::SpecError);
}

TEST(LpTest, UnknownVariableInConstraintThrows) {
  LpProblem problem;
  problem.add_variable();
  EXPECT_THROW(problem.add_constraint({{3, 1.0}}, Relation::kLe, 1.0),
               util::SpecError);
}

// Property sweep: random feasible assignment-style LPs; simplex objective
// must match a known construction. We build transportation-like problems
// whose optimum we can compute by hand: min sum c_i x_i with sum x_i = K
// and 0 <= x_i <= 1 -> pick the K cheapest.
class LpGreedyPropertyTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, LpGreedyPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST_P(LpGreedyPropertyTest, FractionalKnapsackOptimum) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 12;
  const int k = 5;
  LpProblem problem;
  std::vector<double> costs;
  std::vector<std::pair<int, double>> sum_terms;
  for (int i = 0; i < n; ++i) {
    const double cost = static_cast<double>(rng.uniform_int(1, 100));
    costs.push_back(cost);
    const int var = problem.add_variable(0.0, 1.0, cost);
    sum_terms.emplace_back(var, 1.0);
  }
  problem.add_constraint(sum_terms, Relation::kEq, k);
  const LpResult result = solve(problem);
  ASSERT_EQ(result.status, LpStatus::kOptimal);

  std::vector<double> sorted = costs;
  std::sort(sorted.begin(), sorted.end());
  double expected = 0;
  for (int i = 0; i < k; ++i) expected += sorted[static_cast<std::size_t>(i)];
  EXPECT_NEAR(result.objective, expected, 1e-6);
}

}  // namespace
}  // namespace ht::lp
