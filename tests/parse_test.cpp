#include <gtest/gtest.h>

#include "benchmarks/classic.hpp"
#include "dfg/analysis.hpp"
#include "dfg/parse.hpp"
#include "trojan/exec.hpp"

namespace ht::dfg {
namespace {

constexpr const char* kPolynomText = R"(
# the paper's 5-op motivational DFG
dfg polynom
input a b c d e
m1 = mul a b
m2 = mul c d
s1 = add m1 m2
m3 = mul m2 e
s2 = add s1 m3
output s2
)";

TEST(ParseTest, ParsesPolynom) {
  const Dfg graph = parse_dfg(kPolynomText);
  EXPECT_EQ(graph.name(), "polynom");
  EXPECT_EQ(graph.num_ops(), 5);
  EXPECT_EQ(graph.num_inputs(), 5);
  ASSERT_EQ(graph.outputs().size(), 1u);
  EXPECT_EQ(critical_path_length(graph), 3);
}

TEST(ParseTest, ParsedGraphComputesCorrectly) {
  const Dfg graph = parse_dfg(kPolynomText);
  const auto values = trojan::golden_eval(graph, {2, 3, 5, 7, 11});
  EXPECT_EQ(values[static_cast<std::size_t>(graph.outputs()[0])],
            2 * 3 + 5 * 7 + 5 * 7 * 11);
}

TEST(ParseTest, IntegerLiteralsBecomeConstants) {
  const Dfg graph = parse_dfg(R"(
dfg scaled
input x
t = mul x 3
u = add t -7
output u
)");
  const auto values = trojan::golden_eval(graph, {10});
  EXPECT_EQ(values[static_cast<std::size_t>(graph.outputs()[0])], 23);
}

TEST(ParseTest, AllOperationsAccepted) {
  const Dfg graph = parse_dfg(R"(
dfg allops
input x y
a = add x y
b = sub x y
c = mul x y
d = div x y
e = shl x 1
f = shr x 1
g = and x y
h = or x y
i = xor x y
j = lt x y
k = max x y
l = min x y
output a b c d e f g h i j k l
)");
  EXPECT_EQ(graph.num_ops(), 12);
  EXPECT_EQ(graph.outputs().size(), 12u);
}

TEST(ParseTest, MultipleOutputsAndForwardOutputDecls) {
  // 'output' lines may appear before the op is defined... they are
  // resolved at the end.
  const Dfg graph = parse_dfg(R"(
dfg multi
input p q
output second
first = add p q
second = mul first first
output first
)");
  EXPECT_EQ(graph.outputs().size(), 2u);
}

TEST(ParseTest, ErrorsCarryLineNumbers) {
  try {
    parse_dfg("dfg x\ninput a\nbad = frobnicate a a\noutput bad\n");
    FAIL() << "expected SpecError";
  } catch (const util::SpecError& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos)
        << error.what();
  }
}

TEST(ParseTest, RejectsUndefinedNames) {
  EXPECT_THROW(parse_dfg("dfg x\ninput a\nt = add a ghost\noutput t\n"),
               util::SpecError);
}

TEST(ParseTest, RejectsRedefinition) {
  EXPECT_THROW(
      parse_dfg("dfg x\ninput a\na = add a a\noutput a\n"),
      util::SpecError);
}

TEST(ParseTest, RejectsForwardOpReference) {
  EXPECT_THROW(
      parse_dfg("dfg x\ninput a\nt = add u a\nu = add a a\noutput u\n"),
      util::SpecError);
}

TEST(ParseTest, RejectsOutputOfInput) {
  EXPECT_THROW(parse_dfg("dfg x\ninput a\nt = add a a\noutput a\n"),
               util::SpecError);
}

TEST(ParseTest, RejectsEmptyGraph) {
  EXPECT_THROW(parse_dfg("dfg x\ninput a\n"), util::SpecError);
}

TEST(ParseTest, RejectsMissingOutputs) {
  EXPECT_THROW(parse_dfg("dfg x\ninput a\nt = add a a\n"),
               util::SpecError);
}

TEST(ParseTest, RejectsMalformedStatement) {
  EXPECT_THROW(parse_dfg("dfg x\ninput a\nt = add a\noutput t\n"),
               util::SpecError);
  EXPECT_THROW(parse_dfg("dfg x\ninput a\nt == add a a\noutput t\n"),
               util::SpecError);
}

// Round-trip: every classic benchmark must survive to_text -> parse_dfg
// with identical structure and semantics.
class RoundTripTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Benchmarks, RoundTripTest, ::testing::Range(0, 6));

TEST_P(RoundTripTest, TextRoundTripPreservesStructure) {
  const Dfg original = [&] {
    switch (GetParam()) {
      case 0: return benchmarks::polynom();
      case 1: return benchmarks::diff2();
      case 2: return benchmarks::dtmf();
      case 3: return benchmarks::mof2();
      case 4: return benchmarks::ellipticicass();
      default: return benchmarks::fir16();
    }
  }();
  const Dfg reparsed = parse_dfg(to_text(original));
  ASSERT_EQ(reparsed.num_ops(), original.num_ops());
  ASSERT_EQ(reparsed.num_inputs(), original.num_inputs());
  EXPECT_EQ(reparsed.outputs(), original.outputs());
  for (OpId id = 0; id < original.num_ops(); ++id) {
    EXPECT_EQ(reparsed.op(id).type, original.op(id).type) << id;
    EXPECT_EQ(reparsed.op(id).inputs, original.op(id).inputs) << id;
  }
  // Semantics: same values on a fixed input vector.
  std::vector<trojan::Word> inputs;
  for (int i = 0; i < original.num_inputs(); ++i) {
    inputs.push_back(17 * i + 3);
  }
  EXPECT_EQ(trojan::golden_eval(reparsed, inputs),
            trojan::golden_eval(original, inputs));
}

}  // namespace
}  // namespace ht::dfg
