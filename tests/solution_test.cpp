#include <gtest/gtest.h>

#include "core/solution.hpp"
#include "core/validate.hpp"
#include "test_helpers.hpp"

namespace ht::core {
namespace {

using test::motivational_detection_only;
using test::motivational_spec;

/// Hand-built valid solution for the motivational detection-only spec
/// (polynom, Table 1 catalog, lambda_det = 4, area 22000).
///
/// polynom ops: 0=m1(mul), 1=m2(mul), 2=s1(add), 3=m3(mul), 4=s2(add).
/// Conflicts to satisfy: NC/RC per op; chains m1->s1, m2->s1, m2->m3,
/// s1->s2, m3->s2; siblings (m1,m2) and (s1,m3), in both computations.
Solution handmade_detection_solution() {
  Solution solution(5, /*with_recovery=*/false);
  using K = CopyKind;
  // NC: m1@V1, m2@V2, s1@V3(c2), m3@V3(c2), s2@V1? s1->s2 conflict: s1 V3,
  // s2 must differ from s1 and m3 (V3): pick V2. sibling (s1,m3): V3 vs V3
  // violates! Use m3@V1: chain m2(V2)->m3 ok, sibling s1(V3) ok,
  // chain m3->s2: s2 != V1; s2 != V3 (s1) -> V2.
  solution.at(K::kNormal, 0) = {1, 0, 0};  // m1 cycle1 Ven1 mult#0
  solution.at(K::kNormal, 1) = {1, 1, 0};  // m2 cycle1 Ven2 mult#0
  solution.at(K::kNormal, 2) = {2, 2, 0};  // s1 cycle2 Ven3 add#0
  solution.at(K::kNormal, 3) = {2, 0, 0};  // m3 cycle2 Ven1 mult#0
  solution.at(K::kNormal, 4) = {3, 1, 0};  // s2 cycle3 Ven2 add#0
  // RC: mirror with different vendors per op (and internally consistent):
  // m1@V2, m2@V3, s1@V1, m3@V2? m2(V3)->m3 ok, sibling s1(V1) ok; but NC
  // rule: m3 NC=V1, RC must differ -> V2 ok. s2: != s1(V1), != m3(V2),
  // != NC s2 (V2) -> V4.
  solution.at(K::kRedundant, 0) = {2, 1, 1};  // m1' cycle2 Ven2 mult#1
  solution.at(K::kRedundant, 1) = {1, 2, 0};  // m2' cycle1 Ven3 mult#0
  solution.at(K::kRedundant, 2) = {3, 0, 0};  // s1' cycle3 Ven1 add#0
  solution.at(K::kRedundant, 3) = {3, 1, 0};  // m3' cycle3 Ven2 mult#0
  solution.at(K::kRedundant, 4) = {4, 3, 0};  // s2' cycle4 Ven4 add#0
  return solution;
}

TEST(SolutionTest, HandmadeSolutionValidates) {
  ProblemSpec spec = motivational_detection_only();
  spec.area_limit = 30000;  // the handmade binding deliberately uses 27183
  const Solution solution = handmade_detection_solution();
  const ValidationReport report = validate_solution(spec, solution);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(SolutionTest, DerivedMetrics) {
  const ProblemSpec spec = motivational_detection_only();
  const Solution solution = handmade_detection_solution();
  // Cores: V1 mult, V2 mult#0, V2 mult#1, V3 mult, V1 add, V2 add, V3 add,
  // V4 add = 8 cores.
  EXPECT_EQ(solution.cores_used(spec).size(), 8u);
  // Licenses: mult V1,V2,V3 + add V1,V2,V3,V4 = 7.
  EXPECT_EQ(solution.licenses_used(spec).size(), 7u);
  EXPECT_EQ(solution.vendors_used(spec).size(), 4u);
  // Cost: mult 950+880+760, add 450+630+540+580 = 2590 + 2200 = 4790.
  EXPECT_EQ(solution.license_cost(spec), 4790);
  // Area: mult 6843 + 5731*2 + 6325, add 532+640+763+618 = 27183... that
  // exceeds 22000? mult: 6843+5731+5731+6325 = 24630; adders 2553; total
  // 27183 > 22000. (Checked by the validator test below being adjusted.)
  EXPECT_EQ(solution.total_area(spec), 27183);
}

TEST(SolutionTest, MakespanComputation) {
  const Solution solution = handmade_detection_solution();
  EXPECT_EQ(solution.detection_makespan(), 4);
  EXPECT_EQ(solution.recovery_makespan(), 0);
}

TEST(SolutionTest, RecoveryAccessOnDetectionOnlyThrows) {
  Solution solution(3, /*with_recovery=*/false);
  EXPECT_THROW(solution.at(CopyKind::kRecovery, 0), util::SpecError);
}

TEST(SolutionTest, ActiveKinds) {
  EXPECT_EQ(Solution(2, false).active_kinds().size(), 2u);
  EXPECT_EQ(Solution(2, true).active_kinds().size(), 3u);
  EXPECT_EQ(Solution(4, true).all_copies().size(), 12u);
}

TEST(SolutionTest, ToStringShowsSchedule) {
  const ProblemSpec spec = motivational_detection_only();
  const std::string rendered =
      handmade_detection_solution().to_string(spec);
  EXPECT_NE(rendered.find("detection phase"), std::string::npos);
  EXPECT_NE(rendered.find("cycle 1"), std::string::npos);
  EXPECT_NE(rendered.find("NC:m1@Ven1.0"), std::string::npos);
}

// ---- validator negative cases --------------------------------------------

TEST(ValidateTest, AreaViolationReported) {
  ProblemSpec spec = motivational_detection_only();
  // The handmade solution uses 27183 area; tighten the limit under it.
  spec.area_limit = 27182;
  const auto report =
      validate_solution(spec, handmade_detection_solution());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("area"), std::string::npos);
}

TEST(ValidateTest, CleanWithRoomyArea) {
  ProblemSpec spec = motivational_detection_only();
  spec.area_limit = 30000;
  EXPECT_TRUE(validate_solution(spec, handmade_detection_solution()).ok());
}

TEST(ValidateTest, DetectsUnscheduledCopy) {
  ProblemSpec spec = motivational_detection_only();
  spec.area_limit = 30000;
  Solution solution = handmade_detection_solution();
  solution.at(CopyKind::kNormal, 2) = Binding{};
  const auto report = validate_solution(spec, solution);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("unscheduled"), std::string::npos);
}

TEST(ValidateTest, DetectsLatencyViolation) {
  ProblemSpec spec = motivational_detection_only();
  spec.area_limit = 30000;
  Solution solution = handmade_detection_solution();
  solution.at(CopyKind::kRedundant, 4).cycle = 5;  // > lambda_det = 4
  EXPECT_FALSE(validate_solution(spec, solution).ok());
}

TEST(ValidateTest, DetectsDependenceViolation) {
  ProblemSpec spec = motivational_detection_only();
  spec.area_limit = 30000;
  Solution solution = handmade_detection_solution();
  // s1 (op 2) depends on m1/m2 at cycle 1; move it to cycle 1.
  solution.at(CopyKind::kNormal, 2).cycle = 1;
  const auto report = validate_solution(spec, solution);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("dependence"), std::string::npos);
}

TEST(ValidateTest, DetectsRule1Violation) {
  ProblemSpec spec = motivational_detection_only();
  spec.area_limit = 30000;
  Solution solution = handmade_detection_solution();
  // Put RC m2 on NC m2's vendor (Ven2 -> conflict with... NC m2 is Ven2?
  // NC m2 is Ven2 (index 1)? NC m2 = vendor 1; RC m2 = vendor 2. Set RC m2
  // vendor to 1 — also a chain conflict wth m3' (vendor 1)? m3' is Ven2=1.
  // Both violations are fine; we assert det-R1 is among them.
  solution.at(CopyKind::kRedundant, 1).vendor = 1;
  const auto report = validate_solution(spec, solution);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("det-R1"), std::string::npos);
}

TEST(ValidateTest, DetectsCoreDoubleBooking) {
  ProblemSpec spec = motivational_detection_only();
  spec.area_limit = 30000;
  Solution solution = handmade_detection_solution();
  // Move RC m2 (cycle 1, Ven3 mult#0) onto NC m1's core (cycle 1, Ven1
  // mult#0): violates the instance-exclusivity constraint (and rules, but
  // we check the core conflict message).
  solution.at(CopyKind::kRedundant, 1) = {1, 0, 0};
  const auto report = validate_solution(spec, solution);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("core conflict"), std::string::npos);
}

TEST(ValidateTest, DetectsVendorWithoutOffer) {
  ProblemSpec spec = motivational_detection_only();
  spec.area_limit = 30000;
  Solution solution = handmade_detection_solution();
  solution.at(CopyKind::kNormal, 0).vendor = 9;  // out of catalog range
  EXPECT_FALSE(validate_solution(spec, solution).ok());
}

TEST(ValidateTest, RequireValidThrowsWithViolationList) {
  ProblemSpec spec = motivational_detection_only();
  spec.area_limit = 30000;
  Solution solution = handmade_detection_solution();
  solution.at(CopyKind::kNormal, 0).vendor = 1;  // det-R1 vs RC m1 (Ven2)
  EXPECT_THROW(require_valid(spec, solution), util::InternalError);
}

}  // namespace
}  // namespace ht::core
