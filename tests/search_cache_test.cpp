// Tests for the prune-before-solve layer (core/search_cache.hpp).
//
// Three concerns, in order of load-bearing-ness:
//  1. The monotonicity lemma the dominance cache rests on: whenever the
//     complete CSP refutes a palette, every per-class vendor subset of it
//     is also refuted by a direct CSP run. Checked property-style on
//     random DFGs and random catalogs. The static screens are checked for
//     soundness on the same trials (they must never refute a palette the
//     CSP can solve).
//  2. SearchCache scoping semantics: entries are invisible to dominance
//     skips until sealed by the next begin_op, dominance requires
//     subset masks and no-looser bounds, finalize_context prunes an
//     operation's entries to the deterministic prefix, and begin_op keeps
//     the store across thinned-market respins but drops it on structural
//     spec changes.
//  3. Engine-level payoff: repeated minimize() and reoptimize() on one
//     engine skip sealed refutations (combos_skipped_cache > 0) while
//     returning exactly what a cache-disabled fresh engine returns.
#include "core/search_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "benchmarks/random_dfg.hpp"
#include "benchmarks/suite.hpp"
#include "core/engine.hpp"
#include "core/reoptimize.hpp"
#include "dfg/analysis.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "vendor/catalogs.hpp"

namespace ht::core {
namespace {

using dfg::ResourceClass;

PaletteSignature make_sig(std::uint64_t adders, std::uint64_t multipliers,
                          int lambda_detection, int lambda_recovery,
                          long long area_limit) {
  PaletteSignature sig;
  sig.masks[static_cast<int>(ResourceClass::kAdder)] = adders;
  sig.masks[static_cast<int>(ResourceClass::kMultiplier)] = multipliers;
  sig.lambda_detection = lambda_detection;
  sig.lambda_recovery = lambda_recovery;
  sig.area_limit = area_limit;
  return sig;
}

TEST(SearchCacheTest, EntriesAreScopedUntilSealed) {
  SearchCache cache;
  const ProblemSpec spec = test::motivational_spec();
  const std::uint64_t e1 = cache.begin_op(spec);
  const PaletteSignature sig = make_sig(0b0111, 0b0011, 4, 3, 22000);
  cache.record(sig, e1, /*ctx=*/7, /*combo_cost=*/500);
  ASSERT_EQ(cache.size(), 1u);

  // The dispatch-loop query must not see the producing operation's own
  // entries; the post-search query sees them only under the producing ctx.
  EXPECT_FALSE(cache.dominated_frozen(sig, e1));
  EXPECT_TRUE(cache.dominated(sig, e1, 7));
  EXPECT_FALSE(cache.dominated(sig, e1, 3));

  const std::uint64_t e2 = cache.begin_op(spec);
  EXPECT_TRUE(cache.dominated_frozen(sig, e2));
  EXPECT_TRUE(cache.dominated(sig, e2, 0));
}

TEST(SearchCacheTest, DominanceNeedsSubsetMasksAndNoLooserBounds) {
  SearchCache cache;
  const ProblemSpec spec = test::motivational_spec();
  const std::uint64_t e1 = cache.begin_op(spec);
  cache.record(make_sig(0b0111, 0b0011, 4, 3, 22000), e1, 0, 500);
  const std::uint64_t e2 = cache.begin_op(spec);

  // Subset masks and equal-or-tighter bounds inherit the refutation.
  EXPECT_TRUE(cache.dominated_frozen(make_sig(0b0111, 0b0011, 4, 3, 22000), e2));
  EXPECT_TRUE(cache.dominated_frozen(make_sig(0b0101, 0b0001, 4, 3, 22000), e2));
  EXPECT_TRUE(cache.dominated_frozen(make_sig(0b0111, 0b0011, 3, 2, 20000), e2));

  // Any extra vendor or any loosened bound voids the proof.
  EXPECT_FALSE(
      cache.dominated_frozen(make_sig(0b1111, 0b0011, 4, 3, 22000), e2));
  EXPECT_FALSE(
      cache.dominated_frozen(make_sig(0b0111, 0b0111, 4, 3, 22000), e2));
  EXPECT_FALSE(
      cache.dominated_frozen(make_sig(0b0111, 0b0011, 5, 3, 22000), e2));
  EXPECT_FALSE(
      cache.dominated_frozen(make_sig(0b0111, 0b0011, 4, 4, 22000), e2));
  EXPECT_FALSE(
      cache.dominated_frozen(make_sig(0b0111, 0b0011, 4, 3, 30000), e2));
}

TEST(SearchCacheTest, FinalizeContextKeepsOnlyTheDeterministicPrefix) {
  SearchCache cache;
  const ProblemSpec spec = test::motivational_spec();
  const std::uint64_t e1 = cache.begin_op(spec);
  // Disjoint masks so neither entry compacts the other away.
  cache.record(make_sig(0b0001, 0, 4, 3, 22000), e1, 0, /*combo_cost=*/100);
  cache.record(make_sig(0b0010, 0, 4, 3, 22000), e1, 0, /*combo_cost=*/900);
  ASSERT_EQ(cache.size(), 2u);

  // Entries at or above the final incumbent cost may have been dispatched
  // speculatively (thread-count dependent) — finalize drops them.
  cache.finalize_context(e1, 0, /*keep_below=*/500);
  EXPECT_EQ(cache.size(), 1u);

  const std::uint64_t e2 = cache.begin_op(spec);
  EXPECT_TRUE(cache.dominated_frozen(make_sig(0b0001, 0, 4, 3, 22000), e2));
  EXPECT_FALSE(cache.dominated_frozen(make_sig(0b0010, 0, 4, 3, 22000), e2));
}

TEST(SearchCacheTest, BeginOpKeepsEntriesForThinnedMarketsOnly) {
  SearchCache cache;
  ProblemSpec spec = test::motivational_spec();
  const std::uint64_t e1 = cache.begin_op(spec);
  cache.record(make_sig(0b0011, 0b0001, 4, 3, 22000), e1, 0, 500);
  ASSERT_EQ(cache.size(), 1u);

  // Different bounds are carried inside signatures, not the spec family.
  ProblemSpec tighter = spec;
  tighter.area_limit = 20000;
  cache.begin_op(tighter);
  EXPECT_EQ(cache.size(), 1u);

  // A thinned catalog (offers removed, areas unchanged) keeps the store —
  // this is what makes reoptimize() benefit from earlier proofs.
  ProblemSpec thinned = spec;
  thinned.catalog = without_licenses(
      spec.catalog, {LicenseKey{0, ResourceClass::kAdder}});
  cache.begin_op(thinned);
  EXPECT_EQ(cache.size(), 1u);

  // Changing the area of an offer both catalogs carry invalidates every
  // proof (the CSP's area math changed under the entries).
  ProblemSpec rearea = spec;
  vendor::IpOffer offer = spec.catalog.offer(1, ResourceClass::kAdder);
  offer.area += 1000;
  rearea.catalog.set_offer(1, ResourceClass::kAdder, offer);
  cache.begin_op(rearea);
  EXPECT_EQ(cache.size(), 0u);

  // Rebuild, then change the graph: structural mismatch also clears.
  const std::uint64_t e5 = cache.begin_op(spec);
  cache.record(make_sig(0b0011, 0b0001, 4, 3, 22000), e5, 0, 500);
  ASSERT_EQ(cache.size(), 1u);
  ProblemSpec regraph = spec;
  regraph.graph = benchmarks::by_name("mof2").factory();
  cache.begin_op(regraph);
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// The monotonicity lemma, property-style.

vendor::Catalog random_catalog(int num_vendors, util::Rng& rng) {
  vendor::Catalog catalog(num_vendors);
  for (int v = 0; v < num_vendors; ++v) {
    for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
      vendor::IpOffer offer;
      offer.area = static_cast<int>(80 + 40 * rng.uniform_int(1, 6));
      offer.cost =
          static_cast<int>(100 * (v + 1) + 10 * cls + rng.uniform_int(1, 50));
      catalog.set_offer(v, static_cast<ResourceClass>(cls), offer);
    }
  }
  return catalog;
}

TEST(MonotonicityLemmaTest, SubsetsOfRefutedPalettesAreRefuted) {
  util::Rng rng(20260806);
  CspOptions options;
  options.max_nodes = 2'000'000;

  int refuted_palettes = 0;
  int checked_subsets = 0;
  for (int trial = 0; trial < 60 && refuted_palettes < 6; ++trial) {
    benchmarks::RandomDfgConfig config;
    config.num_ops = static_cast<int>(7 + rng.uniform_int(0, 4));
    config.edge_probability = 0.5;

    ProblemSpec spec;
    spec.graph = benchmarks::random_dfg(config, rng);
    spec.catalog =
        random_catalog(static_cast<int>(3 + rng.uniform_int(0, 2)), rng);
    const int critical_path =
        dfg::critical_path_length(spec.graph, spec.op_latencies());
    spec.lambda_detection =
        critical_path + static_cast<int>(rng.uniform_int(0, 1));
    spec.lambda_recovery = critical_path;
    spec.with_recovery = true;
    spec.area_limit = 1500 + 400 * rng.uniform_int(0, 4);
    // One instance per license keeps small palettes genuinely scarce.
    spec.max_instances_per_offer = 1;

    const auto ops_per_class = spec.graph.ops_per_class();
    const int num_vendors = spec.catalog.num_vendors();
    Palettes palettes;
    for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
      if (ops_per_class[cls] == 0) continue;
      const int size = std::min<int>(
          num_vendors, static_cast<int>(2 + rng.uniform_int(0, 1)));
      while (static_cast<int>(palettes[cls].size()) < size) {
        const auto v =
            static_cast<vendor::VendorId>(rng.uniform_int(0, num_vendors - 1));
        if (std::find(palettes[cls].begin(), palettes[cls].end(), v) ==
            palettes[cls].end()) {
          palettes[cls].push_back(v);
        }
      }
      std::sort(palettes[cls].begin(), palettes[cls].end());
    }

    const StaticScreens screens(spec, /*enhanced=*/true);
    const bool screened = screens.refutes(palettes);
    const CspResult result = schedule_and_bind(spec, palettes, options);

    if (result.status == CspResult::Status::kFeasible) {
      // Screens are complete proofs: refuting a solvable palette would be
      // unsound and would silently corrupt optimizer results.
      EXPECT_FALSE(screened) << "static screen refuted a solvable palette";
      continue;
    }
    if (result.status != CspResult::Status::kInfeasible) continue;

    ++refuted_palettes;
    for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
      if (palettes[cls].size() < 2) continue;
      for (std::size_t drop = 0; drop < palettes[cls].size(); ++drop) {
        Palettes subset = palettes;
        subset[cls].erase(subset[cls].begin() +
                          static_cast<std::ptrdiff_t>(drop));
        const CspResult sub = schedule_and_bind(spec, subset, options);
        EXPECT_EQ(sub.status, CspResult::Status::kInfeasible)
            << "dropping vendor " << palettes[cls][drop] << " of class "
            << cls << " broke the monotonicity lemma (trial " << trial << ")";
        ++checked_subsets;
      }
    }
  }
  // The trial mix must actually exercise the lemma, not vacuously pass.
  EXPECT_GE(refuted_palettes, 3);
  EXPECT_GT(checked_subsets, 0);
}

// ---------------------------------------------------------------------------
// Engine-level payoff: sealed proofs prune later operations.

/// polynom on the Section 5 catalog, tight enough that the cheapest-first
/// search refutes several license sets before the winner.
ProblemSpec contested_spec() {
  ProblemSpec spec;
  spec.graph = benchmarks::by_name("polynom").factory();
  spec.catalog = vendor::section5();
  const int critical_path =
      dfg::critical_path_length(spec.graph, spec.op_latencies());
  spec.lambda_detection = critical_path;
  spec.lambda_recovery = critical_path;
  spec.with_recovery = true;
  spec.area_limit = 400000;
  spec.max_instances_per_offer = 1;
  return spec;
}

/// Request with the static screens and cost bounds off, so every refutation
/// is a CSP proof and the dominance cache (the thing under test) gets all
/// the credit.
SynthesisRequest cache_only_request() {
  SynthesisRequest request;
  request.spec = contested_spec();
  request.pruning.static_screens = false;
  request.pruning.cost_bounds = false;
  return request;
}

void expect_same_outcome(const OptimizeResult& a, const OptimizeResult& b,
                         const ProblemSpec& spec) {
  ASSERT_EQ(a.status, b.status);
  EXPECT_EQ(a.cost, b.cost);
  if (a.has_solution() && b.has_solution()) {
    EXPECT_EQ(a.solution.licenses_used(spec), b.solution.licenses_used(spec));
  }
}

TEST(SearchCacheEngineTest, RepeatedMinimizeSkipsSealedRefutations) {
  const SynthesisRequest request = cache_only_request();
  SynthesisEngine engine(request);

  const OptimizeResult first = engine.minimize();
  ASSERT_TRUE(first.has_solution());
  // A fresh engine has nothing sealed, so nothing can be skipped.
  EXPECT_EQ(first.stats.combos_skipped_cache, 0);
  ASSERT_GT(first.stats.combos_tried, 1)
      << "spec too easy to exercise the cache";

  const OptimizeResult second = engine.minimize();
  expect_same_outcome(first, second, request.spec);
  EXPECT_GT(second.stats.combos_skipped_cache, 0);
  EXPECT_LT(second.stats.combos_tried, first.stats.combos_tried);
}

TEST(SearchCacheEngineTest, ReoptimizeReusesSealedProofs) {
  const SynthesisRequest request = cache_only_request();
  SynthesisEngine engine(request);

  const OptimizeResult first = engine.minimize();
  ASSERT_TRUE(first.has_solution());
  const std::set<LicenseKey> used = first.solution.licenses_used(request.spec);
  ASSERT_FALSE(used.empty());
  const std::set<LicenseKey> banned = {*used.begin()};

  const OptimizeResult respin = engine.reoptimize(banned);

  // Ground truth: a fresh cache-disabled engine on the thinned market.
  SynthesisRequest fresh = request;
  fresh.spec.catalog = without_licenses(request.spec.catalog, banned);
  fresh.pruning.dominance_cache = false;
  SynthesisEngine baseline(fresh);
  const OptimizeResult expected = baseline.minimize();

  expect_same_outcome(expected, respin, fresh.spec);
  // The sealed refutations from minimize() carry over to the thinned
  // market (identical signatures re-posed by the cheaper queue prefix).
  EXPECT_GT(respin.stats.combos_skipped_cache, 0);
}

}  // namespace
}  // namespace ht::core
