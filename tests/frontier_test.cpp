#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/frontier.hpp"
#include "test_helpers.hpp"

namespace ht::core {
namespace {

/// Frontier sweeps through the canonical request API.
std::vector<FrontierPoint> sweep(const ProblemSpec& base, RequestKind kind,
                                 std::vector<long long> values) {
  SynthesisRequest request = make_request(base);
  request.kind = kind;
  request.sweep_values = std::move(values);
  return synthesize(request).frontier;
}

TEST(FrontierTest, AreaSweepCostIsNonincreasing) {
  const ProblemSpec spec = test::motivational_detection_only();
  const std::vector<long long> areas = {13000, 16000, 20000, 30000, 60000};
  const auto frontier = sweep(spec, RequestKind::kAreaFrontier, areas);
  ASSERT_EQ(frontier.size(), areas.size());
  long long previous = -1;
  for (const FrontierPoint& point : frontier) {
    EXPECT_EQ(point.constraint,
              areas[static_cast<std::size_t>(&point - frontier.data())]);
    if (point.result.status != OptStatus::kOptimal) continue;
    if (previous >= 0) {
      EXPECT_LE(point.result.cost, previous);
    }
    previous = point.result.cost;
  }
  // The loosest budget must be solvable.
  EXPECT_TRUE(frontier.back().result.has_solution());
}

TEST(FrontierTest, AreaSweepGoesInfeasibleBelowMinimum) {
  const ProblemSpec spec = test::motivational_detection_only();
  // polynom needs at least ~2 concurrent multipliers; 8000 can't hold one
  // pair of them plus adders.
  const auto frontier = sweep(spec, RequestKind::kAreaFrontier, {8000});
  EXPECT_EQ(frontier[0].result.status, OptStatus::kInfeasible);
}

TEST(FrontierTest, LatencySweepFloorsAtTwiceCriticalPath) {
  ProblemSpec base = test::motivational_spec();
  base.catalog = vendor::section5();
  base.area_limit = 60000;
  // polynom critical path = 3: totals below 6 are infeasible by definition.
  const auto frontier = sweep(base, RequestKind::kLatencyFrontier, {4, 5, 6, 8, 10});
  EXPECT_EQ(frontier[0].result.status, OptStatus::kInfeasible);
  EXPECT_EQ(frontier[1].result.status, OptStatus::kInfeasible);
  EXPECT_TRUE(frontier[2].result.has_solution());
  EXPECT_TRUE(frontier[4].result.has_solution());
  // Looser total never costs more (both proved optimal).
  if (frontier[2].result.status == OptStatus::kOptimal &&
      frontier[4].result.status == OptStatus::kOptimal) {
    EXPECT_LE(frontier[4].result.cost, frontier[2].result.cost);
  }
}

TEST(FrontierTest, LatencySweepRequiresRecoveryMode) {
  const ProblemSpec spec = test::motivational_detection_only();
  EXPECT_THROW(sweep(spec, RequestKind::kLatencyFrontier, {8}), util::SpecError);
}

}  // namespace
}  // namespace ht::core
