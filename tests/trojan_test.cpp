#include <gtest/gtest.h>

#include "benchmarks/classic.hpp"
#include "trojan/exec.hpp"
#include "trojan/profiling.hpp"
#include "trojan/trojan.hpp"

namespace ht::trojan {
namespace {

// ---- execute_op semantics --------------------------------------------------

TEST(ExecTest, ArithmeticBasics) {
  EXPECT_EQ(execute_op(dfg::OpType::kAdd, 2, 3), 5);
  EXPECT_EQ(execute_op(dfg::OpType::kSub, 2, 3), -1);
  EXPECT_EQ(execute_op(dfg::OpType::kMul, -4, 5), -20);
  EXPECT_EQ(execute_op(dfg::OpType::kDiv, 17, 5), 3);
}

TEST(ExecTest, DivisionByZeroIsTotal) {
  EXPECT_EQ(execute_op(dfg::OpType::kDiv, 17, 0), 0);
}

TEST(ExecTest, WrapAroundIsModular) {
  const Word max = std::numeric_limits<Word>::max();
  EXPECT_EQ(execute_op(dfg::OpType::kAdd, max, 1),
            std::numeric_limits<Word>::min());
}

TEST(ExecTest, ShiftsMaskAmount) {
  EXPECT_EQ(execute_op(dfg::OpType::kShl, 1, 3), 8);
  EXPECT_EQ(execute_op(dfg::OpType::kShl, 1, 64), 1);  // 64 & 63 == 0
  EXPECT_EQ(execute_op(dfg::OpType::kShr, -8, 1), -4); // arithmetic
}

TEST(ExecTest, LogicAndComparisons) {
  EXPECT_EQ(execute_op(dfg::OpType::kAnd, 0b1100, 0b1010), 0b1000);
  EXPECT_EQ(execute_op(dfg::OpType::kOr, 0b1100, 0b1010), 0b1110);
  EXPECT_EQ(execute_op(dfg::OpType::kXor, 0b1100, 0b1010), 0b0110);
  EXPECT_EQ(execute_op(dfg::OpType::kLt, -1, 0), 1);
  EXPECT_EQ(execute_op(dfg::OpType::kLt, 0, 0), 0);
  EXPECT_EQ(execute_op(dfg::OpType::kMax, -3, 7), 7);
  EXPECT_EQ(execute_op(dfg::OpType::kMin, -3, 7), -3);
}

TEST(ExecTest, GoldenEvalWrongInputCountThrows) {
  EXPECT_THROW(golden_eval(benchmarks::polynom(), {1, 2}), util::SpecError);
}

// ---- triggers ---------------------------------------------------------------

TEST(TriggerTest, CombinationalFiresExactlyOnPattern) {
  TrojanSpec spec;
  spec.trigger.pattern_a = 0xdead;
  spec.trigger.pattern_b = 0xbeef;
  TriggerState state;
  EXPECT_FALSE(state.step(spec, 0xdead, 0xbeee));
  EXPECT_FALSE(state.step(spec, 0, 0));
  EXPECT_TRUE(state.step(spec, 0xdead, 0xbeef));
  // Memoryless: deactivates as soon as the condition is gone.
  EXPECT_FALSE(state.step(spec, 1, 2));
}

TEST(TriggerTest, MaskWidensTheTriggerToNearbyValues) {
  TrojanSpec spec;
  spec.trigger.mask = ~0xFull;  // ignore low 4 bits: "closely related"
  spec.trigger.pattern_a = 0x100;
  spec.trigger.pattern_b = 0x200;
  TriggerState state;
  EXPECT_TRUE(state.step(spec, 0x10A, 0x203));
  EXPECT_FALSE(state.step(spec, 0x110, 0x200));
}

TEST(TriggerTest, SequentialArmsOnThresholdThMatch) {
  TrojanSpec spec;
  spec.trigger.kind = TriggerSpec::Kind::kSequential;
  spec.trigger.threshold = 3;
  spec.trigger.pattern_a = 7;
  spec.trigger.pattern_b = 9;
  TriggerState state;
  EXPECT_FALSE(state.step(spec, 7, 9));  // 1st match: arming
  EXPECT_FALSE(state.step(spec, 7, 9));  // 2nd
  EXPECT_TRUE(state.step(spec, 7, 9));   // 3rd: fires
  EXPECT_TRUE(state.step(spec, 7, 9));   // stays armed while matching
  // Other operands on the same core: trigger signal resets (payload is
  // memoryless) but the counter stays armed.
  EXPECT_FALSE(state.step(spec, 1, 1));
  EXPECT_TRUE(state.step(spec, 7, 9));
}

TEST(TriggerTest, SequentialCounterSurvivesInterleavedOps) {
  TrojanSpec spec;
  spec.trigger.kind = TriggerSpec::Kind::kSequential;
  spec.trigger.threshold = 2;
  spec.trigger.pattern_a = 5;
  spec.trigger.pattern_b = 5;
  TriggerState state;
  EXPECT_FALSE(state.step(spec, 5, 5));
  EXPECT_FALSE(state.step(spec, 0, 0));  // unrelated op on the same core
  EXPECT_TRUE(state.step(spec, 5, 5));   // second matching event fires
}

TEST(TriggerTest, CollusionNeedsSameVendorProvenance) {
  TrojanSpec spec;
  spec.trigger.kind = TriggerSpec::Kind::kCollusion;
  spec.trigger.mask = 0;  // any operand value
  TriggerState state;
  // Values from other vendors never trigger, whatever they are.
  EXPECT_FALSE(state.step(spec, 0xdead, 0xbeef, false));
  // A value from a same-vendor upstream core does.
  EXPECT_TRUE(state.step(spec, 1, 2, true));
  // Memoryless: deactivates the moment the colluding link is gone.
  EXPECT_FALSE(state.step(spec, 1, 2, false));
}

TEST(TriggerTest, CollusionCanAlsoRequireAPattern) {
  TrojanSpec spec;
  spec.trigger.kind = TriggerSpec::Kind::kCollusion;
  spec.trigger.pattern_a = 42;
  spec.trigger.pattern_b = 43;
  TriggerState state;
  EXPECT_FALSE(state.step(spec, 42, 43, false));  // pattern but no channel
  EXPECT_FALSE(state.step(spec, 1, 2, true));     // channel but no pattern
  EXPECT_TRUE(state.step(spec, 42, 43, true));
}

TEST(TriggerTest, PayloadWithMemoryLatches) {
  TrojanSpec spec;
  spec.trigger.pattern_a = 1;
  spec.trigger.pattern_b = 1;
  spec.payload.has_memory = true;  // Figure 3 variant
  TriggerState state;
  EXPECT_FALSE(state.step(spec, 0, 0));
  EXPECT_TRUE(state.step(spec, 1, 1));
  // Latched: stays active even though the condition is gone — exactly why
  // the paper scopes recovery to memoryless payloads.
  EXPECT_TRUE(state.step(spec, 0, 0));
  state.reset();
  EXPECT_FALSE(state.step(spec, 0, 0));
}

// ---- profiling ----------------------------------------------------------------

TEST(ProfilingTest, IdenticalOpsAreClose) {
  // diff2 materializes u*dx twice (ops 'udx' and 'udx2'): distance 0.
  const dfg::Dfg graph = benchmarks::diff2();
  util::Rng rng(123);
  ProfileConfig config;
  config.num_vectors = 64;
  config.tolerance = 0;
  const auto pairs = profile_close_pairs(graph, config, rng);
  bool found = false;
  for (const auto& [a, b] : pairs) {
    if (graph.op(a).name == "udx" && graph.op(b).name == "udx2") found = true;
    // Every reported pair must share a resource class.
    EXPECT_EQ(dfg::resource_class_of(graph.op(a).type),
              dfg::resource_class_of(graph.op(b).type));
  }
  EXPECT_TRUE(found);
}

TEST(ProfilingTest, ToleranceZeroExcludesDistinctOps) {
  const dfg::Dfg graph = benchmarks::polynom();
  util::Rng rng(9);
  ProfileConfig config;
  config.num_vectors = 32;
  config.tolerance = 0;
  // polynom's three multiplies see unrelated random products; with a large
  // input range no pair should profile as close.
  EXPECT_TRUE(profile_close_pairs(graph, config, rng).empty());
}

TEST(ProfilingTest, HugeToleranceMakesEverythingClose) {
  const dfg::Dfg graph = benchmarks::polynom();
  util::Rng rng(10);
  ProfileConfig config;
  config.num_vectors = 8;
  config.tolerance = std::numeric_limits<Word>::max();
  // 3 multiplier pairs: (m1,m2), (m1,m3), (m2,m3); 1 adder pair (s1,s2).
  EXPECT_EQ(profile_close_pairs(graph, config, rng).size(), 4u);
}

TEST(ProfilingTest, DeterministicUnderSeed) {
  const dfg::Dfg graph = benchmarks::dtmf();
  ProfileConfig config;
  config.num_vectors = 32;
  config.tolerance = 100;
  util::Rng rng_a(5);
  util::Rng rng_b(5);
  EXPECT_EQ(profile_close_pairs(graph, config, rng_a),
            profile_close_pairs(graph, config, rng_b));
}

}  // namespace
}  // namespace ht::trojan
