// Property tests for the incremental occupancy skyline and the energetic
// interval floor (core/skyline.hpp). The solver's claim is that interval
// delta maintenance — O(latency) per assignment, lazy peak revalidation
// after removals — is indistinguishable from rebuilding the profile from
// the live assignment set, and that the bucketed energetic floor equals
// the brute-force over-all-windows definition.
#include "core/skyline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ht::core {
namespace {

struct Placement {
  int start = 0;
  int len = 0;
  int instances = 0;
  long long area = 0;
};

/// Reference profile: rebuild from scratch from the live placement set.
struct RebuiltProfile {
  std::vector<int> instances;
  std::vector<long long> area;

  explicit RebuiltProfile(int lambda, const std::vector<Placement>& live)
      : instances(static_cast<std::size_t>(lambda), 0),
        area(static_cast<std::size_t>(lambda), 0) {
    for (const Placement& p : live) {
      for (int cycle = p.start; cycle < p.start + p.len; ++cycle) {
        instances[static_cast<std::size_t>(cycle - 1)] += p.instances;
        area[static_cast<std::size_t>(cycle - 1)] += p.area;
      }
    }
  }
};

TEST(SkylineTest, DeltaUpdatesEqualFullRebuildRandomized) {
  util::Rng rng(1234);
  const int lambda = 23;
  OccupancySkyline sky(lambda);
  std::vector<Placement> live;
  for (int step = 0; step < 4000; ++step) {
    const bool remove = !live.empty() && rng.chance(0.45);
    if (remove) {
      const std::size_t at = rng.index(live.size());
      const Placement p = live[at];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
      sky.remove(p.start, p.len, p.instances, p.area);
    } else {
      Placement p;
      p.len = static_cast<int>(rng.uniform_int(1, 6));
      p.start = static_cast<int>(rng.uniform_int(1, lambda - p.len + 1));
      p.instances = static_cast<int>(rng.uniform_int(1, 3));
      p.area = rng.uniform_int(10, 500);
      live.push_back(p);
      sky.add(p.start, p.len, p.instances, p.area);
    }
    const RebuiltProfile ref(lambda, live);
    for (int cycle = 1; cycle <= lambda; ++cycle) {
      ASSERT_EQ(sky.instances_at(cycle),
                ref.instances[static_cast<std::size_t>(cycle - 1)])
          << "step " << step << " cycle " << cycle;
      ASSERT_EQ(sky.area_at(cycle),
                ref.area[static_cast<std::size_t>(cycle - 1)])
          << "step " << step << " cycle " << cycle;
    }
    // Peaks: exact after adds, lazily revalidated after removals.
    const int want_peak =
        *std::max_element(ref.instances.begin(), ref.instances.end());
    const long long want_area =
        *std::max_element(ref.area.begin(), ref.area.end());
    ASSERT_EQ(sky.peak_instances(), std::max(want_peak, 0)) << "step " << step;
    ASSERT_EQ(sky.peak_area(), std::max<long long>(want_area, 0))
        << "step " << step;
    // Window queries go through the shared row_peak kernel.
    const int qlen = static_cast<int>(rng.uniform_int(1, lambda));
    const int qstart = static_cast<int>(rng.uniform_int(1, lambda - qlen + 1));
    int want_window = 0;
    for (int cycle = qstart; cycle < qstart + qlen; ++cycle) {
      want_window = std::max(
          want_window, ref.instances[static_cast<std::size_t>(cycle - 1)]);
    }
    ASSERT_EQ(sky.max_instances_in(qstart, qlen), want_window)
        << "step " << step;
  }
}

TEST(SkylineTest, RowPeakMatchesMaxElementOnAllOffsets) {
  // The 4-wide unrolled kernel must agree with std::max_element for every
  // (start, len) alignment, including the scalar tail cases.
  util::Rng rng(99);
  std::vector<int> row(37);
  for (int& cell : row) cell = static_cast<int>(rng.uniform_int(-50, 50));
  for (int start = 1; start <= static_cast<int>(row.size()); ++start) {
    for (int len = 1; start + len - 1 <= static_cast<int>(row.size());
         ++len) {
      const int want = *std::max_element(
          row.begin() + (start - 1), row.begin() + (start - 1) + len);
      ASSERT_EQ(row_peak(row.data(), start, len), want)
          << "start " << start << " len " << len;
    }
  }
}

/// Brute-force energetic floor: every window [a, b], every item fully
/// confined to it contributes its demand; the floor is the max ceiling of
/// demand over width.
int brute_force_floor(const std::vector<EnergeticItem>& items, int lambda) {
  int floor = 0;
  for (int a = 1; a <= lambda; ++a) {
    for (int b = a; b <= lambda; ++b) {
      long long demand = 0;
      for (const EnergeticItem& item : items) {
        if (item.lo >= a && item.hi <= b) demand += item.demand;
      }
      const long long width = b - a + 1;
      floor = std::max(
          floor, static_cast<int>((demand + width - 1) / width));
    }
  }
  return floor;
}

TEST(SkylineTest, EnergeticFloorEqualsBruteForceRandomized) {
  util::Rng rng(4321);
  for (int round = 0; round < 300; ++round) {
    const int lambda = static_cast<int>(rng.uniform_int(1, 14));
    const int n = static_cast<int>(rng.uniform_int(0, 12));
    std::vector<EnergeticItem> items;
    for (int i = 0; i < n; ++i) {
      EnergeticItem item;
      item.lo = static_cast<int>(rng.uniform_int(1, lambda));
      item.hi = static_cast<int>(rng.uniform_int(item.lo, lambda));
      item.demand = rng.uniform_int(1, 40);
      items.push_back(item);
    }
    ASSERT_EQ(energetic_interval_floor(items, lambda),
              brute_force_floor(items, lambda))
        << "round " << round << " lambda " << lambda;
  }
}

TEST(SkylineTest, EnergeticFloorEmptyAndSingleton) {
  EXPECT_EQ(energetic_interval_floor({}, 5), 0);
  std::vector<EnergeticItem> one = {{2, 4, 9}};
  // Tightest containing window is [2, 4]: ceil(9 / 3) = 3.
  EXPECT_EQ(energetic_interval_floor(one, 6), 3);
}

}  // namespace
}  // namespace ht::core
