// Tests for the SynthesisRequest/SynthesisEngine façade and its parallel
// license-set search.
//
// The load-bearing property is bit-determinism: the engine commits the
// feasible solution of lowest (license cost, palette index), so the result
// of a node/combo-budgeted search must be identical for every worker count.
// We check that on all six paper benchmarks, and separately that
// cooperative cancellation returns promptly and never a torn solution.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "benchmarks/suite.hpp"
#include "core/validate.hpp"
#include "dfg/analysis.hpp"
#include "test_helpers.hpp"
#include "vendor/catalogs.hpp"

namespace ht::core {
namespace {

/// A recovery-mode spec for one paper benchmark: Section 5 catalog, latency
/// bounds a little above the critical path so the search has real work but
/// feasible space.
ProblemSpec suite_spec(const benchmarks::BenchmarkCase& bench) {
  ProblemSpec spec;
  spec.graph = bench.factory();
  spec.catalog = vendor::section5();
  const int critical_path =
      dfg::critical_path_length(spec.graph, spec.op_latencies());
  spec.lambda_detection = critical_path + 1;
  spec.lambda_recovery = critical_path;
  spec.with_recovery = true;
  spec.area_limit = 400000;
  // One instance per license forces the schedule across vendors, so cheap
  // license sets get disproven before the winner — a real multi-set search
  // rather than a first-set hit.
  spec.max_instances_per_offer = 1;
  return spec;
}

/// Small budgets that still finish every benchmark: determinism must hold
/// whenever node/combo budgets (not the clock) terminate the search.
SynthesisRequest budgeted_request(ProblemSpec spec) {
  SynthesisRequest request;
  request.spec = std::move(spec);
  request.strategy = Strategy::kHeuristic;
  request.limits.heuristic_restarts = 1;
  request.limits.heuristic_node_limit = 2'000;
  request.limits.max_combos = 25;
  request.limits.time_limit_seconds = 600;  // never the binding limit
  return request;
}

void expect_identical(const OptimizeResult& a, const OptimizeResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.status, b.status) << label;
  if (!a.has_solution()) return;
  EXPECT_EQ(a.cost, b.cost) << label;
  ASSERT_EQ(a.solution.num_ops(), b.solution.num_ops()) << label;
  for (CopyKind kind : a.solution.active_kinds()) {
    for (dfg::OpId op = 0; op < a.solution.num_ops(); ++op) {
      EXPECT_EQ(a.solution.at(kind, op), b.solution.at(kind, op))
          << label << " " << copy_kind_name(kind) << " op " << op;
    }
  }
}

TEST(EngineDeterminismTest, OneThreadAndFourThreadsAgreeOnPaperSuite) {
  long total_combos = 0;
  for (const benchmarks::BenchmarkCase& bench : benchmarks::paper_suite()) {
    SynthesisRequest request = budgeted_request(suite_spec(bench));
    // Screens and cost bounds off: this test covers the parallel CSP
    // commit machinery, so the cheaper-set disproofs must come from actual
    // worker evaluations (EnginePruningTest covers the screens-on
    // determinism, EngineBoundsTest the bounds-on determinism).
    request.pruning.static_screens = false;
    request.pruning.cost_bounds = false;

    request.parallelism.threads = 1;
    SynthesisEngine serial(request);
    const OptimizeResult one = serial.minimize();
    total_combos += one.stats.combos_tried;

    request.parallelism.threads = 4;
    SynthesisEngine parallel(std::move(request));
    const OptimizeResult four = parallel.minimize();

    expect_identical(one, four, bench.name);
    if (one.has_solution()) {
      require_valid(serial.request().spec, one.solution);
    }
  }
  // The specs are built so the suite disproves cheaper license sets before
  // committing — otherwise this test would only cover first-set hits.
  EXPECT_GT(total_combos, 12);
}

TEST(EngineDeterminismTest, ThreadsFieldOfOptimizerOptionsIsTransparent) {
  // The legacy wrappers route through the engine; the new `threads` knob
  // must not change what they return.
  const ProblemSpec spec = test::motivational_spec();
  OptimizerOptions options;
  const OptimizeResult serial = synthesize(make_request(spec, options)).result;
  options.threads = 4;
  const OptimizeResult parallel = synthesize(make_request(spec, options)).result;
  expect_identical(serial, parallel, "motivational");
  EXPECT_EQ(serial.status, OptStatus::kOptimal);
}

TEST(EngineDeterminismTest, TotalLatencySplitSweepAgrees) {
  ProblemSpec base = test::motivational_spec();
  base.lambda_detection = 0;
  base.lambda_recovery = 0;
  OptimizerOptions options;
  SynthesisRequest request = make_request(base, options);
  request.kind = RequestKind::kMinimizeTotalLatency;
  request.lambda_total = 7;
  const SynthesisResponse serial = synthesize(request);
  request.parallelism.threads = 4;
  const SynthesisResponse parallel = synthesize(request);
  EXPECT_EQ(serial.lambda_detection, parallel.lambda_detection);
  EXPECT_EQ(serial.lambda_recovery, parallel.lambda_recovery);
  expect_identical(serial.result, parallel.result, "split sweep");
}

TEST(EngineCancelTest, PreCancelledTokenReturnsUnknownImmediately) {
  util::CancelToken cancel;
  cancel.request_cancel();
  SynthesisRequest request = budgeted_request(test::easy_section5_spec());
  request.cancel = &cancel;
  SynthesisEngine engine(std::move(request));
  const OptimizeResult result = engine.minimize();
  EXPECT_EQ(result.status, OptStatus::kUnknown);
  EXPECT_EQ(result.stats.combos_tried, 0);
}

TEST(EngineCancelTest, MidSearchCancelReturnsPromptlyWithoutTornSolution) {
  // An expensive exact search on the biggest benchmark, cancelled from
  // another thread shortly after it starts. The engine must come back well
  // before its budgets and either report kUnknown or a fully valid
  // incumbent — never a half-committed solution.
  SynthesisRequest request;
  request.spec = suite_spec(benchmarks::by_name("ellipticicass"));
  request.strategy = Strategy::kExact;
  request.limits.csp_node_limit = 100'000'000;
  request.limits.max_combos = 200'000;
  request.limits.time_limit_seconds = 600;
  request.parallelism.threads = 2;
  util::CancelToken cancel;
  request.cancel = &cancel;

  SynthesisEngine engine(std::move(request));
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    cancel.request_cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  const OptimizeResult result = engine.minimize();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  canceller.join();

  // Generous bound: polls are every 1024 CSP nodes, so the search must
  // unwind within a few seconds even on a loaded machine.
  EXPECT_LT(seconds, 30.0);
  EXPECT_TRUE(result.status == OptStatus::kUnknown ||
              result.status == OptStatus::kFeasible)
      << to_string(result.status);
  if (result.has_solution()) {
    require_valid(engine.request().spec, result.solution);
  }
}

TEST(EngineProgressTest, CallbackSeesMonotoneCombosAndFinalIncumbent) {
  std::atomic<int> calls{0};
  long last_combos = 0;
  long long last_incumbent = -1;
  SynthesisRequest request = budgeted_request(test::easy_section5_spec());
  request.parallelism.threads = 4;
  // Serialized under the engine's progress lock, so plain writes are safe.
  request.progress = [&](const SynthesisProgress& progress) {
    calls.fetch_add(1);
    EXPECT_GE(progress.combos_tried, last_combos);
    last_combos = progress.combos_tried;
    if (progress.have_incumbent) last_incumbent = progress.incumbent_cost;
  };
  SynthesisEngine engine(std::move(request));
  const OptimizeResult result = engine.minimize();
  EXPECT_GT(calls.load(), 0);
  ASSERT_TRUE(result.has_solution());
  EXPECT_EQ(last_incumbent, result.cost);
}

TEST(EngineFacadeTest, RunAreaFrontierMatchesSweepMethod) {
  const ProblemSpec spec = test::motivational_spec();
  const std::vector<long long> areas = {15000, 22000, 68430};

  OptimizerOptions options;
  SynthesisRequest request = make_request(spec, options);
  request.kind = RequestKind::kAreaFrontier;
  request.sweep_values = areas;
  const std::vector<FrontierPoint> legacy = synthesize(request).frontier;

  request.parallelism.threads = 4;
  SynthesisEngine engine(std::move(request));
  FrontierSweep sweep;
  sweep.axis = FrontierSweep::Axis::kArea;
  sweep.values = areas;
  const std::vector<FrontierPoint> parallel = engine.sweep_frontier(sweep);

  ASSERT_EQ(legacy.size(), parallel.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].constraint, parallel[i].constraint) << i;
    EXPECT_EQ(legacy[i].result.status, parallel[i].result.status) << i;
    EXPECT_EQ(legacy[i].result.cost, parallel[i].result.cost) << i;
  }
}

TEST(EngineFacadeTest, MakeRequestCarriesEveryOption) {
  OptimizerOptions options;
  options.strategy = Strategy::kHeuristic;
  options.time_limit_seconds = 7;
  options.csp_node_limit = 123;
  options.heuristic_restarts = 9;
  options.heuristic_node_limit = 456;
  options.max_combos = 77;
  options.seed = 42;
  options.threads = 3;
  const SynthesisRequest request =
      make_request(test::motivational_spec(), options);
  EXPECT_EQ(request.strategy, Strategy::kHeuristic);
  EXPECT_EQ(request.limits.time_limit_seconds, 7);
  EXPECT_EQ(request.limits.csp_node_limit, 123);
  EXPECT_EQ(request.limits.heuristic_restarts, 9);
  EXPECT_EQ(request.limits.heuristic_node_limit, 456);
  EXPECT_EQ(request.limits.max_combos, 77);
  EXPECT_EQ(request.seed, 42u);
  EXPECT_EQ(request.parallelism.threads, 3);
}

TEST(EnginePruningTest, CacheOnMatchesCacheOffAcrossThreadCounts) {
  // The dominance cache must be invisible to results: cache-on runs at any
  // thread count return bit-identical statuses/costs/bindings to a
  // cache-off single-thread run on every paper benchmark.
  for (const benchmarks::BenchmarkCase& bench : benchmarks::paper_suite()) {
    SynthesisRequest reference_request = budgeted_request(suite_spec(bench));
    reference_request.pruning.dominance_cache = false;
    reference_request.parallelism.threads = 1;
    SynthesisEngine reference_engine(reference_request);
    const OptimizeResult reference = reference_engine.minimize();
    EXPECT_EQ(reference.stats.combos_skipped_cache, 0);

    for (const int threads : {1, 4, 8}) {
      SynthesisRequest request = budgeted_request(suite_spec(bench));
      request.parallelism.threads = threads;  // pruning defaults on
      SynthesisEngine engine(std::move(request));
      expect_identical(reference, engine.minimize(),
                       bench.name + " cached @" + std::to_string(threads) +
                           " threads");
    }
  }
}

TEST(EngineBoundsTest, BoundsOnIsDeterministicAndNeverWeakens) {
  // Branch-and-bound lower bounds must be invisible to solutions: bounds-on
  // runs are bit-identical across thread counts, and against a bounds-off
  // single-thread reference the verdict can only *strengthen* (a floor may
  // close a proof the reference left open) while the cost and bindings of
  // any committed solution never move.
  const auto rank = [](OptStatus status) {
    switch (status) {
      case OptStatus::kUnknown: return 0;
      case OptStatus::kFeasible: return 1;
      default: return 2;  // kOptimal / kInfeasible: terminal proofs
    }
  };
  for (const benchmarks::BenchmarkCase& bench : benchmarks::paper_suite()) {
    SynthesisRequest reference_request = budgeted_request(suite_spec(bench));
    reference_request.pruning.cost_bounds = false;
    reference_request.parallelism.threads = 1;
    SynthesisEngine reference_engine(reference_request);
    const OptimizeResult reference = reference_engine.minimize();
    EXPECT_EQ(reference.stats.lb_prunes, 0);

    OptimizeResult first_bounded;
    for (const int threads : {1, 4, 8}) {
      SynthesisRequest request = budgeted_request(suite_spec(bench));
      request.parallelism.threads = threads;  // pruning defaults on
      SynthesisEngine engine(std::move(request));
      const OptimizeResult bounded = engine.minimize();
      if (threads == 1) {
        first_bounded = bounded;
        EXPECT_GE(rank(bounded.status), rank(reference.status)) << bench.name;
        // Bounds prune with proofs, never add evaluations: a solution
        // exists on one side iff it exists on the other, with identical
        // cost and bindings.
        ASSERT_EQ(bounded.has_solution(), reference.has_solution())
            << bench.name;
        if (reference.has_solution()) {
          EXPECT_EQ(bounded.cost, reference.cost) << bench.name;
          EXPECT_EQ(bounded.solution.licenses_used(engine.request().spec),
                    reference.solution.licenses_used(engine.request().spec))
              << bench.name;
        }
      } else {
        expect_identical(first_bounded, bounded,
                         bench.name + " bounded @" + std::to_string(threads) +
                             " threads");
      }
    }
  }
}

TEST(EnginePruningTest, FrozenNogoodsAreDeterministicAcrossThreadCounts) {
  // Second operation on a warm engine: the first minimize seals its learned
  // nogoods, the repeat imports that frozen tier on every worker. Reuse may
  // only *upgrade* a verdict relative to a learning-off engine (nogoods are
  // sound deductions), and the warm result must be bit-identical across
  // thread counts — the frozen tier every interleaving imports is the same.
  const auto rank = [](OptStatus status) {
    switch (status) {
      case OptStatus::kUnknown: return 0;
      case OptStatus::kFeasible: return 1;
      default: return 2;  // kOptimal / kInfeasible: terminal proofs
    }
  };
  for (const char* name : {"polynom", "dtmf"}) {
    SynthesisRequest baseline_request = budgeted_request(
        suite_spec(benchmarks::by_name(name)));
    baseline_request.pruning.nogood_learning = false;
    SynthesisEngine baseline_engine(std::move(baseline_request));
    (void)baseline_engine.minimize();
    const OptimizeResult baseline = baseline_engine.minimize();

    SynthesisRequest reference_request = budgeted_request(
        suite_spec(benchmarks::by_name(name)));
    SynthesisEngine reference_engine(std::move(reference_request));
    (void)reference_engine.minimize();
    const OptimizeResult reference = reference_engine.minimize();
    EXPECT_GE(rank(reference.status), rank(baseline.status)) << name;
    if (baseline.has_solution() && reference.has_solution()) {
      EXPECT_EQ(reference.cost, baseline.cost) << name;
    }

    for (const int threads : {4, 8}) {
      SynthesisRequest request = budgeted_request(
          suite_spec(benchmarks::by_name(name)));
      request.parallelism.threads = threads;  // learning defaults on
      SynthesisEngine engine(std::move(request));
      (void)engine.minimize();
      expect_identical(reference, engine.minimize(),
                       std::string(name) + " warm nogoods @" +
                           std::to_string(threads) + " threads");
    }
  }
}

TEST(EnginePruningTest, FullMarketProbeBackfillsBudgetExhaustedUnknowns) {
  // Starve the search so hard it cannot commit any incumbent: one combo,
  // and too few nodes to solve the contested cheapest set. The historical
  // engine (learning off) reports kUnknown; with the conflict-directed
  // package on, the full-market probe supplies a feasible binding instead.
  ProblemSpec tight = suite_spec(benchmarks::by_name("polynom"));
  tight.lambda_detection -= 1;  // λ = critical path: greedy can't luck out
  SynthesisRequest starved = budgeted_request(std::move(tight));
  starved.limits.max_combos = 1;
  starved.limits.heuristic_node_limit = 50;
  starved.limits.heuristic_restarts = 1;

  SynthesisRequest off_request = starved;
  off_request.pruning.nogood_learning = false;
  SynthesisEngine off_engine(std::move(off_request));
  const OptimizeResult off = off_engine.minimize();
  ASSERT_EQ(off.status, OptStatus::kUnknown) << "fixture not starved enough";

  SynthesisEngine on_engine(std::move(starved));
  const OptimizeResult on = on_engine.minimize();
  EXPECT_EQ(on.status, OptStatus::kFeasible);
  ASSERT_TRUE(on.has_solution());
  EXPECT_EQ(on.cost, on.solution.license_cost(on_engine.request().spec));
  // The probe is a fallback, never a downgrade: with budgets restored the
  // search commits its own (cheaper or equal) winner, probe or not.
  ProblemSpec tight_again = suite_spec(benchmarks::by_name("polynom"));
  tight_again.lambda_detection -= 1;
  SynthesisRequest ample = budgeted_request(std::move(tight_again));
  ample.limits.max_combos = 20'000;
  ample.limits.heuristic_node_limit = 80'000;
  SynthesisEngine ample_engine(std::move(ample));
  const OptimizeResult full = ample_engine.minimize();
  ASSERT_TRUE(full.has_solution());
  EXPECT_LE(full.cost, on.cost);
}

TEST(EnginePruningTest, StaticScreensAreInvisibleToConclusiveSearches) {
  // With the exact strategy and ample budgets every dispatched set gets a
  // complete verdict, so the screens only change *where* a refutation is
  // proved, never the outcome.
  for (const char* name : {"polynom", "mof2", "diff2"}) {
    SynthesisRequest on_request = budgeted_request(
        suite_spec(benchmarks::by_name(name)));
    on_request.strategy = Strategy::kExact;
    SynthesisRequest off_request = on_request;
    off_request.pruning.static_screens = false;
    SynthesisEngine on_engine(std::move(on_request));
    SynthesisEngine off_engine(std::move(off_request));
    expect_identical(off_engine.minimize(), on_engine.minimize(),
                     std::string(name) + " screens A/B");
  }
}

}  // namespace
}  // namespace ht::core
