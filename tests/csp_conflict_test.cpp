// Conflict-directed CSP search on adversarial topologies: deep dependence
// chains, wide fan-in contention layers, and dense vendor-conflict cliques.
// These shapes maximize the distance between where a conflict is detected
// and the decision that caused it — exactly what backjumping and nogood
// learning exist for — while kInfeasible must remain a complete proof and
// the first solution found must be identical in every mode.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/csp_solver.hpp"
#include "core/nogood.hpp"
#include "core/search_cache.hpp"
#include "core/validate.hpp"
#include "vendor/catalog.hpp"

namespace ht::core {
namespace {

using dfg::ResourceClass;

vendor::Catalog uniform_adders(int vendors) {
  vendor::Catalog catalog(vendors);
  for (vendor::VendorId v = 0; v < vendors; ++v) {
    catalog.set_offer(v, ResourceClass::kAdder, {100, 1000 + v});
  }
  return catalog;
}

Palettes full_palettes(const ProblemSpec& spec) {
  Palettes palettes;
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    const auto rc = static_cast<ResourceClass>(cls);
    if (spec.graph.ops_per_class()[cls] == 0) continue;
    for (vendor::VendorId v = 0; v < spec.catalog.num_vendors(); ++v) {
      if (spec.catalog.offers(v, rc)) {
        palettes[static_cast<std::size_t>(cls)].push_back(v);
      }
    }
  }
  return palettes;
}

/// Dependence chain of `n` adders: every decision window is squeezed
/// between its neighbors, so a late conflict implicates a decision made
/// almost at the root.
ProblemSpec chain_spec(int n, int vendors, int slack) {
  ProblemSpec spec;
  dfg::Dfg graph("chain");
  const dfg::Operand a = graph.add_input("a");
  const dfg::Operand b = graph.add_input("b");
  dfg::OpId prev = graph.add(a, b);
  for (int i = 1; i < n; ++i) {
    prev = graph.add(dfg::Operand::op(prev), b);
  }
  graph.mark_output(prev);
  spec.graph = std::move(graph);
  spec.catalog = uniform_adders(vendors);
  spec.lambda_detection = n + slack;
  spec.lambda_recovery = n + slack;
  spec.with_recovery = true;
  spec.area_limit = 1'000'000;
  return spec;
}

/// `width` independent adders, one instance per offer: a pure contention
/// layer where 2*width detection copies compete for vendors*lambda slots.
/// With 2*width > vendors*lambda the spec is infeasible by a pigeonhole
/// argument the solver can only discover by search.
ProblemSpec star_spec(int width, int vendors, int lambda) {
  ProblemSpec spec;
  dfg::Dfg graph("star");
  for (int i = 0; i < width; ++i) {
    const dfg::Operand a = graph.add_input("a" + std::to_string(i));
    const dfg::Operand b = graph.add_input("b" + std::to_string(i));
    graph.mark_output(graph.add(a, b));
  }
  spec.graph = std::move(graph);
  spec.catalog = uniform_adders(vendors);
  spec.lambda_detection = lambda;
  spec.with_recovery = false;
  spec.area_limit = 1'000'000;
  spec.max_instances_per_offer = 1;
  return spec;
}

/// `n` independent adders, all pairs closely related: recovery Rule 2 plus
/// recovery Rule 1 make every recovery copy conflict with *every* NC/RC
/// copy. One instance per offer and a 3-cycle detection window squeeze the
/// 2n detection copies across all vendors, so with `vendors` == n - 1 no
/// vendor is left for any recovery copy — a dense-conflict infeasibility
/// only search can establish.
ProblemSpec clique_spec(int n, int vendors) {
  ProblemSpec spec;
  dfg::Dfg graph("clique");
  for (int i = 0; i < n; ++i) {
    const dfg::Operand a = graph.add_input("a" + std::to_string(i));
    const dfg::Operand b = graph.add_input("b" + std::to_string(i));
    graph.mark_output(graph.add(a, b));
  }
  spec.graph = std::move(graph);
  spec.catalog = uniform_adders(vendors);
  spec.lambda_detection = 3;
  spec.lambda_recovery = n + 2;
  spec.with_recovery = true;
  spec.area_limit = 1'000'000;
  spec.max_instances_per_offer = 1;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      spec.closely_related.emplace_back(i, j);
    }
  }
  return spec;
}

CspResult solve(const ProblemSpec& spec, const CspOptions& options = {}) {
  return schedule_and_bind(spec, full_palettes(spec), options);
}

void expect_same_solution(const Solution& a, const Solution& b) {
  ASSERT_EQ(a.num_ops(), b.num_ops());
  ASSERT_EQ(a.with_recovery(), b.with_recovery());
  for (const CopyRef ref : a.all_copies()) {
    EXPECT_EQ(a.at(ref), b.at(ref))
        << "copy (" << static_cast<int>(ref.kind) << ", " << ref.op << ")";
  }
}

TEST(CspConflictTest, DeepChainFeasibleIdenticalAcrossModes) {
  const ProblemSpec spec = chain_spec(24, 4, 2);
  CspOptions chronological;
  chronological.learning = false;
  const CspResult base = solve(spec, chronological);
  ASSERT_EQ(base.status, CspResult::Status::kFeasible);
  ASSERT_TRUE(validate_solution(spec, base.solution).ok());

  const CspResult directed = solve(spec);  // learning on (default)
  ASSERT_EQ(directed.status, CspResult::Status::kFeasible);
  // Backjumps and nogoods skip only solution-free regions, so the first
  // solution found is bit-identical to the chronological search's.
  expect_same_solution(base.solution, directed.solution);
  EXPECT_LE(directed.nodes, base.nodes);
}

TEST(CspConflictTest, WideStarInfeasibleProvenInEveryMode) {
  // 10 detection copies into 2 vendors * 3 cycles = 6 slots.
  const ProblemSpec spec = star_spec(5, 2, 3);
  CspOptions chronological;
  chronological.learning = false;
  EXPECT_EQ(solve(spec, chronological).status,
            CspResult::Status::kInfeasible);

  const CspResult directed = solve(spec);
  EXPECT_EQ(directed.status, CspResult::Status::kInfeasible);

  CspOptions split;
  split.subtree_split = 8;
  EXPECT_EQ(solve(spec, split).status, CspResult::Status::kInfeasible);
}

/// The classic backjumping win: a feasible adder subproblem whose copies
/// are branched on *first* (smaller domains), interleaved with an
/// infeasible multiplier pigeonhole that is completely independent of it.
/// Chronological backtracking re-proves the multiplier infeasibility for
/// every adder layout; conflict sets name only multiplier copies, so CBJ
/// unwinds straight past the adder decisions after one proof.
ProblemSpec mixed_contention_spec() {
  ProblemSpec spec;
  dfg::Dfg graph("mixed");
  {
    const dfg::Operand a = graph.add_input("a");
    const dfg::Operand b = graph.add_input("b");
    graph.mark_output(graph.add(a, b));
  }
  for (int i = 0; i < 5; ++i) {
    const dfg::Operand a = graph.add_input("ma" + std::to_string(i));
    const dfg::Operand b = graph.add_input("mb" + std::to_string(i));
    graph.mark_output(graph.mul(a, b));
  }
  spec.graph = std::move(graph);
  vendor::Catalog catalog(4);
  catalog.set_offer(0, ResourceClass::kAdder, {100, 1000});
  catalog.set_offer(1, ResourceClass::kAdder, {100, 1001});
  catalog.set_offer(2, ResourceClass::kMultiplier, {100, 1002});
  catalog.set_offer(3, ResourceClass::kMultiplier, {100, 1003});
  spec.catalog = std::move(catalog);
  // 10 multiplier detection copies into 2 vendors * 4 cycles = 8 slots.
  spec.lambda_detection = 4;
  spec.with_recovery = false;
  spec.area_limit = 1'000'000;
  spec.max_instances_per_offer = 1;
  return spec;
}

TEST(CspConflictTest, ContestedMixedClassesLearningBeatsChronological) {
  const ProblemSpec spec = mixed_contention_spec();
  CspOptions chronological;
  chronological.learning = false;
  chronological.max_nodes = 50'000'000;
  const CspResult base = solve(spec, chronological);
  ASSERT_EQ(base.status, CspResult::Status::kInfeasible);

  CspOptions directed_options;
  directed_options.max_nodes = 50'000'000;
  const CspResult directed = solve(spec, directed_options);
  ASSERT_EQ(directed.status, CspResult::Status::kInfeasible);
  EXPECT_GT(directed.backjumps, 0);
  EXPECT_LT(directed.nodes, base.nodes)
      << "conflict-directed proof must visit strictly fewer nodes";
  std::printf("contested mixed: chronological %ld nodes, directed %ld "
              "nodes, %ld backjumps, %zu nogoods\n",
              base.nodes, directed.nodes, directed.backjumps,
              directed.learned.size());
}

TEST(CspConflictTest, RecoveryCliqueNeedsAsManyVendorsAsOps) {
  // 4-clique of recovery copies over 3 vendors: infeasible...
  const CspResult infeasible = solve(clique_spec(4, 3));
  EXPECT_EQ(infeasible.status, CspResult::Status::kInfeasible);
  // ...and satisfiable the moment a 4th vendor exists.
  const ProblemSpec wide = clique_spec(4, 4);
  const CspResult feasible = solve(wide);
  ASSERT_EQ(feasible.status, CspResult::Status::kFeasible);
  EXPECT_TRUE(validate_solution(wide, feasible.solution).ok());
}

TEST(CspConflictTest, SubtreeSplitBitIdenticalAcrossLaneCounts) {
  const ProblemSpec feasible = chain_spec(20, 4, 2);
  const ProblemSpec infeasible = star_spec(5, 2, 4);
  for (const ProblemSpec* spec : {&feasible, &infeasible}) {
    CspOptions mono;
    const CspResult reference = solve(*spec, mono);

    CspResult runs[3];
    const int lanes[3] = {1, 4, 8};
    for (int i = 0; i < 3; ++i) {
      CspOptions options;
      options.subtree_split = 8;
      options.split_threads = lanes[i];
      runs[i] = solve(*spec, options);
      ASSERT_EQ(runs[i].status, reference.status);
      if (reference.status == CspResult::Status::kFeasible) {
        ASSERT_TRUE(validate_solution(*spec, runs[i].solution).ok());
      }
    }
    // Lane count must not leak into anything: status, nodes, counters,
    // learned nogoods, and the committed solution are all pairwise equal.
    for (int i = 1; i < 3; ++i) {
      EXPECT_EQ(runs[i].nodes, runs[0].nodes);
      EXPECT_EQ(runs[i].backjumps, runs[0].backjumps);
      EXPECT_EQ(runs[i].restarts, runs[0].restarts);
      ASSERT_EQ(runs[i].learned.size(), runs[0].learned.size());
      for (std::size_t k = 0; k < runs[0].learned.size(); ++k) {
        EXPECT_EQ(runs[i].learned[k], runs[0].learned[k]);
      }
      if (reference.status == CspResult::Status::kFeasible) {
        expect_same_solution(runs[0].solution, runs[i].solution);
      }
    }
  }
}

TEST(CspConflictTest, RestartSeedsStayValidAndDeterministic) {
  const ProblemSpec spec = chain_spec(16, 4, 2);
  for (const std::uint64_t seed : {0ull, 1ull, 2ull, 3ull}) {
    CspOptions options;
    options.restart_base = 500;
    options.seed = seed;
    const CspResult first = solve(spec, options);
    ASSERT_EQ(first.status, CspResult::Status::kFeasible) << "seed " << seed;
    EXPECT_TRUE(validate_solution(spec, first.solution).ok());

    const CspResult second = solve(spec, options);
    ASSERT_EQ(second.status, CspResult::Status::kFeasible);
    EXPECT_EQ(first.nodes, second.nodes);
    EXPECT_EQ(first.restarts, second.restarts);
    expect_same_solution(first.solution, second.solution);
  }
}

TEST(CspConflictTest, ImportedNogoodsPruneWithoutChangingAnswers) {
  const ProblemSpec spec = star_spec(5, 2, 4);
  CspOptions teacher_options;
  teacher_options.max_nodes = 20'000'000;
  const CspResult teacher = solve(spec, teacher_options);
  ASSERT_EQ(teacher.status, CspResult::Status::kInfeasible);
  ASSERT_FALSE(teacher.learned.empty());

  CspOptions primed = teacher_options;
  primed.imported = &teacher.learned;
  const CspResult student = solve(spec, primed);
  EXPECT_EQ(student.status, CspResult::Status::kInfeasible);
  EXPECT_LE(student.nodes, teacher.nodes);
}

TEST(CspConflictTest, WatchedPropagationMatchesScanExactly) {
  // Two-watched-literal indexing must be invisible to the search: the
  // blocked-value verdicts (and, on a block, the scan-derived conflict
  // set) are identical, so status, node count, backjumps, learned nogoods
  // and the first solution all match the scan-all check bit for bit — only
  // the number of nogood entries examined per candidate changes.
  const ProblemSpec contested = mixed_contention_spec();
  const ProblemSpec feasible = chain_spec(24, 4, 2);
  const ProblemSpec star = star_spec(5, 2, 4);
  for (const ProblemSpec* spec : {&contested, &feasible, &star}) {
    CspOptions scan;
    scan.max_nodes = 50'000'000;
    scan.nogood_watch = false;
    scan.flat_state = false;
    const CspResult reference = solve(*spec, scan);
    EXPECT_EQ(reference.watch_visits, 0);

    CspOptions watch = scan;
    watch.nogood_watch = true;
    const CspResult watched = solve(*spec, watch);

    ASSERT_EQ(watched.status, reference.status);
    EXPECT_EQ(watched.nodes, reference.nodes);
    EXPECT_EQ(watched.backjumps, reference.backjumps);
    EXPECT_EQ(watched.restarts, reference.restarts);
    ASSERT_EQ(watched.learned.size(), reference.learned.size());
    for (std::size_t k = 0; k < reference.learned.size(); ++k) {
      EXPECT_EQ(watched.learned[k], reference.learned[k]);
    }
    if (reference.status == CspResult::Status::kFeasible) {
      expect_same_solution(reference.solution, watched.solution);
    }
    if (spec == &contested) {
      EXPECT_GT(watched.watch_visits, 0);
      std::printf("contested mixed: %ld nodes, %ld watch visits\n",
                  watched.nodes, watched.watch_visits);
    }
  }
}

TEST(CspConflictTest, WatchedImportedNogoodsMatchScan) {
  // The imported-nogood path registers watches before any assignment
  // exists (first two literals); it must block the same candidates the
  // scan does.
  const ProblemSpec spec = star_spec(5, 2, 4);
  CspOptions teacher_options;
  teacher_options.max_nodes = 20'000'000;
  const CspResult teacher = solve(spec, teacher_options);
  ASSERT_EQ(teacher.status, CspResult::Status::kInfeasible);
  ASSERT_FALSE(teacher.learned.empty());

  CspOptions scan = teacher_options;
  scan.imported = &teacher.learned;
  scan.nogood_watch = false;
  const CspResult scan_student = solve(spec, scan);

  CspOptions watch = scan;
  watch.nogood_watch = true;
  const CspResult watch_student = solve(spec, watch);

  ASSERT_EQ(watch_student.status, scan_student.status);
  EXPECT_EQ(watch_student.nodes, scan_student.nodes);
  EXPECT_EQ(watch_student.backjumps, scan_student.backjumps);
  ASSERT_EQ(watch_student.learned.size(), scan_student.learned.size());
  for (std::size_t k = 0; k < scan_student.learned.size(); ++k) {
    EXPECT_EQ(watch_student.learned[k], scan_student.learned[k]);
  }
  EXPECT_GT(watch_student.watch_visits, 0);
}

TEST(CspConflictTest, FlatCounterPropagationMatchesScanExactly) {
  // The flat true-literal-counter path replaces the watched-literal index
  // but keeps the same contract: every completion claim is re-derived by
  // the reference scan, so the search tree — status, nodes, backjumps,
  // restarts, learned nogoods, first solution — matches the scan-all
  // baseline bit for bit. Stale-high counters may cause extra (refuted)
  // claims; those change only watch_visits, never the tree.
  const ProblemSpec contested = mixed_contention_spec();
  const ProblemSpec feasible = chain_spec(24, 4, 2);
  const ProblemSpec star = star_spec(5, 2, 4);
  for (const ProblemSpec* spec : {&contested, &feasible, &star}) {
    CspOptions scan;
    scan.max_nodes = 50'000'000;
    scan.nogood_watch = false;
    scan.flat_state = false;
    const CspResult reference = solve(*spec, scan);

    CspOptions flat = scan;
    flat.flat_state = true;
    const CspResult flat_result = solve(*spec, flat);

    ASSERT_EQ(flat_result.status, reference.status);
    EXPECT_EQ(flat_result.nodes, reference.nodes);
    EXPECT_EQ(flat_result.backjumps, reference.backjumps);
    EXPECT_EQ(flat_result.restarts, reference.restarts);
    ASSERT_EQ(flat_result.learned.size(), reference.learned.size());
    for (std::size_t k = 0; k < reference.learned.size(); ++k) {
      EXPECT_EQ(flat_result.learned[k], reference.learned[k]);
    }
    if (reference.status == CspResult::Status::kFeasible) {
      expect_same_solution(reference.solution, flat_result.solution);
    }
    if (spec == &contested) {
      EXPECT_GT(flat_result.watch_visits, 0);
    }
  }
}

TEST(CspConflictTest, FlatImportedNogoodsMatchScan) {
  // Imported nogoods arrive before any assignment, so their counters seed
  // at zero and climb with the trail — the one case where counts stay
  // exact. They must block the same candidates the scan does.
  const ProblemSpec spec = star_spec(5, 2, 4);
  CspOptions teacher_options;
  teacher_options.max_nodes = 20'000'000;
  const CspResult teacher = solve(spec, teacher_options);
  ASSERT_EQ(teacher.status, CspResult::Status::kInfeasible);
  ASSERT_FALSE(teacher.learned.empty());

  CspOptions scan = teacher_options;
  scan.imported = &teacher.learned;
  scan.nogood_watch = false;
  scan.flat_state = false;
  const CspResult scan_student = solve(spec, scan);

  CspOptions flat = scan;
  flat.flat_state = true;
  const CspResult flat_student = solve(spec, flat);

  ASSERT_EQ(flat_student.status, scan_student.status);
  EXPECT_EQ(flat_student.nodes, scan_student.nodes);
  EXPECT_EQ(flat_student.backjumps, scan_student.backjumps);
  ASSERT_EQ(flat_student.learned.size(), scan_student.learned.size());
  for (std::size_t k = 0; k < scan_student.learned.size(); ++k) {
    EXPECT_EQ(flat_student.learned[k], scan_student.learned[k]);
  }
}

TEST(CspConflictTest, LearnedNogoodsDroppedOnCancel) {
  const ProblemSpec spec = star_spec(5, 2, 4);
  util::CancelToken cancel;
  cancel.request_cancel();
  CspOptions options;
  options.cancel = &cancel;
  const CspResult result = solve(spec, options);
  EXPECT_EQ(result.status, CspResult::Status::kCancelled);
  // A wall-clock/cancel truncation point is not deterministic; nothing it
  // learned may leak.
  EXPECT_TRUE(result.learned.empty());
}

// ---- NogoodStore: the frozen-tier discipline ---------------------------

PaletteSignature sig_of_masks(std::uint64_t adders, int lambda_det,
                              int lambda_rec, long long area) {
  PaletteSignature sig;
  sig.masks[static_cast<int>(ResourceClass::kAdder)] = adders;
  sig.lambda_detection = lambda_det;
  sig.lambda_recovery = lambda_rec;
  sig.area_limit = area;
  return sig;
}

CspNogood one_lit_nogood(int copy, int vendor, int cycle) {
  CspNogood nogood;
  nogood.lits.push_back({copy, vendor, cycle, cycle});
  return nogood;
}

TEST(NogoodStoreTest, EntriesInvisibleUntilSealed) {
  const ProblemSpec spec = star_spec(4, 3, 4);
  NogoodStore store;
  const std::uint64_t epoch = store.begin_op(spec);
  const PaletteSignature sig = sig_of_masks(0b111, 4, 0, 1'000'000);
  store.record({one_lit_nogood(0, 1, 2)}, sig, epoch, /*ctx=*/0,
               /*combo_cost=*/100);

  std::vector<CspNogood> out;
  store.collect_frozen(sig, epoch, &out);
  EXPECT_TRUE(out.empty()) << "same-epoch entries must be invisible";

  const std::uint64_t next = store.begin_op(spec);
  store.collect_frozen(sig, next, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], one_lit_nogood(0, 1, 2));
}

TEST(NogoodStoreTest, GuardDominanceScopesReuse) {
  const ProblemSpec spec = star_spec(4, 3, 4);
  NogoodStore store;
  const std::uint64_t epoch = store.begin_op(spec);
  const PaletteSignature guard = sig_of_masks(0b111, 4, 0, 1'000'000);
  store.record({one_lit_nogood(1, 0, 1)}, guard, epoch, 0, 100);
  const std::uint64_t next = store.begin_op(spec);

  std::vector<CspNogood> out;
  // Subset palette, tighter bounds: dominated, nogood applies.
  store.collect_frozen(sig_of_masks(0b011, 3, 0, 500'000), next, &out);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  // Superset palette: a vendor the proof never considered — no reuse.
  store.collect_frozen(sig_of_masks(0b1111, 4, 0, 1'000'000), next, &out);
  EXPECT_TRUE(out.empty());
  // Looser latency: no reuse.
  store.collect_frozen(sig_of_masks(0b111, 5, 0, 1'000'000), next, &out);
  EXPECT_TRUE(out.empty());
}

TEST(NogoodStoreTest, FinalizeContextDropsNondeterministicSuffix) {
  const ProblemSpec spec = star_spec(4, 3, 4);
  NogoodStore store;
  const std::uint64_t epoch = store.begin_op(spec);
  const PaletteSignature sig = sig_of_masks(0b111, 4, 0, 1'000'000);
  store.record({one_lit_nogood(0, 0, 1)}, sig, epoch, /*ctx=*/7,
               /*combo_cost=*/100);
  store.record({one_lit_nogood(0, 1, 1)}, sig, epoch, /*ctx=*/7,
               /*combo_cost=*/900);
  store.finalize_context(epoch, /*ctx=*/7, /*keep_below=*/500);
  EXPECT_EQ(store.size(), 1u);

  std::vector<CspNogood> out;
  store.collect_frozen(sig, store.begin_op(spec), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], one_lit_nogood(0, 0, 1));
}

TEST(NogoodStoreTest, IncompatibleSpecDropsTheStore) {
  const ProblemSpec spec = star_spec(4, 3, 4);
  NogoodStore store;
  const std::uint64_t epoch = store.begin_op(spec);
  const PaletteSignature sig = sig_of_masks(0b111, 4, 0, 1'000'000);
  store.record({one_lit_nogood(0, 0, 1)}, sig, epoch, 0, 100);

  // Same family: entries survive the seal.
  store.begin_op(spec);
  EXPECT_EQ(store.size(), 1u);

  // Changed offer area: every area-derived deduction is void.
  ProblemSpec changed = spec;
  changed.catalog.set_offer(0, ResourceClass::kAdder, {999, 1000});
  store.begin_op(changed);
  EXPECT_EQ(store.size(), 0u);
}

TEST(NogoodStoreTest, ThinnedCatalogKeepsEntries) {
  // reoptimize() semantics: removing a vendor's offer keeps all proofs.
  const ProblemSpec spec = star_spec(4, 3, 4);
  NogoodStore store;
  const std::uint64_t epoch = store.begin_op(spec);
  store.record({one_lit_nogood(0, 0, 1)},
               sig_of_masks(0b011, 4, 0, 1'000'000), epoch, 0, 100);

  ProblemSpec thinned = spec;
  vendor::Catalog smaller(3);
  smaller.set_offer(0, ResourceClass::kAdder,
                    spec.catalog.offer(0, ResourceClass::kAdder));
  smaller.set_offer(1, ResourceClass::kAdder,
                    spec.catalog.offer(1, ResourceClass::kAdder));
  thinned.catalog = std::move(smaller);
  store.begin_op(thinned);
  EXPECT_EQ(store.size(), 1u);
}

}  // namespace
}  // namespace ht::core
