#include <gtest/gtest.h>

#include <algorithm>

#include "benchmarks/random_dfg.hpp"
#include "benchmarks/suite.hpp"
#include "core/greedy.hpp"
#include "core/validate.hpp"
#include "test_helpers.hpp"

namespace ht::core {
namespace {

using dfg::ResourceClass;

/// `per_class` vendors per class, smallest area first — the safest palette
/// for feasibility probing (license cost is irrelevant to these tests, and
/// cheap licenses often carry the largest cores).
Palettes smallest_area_palettes(const ProblemSpec& spec, int per_class) {
  Palettes palettes;
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    const auto rc = static_cast<ResourceClass>(cls);
    if (spec.graph.ops_per_class()[cls] == 0) continue;
    std::vector<vendor::VendorId> by_area =
        spec.catalog.vendors_by_cost(rc);
    std::sort(by_area.begin(), by_area.end(),
              [&](vendor::VendorId a, vendor::VendorId b) {
                return spec.catalog.offer(a, rc).area <
                       spec.catalog.offer(b, rc).area;
              });
    for (int i = 0; i < per_class && i < static_cast<int>(by_area.size());
         ++i) {
      palettes[static_cast<std::size_t>(cls)].push_back(
          by_area[static_cast<std::size_t>(i)]);
    }
  }
  return palettes;
}

TEST(GreedyTest, ConstructsValidMotivationalSolution) {
  const ProblemSpec spec = test::motivational_spec();
  util::Rng rng(1);
  bool succeeded = false;
  for (int attempt = 0; attempt < 8 && !succeeded; ++attempt) {
    const auto solution = greedy_construct(spec, smallest_area_palettes(spec, 3),
                                           rng);
    if (solution) {
      succeeded = true;
      EXPECT_TRUE(validate_solution(spec, *solution).ok());
    }
  }
  EXPECT_TRUE(succeeded);
}

TEST(GreedyTest, FailsCleanlyWithTooFewVendors) {
  const ProblemSpec spec = test::motivational_spec();
  util::Rng rng(2);
  // Two vendors per class cannot satisfy the NC/RC/recovery triangle.
  for (int attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(greedy_construct(spec, smallest_area_palettes(spec, 2), rng),
              std::nullopt);
  }
}

TEST(GreedyTest, FailsCleanlyOnTinyArea) {
  ProblemSpec spec = test::motivational_spec();
  spec.area_limit = 500;
  util::Rng rng(3);
  EXPECT_EQ(greedy_construct(spec, smallest_area_palettes(spec, 3), rng),
            std::nullopt);
}

// Every paper benchmark, both Table 3 rows and the loosest Table 4 split:
// the greedy constructor must find a valid design quickly.
class GreedyPaperSuiteTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Rows, GreedyPaperSuiteTest, ::testing::Range(0, 6));

TEST_P(GreedyPaperSuiteTest, Table3RowsConstruct) {
  const auto& entry = benchmarks::paper_suite()[
      static_cast<std::size_t>(GetParam())];
  for (const benchmarks::TableRow& row : entry.table3) {
    ProblemSpec spec = make_detection_only_spec(
        entry.factory(), vendor::section5(), row.lambda, row.area);
    util::Rng rng(11);
    bool succeeded = false;
    for (int attempt = 0; attempt < 16 && !succeeded; ++attempt) {
      const auto solution =
          greedy_construct(spec, smallest_area_palettes(spec, 3), rng);
      if (solution) {
        succeeded = true;
        EXPECT_TRUE(validate_solution(spec, *solution).ok());
      }
    }
    EXPECT_TRUE(succeeded) << entry.name << " lambda=" << row.lambda;
  }
}

TEST_P(GreedyPaperSuiteTest, Table4SplitConstructs) {
  const auto& entry = benchmarks::paper_suite()[
      static_cast<std::size_t>(GetParam())];
  const benchmarks::TableRow& row = entry.table4[0];
  ProblemSpec spec;
  spec.graph = entry.factory();
  spec.catalog = vendor::section5();
  spec.with_recovery = true;
  spec.lambda_detection = row.lambda / 2;
  spec.lambda_recovery = row.lambda - row.lambda / 2;
  spec.area_limit = row.area;
  util::Rng rng(12);
  bool succeeded = false;
  for (int attempt = 0; attempt < 16 && !succeeded; ++attempt) {
    const auto solution =
        greedy_construct(spec, smallest_area_palettes(spec, 4), rng);
    if (solution) {
      succeeded = true;
      EXPECT_TRUE(validate_solution(spec, *solution).ok());
    }
  }
  EXPECT_TRUE(succeeded) << entry.name;
}

// Random-DFG property sweep: whenever greedy returns a solution it is valid
// (require_valid inside would throw otherwise), and under roomy bounds it
// should almost always return one.
class GreedyRandomTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, GreedyRandomTest, ::testing::Range(1, 9));

TEST_P(GreedyRandomTest, RoomyBoundsConstruct) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 997);
  benchmarks::RandomDfgConfig config;
  config.num_ops = static_cast<int>(rng.uniform_int(6, 24));
  config.max_depth = 6;
  ProblemSpec spec;
  spec.graph = benchmarks::random_dfg(config, rng);
  spec.catalog = vendor::section5();
  spec.lambda_detection = 9;
  spec.lambda_recovery = 8;
  spec.with_recovery = true;
  spec.area_limit = 500000;
  bool succeeded = false;
  for (int attempt = 0; attempt < 8 && !succeeded; ++attempt) {
    succeeded =
        greedy_construct(spec, smallest_area_palettes(spec, 4), rng).has_value();
  }
  EXPECT_TRUE(succeeded) << "ops=" << spec.graph.num_ops();
}

}  // namespace
}  // namespace ht::core
