#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace ht::util {
namespace {

// ---- status -------------------------------------------------------------

TEST(StatusTest, CheckSpecThrowsOnFalse) {
  EXPECT_THROW(check_spec(false, "boom"), SpecError);
  EXPECT_NO_THROW(check_spec(true, "fine"));
}

TEST(StatusTest, CheckInternalThrowsOnFalse) {
  EXPECT_THROW(check_internal(false, "boom"), InternalError);
  EXPECT_NO_THROW(check_internal(true, "fine"));
}

TEST(StatusTest, ExceptionHierarchy) {
  try {
    throw InfeasibleError("no way");
  } catch (const Error& error) {
    EXPECT_STREQ(error.what(), "no way");
  }
}

// ---- rng ----------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(12);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(13);
  EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(RngTest, UniformIntRejectsBadRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), SpecError);
}

TEST(RngTest, Uniform01Bounds) {
  Rng rng(21);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, PickFromEmptyThrows) {
  Rng rng(3);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), SpecError);
}

// ---- strings --------------------------------------------------------------

TEST(StringsTest, SplitBasic) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, SplitNoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, JoinRoundTrip) {
  EXPECT_EQ(join({"x", "y", "z"}, "--"), "x--y--z");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  hello\t\n"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("benchmark", "bench"));
  EXPECT_FALSE(starts_with("ben", "bench"));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(StringsTest, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(22000), "22,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(-4160), "-4,160");
}

TEST(StringsTest, FormatMoney) {
  EXPECT_EQ(format_money(4160), "$4,160");
  EXPECT_EQ(format_money(-5), "-$5");
}

// ---- table ----------------------------------------------------------------

TEST(TableTest, AlignsColumns) {
  TablePrinter table({"name", "n"});
  table.add_row({"polynom", "5"});
  table.add_row({"ellipticicass", "29"});
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("| polynom       |"), std::string::npos);
  EXPECT_NE(rendered.find("| ellipticicass |"), std::string::npos);
}

TEST(TableTest, RowWidthMismatchThrows) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), SpecError);
}

TEST(TableTest, CsvEscapesCommasAndQuotes) {
  TablePrinter table({"k", "v"});
  table.add_row({"a,b", "say \"hi\""});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, TitleIsPrinted) {
  TablePrinter table({"x"});
  table.add_row({"1"});
  EXPECT_TRUE(starts_with(table.to_string("Table 3"), "Table 3\n"));
}

}  // namespace
}  // namespace ht::util
