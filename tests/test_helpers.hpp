// Shared fixtures: the paper's motivational example (Figure 5 / Table 1)
// and small specs used across the core/trojan test binaries.
#pragma once

#include "benchmarks/classic.hpp"
#include "core/problem.hpp"
#include "vendor/catalogs.hpp"

namespace ht::test {

/// The paper's motivational setup: 5-op polynom DFG, Table 1 catalog,
/// detection latency 4, recovery latency 3, area limit 22000.
inline core::ProblemSpec motivational_spec() {
  core::ProblemSpec spec;
  spec.graph = benchmarks::polynom();
  spec.catalog = vendor::table1();
  spec.lambda_detection = 4;
  spec.lambda_recovery = 3;
  spec.with_recovery = true;
  spec.area_limit = 22000;
  return spec;
}

/// Detection-only variant of the motivational setup.
inline core::ProblemSpec motivational_detection_only() {
  core::ProblemSpec spec = motivational_spec();
  spec.with_recovery = false;
  spec.lambda_recovery = 0;
  return spec;
}

/// polynom on the 8-vendor Section 5 catalog with roomy bounds — a spec
/// that every solver path can handle quickly.
inline core::ProblemSpec easy_section5_spec(bool with_recovery = true) {
  core::ProblemSpec spec;
  spec.graph = benchmarks::polynom();
  spec.catalog = vendor::section5();
  spec.lambda_detection = 5;
  spec.lambda_recovery = with_recovery ? 4 : 0;
  spec.with_recovery = with_recovery;
  spec.area_limit = 100000;
  return spec;
}

}  // namespace ht::test
