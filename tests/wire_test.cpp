// Tests for the versioned wire format (service/wire.hpp) and its JSON
// document model (service/json.hpp).
//
// The contract under test, in order of load-bearing-ness:
//  1. Round trips: serialize -> parse -> serialize is byte-identical for
//     requests and responses, including solutions, stats, and embedded
//     SolveMetrics — checked property-style over randomized requests.
//  2. Tolerant reads: unknown fields anywhere in the document are
//     ignored (a version N reader absorbs a field-adding version N+1
//     writer), and absent optional fields take the C++ defaults.
//  3. Version discipline: a missing, non-integer, or newer-than-this-
//     build schema_version is rejected with a reason, never misread.
//  4. Structured failure: malformed text, bad enums, and invalid specs
//     fail with an error message and leave the output untouched.
#include "service/wire.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "service/json.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace ht::service {
namespace {

// ---- Json document model --------------------------------------------------

TEST(JsonTest, DumpIsDeterministicSortedAndCompact) {
  Json json = Json::object();
  json.set("zeta", 1);
  json.set("alpha", Json::array());
  json.set("mid", "x");
  EXPECT_EQ(json.dump(), R"({"alpha":[],"mid":"x","zeta":1})");
  // Same fields inserted in another order dump to the same bytes.
  Json other = Json::object();
  other.set("mid", "x");
  other.set("zeta", 1);
  other.set("alpha", Json::array());
  EXPECT_EQ(other.dump(), json.dump());
}

TEST(JsonTest, ParsePreservesIntegersAndDecodesEscapes) {
  Json json;
  std::string error;
  ASSERT_TRUE(Json::parse(
      R"({"big":9007199254740993,"escape":"A\né","pair":"\ud83d\ude00"})",
      &json, &error))
      << error;
  // 2^53 + 1 is not representable as a double; it must survive as an int.
  EXPECT_TRUE(json.get("big").is_int());
  EXPECT_EQ(json.get("big").as_int(), 9007199254740993LL);
  EXPECT_EQ(json.get("escape").as_string(), "A\n\xc3\xa9");
  // Surrogate pair decodes to the 4-byte UTF-8 emoji.
  EXPECT_EQ(json.get("pair").as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonTest, ParseRejectsMalformedDocuments) {
  const std::vector<std::string> bad = {
      "",          "{",         "[1,]",       R"({"a":})",
      "tru",       "1 2",       R"({"a":1}x)", R"("unterminated)",
      R"({"a":"\ud83d"})",  // lone surrogate
  };
  for (const std::string& text : bad) {
    Json json;
    std::string error;
    EXPECT_FALSE(Json::parse(text, &json, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(JsonTest, GetChainsSafelyThroughMissingKeys) {
  Json json = Json::object();
  EXPECT_TRUE(json.get("no").get("such").get("path").is_null());
  EXPECT_EQ(json.get("no").get("such").as_int(42), 42);
  EXPECT_EQ(json.get("no").as_string("fallback"), "fallback");
}

// ---- request round trips --------------------------------------------------

/// A request with every serializable field moved off its default.
core::SynthesisRequest fully_loaded_request() {
  core::SynthesisRequest request;
  request.kind = core::RequestKind::kLatencyFrontier;
  request.spec = test::motivational_spec();
  // Close pairs must share a resource class (Rule 2 assumes ot(i)=ot(j)).
  for (dfg::OpId i = 0; i < request.spec.graph.num_ops(); ++i) {
    for (dfg::OpId j = i + 1; j < request.spec.graph.num_ops(); ++j) {
      if (request.spec.closely_related.size() < 2 &&
          dfg::resource_class_of(request.spec.graph.op(i).type) ==
              dfg::resource_class_of(request.spec.graph.op(j).type)) {
        request.spec.closely_related.push_back({i, j});
      }
    }
  }
  request.spec.rules.recovery_close_pairs = false;
  request.spec.max_instances_per_offer = 2;
  request.spec.class_latency = {1, 2, 1};
  request.strategy = core::Strategy::kHeuristic;
  request.limits.time_limit_seconds = 7.25;
  request.limits.csp_node_limit = 12345;
  request.limits.heuristic_restarts = 9;
  request.limits.heuristic_node_limit = 4321;
  request.limits.max_combos = 777;
  request.limits.intra_palette_split = 3;
  request.parallelism.threads = 4;
  request.pruning.dominance_cache = false;
  request.pruning.static_screens = false;
  request.pruning.nogood_learning = false;
  request.pruning.cost_bounds = false;
  request.pruning.lp_bound = true;
  request.observability.metrics = true;
  request.seed = 99;
  request.lambda_total = 8;
  request.sweep_values = {8, 10, 12};
  request.banned = {{1, dfg::ResourceClass::kAdder},
                    {2, dfg::ResourceClass::kMultiplier}};
  return request;
}

TEST(WireRequestTest, RoundTripPreservesEveryField) {
  const core::SynthesisRequest request = fully_loaded_request();
  const std::string wire = serialize_request(request);

  core::SynthesisRequest parsed;
  std::string error;
  ASSERT_TRUE(parse_request(wire, &parsed, &error)) << error;

  EXPECT_EQ(parsed.kind, core::RequestKind::kLatencyFrontier);
  EXPECT_EQ(parsed.strategy, core::Strategy::kHeuristic);
  EXPECT_DOUBLE_EQ(parsed.limits.time_limit_seconds, 7.25);
  EXPECT_EQ(parsed.limits.csp_node_limit, 12345);
  EXPECT_EQ(parsed.limits.intra_palette_split, 3);
  EXPECT_EQ(parsed.parallelism.threads, 4);
  EXPECT_FALSE(parsed.pruning.dominance_cache);
  EXPECT_TRUE(parsed.pruning.lp_bound);
  EXPECT_TRUE(parsed.observability.metrics);
  EXPECT_EQ(parsed.seed, 99u);
  EXPECT_EQ(parsed.lambda_total, 8);
  EXPECT_EQ(parsed.sweep_values, (std::vector<long long>{8, 10, 12}));
  EXPECT_EQ(parsed.banned, request.banned);
  EXPECT_EQ(parsed.spec.closely_related, request.spec.closely_related);
  EXPECT_FALSE(parsed.spec.rules.recovery_close_pairs);

  // The byte-stability contract.
  EXPECT_EQ(serialize_request(parsed), wire);
}

TEST(WireRequestTest, MinimalDocumentTakesStructDefaults) {
  Json doc = Json::object();
  doc.set("schema_version", kSchemaVersion);
  doc.set("spec", spec_to_json(test::easy_section5_spec()));

  core::SynthesisRequest parsed;
  std::string error;
  ASSERT_TRUE(request_from_json(doc, &parsed, &error)) << error;
  const core::SynthesisRequest defaults;
  EXPECT_EQ(parsed.kind, core::RequestKind::kMinimize);
  EXPECT_EQ(parsed.strategy, core::Strategy::kExact);
  EXPECT_DOUBLE_EQ(parsed.limits.time_limit_seconds,
                   defaults.limits.time_limit_seconds);
  EXPECT_EQ(parsed.limits.max_combos, defaults.limits.max_combos);
  EXPECT_EQ(parsed.parallelism.threads, 1);
  EXPECT_TRUE(parsed.pruning.dominance_cache);
  EXPECT_FALSE(parsed.pruning.lp_bound);
  EXPECT_FALSE(parsed.observability.metrics);
  EXPECT_EQ(parsed.seed, defaults.seed);
  EXPECT_TRUE(parsed.sweep_values.empty());
  EXPECT_TRUE(parsed.banned.empty());
}

TEST(WireRequestTest, UnknownFieldsEverywhereAreIgnored) {
  const core::SynthesisRequest request = fully_loaded_request();
  Json doc = request_to_json(request);
  // A field-adding version N+1 writer: new knobs at every level.
  doc.set("future_top_level", "surprise");
  Json limits = doc.get("limits");
  limits.set("future_budget", 1234);
  doc.set("limits", std::move(limits));
  Json spec = doc.get("spec");
  spec.set("future_constraint", Json::array());
  doc.set("spec", std::move(spec));

  core::SynthesisRequest parsed;
  std::string error;
  ASSERT_TRUE(request_from_json(doc, &parsed, &error)) << error;
  // Everything this reader understands is unchanged by the extras.
  EXPECT_EQ(serialize_request(parsed), serialize_request(request));
}

TEST(WireRequestTest, RejectsMissingOrNewerSchemaVersion) {
  Json doc = request_to_json(fully_loaded_request());
  core::SynthesisRequest parsed;
  std::string error;

  doc.set("schema_version", kSchemaVersion + 1);
  EXPECT_FALSE(request_from_json(doc, &parsed, &error));
  EXPECT_NE(error.find("unsupported schema_version"), std::string::npos);

  doc.set("schema_version", "1");  // wrong type
  EXPECT_FALSE(request_from_json(doc, &parsed, &error));

  doc.set("schema_version", 0);
  EXPECT_FALSE(request_from_json(doc, &parsed, &error));

  Json versionless = Json::object();
  versionless.set("spec", spec_to_json(test::easy_section5_spec()));
  EXPECT_FALSE(request_from_json(versionless, &parsed, &error));
  EXPECT_NE(error.find("schema_version"), std::string::npos);
}

TEST(WireRequestTest, RejectsBadEnumsAndInvalidSpecs) {
  core::SynthesisRequest parsed;
  std::string error;

  Json doc = request_to_json(fully_loaded_request());
  doc.set("kind", "teleport");
  EXPECT_FALSE(request_from_json(doc, &parsed, &error));
  EXPECT_NE(error.find("kind"), std::string::npos);

  doc = request_to_json(fully_loaded_request());
  doc.set("strategy", "quantum");
  EXPECT_FALSE(request_from_json(doc, &parsed, &error));

  // An out-of-range vendor count fails spec validation, not a crash.
  doc = request_to_json(fully_loaded_request());
  Json spec = doc.get("spec");
  Json catalog = spec.get("catalog");
  catalog.set("num_vendors", 0);
  spec.set("catalog", std::move(catalog));
  doc.set("spec", std::move(spec));
  EXPECT_FALSE(request_from_json(doc, &parsed, &error));
  EXPECT_NE(error.find("num_vendors"), std::string::npos);
}

TEST(WireRequestTest, ParseRequestRejectsMalformedText) {
  core::SynthesisRequest parsed;
  std::string error;
  EXPECT_FALSE(parse_request("{not json", &parsed, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_request("[1,2,3]", &parsed, &error));
  EXPECT_FALSE(parse_request("", &parsed, &error));
}

// ---- response round trips -------------------------------------------------

TEST(WireResponseTest, SolvedResponseRoundTripsWithSolutionStatsMetrics) {
  core::SynthesisRequest request =
      core::make_request(test::easy_section5_spec());
  request.observability.metrics = true;
  const core::SynthesisResponse response = core::synthesize(request);
  ASSERT_TRUE(response.result.has_solution());
  ASSERT_FALSE(response.result.metrics.empty());

  const std::string wire = serialize_response(response);
  core::SynthesisResponse parsed;
  std::string error;
  ASSERT_TRUE(parse_response(wire, &parsed, &error)) << error;

  EXPECT_EQ(parsed.result.status, response.result.status);
  EXPECT_EQ(parsed.result.cost, response.result.cost);
  EXPECT_EQ(parsed.result.solution.licenses_used(request.spec),
            response.result.solution.licenses_used(request.spec));
  EXPECT_EQ(parsed.result.stats.combos_tried,
            response.result.stats.combos_tried);
  EXPECT_EQ(parsed.result.stats.nodes_total,
            response.result.stats.nodes_total);
  EXPECT_FALSE(parsed.result.metrics.empty());
  EXPECT_EQ(serialize_response(parsed), wire);
}

TEST(WireResponseTest, FrontierResponseRoundTripsPointForPoint) {
  core::SynthesisRequest request =
      core::make_request(test::easy_section5_spec());
  request.kind = core::RequestKind::kLatencyFrontier;
  request.sweep_values = {8, 9, 10};
  const core::SynthesisResponse response = core::synthesize(request);
  ASSERT_EQ(response.frontier.size(), 3u);

  const std::string wire = serialize_response(response);
  core::SynthesisResponse parsed;
  std::string error;
  ASSERT_TRUE(parse_response(wire, &parsed, &error)) << error;
  ASSERT_EQ(parsed.frontier.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parsed.frontier[i].constraint, response.frontier[i].constraint);
    EXPECT_EQ(parsed.frontier[i].result.status,
              response.frontier[i].result.status);
    EXPECT_EQ(parsed.frontier[i].result.cost, response.frontier[i].result.cost);
  }
  EXPECT_EQ(serialize_response(parsed), wire);
}

TEST(WireResponseTest, RejectsUnknownStatusAndBadBindings) {
  core::SynthesisResponse parsed;
  std::string error;

  Json doc = response_to_json(core::synthesize(
      core::make_request(test::easy_section5_spec())));
  Json result = doc.get("result");
  result.set("status", "excellent");
  doc.set("result", std::move(result));
  EXPECT_FALSE(response_from_json(doc, &parsed, &error));
  EXPECT_NE(error.find("status"), std::string::npos);

  // A binding naming an out-of-range op must be rejected, not written
  // out of bounds.
  doc = response_to_json(core::synthesize(
      core::make_request(test::easy_section5_spec())));
  result = doc.get("result");
  Json solution = result.get("solution");
  solution.set("num_ops", 1);
  result.set("solution", std::move(solution));
  doc.set("result", std::move(result));
  EXPECT_FALSE(response_from_json(doc, &parsed, &error));
}

// ---- property-style round trips -------------------------------------------

TEST(WirePropertyTest, RandomRequestsRoundTripByteIdentically) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    core::SynthesisRequest request;
    request.spec = rng.chance(0.5)
                       ? test::motivational_spec()
                       : test::easy_section5_spec(rng.chance(0.5));
    request.kind = static_cast<core::RequestKind>(
        rng.index(core::kNumRequestKinds));
    request.strategy = rng.chance(0.5) ? core::Strategy::kExact
                                       : core::Strategy::kHeuristic;
    request.limits.time_limit_seconds =
        static_cast<double>(rng.uniform_int(1, 1000)) / 8.0;
    request.limits.csp_node_limit =
        static_cast<long>(rng.uniform_int(1, 1 << 20));
    request.limits.heuristic_restarts =
        static_cast<int>(rng.uniform_int(1, 10));
    request.limits.max_combos = static_cast<long>(rng.uniform_int(1, 9999));
    request.limits.intra_palette_split =
        static_cast<int>(rng.uniform_int(0, 7));
    request.parallelism.threads = static_cast<int>(rng.uniform_int(0, 7));
    request.pruning.dominance_cache = rng.chance(0.5);
    request.pruning.static_screens = rng.chance(0.5);
    request.pruning.nogood_learning = rng.chance(0.5);
    request.pruning.cost_bounds = rng.chance(0.5);
    request.pruning.lp_bound = rng.chance(0.5);
    request.observability.metrics = rng.chance(0.5);
    request.seed = rng.next_u64();
    request.lambda_total = static_cast<int>(rng.uniform_int(0, 31));
    const std::size_t sweep_size = rng.index(5);
    for (std::size_t i = 0; i < sweep_size; ++i) {
      request.sweep_values.push_back(rng.uniform_int(1, 100000));
    }
    const std::size_t banned_size = rng.index(4);
    for (std::size_t i = 0; i < banned_size; ++i) {
      request.banned.insert(
          {static_cast<vendor::VendorId>(
               rng.index(request.spec.catalog.num_vendors())),
           static_cast<dfg::ResourceClass>(
               rng.index(dfg::kNumResourceClasses))});
    }

    const std::string wire = serialize_request(request);
    core::SynthesisRequest parsed;
    std::string error;
    ASSERT_TRUE(parse_request(wire, &parsed, &error))
        << "trial " << trial << ": " << error;
    ASSERT_EQ(serialize_request(parsed), wire) << "trial " << trial;
    // And the parsed request is semantically the one we sent.
    ASSERT_EQ(parsed.kind, request.kind) << "trial " << trial;
    ASSERT_EQ(parsed.sweep_values, request.sweep_values) << "trial " << trial;
    ASSERT_EQ(parsed.banned, request.banned) << "trial " << trial;
  }
}

// ---- warm snapshots -------------------------------------------------------

TEST(WireWarmSnapshotTest, RoundTripsByteIdenticallyWithFullU64Range) {
  core::WarmSnapshot snapshot;
  snapshot.market = 0xfedcba9876543210ull;  // exercises the sign bit
  snapshot.version = 7;
  snapshot.cache.fingerprint = snapshot.market;
  snapshot.cache.offer_areas = {-1, 120, -1, 4075, 2000, 1500};
  core::CacheProof proof;
  proof.sig.masks = {0x8000000000000001ull, 0x6ull, 0x1ull};
  proof.sig.lambda_detection = 9;
  proof.sig.lambda_recovery = 11;
  proof.sig.area_limit = 400000;
  proof.combo_cost = 1234;
  snapshot.cache.proofs.push_back(proof);
  core::LpMemo memo;
  memo.sig = proof.sig;
  memo.cost_digest = 0xdeadbeefcafef00dull;
  memo.bound = 999;
  snapshot.cache.lp_memos.push_back(memo);
  snapshot.nogoods.fingerprint = snapshot.market;
  snapshot.nogoods.offer_areas = snapshot.cache.offer_areas;
  core::SealedNogood sealed;
  sealed.guard = proof.sig;
  sealed.combo_cost = 777;
  sealed.nogood.lits.push_back(core::NogoodLit{3, 1, 0, 8});
  sealed.nogood.lits.push_back(core::NogoodLit{5, 0, 2, 4});
  snapshot.nogoods.entries.push_back(sealed);

  const std::string wire = serialize_warm_snapshot(snapshot);
  core::WarmSnapshot parsed;
  std::string error;
  ASSERT_TRUE(parse_warm_snapshot(wire, &parsed, &error)) << error;
  EXPECT_EQ(serialize_warm_snapshot(parsed), wire);
  EXPECT_EQ(parsed.market, snapshot.market);
  EXPECT_EQ(parsed.version, snapshot.version);
  ASSERT_EQ(parsed.cache.proofs.size(), 1u);
  EXPECT_EQ(parsed.cache.proofs[0].sig.masks, proof.sig.masks);
  EXPECT_EQ(parsed.cache.proofs[0].combo_cost, proof.combo_cost);
  ASSERT_EQ(parsed.cache.lp_memos.size(), 1u);
  EXPECT_EQ(parsed.cache.lp_memos[0].cost_digest, memo.cost_digest);
  ASSERT_EQ(parsed.nogoods.entries.size(), 1u);
  EXPECT_EQ(parsed.nogoods.entries[0].nogood, sealed.nogood);
  EXPECT_EQ(parsed.cache.offer_areas, snapshot.cache.offer_areas);
}

TEST(WireWarmSnapshotTest, TolerantReadsAndVersionDiscipline) {
  // Minimal document: absent lists come back empty.
  core::WarmSnapshot minimal;
  std::string error;
  ASSERT_TRUE(parse_warm_snapshot(
      "{\"schema_version\":1,\"market\":\"0x0000000000000001\","
      "\"unknown_field\":42}",
      &minimal, &error))
      << error;
  EXPECT_EQ(minimal.market, 1u);
  EXPECT_TRUE(minimal.cache.proofs.empty());
  EXPECT_TRUE(minimal.nogoods.entries.empty());

  // Newer schema rejected; missing market rejected; output untouched.
  core::WarmSnapshot untouched;
  untouched.market = 99;
  EXPECT_FALSE(parse_warm_snapshot(
      "{\"schema_version\":99,\"market\":\"0x1\"}", &untouched, &error));
  EXPECT_FALSE(
      parse_warm_snapshot("{\"schema_version\":1}", &untouched, &error));
  EXPECT_FALSE(parse_warm_snapshot("{not json", &untouched, &error));
  EXPECT_EQ(untouched.market, 99u);
}

}  // namespace
}  // namespace ht::service
