// Tests for the observability subsystem (src/obs) and its engine plumbing.
//
// The load-bearing property is that observation never steers: tracing and
// metrics collection on vs off must leave statuses, costs and bindings
// bit-identical at every thread count. The unit half covers the trace
// merge discipline (balanced per-thread spans, deterministic global order)
// and the SolveMetrics arithmetic + JSON round-trip; the engine half runs
// a prune-heavy spec and checks the prune-reason accounting against
// OptimizeStats and the forced progress publication on prune-only streaks.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "benchmarks/suite.hpp"
#include "core/engine.hpp"
#include "dfg/analysis.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_helpers.hpp"
#include "vendor/catalogs.hpp"

namespace ht::obs {
namespace {

// ---------------------------------------------------------------------------
// Metrics arithmetic

TEST(MetricsTest, BucketOfLogDecadeBoundaries) {
  EXPECT_EQ(bucket_of(0), 0);
  EXPECT_EQ(bucket_of(999), 0);                  // < 1us
  EXPECT_EQ(bucket_of(1'000), 1);                // < 10us
  EXPECT_EQ(bucket_of(9'999), 1);
  EXPECT_EQ(bucket_of(10'000), 2);               // < 100us
  EXPECT_EQ(bucket_of(100'000), 3);              // < 1ms
  EXPECT_EQ(bucket_of(1'000'000), 4);            // < 10ms
  EXPECT_EQ(bucket_of(10'000'000), 5);           // < 100ms
  EXPECT_EQ(bucket_of(100'000'000), 6);          // < 1s
  EXPECT_EQ(bucket_of(999'999'999), 6);
  EXPECT_EQ(bucket_of(1'000'000'000), 7);        // >= 1s
  EXPECT_EQ(bucket_of(5'000'000'000LL), 7);
}

TEST(MetricsTest, StageStatsAddAndMerge) {
  StageStats a;
  a.add(500);            // bucket 0
  a.add(2'000'000, 10);  // bucket 4, ten underlying events, one sample
  EXPECT_EQ(a.count, 11);
  EXPECT_EQ(a.total_ns, 2'000'500);
  EXPECT_EQ(a.buckets[0], 1);
  EXPECT_EQ(a.buckets[4], 1);

  StageStats b;
  b.add(500);
  b.merge(a);
  EXPECT_EQ(b.count, 12);
  EXPECT_EQ(b.total_ns, 2'001'000);
  EXPECT_EQ(b.buckets[0], 2);
  EXPECT_EQ(b.buckets[4], 1);
}

TEST(MetricsTest, SolveMetricsEmptyResetMerge) {
  SolveMetrics m;
  EXPECT_TRUE(m.empty());
  m.add_prune(PruneReason::kScreen);
  EXPECT_FALSE(m.empty());
  m.stage(Stage::kScreen).add(42);

  SolveMetrics other;
  other.add_prune(PruneReason::kScreen, 2);
  other.stage(Stage::kCspDispatch).add(1'234);
  m.merge(other);
  EXPECT_EQ(m.prune(PruneReason::kScreen), 3);
  EXPECT_EQ(m.stage(Stage::kScreen).count, 1);
  EXPECT_EQ(m.stage(Stage::kCspDispatch).count, 1);

  m.reset();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m, SolveMetrics{});
}

TEST(MetricsTest, JsonRoundTripIsLossless) {
  SolveMetrics m;
  for (int s = 0; s < kNumStages; ++s) {
    m.stages[s].add(1'000LL * (s + 1) * (s + 1), s + 1);
  }
  m.add_prune(PruneReason::kScreen, 7);
  m.add_prune(PruneReason::kCache, 3);
  m.add_prune(PruneReason::kBound, 11);
  m.add_prune(PruneReason::kLp, 1);

  const std::string json = to_json(m);
  SolveMetrics parsed;
  ASSERT_TRUE(parse_metrics_json(json, &parsed)) << json;
  EXPECT_EQ(parsed, m);
  // Stable serialization: a round-tripped struct serializes identically.
  EXPECT_EQ(to_json(parsed), json);
}

TEST(MetricsTest, ParseRejectsMalformedAndLeavesOutputUntouched) {
  SolveMetrics sentinel;
  sentinel.add_prune(PruneReason::kBound, 99);
  const SolveMetrics before = sentinel;
  for (const char* bad :
       {"", "not json", "[1,2,3]", "{\"stages\": 5}",
        "{\"stages\": {\"screen\": {\"count\": \"x\"}}}"}) {
    EXPECT_FALSE(parse_metrics_json(bad, &sentinel)) << bad;
    EXPECT_EQ(sentinel, before) << bad;
  }
}

TEST(MetricsTest, RecordingIsNoOpWhenUnbound) {
  ASSERT_EQ(bound_metrics(), nullptr);
  record_stage(Stage::kScreen, 1'000);  // must not crash, must not record
  record_prune(PruneReason::kCache);
  { StageTimer timer(Stage::kValidation); }
  EXPECT_EQ(bound_metrics(), nullptr);
}

TEST(MetricsTest, BindingNestsAndRestores) {
  SolveMetrics outer_sink;
  SolveMetrics inner_sink;
  {
    MetricsBinding outer(&outer_sink);
    ASSERT_EQ(bound_metrics(), &outer_sink);
    record_prune(PruneReason::kScreen);
    {
      MetricsBinding inner(&inner_sink);
      ASSERT_EQ(bound_metrics(), &inner_sink);
      record_prune(PruneReason::kScreen);
      record_stage(Stage::kCspDispatch, 5'000);
    }
    ASSERT_EQ(bound_metrics(), &outer_sink);
    record_prune(PruneReason::kCache);
    {
      MetricsBinding off(nullptr);
      ASSERT_EQ(bound_metrics(), nullptr);
      record_prune(PruneReason::kBound);  // dropped
    }
  }
  EXPECT_EQ(bound_metrics(), nullptr);
  EXPECT_EQ(outer_sink.prune(PruneReason::kScreen), 1);
  EXPECT_EQ(outer_sink.prune(PruneReason::kCache), 1);
  EXPECT_EQ(outer_sink.prune(PruneReason::kBound), 0);
  EXPECT_EQ(inner_sink.prune(PruneReason::kScreen), 1);
  EXPECT_EQ(inner_sink.stage(Stage::kCspDispatch).count, 1);
  EXPECT_EQ(inner_sink.stage(Stage::kCspDispatch).total_ns, 5'000);
}

// ---------------------------------------------------------------------------
// Tracing

TEST(TraceTest, DisabledPathRecordsNothing) {
  ASSERT_FALSE(tracing_enabled());
  {
    HT_TRACE_SPAN("test/never");
    trace_instant("test/never_i", "k", 1LL);
  }
  const TraceLog log = stop_tracing();  // no capture open: empty, idempotent
  EXPECT_TRUE(log.events.empty());
  EXPECT_EQ(log.dropped, 0u);
}

TEST(TraceTest, SpanFlagSampledAtConstructionKeepsTraceBalanced) {
  start_tracing();
  {
    HT_TRACE_SPAN("test/straddle");
    // The capture closes while the span is open on *this* thread — which
    // is legal for a test-owned span (the engine never does this). The
    // span recorded its begin, so its end must still land... in the next
    // session's buffer, where it is discarded as stale. Either way no
    // crash and the closed log holds the unmatched begin.
    const TraceLog log = stop_tracing();
    ASSERT_EQ(log.events.size(), 1u);
    EXPECT_EQ(log.events[0].phase, 'B');
  }
  // The dangling end landed while tracing was off / in no session;
  // a fresh capture must not see it.
  start_tracing();
  const TraceLog fresh = stop_tracing();
  EXPECT_TRUE(fresh.events.empty());
}

TEST(TraceTest, MultiThreadMergeIsBalancedAndDeterministicallyOrdered) {
  constexpr int kThreads = 4;
  constexpr int kIters = 50;
  start_tracing();
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([] {
        for (int i = 0; i < kIters; ++i) {
          HT_TRACE_SPAN("test/outer");
          {
            HT_TRACE_SPAN("test/inner", "i", i);
            trace_instant("test/tick", "i", static_cast<long long>(i));
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  const TraceLog log = stop_tracing();
  EXPECT_EQ(log.dropped, 0u);
  // 2 spans (B+E each) + 1 instant per iteration per thread.
  ASSERT_EQ(log.events.size(),
            static_cast<std::size_t>(kThreads) * kIters * 5);

  // Per-thread: sequence numbers strictly increase, spans nest and close.
  std::map<std::uint32_t, std::uint64_t> last_seq;
  std::map<std::uint32_t, std::uint64_t> last_ts;
  std::map<std::uint32_t, std::vector<const char*>> stacks;
  for (const TraceEvent& event : log.events) {
    auto seq_it = last_seq.find(event.tid);
    if (seq_it != last_seq.end()) {
      EXPECT_GT(event.seq, seq_it->second);
      EXPECT_GE(event.ts_ns, last_ts[event.tid]);
    }
    last_seq[event.tid] = event.seq;
    last_ts[event.tid] = event.ts_ns;
    auto& stack = stacks[event.tid];
    if (event.phase == 'B') {
      stack.push_back(event.name);
    } else if (event.phase == 'E') {
      ASSERT_FALSE(stack.empty());
      EXPECT_STREQ(stack.back(), event.name);
      stack.pop_back();
    }
  }
  EXPECT_EQ(stacks.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "tid " << tid << " left spans open";
  }

  // Global order is the deterministic merge key (ts, tid, seq).
  const bool sorted = std::is_sorted(
      log.events.begin(), log.events.end(),
      [](const TraceEvent& a, const TraceEvent& b) {
        if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
        if (a.tid != b.tid) return a.tid < b.tid;
        return a.seq < b.seq;
      });
  EXPECT_TRUE(sorted);

  // Payloads survive the merge: every inner begin and tick carries i.
  long long ticks = 0;
  for (const TraceEvent& event : log.events) {
    if (event.phase != 'i') continue;
    ++ticks;
    ASSERT_EQ(event.num_args, 1);
    EXPECT_STREQ(event.args[0].key, "i");
  }
  EXPECT_EQ(ticks, static_cast<long long>(kThreads) * kIters);
}

TEST(TraceTest, ChromeExportIsWellFormedJson) {
  start_tracing();
  {
    HT_TRACE_SPAN("test/export", "combo", 7);
    trace_instant("test/evt", "status", std::string("feasible"), "combo", 7);
  }
  const TraceLog log = stop_tracing();
  ASSERT_EQ(log.events.size(), 3u);

  std::ostringstream out;
  write_chrome_trace(log, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"test/export\""), std::string::npos);
  EXPECT_NE(json.find("\"combo\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"feasible\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser
  // (tools/check_trace_json.py does the full validation in CI).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace ht::obs

namespace ht::core {
namespace {

/// The bench's "polynom tight" shape: Section 5 catalog, latency bounds at
/// the critical path, one instance per offer. Thousands of license sets
/// are refuted by screens and cost floors before the winner dispatches —
/// exactly the prune-heavy search the accounting tests need.
ProblemSpec tight_polynom_spec() {
  ProblemSpec spec;
  spec.graph = benchmarks::by_name("polynom").factory();
  spec.catalog = vendor::section5();
  const int critical_path =
      dfg::critical_path_length(spec.graph, spec.op_latencies());
  spec.lambda_detection = critical_path;
  spec.lambda_recovery = critical_path;
  spec.with_recovery = true;
  spec.area_limit = 400000;
  spec.max_instances_per_offer = 1;
  return spec;
}

SynthesisRequest tight_request(int threads) {
  SynthesisRequest request;
  request.spec = tight_polynom_spec();
  request.strategy = Strategy::kHeuristic;
  request.limits.heuristic_restarts = 3;
  request.limits.heuristic_node_limit = 80'000;
  request.limits.max_combos = 5'000;
  request.limits.time_limit_seconds = 600;  // never the binding limit
  request.parallelism.threads = threads;
  return request;
}

void expect_identical(const OptimizeResult& a, const OptimizeResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.status, b.status) << label;
  if (!a.has_solution()) return;
  EXPECT_EQ(a.cost, b.cost) << label;
  ASSERT_EQ(a.solution.num_ops(), b.solution.num_ops()) << label;
  for (CopyKind kind : a.solution.active_kinds()) {
    for (dfg::OpId op = 0; op < a.solution.num_ops(); ++op) {
      EXPECT_EQ(a.solution.at(kind, op), b.solution.at(kind, op))
          << label << " " << copy_kind_name(kind) << " op " << op;
    }
  }
}

TEST(ObsEngineTest, MetricsAndTracingNeverChangeResults) {
  for (int threads : {1, 4, 8}) {
    const std::string label = "threads=" + std::to_string(threads);

    SynthesisRequest plain = tight_request(threads);
    SynthesisEngine baseline_engine(plain);
    const OptimizeResult baseline = baseline_engine.minimize();

    SynthesisRequest observed = tight_request(threads);
    observed.observability.metrics = true;
    SynthesisEngine observed_engine(observed);
    obs::start_tracing();
    const OptimizeResult traced = observed_engine.minimize();
    const obs::TraceLog log = obs::stop_tracing();

    expect_identical(baseline, traced, label);
    EXPECT_FALSE(traced.metrics.empty()) << label;
    EXPECT_TRUE(baseline.metrics.empty()) << label;
    EXPECT_FALSE(log.events.empty()) << label;
  }
}

TEST(ObsEngineTest, PruneReasonAccountingMatchesOptimizeStats) {
  SynthesisRequest request = tight_request(1);
  request.observability.metrics = true;
  SynthesisEngine engine(request);
  const OptimizeResult result = engine.minimize();

  ASSERT_EQ(result.status, OptStatus::kOptimal);
  const obs::SolveMetrics& m = result.metrics;
  // Every skip-counter increment site records a prune reason under the
  // same lock, so the reason split must tile the stats exactly.
  EXPECT_EQ(m.prune(obs::PruneReason::kScreen),
            result.stats.combos_skipped_screen);
  EXPECT_EQ(m.prune(obs::PruneReason::kCache),
            result.stats.combos_skipped_cache);
  EXPECT_EQ(m.prune(obs::PruneReason::kBound) +
                m.prune(obs::PruneReason::kLp),
            result.stats.lb_prunes);
  // The tight spec's point: a real prune-heavy search.
  EXPECT_GT(result.stats.combos_skipped_screen + result.stats.lb_prunes,
            kPruneProgressInterval);
  // Dispatch and enumeration stages saw real work. Dispatch may exceed
  // combos_tried: the full-market incumbent probe evaluates through the
  // same instrumented path without consuming the combo window.
  EXPECT_GE(m.stage(obs::Stage::kCspDispatch).count,
            result.stats.combos_tried);
  EXPECT_GT(m.stage(obs::Stage::kCspDispatch).count, 0);
  EXPECT_EQ(m.stage(obs::Stage::kEnumeration).count, 1);
  EXPECT_GT(m.stage(obs::Stage::kValidation).count, 0);
}

TEST(ObsEngineTest, ProgressPublishesOnPruneOnlyStreaks) {
  SynthesisRequest request = tight_request(1);
  request.observability.metrics = true;
  std::vector<SynthesisProgress> snapshots;
  request.progress = [&](const SynthesisProgress& progress) {
    snapshots.push_back(progress);
  };
  SynthesisEngine engine(request);
  const OptimizeResult result = engine.minimize();
  ASSERT_EQ(result.status, OptStatus::kOptimal);

  // The tight spec refutes thousands of cheaper sets before its single
  // dispatch, so without the forced publication the callback would fire
  // only at the commit. The streak rule must have fired earlier: at least
  // one snapshot with zero dispatches and a full interval of skips.
  ASSERT_GE(snapshots.size(), 2u);
  bool saw_forced = false;
  long last_tried = 0;
  for (const SynthesisProgress& progress : snapshots) {
    EXPECT_GE(progress.combos_tried, last_tried);  // monotone
    last_tried = progress.combos_tried;
    const long skipped = progress.combos_skipped_screen +
                         progress.combos_skipped_cache + progress.lb_prunes;
    if (progress.combos_tried == 0 && skipped >= kPruneProgressInterval) {
      saw_forced = true;
      EXPECT_FALSE(progress.have_incumbent);
      // Live metrics ride on the snapshot when the request asks for them.
      EXPECT_FALSE(progress.metrics.empty());
      EXPECT_EQ(progress.metrics.prune(obs::PruneReason::kScreen),
                progress.combos_skipped_screen);
    }
  }
  EXPECT_TRUE(saw_forced);

  // The last snapshot agrees with the final stats.
  const SynthesisProgress& last = snapshots.back();
  EXPECT_EQ(last.combos_tried, result.stats.combos_tried);
  EXPECT_EQ(last.combos_skipped_screen, result.stats.combos_skipped_screen);
  EXPECT_EQ(last.lb_prunes, result.stats.lb_prunes);
  EXPECT_TRUE(last.have_incumbent);
  EXPECT_EQ(last.incumbent_cost, result.cost);
}

TEST(ObsEngineTest, EasySpecDispatchesWithoutForcedPublications) {
  // The motivational spec dispatches its first set successfully: progress
  // arrives once per evaluated set, never from the streak rule.
  SynthesisRequest request;
  request.spec = test::motivational_spec();
  std::vector<SynthesisProgress> snapshots;
  request.progress = [&](const SynthesisProgress& progress) {
    snapshots.push_back(progress);
  };
  SynthesisEngine engine(request);
  const OptimizeResult result = engine.minimize();
  ASSERT_EQ(result.status, OptStatus::kOptimal);
  ASSERT_FALSE(snapshots.empty());
  for (const SynthesisProgress& progress : snapshots) {
    EXPECT_GT(progress.combos_tried, 0);
    // Metrics were not requested: the snapshot's breakdown stays zero.
    EXPECT_TRUE(progress.metrics.empty());
  }
}

}  // namespace
}  // namespace ht::core

// ---------------------------------------------------------------------------
// Request-lifecycle observability: correlation, journal, flight recorder,
// percentile windows, and the Prometheus exposition builder.

#include <cstdio>
#include <fstream>

#include "obs/flight_recorder.hpp"
#include "obs/journal.hpp"
#include "obs/telemetry.hpp"
#include "service/wire.hpp"

namespace ht::obs {
namespace {

TEST(TraceTest, CorrelationScopeStampsReqOnEveryEvent) {
  start_tracing();
  {
    CorrelationScope correlation(77);
    EXPECT_EQ(correlation_id(), 77u);
    HT_TRACE_SPAN("test/correlated");
    {
      CorrelationScope nested(78);
      trace_instant("test/nested");
    }
    // RAII restore: back to the outer id after the nested scope.
    EXPECT_EQ(correlation_id(), 77u);
  }
  EXPECT_EQ(correlation_id(), 0u);
  trace_instant("test/uncorrelated");
  const TraceLog log = stop_tracing();
  ASSERT_EQ(log.events.size(), 4u);

  std::ostringstream out;
  write_chrome_trace(log, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"req\": 77"), std::string::npos);
  EXPECT_NE(json.find("\"req\": 78"), std::string::npos);
  // The uncorrelated instant must not carry a req arg at all.
  EXPECT_EQ(json.find("\"req\": 0"), std::string::npos);
}

TEST(PercentileWindowTest, RetainsLargestWhenSaturated) {
  PercentileWindow window(4);
  for (int i = 1; i <= 10; ++i) window.push(static_cast<double>(i));
  EXPECT_EQ(window.size(), 4u);
  EXPECT_EQ(window.pushed(), 10);
  EXPECT_EQ(window.sorted_samples(),
            (std::vector<double>{7.0, 8.0, 9.0, 10.0}));
  EXPECT_EQ(window.max(), 10.0);
  EXPECT_EQ(window.quantile(1.0), 10.0);
}

TEST(PercentileWindowTest, MergeIsOrderAndPartitionInvariantAcrossThreads) {
  // A fixed pseudo-random sample set (no wall clock, no RNG state): the
  // reference window sees everything sequentially; four thread-local
  // windows each see a strided partition and are merged in two different
  // orders. All three must retain the identical multiset.
  std::vector<double> samples;
  samples.reserve(997);
  for (std::uint64_t i = 0; i < 997; ++i) {
    samples.push_back(
        static_cast<double>((i * 2654435761ULL) % 100003ULL) / 1000.0);
  }
  PercentileWindow reference(64);
  for (const double sample : samples) reference.push(sample);

  std::vector<PercentileWindow> locals(4, PercentileWindow(64));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < samples.size();
           i += 4) {
        locals[static_cast<std::size_t>(t)].push(samples[i]);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  PercentileWindow forward(64);
  for (int t = 0; t < 4; ++t) {
    forward.merge(locals[static_cast<std::size_t>(t)]);
  }
  PercentileWindow backward(64);
  for (int t = 3; t >= 0; --t) {
    backward.merge(locals[static_cast<std::size_t>(t)]);
  }
  EXPECT_EQ(forward.sorted_samples(), reference.sorted_samples());
  EXPECT_EQ(backward.sorted_samples(), reference.sorted_samples());
  EXPECT_EQ(forward.pushed(), reference.pushed());
  EXPECT_EQ(backward.pushed(), reference.pushed());
  EXPECT_EQ(forward.quantile(0.95), reference.quantile(0.95));
}

TEST(JournalTest, LineSerializationParsesBackWithAllFields) {
  JournalEvent event;
  event.type = "end";
  event.req = 42;
  event.market = 0x00c0ffee;
  event.id = "job \"quoted\"";
  event.status = "optimal";
  event.queue_s = 0.25;
  event.solve_s = 1.5;
  event.cost = 1234;
  event.nodes = 5678;
  event.snapshot_version = 3;
  const std::string line = journal_line(event, 9, 1700000000123LL);

  service::Json parsed;
  std::string error;
  ASSERT_TRUE(service::Json::parse(line, &parsed, &error)) << error;
  EXPECT_EQ(parsed.get("journal_version").as_int(), kJournalVersion);
  EXPECT_EQ(parsed.get("seq").as_int(), 9);
  EXPECT_EQ(parsed.get("ts_ms").as_int(), 1700000000123LL);
  EXPECT_EQ(parsed.get("event").as_string(), "end");
  EXPECT_EQ(parsed.get("req").as_int(), 42);
  EXPECT_EQ(parsed.get("market").as_string(), "0x0000000000c0ffee");
  EXPECT_EQ(parsed.get("id").as_string(), "job \"quoted\"");
  EXPECT_EQ(parsed.get("status").as_string(), "optimal");
  EXPECT_DOUBLE_EQ(parsed.get("queue_s").as_double(), 0.25);
  EXPECT_DOUBLE_EQ(parsed.get("solve_s").as_double(), 1.5);
  EXPECT_EQ(parsed.get("cost").as_int(), 1234);
  EXPECT_EQ(parsed.get("nodes").as_int(), 5678);
  EXPECT_EQ(parsed.get("snapshot_version").as_int(), 3);

  // Optional fields stay absent when unset, so readers can rely on
  // presence = meaningful.
  JournalEvent bare;
  bare.type = "admit";
  bare.req = 1;
  const std::string bare_line = journal_line(bare, 1, 0);
  ASSERT_TRUE(service::Json::parse(bare_line, &parsed, &error)) << error;
  EXPECT_FALSE(parsed.has("market"));
  EXPECT_FALSE(parsed.has("cost"));
  EXPECT_FALSE(parsed.has("queue_s"));
}

TEST(JournalTest, WritesWholeLinesWithStrictlyIncreasingSeq) {
  const std::string path =
      ::testing::TempDir() + "ht_obs_journal_test.jsonl";
  std::remove(path.c_str());
  {
    std::string error;
    auto journal = RequestJournal::open(path, &error);
    ASSERT_NE(journal, nullptr) << error;
    for (std::uint64_t req = 1; req <= 3; ++req) {
      JournalEvent admit;
      admit.type = "admit";
      admit.req = req;
      journal->append(admit);
      JournalEvent start;
      start.type = "solve_start";
      start.req = req;
      journal->append(start);
      JournalEvent end;
      end.type = "end";
      end.req = req;
      end.status = "optimal";
      journal->append(end);
    }
    journal->flush();
    const JournalCounters counters = journal->counters();
    EXPECT_EQ(counters.appended, 9);
    EXPECT_EQ(counters.written, 9);
    EXPECT_EQ(counters.dropped, 0);
  }  // destructor joins the writer; the file is complete

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  long long last_seq = -1;
  std::map<long long, int> admits;
  std::map<long long, int> ends;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    service::Json parsed;
    std::string error;
    ASSERT_TRUE(service::Json::parse(line, &parsed, &error))
        << line << ": " << error;
    const long long seq = parsed.get("seq").as_int(-1);
    EXPECT_GT(seq, last_seq) << "seq must be strictly increasing";
    last_seq = seq;
    const long long req = parsed.get("req").as_int(0);
    const std::string type = parsed.get("event").as_string();
    if (type == "admit") ++admits[req];
    if (type == "end") ++ends[req];
  }
  EXPECT_EQ(lines, 9);
  for (long long req = 1; req <= 3; ++req) {
    EXPECT_EQ(admits[req], 1) << "req " << req;
    EXPECT_EQ(ends[req], 1) << "req " << req;
  }
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, ThresholdIsComputedBeforeTheJudgedSample) {
  FlightRecorderConfig config;
  config.min_samples = 4;
  config.anomaly_factor = 2.0;
  config.min_anomaly_seconds = 0.001;
  FlightRecorder recorder(config);
  EXPECT_LT(recorder.latency_threshold(), 0.0);  // not enough samples
  for (int i = 0; i < 4; ++i) {
    recorder.note_reply(static_cast<std::uint64_t>(i + 1), 0.01, false,
                        false);
  }
  // p95 of four 0.01s samples is 0.01; threshold = 2 x 0.01.
  EXPECT_DOUBLE_EQ(recorder.latency_threshold(), 0.02);
  EXPECT_EQ(recorder.dumps_written(), 0);
}

TEST(FlightRecorderTest, AnomalyDumpHoldsOnlyCorrelatedSpansAcrossLanes) {
  FlightRecorderConfig config;
  config.dump_dir = ::testing::TempDir() + "ht_obs_flight_test";
  config.ring_capacity = 8;
  FlightRecorder recorder(config);

  const std::uint64_t base = recorder.now_ns();
  recorder.record(0, {"svc/queue", 42, base, base + 1000});
  recorder.record(0, {"svc/solve", 42, base + 1000, base + 5000});
  recorder.record(1, {"svc/solve", 7, base, base + 2000});  // other request
  recorder.record(1, {"svc/merge", 42, base + 5000, base + 6000});

  ASSERT_EQ(recorder.correlated(42).size(), 3u);
  // expired forces the anomaly path regardless of latency history.
  const std::string path = recorder.note_reply(42, 0.001, true, false);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(recorder.dumps_written(), 1);
  EXPECT_NE(path.find("req-42.trace.json"), std::string::npos);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  service::Json parsed;
  std::string error;
  ASSERT_TRUE(service::Json::parse(buffer.str(), &parsed, &error)) << error;
  const service::Json& events = parsed.get("traceEvents");
  ASSERT_EQ(events.size(), 3u);
  for (const service::Json& event : events.items()) {
    EXPECT_EQ(event.get("ph").as_string(), "X");
    EXPECT_EQ(event.get("args").get("req").as_int(), 42);
    EXPECT_GE(event.get("dur").as_double(-1.0), 0.0);
  }
  std::remove(path.c_str());
}

TEST(PrometheusTextTest, HistogramBucketsAreCumulativeAndCountMatchesInf) {
  StageStats stats;
  stats.add(500);          // <1us
  stats.add(50'000);       // <100us
  stats.add(2'000'000'000);  // >=1s
  PrometheusText prom;
  prom.histogram("test_seconds", "help text", stats);
  const std::string body = prom.str();
  EXPECT_NE(body.find("# TYPE test_seconds histogram"), std::string::npos);
  EXPECT_NE(body.find("test_seconds_bucket{le=\"1e-06\"} 1"),
            std::string::npos);
  EXPECT_NE(body.find("test_seconds_bucket{le=\"0.0001\"} 2"),
            std::string::npos);
  EXPECT_NE(body.find("test_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(body.find("test_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(body.find("test_seconds_count 3"), std::string::npos);
}

TEST(PrometheusTextTest, RepeatedLabeledSeriesShareOneHeader) {
  PrometheusText prom;
  prom.counter("x_total", "help", 1.0, "market=\"a\"");
  prom.counter("x_total", "help", 2.0, "market=\"b\"");
  const std::string body = prom.str();
  std::size_t headers = 0;
  for (std::size_t pos = body.find("# TYPE x_total");
       pos != std::string::npos;
       pos = body.find("# TYPE x_total", pos + 1)) {
    ++headers;
  }
  EXPECT_EQ(headers, 1u);
  EXPECT_NE(body.find("x_total{market=\"a\"} 1"), std::string::npos);
  EXPECT_NE(body.find("x_total{market=\"b\"} 2"), std::string::npos);
}

}  // namespace
}  // namespace ht::obs
