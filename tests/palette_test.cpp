#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/palette.hpp"
#include "test_helpers.hpp"
#include "util/status.hpp"

namespace ht::core {
namespace {

using dfg::ResourceClass;

TEST(PaletteTest, UnusedClassGetsSingleEmptyOption) {
  const ProblemSpec spec = test::motivational_spec();  // no alu ops
  const auto options = enumerate_palettes(spec, {1, 1, 0});
  const auto& alu = options[static_cast<int>(ResourceClass::kAlu)];
  ASSERT_EQ(alu.size(), 1u);
  EXPECT_EQ(alu[0].cost, 0);
  EXPECT_TRUE(alu[0].vendors.empty());
}

TEST(PaletteTest, EnumeratesAllSubsetsAboveMinimum) {
  const ProblemSpec spec = test::motivational_spec();  // 4-vendor market
  const auto options = enumerate_palettes(spec, {2, 3, 0});
  // Adders: C(4,2)+C(4,3)+C(4,4) = 6+4+1 = 11; multipliers: 4+1 = 5.
  EXPECT_EQ(options[static_cast<int>(ResourceClass::kAdder)].size(), 11u);
  EXPECT_EQ(options[static_cast<int>(ResourceClass::kMultiplier)].size(),
            5u);
}

TEST(PaletteTest, OptionsSortedByCost) {
  const ProblemSpec spec = test::motivational_spec();
  const auto options = enumerate_palettes(spec, {2, 2, 0});
  for (const auto& per_class : options) {
    for (std::size_t i = 1; i < per_class.size(); ++i) {
      EXPECT_LE(per_class[i - 1].cost, per_class[i].cost);
    }
  }
}

TEST(PaletteTest, CostsMatchCatalog) {
  const ProblemSpec spec = test::motivational_spec();
  const auto options = enumerate_palettes(spec, {2, 2, 0});
  for (int cls = 0; cls < 2; ++cls) {
    for (const PaletteOption& option :
         options[static_cast<std::size_t>(cls)]) {
      long long total = 0;
      for (vendor::VendorId v : option.vendors) {
        total +=
            spec.catalog.offer(v, static_cast<ResourceClass>(cls)).cost;
      }
      EXPECT_EQ(option.cost, total);
    }
  }
}

TEST(ComboQueueTest, NondecreasingTotalCost) {
  const ProblemSpec spec = test::motivational_spec();
  ComboQueue queue(enumerate_palettes(spec, {2, 2, 0}));
  Palettes palettes;
  long long cost = 0;
  long long previous = -1;
  int combos = 0;
  while (queue.next(palettes, cost)) {
    EXPECT_GE(cost, previous);
    previous = cost;
    ++combos;
  }
  // 11 adder options x 11 multiplier options x 1 empty alu option.
  EXPECT_EQ(combos, 121);
}

TEST(ComboQueueTest, FirstComboIsCheapestPair) {
  const ProblemSpec spec = test::motivational_spec();
  ComboQueue queue(enumerate_palettes(spec, {2, 2, 0}));
  Palettes palettes;
  long long cost = 0;
  ASSERT_TRUE(queue.next(palettes, cost));
  // Cheapest 2 adders: 450+540; cheapest 2 multipliers: 760+880.
  EXPECT_EQ(cost, 450 + 540 + 760 + 880);
}

TEST(ComboQueueTest, EveryComboUnique) {
  const ProblemSpec spec = test::motivational_spec();
  ComboQueue queue(enumerate_palettes(spec, {2, 2, 0}));
  Palettes palettes;
  long long cost = 0;
  std::set<std::pair<std::vector<vendor::VendorId>,
                     std::vector<vendor::VendorId>>>
      seen;
  while (queue.next(palettes, cost)) {
    EXPECT_TRUE(
        seen.insert({palettes[0], palettes[1]}).second)
        << "duplicate combo at cost " << cost;
  }
}

TEST(PaletteTest, MinimumSizeFiltersSubsets) {
  const ProblemSpec spec = test::motivational_spec();
  const auto options = enumerate_palettes(spec, {4, 4, 0});
  EXPECT_EQ(options[static_cast<int>(ResourceClass::kAdder)].size(), 1u);
  EXPECT_EQ(options[static_cast<int>(ResourceClass::kAdder)][0]
                .vendors.size(),
            4u);
}

/// Adder-only one-op spec on a market of `num_vendors` vendors, all
/// offering only adders — the minimal shape for probing the vendor cap.
ProblemSpec wide_market_spec(int num_vendors) {
  dfg::Dfg graph("wide");
  const dfg::Operand a = graph.add_input("a");
  const dfg::Operand b = graph.add_input("b");
  graph.mark_output(graph.add(a, b));

  vendor::Catalog catalog(num_vendors);
  for (vendor::VendorId v = 0; v < num_vendors; ++v) {
    catalog.set_offer(v, ResourceClass::kAdder, {100 + v, 100 + v});
  }

  ProblemSpec spec;
  spec.graph = graph;
  spec.catalog = catalog;
  spec.lambda_detection = 2;
  spec.with_recovery = false;
  spec.area_limit = 1'000'000;
  return spec;
}

TEST(PaletteLimitsTest, MarketOfExactlyKMaxVendorsIsAccepted) {
  const ProblemSpec spec = wide_market_spec(kMaxVendors);
  const auto options = enumerate_palettes(spec, {kMaxVendors, 0, 0});
  const auto& adders = options[static_cast<int>(ResourceClass::kAdder)];
  ASSERT_EQ(adders.size(), 1u);
  EXPECT_EQ(adders[0].vendors.size(), static_cast<std::size_t>(kMaxVendors));

  // The CSP's vendor bitmasks must hold the full-width palette too.
  Palettes palettes;
  palettes[static_cast<int>(ResourceClass::kAdder)] = adders[0].vendors;
  const CspResult result = schedule_and_bind(spec, palettes, {});
  EXPECT_EQ(result.status, CspResult::Status::kFeasible);
}

TEST(PaletteLimitsTest, MarketAboveKMaxVendorsIsRejectedEverywhere) {
  const ProblemSpec spec = wide_market_spec(kMaxVendors + 1);
  EXPECT_THROW(enumerate_palettes(spec, {1, 0, 0}), util::SpecError);

  Palettes palettes;
  auto& adders = palettes[static_cast<int>(ResourceClass::kAdder)];
  adders.resize(static_cast<std::size_t>(kMaxVendors + 1));
  std::iota(adders.begin(), adders.end(), 0);
  EXPECT_THROW(schedule_and_bind(spec, palettes, {}), util::SpecError);

  // Both rejections should point the user at the shared constant.
  try {
    enumerate_palettes(spec, {1, 0, 0});
    FAIL() << "expected SpecError";
  } catch (const util::SpecError& error) {
    EXPECT_NE(std::string(error.what()).find("kMaxVendors"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace ht::core
