#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/rules.hpp"
#include "test_helpers.hpp"

namespace ht::core {
namespace {

using test::motivational_detection_only;
using test::motivational_spec;

bool has_conflict(const std::vector<VendorConflict>& conflicts, CopyRef a,
                  CopyRef b) {
  return std::any_of(conflicts.begin(), conflicts.end(),
                     [&](const VendorConflict& c) {
                       return (c.a == a && c.b == b) ||
                              (c.a == b && c.b == a);
                     });
}

TEST(RulesTest, DetectionRule1PresentForEveryOp) {
  const ProblemSpec spec = motivational_detection_only();
  const auto conflicts = vendor_conflicts(spec);
  for (dfg::OpId op = 0; op < spec.graph.num_ops(); ++op) {
    EXPECT_TRUE(has_conflict(conflicts, {CopyKind::kNormal, op},
                             {CopyKind::kRedundant, op}))
        << "op " << op;
  }
}

TEST(RulesTest, ParentChildConflictsInEverySchedule) {
  const ProblemSpec spec = motivational_spec();
  const auto conflicts = vendor_conflicts(spec);
  for (const auto& [from, to] : spec.graph.edges()) {
    for (CopyKind kind :
         {CopyKind::kNormal, CopyKind::kRedundant, CopyKind::kRecovery}) {
      EXPECT_TRUE(
          has_conflict(conflicts, {kind, from}, {kind, to}))
          << "edge " << from << "->" << to;
    }
  }
}

TEST(RulesTest, SiblingConflictsInNormalComputation) {
  // polynom: m1 and m2 both feed s1; m3 and s1 both feed s2.
  const ProblemSpec spec = motivational_detection_only();
  const auto conflicts = vendor_conflicts(spec);
  EXPECT_TRUE(has_conflict(conflicts, {CopyKind::kNormal, 0},
                           {CopyKind::kNormal, 1}));
}

TEST(RulesTest, SiblingLiteralModeIsTheDefault) {
  // The paper's equation (7) constrains siblings in NC only; that literal
  // reading is the default (it is what makes Figure 5's $4160 reachable).
  const ProblemSpec spec = motivational_detection_only();
  EXPECT_FALSE(spec.rules.sibling_diversity_all_copies);
  const auto conflicts = vendor_conflicts(spec);
  EXPECT_TRUE(has_conflict(conflicts, {CopyKind::kNormal, 0},
                           {CopyKind::kNormal, 1}));
  EXPECT_FALSE(has_conflict(conflicts, {CopyKind::kRedundant, 0},
                            {CopyKind::kRedundant, 1}));
}

TEST(RulesTest, SymmetricSiblingModeConstrainsAllCopies) {
  ProblemSpec spec = motivational_spec();
  spec.rules.sibling_diversity_all_copies = true;
  const auto conflicts = vendor_conflicts(spec);
  EXPECT_TRUE(has_conflict(conflicts, {CopyKind::kRedundant, 0},
                           {CopyKind::kRedundant, 1}));
  EXPECT_TRUE(has_conflict(conflicts, {CopyKind::kRecovery, 0},
                           {CopyKind::kRecovery, 1}));
}

TEST(RulesTest, RecoveryRule1AvoidsBothDetectionVendors) {
  const ProblemSpec spec = motivational_spec();
  const auto conflicts = vendor_conflicts(spec);
  for (dfg::OpId op = 0; op < spec.graph.num_ops(); ++op) {
    EXPECT_TRUE(has_conflict(conflicts, {CopyKind::kRecovery, op},
                             {CopyKind::kNormal, op}));
    EXPECT_TRUE(has_conflict(conflicts, {CopyKind::kRecovery, op},
                             {CopyKind::kRedundant, op}));
  }
}

TEST(RulesTest, NoRecoveryConflictsInDetectionOnlyMode) {
  const ProblemSpec spec = motivational_detection_only();
  for (const VendorConflict& conflict : vendor_conflicts(spec)) {
    EXPECT_NE(conflict.a.kind, CopyKind::kRecovery);
    EXPECT_NE(conflict.b.kind, CopyKind::kRecovery);
  }
}

TEST(RulesTest, ClosePairsAddRecoveryConflicts) {
  ProblemSpec spec = motivational_spec();
  // m1 (op 0) and m2 (op 1) are both multipliers: a legal close pair.
  spec.closely_related.push_back({0, 1});
  const auto conflicts = vendor_conflicts(spec);
  EXPECT_TRUE(has_conflict(conflicts, {CopyKind::kRecovery, 0},
                           {CopyKind::kNormal, 1}));
  EXPECT_TRUE(has_conflict(conflicts, {CopyKind::kRecovery, 1},
                           {CopyKind::kRedundant, 0}));
}

TEST(RulesTest, RuleTogglesRemoveConflicts) {
  ProblemSpec spec = motivational_spec();
  spec.rules.detection_same_op = false;
  spec.rules.detection_parent_child = false;
  spec.rules.detection_sibling = false;
  spec.rules.recovery_same_op = false;
  spec.rules.recovery_close_pairs = false;
  EXPECT_TRUE(vendor_conflicts(spec).empty());
}

TEST(RulesTest, ConflictsAreDeduplicated) {
  const ProblemSpec spec = motivational_spec();
  const auto conflicts = vendor_conflicts(spec);
  std::set<std::pair<int, int>> seen;
  const int n = spec.graph.num_ops();
  for (const VendorConflict& conflict : conflicts) {
    int a = copy_index(conflict.a, n);
    int b = copy_index(conflict.b, n);
    if (a > b) std::swap(a, b);
    EXPECT_TRUE(seen.emplace(a, b).second) << "duplicate " << a << "," << b;
  }
}

TEST(RulesTest, AdjacencySymmetric) {
  const ProblemSpec spec = motivational_spec();
  const auto conflicts = vendor_conflicts(spec);
  const auto adjacency = conflict_adjacency(spec, conflicts);
  for (std::size_t a = 0; a < adjacency.size(); ++a) {
    for (int b : adjacency[a]) {
      const auto& back = adjacency[static_cast<std::size_t>(b)];
      EXPECT_NE(std::find(back.begin(), back.end(), static_cast<int>(a)),
                back.end());
    }
  }
}

TEST(RulesTest, DetectionOnlyNeedsTwoVendorsPerUsedClass) {
  const ProblemSpec spec = motivational_detection_only();
  const auto bounds = min_vendors_per_class(spec);
  EXPECT_GE(bounds[static_cast<int>(dfg::ResourceClass::kAdder)], 2);
  EXPECT_GE(bounds[static_cast<int>(dfg::ResourceClass::kMultiplier)], 2);
  EXPECT_EQ(bounds[static_cast<int>(dfg::ResourceClass::kAlu)], 0);
}

TEST(RulesTest, RecoveryRaisesTheDiversityBound) {
  // The paper's headline: detection-only underestimates diversity. The
  // NC/RC/recovery triangle forces at least 3 vendors per used class.
  const auto detection = min_vendors_per_class(motivational_detection_only());
  const auto recovery = min_vendors_per_class(motivational_spec());
  for (int cls : {static_cast<int>(dfg::ResourceClass::kAdder),
                  static_cast<int>(dfg::ResourceClass::kMultiplier)}) {
    EXPECT_GE(recovery[cls], 3);
    EXPECT_GT(recovery[cls], detection[cls] - 1);  // never lower
  }
}

TEST(RulesTest, CopyIndexIsDense) {
  const int n = 7;
  std::set<int> seen;
  for (CopyKind kind :
       {CopyKind::kNormal, CopyKind::kRedundant, CopyKind::kRecovery}) {
    for (dfg::OpId op = 0; op < n; ++op) {
      const int index = copy_index({kind, op}, n);
      EXPECT_GE(index, 0);
      EXPECT_LT(index, 3 * n);
      EXPECT_TRUE(seen.insert(index).second);
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(3 * n));
}

}  // namespace
}  // namespace ht::core
