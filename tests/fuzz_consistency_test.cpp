// Cross-engine consistency fuzzing.
//
// For random problem specs the independent solution paths must agree:
//   * exact never costs more than heuristic, and both validate;
//   * feasibility verdicts are consistent (one engine cannot prove
//     infeasible what another solved);
//   * the run-time pipeline accepts every produced design (behavioral and
//     RTL cross-simulation, clean run equals golden);
//   * rule monotonicity: disabling rules never raises the minimum cost,
//     adding close pairs never lowers it.
#include <gtest/gtest.h>

#include "benchmarks/random_dfg.hpp"
#include "core/engine.hpp"
#include "core/optimizer.hpp"
#include "dfg/analysis.hpp"
#include "trojan/monte_carlo.hpp"
#include "rtl/sim.hpp"
#include "vendor/catalogs.hpp"

namespace ht {
namespace {

core::ProblemSpec random_spec(util::Rng& rng, bool with_recovery) {
  benchmarks::RandomDfgConfig config;
  config.num_ops = static_cast<int>(rng.uniform_int(4, 14));
  config.max_depth = 4;
  config.edge_probability = rng.uniform01() * 0.6 + 0.2;
  core::ProblemSpec spec;
  spec.graph = benchmarks::random_dfg(config, rng);
  spec.catalog = vendor::section5();
  const int cp = dfg::critical_path_length(spec.graph);
  spec.lambda_detection = cp + static_cast<int>(rng.uniform_int(0, 3));
  spec.with_recovery = with_recovery;
  spec.lambda_recovery =
      with_recovery ? cp + static_cast<int>(rng.uniform_int(0, 3)) : 0;
  // Areas from generous down to tight-but-usually-feasible.
  spec.area_limit = 30000 + rng.uniform_int(0, 8) * 20000;
  return spec;
}

class FuzzConsistencyTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzConsistencyTest, ::testing::Range(1, 13));

TEST_P(FuzzConsistencyTest, ExactAndHeuristicAgree) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  for (int round = 0; round < 3; ++round) {
    const core::ProblemSpec spec = random_spec(rng, rng.chance(0.5));

    core::OptimizerOptions exact_options;
    exact_options.time_limit_seconds = 10;
    const core::OptimizeResult exact =
        core::synthesize(core::make_request(spec, exact_options)).result;

    core::OptimizerOptions heuristic_options;
    heuristic_options.strategy = core::Strategy::kHeuristic;
    heuristic_options.time_limit_seconds = 10;
    heuristic_options.seed = rng.next_u64() | 1;
    const core::OptimizeResult heuristic =
        core::synthesize(core::make_request(spec, heuristic_options)).result;

    // Verdict consistency.
    if (exact.status == core::OptStatus::kInfeasible) {
      EXPECT_FALSE(heuristic.has_solution())
          << "heuristic solved an instance exact proved infeasible";
    }
    if (heuristic.status == core::OptStatus::kInfeasible) {
      EXPECT_FALSE(exact.has_solution())
          << "exact solved an instance heuristic proved infeasible";
    }
    if (exact.has_solution()) {
      EXPECT_TRUE(core::validate_solution(spec, exact.solution).ok());
    }
    if (heuristic.has_solution()) {
      EXPECT_TRUE(core::validate_solution(spec, heuristic.solution).ok());
    }
    if (exact.status == core::OptStatus::kOptimal &&
        heuristic.has_solution()) {
      EXPECT_LE(exact.cost, heuristic.cost);
    }
    if (exact.status == core::OptStatus::kOptimal &&
        heuristic.status == core::OptStatus::kOptimal) {
      EXPECT_EQ(exact.cost, heuristic.cost);
    }
  }
}

TEST_P(FuzzConsistencyTest, ProducedDesignsSimulateCleanly) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7907 + 13);
  const core::ProblemSpec spec = random_spec(rng, true);
  core::OptimizerOptions options;
  options.strategy = core::Strategy::kHeuristic;
  options.time_limit_seconds = 10;
  const core::OptimizeResult design = core::synthesize(core::make_request(spec, options)).result;
  if (!design.has_solution()) return;  // tight random spec; nothing to check

  std::vector<trojan::Word> inputs;
  for (int i = 0; i < spec.graph.num_inputs(); ++i) {
    inputs.push_back(rng.uniform_int(0, 1 << 18));
  }
  // Behavioral clean run == golden everywhere.
  const trojan::RuntimeSimulator behavioral(spec, design.solution);
  const trojan::RunResult run = behavioral.run(inputs, {});
  EXPECT_FALSE(run.mismatch_detected);
  EXPECT_EQ(run.nc_outputs, run.golden_outputs);
  EXPECT_EQ(run.rc_outputs, run.golden_outputs);

  // RTL clean run agrees.
  const rtl::ElaboratedDesign elaborated =
      rtl::elaborate(spec, design.solution);
  const rtl::RtlSimulator rtl_sim(elaborated);
  const rtl::RtlRunResult rtl_run = rtl_sim.run(inputs, {});
  EXPECT_FALSE(rtl_run.detected);
  EXPECT_EQ(rtl_run.outputs, run.golden_outputs);

  // Collusion-free by construction.
  const trojan::CollusionProbe probe = [&] {
    return trojan::run_collusion_probe(spec, design.solution, 10,
                                       rng.next_u64() | 1);
  }();
  EXPECT_EQ(probe.frames_with_activation, 0);
}

TEST_P(FuzzConsistencyTest, RuleMonotonicity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 33391 + 7);
  const core::ProblemSpec full = random_spec(rng, true);
  core::ProblemSpec relaxed = full;
  relaxed.rules.detection_parent_child = false;
  relaxed.rules.detection_sibling = false;
  relaxed.rules.recovery_same_op = false;

  core::OptimizerOptions options;
  options.time_limit_seconds = 10;
  const core::OptimizeResult strict = core::synthesize(core::make_request(full, options)).result;
  const core::OptimizeResult loose = core::synthesize(core::make_request(relaxed, options)).result;
  if (strict.status == core::OptStatus::kOptimal &&
      loose.status == core::OptStatus::kOptimal) {
    EXPECT_LE(loose.cost, strict.cost);
  }
  // A design valid under the full rules is valid under relaxed rules too.
  if (strict.has_solution()) {
    EXPECT_TRUE(core::validate_solution(relaxed, strict.solution).ok());
  }
}

}  // namespace
}  // namespace ht
