#include <gtest/gtest.h>

#include "ilp/branch_and_bound.hpp"
#include "ilp/brute_force.hpp"
#include "ilp/model.hpp"
#include "util/rng.hpp"

namespace ht::ilp {
namespace {

TEST(ModelTest, RelaxationMirrorsModel) {
  Model model;
  const int x = model.add_binary("x", 2.0);
  const int y = model.add_integer(0, 5, "y", 1.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, lp::Relation::kGe, 2.0);
  const lp::LpProblem relaxed = model.relaxation();
  EXPECT_EQ(relaxed.num_variables(), 2);
  EXPECT_EQ(relaxed.num_constraints(), 1);
  EXPECT_EQ(relaxed.upper(x), 1.0);
  EXPECT_EQ(relaxed.upper(y), 5.0);
  EXPECT_EQ(relaxed.objective(x), 2.0);
}

TEST(ModelTest, FeasibilityChecker) {
  Model model;
  const int x = model.add_binary();
  const int y = model.add_binary();
  model.add_constraint({{x, 1.0}, {y, 1.0}}, lp::Relation::kLe, 1.0);
  EXPECT_TRUE(model.is_feasible({1.0, 0.0}));
  EXPECT_FALSE(model.is_feasible({1.0, 1.0}));    // violates row
  EXPECT_FALSE(model.is_feasible({0.5, 0.0}));    // fractional binary
  EXPECT_FALSE(model.is_feasible({1.0}));         // wrong arity
}

TEST(BruteForceTest, SimpleCover) {
  // min x0 + 2 x1 st x0 + x1 >= 1 -> x0 = 1.
  Model model;
  model.add_binary("x0", 1.0);
  model.add_binary("x1", 2.0);
  model.add_constraint({{0, 1.0}, {1, 1.0}}, lp::Relation::kGe, 1.0);
  const SolveResult result = solve_brute_force(model);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(result.objective, 1.0);
  EXPECT_DOUBLE_EQ(result.values[0], 1.0);
}

TEST(BruteForceTest, ProvesInfeasible) {
  Model model;
  model.add_binary();
  model.add_constraint({{0, 1.0}}, lp::Relation::kGe, 2.0);
  EXPECT_EQ(solve_brute_force(model).status, SolveStatus::kInfeasible);
}

TEST(BruteForceTest, RefusesHugeSearchSpace) {
  Model model;
  for (int i = 0; i < 40; ++i) model.add_binary();
  EXPECT_THROW(solve_brute_force(model), util::SpecError);
}

TEST(BnbTest, Knapsack) {
  // max 10a + 6b + 4c st 5a + 4b + 3c <= 8 (binary) -> a + c = 14.
  Model model;
  model.add_binary("a", -10.0);
  model.add_binary("b", -6.0);
  model.add_binary("c", -4.0);
  model.add_constraint({{0, 5.0}, {1, 4.0}, {2, 3.0}}, lp::Relation::kLe,
                       8.0);
  const SolveResult result = solve_branch_and_bound(model);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(result.objective, -14.0);
  EXPECT_DOUBLE_EQ(result.values[0], 1.0);
  EXPECT_DOUBLE_EQ(result.values[1], 0.0);
  EXPECT_DOUBLE_EQ(result.values[2], 1.0);
}

TEST(BnbTest, ProvesInfeasible) {
  Model model;
  model.add_binary();
  model.add_binary();
  model.add_constraint({{0, 1.0}, {1, 1.0}}, lp::Relation::kGe, 3.0);
  EXPECT_EQ(solve_branch_and_bound(model).status, SolveStatus::kInfeasible);
}

TEST(BnbTest, IntegerVariables) {
  // min 3x + 4y st 2x + y >= 7, x,y integer in [0,10]
  // LP optimum x=3.5; integer optimum x=3,y=1 -> 13 or x=4 -> 12: check:
  // x=4,y=0 feasible (8>=7), cost 12. So 12.
  Model model;
  model.add_integer(0, 10, "x", 3.0);
  model.add_integer(0, 10, "y", 4.0);
  model.add_constraint({{0, 2.0}, {1, 1.0}}, lp::Relation::kGe, 7.0);
  const SolveResult result = solve_branch_and_bound(model);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(result.objective, 12.0);
}

TEST(BnbTest, FirstFeasibleStopsEarly) {
  Model model;
  for (int i = 0; i < 8; ++i) model.add_binary("", 1.0);
  std::vector<std::pair<int, double>> all;
  for (int i = 0; i < 8; ++i) all.emplace_back(i, 1.0);
  model.add_constraint(all, lp::Relation::kGe, 3.0);
  BnbOptions options;
  options.first_feasible_only = true;
  const SolveResult result = solve_branch_and_bound(model, options);
  EXPECT_EQ(result.status, SolveStatus::kFeasible);
  EXPECT_TRUE(model.is_feasible(result.values));
}

// Property check: B&B equals brute force on random small binary programs.
class BnbVsBruteForceTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, BnbVsBruteForceTest,
                         ::testing::Range(1, 13));

TEST_P(BnbVsBruteForceTest, SameOptimum) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1000003);
  Model model;
  const int n = 10;
  for (int i = 0; i < n; ++i) {
    model.add_binary("", static_cast<double>(rng.uniform_int(-20, 20)));
  }
  const int rows = static_cast<int>(rng.uniform_int(3, 8));
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int i = 0; i < n; ++i) {
      if (rng.chance(0.5)) {
        terms.emplace_back(i, static_cast<double>(rng.uniform_int(-5, 5)));
      }
    }
    if (terms.empty()) terms.emplace_back(0, 1.0);
    const auto rel = static_cast<lp::Relation>(rng.uniform_int(0, 1));  // Le/Ge
    model.add_constraint(terms, rel,
                         static_cast<double>(rng.uniform_int(-6, 6)));
  }

  const SolveResult brute = solve_brute_force(model);
  const SolveResult bnb = solve_branch_and_bound(model);
  ASSERT_EQ(bnb.status, brute.status);
  if (brute.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(bnb.objective, brute.objective, 1e-6);
    EXPECT_TRUE(model.is_feasible(bnb.values));
  }
}

TEST(SolveStatusTest, Names) {
  EXPECT_EQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_EQ(to_string(SolveStatus::kInfeasible), "infeasible");
}

}  // namespace
}  // namespace ht::ilp
