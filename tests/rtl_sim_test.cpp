// RTL-vs-behavioral cross-validation: the elaborated netlist, clocked by
// RtlSimulator, must agree bit for bit with the behavioral RuntimeSimulator
// on the detection flag and the final outputs — clean runs, targeted
// attacks, random attack campaigns, and multi-frame sequential triggers.
#include <gtest/gtest.h>

#include "benchmarks/classic.hpp"
#include "core/engine.hpp"
#include "core/optimizer.hpp"
#include "rtl/sim.hpp"
#include "test_helpers.hpp"
#include "trojan/profiling.hpp"

namespace ht::rtl {
namespace {

using trojan::Word;

struct Design {
  core::ProblemSpec spec;
  core::Solution solution;
  ElaboratedDesign rtl;
};

Design build(core::ProblemSpec spec) {
  core::OptimizerOptions options;
  options.strategy = core::Strategy::kHeuristic;
  const core::OptimizeResult result = core::synthesize(core::make_request(spec, options)).result;
  if (!result.has_solution()) {
    throw util::InternalError("rtl_sim_test: fixture spec unsolvable");
  }
  Design design{std::move(spec), result.solution, {}};
  design.rtl = elaborate(design.spec, design.solution);
  return design;
}

const Design& polynom_design() {
  static const Design design = build(test::motivational_spec());
  return design;
}

const Design& diff2_design() {
  static const Design design = [] {
    core::ProblemSpec spec;
    spec.graph = benchmarks::diff2();
    spec.catalog = vendor::section5();
    spec.lambda_detection = 6;
    spec.lambda_recovery = 5;
    spec.with_recovery = true;
    spec.area_limit = 120000;
    return build(std::move(spec));
  }();
  return design;
}

/// Behavioral reference: what the final outputs should be.
std::vector<Word> expected_outputs(const trojan::RunResult& behavioral) {
  return behavioral.mismatch_detected ? behavioral.recovery_outputs
                                      : behavioral.nc_outputs;
}

void expect_agreement(const Design& design, const std::vector<Word>& inputs,
                      const trojan::InfectionMap& infections,
                      const std::string& label) {
  const trojan::RuntimeSimulator behavioral(design.spec, design.solution);
  const trojan::RunResult reference = behavioral.run(inputs, infections);
  const RtlSimulator rtl(design.rtl);
  const RtlRunResult measured = rtl.run(inputs, infections);
  EXPECT_EQ(measured.detected, reference.mismatch_detected) << label;
  EXPECT_EQ(measured.outputs, expected_outputs(reference)) << label;
}

TEST(RtlSimTest, CleanRunMatchesGolden) {
  const Design& design = polynom_design();
  const std::vector<Word> inputs = {3, 5, 7, 11, 13};
  const RtlSimulator rtl(design.rtl);
  const RtlRunResult result = rtl.run(inputs, {});
  EXPECT_FALSE(result.detected);
  const auto golden = trojan::golden_eval(design.spec.graph, inputs);
  ASSERT_EQ(result.outputs.size(), design.spec.graph.outputs().size());
  for (std::size_t i = 0; i < result.outputs.size(); ++i) {
    EXPECT_EQ(result.outputs[i],
              golden[static_cast<std::size_t>(
                  design.spec.graph.outputs()[i])]);
  }
}

TEST(RtlSimTest, TargetedAttackAgreesWithBehavioral) {
  const Design& design = polynom_design();
  const std::vector<Word> inputs = {3, 5, 7, 11, 13};
  // Infect the NC output op's license, triggered on its exact operands.
  const dfg::OpId target = design.spec.graph.outputs()[0];
  const auto values = trojan::golden_eval(design.spec.graph, inputs);
  trojan::TrojanSpec trojan;
  trojan.trigger.pattern_a = static_cast<std::uint64_t>(
      trojan::operand_value(design.spec.graph,
                            design.spec.graph.op(target).inputs[0], values,
                            inputs));
  trojan.trigger.pattern_b = static_cast<std::uint64_t>(
      trojan::operand_value(design.spec.graph,
                            design.spec.graph.op(target).inputs[1], values,
                            inputs));
  trojan.payload.xor_mask = 0xF0F0;
  trojan::InfectionMap infections;
  infections.emplace(
      core::LicenseKey{
          design.solution.at(core::CopyKind::kNormal, target).vendor,
          dfg::resource_class_of(design.spec.graph.op(target).type)},
      trojan);

  const RtlSimulator rtl(design.rtl);
  const RtlRunResult result = rtl.run(inputs, infections);
  EXPECT_TRUE(result.detected);
  expect_agreement(design, inputs, infections, "targeted polynom attack");
}

// Random attack sweep over both fixtures: every (vendor, class) license,
// random operand-matching triggers, random payload bits.
class RtlCrossValidationTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, RtlCrossValidationTest,
                         ::testing::Range(1, 9));

TEST_P(RtlCrossValidationTest, RandomAttacksAgree) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (const Design* design : {&polynom_design(), &diff2_design()}) {
    const dfg::Dfg& graph = design->spec.graph;
    for (int trial = 0; trial < 12; ++trial) {
      std::vector<Word> inputs;
      for (int i = 0; i < graph.num_inputs(); ++i) {
        inputs.push_back(rng.uniform_int(0, 1 << 16));
      }
      // Random detection copy as the target.
      const auto kind = rng.chance(0.5) ? core::CopyKind::kNormal
                                        : core::CopyKind::kRedundant;
      const auto op =
          static_cast<dfg::OpId>(rng.index(
              static_cast<std::size_t>(graph.num_ops())));
      const auto values = trojan::golden_eval(graph, inputs);
      trojan::TrojanSpec trojan;
      trojan.trigger.pattern_a = static_cast<std::uint64_t>(
          trojan::operand_value(graph, graph.op(op).inputs[0], values,
                                inputs));
      trojan.trigger.pattern_b = static_cast<std::uint64_t>(
          trojan::operand_value(graph, graph.op(op).inputs[1], values,
                                inputs));
      trojan.payload.xor_mask = 1ull << rng.uniform_int(0, 62);
      trojan::InfectionMap infections;
      infections.emplace(
          core::LicenseKey{design->solution.at(kind, op).vendor,
                           dfg::resource_class_of(graph.op(op).type)},
          trojan);
      expect_agreement(*design, inputs, infections,
                       graph.name() + " trial " + std::to_string(trial));
    }
  }
}

TEST(RtlSimTest, SequentialTriggerAcrossFramesAgrees) {
  const Design& design = polynom_design();
  const std::vector<Word> inputs = {2, 4, 6, 8, 10};
  const dfg::OpId target = design.spec.graph.outputs()[0];
  const auto values = trojan::golden_eval(design.spec.graph, inputs);
  trojan::TrojanSpec trojan;
  trojan.trigger.kind = trojan::TriggerSpec::Kind::kSequential;
  trojan.trigger.threshold = 3;
  trojan.trigger.pattern_a = static_cast<std::uint64_t>(
      trojan::operand_value(design.spec.graph,
                            design.spec.graph.op(target).inputs[0], values,
                            inputs));
  trojan.trigger.pattern_b = static_cast<std::uint64_t>(
      trojan::operand_value(design.spec.graph,
                            design.spec.graph.op(target).inputs[1], values,
                            inputs));
  trojan::InfectionMap infections;
  infections.emplace(
      core::LicenseKey{
          design.solution.at(core::CopyKind::kNormal, target).vendor,
          dfg::resource_class_of(design.spec.graph.op(target).type)},
      trojan);

  const trojan::RuntimeSimulator behavioral(design.spec, design.solution);
  const RtlSimulator rtl(design.rtl);
  std::map<core::CoreKey, trojan::TriggerState> behavioral_state;
  std::map<core::CoreKey, trojan::TriggerState> rtl_state;
  for (int frame = 0; frame < 4; ++frame) {
    const trojan::RunResult reference =
        behavioral.run(inputs, infections,
                       trojan::RecoveryStrategy::kRebindPerRules,
                       &behavioral_state);
    const RtlRunResult measured =
        rtl.run(inputs, infections, &rtl_state);
    EXPECT_EQ(measured.detected, reference.mismatch_detected)
        << "frame " << frame;
    EXPECT_EQ(measured.outputs, expected_outputs(reference))
        << "frame " << frame;
  }
}

TEST(RtlSimTest, CollusionExposureAgreesWithBehavioral) {
  // Arm every license of the compliant polynom design with an always-on
  // collusion Trojan: neither simulator may see an activation (det-R2
  // removed every same-vendor channel), and both must report clean runs.
  const Design& design = polynom_design();
  trojan::InfectionMap infections;
  for (const core::LicenseKey& license :
       design.solution.licenses_used(design.spec)) {
    trojan::TrojanSpec trojan;
    trojan.trigger.kind = trojan::TriggerSpec::Kind::kCollusion;
    trojan.trigger.mask = 0;
    infections.emplace(license, trojan);
  }
  const std::vector<Word> inputs = {9, 8, 7, 6, 5};
  expect_agreement(design, inputs, infections, "collusion sweep");
  const RtlSimulator rtl(design.rtl);
  EXPECT_FALSE(rtl.run(inputs, infections).detected);
}

TEST(RtlSimTest, DetectionOnlyDesignSimulates) {
  const core::ProblemSpec spec = test::motivational_detection_only();
  const core::OptimizeResult result = core::synthesize(core::make_request(spec)).result;
  ASSERT_TRUE(result.has_solution());
  const ElaboratedDesign design = elaborate(spec, result.solution);
  const RtlSimulator rtl(design);
  const std::vector<Word> inputs = {1, 2, 3, 4, 5};
  const RtlRunResult clean = rtl.run(inputs, {});
  EXPECT_FALSE(clean.detected);
  const auto golden = trojan::golden_eval(spec.graph, inputs);
  EXPECT_EQ(clean.outputs[0],
            golden[static_cast<std::size_t>(spec.graph.outputs()[0])]);
}

TEST(RtlSimTest, RegisterSharingPreservesBehavior) {
  // Re-elaborate both fixtures with left-edge register sharing: fewer
  // registers, identical behavior under clean runs and attacks.
  util::Rng rng(31415);
  for (const Design* design : {&polynom_design(), &diff2_design()}) {
    ElaborateOptions options;
    options.share_registers = true;
    const ElaboratedDesign shared =
        elaborate(design->spec, design->solution, options);
    EXPECT_LT(shared.num_data_registers,
              design->rtl.num_data_registers)
        << design->spec.graph.name();
    const RtlSimulator baseline(design->rtl);
    const RtlSimulator compact(shared);
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<Word> inputs;
      for (int i = 0; i < design->spec.graph.num_inputs(); ++i) {
        inputs.push_back(rng.uniform_int(0, 1 << 16));
      }
      // Clean agreement.
      const RtlRunResult a = baseline.run(inputs, {});
      const RtlRunResult b = compact.run(inputs, {});
      EXPECT_EQ(a.outputs, b.outputs);
      EXPECT_EQ(a.detected, b.detected);
      // Attacked agreement (random target, exact-operand trigger).
      const dfg::Dfg& graph = design->spec.graph;
      const auto op = static_cast<dfg::OpId>(
          rng.index(static_cast<std::size_t>(graph.num_ops())));
      const auto values = trojan::golden_eval(graph, inputs);
      trojan::TrojanSpec trojan;
      trojan.trigger.pattern_a = static_cast<std::uint64_t>(
          trojan::operand_value(graph, graph.op(op).inputs[0], values,
                                inputs));
      trojan.trigger.pattern_b = static_cast<std::uint64_t>(
          trojan::operand_value(graph, graph.op(op).inputs[1], values,
                                inputs));
      trojan::InfectionMap infections;
      infections.emplace(
          core::LicenseKey{
              design->solution.at(core::CopyKind::kNormal, op).vendor,
              dfg::resource_class_of(graph.op(op).type)},
          trojan);
      const RtlRunResult c = baseline.run(inputs, infections);
      const RtlRunResult d = compact.run(inputs, infections);
      EXPECT_EQ(c.outputs, d.outputs);
      EXPECT_EQ(c.detected, d.detected);
    }
  }
}

TEST(RtlSimTest, SharedDesignAgreesWithBehavioral) {
  const Design& design = diff2_design();
  ElaborateOptions options;
  options.share_registers = true;
  const ElaboratedDesign shared =
      elaborate(design.spec, design.solution, options);
  const RtlSimulator rtl(shared);
  const trojan::RuntimeSimulator behavioral(design.spec, design.solution);
  const std::vector<Word> inputs = {12, 34, 56, 78, 90};
  const trojan::RunResult reference = behavioral.run(inputs, {});
  const RtlRunResult measured = rtl.run(inputs, {});
  EXPECT_FALSE(measured.detected);
  EXPECT_EQ(measured.outputs, reference.nc_outputs);
}

TEST(RtlSimTest, WrongInputArityThrows) {
  const Design& design = polynom_design();
  const RtlSimulator rtl(design.rtl);
  EXPECT_THROW(rtl.run({1, 2}, {}), util::SpecError);
}

}  // namespace
}  // namespace ht::rtl
