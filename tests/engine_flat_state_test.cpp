// A/B identity harness for the flat structure-of-arrays CSP inner loop
// (PruningOptions::csp_flat_state -> CspOptions::flat_state). The flat
// path replaces the legacy per-copy propagation with arena-backed SoA
// state, counter-based nogood propagation, and packed selection keys; its
// contract is that NONE of that is observable — statuses, costs, bindings
// and node-level search counters are bit-identical to the legacy path.
//
// Determinism scope (see core/engine.hpp): per-set evaluation is a pure
// function of (spec, palettes, index, seed) plus the frozen cache/nogood
// tiers, which are immutable while a search runs. So
//  - at 1 thread every counter is deterministic and compared exactly;
//  - at N threads the *dispatch set* is deterministic only while no
//    in-window incumbent exists (workers race the commit of a winner, so
//    sets at or above its cost are speculatively dispatched or not). The
//    multi-thread node-identity test therefore bounds the search with
//    max_combos inside the infeasible prefix of the queue — the window is
//    then exactly the first K sets at any thread count — and asserts that
//    precondition held;
//  - full solves at N threads compare everything the engine promises
//    across thread counts: status, cost, and the committed binding.
#include <gtest/gtest.h>

#include <set>

#include "benchmarks/random_dfg.hpp"
#include "benchmarks/suite.hpp"
#include "core/engine.hpp"
#include "dfg/analysis.hpp"
#include "util/rng.hpp"
#include "vendor/catalogs.hpp"

namespace ht::core {
namespace {

/// The contested fixture: polynom at a tight latency bound with one
/// instance per license, so cheap license sets are genuinely fought over
/// by the CSP (same shape as the search-cache tests).
ProblemSpec contested_spec() {
  ProblemSpec spec;
  spec.graph = benchmarks::by_name("polynom").factory();
  spec.catalog = vendor::section5();
  const int critical_path =
      dfg::critical_path_length(spec.graph, spec.op_latencies());
  spec.lambda_detection = critical_path;
  spec.lambda_recovery = critical_path;
  spec.with_recovery = true;
  spec.area_limit = 400000;
  spec.max_instances_per_offer = 1;
  return spec;
}

/// The size_sweep fixture shape from bench_solver_scaling: a seeded random
/// DFG with one cycle of detection slack and capped instances.
ProblemSpec sweep_spec(int num_ops, std::uint64_t seed) {
  util::Rng rng(seed);
  benchmarks::RandomDfgConfig config;
  config.num_ops = num_ops;
  config.max_depth = 5;
  ProblemSpec spec;
  spec.graph = benchmarks::random_dfg(config, rng);
  spec.catalog = vendor::section5();
  const int critical_path =
      dfg::critical_path_length(spec.graph, spec.op_latencies());
  spec.lambda_detection = critical_path + 1;
  spec.lambda_recovery = critical_path;
  spec.with_recovery = true;
  spec.area_limit = 400000;
  spec.max_instances_per_offer = 1;
  return spec;
}

OptimizeResult run_full(const ProblemSpec& spec, bool flat, int threads) {
  SynthesisRequest request;
  request.spec = spec;
  request.parallelism.threads = threads;
  request.pruning.csp_flat_state = flat;
  // Screens and bounds off so every refutation is a CSP proof (the same
  // shape as the search-cache tests) — with them on, these fixtures are
  // settled entirely by pre-dispatch pruning and greedy and the inner loop
  // under test never runs a node. Without the bounds an exhaustive proof
  // is minutes of work, so node/combo budgets keep the runs test-sized;
  // budget truncation is deterministic, so identity still holds — both
  // paths are cut at the same node.
  request.pruning.static_screens = false;
  request.pruning.cost_bounds = false;
  request.limits.csp_node_limit = 60'000;
  request.limits.max_combos = 48;
  // Generous wall clock: a binding time limit would truncate the search at
  // a clock-dependent point and void the bit-identity claim. These
  // fixtures finish on node/combo budgets orders of magnitude sooner.
  request.limits.time_limit_seconds = 600.0;
  return synthesize(request).result;
}

/// Every counter both paths promise to match exactly. Watch-visit counts
/// are deliberately NOT compared: the flat path propagates nogoods with
/// true-literal counters, the legacy path with watched-literal scans, and
/// the number of bucket entries *visited* is an artifact of the mechanism
/// even though the fired set is identical.
void expect_identical(const OptimizeResult& a, const OptimizeResult& b,
                      const ProblemSpec& spec) {
  ASSERT_EQ(a.status, b.status);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.stats.combos_tried, b.stats.combos_tried);
  EXPECT_EQ(a.stats.combos_skipped_screen, b.stats.combos_skipped_screen);
  EXPECT_EQ(a.stats.unknown_combos, b.stats.unknown_combos);
  EXPECT_EQ(a.stats.nodes_total, b.stats.nodes_total);
  EXPECT_EQ(a.stats.csp_nodes, b.stats.csp_nodes);
  EXPECT_EQ(a.stats.backjumps, b.stats.backjumps);
  EXPECT_EQ(a.stats.restarts, b.stats.restarts);
  EXPECT_EQ(a.stats.nogoods_learned, b.stats.nogoods_learned);
  if (a.has_solution() && b.has_solution()) {
    EXPECT_EQ(a.solution.licenses_used(spec), b.solution.licenses_used(spec));
  }
}

TEST(EngineFlatStateTest, ContestedSolveIdenticalSingleThread) {
  const ProblemSpec spec = contested_spec();
  const OptimizeResult flat = run_full(spec, /*flat=*/true, /*threads=*/1);
  const OptimizeResult legacy = run_full(spec, /*flat=*/false, /*threads=*/1);
  expect_identical(flat, legacy, spec);
  EXPECT_GT(flat.stats.nodes_total, 0);
}

TEST(EngineFlatStateTest, SizeSweepSolveIdenticalSingleThread) {
  const ProblemSpec spec = sweep_spec(/*num_ops=*/12, /*seed=*/1012);
  const OptimizeResult flat = run_full(spec, /*flat=*/true, /*threads=*/1);
  const OptimizeResult legacy = run_full(spec, /*flat=*/false, /*threads=*/1);
  expect_identical(flat, legacy, spec);
  EXPECT_GT(flat.stats.nodes_total, 0);
}

TEST(EngineFlatStateTest, SameVerdictAcrossThreadCounts) {
  // Full solves at 4 and 8 threads: the engine's cross-thread contract is
  // status/cost/binding identity (stats may include speculative
  // evaluations past the winner, so node counters are asserted only in
  // the deterministic-window test below). Each thread count must also
  // agree with the single-threaded reference.
  for (const ProblemSpec& spec :
       {contested_spec(), sweep_spec(/*num_ops=*/12, /*seed=*/1012)}) {
    const OptimizeResult reference =
        run_full(spec, /*flat=*/true, /*threads=*/1);
    for (const int threads : {4, 8}) {
      const OptimizeResult flat = run_full(spec, /*flat=*/true, threads);
      const OptimizeResult legacy = run_full(spec, /*flat=*/false, threads);
      ASSERT_EQ(flat.status, legacy.status) << "threads " << threads;
      ASSERT_EQ(flat.status, reference.status) << "threads " << threads;
      EXPECT_EQ(flat.cost, legacy.cost) << "threads " << threads;
      EXPECT_EQ(flat.cost, reference.cost) << "threads " << threads;
      if (flat.has_solution() && legacy.has_solution()) {
        EXPECT_EQ(flat.solution.licenses_used(spec),
                  legacy.solution.licenses_used(spec))
            << "threads " << threads;
      }
    }
  }
}

/// Window budget for the node-identity runs: small enough to sit inside
/// the infeasible prefix of the cheapest-first queue on both fixtures
/// (asserted below), large enough to force real CSP work on every set.
constexpr long kWindow = 8;

OptimizeResult run_window(const ProblemSpec& spec, bool flat, int threads) {
  SynthesisRequest request;
  request.spec = spec;
  request.parallelism.threads = threads;
  request.pruning.csp_flat_state = flat;
  // Screens, bounds, and the (cold, hence empty anyway) dominance cache
  // off: every windowed set reaches the CSP, so the whole window is node
  // work under both propagation mechanisms. Nogood learning stays on —
  // frozen-tier imports are immutable during the search, so learning does
  // not perturb the dispatch determinism this test depends on.
  request.pruning.static_screens = false;
  request.pruning.cost_bounds = false;
  request.pruning.dominance_cache = false;
  request.limits.max_combos = kWindow;
  request.limits.csp_node_limit = 30'000;
  request.limits.time_limit_seconds = 600.0;
  return synthesize(request).result;
}

TEST(EngineFlatStateTest, BoundedWindowNodeIdentityAcrossThreadCounts) {
  for (const ProblemSpec& spec :
       {contested_spec(), sweep_spec(/*num_ops=*/12, /*seed=*/1012)}) {
    // The single-threaded flat run anchors the comparison; every other
    // (flag, threads) combination must reproduce its counters exactly.
    const OptimizeResult anchor =
        run_window(spec, /*flat=*/true, /*threads=*/1);
    // Determinism precondition: the combo budget bound the search — no
    // in-window incumbent stopped it early, so the dispatch set is the
    // first kWindow sets at every thread count. If a fixture change makes
    // a windowed set feasible, this trips and the window must shrink.
    ASSERT_EQ(anchor.stats.combos_tried, kWindow);
    EXPECT_GT(anchor.stats.nodes_total, 0);
    for (const int threads : {1, 4, 8}) {
      const OptimizeResult flat = run_window(spec, /*flat=*/true, threads);
      const OptimizeResult legacy =
          run_window(spec, /*flat=*/false, threads);
      expect_identical(flat, legacy, spec);
      expect_identical(flat, anchor, spec);
    }
  }
}

}  // namespace
}  // namespace ht::core
