#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/reoptimize.hpp"
#include "test_helpers.hpp"
#include "trojan/simulator.hpp"

namespace ht::core {
namespace {

/// Quarantine re-synthesis through the canonical request API.
OptimizeResult reoptimize(const ProblemSpec& base,
                          const std::set<LicenseKey>& banned) {
  SynthesisRequest request = make_request(base);
  request.kind = RequestKind::kReoptimize;
  request.banned = banned;
  return synthesize(request).result;
}

const ProblemSpec& spec() {
  static const ProblemSpec instance = test::easy_section5_spec(true);
  return instance;
}

const Solution& solution() {
  static const Solution instance = synthesize(make_request(spec())).result.solution;
  return instance;
}

TEST(ReoptimizeTest, SuspectsCoverBothComputationsByDefault) {
  const auto suspects = suspect_licenses(spec(), solution(), std::nullopt);
  // Every detection-phase license is suspect.
  std::set<LicenseKey> expected;
  for (CopyKind kind : {CopyKind::kNormal, CopyKind::kRedundant}) {
    for (dfg::OpId op = 0; op < spec().graph.num_ops(); ++op) {
      expected.insert(LicenseKey{
          solution().at(kind, op).vendor,
          dfg::resource_class_of(spec().graph.op(op).type)});
    }
  }
  EXPECT_EQ(suspects, expected);
}

TEST(ReoptimizeTest, DiagnosisNarrowsSuspects) {
  const auto all = suspect_licenses(spec(), solution(), std::nullopt);
  const auto nc_only =
      suspect_licenses(spec(), solution(), CopyKind::kNormal);
  const auto rc_only =
      suspect_licenses(spec(), solution(), CopyKind::kRedundant);
  EXPECT_LT(nc_only.size(), all.size());
  EXPECT_LT(rc_only.size(), all.size());
  // NC and RC never share a license for the same op (det-R1), and their
  // union is the undiagnosed suspect set.
  std::set<LicenseKey> unioned = nc_only;
  unioned.insert(rc_only.begin(), rc_only.end());
  EXPECT_EQ(unioned, all);
}

TEST(ReoptimizeTest, RecoverySideRejected) {
  EXPECT_THROW(
      suspect_licenses(spec(), solution(), CopyKind::kRecovery),
      util::SpecError);
}

TEST(ReoptimizeTest, WithoutLicensesRemovesOnlyThose) {
  const vendor::Catalog catalog = vendor::section5();
  const std::set<LicenseKey> banned = {
      {0, dfg::ResourceClass::kMultiplier},
      {3, dfg::ResourceClass::kAdder},
  };
  const vendor::Catalog thinned = without_licenses(catalog, banned);
  EXPECT_FALSE(thinned.offers(0, dfg::ResourceClass::kMultiplier));
  EXPECT_FALSE(thinned.offers(3, dfg::ResourceClass::kAdder));
  EXPECT_TRUE(thinned.offers(0, dfg::ResourceClass::kAdder));
  EXPECT_TRUE(thinned.offers(3, dfg::ResourceClass::kMultiplier));
  EXPECT_EQ(thinned.num_vendors(), catalog.num_vendors());
}

TEST(ReoptimizeTest, ReoptimizedDesignAvoidsBannedLicenses) {
  // Diagnose-and-quarantine the NC side, then re-synthesize.
  const auto banned =
      suspect_licenses(spec(), solution(), CopyKind::kNormal);
  const OptimizeResult replanned = reoptimize(spec(), banned);
  ASSERT_TRUE(replanned.has_solution())
      << to_string(replanned.status);
  for (const LicenseKey& license :
       replanned.solution.licenses_used(spec())) {
    EXPECT_EQ(banned.count(license), 0u)
        << "banned license still used: vendor " << license.vendor;
  }
}

TEST(ReoptimizeTest, QuarantineNeverLowersCost) {
  const OptimizeResult original = synthesize(make_request(spec())).result;
  const auto banned =
      suspect_licenses(spec(), solution(), CopyKind::kNormal);
  const OptimizeResult replanned = reoptimize(spec(), banned);
  ASSERT_TRUE(original.has_solution());
  ASSERT_TRUE(replanned.has_solution());
  EXPECT_GE(replanned.cost, original.cost);
}

TEST(ReoptimizeTest, FullQuarantineIsInfeasible) {
  // Banning every multiplier offer leaves nothing to bind muls to.
  std::set<LicenseKey> banned;
  for (vendor::VendorId v = 0; v < spec().catalog.num_vendors(); ++v) {
    banned.insert(LicenseKey{v, dfg::ResourceClass::kMultiplier});
  }
  const OptimizeResult result = reoptimize(spec(), banned);
  EXPECT_EQ(result.status, OptStatus::kInfeasible);
}

TEST(ReoptimizeTest, EndToEndDiagnoseThenReplan) {
  // Attack NC, recover, diagnose the corrupted side, quarantine, replan.
  const trojan::RuntimeSimulator simulator(spec(), solution());
  const std::vector<trojan::Word> inputs = {4, 9, 16, 25, 36};
  const dfg::OpId target = spec().graph.outputs()[0];
  const auto golden = trojan::golden_eval(spec().graph, inputs);
  trojan::TrojanSpec attack;
  attack.trigger.pattern_a = static_cast<std::uint64_t>(
      trojan::operand_value(spec().graph, spec().graph.op(target).inputs[0],
                            golden, inputs));
  attack.trigger.pattern_b = static_cast<std::uint64_t>(
      trojan::operand_value(spec().graph, spec().graph.op(target).inputs[1],
                            golden, inputs));
  trojan::InfectionMap infections;
  const LicenseKey infected{
      solution().at(CopyKind::kNormal, target).vendor,
      dfg::resource_class_of(spec().graph.op(target).type)};
  infections.emplace(infected, attack);

  const trojan::RunResult run = simulator.run(inputs, infections);
  ASSERT_TRUE(run.recovered_correctly);
  EXPECT_EQ(trojan::diagnose_corrupted_side(run),
            trojan::CorruptedSide::kNormal);

  const auto banned =
      suspect_licenses(spec(), solution(), CopyKind::kNormal);
  EXPECT_EQ(banned.count(infected), 1u);  // the true culprit is quarantined
  const OptimizeResult replanned = reoptimize(spec(), banned);
  ASSERT_TRUE(replanned.has_solution());
  EXPECT_EQ(replanned.solution.licenses_used(spec()).count(infected), 0u);
}

TEST(DiagnoseTest, RequiresTrustedRecovery) {
  trojan::RunResult incomplete;
  incomplete.recovery_ran = false;
  EXPECT_THROW(trojan::diagnose_corrupted_side(incomplete),
               util::SpecError);
}

}  // namespace
}  // namespace ht::core
