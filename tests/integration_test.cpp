// End-to-end checks tying the whole pipeline together: the paper's
// motivational example reproduced to the dollar, full benchmark rows
// optimized and validated, and the detect-then-recover run-time story
// exercised on optimizer output.
#include <gtest/gtest.h>

#include "benchmarks/extra.hpp"
#include "benchmarks/suite.hpp"
#include "core/engine.hpp"
#include "core/optimizer.hpp"
#include "trojan/monte_carlo.hpp"
#include "trojan/profiling.hpp"
#include "trojan/simulator.hpp"
#include "test_helpers.hpp"

namespace ht {
namespace {

// ---- Figure 5 ---------------------------------------------------------------

TEST(MotivationalTest, ReproducesPaperCostOf4160) {
  // 5-op polynom DFG, Table 1 market, lambda_det = 4, lambda_rec = 3,
  // area 22000: the paper reports a minimum purchasing cost of $4160.
  const core::ProblemSpec spec = test::motivational_spec();
  const core::OptimizeResult result = core::synthesize(core::make_request(spec)).result;
  ASSERT_EQ(result.status, core::OptStatus::kOptimal)
      << core::to_string(result.status);
  EXPECT_EQ(result.cost, 4160);
  EXPECT_TRUE(core::validate_solution(spec, result.solution).ok());
}

TEST(MotivationalTest, OptimumUsesThreeLicensesPerClass) {
  const core::ProblemSpec spec = test::motivational_spec();
  const core::OptimizeResult result = core::synthesize(core::make_request(spec)).result;
  ASSERT_TRUE(result.has_solution());
  int adders = 0;
  int multipliers = 0;
  for (const core::LicenseKey& license :
       result.solution.licenses_used(spec)) {
    (license.rc == dfg::ResourceClass::kAdder ? adders : multipliers)++;
  }
  EXPECT_EQ(adders, 3);
  EXPECT_EQ(multipliers, 3);
}

// ---- table rows end to end -------------------------------------------------

class Table3RowTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Benchmarks, Table3RowTest, ::testing::Range(0, 6));

TEST_P(Table3RowTest, DetectionOnlyRowsSolveAndValidate) {
  const auto& entry =
      benchmarks::paper_suite()[static_cast<std::size_t>(GetParam())];
  for (const benchmarks::TableRow& row : entry.table3) {
    core::ProblemSpec spec = core::make_detection_only_spec(
        entry.factory(), vendor::section5(), row.lambda, row.area);
    core::OptimizerOptions options;
    options.strategy = core::Strategy::kHeuristic;
    options.time_limit_seconds = 30;
    const core::OptimizeResult result = core::synthesize(core::make_request(spec, options)).result;
    ASSERT_TRUE(result.has_solution())
        << entry.name << " lambda=" << row.lambda;
    EXPECT_TRUE(core::validate_solution(spec, result.solution).ok());
    // Detection-only lower bound: two cheapest licenses per used class.
    EXPECT_GE(result.cost, 2 * (450 + 760) / 2);
  }
}

TEST(Table4Test, RecoveryRowCostsAtLeastDetectionRow) {
  // Same benchmark, same catalog: adding the recovery phase can only hold
  // or raise the minimum cost when latency is not the binding constraint.
  const auto& entry = benchmarks::by_name("polynom");
  core::ProblemSpec detection = core::make_detection_only_spec(
      entry.factory(), vendor::section5(), 6, 60000);
  const core::OptimizeResult det_result = core::synthesize(core::make_request(detection)).result;

  core::ProblemSpec recovery = detection;
  recovery.with_recovery = true;
  recovery.lambda_recovery = 6;
  const core::OptimizeResult rec_result = core::synthesize(core::make_request(recovery)).result;

  ASSERT_TRUE(det_result.has_solution());
  ASSERT_TRUE(rec_result.has_solution());
  EXPECT_GT(rec_result.cost, det_result.cost);
}

// ---- optimizer output drives the run-time story ------------------------------

TEST(EndToEndTest, OptimizeThenSimulateDiff2) {
  core::ProblemSpec spec;
  spec.graph = benchmarks::diff2();
  spec.catalog = vendor::section5();
  spec.lambda_detection = 6;
  spec.lambda_recovery = 5;
  spec.with_recovery = true;
  spec.area_limit = 120000;

  // Profile close pairs exactly as Section 3.3 prescribes, feed them to
  // the optimizer, then attack the result.
  util::Rng rng(404);
  trojan::ProfileConfig profile;
  profile.tolerance = 0;
  spec.closely_related =
      trojan::profile_close_pairs(spec.graph, profile, rng);
  EXPECT_FALSE(spec.closely_related.empty());  // udx/udx2 are identical

  core::OptimizerOptions options;
  options.strategy = core::Strategy::kHeuristic;
  const core::OptimizeResult design = core::synthesize(core::make_request(spec, options)).result;
  ASSERT_TRUE(design.has_solution());

  trojan::CampaignConfig campaign;
  campaign.trials = 150;
  campaign.seed = 17;
  const trojan::CampaignStats stats =
      trojan::run_campaign(spec, design.solution, campaign);
  EXPECT_GE(stats.detection_rate(), 0.95);
  EXPECT_EQ(stats.recovery_failed, 0);
}

TEST(EndToEndTest, ClosePairRuleProtectsAgainstTwinOperands) {
  // diff2 computes u*dx twice. An attacker triggering on those operands
  // can re-fire in recovery if the twin lands on the infected vendor; the
  // close-pair rule forbids exactly that placement, so with it enabled the
  // campaign must recover every detection.
  core::ProblemSpec spec;
  spec.graph = benchmarks::diff2();
  spec.catalog = vendor::section5();
  spec.lambda_detection = 6;
  spec.lambda_recovery = 5;
  spec.with_recovery = true;
  spec.area_limit = 120000;
  util::Rng rng(405);
  trojan::ProfileConfig profile;
  profile.tolerance = 0;
  spec.closely_related =
      trojan::profile_close_pairs(spec.graph, profile, rng);

  core::OptimizerOptions options;
  options.strategy = core::Strategy::kHeuristic;
  const core::OptimizeResult design = core::synthesize(core::make_request(spec, options)).result;
  ASSERT_TRUE(design.has_solution());

  trojan::CampaignConfig campaign;
  campaign.trials = 200;
  campaign.seed = 23;
  const trojan::CampaignStats stats =
      trojan::run_campaign(spec, design.solution, campaign);
  EXPECT_EQ(stats.recovery_failed, 0);
}

TEST(EndToEndTest, Fft4TwinOperandsNeedTheClosePairRule) {
  // fft4 computes t0 = x0+x2 and t1 = x0-x2: identical operand pairs. A
  // Trojan triggered on t0's operands re-fires on recovery's t1 whenever
  // t1 lands on the infected vendor — unless recovery Rule 2 knows the
  // pair. Observed live via `thls simulate fft4`: 94% recovery without
  // profiling, 100% with (at unchanged license cost).
  core::ProblemSpec spec;
  spec.graph = benchmarks::fft4();
  spec.catalog = vendor::section5();
  spec.lambda_detection = 4;
  spec.lambda_recovery = 4;
  spec.with_recovery = true;
  spec.area_limit = 100000;

  core::OptimizerOptions options;
  options.strategy = core::Strategy::kHeuristic;
  options.time_limit_seconds = 15;

  trojan::CampaignConfig campaign;
  campaign.trials = 200;
  campaign.seed = 41;

  // Without the rule: some detected attacks must re-fire in recovery
  // (this pins the observed hazard; if it ever stops failing, the
  // scenario has silently changed).
  const core::OptimizeResult unprotected = core::synthesize(core::make_request(spec, options)).result;
  ASSERT_TRUE(unprotected.has_solution());
  const trojan::CampaignStats exposed =
      trojan::run_campaign(spec, unprotected.solution, campaign);
  EXPECT_GT(exposed.recovery_failed, 0);

  // With profiled close pairs: every detection recovers.
  util::Rng rng(42);
  trojan::ProfileConfig profile;
  profile.tolerance = 0;
  spec.closely_related =
      trojan::profile_close_pairs(spec.graph, profile, rng);
  EXPECT_FALSE(spec.closely_related.empty());
  const core::OptimizeResult protected_design =
      core::synthesize(core::make_request(spec, options)).result;
  ASSERT_TRUE(protected_design.has_solution());
  const trojan::CampaignStats safe =
      trojan::run_campaign(spec, protected_design.solution, campaign);
  EXPECT_EQ(safe.recovery_failed, 0);
  EXPECT_GT(safe.recovery_ran, 0);
}

TEST(EndToEndTest, DetectionOnlyDesignStillDetects) {
  // Rajendran-style design (no recovery phase): detection works, recovery
  // by re-execution is the only option and is unreliable.
  const core::ProblemSpec spec = test::motivational_detection_only();
  const core::OptimizeResult design = core::synthesize(core::make_request(spec)).result;
  ASSERT_TRUE(design.has_solution());
  trojan::CampaignConfig campaign;
  campaign.trials = 100;
  campaign.seed = 31;
  campaign.target_both_computations = false;
  const trojan::CampaignStats stats =
      trojan::run_campaign(spec, design.solution, campaign,
                           trojan::RecoveryStrategy::kReexecuteSame);
  EXPECT_GE(stats.detection_rate(), 0.95);
  EXPECT_EQ(stats.recovered, 0);
}

// ---- spec validation plumbing ------------------------------------------------

TEST(SpecTest, ValidateCatchesBadSpecs) {
  core::ProblemSpec spec = test::motivational_spec();
  spec.lambda_detection = 0;
  EXPECT_THROW(spec.validate(), util::SpecError);

  spec = test::motivational_spec();
  spec.area_limit = 0;
  EXPECT_THROW(spec.validate(), util::SpecError);

  spec = test::motivational_spec();
  spec.closely_related = {{0, 2}};  // mul vs add: mismatched classes
  EXPECT_THROW(spec.validate(), util::SpecError);

  spec = test::motivational_spec();
  spec.closely_related = {{0, 99}};
  EXPECT_THROW(spec.validate(), util::SpecError);
}

TEST(SpecTest, AluOpsNeedAluVendors) {
  core::ProblemSpec spec;
  spec.graph = benchmarks::dtmf();       // uses alu ops
  spec.catalog = vendor::table1();       // no alu offers
  spec.lambda_detection = 5;
  spec.with_recovery = false;
  spec.area_limit = 100000;
  EXPECT_THROW(spec.validate(), util::SpecError);
}

}  // namespace
}  // namespace ht
