// Property tests for the version-stamped O(1)-reset containers
// (util/fast_reset.hpp). The solver leans on two promises: a reset makes
// every slot read as default without touching memory, and the 32-bit
// version counter can wrap without a stale stamp ever aliasing a live
// version. Both are driven explicitly here, including across the wrap.
#include "util/fast_reset.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ht::util {
namespace {

TEST(FastResetVectorTest, ReadsDefaultUntilWritten) {
  FastResetVector<int> v(8, -1);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v.get(i), -1);
  v.set(3, 42);
  EXPECT_EQ(v.get(3), 42);
  EXPECT_EQ(v.get(4), -1);
}

TEST(FastResetVectorTest, ResetRevertsEverySlot) {
  FastResetVector<long long> v(16, 0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v.set(i, static_cast<long long>(i) * 7 + 1);
  }
  v.reset();
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v.get(i), 0);
}

TEST(FastResetVectorTest, RefRevivesStaleSlotToDefault) {
  FastResetVector<int> v(4, 5);
  v.ref(2) += 10;  // 5 -> 15
  EXPECT_EQ(v.get(2), 15);
  v.reset();
  // After reset the slot is stale; ref must hand back the default, not the
  // leftover 15.
  EXPECT_EQ(v.ref(2), 5);
  v.ref(2) += 1;
  EXPECT_EQ(v.get(2), 6);
}

TEST(FastResetVectorTest, ReuseAfterResetInterleaved) {
  // Randomized model check: the container must agree with a plain vector
  // that is honestly cleared on every reset.
  util::Rng rng(7);
  FastResetVector<int> fast(32, 0);
  std::vector<int> model(32, 0);
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t r = rng.next_u64();
    const std::size_t i = static_cast<std::size_t>(r % 32);
    switch ((r >> 8) % 4) {
      case 0:
        fast.set(i, static_cast<int>((r >> 16) % 1000));
        model[i] = static_cast<int>((r >> 16) % 1000);
        break;
      case 1:
        fast.ref(i) += 3;
        model[i] += 3;
        break;
      case 2:
        ASSERT_EQ(fast.get(i), model[i]) << "step " << step;
        break;
      default:
        fast.reset();
        std::fill(model.begin(), model.end(), 0);
        break;
    }
  }
  for (std::size_t i = 0; i < model.size(); ++i) {
    EXPECT_EQ(fast.get(i), model[i]);
  }
}

TEST(FastResetVectorTest, VersionWraparoundCannotAliasStaleStamps) {
  // Write at an early version, then force the 32-bit counter across the
  // wrap. If wraparound restarted at a previously-used version without
  // clearing stamps, the old write would resurrect.
  FastResetVector<int> v(4, 0);
  v.set(1, 99);
  EXPECT_EQ(v.get(1), 99);
  // The counter starts at 1; ~2^32 resets force the honest stamp clear.
  const std::uint64_t to_wrap = (1ull << 32) + 3;
  for (std::uint64_t i = 0; i < to_wrap; ++i) v.reset();
  EXPECT_EQ(v.get(1), 0);
  v.set(2, 7);
  EXPECT_EQ(v.get(2), 7);
  EXPECT_EQ(v.get(1), 0);
}

TEST(FastResetBitsetTest, SetTestClearAndReset) {
  FastResetBitset b(130);  // crosses word boundaries
  EXPECT_FALSE(b.test(0));
  EXPECT_FALSE(b.test(129));
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_EQ(b.popcount(), 3);
  b.clear(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.popcount(), 2);
  b.reset();
  EXPECT_EQ(b.popcount(), 0);
  EXPECT_FALSE(b.test(0));
  EXPECT_FALSE(b.test(129));
}

TEST(FastResetBitsetTest, WordAccessorsSeeStaleWordsAsZero) {
  FastResetBitset b(128);
  b.set(3);
  b.set(70);
  EXPECT_EQ(b.word_value(0), 1ull << 3);
  EXPECT_EQ(b.word_value(1), 1ull << 6);
  b.reset();
  EXPECT_EQ(b.word_value(0), 0u);
  EXPECT_EQ(b.word_value(1), 0u);
  // word_ref on a stale word must revive it to zero before the OR.
  b.word_ref(1) |= 0xff00ull;
  EXPECT_EQ(b.word_value(1), 0xff00ull);
  EXPECT_EQ(b.word_value(0), 0u);
}

TEST(FastResetBitsetTest, RandomizedAgainstHonestClear) {
  util::Rng rng(11);
  FastResetBitset fast(96);
  std::vector<bool> model(96, false);
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t r = rng.next_u64();
    const std::size_t bit = static_cast<std::size_t>(r % 96);
    switch ((r >> 8) % 4) {
      case 0:
        fast.set(bit);
        model[bit] = true;
        break;
      case 1:
        fast.clear(bit);
        model[bit] = false;
        break;
      case 2:
        ASSERT_EQ(fast.test(bit), model[bit]) << "step " << step;
        break;
      default:
        fast.reset();
        std::fill(model.begin(), model.end(), false);
        break;
    }
  }
  int bits = 0;
  for (std::size_t i = 0; i < model.size(); ++i) {
    EXPECT_EQ(fast.test(i), model[i]);
    bits += model[i] ? 1 : 0;
  }
  EXPECT_EQ(fast.popcount(), bits);
}

TEST(FastResetBitsetTest, VersionWraparoundCannotResurrectBits) {
  FastResetBitset b(64);
  b.set(5);
  const std::uint64_t to_wrap = (1ull << 32) + 2;
  for (std::uint64_t i = 0; i < to_wrap; ++i) b.reset();
  EXPECT_FALSE(b.test(5));
  EXPECT_EQ(b.popcount(), 0);
}

}  // namespace
}  // namespace ht::util
