// Tests for the synthesis service stack: the admission queue
// (service/queue.hpp), the protocol-free SynthesisService
// (service/service.hpp), and the JSON-lines Server/Client pair
// (service/server.hpp, client.hpp) over a loopback TCP socket.
//
// The load-bearing contracts, in order:
//  1. Determinism under reuse: a warm daemon engine answers with
//     bit-identical statuses, costs and bindings to a cold
//     core::synthesize of the same request — checked in-process and
//     through the socket with concurrent mixed-market clients.
//  2. The warm-state win is measurable: a second same-market request
//     skips sealed refutations (combos_skipped_cache > 0, fewer
//     combos_tried) and the /stats ledger shows it.
//  3. Lifecycle edges: cooperative cancellation mid-solve and while
//     queued, deadline expiry completing as kUnknown with queue wait
//     recorded and no solve, and queue-full backpressure.
//  4. Protocol edges: malformed and oversized lines get structured
//     errors without killing the connection; unsupported versions and
//     unknown ops are rejected.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/search_cache.hpp"
#include "dfg/analysis.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/journal.hpp"
#include "service/client.hpp"
#include "service/queue.hpp"
#include "service/server.hpp"
#include "test_helpers.hpp"

namespace ht::service {
namespace {

using core::OptStatus;
using core::RequestKind;

// ---- fixtures -------------------------------------------------------------

/// polynom on the Section 5 catalog, tight enough that the cheapest-first
/// search refutes several license sets before the winner — the same
/// contested shape search_cache_test uses, so the warm-state win is real.
core::ProblemSpec contested_spec() {
  core::ProblemSpec spec;
  spec.graph = benchmarks::polynom();
  spec.catalog = vendor::section5();
  const int critical_path =
      dfg::critical_path_length(spec.graph, spec.op_latencies());
  spec.lambda_detection = critical_path;
  spec.lambda_recovery = critical_path;
  spec.with_recovery = true;
  spec.area_limit = 400000;
  spec.max_instances_per_offer = 1;
  return spec;
}

/// Screens and bounds off so every refutation is a CSP proof and the
/// dominance cache gets all the warm-reuse credit.
core::SynthesisRequest contested_request() {
  core::SynthesisRequest request;
  request.spec = contested_spec();
  request.pruning.static_screens = false;
  request.pruning.cost_bounds = false;
  return request;
}

void expect_same_outcome(const core::SynthesisResponse& a,
                         const core::SynthesisResponse& b,
                         const core::ProblemSpec& spec) {
  ASSERT_EQ(a.result.status, b.result.status);
  EXPECT_EQ(a.result.cost, b.result.cost);
  if (a.result.has_solution() && b.result.has_solution()) {
    EXPECT_EQ(a.result.solution.licenses_used(spec),
              b.result.solution.licenses_used(spec));
  }
  EXPECT_EQ(a.lambda_detection, b.lambda_detection);
  EXPECT_EQ(a.lambda_recovery, b.lambda_recovery);
  ASSERT_EQ(a.frontier.size(), b.frontier.size());
  for (std::size_t i = 0; i < a.frontier.size(); ++i) {
    EXPECT_EQ(a.frontier[i].constraint, b.frontier[i].constraint);
    EXPECT_EQ(a.frontier[i].result.status, b.frontier[i].result.status);
    EXPECT_EQ(a.frontier[i].result.cost, b.frontier[i].result.cost);
  }
}

/// A latch a progress callback parks on: the solve blocks at its first
/// progress event until the test releases it — the deterministic way to
/// hold a worker busy while queueing, cancelling, or expiring other jobs.
class Gate {
 public:
  /// First call parks until release(); later calls return immediately.
  void enter() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (entered_) return;
    entered_ = true;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
  }
  void wait_entered() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return entered_; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool open_ = false;
};

core::SynthesisRequest gated_request(Gate* gate) {
  core::SynthesisRequest request =
      core::make_request(test::easy_section5_spec());
  request.progress = [gate](const core::SynthesisProgress&) {
    gate->enter();
  };
  return request;
}

// ---- admission queue ------------------------------------------------------

PendingJob make_job(std::uint64_t ticket, int priority,
                    double deadline_seconds) {
  PendingJob job;
  job.ticket = ticket;
  job.info.priority = priority;
  job.info.deadline_seconds = deadline_seconds;
  job.admitted = std::chrono::steady_clock::now();
  if (deadline_seconds > 0) {
    job.deadline = job.admitted + std::chrono::duration_cast<
                                      std::chrono::steady_clock::duration>(
                                      std::chrono::duration<double>(
                                          deadline_seconds));
  }
  return job;
}

TEST(AdmissionQueueTest, OrdersByPriorityThenDeadlineThenTicket) {
  AdmissionQueue queue(16);
  ASSERT_TRUE(queue.push(make_job(1, 0, 0)));      // plain
  ASSERT_TRUE(queue.push(make_job(2, 0, 60.0)));   // deadlined
  ASSERT_TRUE(queue.push(make_job(3, 5, 0)));      // high priority
  ASSERT_TRUE(queue.push(make_job(4, 0, 1.0)));    // tighter deadline
  ASSERT_TRUE(queue.push(make_job(5, 5, 0)));      // high priority, later

  std::vector<std::uint64_t> order;
  PendingJob job;
  while (queue.size() > 0 && queue.pop(&job)) order.push_back(job.ticket);
  // Priority 5 first in admission order; then deadlined jobs by deadline;
  // then the plain job.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{3, 5, 4, 2, 1}));
}

TEST(AdmissionQueueTest, RefusesWhenFullAndDrainsAfterClose) {
  AdmissionQueue queue(2);
  EXPECT_TRUE(queue.push(make_job(1, 0, 0)));
  EXPECT_TRUE(queue.push(make_job(2, 0, 0)));
  EXPECT_FALSE(queue.push(make_job(3, 0, 0)));  // backpressure
  EXPECT_EQ(queue.size(), 2u);

  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.push(make_job(4, 0, 0)));
  PendingJob job;
  EXPECT_FALSE(queue.pop(&job));  // closed: pop refuses immediately
  const std::vector<PendingJob> leftovers = queue.drain();
  ASSERT_EQ(leftovers.size(), 2u);
  EXPECT_EQ(leftovers[0].ticket, 1u);
}

TEST(AdmissionQueueTest, RemoveTakesOutAQueuedJob) {
  AdmissionQueue queue(4);
  ASSERT_TRUE(queue.push(make_job(1, 0, 0)));
  ASSERT_TRUE(queue.push(make_job(2, 0, 0)));
  PendingJob removed;
  EXPECT_TRUE(queue.remove(2, &removed));
  EXPECT_EQ(removed.ticket, 2u);
  EXPECT_FALSE(queue.remove(2, &removed));
  EXPECT_EQ(queue.size(), 1u);
}

// ---- SynthesisService -----------------------------------------------------

TEST(SynthesisServiceTest, ExecuteMatchesDirectColdEngine) {
  SynthesisService service(ServiceConfig{});
  const core::SynthesisRequest request =
      core::make_request(test::easy_section5_spec());
  const ServiceReply reply = service.execute({}, request);
  ASSERT_TRUE(reply.ok()) << reply.error;
  EXPECT_TRUE(reply.warm);
  expect_same_outcome(reply.response, core::synthesize(request),
                      request.spec);
}

// The tentpole guarantee: routing repeated same-market requests through
// the daemon's warm engine changes speed, never outcomes. The replay runs
// the same contested request three times warm and once forced-cold and
// demands bit-identical statuses, costs and bindings against a cold
// core::synthesize — while the warm stats must show the reuse.
TEST(SynthesisServiceTest, WarmReuseIsBitIdenticalToColdAndMeasurablyFaster) {
  SynthesisService service(ServiceConfig{});
  core::SynthesisRequest request = contested_request();
  // Metrics on: nodes_per_sec in /stats derives from metered csp_dispatch
  // time (wall time double-counts once same-market solves overlap).
  request.observability.metrics = true;
  const core::SynthesisResponse cold_direct = core::synthesize(request);
  ASSERT_TRUE(cold_direct.result.has_solution());
  ASSERT_GT(cold_direct.result.stats.combos_tried, 1)
      << "spec too easy to exercise warm reuse";

  const ServiceReply first = service.execute({}, request);
  const ServiceReply second = service.execute({}, request);
  JobInfo cold_info;
  cold_info.warm = false;
  const ServiceReply forced_cold = service.execute(cold_info, request);

  for (const ServiceReply* reply : {&first, &second, &forced_cold}) {
    ASSERT_TRUE(reply->ok()) << reply->error;
    expect_same_outcome(reply->response, cold_direct, request.spec);
  }
  EXPECT_TRUE(first.warm);
  EXPECT_TRUE(second.warm);
  EXPECT_FALSE(forced_cold.warm);
  EXPECT_EQ(first.market, second.market);

  // First warm request on a fresh engine: nothing sealed yet. Second:
  // sealed refutations skip license sets. Forced-cold: fresh again.
  EXPECT_EQ(first.response.result.stats.combos_skipped_cache, 0);
  EXPECT_GT(second.response.result.stats.combos_skipped_cache, 0);
  EXPECT_LT(second.response.result.stats.combos_tried,
            first.response.result.stats.combos_tried);
  EXPECT_EQ(forced_cold.response.result.stats.combos_skipped_cache, 0);

  // The /stats ledger shows the same win per market.
  const Json stats = service.stats();
  ASSERT_EQ(stats.get("markets").size(), 1u);
  const Json& market = stats.get("markets").at(0);
  // Only warm runs touch the market engine; the forced-cold one did not.
  EXPECT_EQ(market.get("requests").as_int(), 2);
  EXPECT_GT(market.get("combos_skipped_cache").as_int(), 0);
  EXPECT_LT(market.get("last_combos_tried").as_int(),
            first.response.result.stats.combos_tried);
  EXPECT_EQ(stats.get("service").get("completed").as_int(), 3);
  // Wall seconds are still tracked, but node throughput comes from the
  // summed metered csp_dispatch time — overlap-free under concurrency —
  // and both requests above collected metrics.
  EXPECT_GT(market.get("engine_seconds").as_double(), 0.0);
  ASSERT_TRUE(market.has("nodes_per_sec"));
  EXPECT_GE(market.get("nodes_per_sec").as_double(), 0.0);
  ASSERT_TRUE(market.has("csp_ns_per_node"));
  // Latency percentiles cover every completed reply.
  ASSERT_TRUE(stats.has("latency"));
  EXPECT_EQ(stats.get("latency").get("samples").as_int(), 3);
  EXPECT_GE(stats.get("latency").get("e2e_p95_s").as_double(),
            stats.get("latency").get("e2e_p50_s").as_double());
  EXPECT_GE(stats.get("latency").get("e2e_max_s").as_double(),
            stats.get("latency").get("e2e_p95_s").as_double());
  EXPECT_GE(stats.get("latency").get("queue_max_s").as_double(), 0.0);
}

// The tentpole: N clients saturating ONE market must achieve measured
// engine concurrency > 1 (the old design serialized them behind a single
// warm engine) while every response stays bit-identical to a cold solve.
// A rendezvous inside the progress callbacks *proves* two solves were
// in flight simultaneously: each of the first two jobs to start parks at
// its first progress event until the other arrives (with a bounded wait
// so a serialized regression fails the assertions instead of hanging).
TEST(SynthesisServiceTest, SaturatedSingleMarketRunsEnginesConcurrently) {
  ServiceConfig config;
  config.workers = 4;
  config.engine_pool = 4;
  SynthesisService service(config);
  const core::SynthesisRequest base_request = contested_request();
  const core::SynthesisResponse cold_direct = core::synthesize(base_request);
  ASSERT_TRUE(cold_direct.result.has_solution());

  std::mutex rendezvous_mutex;
  std::condition_variable rendezvous_cv;
  int arrived = 0;
  const auto rendezvous = [&] {
    std::unique_lock<std::mutex> lock(rendezvous_mutex);
    ++arrived;
    rendezvous_cv.notify_all();
    rendezvous_cv.wait_for(lock, std::chrono::seconds(10),
                           [&] { return arrived >= 2; });
  };

  constexpr int kJobs = 4;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  int done = 0;
  std::vector<ServiceReply> replies(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    core::SynthesisRequest request = base_request;
    auto first_progress = std::make_shared<std::atomic<bool>>(false);
    request.progress = [&rendezvous,
                        first_progress](const core::SynthesisProgress&) {
      if (!first_progress->exchange(true)) rendezvous();
    };
    std::string error;
    ASSERT_TRUE(service.submit({}, std::move(request),
                               [&, i](const ServiceReply& reply) {
                                 std::lock_guard<std::mutex> lock(done_mutex);
                                 replies[static_cast<std::size_t>(i)] = reply;
                                 ++done;
                                 done_cv.notify_all();
                               },
                               &error))
        << error;
  }
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return done == kJobs; });
  }

  for (const ServiceReply& reply : replies) {
    ASSERT_TRUE(reply.ok()) << reply.error;
    EXPECT_TRUE(reply.warm);
    expect_same_outcome(reply.response, cold_direct, base_request.spec);
  }

  const Json stats = service.stats();
  ASSERT_EQ(stats.get("markets").size(), 1u);
  const Json& market = stats.get("markets").at(0);
  EXPECT_GT(market.get("max_concurrent").as_int(), 1)
      << "same-market requests never overlapped";
  EXPECT_GT(market.get("engines").as_int(), 1);
  EXPECT_GT(market.get("snapshot_merges").as_int(), 0);
  EXPECT_GT(market.get("snapshot_proofs").as_int(0), 0);

  // The concurrent deltas all merged into the published snapshot: a fifth
  // request must skip sealed refutations and still answer identically.
  const ServiceReply replay = service.execute({}, base_request);
  ASSERT_TRUE(replay.ok()) << replay.error;
  expect_same_outcome(replay.response, cold_direct, base_request.spec);
  EXPECT_GT(replay.response.result.stats.combos_skipped_cache, 0);
}

// Persistence round-trip: snapshots survive the wire JSON layer
// byte-for-byte canonically, and a fresh service pre-seeded with the
// restored snapshot serves its FIRST same-market request with nonzero
// skip counters and identical results — the thlsd --warm-dir contract.
TEST(SynthesisServiceTest, WarmSnapshotPersistenceRoundTrip) {
  const core::SynthesisRequest request = contested_request();
  const core::SynthesisResponse cold_direct = core::synthesize(request);

  SynthesisService original(ServiceConfig{});
  ASSERT_TRUE(original.execute({}, request).ok());
  ASSERT_TRUE(original.execute({}, request).ok());
  const std::vector<core::WarmSnapshotPtr> snapshots =
      original.export_warm();
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_GT(snapshots[0]->cache.proofs.size(), 0u);
  EXPECT_EQ(snapshots[0]->market,
            core::spec_family_fingerprint(request.spec));

  const std::string text = serialize_warm_snapshot(*snapshots[0]);
  auto restored = std::make_shared<core::WarmSnapshot>();
  std::string error;
  ASSERT_TRUE(parse_warm_snapshot(text, restored.get(), &error)) << error;
  EXPECT_EQ(restored->market, snapshots[0]->market);
  EXPECT_EQ(restored->version, snapshots[0]->version);
  ASSERT_EQ(restored->cache.proofs.size(), snapshots[0]->cache.proofs.size());
  ASSERT_EQ(restored->nogoods.entries.size(),
            snapshots[0]->nogoods.entries.size());
  // Canonical form: serialize(parse(serialize(x))) is byte-identical.
  EXPECT_EQ(serialize_warm_snapshot(*restored), text);

  SynthesisService reborn(ServiceConfig{});
  reborn.import_warm(restored);
  const ServiceReply first = reborn.execute({}, request);
  ASSERT_TRUE(first.ok()) << first.error;
  expect_same_outcome(first.response, cold_direct, request.spec);
  EXPECT_GT(first.response.result.stats.combos_skipped_cache, 0)
      << "restored snapshot did not serve the first request warm";
  const Json stats = reborn.stats();
  const Json& market = stats.get("markets").at(0);
  EXPECT_GT(market.get("last_combos_skipped_cache").as_int(), 0);
}

TEST(SynthesisServiceTest, MarketsGetSeparateWarmEngines) {
  SynthesisService service(ServiceConfig{});
  const core::SynthesisRequest table1 =
      core::make_request(test::motivational_spec());
  const core::SynthesisRequest section5 =
      core::make_request(test::easy_section5_spec());
  ASSERT_NE(core::spec_family_fingerprint(table1.spec),
            core::spec_family_fingerprint(section5.spec));

  const ServiceReply a = service.execute({}, table1);
  const ServiceReply b = service.execute({}, section5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.market, b.market);
  EXPECT_EQ(service.stats().get("markets").size(), 2u);
}

TEST(SynthesisServiceTest, CancelMidSolveTripsTheTokenCooperatively) {
  SynthesisService service(ServiceConfig{});
  Gate gate;
  core::SynthesisRequest request = contested_request();
  request.progress = [&gate](const core::SynthesisProgress&) {
    gate.enter();
  };

  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  ServiceReply reply;
  JobInfo info;
  info.id = "cancel-me";
  std::string error;
  ASSERT_TRUE(service.submit(info, request,
                             [&](const ServiceReply& r) {
                               std::lock_guard<std::mutex> lock(mutex);
                               reply = r;
                               done = true;
                               cv.notify_all();
                             },
                             &error))
      << error;

  gate.wait_entered();  // the solve is live, parked at its first progress
  EXPECT_TRUE(service.cancel("cancel-me"));
  gate.release();

  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done; });
  ASSERT_TRUE(reply.ok()) << reply.error;
  EXPECT_TRUE(reply.cancelled);
  // Dead job: nothing left to cancel.
  EXPECT_FALSE(service.cancel("cancel-me"));
  EXPECT_EQ(service.stats().get("service").get("cancelled").as_int(), 1);
}

TEST(SynthesisServiceTest, CancelWhileQueuedSkipsTheSolveEntirely) {
  ServiceConfig config;
  config.workers = 1;
  SynthesisService service(config);
  Gate gate;

  // Occupy the only worker...
  service.submit({}, gated_request(&gate), [](const ServiceReply&) {},
                 nullptr);
  gate.wait_entered();

  // ...queue a second job and cancel it before any worker reaches it.
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  ServiceReply reply;
  JobInfo info;
  info.id = "queued";
  ASSERT_TRUE(service.submit(info, contested_request(),
                             [&](const ServiceReply& r) {
                               std::lock_guard<std::mutex> lock(mutex);
                               reply = r;
                               done = true;
                               cv.notify_all();
                             },
                             nullptr));
  EXPECT_TRUE(service.cancel("queued"));
  gate.release();

  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done; });
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply.cancelled);
  // Never dispatched: no nodes were searched on its behalf.
  EXPECT_EQ(reply.response.result.stats.nodes_total, 0);
  EXPECT_EQ(reply.response.result.status, OptStatus::kUnknown);
}

TEST(SynthesisServiceTest, ExpiredDeadlineCompletesAsUnknownWithoutSolving) {
  ServiceConfig config;
  config.workers = 1;
  SynthesisService service(config);
  Gate gate;
  service.submit({}, gated_request(&gate), [](const ServiceReply&) {},
                 nullptr);
  gate.wait_entered();

  JobInfo info;
  info.deadline_seconds = 0.02;  // will expire while the worker is held
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  ServiceReply reply;
  ASSERT_TRUE(service.submit(info, contested_request(),
                             [&](const ServiceReply& r) {
                               std::lock_guard<std::mutex> lock(mutex);
                               reply = r;
                               done = true;
                               cv.notify_all();
                             },
                             nullptr));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  gate.release();

  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done; });
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply.expired);
  EXPECT_EQ(reply.response.result.status, OptStatus::kUnknown);
  // Partial stats: the queue wait is recorded, but nothing was solved.
  EXPECT_GT(reply.queue_seconds, 0.0);
  EXPECT_EQ(reply.response.result.stats.nodes_total, 0);
  EXPECT_EQ(service.stats().get("service").get("expired").as_int(), 1);
}

TEST(SynthesisServiceTest, FullQueuePushesBackWithStructuredError) {
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  SynthesisService service(config);
  Gate gate;
  service.submit({}, gated_request(&gate), [](const ServiceReply&) {},
                 nullptr);
  gate.wait_entered();  // worker busy; capacity-1 queue is empty

  ASSERT_TRUE(service.submit({}, contested_request(),
                             [](const ServiceReply&) {}, nullptr));

  std::string error;
  EXPECT_FALSE(service.submit({}, contested_request(),
                              [](const ServiceReply&) {}, &error));
  EXPECT_EQ(error, "queue_full");
  EXPECT_EQ(service.stats().get("service").get("rejected").as_int(), 1);
  gate.release();
}

TEST(SynthesisServiceTest, ShutdownAnswersQueuedJobsWithShutdownError) {
  ServiceConfig config;
  config.workers = 1;
  SynthesisService service(config);
  Gate gate;
  service.submit({}, gated_request(&gate), [](const ServiceReply&) {},
                 nullptr);
  gate.wait_entered();

  std::atomic<int> shutdown_replies{0};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.submit({}, contested_request(),
                               [&](const ServiceReply& r) {
                                 if (r.error == "shutdown") {
                                   ++shutdown_replies;
                                 }
                               },
                               nullptr));
  }

  // Shut down while the only worker is still parked inside the blocker:
  // admission stops and the queue closes before any queued job can run.
  std::thread closer([&] { service.shutdown(); });
  std::string error;
  while (service.submit({}, contested_request(),
                        [](const ServiceReply&) {}, &error)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(error, "shutdown");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.release();
  closer.join();
  // All three queued jobs were answered, not dropped.
  EXPECT_EQ(shutdown_replies.load(), 3);
}

// ---- Server + Client over loopback TCP ------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  /// Starts a server on an ephemeral loopback port.
  std::unique_ptr<Server> start_server(ServerConfig config = {}) {
    config.unix_path.clear();
    config.tcp = true;
    config.tcp_port = 0;
    auto server = std::make_unique<Server>(std::move(config));
    std::string error;
    if (!server->start(&error)) {
      ADD_FAILURE() << "server start: " << error;
      return nullptr;
    }
    return server;
  }

  std::unique_ptr<Client> connect(const Server& server) {
    std::string error;
    std::unique_ptr<Client> client =
        Client::connect_tcp("127.0.0.1", server.tcp_port(), &error);
    if (client == nullptr) ADD_FAILURE() << "connect: " << error;
    return client;
  }
};

TEST_F(ServerTest, SynthesizeOverSocketMatchesDirectEngine) {
  const std::unique_ptr<Server> server = start_server();
  ASSERT_NE(server, nullptr);
  const std::unique_ptr<Client> client = connect(*server);
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->ping());

  const core::SynthesisRequest request =
      core::make_request(test::easy_section5_spec());
  const Client::Reply reply = client->synthesize(request);
  ASSERT_TRUE(reply.ok) << reply.error_code << ": " << reply.error_message;
  expect_same_outcome(reply.response, core::synthesize(request),
                      request.spec);
  EXPECT_TRUE(reply.envelope.get("service").get("warm").as_bool(false));

  std::string error;
  const std::optional<Json> stats = client->stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->get("service").get("completed").as_int(), 1);
}

TEST_F(ServerTest, MalformedAndOversizedLinesGetStructuredErrors) {
  ServerConfig config;
  config.max_line_bytes = 512;
  const std::unique_ptr<Server> server = start_server(std::move(config));
  ASSERT_NE(server, nullptr);
  const std::unique_ptr<Client> client = connect(*server);
  ASSERT_NE(client, nullptr);
  std::string error;

  // Malformed JSON: structured error, connection survives.
  ASSERT_TRUE(client->send_line("{this is not json", &error)) << error;
  Json reply;
  ASSERT_TRUE(client->read_envelope(&reply, &error)) << error;
  EXPECT_EQ(reply.get("op").as_string(), "error");
  EXPECT_EQ(reply.get("error").get("code").as_string(), "malformed_json");

  // A line over the limit: rejected without buffering it.
  const std::string oversized(2048, 'x');
  ASSERT_TRUE(client->send_line(oversized, &error)) << error;
  ASSERT_TRUE(client->read_envelope(&reply, &error)) << error;
  EXPECT_EQ(reply.get("error").get("code").as_string(), "oversized_line");

  // The same connection still answers a well-formed op.
  EXPECT_TRUE(client->ping());
}

TEST_F(ServerTest, RejectsUnsupportedVersionsAndUnknownOps) {
  const std::unique_ptr<Server> server = start_server();
  ASSERT_NE(server, nullptr);
  const std::unique_ptr<Client> client = connect(*server);
  ASSERT_NE(client, nullptr);
  std::string error;

  Json envelope = Json::object();
  envelope.set("schema_version", kSchemaVersion + 7);
  envelope.set("op", "ping");
  ASSERT_TRUE(client->send_envelope(envelope, &error)) << error;
  Json reply;
  ASSERT_TRUE(client->read_envelope(&reply, &error)) << error;
  EXPECT_EQ(reply.get("error").get("code").as_string(),
            "unsupported_version");

  envelope.set("schema_version", kSchemaVersion);
  envelope.set("op", "transmogrify");
  ASSERT_TRUE(client->send_envelope(envelope, &error)) << error;
  ASSERT_TRUE(client->read_envelope(&reply, &error)) << error;
  EXPECT_EQ(reply.get("error").get("code").as_string(), "unknown_op");

  // op synthesize with an unparseable request document.
  envelope = Json::object();
  envelope.set("schema_version", kSchemaVersion);
  envelope.set("op", "synthesize");
  envelope.set("request", "not an object");
  ASSERT_TRUE(client->send_envelope(envelope, &error)) << error;
  ASSERT_TRUE(client->read_envelope(&reply, &error)) << error;
  EXPECT_EQ(reply.get("error").get("code").as_string(), "bad_request");
}

// The CI smoke job's shape, in-process: >= 8 concurrent clients across
// three market families and three request kinds; every daemon answer
// must equal a cold direct-engine run of the same request.
TEST_F(ServerTest, ConcurrentMixedMarketClientsMatchDirectEngine) {
  ServerConfig config;
  config.service.workers = 4;
  const std::unique_ptr<Server> server = start_server(std::move(config));
  ASSERT_NE(server, nullptr);

  std::vector<core::SynthesisRequest> requests;
  for (int i = 0; i < 4; ++i) {
    requests.push_back(core::make_request(test::easy_section5_spec()));
    requests.push_back(core::make_request(test::motivational_spec()));
  }
  requests.push_back(core::make_request(test::easy_section5_spec(false)));
  core::SynthesisRequest frontier =
      core::make_request(test::easy_section5_spec());
  frontier.kind = RequestKind::kLatencyFrontier;
  frontier.sweep_values = {8, 9, 10};
  requests.push_back(frontier);
  ASSERT_GE(requests.size(), 8u);

  std::vector<core::SynthesisResponse> direct(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    direct[i] = core::synthesize(requests[i]);
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    clients.emplace_back([&, i] {
      std::string error;
      const std::unique_ptr<Client> client =
          Client::connect_tcp("127.0.0.1", server->tcp_port(), &error);
      if (client == nullptr) {
        ++failures;
        return;
      }
      const Client::Reply reply = client->synthesize(requests[i]);
      if (!reply.ok) {
        ++failures;
        return;
      }
      expect_same_outcome(reply.response, direct[i], requests[i].spec);
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);

  const std::unique_ptr<Client> client = connect(*server);
  ASSERT_NE(client, nullptr);
  std::string error;
  const std::optional<Json> stats = client->stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->get("service").get("completed").as_int(),
            static_cast<long long>(requests.size()));
  // table1+recovery, section5+recovery, section5 detection-only: the
  // family fingerprint includes the recovery mode.
  EXPECT_EQ(stats->get("markets").size(), 3u);
}

TEST_F(ServerTest, CancelOverTheProtocolReachesALiveJob) {
  ServerConfig config;
  config.service.workers = 1;
  const std::unique_ptr<Server> server = start_server(std::move(config));
  ASSERT_NE(server, nullptr);

  // Hold the single worker from inside the server's own service so the
  // protocol cancel provably lands while the job is queued.
  Gate gate;
  server->service().submit({}, gated_request(&gate),
                           [](const ServiceReply&) {}, nullptr);
  gate.wait_entered();

  const std::unique_ptr<Client> submitter = connect(*server);
  ASSERT_NE(submitter, nullptr);
  std::string error;
  Json envelope = Json::object();
  envelope.set("schema_version", kSchemaVersion);
  envelope.set("op", "synthesize");
  envelope.set("id", "protocol-cancel");
  envelope.set("request",
               request_to_json(contested_request()));
  ASSERT_TRUE(submitter->send_envelope(envelope, &error)) << error;

  const std::unique_ptr<Client> canceller = connect(*server);
  ASSERT_NE(canceller, nullptr);
  // The submit raced over the network; retry until the job is live.
  bool cancelled = false;
  for (int attempt = 0; attempt < 200 && !cancelled; ++attempt) {
    cancelled = canceller->cancel("protocol-cancel");
    if (!cancelled) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(cancelled);
  gate.release();

  Json reply;
  ASSERT_TRUE(submitter->read_envelope(&reply, &error)) << error;
  EXPECT_EQ(reply.get("id").as_string(), "protocol-cancel");
  EXPECT_TRUE(reply.get("ok").as_bool(false));
  EXPECT_TRUE(reply.get("service").get("cancelled").as_bool(false));
}


// ---- request-lifecycle observability --------------------------------------

TEST(SynthesisServiceTest, JournalHasOneAdmitAndOneTerminalPerRequest) {
  const std::string path =
      ::testing::TempDir() + "ht_service_journal_test.jsonl";
  std::remove(path.c_str());
  std::string open_error;
  auto journal = obs::RequestJournal::open(path, &open_error);
  ASSERT_NE(journal, nullptr) << open_error;

  long long completed = 0;
  long long cancelled = 0;
  long long expired = 0;
  {
    ServiceConfig config;
    config.workers = 2;
    config.journal = journal.get();
    SynthesisService service(config);

    // A normal request, a cancelled one, and an expired one: three
    // distinct terminal types in one journal.
    ASSERT_TRUE(service.execute({}, contested_request()).ok());

    Gate gate;
    JobInfo cancel_info;
    cancel_info.id = "journal-cancel";
    ServiceReply cancel_reply;
    std::thread submitter([&] {
      cancel_reply = service.execute(cancel_info, gated_request(&gate));
    });
    gate.wait_entered();
    EXPECT_TRUE(service.cancel("journal-cancel"));
    gate.release();
    submitter.join();
    ASSERT_TRUE(cancel_reply.ok());
    EXPECT_TRUE(cancel_reply.cancelled);

    JobInfo expired_info;
    expired_info.deadline_seconds = 1e-9;  // already past at dispatch
    const ServiceReply expired_reply =
        service.execute(expired_info, contested_request());
    ASSERT_TRUE(expired_reply.ok());
    EXPECT_TRUE(expired_reply.expired);

    const Json stats = service.stats();
    completed = stats.get("service").get("completed").as_int();
    cancelled = stats.get("service").get("cancelled").as_int();
    expired = stats.get("service").get("expired").as_int();
    service.shutdown();
  }
  journal->flush();
  journal.reset();  // joins the writer; the file is complete

  // Replay the journal and reconcile against the stats() counters.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::map<long long, int> admits;
  std::map<long long, std::string> terminals;
  long long last_seq = -1;
  while (std::getline(in, line)) {
    Json parsed;
    std::string error;
    ASSERT_TRUE(Json::parse(line, &parsed, &error)) << line << ": " << error;
    const long long seq = parsed.get("seq").as_int(-1);
    EXPECT_GT(seq, last_seq);
    last_seq = seq;
    const long long req = parsed.get("req").as_int(0);
    ASSERT_GE(req, 1);
    const std::string type = parsed.get("event").as_string();
    if (type == "admit") {
      EXPECT_EQ(admits.count(req), 0u) << "duplicate admit for " << req;
      ++admits[req];
      continue;
    }
    // Every non-admit event of a request follows its admit (admit is
    // journaled under the service lock before the worker can see it).
    EXPECT_EQ(admits.count(req), 1u) << type << " before admit for " << req;
    EXPECT_EQ(terminals.count(req), 0u)
        << type << " after terminal for " << req;
    if (type == "end" || type == "cancel" || type == "deadline_miss" ||
        type == "drop") {
      terminals[req] = type;
    }
  }
  ASSERT_EQ(admits.size(), 3u);
  ASSERT_EQ(terminals.size(), 3u);
  std::map<std::string, int> by_type;
  for (const auto& [req, type] : terminals) ++by_type[type];
  EXPECT_EQ(by_type["end"], static_cast<int>(completed - cancelled -
                                             expired));
  EXPECT_EQ(by_type["cancel"], static_cast<int>(cancelled));
  EXPECT_EQ(by_type["deadline_miss"], static_cast<int>(expired));
  std::remove(path.c_str());
}

TEST(SynthesisServiceTest, ResultsBitIdenticalWithFullObservabilityOn) {
  const core::SynthesisRequest request = contested_request();

  ServiceConfig plain_config;
  SynthesisService plain(plain_config);
  const ServiceReply baseline = plain.execute({}, request);
  ASSERT_TRUE(baseline.ok());

  const std::string journal_path =
      ::testing::TempDir() + "ht_service_identity_journal.jsonl";
  std::remove(journal_path.c_str());
  std::string open_error;
  auto journal = obs::RequestJournal::open(journal_path, &open_error);
  ASSERT_NE(journal, nullptr) << open_error;
  obs::FlightRecorderConfig flight_config;
  flight_config.dump_dir = ::testing::TempDir() + "ht_service_identity_fr";
  obs::FlightRecorder flight(flight_config);

  ServiceConfig observed_config;
  observed_config.journal = journal.get();
  observed_config.flight = &flight;
  SynthesisService observed(observed_config);
  const ServiceReply reply = observed.execute({}, request);
  ASSERT_TRUE(reply.ok());
  EXPECT_GE(reply.request_id, 1u);
  expect_same_outcome(reply.response, baseline.response, request.spec);
  observed.shutdown();
  journal.reset();
  std::remove(journal_path.c_str());
}

TEST(SynthesisServiceTest, ExpiredRequestTriggersFlightRecorderDump) {
  obs::FlightRecorderConfig flight_config;
  flight_config.dump_dir = ::testing::TempDir() + "ht_service_flight_dump";
  obs::FlightRecorder flight(flight_config);
  ServiceConfig config;
  config.flight = &flight;
  SynthesisService service(config);

  JobInfo info;
  info.deadline_seconds = 1e-9;
  const ServiceReply reply = service.execute(info, contested_request());
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(reply.expired);
  EXPECT_EQ(flight.dumps_written(), 1);
  char name[64];
  std::snprintf(name, sizeof name, "/req-%llu.trace.json",
                static_cast<unsigned long long>(reply.request_id));
  const std::string dump_path = flight_config.dump_dir + name;
  std::ifstream in(dump_path);
  EXPECT_TRUE(in.good()) << dump_path;
  // The queue phase of the expired request is in the ring, so the dump
  // carries at least that span, correlated by request id.
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("svc/queue"), std::string::npos);
  std::remove(dump_path.c_str());
}

TEST(SynthesisServiceTest, StatsSplitsMeteredFromUnmeteredRequests) {
  SynthesisService service(ServiceConfig{});
  ASSERT_TRUE(service.execute({}, contested_request()).ok());
  core::SynthesisRequest metered = contested_request();
  metered.observability.metrics = true;
  ASSERT_TRUE(service.execute({}, metered).ok());

  const Json stats = service.stats();
  const Json& market = stats.get("markets").at(0);
  EXPECT_EQ(market.get("requests").as_int(), 2);
  EXPECT_EQ(market.get("metered_requests").as_int(), 1);
  EXPECT_EQ(market.get("unmetered_requests").as_int(), 1);
}

TEST(SynthesisServiceTest, TelemetryScrapesAreMonotonicAndCoherent) {
  SynthesisService service(ServiceConfig{});
  ASSERT_TRUE(service.execute({}, contested_request()).ok());

  const std::string first = service.telemetry();
  const std::string second = service.telemetry();
  EXPECT_NE(first.find("thlsd_telemetry_scrapes_total 1"),
            std::string::npos);
  EXPECT_NE(second.find("thlsd_telemetry_scrapes_total 2"),
            std::string::npos);
  EXPECT_NE(first.find("thlsd_requests_submitted_total 1"),
            std::string::npos);
  EXPECT_NE(first.find("thlsd_requests_completed_total 1"),
            std::string::npos);
  // One completed request: both cumulative histograms hold one sample.
  EXPECT_NE(first.find("thlsd_e2e_latency_seconds_count 1"),
            std::string::npos);
  EXPECT_NE(first.find("thlsd_queue_wait_seconds_count 1"),
            std::string::npos);
  EXPECT_NE(first.find("thlsd_market_requests_total{market=\"0x"),
            std::string::npos);
}

TEST_F(ServerTest, TelemetryOpServesPrometheusText) {
  const std::unique_ptr<Server> server = start_server();
  ASSERT_NE(server, nullptr);
  const std::unique_ptr<Client> client = connect(*server);
  ASSERT_NE(client, nullptr);

  std::string error;
  const std::optional<std::string> first = client->telemetry(&error);
  ASSERT_TRUE(first.has_value()) << error;
  const std::optional<std::string> second = client->telemetry(&error);
  ASSERT_TRUE(second.has_value()) << error;
  EXPECT_NE(first->find("thlsd_telemetry_scrapes_total 1"),
            std::string::npos);
  EXPECT_NE(second->find("thlsd_telemetry_scrapes_total 2"),
            std::string::npos);
  EXPECT_NE(first->find("# TYPE thlsd_queue_depth gauge"),
            std::string::npos);
}

}  // namespace
}  // namespace ht::service
