// Multi-cycle functional units: per-class execution latencies through the
// analysis / CSP / greedy / optimizer / validator stack (an extension
// beyond the paper's single-cycle model).
#include <gtest/gtest.h>

#include "benchmarks/classic.hpp"
#include "core/engine.hpp"
#include "core/optimizer.hpp"
#include "core/ilp_formulation.hpp"
#include "dfg/analysis.hpp"
#include "rtl/elaborate.hpp"
#include "test_helpers.hpp"
#include "trojan/simulator.hpp"

namespace ht {
namespace {

using dfg::ResourceClass;

/// Motivational spec with 2-cycle multipliers and room to schedule them.
core::ProblemSpec multicycle_spec() {
  core::ProblemSpec spec = test::motivational_spec();
  spec.class_latency[static_cast<int>(ResourceClass::kMultiplier)] = 2;
  // polynom's weighted critical path: mul(2) -> mul(2) -> add(1) = 5, and
  // mul -> add -> add = 5 as well.
  spec.lambda_detection = 7;
  spec.lambda_recovery = 6;
  spec.area_limit = 40000;
  return spec;
}

// ---- weighted analysis ------------------------------------------------------

TEST(WeightedAnalysisTest, AsapAccountsForParentLatency) {
  const dfg::Dfg graph = benchmarks::polynom();
  // ops: m1, m2 (mul), s1 (add), m3 (mul), s2 (add).
  const std::vector<int> latencies = {2, 2, 1, 2, 1};
  const auto asap = dfg::asap_levels(graph, latencies);
  EXPECT_EQ(asap, (std::vector<int>{1, 1, 3, 3, 5}));
  EXPECT_EQ(dfg::critical_path_length(graph, latencies), 5);
}

TEST(WeightedAnalysisTest, AlapAccountsForOwnAndChildLatency) {
  const dfg::Dfg graph = benchmarks::polynom();
  const std::vector<int> latencies = {2, 2, 1, 2, 1};
  const auto alap = dfg::alap_levels(graph, 6, latencies);
  // s2 (1 cycle) by 6 -> start 6; s1 by 5; m3 (2 cycles) by 5 -> start 4;
  // m2 feeds s1 (start<=5 -> finish by 4 -> m2<=3) and m3 (m2<=2);
  // m1 feeds s1: must finish before 5 -> start <= 3.
  EXPECT_EQ(alap, (std::vector<int>{3, 2, 5, 4, 6}));
}

TEST(WeightedAnalysisTest, UnitLatencyMatchesLegacyOverload) {
  const dfg::Dfg graph = benchmarks::diff2();
  const std::vector<int> unit(static_cast<std::size_t>(graph.num_ops()), 1);
  EXPECT_EQ(dfg::asap_levels(graph), dfg::asap_levels(graph, unit));
  EXPECT_EQ(dfg::alap_levels(graph, 8), dfg::alap_levels(graph, 8, unit));
  EXPECT_EQ(dfg::critical_path_length(graph),
            dfg::critical_path_length(graph, unit));
}

TEST(WeightedAnalysisTest, BadLatencyVectorRejected) {
  const dfg::Dfg graph = benchmarks::polynom();
  EXPECT_THROW(dfg::asap_levels(graph, {1, 1}), util::SpecError);
  EXPECT_THROW(dfg::asap_levels(graph, {1, 1, 0, 1, 1}), util::SpecError);
}

// ---- spec plumbing -----------------------------------------------------------

TEST(MulticycleSpecTest, LatencyHelpers) {
  const core::ProblemSpec spec = multicycle_spec();
  EXPECT_FALSE(spec.unit_latency());
  EXPECT_EQ(spec.op_latency(0), 2);  // m1 is a mul
  EXPECT_EQ(spec.op_latency(2), 1);  // s1 is an add
  EXPECT_EQ(spec.op_latencies(), (std::vector<int>{2, 2, 1, 2, 1}));
  EXPECT_TRUE(test::motivational_spec().unit_latency());
}

TEST(MulticycleSpecTest, ZeroLatencyRejected) {
  core::ProblemSpec spec = multicycle_spec();
  spec.class_latency[0] = 0;
  EXPECT_THROW(spec.validate(), util::SpecError);
}

// ---- optimization under multi-cycle units ------------------------------------

TEST(MulticycleOptimizeTest, SolvesAndValidates) {
  const core::ProblemSpec spec = multicycle_spec();
  const core::OptimizeResult result = core::synthesize(core::make_request(spec)).result;
  ASSERT_TRUE(result.has_solution()) << core::to_string(result.status);
  EXPECT_TRUE(core::validate_solution(spec, result.solution).ok())
      << core::validate_solution(spec, result.solution).to_string();
  // Every multiply occupies two cycles: its finish must respect the bound.
  for (core::CopyRef ref : result.solution.all_copies()) {
    const int lambda = ref.kind == core::CopyKind::kRecovery
                           ? spec.lambda_recovery
                           : spec.lambda_detection;
    EXPECT_LE(result.solution.at(ref).cycle + spec.op_latency(ref.op) - 1,
              lambda);
  }
}

TEST(MulticycleOptimizeTest, TooTightLatencyIsInfeasible) {
  core::ProblemSpec spec = multicycle_spec();
  spec.lambda_detection = 4;  // weighted critical path is 5
  EXPECT_EQ(core::synthesize(core::make_request(spec)).result.status, core::OptStatus::kInfeasible);
}

TEST(MulticycleOptimizeTest, SlowerMultipliersNeverCheaper) {
  // Same spec with unit vs 2-cycle multipliers at the same bounds: fewer
  // scheduling options can only hold or raise the minimum cost.
  core::ProblemSpec fast = multicycle_spec();
  fast.class_latency = {1, 1, 1};
  const core::OptimizeResult fast_result = core::synthesize(core::make_request(fast)).result;
  const core::OptimizeResult slow_result =
      core::synthesize(core::make_request(multicycle_spec())).result;
  ASSERT_EQ(fast_result.status, core::OptStatus::kOptimal);
  ASSERT_EQ(slow_result.status, core::OptStatus::kOptimal);
  EXPECT_GE(slow_result.cost, fast_result.cost);
}

TEST(MulticycleOptimizeTest, HeuristicPathAgrees) {
  const core::ProblemSpec spec = multicycle_spec();
  core::OptimizerOptions options;
  options.strategy = core::Strategy::kHeuristic;
  const core::OptimizeResult heuristic = core::synthesize(core::make_request(spec, options)).result;
  ASSERT_TRUE(heuristic.has_solution());
  EXPECT_TRUE(core::validate_solution(spec, heuristic.solution).ok());
  const core::OptimizeResult exact = core::synthesize(core::make_request(spec)).result;
  ASSERT_TRUE(exact.has_solution());
  EXPECT_LE(exact.cost, heuristic.cost);
}

TEST(MulticycleOptimizeTest, Diff2WithSlowMultipliers) {
  core::ProblemSpec spec;
  spec.graph = benchmarks::diff2();
  spec.catalog = vendor::section5();
  spec.class_latency[static_cast<int>(ResourceClass::kMultiplier)] = 2;
  // diff2 weighted critical path: mul,mul chains -> 3x(1)->3xudx: 2+2+1+1=…
  spec.lambda_detection =
      dfg::critical_path_length(spec.graph, spec.op_latencies()) + 2;
  spec.lambda_recovery = spec.lambda_detection;
  spec.with_recovery = true;
  spec.area_limit = 150000;
  core::OptimizerOptions options;
  options.strategy = core::Strategy::kHeuristic;
  const core::OptimizeResult result = core::synthesize(core::make_request(spec, options)).result;
  ASSERT_TRUE(result.has_solution());
  EXPECT_TRUE(core::validate_solution(spec, result.solution).ok());
}

// ---- validator catches multi-cycle violations ---------------------------------

TEST(MulticycleValidateTest, DetectsOccupancyOverlap) {
  const core::ProblemSpec spec = multicycle_spec();
  core::Solution solution = core::synthesize(core::make_request(spec)).result.solution;
  // Find two multiplies in NC and force them onto the same core with
  // overlapping intervals (starts 1 and 2; each occupies 2 cycles).
  core::Binding& m1 = solution.at(core::CopyKind::kNormal, 0);
  core::Binding& m2 = solution.at(core::CopyKind::kNormal, 1);
  m2.vendor = m1.vendor;
  m2.instance = m1.instance;
  m1.cycle = 1;
  m2.cycle = 2;
  const auto report = core::validate_solution(spec, solution);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("core conflict"), std::string::npos);
}

TEST(MulticycleValidateTest, DetectsConsumerStartingTooEarly) {
  const core::ProblemSpec spec = multicycle_spec();
  core::Solution solution = core::synthesize(core::make_request(spec)).result.solution;
  // s1 consumes m1 (2-cycle mul): starting s1 one cycle after m1 starts is
  // too early.
  solution.at(core::CopyKind::kNormal, 0).cycle = 1;
  solution.at(core::CopyKind::kNormal, 2).cycle = 2;
  const auto report = core::validate_solution(spec, solution);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("dependence"), std::string::npos);
}

// ---- behavioral simulation is latency-agnostic --------------------------------

TEST(MulticycleRuntimeTest, DetectAndRecoverStillWork) {
  const core::ProblemSpec spec = multicycle_spec();
  const core::OptimizeResult design = core::synthesize(core::make_request(spec)).result;
  ASSERT_TRUE(design.has_solution());
  const trojan::RuntimeSimulator simulator(spec, design.solution);
  const std::vector<trojan::Word> inputs = {3, 5, 7, 11, 13};
  const dfg::OpId target = spec.graph.outputs()[0];
  const auto golden = trojan::golden_eval(spec.graph, inputs);
  trojan::TrojanSpec attack;
  attack.trigger.pattern_a = static_cast<std::uint64_t>(
      trojan::operand_value(spec.graph, spec.graph.op(target).inputs[0],
                            golden, inputs));
  attack.trigger.pattern_b = static_cast<std::uint64_t>(
      trojan::operand_value(spec.graph, spec.graph.op(target).inputs[1],
                            golden, inputs));
  trojan::InfectionMap infections;
  infections.emplace(
      core::LicenseKey{
          design.solution.at(core::CopyKind::kNormal, target).vendor,
          ResourceClass::kAdder},
      attack);
  const trojan::RunResult run = simulator.run(inputs, infections);
  EXPECT_TRUE(run.mismatch_detected);
  EXPECT_TRUE(run.recovered_correctly);
}

// ---- unit-latency-only back ends refuse cleanly --------------------------------

TEST(MulticycleScopeTest, IlpFormulationRequiresUnitLatency) {
  const core::ProblemSpec spec = multicycle_spec();
  EXPECT_THROW(core::IlpFormulation formulation(spec), util::SpecError);
}

TEST(MulticycleScopeTest, RtlElaborateRequiresUnitLatency) {
  const core::ProblemSpec spec = multicycle_spec();
  const core::OptimizeResult design = core::synthesize(core::make_request(spec)).result;
  ASSERT_TRUE(design.has_solution());
  EXPECT_THROW(rtl::elaborate(spec, design.solution), util::SpecError);
}

}  // namespace
}  // namespace ht
