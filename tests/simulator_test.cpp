#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/optimizer.hpp"
#include "trojan/monte_carlo.hpp"
#include "trojan/simulator.hpp"
#include "test_helpers.hpp"

namespace ht::trojan {
namespace {

using core::CopyKind;

/// Solved motivational design (polynom, Table 1, recovery enabled) shared
/// by all tests in this file.
const core::ProblemSpec& spec() {
  static const core::ProblemSpec instance = test::motivational_spec();
  return instance;
}

const core::Solution& solution() {
  static const core::Solution instance = [] {
    const core::OptimizeResult result = core::synthesize(core::make_request(spec())).result;
    if (!result.has_solution()) {
      throw util::InternalError("motivational spec must be solvable");
    }
    return result.solution;
  }();
  return instance;
}

/// Crafts the adversarial Trojan for one detection-phase copy: infects the
/// license that copy is bound to, triggered by the operand values the copy
/// sees on `inputs`.
InfectionMap infect_copy(core::CopyKind kind, dfg::OpId op,
                         const std::vector<Word>& inputs,
                         std::uint64_t mask = ~0ull) {
  const dfg::Dfg& graph = spec().graph;
  const auto values = golden_eval(graph, inputs);
  const dfg::Operation& operation = graph.op(op);
  TrojanSpec trojan;
  trojan.trigger.mask = mask;
  trojan.trigger.pattern_a = static_cast<std::uint64_t>(
      operand_value(graph, operation.inputs[0], values, inputs));
  trojan.trigger.pattern_b = static_cast<std::uint64_t>(
      operand_value(graph, operation.inputs[1], values, inputs));
  trojan.payload.xor_mask = 0x1;
  const core::Binding& binding = solution().at(kind, op);
  InfectionMap infections;
  infections.emplace(
      core::LicenseKey{binding.vendor,
                       dfg::resource_class_of(operation.type)},
      trojan);
  return infections;
}

const std::vector<Word> kInputs = {3, 5, 7, 11, 13};

TEST(SimulatorTest, CleanRunMatchesGoldenAndDetectsNothing) {
  const RuntimeSimulator sim(spec(), solution());
  const RunResult result = sim.run(kInputs, {});
  EXPECT_FALSE(result.payload_fired_detection);
  EXPECT_FALSE(result.mismatch_detected);
  EXPECT_FALSE(result.recovery_ran);
  EXPECT_EQ(result.nc_outputs, result.golden_outputs);
  EXPECT_EQ(result.rc_outputs, result.golden_outputs);
}

TEST(SimulatorTest, ActivatedTrojanIsDetected) {
  const RuntimeSimulator sim(spec(), solution());
  // Target the NC copy of the output op s2 (op 4): any corruption is
  // directly visible at the outputs.
  const RunResult result = sim.run(kInputs, infect_copy(CopyKind::kNormal, 4,
                                                        kInputs));
  EXPECT_TRUE(result.payload_fired_detection);
  EXPECT_TRUE(result.mismatch_detected);
  EXPECT_NE(result.nc_outputs, result.golden_outputs);
  EXPECT_EQ(result.rc_outputs, result.golden_outputs);  // RC untouched
}

TEST(SimulatorTest, RulesRecoveryDeactivatesTrojan) {
  const RuntimeSimulator sim(spec(), solution());
  const RunResult result = sim.run(kInputs, infect_copy(CopyKind::kNormal, 4,
                                                        kInputs));
  ASSERT_TRUE(result.recovery_ran);
  EXPECT_TRUE(result.recovered_correctly)
      << "recovery rebinding must avoid the infected vendor for the "
         "triggering operation";
  EXPECT_EQ(result.recovery_outputs, result.golden_outputs);
}

TEST(SimulatorTest, RcSideInfectionAlsoDetectedAndRecovered) {
  const RuntimeSimulator sim(spec(), solution());
  const RunResult result =
      sim.run(kInputs, infect_copy(CopyKind::kRedundant, 4, kInputs));
  EXPECT_TRUE(result.mismatch_detected);
  EXPECT_EQ(result.nc_outputs, result.golden_outputs);  // NC clean
  ASSERT_TRUE(result.recovery_ran);
  EXPECT_TRUE(result.recovered_correctly);
}

TEST(SimulatorTest, ReexecutionCannotRecoverPersistentTrigger) {
  // The paper's Section 3.2 argument: the trigger condition reproduces on
  // re-execution with the same cores, so the error persists.
  const RuntimeSimulator sim(spec(), solution());
  const RunResult result =
      sim.run(kInputs, infect_copy(CopyKind::kNormal, 4, kInputs),
              RecoveryStrategy::kReexecuteSame);
  ASSERT_TRUE(result.recovery_ran);
  EXPECT_TRUE(result.payload_fired_recovery);
  EXPECT_FALSE(result.recovered_correctly);
  EXPECT_EQ(result.recovery_outputs, result.nc_outputs);  // same wrong answer
}

TEST(SimulatorTest, EveryDetectionCopyIsCoveredAndRecoverable) {
  // Sweep: infect each of the 10 detection-phase copies in turn.
  const RuntimeSimulator sim(spec(), solution());
  for (CopyKind kind : {CopyKind::kNormal, CopyKind::kRedundant}) {
    for (dfg::OpId op = 0; op < spec().graph.num_ops(); ++op) {
      const RunResult result =
          sim.run(kInputs, infect_copy(kind, op, kInputs));
      EXPECT_TRUE(result.payload_fired_detection)
          << core::copy_kind_name(kind) << " op " << op;
      if (result.mismatch_detected) {
        EXPECT_TRUE(result.recovered_correctly)
            << core::copy_kind_name(kind) << " op " << op;
      } else {
        // The XOR may cancel through downstream arithmetic; corruption
        // without mismatch must then also leave the outputs correct.
        EXPECT_EQ(result.nc_outputs, result.rc_outputs);
      }
    }
  }
}

TEST(SimulatorTest, SequentialTriggerArmsAcrossFrames) {
  const RuntimeSimulator sim(spec(), solution());
  InfectionMap infections = infect_copy(CopyKind::kNormal, 4, kInputs);
  TrojanSpec& trojan = infections.begin()->second;
  trojan.trigger.kind = TriggerSpec::Kind::kSequential;
  trojan.trigger.threshold = 3;

  std::map<core::CoreKey, TriggerState> silicon;
  const RunResult frame1 = sim.run(kInputs, infections,
                                   RecoveryStrategy::kRebindPerRules,
                                   &silicon);
  EXPECT_FALSE(frame1.mismatch_detected);
  const RunResult frame2 = sim.run(kInputs, infections,
                                   RecoveryStrategy::kRebindPerRules,
                                   &silicon);
  EXPECT_FALSE(frame2.mismatch_detected);
  const RunResult frame3 = sim.run(kInputs, infections,
                                   RecoveryStrategy::kRebindPerRules,
                                   &silicon);
  EXPECT_TRUE(frame3.mismatch_detected);
  EXPECT_TRUE(frame3.recovered_correctly);
}

TEST(SimulatorTest, RebindOnDetectionOnlySolutionThrows) {
  const core::ProblemSpec detection_spec =
      test::motivational_detection_only();
  const core::OptimizeResult result = core::synthesize(core::make_request(detection_spec)).result;
  ASSERT_TRUE(result.has_solution());
  const RuntimeSimulator sim(detection_spec, result.solution);
  const auto infections = InfectionMap{};
  EXPECT_NO_THROW(sim.run(kInputs, infections));  // clean run is fine
  // Force a mismatch (infect NC s2's license with its exact operands) so
  // recovery would be needed.
  const dfg::Dfg& graph = detection_spec.graph;
  const auto values = golden_eval(graph, kInputs);
  const dfg::Operation& s2 = graph.op(4);
  TrojanSpec trojan;
  trojan.trigger.pattern_a = static_cast<std::uint64_t>(
      operand_value(graph, s2.inputs[0], values, kInputs));
  trojan.trigger.pattern_b = static_cast<std::uint64_t>(
      operand_value(graph, s2.inputs[1], values, kInputs));
  InfectionMap attack;
  const core::Binding& binding = result.solution.at(CopyKind::kNormal, 4);
  attack.emplace(
      core::LicenseKey{binding.vendor, dfg::ResourceClass::kAdder}, trojan);
  EXPECT_THROW(sim.run(kInputs, attack), util::SpecError);
}

// ---- Monte-Carlo campaign ---------------------------------------------------

TEST(CampaignTest, RulesDesignDetectsAndRecovers) {
  CampaignConfig config;
  config.trials = 200;
  config.seed = 7;
  const CampaignStats stats = run_campaign(spec(), solution(), config);
  EXPECT_EQ(stats.trials, 200);
  EXPECT_GT(stats.payload_activated, 150);  // adversarial triggers mostly fire
  // Everything detected must recover under the rules.
  EXPECT_EQ(stats.recovery_failed, 0);
  EXPECT_GE(stats.detection_rate(), 0.95);
}

TEST(CampaignTest, ReexecutionFailsToRecoverNcInfections) {
  CampaignConfig config;
  config.trials = 200;
  config.seed = 7;
  config.target_both_computations = false;  // Trojan always in NC
  const CampaignStats stats = run_campaign(
      spec(), solution(), config, RecoveryStrategy::kReexecuteSame);
  EXPECT_GT(stats.recovery_ran, 0);
  // Re-execution replays the same trigger condition on the same cores.
  EXPECT_EQ(stats.recovered, 0);
}

TEST(CampaignTest, ReexecutionOnlyRescuesRcSideInfections) {
  // With targets on both computations, re-execution succeeds exactly when
  // the Trojan happened to sit in RC (NC was never wrong) — roughly half
  // the trials, far below the rules-based recovery.
  CampaignConfig config;
  config.trials = 300;
  config.seed = 11;
  const CampaignStats reexec = run_campaign(
      spec(), solution(), config, RecoveryStrategy::kReexecuteSame);
  const CampaignStats rules = run_campaign(
      spec(), solution(), config, RecoveryStrategy::kRebindPerRules);
  EXPECT_GT(reexec.recovery_failed, 0);
  EXPECT_LT(reexec.recovery_rate(), 0.7);
  EXPECT_DOUBLE_EQ(rules.recovery_rate(), 1.0);
}

// ---- collusion (detection Rule 2's threat) ---------------------------------

TEST(CollusionTest, CompliantDesignNeverActivatesCollusionTrojans) {
  // det-R2 forbids same-vendor parent-child bindings, so an always-armed
  // collusion Trojan in every license has no channel to fire through.
  const CollusionProbe probe =
      run_collusion_probe(spec(), solution(), 100, 77);
  EXPECT_EQ(probe.frames, 100);
  EXPECT_EQ(probe.frames_with_activation, 0);
  EXPECT_EQ(probe.frames_detected, 0);
}

/// Rules-off spec + handmade binding with same-vendor chains in NC only:
/// the collusion Trojan fires in NC, RC stays clean, the checker trips.
struct CollusionFixture {
  core::ProblemSpec spec;
  core::Solution solution{5, false};
};

CollusionFixture colluding_design() {
  CollusionFixture fixture;
  fixture.spec = test::motivational_detection_only();
  fixture.spec.area_limit = 30000;
  fixture.spec.rules.detection_same_op = false;
  fixture.spec.rules.detection_parent_child = false;
  fixture.spec.rules.detection_sibling = false;
  using K = core::CopyKind;
  core::Solution& s = fixture.solution;
  // NC entirely on Ven 1: every chain is a same-vendor channel.
  s.at(K::kNormal, 0) = {1, 0, 0};  // m1
  s.at(K::kNormal, 1) = {1, 0, 1};  // m2
  s.at(K::kNormal, 2) = {2, 0, 0};  // s1
  s.at(K::kNormal, 3) = {2, 0, 0};  // m3
  s.at(K::kNormal, 4) = {3, 0, 0};  // s2
  // RC with vendor-diverse chains: no collusion channel anywhere.
  s.at(K::kRedundant, 0) = {1, 1, 0};  // m1' Ven2
  s.at(K::kRedundant, 1) = {1, 2, 0};  // m2' Ven3
  s.at(K::kRedundant, 2) = {3, 3, 0};  // s1' Ven4
  s.at(K::kRedundant, 3) = {2, 1, 0};  // m3' Ven2
  s.at(K::kRedundant, 4) = {4, 0, 0};  // s2' Ven1 (producers Ven4/Ven2)
  core::require_valid(fixture.spec, fixture.solution);
  return fixture;
}

TEST(CollusionTest, SameVendorChainsActivateAndGetCaught) {
  const CollusionFixture fixture = colluding_design();
  const CollusionProbe probe =
      run_collusion_probe(fixture.spec, fixture.solution, 50, 78);
  // Every frame drives the same-vendor chains: activation each time, and
  // since only NC is corrupted the NC/RC comparison flags every frame.
  EXPECT_EQ(probe.frames_with_activation, 50);
  EXPECT_EQ(probe.frames_detected, 50);
}

TEST(CollusionTest, OptimizerOutputIsCollusionFreeEvenWithoutRecovery) {
  const core::ProblemSpec d_spec = test::motivational_detection_only();
  const core::OptimizeResult result = core::synthesize(core::make_request(d_spec)).result;
  ASSERT_TRUE(result.has_solution());
  const CollusionProbe probe =
      run_collusion_probe(d_spec, result.solution, 50, 79);
  EXPECT_EQ(probe.frames_with_activation, 0);
}

TEST(CampaignTest, DeterministicUnderSeed) {
  CampaignConfig config;
  config.trials = 50;
  config.seed = 99;
  const CampaignStats a = run_campaign(spec(), solution(), config);
  const CampaignStats b = run_campaign(spec(), solution(), config);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.recovered, b.recovered);
}

}  // namespace
}  // namespace ht::trojan
