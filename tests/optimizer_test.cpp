#include <gtest/gtest.h>

#include "benchmarks/suite.hpp"
#include "core/engine.hpp"
#include "core/optimizer.hpp"
#include "test_helpers.hpp"

namespace ht::core {
namespace {

using test::easy_section5_spec;
using test::motivational_detection_only;
using test::motivational_spec;

TEST(OptimizerTest, MotivationalDetectionOnlyOptimal) {
  const ProblemSpec spec = motivational_detection_only();
  const OptimizeResult result = synthesize(make_request(spec)).result;
  ASSERT_EQ(result.status, OptStatus::kOptimal) << to_string(result.status);
  EXPECT_TRUE(validate_solution(spec, result.solution).ok());
  EXPECT_EQ(result.cost, result.solution.license_cost(spec));
  // Detection alone needs >= 2 adder + 2 multiplier licenses; cheapest two
  // of each in Table 1 cost 450+540 + 760+880 = 2630. The area limit and
  // rules can only push the cost up.
  EXPECT_GE(result.cost, 2630);
}

TEST(OptimizerTest, MotivationalRecoveryCostsMore) {
  const OptimizeResult detection = synthesize(make_request(motivational_detection_only())).result;
  const OptimizeResult recovery = synthesize(make_request(motivational_spec())).result;
  ASSERT_TRUE(detection.has_solution());
  ASSERT_TRUE(recovery.has_solution());
  // The paper's core finding: recovery demands strictly more diversity.
  EXPECT_GT(recovery.cost, detection.cost);
}

TEST(OptimizerTest, MotivationalRecoveryNeedsThreeVendorsPerClass) {
  const ProblemSpec spec = motivational_spec();
  const OptimizeResult result = synthesize(make_request(spec)).result;
  ASSERT_TRUE(result.has_solution());
  // Count licenses per class.
  int adders = 0;
  int multipliers = 0;
  for (const LicenseKey& license : result.solution.licenses_used(spec)) {
    if (license.rc == dfg::ResourceClass::kAdder) ++adders;
    if (license.rc == dfg::ResourceClass::kMultiplier) ++multipliers;
  }
  EXPECT_GE(adders, 3);
  EXPECT_GE(multipliers, 3);
}

TEST(OptimizerTest, HeuristicFindsValidDesignQuickly) {
  const ProblemSpec spec = motivational_spec();
  OptimizerOptions options;
  options.strategy = Strategy::kHeuristic;
  const OptimizeResult result = synthesize(make_request(spec, options)).result;
  ASSERT_TRUE(result.has_solution()) << to_string(result.status);
  EXPECT_TRUE(validate_solution(spec, result.solution).ok());
}

TEST(OptimizerTest, HeuristicNeverBeatsExact) {
  const ProblemSpec spec = motivational_spec();
  const OptimizeResult exact = synthesize(make_request(spec)).result;
  OptimizerOptions options;
  options.strategy = Strategy::kHeuristic;
  const OptimizeResult heuristic = synthesize(make_request(spec, options)).result;
  ASSERT_TRUE(exact.has_solution());
  ASSERT_TRUE(heuristic.has_solution());
  EXPECT_LE(exact.cost, heuristic.cost);
}

TEST(OptimizerTest, InfeasibleLatencyDetected) {
  ProblemSpec spec = motivational_detection_only();
  spec.lambda_detection = 2;  // below polynom's critical path of 3
  const OptimizeResult result = synthesize(make_request(spec)).result;
  EXPECT_EQ(result.status, OptStatus::kInfeasible);
}

TEST(OptimizerTest, MarketTooThinForRecoveryIsInfeasible) {
  // Two vendors can never host NC, RC and recovery copies of one op.
  ProblemSpec spec = motivational_spec();
  vendor::Catalog two(2);
  for (vendor::VendorId v = 0; v < 2; ++v) {
    for (dfg::ResourceClass rc :
         {dfg::ResourceClass::kAdder, dfg::ResourceClass::kMultiplier}) {
      two.set_offer(v, rc, spec.catalog.offer(v, rc));
    }
  }
  spec.catalog = two;
  EXPECT_EQ(synthesize(make_request(spec)).result.status, OptStatus::kInfeasible);
}

TEST(OptimizerTest, InfeasibleAreaDetected) {
  ProblemSpec spec = motivational_detection_only();
  spec.area_limit = 1000;  // not even one multiplier
  const OptimizeResult result = synthesize(make_request(spec)).result;
  EXPECT_EQ(result.status, OptStatus::kInfeasible);
}

TEST(OptimizerTest, LooserAreaNeverIncreasesCost) {
  ProblemSpec tight = motivational_detection_only();
  ProblemSpec loose = tight;
  loose.area_limit = 60000;
  const OptimizeResult tight_result = synthesize(make_request(tight)).result;
  const OptimizeResult loose_result = synthesize(make_request(loose)).result;
  ASSERT_TRUE(tight_result.has_solution());
  ASSERT_TRUE(loose_result.has_solution());
  EXPECT_LE(loose_result.cost, tight_result.cost);
}

TEST(OptimizerTest, LooserLatencyNeverIncreasesCost) {
  ProblemSpec tight = motivational_detection_only();
  tight.lambda_detection = 3;  // zero mobility: 4 concurrent multipliers
  tight.area_limit = 40000;    // ...which need more area than 22000
  ProblemSpec loose = tight;
  loose.lambda_detection = 8;
  const OptimizeResult tight_result = synthesize(make_request(tight)).result;
  const OptimizeResult loose_result = synthesize(make_request(loose)).result;
  ASSERT_TRUE(tight_result.has_solution());
  ASSERT_TRUE(loose_result.has_solution());
  EXPECT_LE(loose_result.cost, tight_result.cost);
}

TEST(OptimizerTest, Section5EightVendorsOptimal) {
  const ProblemSpec spec = easy_section5_spec(true);
  const OptimizeResult result = synthesize(make_request(spec)).result;
  ASSERT_EQ(result.status, OptStatus::kOptimal);
  EXPECT_TRUE(validate_solution(spec, result.solution).ok());
  // Lower bound: 3 cheapest adders (450+465+495) + 3 cheapest multipliers
  // (760+795+830) in the Section 5 catalog.
  EXPECT_GE(result.cost, 450 + 465 + 495 + 760 + 795 + 830);
}

TEST(OptimizerTest, DisablingRecoveryRulesLowersCost) {
  ProblemSpec with_rules = motivational_spec();
  ProblemSpec without = with_rules;
  without.rules.recovery_same_op = false;
  const OptimizeResult strict = synthesize(make_request(with_rules)).result;
  const OptimizeResult relaxed = synthesize(make_request(without)).result;
  ASSERT_TRUE(strict.has_solution());
  ASSERT_TRUE(relaxed.has_solution());
  EXPECT_LE(relaxed.cost, strict.cost);
}

TEST(OptimizerTest, ClosePairsCanOnlyRaiseCost) {
  ProblemSpec plain = motivational_spec();
  // Close pairs force both recovery multiplies onto the one vendor outside
  // their (shared) detection vendor set — two concurrent instances of it.
  // That cannot fit in 22000 area, so compare at a looser bound.
  plain.area_limit = 32000;
  ProblemSpec close = plain;
  close.closely_related = {{0, 1}};
  const OptimizeResult base = synthesize(make_request(plain)).result;
  const OptimizeResult constrained = synthesize(make_request(close)).result;
  ASSERT_TRUE(base.has_solution());
  ASSERT_TRUE(constrained.has_solution());
  EXPECT_GE(constrained.cost, base.cost);
}

TEST(OptimizerTest, SplitSearchFindsAFeasibleSplit) {
  ProblemSpec base = motivational_spec();
  base.catalog = vendor::section5();
  base.area_limit = 60000;
  SynthesisRequest request = make_request(base);
  request.kind = RequestKind::kMinimizeTotalLatency;
  request.lambda_total = 7;
  const SynthesisResponse split = synthesize(request);
  ASSERT_TRUE(split.result.has_solution());
  EXPECT_GE(split.lambda_detection, 3);
  EXPECT_GE(split.lambda_recovery, 3);
  EXPECT_EQ(split.lambda_detection + split.lambda_recovery, 7);
}

TEST(OptimizerTest, SplitSearchRejectsTooTightTotal) {
  SynthesisRequest request = make_request(motivational_spec());
  request.kind = RequestKind::kMinimizeTotalLatency;
  request.lambda_total = 5;
  EXPECT_THROW(synthesize(request), util::SpecError);
}

TEST(OptimizerTest, StatsArePopulated) {
  const OptimizeResult result = synthesize(make_request(motivational_spec())).result;
  EXPECT_GT(result.stats.combos_tried, 0);
  // csp_nodes may be zero when the greedy constructor solves every
  // license set it visits; it must never be negative.
  EXPECT_GE(result.stats.csp_nodes, 0);
  EXPECT_GE(result.stats.seconds, 0.0);
}

TEST(OptStatusTest, Names) {
  EXPECT_EQ(to_string(OptStatus::kOptimal), "optimal");
  EXPECT_EQ(to_string(OptStatus::kFeasible), "feasible");
  EXPECT_EQ(to_string(OptStatus::kInfeasible), "infeasible");
  EXPECT_EQ(to_string(OptStatus::kUnknown), "unknown");
}

}  // namespace
}  // namespace ht::core
