// Soundness of the branch-and-bound lower bounds (core/bounds.hpp).
//
// Every bound is a relaxation of the CSP, so on any spec:
//   * the global cost floor is at or below the true optimum whenever a
//     feasible design exists (cross-checked against both the bounds-off
//     exact engine and the independent ILP formulation);
//   * a refuted full market implies the instance is genuinely infeasible;
//   * the LP bound, when the simplex converges, never exceeds the optimum
//     and never declares a feasible instance's relaxation infeasible.
#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <climits>

#include "benchmarks/random_dfg.hpp"
#include "core/engine.hpp"
#include "core/ilp_formulation.hpp"
#include "core/optimizer.hpp"
#include "dfg/analysis.hpp"
#include "vendor/catalogs.hpp"

namespace ht::core {
namespace {

using dfg::ResourceClass;

/// Sentinel license_lp_lower_bound / LowerBounds use for "no market can
/// supply the floors" (kept well away from LLONG_MAX so incumbent
/// comparisons cannot overflow).
constexpr long long kUnsuppliable = LLONG_MAX / 4;

/// Small catalog the ILP cross-check solves in seconds.
vendor::Catalog small_catalog() {
  vendor::Catalog catalog(4);
  for (vendor::VendorId v = 0; v < 4; ++v) {
    catalog.set_offer(v, ResourceClass::kAdder, {500 + 10 * v, 400 + 50 * v});
    catalog.set_offer(v, ResourceClass::kMultiplier,
                      {6000 - 100 * v, 900 - 40 * v});
    catalog.set_offer(v, ResourceClass::kAlu, {800 + 25 * v, 500 + 30 * v});
  }
  return catalog;
}

ProblemSpec random_spec(util::Rng& rng) {
  benchmarks::RandomDfgConfig config;
  config.num_ops = static_cast<int>(rng.uniform_int(4, 7));
  config.max_depth = 3;
  config.edge_probability = rng.uniform01() * 0.5 + 0.2;
  ProblemSpec spec;
  spec.graph = benchmarks::random_dfg(config, rng);
  spec.catalog = small_catalog();
  const int cp = dfg::critical_path_length(spec.graph, spec.op_latencies());
  spec.lambda_detection = cp + static_cast<int>(rng.uniform_int(0, 3));
  spec.with_recovery = rng.chance(0.5);
  spec.lambda_recovery =
      spec.with_recovery ? cp + static_cast<int>(rng.uniform_int(0, 3)) : 0;
  spec.area_limit = 4000 + rng.uniform_int(0, 8) * 2000;
  spec.max_instances_per_offer = static_cast<int>(rng.uniform_int(1, 2));
  return spec;
}

Palettes full_palettes(const ProblemSpec& spec) {
  Palettes palettes;
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    const auto rc = static_cast<ResourceClass>(cls);
    if (spec.graph.ops_per_class()[cls] == 0) continue;
    for (vendor::VendorId v = 0; v < spec.catalog.num_vendors(); ++v) {
      if (spec.catalog.offers(v, rc)) {
        palettes[static_cast<std::size_t>(cls)].push_back(v);
      }
    }
  }
  return palettes;
}

class BoundsPropertyTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, BoundsPropertyTest, ::testing::Range(1, 9));

TEST_P(BoundsPropertyTest, EveryLowerBoundIsAtOrBelowTheTrueOptimum) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 48271 + 7);
  for (int round = 0; round < 2; ++round) {
    const ProblemSpec spec = random_spec(rng);
    const LowerBounds bounds(spec);
    for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
      EXPECT_GE(bounds.instance_floors()[cls], 0);
      EXPECT_GE(bounds.vendor_floors()[cls], 0);
    }

    // Ground truth: the bounds-off exact engine (complete at these sizes).
    OptimizerOptions truth_options;
    truth_options.cost_bounds = false;
    truth_options.time_limit_seconds = 30;
    const OptimizeResult truth = synthesize(make_request(spec, truth_options)).result;
    // No oracle when the reference search exhausts its clock (rare at
    // these sizes): skip the round rather than assert against nothing.
    if (truth.status == OptStatus::kUnknown) continue;

    if (bounds.refutes(full_palettes(spec))) {
      EXPECT_EQ(truth.status, OptStatus::kInfeasible)
          << "bounds refuted a market the exact engine solved";
    }
    if (!truth.has_solution()) continue;

    EXPECT_LE(bounds.global_cost_lb(), truth.cost)
        << "combinatorial floor above the true optimum";

    const long long lp = license_lp_lower_bound(
        spec, bounds.instance_floors(), bounds.vendor_floors());
    EXPECT_NE(lp, kUnsuppliable)
        << "LP relaxation infeasible on a feasible instance";
    if (lp >= 0) {
      EXPECT_LE(lp, truth.cost) << "LP bound above the true optimum";
    }

    // Independent oracle: the ILP formulation must agree with the engine,
    // and the floors must sit below its optimum too.
    ilp::BnbOptions ilp_options;
    ilp_options.time_limit_seconds = 30;
    const OptimizeResult via_ilp = minimize_cost_ilp(spec, ilp_options);
    if (via_ilp.status == OptStatus::kOptimal) {
      EXPECT_EQ(via_ilp.cost, truth.cost);
      EXPECT_LE(bounds.global_cost_lb(), via_ilp.cost);
    }
  }
}

TEST(BoundsTest, UnsuppliableDiversityFloorRefutesTheFullMarket) {
  // Three pairwise closely-related adds need three distinct adder vendors
  // for their recovery copies (recovery Rule 2); a two-vendor market
  // cannot supply them.
  dfg::Dfg g("clique");
  const dfg::Operand a = g.add_input("a");
  const dfg::Operand b = g.add_input("b");
  for (int i = 0; i < 3; ++i) g.mark_output(g.add(a, b));

  vendor::Catalog catalog(2);
  catalog.set_offer(0, ResourceClass::kAdder, {100, 900});
  catalog.set_offer(1, ResourceClass::kAdder, {100, 901});

  ProblemSpec spec;
  spec.graph = std::move(g);
  spec.catalog = std::move(catalog);
  spec.lambda_detection = 4;
  spec.with_recovery = true;
  spec.lambda_recovery = 4;
  spec.area_limit = 1'000'000;
  spec.closely_related = {{0, 1}, {0, 2}, {1, 2}};

  const LowerBounds bounds(spec);
  const int adder = static_cast<int>(ResourceClass::kAdder);
  EXPECT_GE(bounds.vendor_floors()[adder], 3);
  EXPECT_EQ(bounds.global_cost_lb(), kUnsuppliable);
  EXPECT_TRUE(bounds.refutes(full_palettes(spec)));

  OptimizerOptions options;
  options.cost_bounds = false;
  EXPECT_EQ(synthesize(make_request(spec, options)).result.status, OptStatus::kInfeasible);
}

TEST(BoundsTest, EnergeticFloorSeesWindowPressure) {
  // Four independent adds under lambda = 2 with unit latency: any schedule
  // needs at least two concurrent adders even though no single op is
  // pinned to a specific cycle.
  dfg::Dfg g("wide");
  const dfg::Operand a = g.add_input("a");
  const dfg::Operand b = g.add_input("b");
  for (int i = 0; i < 4; ++i) g.mark_output(g.add(a, b));

  ProblemSpec spec;
  spec.graph = std::move(g);
  spec.catalog = small_catalog();
  spec.lambda_detection = 2;
  spec.with_recovery = false;
  spec.area_limit = 1'000'000;
  spec.max_instances_per_offer = 1;

  const LowerBounds bounds(spec);
  const int adder = static_cast<int>(ResourceClass::kAdder);
  EXPECT_GE(bounds.instance_floors()[adder], 2);

  // With the cap at one instance per offer the same floor becomes a vendor
  // floor, and a single-vendor palette is refuted outright.
  EXPECT_GE(bounds.vendor_floors()[adder], 2);
  Palettes narrow;
  narrow[static_cast<std::size_t>(adder)] = {0};
  EXPECT_TRUE(bounds.refutes(narrow));
}

}  // namespace
}  // namespace ht::core
