#include <gtest/gtest.h>

#include "vendor/catalogs.hpp"

namespace ht::vendor {
namespace {

using dfg::ResourceClass;

TEST(CatalogTest, Table1MatchesPaper) {
  const Catalog catalog = table1();
  EXPECT_EQ(catalog.num_vendors(), 4);
  // Spot-check every row of the paper's Table 1.
  EXPECT_EQ(catalog.offer(0, ResourceClass::kAdder).area, 532);
  EXPECT_EQ(catalog.offer(0, ResourceClass::kAdder).cost, 450);
  EXPECT_EQ(catalog.offer(0, ResourceClass::kMultiplier).area, 6843);
  EXPECT_EQ(catalog.offer(0, ResourceClass::kMultiplier).cost, 950);
  EXPECT_EQ(catalog.offer(1, ResourceClass::kAdder).cost, 630);
  EXPECT_EQ(catalog.offer(1, ResourceClass::kMultiplier).area, 5731);
  EXPECT_EQ(catalog.offer(2, ResourceClass::kMultiplier).cost, 760);
  EXPECT_EQ(catalog.offer(3, ResourceClass::kAdder).area, 618);
  EXPECT_EQ(catalog.offer(3, ResourceClass::kMultiplier).cost, 1000);
}

TEST(CatalogTest, Table1HasNoAluOffers) {
  const Catalog catalog = table1();
  for (VendorId v = 0; v < catalog.num_vendors(); ++v) {
    EXPECT_FALSE(catalog.offers(v, ResourceClass::kAlu));
  }
  EXPECT_EQ(catalog.num_vendors_offering(ResourceClass::kAlu), 0);
}

TEST(CatalogTest, Section5IsComplete8x3) {
  const Catalog catalog = section5();
  EXPECT_EQ(catalog.num_vendors(), 8);
  for (VendorId v = 0; v < 8; ++v) {
    for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
      EXPECT_TRUE(catalog.offers(v, static_cast<ResourceClass>(cls)))
          << "vendor " << v << " class " << cls;
    }
  }
}

TEST(CatalogTest, Section5ExtendsTable1Verbatim) {
  const Catalog t1 = table1();
  const Catalog s5 = section5();
  for (VendorId v = 0; v < 4; ++v) {
    for (ResourceClass rc :
         {ResourceClass::kAdder, ResourceClass::kMultiplier}) {
      EXPECT_EQ(t1.offer(v, rc).area, s5.offer(v, rc).area);
      EXPECT_EQ(t1.offer(v, rc).cost, s5.offer(v, rc).cost);
    }
  }
}

TEST(CatalogTest, Section5ValuesInTable1Ranges) {
  const Catalog catalog = section5();
  for (VendorId v = 0; v < catalog.num_vendors(); ++v) {
    const IpOffer& adder = catalog.offer(v, ResourceClass::kAdder);
    EXPECT_GE(adder.area, 500);
    EXPECT_LE(adder.area, 800);
    EXPECT_GE(adder.cost, 400);
    EXPECT_LE(adder.cost, 700);
    const IpOffer& mult = catalog.offer(v, ResourceClass::kMultiplier);
    EXPECT_GE(mult.area, 5500);
    EXPECT_LE(mult.area, 7000);
    EXPECT_GE(mult.cost, 700);
    EXPECT_LE(mult.cost, 1000);
  }
}

TEST(CatalogTest, VendorsByCostSortedAndComplete) {
  const Catalog catalog = section5();
  const auto order = catalog.vendors_by_cost(ResourceClass::kMultiplier);
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(catalog.offer(order[i - 1], ResourceClass::kMultiplier).cost,
              catalog.offer(order[i], ResourceClass::kMultiplier).cost);
  }
  // Cheapest multiplier in the Section 5 catalog is Ven 3 at $760.
  EXPECT_EQ(order.front(), 2);
}

TEST(CatalogTest, MissingOfferThrows) {
  const Catalog catalog = table1();
  EXPECT_THROW(catalog.offer(0, ResourceClass::kAlu), util::SpecError);
}

TEST(CatalogTest, VendorOutOfRangeThrows) {
  const Catalog catalog = table1();
  EXPECT_THROW(catalog.offers(4, ResourceClass::kAdder), util::SpecError);
  EXPECT_THROW(catalog.offers(-1, ResourceClass::kAdder), util::SpecError);
}

TEST(CatalogTest, RejectsNonPositiveOffers) {
  Catalog catalog(2);
  EXPECT_THROW(catalog.set_offer(0, ResourceClass::kAdder, {0, 100}),
               util::SpecError);
  EXPECT_THROW(catalog.set_offer(0, ResourceClass::kAdder, {100, -5}),
               util::SpecError);
}

TEST(CatalogTest, VendorNamesAreOneBased) {
  EXPECT_EQ(table1().vendor_name(0), "Ven 1");
  EXPECT_EQ(table1().vendor_name(3), "Ven 4");
}

}  // namespace
}  // namespace ht::vendor
