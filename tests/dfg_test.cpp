#include <gtest/gtest.h>

#include <algorithm>

#include "dfg/analysis.hpp"
#include "dfg/dfg.hpp"
#include "dfg/dot.hpp"

namespace ht::dfg {
namespace {

/// a*b + c*d with the sum marked as output.
Dfg small_graph() {
  Dfg g("small");
  Operand a = g.add_input("a");
  Operand b = g.add_input("b");
  Operand c = g.add_input("c");
  Operand d = g.add_input("d");
  OpId m1 = g.mul(a, b, "m1");
  OpId m2 = g.mul(c, d, "m2");
  OpId s = g.add(Operand::op(m1), Operand::op(m2), "s");
  g.mark_output(s);
  return g;
}

TEST(DfgTest, BuilderCountsOpsAndInputs) {
  const Dfg g = small_graph();
  EXPECT_EQ(g.num_ops(), 3);
  EXPECT_EQ(g.num_inputs(), 4);
  ASSERT_EQ(g.outputs().size(), 1u);
  EXPECT_EQ(g.outputs()[0], 2);
}

TEST(DfgTest, ResourceClassMapping) {
  EXPECT_EQ(resource_class_of(OpType::kAdd), ResourceClass::kAdder);
  EXPECT_EQ(resource_class_of(OpType::kSub), ResourceClass::kAdder);
  EXPECT_EQ(resource_class_of(OpType::kMul), ResourceClass::kMultiplier);
  EXPECT_EQ(resource_class_of(OpType::kDiv), ResourceClass::kMultiplier);
  EXPECT_EQ(resource_class_of(OpType::kShr), ResourceClass::kAlu);
  EXPECT_EQ(resource_class_of(OpType::kLt), ResourceClass::kAlu);
  EXPECT_EQ(resource_class_of(OpType::kMax), ResourceClass::kAlu);
}

TEST(DfgTest, ForwardReferencesRejected) {
  Dfg g;
  Operand a = g.add_input("a");
  EXPECT_THROW(g.add_op(OpType::kAdd, a, Operand::op(5)), util::SpecError);
}

TEST(DfgTest, UnknownInputRejected) {
  Dfg g;
  EXPECT_THROW(g.add_op(OpType::kAdd, Operand::input(0), Operand::constant(1)),
               util::SpecError);
}

TEST(DfgTest, EdgesDerivedFromOperands) {
  const Dfg g = small_graph();
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], std::make_pair(0, 2));
  EXPECT_EQ(edges[1], std::make_pair(1, 2));
}

TEST(DfgTest, DuplicateOperandYieldsSingleParent) {
  Dfg g;
  Operand a = g.add_input("a");
  OpId m = g.mul(a, a, "sq");
  OpId s = g.add(Operand::op(m), Operand::op(m), "dbl");
  EXPECT_EQ(g.parents(s), std::vector<OpId>{m});
  EXPECT_EQ(g.children(m), std::vector<OpId>{s});
  EXPECT_EQ(g.edges().size(), 1u);
}

TEST(DfgTest, OpsPerClass) {
  const Dfg g = small_graph();
  const auto counts = g.ops_per_class();
  EXPECT_EQ(counts[static_cast<int>(ResourceClass::kAdder)], 1);
  EXPECT_EQ(counts[static_cast<int>(ResourceClass::kMultiplier)], 2);
  EXPECT_EQ(counts[static_cast<int>(ResourceClass::kAlu)], 0);
}

TEST(DfgTest, MarkOutputDeduplicates) {
  Dfg g = small_graph();
  g.mark_output(2);
  EXPECT_EQ(g.outputs().size(), 1u);
}

TEST(DfgTest, ValidatePassesOnBuilderGraphs) {
  EXPECT_NO_THROW(small_graph().validate());
}

// ---- analysis -------------------------------------------------------------

TEST(AnalysisTest, AsapLevels) {
  const Dfg g = small_graph();
  const auto asap = asap_levels(g);
  EXPECT_EQ(asap, (std::vector<int>{1, 1, 2}));
}

TEST(AnalysisTest, CriticalPath) {
  EXPECT_EQ(critical_path_length(small_graph()), 2);
}

TEST(AnalysisTest, AlapAtCriticalPathHasZeroMobilityOnChain) {
  const Dfg g = small_graph();
  const auto alap = alap_levels(g, 2);
  EXPECT_EQ(alap, (std::vector<int>{1, 1, 2}));
}

TEST(AnalysisTest, AlapWithSlack) {
  const Dfg g = small_graph();
  const auto alap = alap_levels(g, 4);
  EXPECT_EQ(alap, (std::vector<int>{3, 3, 4}));
}

TEST(AnalysisTest, AlapBelowCriticalPathThrows) {
  EXPECT_THROW(alap_levels(small_graph(), 1), util::InfeasibleError);
}

TEST(AnalysisTest, SiblingPairs) {
  const Dfg g = small_graph();
  const auto siblings = sibling_pairs(g);
  ASSERT_EQ(siblings.size(), 1u);
  EXPECT_EQ(siblings[0], std::make_pair(0, 1));
}

TEST(AnalysisTest, SiblingPairsIgnoreSelfPairs) {
  Dfg g;
  Operand a = g.add_input("a");
  OpId m = g.mul(a, a);
  OpId s = g.add(Operand::op(m), Operand::op(m));
  (void)s;
  EXPECT_TRUE(sibling_pairs(g).empty());
}

TEST(AnalysisTest, MinCoresLowerBoundTightChain) {
  // Two independent muls must share one cycle when latency is 1... which is
  // impossible with one core: bound is 2.
  Dfg g;
  Operand a = g.add_input("a");
  Operand b = g.add_input("b");
  g.mul(a, b);
  g.mul(b, a);
  EXPECT_EQ(min_cores_lower_bound(g, ResourceClass::kMultiplier, 1), 2);
  EXPECT_EQ(min_cores_lower_bound(g, ResourceClass::kMultiplier, 2), 1);
}

TEST(AnalysisTest, MinCoresLowerBoundZeroForAbsentClass) {
  EXPECT_EQ(min_cores_lower_bound(small_graph(), ResourceClass::kAlu, 3), 0);
}

TEST(AnalysisTest, SchedulabilityBundle) {
  const Schedulability s = analyze_schedulability(small_graph(), 3);
  EXPECT_EQ(s.critical_path_length, 2);
  EXPECT_EQ(s.asap.size(), 3u);
  EXPECT_EQ(s.alap.size(), 3u);
  for (std::size_t i = 0; i < s.asap.size(); ++i) {
    EXPECT_LE(s.asap[i], s.alap[i]);
  }
}

// ---- dot -------------------------------------------------------------------

TEST(DotTest, ContainsNodesAndEdges) {
  const std::string dot = to_dot(small_graph());
  EXPECT_NE(dot.find("digraph \"small\""), std::string::npos);
  EXPECT_NE(dot.find("m1:mul"), std::string::npos);
  EXPECT_NE(dot.find("op0 -> op2"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // output node
  EXPECT_NE(dot.find("in0 -> op0"), std::string::npos);
}

}  // namespace
}  // namespace ht::dfg
