// RTL export walkthrough: optimize the motivational design, elaborate it
// to a controller+datapath netlist, print the architecture inventory,
// cross-check the netlist against the behavioral simulator under attack,
// and write the Verilog to build/polynom_thls.v.
#include <cstdio>

#include "benchmarks/classic.hpp"
#include "core/engine.hpp"
#include "core/optimizer.hpp"
#include "rtl/sim.hpp"
#include "rtl/testbench.hpp"
#include "rtl/verilog.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "vendor/catalogs.hpp"

using namespace ht;

int main() {
  core::ProblemSpec spec;
  spec.graph = benchmarks::polynom();
  spec.catalog = vendor::table1();
  spec.lambda_detection = 4;
  spec.lambda_recovery = 3;
  spec.with_recovery = true;
  spec.area_limit = 22000;

  const core::OptimizeResult design = core::synthesize(core::make_request(spec)).result;
  if (!design.has_solution()) {
    std::puts("optimization failed");
    return 1;
  }
  std::printf("optimized design: %s, area %lld\n\n",
              util::format_money(design.cost).c_str(),
              design.solution.total_area(spec));

  const rtl::ElaboratedDesign elaborated =
      rtl::elaborate(spec, design.solution);
  int fus = 0;
  int registers = 0;
  int muxes = 0;
  int other = 0;
  for (const rtl::Cell& cell : elaborated.netlist.cells()) {
    switch (cell.kind) {
      case rtl::CellKind::kFu:
        ++fus;
        break;
      case rtl::CellKind::kRegister:
        ++registers;
        break;
      case rtl::CellKind::kCaseMux:
        ++muxes;
        break;
      default:
        ++other;
        break;
    }
  }
  std::printf("netlist '%s': %d FUs, %d registers, %d muxes, %d control "
              "cells, %d wires, %d steps/frame\n",
              elaborated.netlist.name().c_str(), fus, registers, muxes,
              other, elaborated.netlist.num_wires(),
              elaborated.total_steps);

  // Cross-check: attack the NC output op; the RTL must detect & recover.
  const std::vector<trojan::Word> inputs = {3, 5, 7, 11, 13};
  const dfg::OpId target = spec.graph.outputs()[0];
  const auto golden = trojan::golden_eval(spec.graph, inputs);
  trojan::TrojanSpec attack;
  attack.trigger.pattern_a = static_cast<std::uint64_t>(
      trojan::operand_value(spec.graph, spec.graph.op(target).inputs[0],
                            golden, inputs));
  attack.trigger.pattern_b = static_cast<std::uint64_t>(
      trojan::operand_value(spec.graph, spec.graph.op(target).inputs[1],
                            golden, inputs));
  attack.payload.xor_mask = 0xDEAD;
  trojan::InfectionMap infections;
  infections.emplace(
      core::LicenseKey{
          design.solution.at(core::CopyKind::kNormal, target).vendor,
          dfg::ResourceClass::kAdder},
      attack);

  const rtl::RtlSimulator simulator(elaborated);
  const rtl::RtlRunResult clean = simulator.run(inputs, {});
  const rtl::RtlRunResult attacked = simulator.run(inputs, infections);
  std::printf("\nRTL clean run   : detected=%d out=%lld (golden %lld)\n",
              clean.detected, (long long)clean.outputs[0],
              (long long)golden[static_cast<std::size_t>(target)]);
  std::printf("RTL under attack: detected=%d out=%lld (recovered)\n",
              attacked.detected, (long long)attacked.outputs[0]);

  rtl::ElaborateOptions sharing;
  sharing.share_registers = true;
  const rtl::ElaboratedDesign compact =
      rtl::elaborate(spec, design.solution, sharing);
  std::printf("register sharing: %d registers -> %d\n",
              elaborated.num_data_registers, compact.num_data_registers);

  const std::string verilog = rtl::to_verilog(elaborated);
  util::write_file("polynom_thls.v", verilog);
  std::printf("\nwrote %zu bytes of Verilog to polynom_thls.v\n",
              verilog.size());

  rtl::TestbenchOptions tb_options;
  tb_options.frames = {{3, 5, 7, 11, 13}, {1, 2, 3, 4, 5}, {100, 99, 98, 97, 96}};
  const std::string testbench =
      rtl::to_verilog_testbench(spec, elaborated, tb_options);
  util::write_file("polynom_thls_tb.v", testbench);
  std::printf("wrote %zu bytes of self-checking testbench to "
              "polynom_thls_tb.v\n",
              testbench.size());
  std::puts("first lines:");
  std::size_t pos = 0;
  for (int line = 0; line < 8 && pos != std::string::npos; ++line) {
    const std::size_t end = verilog.find('\n', pos);
    std::printf("  %s\n", verilog.substr(pos, end - pos).c_str());
    pos = end == std::string::npos ? end : end + 1;
  }
  return attacked.detected &&
                 attacked.outputs[0] ==
                     golden[static_cast<std::size_t>(target)]
             ? 0
             : 1;
}
