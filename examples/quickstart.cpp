// Quickstart: the complete flow on one page.
//
//   1. Describe your behavioral computation as a DFG.
//   2. Describe the IP market (vendors, areas, license costs).
//   3. Ask the optimizer for the cheapest schedule + binding that supports
//      run-time Trojan detection AND fast recovery.
//   4. Deploy: simulate a Trojan activation and watch the design detect the
//      mismatch and recover by re-binding.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "core/engine.hpp"
#include "core/optimizer.hpp"
#include "util/strings.hpp"
#include "trojan/simulator.hpp"
#include "vendor/catalogs.hpp"

using namespace ht;

int main() {
  // 1. A small filter kernel: y = (a*b + c*d) * e, out2 = a*b + e.
  dfg::Dfg graph("kernel");
  const dfg::Operand a = graph.add_input("a");
  const dfg::Operand b = graph.add_input("b");
  const dfg::Operand c = graph.add_input("c");
  const dfg::Operand d = graph.add_input("d");
  const dfg::Operand e = graph.add_input("e");
  const dfg::OpId ab = graph.mul(a, b, "ab");
  const dfg::OpId cd = graph.mul(c, d, "cd");
  const dfg::OpId sum = graph.add(dfg::Operand::op(ab),
                                  dfg::Operand::op(cd), "sum");
  const dfg::OpId y = graph.mul(dfg::Operand::op(sum), e, "y");
  const dfg::OpId out2 = graph.add(dfg::Operand::op(ab), e, "out2");
  graph.mark_output(y);
  graph.mark_output(out2);

  // 2. The paper's Table 1 market: 4 vendors selling adders & multipliers.
  // 3. Optimize under latency and area budgets.
  core::ProblemSpec spec;
  spec.graph = graph;
  spec.catalog = vendor::table1();
  spec.lambda_detection = 4;  // cycles for NC + RC (detection phase)
  spec.lambda_recovery = 4;   // cycles for the recovery re-execution
  spec.with_recovery = true;
  spec.area_limit = 30000;    // unit cells

  const core::OptimizeResult design = core::synthesize(core::make_request(spec)).result;
  if (!design.has_solution()) {
    std::printf("no design meets the constraints (%s)\n",
                core::to_string(design.status).c_str());
    return 1;
  }
  std::printf("minimum purchasing cost: %s (%s)\n",
              util::format_money(design.cost).c_str(),
              core::to_string(design.status).c_str());
  std::printf("licenses: %zu, vendors: %zu, core instances: %zu, "
              "area: %lld/%lld\n\n",
              design.solution.licenses_used(spec).size(),
              design.solution.vendors_used(spec).size(),
              design.solution.cores_used(spec).size(),
              design.solution.total_area(spec), spec.area_limit);
  std::fputs(design.solution.to_string(spec).c_str(), stdout);

  // 4. Run time: infect the vendor that executes NC's "y" with a Trojan
  // triggered exactly by y's operand values on this input frame.
  const std::vector<trojan::Word> inputs = {6, 7, 8, 9, 10};
  const auto golden = trojan::golden_eval(graph, inputs);
  trojan::TrojanSpec attack;
  attack.trigger.pattern_a = static_cast<std::uint64_t>(
      golden[static_cast<std::size_t>(sum)]);
  attack.trigger.pattern_b = static_cast<std::uint64_t>(inputs[4]);
  attack.payload.xor_mask = 0xFF00;
  attack.description = "combinational trigger on y's operands";

  trojan::InfectionMap infections;
  infections.emplace(
      core::LicenseKey{design.solution.at(core::CopyKind::kNormal, y).vendor,
                       dfg::ResourceClass::kMultiplier},
      attack);

  const trojan::RuntimeSimulator simulator(spec, design.solution);
  const trojan::RunResult run = simulator.run(inputs, infections);

  std::printf("\npayload fired in detection phase : %s\n",
              run.payload_fired_detection ? "yes" : "no");
  std::printf("NC/RC mismatch detected          : %s\n",
              run.mismatch_detected ? "yes" : "no");
  std::printf("recovery re-binding ran          : %s\n",
              run.recovery_ran ? "yes" : "no");
  std::printf("recovered to golden outputs      : %s\n",
              run.recovered_correctly ? "yes" : "no");
  return run.recovered_correctly ? 0 : 1;
}
