// A detailed single-attack walkthrough of the run-time machinery, printing
// every observable value: golden outputs, NC vs RC outputs at detection,
// and the recovery phase's outputs under both recovery strategies. Uses
// the paper's diff2 benchmark (HAL differential-equation solver).
#include <cstdio>

#include "benchmarks/classic.hpp"
#include "core/engine.hpp"
#include "core/optimizer.hpp"
#include "util/strings.hpp"
#include "trojan/profiling.hpp"
#include "trojan/simulator.hpp"
#include "vendor/catalogs.hpp"

using namespace ht;

namespace {

void print_words(const char* label, const std::vector<trojan::Word>& words) {
  std::printf("%-22s", label);
  for (trojan::Word word : words) std::printf(" %lld", (long long)word);
  std::puts("");
}

}  // namespace

int main() {
  core::ProblemSpec spec;
  spec.graph = benchmarks::diff2();
  spec.catalog = vendor::section5();
  spec.lambda_detection = 6;
  spec.lambda_recovery = 5;
  spec.with_recovery = true;
  spec.area_limit = 120000;

  // Section 3.3: diff2 computes u*dx twice; those twin multiplications are
  // closely related (identical, in fact), so recovery Rule 2 applies.
  util::Rng rng(1);
  trojan::ProfileConfig profile;
  profile.tolerance = 0;
  spec.closely_related =
      trojan::profile_close_pairs(spec.graph, profile, rng);
  std::printf("close pairs found by profiling: %zu\n",
              spec.closely_related.size());
  for (const auto& [i, j] : spec.closely_related) {
    std::printf("  %s ~ %s\n", spec.graph.op(i).name.c_str(),
                spec.graph.op(j).name.c_str());
  }

  const core::OptimizeResult design = core::synthesize(core::make_request(spec)).result;
  if (!design.has_solution()) {
    std::printf("optimize failed: %s\n",
                core::to_string(design.status).c_str());
    return 1;
  }
  std::printf("\ndesign cost %s (%s)\n\n",
              util::format_money(design.cost).c_str(),
              core::to_string(design.status).c_str());
  std::fputs(design.solution.to_string(spec).c_str(), stdout);

  // Attack the twin multiplication: a Trojan in the vendor executing NC's
  // "udx" triggered by (u, dx). Without rec-R2, recovery might re-bind
  // "udx2" — which sees the same operands — onto this very vendor.
  const std::vector<trojan::Word> inputs = {2, 3, 4, 5, 100};  // x y u dx a
  const dfg::OpId udx = 1;  // see benchmarks/classic.cpp
  trojan::TrojanSpec attack;
  attack.trigger.pattern_a = 4;  // u
  attack.trigger.pattern_b = 5;  // dx
  attack.payload.xor_mask = 0b1010;
  trojan::InfectionMap infections;
  infections.emplace(
      core::LicenseKey{
          design.solution.at(core::CopyKind::kNormal, udx).vendor,
          dfg::ResourceClass::kMultiplier},
      attack);

  const trojan::RuntimeSimulator simulator(spec, design.solution);

  std::puts("\n--- strategy: rebind per rules (the paper's recovery) ---");
  const trojan::RunResult rules = simulator.run(inputs, infections);
  print_words("golden outputs:", rules.golden_outputs);
  print_words("NC outputs:", rules.nc_outputs);
  print_words("RC outputs:", rules.rc_outputs);
  std::printf("mismatch detected: %s\n",
              rules.mismatch_detected ? "yes" : "no");
  if (rules.recovery_ran) {
    print_words("recovery outputs:", rules.recovery_outputs);
    std::printf("recovered: %s\n", rules.recovered_correctly ? "yes" : "NO");
  }

  std::puts("\n--- strategy: re-execute on the same cores (baseline) ---");
  const trojan::RunResult naive = simulator.run(
      inputs, infections, trojan::RecoveryStrategy::kReexecuteSame);
  if (naive.recovery_ran) {
    print_words("re-execution outputs:", naive.recovery_outputs);
    std::printf("recovered: %s   (the trigger condition persists, Section "
                "3.2)\n",
                naive.recovered_correctly ? "yes" : "NO");
  }

  return rules.recovered_correctly && !naive.recovered_correctly ? 0 : 1;
}
