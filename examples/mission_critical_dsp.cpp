// Mission-critical DSP scenario (the paper's motivating application class:
// avionics / communications front ends that must keep working until the
// infected part can be replaced).
//
// We take the 16-tap FIR filter from the evaluation suite, profile its
// closely-related operation pairs from representative input vectors
// (Section 3.3), synthesize a detection+recovery design on the 8-vendor
// market, and then stream a long input sequence through the simulated
// datapath while a sequentially-triggered Trojan arms itself — showing the
// system detecting the activation and recovering mid-stream.
#include <cstdio>

#include "benchmarks/classic.hpp"
#include "core/engine.hpp"
#include "core/optimizer.hpp"
#include "util/strings.hpp"
#include "trojan/profiling.hpp"
#include "trojan/simulator.hpp"
#include "vendor/catalogs.hpp"

using namespace ht;

int main() {
  dfg::Dfg graph = benchmarks::fir16();
  std::printf("fir16: %d ops (%d mul, %d add), critical path matters for\n"
              "frame rate; we budget 6 cycles per phase.\n\n",
              graph.num_ops(), graph.ops_per_class()[1],
              graph.ops_per_class()[0]);

  core::ProblemSpec spec;
  spec.graph = graph;
  spec.catalog = vendor::section5();
  spec.lambda_detection = 6;
  spec.lambda_recovery = 6;
  spec.with_recovery = true;
  spec.area_limit = 220000;

  // Profile close pairs on audio-like small-amplitude inputs: neighboring
  // taps of a smooth signal see nearly equal samples, exactly the
  // "closely-related inputs ... due to properties of some algorithms such
  // as DSP" the paper warns about.
  util::Rng rng(99);
  trojan::ProfileConfig profile;
  profile.num_vectors = 128;
  profile.min_value = 1000;
  profile.max_value = 1015;  // narrow range => taps are close
  profile.tolerance = 31;
  spec.closely_related = trojan::profile_close_pairs(graph, profile, rng);
  std::printf("profiled %zu closely-related op pairs (tolerance %lld)\n",
              spec.closely_related.size(),
              static_cast<long long>(profile.tolerance));

  core::OptimizerOptions options;
  options.strategy = core::Strategy::kHeuristic;
  options.time_limit_seconds = 30;
  const core::OptimizeResult design = core::synthesize(core::make_request(spec, options)).result;
  if (!design.has_solution()) {
    std::printf("synthesis failed: %s\n",
                core::to_string(design.status).c_str());
    return 1;
  }
  std::printf("design: cost %s, %zu licenses from %zu vendors, "
              "%zu core instances, area %lld\n\n",
              util::format_money(design.cost).c_str(),
              design.solution.licenses_used(spec).size(),
              design.solution.vendors_used(spec).size(),
              design.solution.cores_used(spec).size(),
              design.solution.total_area(spec));

  // Stream 32 frames. A counter-based Trojan sits in the vendor executing
  // NC tap 0 and arms on the 5th frame whose operands match a specific
  // (sample, coefficient) pair — we feed that pair every frame.
  const trojan::RuntimeSimulator simulator(spec, design.solution);
  std::vector<trojan::Word> frame;
  for (int i = 0; i < 16; ++i) {
    frame.push_back(1000 + i % 4);  // samples
    frame.push_back(3 + i);         // coefficients
  }
  const auto golden = trojan::golden_eval(graph, frame);
  (void)golden;

  trojan::TrojanSpec attack;
  attack.trigger.kind = trojan::TriggerSpec::Kind::kSequential;
  attack.trigger.threshold = 5;
  attack.trigger.pattern_a = static_cast<std::uint64_t>(frame[0]);
  attack.trigger.pattern_b = static_cast<std::uint64_t>(frame[1]);
  attack.payload.xor_mask = 1ull << 20;
  trojan::InfectionMap infections;
  infections.emplace(
      core::LicenseKey{design.solution.at(core::CopyKind::kNormal, 0).vendor,
                       dfg::ResourceClass::kMultiplier},
      attack);

  std::map<core::CoreKey, trojan::TriggerState> silicon;
  int detected_at = -1;
  for (int i = 0; i < 32; ++i) {
    const trojan::RunResult run = simulator.run(
        frame, infections, trojan::RecoveryStrategy::kRebindPerRules,
        &silicon);
    if (run.mismatch_detected) {
      detected_at = i;
      std::printf("frame %2d: TROJAN ACTIVATED -> mismatch detected, "
                  "recovery %s\n",
                  i, run.recovered_correctly ? "succeeded" : "FAILED");
      if (!run.recovered_correctly) return 1;
      break;
    }
    std::printf("frame %2d: clean (trigger arming silently)\n", i);
  }
  if (detected_at < 0) {
    std::puts("trojan never activated — unexpected for this scenario");
    return 1;
  }
  std::puts("\nMission continues on the recovery binding until the part is "
            "replaced.");
  return 0;
}
