// Market sensitivity study: how does the minimum purchasing cost (and
// feasibility) of a Trojan-tolerant design respond to the breadth of the
// IP market and to the area budget? Sweeps the number of available
// vendors (3..8) and several area limits for the diff2 benchmark.
//
// Useful as a procurement aid: the paper's rules demand diversity, and
// this shows how thin a market can get before detection+recovery designs
// become infeasible.
#include <cstdio>

#include "benchmarks/classic.hpp"
#include "core/engine.hpp"
#include "core/optimizer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "vendor/catalogs.hpp"

using namespace ht;

namespace {

/// First `count` vendors of the Section 5 market.
vendor::Catalog market_prefix(int count) {
  const vendor::Catalog full = vendor::section5();
  vendor::Catalog prefix(count);
  for (vendor::VendorId v = 0; v < count; ++v) {
    for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
      const auto rc = static_cast<dfg::ResourceClass>(cls);
      prefix.set_offer(v, rc, full.offer(v, rc));
    }
  }
  return prefix;
}

}  // namespace

int main() {
  std::puts("diff2, lambda_det=6, lambda_rec=5: minimum cost by market "
            "breadth and area budget\n");
  util::TablePrinter table({"vendors", "A=60,000", "A=90,000", "A=120,000"});
  for (int vendors = 2; vendors <= 8; ++vendors) {
    std::vector<std::string> row = {std::to_string(vendors)};
    for (long long area : {60000LL, 90000LL, 120000LL}) {
      core::ProblemSpec spec;
      spec.graph = benchmarks::diff2();
      spec.catalog = market_prefix(vendors);
      spec.lambda_detection = 6;
      spec.lambda_recovery = 5;
      spec.with_recovery = true;
      spec.area_limit = area;
      core::OptimizerOptions options;
      options.time_limit_seconds = 10;
      const core::OptimizeResult result = core::synthesize(core::make_request(spec, options)).result;
      if (result.has_solution()) {
        row.push_back(util::format_money(result.cost) +
                      (result.status == core::OptStatus::kOptimal ? ""
                                                                  : "*"));
      } else {
        row.push_back(core::to_string(result.status));
      }
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nTakeaways: two vendors can never satisfy the recovery rules"
            "\n(the NC/RC/recovery copies of one op form a 3-vendor"
            "\ntriangle). From three vendors up the design is feasible and"
            "\nevery additional vendor lowers cost monotonically by opening"
            "\ncheaper license combinations; looser area budgets stop"
            "\nmattering once the rule-implied instance count fits.");
  return 0;
}
