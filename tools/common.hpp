// Shared spec/request construction for the thls and thls-client tools:
// one flag vocabulary, one loader, one SynthesisRequest builder, so the
// CLI and the daemon client cannot drift apart on what "--area 22000
// --strategy heuristic" means.
#pragma once

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include "benchmarks/extra.hpp"
#include "benchmarks/suite.hpp"
#include "core/engine.hpp"
#include "dfg/analysis.hpp"
#include "dfg/parse.hpp"
#include "trojan/profiling.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "vendor/catalogs.hpp"

namespace ht::tools {

/// The spec-shaping flags both tools accept.
struct SpecOptions {
  std::string graph_arg;
  std::string catalog = "section5";
  int lambda_det = 0;
  int lambda_rec = 0;
  bool detection_only = false;
  long long area = 0;
  /// Per-license instance cap (--max-instances); 0 keeps the spec default.
  /// 1 is the contested-market shape: cheap license sets become genuinely
  /// scarce, so the engine has to refute them (and the daemon's warm
  /// snapshot has something to remember).
  int max_instances = 0;
  bool close_pairs = true;
  std::uint64_t seed = 1;
};

/// The engine-shaping flags both tools accept.
struct EngineOptions {
  std::string strategy = "exact";
  int threads = 1;
  double time_limit = 0;  // 0: engine default
  bool cost_bounds = true;
  /// --no-screens: disable the static pre-CSP screens so every refutation
  /// is a complete CSP proof (the shape the dominance cache and the warm
  /// snapshot record; pairs with --no-bounds for cache-visible A/Bs).
  bool static_screens = true;
  bool metrics = false;
  /// Racing portfolio mode (PortfolioOptions::enabled): greedy + SLS
  /// incumbent seeders race ahead of the exact enumeration.
  bool portfolio = false;
  std::uint64_t seed = 1;
};

/// Built-in benchmark name or a textual-DFG file path.
inline dfg::Dfg load_graph(const std::string& arg) {
  for (const benchmarks::BenchmarkCase& entry : benchmarks::paper_suite()) {
    if (entry.name == arg) return entry.factory();
  }
  if (arg == "ar_lattice") return benchmarks::ar_lattice();
  if (arg == "matmul2x2") return benchmarks::matmul2x2();
  if (arg == "fft4") return benchmarks::fft4();
  std::ifstream stream(arg);
  if (!stream.good()) {
    throw util::SpecError("cannot open DFG file or unknown benchmark: " +
                          arg);
  }
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return dfg::parse_dfg(buffer.str());
}

/// Flags -> validated ProblemSpec (defaults: lambda = critical path + 1,
/// area = room for ~10 of the market's largest cores, close pairs
/// profiled per Section 3.3). Throws util::SpecError on bad flag values.
inline core::ProblemSpec build_spec(const SpecOptions& options) {
  core::ProblemSpec spec;
  spec.graph = load_graph(options.graph_arg);
  if (options.catalog == "table1") {
    spec.catalog = vendor::table1();
  } else if (options.catalog == "section5") {
    spec.catalog = vendor::section5();
  } else {
    throw util::SpecError("unknown catalog " + options.catalog +
                          " (expected table1 or section5)");
  }
  const int cp = dfg::critical_path_length(spec.graph);
  spec.lambda_detection =
      options.lambda_det > 0 ? options.lambda_det : cp + 1;
  spec.with_recovery = !options.detection_only;
  spec.lambda_recovery =
      spec.with_recovery
          ? (options.lambda_rec > 0 ? options.lambda_rec : cp + 1)
          : 0;
  if (options.area > 0) {
    spec.area_limit = options.area;
  } else {
    long long biggest = 0;
    for (vendor::VendorId v = 0; v < spec.catalog.num_vendors(); ++v) {
      for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
        const auto rc = static_cast<dfg::ResourceClass>(cls);
        if (spec.catalog.offers(v, rc)) {
          biggest = std::max(
              biggest,
              static_cast<long long>(spec.catalog.offer(v, rc).area));
        }
      }
    }
    spec.area_limit = 10 * biggest;
  }
  if (options.max_instances > 0) {
    spec.max_instances_per_offer = options.max_instances;
  }
  if (options.close_pairs && spec.with_recovery) {
    // Section 3.3: profile closely-related op pairs; recovery Rule 2 then
    // keeps their recovery bindings apart. Disable with --no-close-pairs.
    util::Rng rng(options.seed);
    trojan::ProfileConfig profile;
    profile.tolerance = 0;
    spec.closely_related =
        trojan::profile_close_pairs(spec.graph, profile, rng);
  }
  spec.validate();
  return spec;
}

/// Flags -> kMinimize SynthesisRequest; adjust kind/kind-specific fields
/// afterwards. Throws util::SpecError on an unknown strategy name.
inline core::SynthesisRequest build_request(const core::ProblemSpec& spec,
                                            const EngineOptions& options) {
  core::SynthesisRequest request;
  request.spec = spec;
  if (options.strategy == "heuristic") {
    request.strategy = core::Strategy::kHeuristic;
  } else if (options.strategy != "exact") {
    throw util::SpecError("unknown strategy " + options.strategy +
                          " (expected exact or heuristic)");
  }
  request.seed = options.seed;
  request.parallelism.threads = options.threads;
  request.pruning.cost_bounds = options.cost_bounds;
  request.pruning.static_screens = options.static_screens;
  request.portfolio.enabled = options.portfolio;
  request.observability.metrics = options.metrics;
  if (options.time_limit > 0) {
    request.limits.time_limit_seconds = options.time_limit;
  }
  return request;
}

}  // namespace ht::tools
