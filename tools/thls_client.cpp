// thls-client — command-line client for the thlsd daemon.
//
//   thls-client [--connect ENDPOINT] optimize <dfg|benchmark> [options]
//   thls-client [--connect ENDPOINT] batch FILE [--verify] [--cold]
//   thls-client print-request <dfg|benchmark> [options]
//   thls-client [--connect ENDPOINT] stats | ping | shutdown
//   thls-client [--connect ENDPOINT] cancel ID
//   thls-client [--connect ENDPOINT] telemetry
//   thls-client [--connect ENDPOINT] top  [--interval-ms N] [--count N]
//   thls-client [--connect ENDPOINT] tail [--interval-ms N] [--count N]
//
// telemetry prints one Prometheus text-exposition scrape (the `telemetry`
// wire op). top prints a one-line service summary per interval (queue
// depth, counters, rolling latency percentiles — a load-test dashboard).
// tail follows the telemetry stream and prints only the series whose
// values changed since the previous scrape. --count 0 (default) runs
// until interrupted.
//
// ENDPOINT is unix:/path or tcp:host:port (default unix:/tmp/thlsd.sock).
//
// optimize shares thls's spec flags (--catalog --lambda-det --lambda-rec
// --detection-only --area --max-instances --strategy --threads
// --time-limit --seed --no-bounds --no-screens --portfolio
// --no-close-pairs --metrics) and adds:
//   --kind K          minimize (default) | minimize_total_latency |
//                     area_frontier | latency_frontier
//   --lambda-total N  for minimize_total_latency
//   --sweep A,B,C     constraint values for the frontier kinds
//   --priority N --deadline-ms N --id S --cold
//   --verify          also solve locally on a cold engine and fail unless
//                     status, cost and bindings match the daemon's reply;
//                     the local run honors --threads (batch: overriding
//                     each request's own thread count — results are
//                     thread-count invariant, so any value is a valid
//                     referee) and the diff line reports the count used
//
// print-request writes the request's wire JSON (one line) to stdout —
// compose batch files with it. batch submits every line of FILE
// concurrently on its own connection (the CI smoke job's shape).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "common.hpp"

#include "service/client.hpp"
#include "util/strings.hpp"

using namespace ht;

namespace {

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) {
    std::fprintf(stderr, "thls-client: %s\n\n", error.c_str());
  }
  std::fputs(
      "usage: thls-client [--connect unix:PATH|tcp:HOST:PORT] <command>\n"
      "commands: optimize <dfg|benchmark> [options]\n"
      "          batch FILE [--verify] [--cold]\n"
      "          print-request <dfg|benchmark> [options]\n"
      "          stats [--assert-warm-hits] | ping | shutdown | cancel ID\n"
      "          telemetry | top [--interval-ms N] [--count N]\n"
      "          tail [--interval-ms N] [--count N]\n"
      "optimize options: thls spec flags plus --kind K --lambda-total N\n"
      "          --sweep A,B,C --priority N --deadline-ms N --id S --cold\n"
      "          --verify\n"
      "stats --assert-warm-hits exits 1 unless some market's last request\n"
      "          skipped combos via warm state (CI warm-restore check)\n",
      stderr);
  std::exit(2);
}

struct ClientOptions {
  std::string endpoint = "unix:/tmp/thlsd.sock";
  std::string command;
  std::string operand;  // graph, batch file, or cancel id
  tools::SpecOptions spec;
  tools::EngineOptions engine;
  std::string kind = "minimize";
  int lambda_total = 0;
  std::vector<long long> sweep;
  service::JobInfo job;
  bool verify = false;
  /// stats: exit nonzero unless some market shows warm-state skips on its
  /// most recent request (asserts a --warm-dir restore actually paid off).
  bool assert_warm_hits = false;
  /// --threads was given explicitly: batch --verify then overrides each
  /// parsed request's thread count for the local referee run.
  bool threads_set = false;
  /// top/tail: scrape cadence and iteration cap (0 = until interrupted).
  int interval_ms = 1000;
  int count = 0;
};

ClientOptions parse_args(int argc, char** argv) {
  ClientOptions options;
  int i = 1;
  if (i < argc && std::string(argv[i]) == "--connect") {
    if (i + 1 >= argc) usage("--connect needs a value");
    options.endpoint = argv[i + 1];
    i += 2;
  }
  if (i >= argc) usage();
  options.command = argv[i++];
  if (options.command == "optimize" || options.command == "print-request" ||
      options.command == "batch" || options.command == "cancel") {
    if (i >= argc) usage(options.command + " needs an operand");
    options.operand = argv[i++];
    options.spec.graph_arg = options.operand;
  }
  auto need_value = [&](const std::string& flag) -> std::string {
    if (i >= argc) usage("flag " + flag + " needs a value");
    return argv[i++];
  };
  while (i < argc) {
    const std::string flag = argv[i++];
    if (flag == "--catalog") {
      options.spec.catalog = need_value(flag);
    } else if (flag == "--lambda-det") {
      options.spec.lambda_det = std::stoi(need_value(flag));
    } else if (flag == "--lambda-rec") {
      options.spec.lambda_rec = std::stoi(need_value(flag));
    } else if (flag == "--detection-only") {
      options.spec.detection_only = true;
    } else if (flag == "--area") {
      options.spec.area = std::stoll(need_value(flag));
    } else if (flag == "--max-instances") {
      options.spec.max_instances = std::stoi(need_value(flag));
    } else if (flag == "--no-screens") {
      options.engine.static_screens = false;
    } else if (flag == "--no-close-pairs") {
      options.spec.close_pairs = false;
    } else if (flag == "--strategy") {
      options.engine.strategy = need_value(flag);
    } else if (flag == "--threads") {
      options.engine.threads = std::stoi(need_value(flag));
      options.threads_set = true;
    } else if (flag == "--time-limit") {
      options.engine.time_limit = std::stod(need_value(flag));
    } else if (flag == "--no-bounds") {
      options.engine.cost_bounds = false;
    } else if (flag == "--portfolio") {
      options.engine.portfolio = true;
    } else if (flag == "--metrics") {
      options.engine.metrics = true;
    } else if (flag == "--seed") {
      options.spec.seed = options.engine.seed =
          std::stoull(need_value(flag));
    } else if (flag == "--kind") {
      options.kind = need_value(flag);
    } else if (flag == "--lambda-total") {
      options.lambda_total = std::stoi(need_value(flag));
    } else if (flag == "--sweep") {
      for (const std::string& token :
           util::split(need_value(flag), ',')) {
        options.sweep.push_back(std::stoll(token));
      }
    } else if (flag == "--priority") {
      options.job.priority = std::stoi(need_value(flag));
    } else if (flag == "--deadline-ms") {
      options.job.deadline_seconds =
          std::stod(need_value(flag)) / 1000.0;
    } else if (flag == "--id") {
      options.job.id = need_value(flag);
    } else if (flag == "--cold") {
      options.job.warm = false;
    } else if (flag == "--verify") {
      options.verify = true;
    } else if (flag == "--assert-warm-hits") {
      options.assert_warm_hits = true;
    } else if (flag == "--interval-ms") {
      options.interval_ms = std::stoi(need_value(flag));
    } else if (flag == "--count") {
      options.count = std::stoi(need_value(flag));
    } else {
      usage("unknown flag " + flag);
    }
  }
  return options;
}

core::SynthesisRequest build_request(const ClientOptions& options) {
  core::SynthesisRequest request =
      tools::build_request(tools::build_spec(options.spec), options.engine);
  if (!core::parse_request_kind(options.kind, &request.kind)) {
    usage("unknown --kind " + options.kind);
  }
  request.lambda_total = options.lambda_total;
  request.sweep_values = options.sweep;
  return request;
}

/// The deterministic part of a response: statuses, costs, splits and
/// bindings — everything warm-state reuse must NOT change. Stats and
/// metrics (speed) are deliberately excluded.
service::Json outcome_json(const core::SynthesisResponse& response) {
  auto trim = [](const core::OptimizeResult& result) {
    const service::Json full = service::result_to_json(result);
    service::Json trimmed = service::Json::object();
    for (const auto& [key, value] : full.fields()) {
      if (key != "stats" && key != "metrics") trimmed.set(key, value);
    }
    return trimmed;
  };
  service::Json json = service::Json::object();
  json.set("kind", core::request_kind_name(response.kind));
  json.set("result", trim(response.result));
  json.set("lambda_detection", response.lambda_detection);
  json.set("lambda_recovery", response.lambda_recovery);
  service::Json frontier = service::Json::array();
  for (const core::FrontierPoint& point : response.frontier) {
    service::Json entry = service::Json::object();
    entry.set("constraint", point.constraint);
    entry.set("result", trim(point.result));
    frontier.push_back(std::move(entry));
  }
  json.set("frontier", std::move(frontier));
  return json;
}

/// Daemon reply vs. a local cold-engine run of the same request. Returns
/// true when the outcomes are bit-identical. The local run uses the
/// request's thread count as given (callers apply any --threads override
/// first); both report lines name it so a diff is attributable.
bool verify_against_local(const core::SynthesisRequest& request,
                          const core::SynthesisResponse& remote,
                          const std::string& label) {
  const int threads = request.parallelism.resolved_threads();
  const core::SynthesisResponse local = core::synthesize(request);
  const std::string remote_outcome = outcome_json(remote).dump();
  const std::string local_outcome = outcome_json(local).dump();
  if (remote_outcome == local_outcome) {
    std::printf(
        "%s: verify: daemon matches local cold engine (threads=%d)\n",
        label.c_str(), threads);
    return true;
  }
  std::fprintf(stderr,
               "%s: verify FAILED (threads=%d)\n  daemon: %s\n  local : %s\n",
               label.c_str(), threads, remote_outcome.c_str(),
               local_outcome.c_str());
  return false;
}

void print_reply(const std::string& label,
                 const service::Client::Reply& reply) {
  const core::OptimizeResult& result = reply.response.result;
  const service::Json& info = reply.envelope.get("service");
  std::printf("%s: status=%s cost=%lld combos=%ld nodes=%ld %s "
              "queue=%.1fms solve=%.1fms\n",
              label.c_str(), core::to_string(result.status).c_str(),
              result.cost, result.stats.combos_tried,
              result.stats.nodes_total,
              info.get("warm").as_bool(true) ? "warm" : "cold",
              info.get("queue_ms").as_double(0.0),
              info.get("solve_ms").as_double(0.0));
  for (const core::FrontierPoint& point : reply.response.frontier) {
    std::printf("  %s<=%lld: %s cost=%lld\n",
                reply.response.kind == core::RequestKind::kAreaFrontier
                    ? "area"
                    : "latency",
                point.constraint,
                core::to_string(point.result.status).c_str(),
                point.result.cost);
  }
}

int cmd_optimize(const ClientOptions& options) {
  const core::SynthesisRequest request = build_request(options);
  std::string error;
  const std::unique_ptr<service::Client> client =
      service::Client::connect(options.endpoint, &error);
  if (client == nullptr) {
    std::fprintf(stderr, "thls-client: %s\n", error.c_str());
    return 1;
  }
  const service::Client::Reply reply =
      client->synthesize(request, options.job);
  if (!reply.ok) {
    std::fprintf(stderr, "thls-client: %s: %s\n", reply.error_code.c_str(),
                 reply.error_message.c_str());
    return 1;
  }
  print_reply(options.operand, reply);
  if (options.verify &&
      !verify_against_local(request, reply.response, options.operand)) {
    return 1;
  }
  return reply.response.result.has_solution() ||
                 !reply.response.frontier.empty()
             ? 0
             : 1;
}

int cmd_print_request(const ClientOptions& options) {
  std::puts(service::serialize_request(build_request(options)).c_str());
  return 0;
}

int cmd_batch(const ClientOptions& options) {
  std::ifstream stream(options.operand);
  if (!stream.good()) {
    std::fprintf(stderr, "thls-client: cannot open %s\n",
                 options.operand.c_str());
    return 1;
  }
  std::vector<core::SynthesisRequest> requests;
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    core::SynthesisRequest request;
    std::string error;
    if (!service::parse_request(line, &request, &error)) {
      std::fprintf(stderr, "thls-client: %s line %zu: %s\n",
                   options.operand.c_str(), requests.size() + 1,
                   error.c_str());
      return 1;
    }
    requests.push_back(std::move(request));
  }
  if (requests.empty()) {
    std::fprintf(stderr, "thls-client: %s holds no requests\n",
                 options.operand.c_str());
    return 1;
  }

  // Every request on its own connection, all in flight at once.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(requests.size());
  for (std::size_t r = 0; r < requests.size(); ++r) {
    threads.emplace_back([&, r] {
      const std::string label =
          "batch[" + std::to_string(r) + "]";
      std::string error;
      const std::unique_ptr<service::Client> client =
          service::Client::connect(options.endpoint, &error);
      if (client == nullptr) {
        std::fprintf(stderr, "%s: %s\n", label.c_str(), error.c_str());
        ++failures;
        return;
      }
      service::JobInfo job = options.job;
      job.id = label;
      const service::Client::Reply reply =
          client->synthesize(requests[r], job);
      if (!reply.ok) {
        std::fprintf(stderr, "%s: %s: %s\n", label.c_str(),
                     reply.error_code.c_str(),
                     reply.error_message.c_str());
        ++failures;
        return;
      }
      print_reply(label, reply);
      if (options.verify) {
        // Honor the command line's --threads for the referee run (the
        // batch file's requests carry their own thread counts; results
        // are thread-count invariant, so overriding is safe and lets CI
        // verify at full width).
        core::SynthesisRequest local = requests[r];
        if (options.threads_set) {
          local.parallelism.threads = options.engine.threads;
        }
        if (!verify_against_local(local, reply.response, label)) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  if (failures.load() > 0) {
    std::fprintf(stderr, "thls-client: %d of %zu batch requests failed\n",
                 failures.load(), requests.size());
    return 1;
  }
  std::printf("batch: %zu requests ok\n", requests.size());
  return 0;
}

/// One `top` row from a stats() document: queue pressure, lifetime
/// counters, and the rolling latency percentiles.
void print_top_row(int tick, const service::Json& stats) {
  const service::Json& service = stats.get("service");
  const service::Json& latency = stats.get("latency");
  std::printf(
      "top[%d] queue=%lld/%lld submitted=%lld completed=%lld "
      "cancelled=%lld expired=%lld rejected=%lld",
      tick, service.get("queue_depth").as_int(0),
      service.get("queue_capacity").as_int(0),
      service.get("submitted").as_int(0),
      service.get("completed").as_int(0),
      service.get("cancelled").as_int(0),
      service.get("expired").as_int(0),
      service.get("rejected").as_int(0));
  if (latency.is_object()) {
    std::printf(" queue_p95=%.1fms e2e_p50=%.1fms e2e_p95=%.1fms",
                latency.get("queue_p95_s").as_double(0.0) * 1000.0,
                latency.get("e2e_p50_s").as_double(0.0) * 1000.0,
                latency.get("e2e_p95_s").as_double(0.0) * 1000.0);
  }
  std::printf("\n");
  std::fflush(stdout);
}

int cmd_top(service::Client& client, const ClientOptions& options) {
  for (int tick = 0; options.count == 0 || tick < options.count; ++tick) {
    if (tick > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max(1, options.interval_ms)));
    }
    std::string error;
    const std::optional<service::Json> stats = client.stats(&error);
    if (!stats.has_value()) {
      std::fprintf(stderr, "thls-client: %s\n", error.c_str());
      return 1;
    }
    print_top_row(tick, *stats);
  }
  return 0;
}

int cmd_tail(service::Client& client, const ClientOptions& options) {
  // Print only the sample lines whose value changed since the previous
  // scrape — `tail -f` over the telemetry counters. Headers (# lines)
  // never print; the first scrape establishes the baseline silently.
  std::map<std::string, std::string> previous;
  for (int tick = 0; options.count == 0 || tick < options.count; ++tick) {
    if (tick > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max(1, options.interval_ms)));
    }
    std::string error;
    const std::optional<std::string> body = client.telemetry(&error);
    if (!body.has_value()) {
      std::fprintf(stderr, "thls-client: %s\n", error.c_str());
      return 1;
    }
    std::istringstream lines(*body);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty() || line[0] == '#') continue;
      const std::size_t space = line.rfind(' ');
      if (space == std::string::npos) continue;
      const std::string series = line.substr(0, space);
      const std::string value = line.substr(space + 1);
      auto it = previous.find(series);
      const bool changed = it == previous.end() || it->second != value;
      previous[series] = value;
      if (tick > 0 && changed) {
        std::printf("%s\n", line.c_str());
      }
    }
    std::fflush(stdout);
  }
  return 0;
}

int with_client(const ClientOptions& options,
                int (*run)(service::Client&, const ClientOptions&)) {
  std::string error;
  const std::unique_ptr<service::Client> client =
      service::Client::connect(options.endpoint, &error);
  if (client == nullptr) {
    std::fprintf(stderr, "thls-client: %s\n", error.c_str());
    return 1;
  }
  return run(*client, options);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ClientOptions options = parse_args(argc, argv);
    if (options.command == "optimize") return cmd_optimize(options);
    if (options.command == "print-request") {
      return cmd_print_request(options);
    }
    if (options.command == "batch") return cmd_batch(options);
    if (options.command == "stats") {
      return with_client(options, [](service::Client& client,
                                     const ClientOptions& opts) {
        std::string error;
        const std::optional<service::Json> stats = client.stats(&error);
        if (!stats.has_value()) {
          std::fprintf(stderr, "thls-client: %s\n", error.c_str());
          return 1;
        }
        std::puts(stats->dump().c_str());
        if (opts.assert_warm_hits) {
          // The warm-restore smoke gate: at least one market's most recent
          // request must have skipped combos via warm state (dominance
          // cache hits seeded by earlier requests or a --warm-dir restore).
          const service::Json& markets = stats->get("markets");
          bool hit = false;
          for (const service::Json& market : markets.items()) {
            if (market.get("last_combos_skipped_cache").as_int(0) > 0) {
              hit = true;
              break;
            }
          }
          if (!hit) {
            std::fprintf(stderr,
                         "thls-client: no market shows warm-state skips "
                         "on its last request\n");
            return 1;
          }
        }
        return 0;
      });
    }
    if (options.command == "telemetry") {
      return with_client(options,
                         [](service::Client& client, const ClientOptions&) {
                           std::string error;
                           const std::optional<std::string> body =
                               client.telemetry(&error);
                           if (!body.has_value()) {
                             std::fprintf(stderr, "thls-client: %s\n",
                                          error.c_str());
                             return 1;
                           }
                           std::fputs(body->c_str(), stdout);
                           return 0;
                         });
    }
    if (options.command == "top") return with_client(options, cmd_top);
    if (options.command == "tail") return with_client(options, cmd_tail);
    if (options.command == "ping") {
      return with_client(options,
                         [](service::Client& client, const ClientOptions&) {
                           if (client.ping()) {
                             std::puts("pong");
                             return 0;
                           }
                           return 1;
                         });
    }
    if (options.command == "cancel") {
      return with_client(
          options, [](service::Client& client, const ClientOptions& opts) {
            const bool cancelled = client.cancel(opts.operand);
            std::printf("cancel %s: %s\n", opts.operand.c_str(),
                        cancelled ? "cancelled" : "no such live job");
            return cancelled ? 0 : 1;
          });
    }
    if (options.command == "shutdown") {
      return with_client(options,
                         [](service::Client& client, const ClientOptions&) {
                           return client.shutdown_server() ? 0 : 1;
                         });
    }
    usage("unknown command " + options.command);
  } catch (const util::Error& error) {
    std::fprintf(stderr, "thls-client: %s\n", error.what());
    return 1;
  }
}
