// thlsd — synthesis-as-a-service daemon.
//
// Serves the JSON-lines protocol of src/service/server.hpp on a Unix
// socket (default /tmp/thlsd.sock) and/or a loopback TCP port, running
// every request through per-vendor-market warm engine pools: same-market
// requests run concurrently over a shared immutable warm-state snapshot
// and fold what they learn back in, so repeated requests reuse the
// accumulated infeasibility proofs, nogoods, and LP-bound memos of
// earlier ones — same answers, fewer nodes. See DESIGN.md §5.
//
//   thlsd [--socket PATH] [--tcp [PORT]] [--workers N] [--queue N]
//         [--max-line BYTES] [--engine-pool N] [--warm-dir DIR]
//         [--journal PATH] [--flight-dir DIR] [--telemetry PATH]
//         [--telemetry-period-ms N]
//
//   --socket PATH    Unix socket path (default /tmp/thlsd.sock;
//                    "" disables)
//   --tcp [PORT]     also listen on 127.0.0.1:PORT (0 or omitted PORT =
//                    kernel-assigned; the chosen port is printed)
//   --workers N      concurrent solves (default 2)
//   --queue N        admission queue depth (default 32); a full queue
//                    rejects with a structured queue_full error
//   --max-line BYTES reject longer protocol lines (default 4 MiB)
//   --engine-pool N  warm engines per market (default 0 = match workers;
//                    1 serializes same-market requests, the old behavior)
//   --warm-dir DIR   persist per-market warm-state snapshots: restore
//                    market-<hex>.json files from DIR on start, write the
//                    published snapshots back on shutdown, so a restarted
//                    daemon skips the warm-up cliff
//   --journal PATH   append-only request-lifecycle journal (JSON lines;
//                    see src/obs/journal.hpp): one admit and exactly one
//                    terminal event per request, keyed by request id
//   --flight-dir DIR flight recorder: keep a ring of recent service spans
//                    per worker and dump req-<id>.trace.json into DIR when
//                    a request misses its deadline, is cancelled, or runs
//                    anomalously slow (see src/obs/flight_recorder.hpp)
//   --telemetry PATH periodically write the Prometheus text exposition
//                    (the `telemetry` wire op's body) to PATH via
//                    tmp+rename, for file-based scrapers
//   --telemetry-period-ms N   rewrite interval (default 1000)
//
// Stop with SIGINT/SIGTERM or the protocol op {"op":"shutdown"}.
#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/journal.hpp"
#include "service/server.hpp"

using namespace ht;

namespace {

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::fprintf(stderr, "thlsd: %s\n\n", error.c_str());
  std::fputs(
      "usage: thlsd [--socket PATH] [--tcp [PORT]] [--workers N]\n"
      "             [--queue N] [--max-line BYTES] [--engine-pool N]\n"
      "             [--warm-dir DIR] [--journal PATH] [--flight-dir DIR]\n"
      "             [--telemetry PATH] [--telemetry-period-ms N]\n",
      stderr);
  std::exit(2);
}

/// Loads every market-*.json snapshot in `dir` into the service. Files
/// that fail to parse are skipped with a warning — a stale or corrupt
/// snapshot must never stop the daemon (worst case it starts cold).
int restore_warm_snapshots(const std::string& dir,
                           service::SynthesisService& service) {
  DIR* handle = opendir(dir.c_str());
  if (handle == nullptr) return 0;  // absent dir = first run, start cold
  int restored = 0;
  while (dirent* entry = readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.size() < 13 || name.compare(0, 7, "market-") != 0 ||
        name.compare(name.size() - 5, 5, ".json") != 0) {
      continue;
    }
    const std::string path = dir + "/" + name;
    std::ifstream in(path);
    if (!in) continue;
    std::ostringstream text;
    text << in.rdbuf();
    auto snapshot = std::make_shared<core::WarmSnapshot>();
    std::string error;
    if (!service::parse_warm_snapshot(text.str(), snapshot.get(), &error)) {
      std::fprintf(stderr, "thlsd: skipping %s: %s\n", path.c_str(),
                   error.c_str());
      continue;
    }
    service.import_warm(std::move(snapshot));
    ++restored;
  }
  closedir(handle);
  return restored;
}

/// Writes every published snapshot to `dir` as market-<hex16>.json.
int save_warm_snapshots(const std::string& dir,
                        service::SynthesisService& service) {
  ::mkdir(dir.c_str(), 0755);  // best effort; open() below reports failures
  int saved = 0;
  for (const core::WarmSnapshotPtr& snapshot : service.export_warm()) {
    char name[48];
    std::snprintf(name, sizeof name, "market-%016llx.json",
                  static_cast<unsigned long long>(snapshot->market));
    const std::string path = dir + "/" + name;
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "thlsd: cannot write %s\n", path.c_str());
      continue;
    }
    out << service::serialize_warm_snapshot(*snapshot) << "\n";
    ++saved;
  }
  return saved;
}

}  // namespace

int main(int argc, char** argv) {
  service::ServerConfig config;
  config.unix_path = "/tmp/thlsd.sock";
  std::string warm_dir;
  std::string journal_path;
  std::string flight_dir;
  std::string telemetry_path;
  int telemetry_period_ms = 1000;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need_value = [&]() -> std::string {
      if (i + 1 >= argc) usage("flag " + flag + " needs a value");
      return argv[++i];
    };
    if (flag == "--socket") {
      config.unix_path = need_value();
    } else if (flag == "--tcp") {
      config.tcp = true;
      // Optional port operand; 0 / absent asks the kernel for one.
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        config.tcp_port = std::stoi(argv[++i]);
      }
    } else if (flag == "--workers") {
      config.service.workers = std::stoi(need_value());
    } else if (flag == "--queue") {
      config.service.queue_capacity =
          static_cast<std::size_t>(std::stoull(need_value()));
    } else if (flag == "--max-line") {
      config.max_line_bytes =
          static_cast<std::size_t>(std::stoull(need_value()));
    } else if (flag == "--engine-pool") {
      config.service.engine_pool = std::stoi(need_value());
    } else if (flag == "--warm-dir") {
      warm_dir = need_value();
    } else if (flag == "--journal") {
      journal_path = need_value();
    } else if (flag == "--flight-dir") {
      flight_dir = need_value();
    } else if (flag == "--telemetry") {
      telemetry_path = need_value();
    } else if (flag == "--telemetry-period-ms") {
      telemetry_period_ms = std::stoi(need_value());
    } else {
      usage("unknown flag " + flag);
    }
  }
  if (config.unix_path.empty() && !config.tcp) {
    usage("nothing to listen on (--socket \"\" and no --tcp)");
  }

  // Route SIGINT/SIGTERM to a dedicated watcher thread (inherited mask
  // keeps them blocked everywhere else) so shutdown runs in a normal
  // thread context instead of a signal handler.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  // Observability sinks must outlive the Server (the service keeps raw
  // pointers), so they are built first and the config points at them.
  std::unique_ptr<obs::RequestJournal> journal;
  if (!journal_path.empty()) {
    std::string journal_error;
    journal = obs::RequestJournal::open(journal_path, &journal_error);
    if (journal == nullptr) {
      std::fprintf(stderr, "thlsd: cannot open journal %s: %s\n",
                   journal_path.c_str(), journal_error.c_str());
      return 1;
    }
    config.service.journal = journal.get();
  }
  std::unique_ptr<obs::FlightRecorder> flight;
  if (!flight_dir.empty()) {
    obs::FlightRecorderConfig flight_config;
    flight_config.dump_dir = flight_dir;
    flight = std::make_unique<obs::FlightRecorder>(flight_config);
    config.service.flight = flight.get();
  }

  service::Server server(config);
  // Restore before the listeners exist: the very first request a client
  // can reach the daemon with must already see the warm snapshots.
  if (!warm_dir.empty()) {
    const int restored = restore_warm_snapshots(warm_dir, server.service());
    std::printf("thlsd: restored %d warm snapshot(s) from %s\n", restored,
                warm_dir.c_str());
  }
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "thlsd: %s\n", error.c_str());
    return 1;
  }
  std::thread([&server, signals] {
    int received = 0;
    sigwait(&signals, &received);
    std::fprintf(stderr, "thlsd: caught %s, shutting down\n",
                 strsignal(received));
    server.request_stop();
  }).detach();

  if (!server.unix_path().empty()) {
    std::printf("thlsd: listening on unix:%s\n", server.unix_path().c_str());
  }
  if (server.tcp_port() >= 0) {
    std::printf("thlsd: listening on tcp:127.0.0.1:%d\n", server.tcp_port());
  }
  std::printf("thlsd: %d workers, queue depth %zu\n",
              config.service.workers, config.service.queue_capacity);
  std::fflush(stdout);

  // File-based telemetry: rewrite the Prometheus exposition atomically
  // (tmp + rename) every period, so a scraper never reads a torn file.
  std::mutex telemetry_mutex;
  std::condition_variable telemetry_cv;
  bool telemetry_stop = false;
  std::thread telemetry_thread;
  if (!telemetry_path.empty()) {
    telemetry_thread = std::thread([&] {
      const auto period =
          std::chrono::milliseconds(std::max(1, telemetry_period_ms));
      const std::string tmp_path = telemetry_path + ".tmp";
      while (true) {
        {
          std::ofstream out(tmp_path, std::ios::trunc);
          if (out) {
            out << server.service().telemetry();
            out.close();
            if (out.good()) {
              std::rename(tmp_path.c_str(), telemetry_path.c_str());
            }
          }
        }
        std::unique_lock<std::mutex> lock(telemetry_mutex);
        if (telemetry_cv.wait_for(lock, period,
                                  [&] { return telemetry_stop; })) {
          return;
        }
      }
    });
  }

  server.wait();
  server.stop();
  if (telemetry_thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(telemetry_mutex);
      telemetry_stop = true;
    }
    telemetry_cv.notify_all();
    telemetry_thread.join();
  }
  // Persist warm state only after stop(): workers have joined, so every
  // in-flight delta has been folded into its market's published snapshot.
  if (!warm_dir.empty()) {
    const int saved = save_warm_snapshots(warm_dir, server.service());
    std::printf("thlsd: saved %d warm snapshot(s) to %s\n", saved,
                warm_dir.c_str());
  }
  std::puts("thlsd: stopped");
  return 0;
}
