// thlsd — synthesis-as-a-service daemon.
//
// Serves the JSON-lines protocol of src/service/server.hpp on a Unix
// socket (default /tmp/thlsd.sock) and/or a loopback TCP port, running
// every request through per-vendor-market warm engines: repeated requests
// against the same market reuse the accumulated infeasibility proofs,
// nogoods, and LP-bound memos of earlier ones — same answers, fewer
// nodes. See DESIGN.md §5.
//
//   thlsd [--socket PATH] [--tcp [PORT]] [--workers N] [--queue N]
//         [--max-line BYTES]
//
//   --socket PATH    Unix socket path (default /tmp/thlsd.sock;
//                    "" disables)
//   --tcp [PORT]     also listen on 127.0.0.1:PORT (0 or omitted PORT =
//                    kernel-assigned; the chosen port is printed)
//   --workers N      concurrent solves (default 2)
//   --queue N        admission queue depth (default 32); a full queue
//                    rejects with a structured queue_full error
//   --max-line BYTES reject longer protocol lines (default 4 MiB)
//
// Stop with SIGINT/SIGTERM or the protocol op {"op":"shutdown"}.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "service/server.hpp"

using namespace ht;

namespace {

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::fprintf(stderr, "thlsd: %s\n\n", error.c_str());
  std::fputs(
      "usage: thlsd [--socket PATH] [--tcp [PORT]] [--workers N]\n"
      "             [--queue N] [--max-line BYTES]\n",
      stderr);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  service::ServerConfig config;
  config.unix_path = "/tmp/thlsd.sock";

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need_value = [&]() -> std::string {
      if (i + 1 >= argc) usage("flag " + flag + " needs a value");
      return argv[++i];
    };
    if (flag == "--socket") {
      config.unix_path = need_value();
    } else if (flag == "--tcp") {
      config.tcp = true;
      // Optional port operand; 0 / absent asks the kernel for one.
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        config.tcp_port = std::stoi(argv[++i]);
      }
    } else if (flag == "--workers") {
      config.service.workers = std::stoi(need_value());
    } else if (flag == "--queue") {
      config.service.queue_capacity =
          static_cast<std::size_t>(std::stoull(need_value()));
    } else if (flag == "--max-line") {
      config.max_line_bytes =
          static_cast<std::size_t>(std::stoull(need_value()));
    } else {
      usage("unknown flag " + flag);
    }
  }
  if (config.unix_path.empty() && !config.tcp) {
    usage("nothing to listen on (--socket \"\" and no --tcp)");
  }

  // Route SIGINT/SIGTERM to a dedicated watcher thread (inherited mask
  // keeps them blocked everywhere else) so shutdown runs in a normal
  // thread context instead of a signal handler.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  service::Server server(config);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "thlsd: %s\n", error.c_str());
    return 1;
  }
  std::thread([&server, signals] {
    int received = 0;
    sigwait(&signals, &received);
    std::fprintf(stderr, "thlsd: caught %s, shutting down\n",
                 strsignal(received));
    server.request_stop();
  }).detach();

  if (!server.unix_path().empty()) {
    std::printf("thlsd: listening on unix:%s\n", server.unix_path().c_str());
  }
  if (server.tcp_port() >= 0) {
    std::printf("thlsd: listening on tcp:127.0.0.1:%d\n", server.tcp_port());
  }
  std::printf("thlsd: %d workers, queue depth %zu\n",
              config.service.workers, config.service.queue_capacity);
  std::fflush(stdout);

  server.wait();
  server.stop();
  std::puts("thlsd: stopped");
  return 0;
}
