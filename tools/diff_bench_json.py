#!/usr/bin/env python3
"""Diff two bench --json logs on statuses and costs (never timings).

Usage: diff_bench_json.py BASELINE.json CANDIDATE.json

Rows are keyed by (benchmark, n, lambda, area, threads). Only keys present
in both files are compared — the candidate may be a subset (e.g. a
`--fast` run against the full committed log). A status or cost difference
on any shared key is a failure; wall clocks, node counts and skip counters
are reported nowhere because they are load- and machine-dependent.

Exit status: 0 = all shared rows match, 1 = mismatch or unusable input.
"""

import json
import sys


def load_rows(path):
    with open(path) as handle:
        rows = json.load(handle)
    indexed = {}
    for row in rows:
        key = (row["benchmark"], row["n"], row["lambda"], row["area"],
               row["threads"])
        if key in indexed:
            raise SystemExit(f"{path}: duplicate row key {key}")
        indexed[key] = row
    return indexed


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    baseline = load_rows(sys.argv[1])
    candidate = load_rows(sys.argv[2])
    shared = sorted(set(baseline) & set(candidate))
    if not shared:
        print("diff_bench_json: no shared row keys — nothing was compared")
        return 1

    mismatches = []
    for key in shared:
        base, cand = baseline[key], candidate[key]
        for field in ("status", "cost"):
            if base[field] != cand[field]:
                mismatches.append(
                    f"  {key}: {field} {base[field]!r} -> {cand[field]!r}")
    if mismatches:
        print(f"diff_bench_json: {len(mismatches)} mismatch(es) over "
              f"{len(shared)} shared rows:")
        print("\n".join(mismatches))
        return 1
    print(f"diff_bench_json: {len(shared)} shared rows match "
          f"(statuses and costs identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
