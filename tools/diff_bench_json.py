#!/usr/bin/env python3
"""Diff two bench --json logs on statuses and costs (never timings).

Usage: diff_bench_json.py BASELINE.json CANDIDATE.json

Rows are keyed by (benchmark, n, lambda, area, threads). Added and removed
keys are reported informationally — bench sections come and go as the
suite grows, and a `--fast` candidate is a legitimate subset of the full
committed log. Shared keys are judged on proof strength and cost:

  * statuses are ranked unknown < feasible < {optimal, infeasible}; a
    candidate may hold or *upgrade* a row (sound pruning finishes proofs
    the baseline left truncated) but never downgrade it, and never flip
    between the two terminal proofs (optimal <-> infeasible is a
    contradiction, not an upgrade);
  * costs are compared only when both sides hold a solution — a row that
    timed out before its first incumbent has no cost to compare.

Wall clocks, node counts and skip counters are compared nowhere because
they are load- and machine-dependent.

Rows carrying an embedded per-stage "metrics" object (see
obs/metrics.hpp) are reported informationally only: drift in a stage
count, a prune-reason split, or a field appearing/disappearing is noted,
never failed — stage timings and histograms vary with load by design.
The racing-portfolio attribution keys (time_to_incumbent_s,
time_to_best_s, winner_member — emitted only by portfolio-aware runs)
get the same treatment: time-to-first-incumbent / time-to-best shifts
and winner-member flips are noted, never failed, because they are
wall-clock races; the committed status/cost those races produce is what
the hard checks above already cover.

Service-throughput summary rows (status "batch", emitted by the
bench's same-market concurrency section with req_per_sec /
latency_p50_s / latency_p95_s / latency_max_s) are likewise
informational only: requests/sec and latency percentiles are
machine-dependent, so shifts are noted, never failed. The hard contract
of that section — every concurrent reply bit-identical to a cold solve
— rides in its per-request service_pool* rows, whose statuses and
costs get the normal checks; the section's own exit gate enforces the
rest. The journal A/B row (service_throughput/pool4_journal) gets the
same treatment: its req/s delta vs. pool4 is the observability tax,
surfaced as a note while the bench's own gate bounds it. Logs from
before a section existed simply lack its rows, which the added/removed
reporting already tolerates.

Exit status: 0 = no regression on any shared row, 1 = regression
(status downgrade, terminal-proof contradiction, or cost change) or
unusable input.
"""

import json
import sys

# Proof strength; optimal and infeasible are both terminal proofs.
RANK = {"unknown": 0, "feasible": 1, "optimal": 2, "infeasible": 2}

# Non-solve statuses judged informationally only (no proof to rank).
INFORMATIONAL_STATUSES = ("batch",)


def has_solution(row):
    return row["status"] in ("feasible", "optimal")


def load_rows(path):
    with open(path) as handle:
        rows = json.load(handle)
    indexed = {}
    for row in rows:
        key = (row["benchmark"], row["n"], row["lambda"], row["area"],
               row["threads"])
        if key in indexed:
            raise SystemExit(f"{path}: duplicate row key {key}")
        if (row["status"] not in RANK
                and row["status"] not in INFORMATIONAL_STATUSES):
            raise SystemExit(f"{path}: row {key} has unknown status "
                             f"{row['status']!r}")
        indexed[key] = row
    return indexed


def note_metric_drift(key, base, cand):
    """Informational-only comparison of embedded per-stage metrics.

    Prints notes about structural drift (fields present on one side only,
    stage-count or prune-count changes); returns nothing and never fails
    the diff — per-stage observations are not part of the contract the
    diff enforces.
    """
    base_m, cand_m = base.get("metrics"), cand.get("metrics")
    if base_m is None and cand_m is None:
        return
    if base_m is None or cand_m is None:
        side = "candidate" if base_m is None else "baseline"
        print(f"diff_bench_json: note: {key}: per-stage metrics only in "
              f"{side} row")
        return
    base_stages = base_m.get("stages", {})
    cand_stages = cand_m.get("stages", {})
    for name in sorted(set(base_stages) | set(cand_stages)):
        base_count = base_stages.get(name, {}).get("count", 0)
        cand_count = cand_stages.get(name, {}).get("count", 0)
        if base_count != cand_count:
            print(f"diff_bench_json: note: {key}: stage {name!r} count "
                  f"{base_count} -> {cand_count}")
    base_prunes = base_m.get("prunes", {})
    cand_prunes = cand_m.get("prunes", {})
    for name in sorted(set(base_prunes) | set(cand_prunes)):
        if base_prunes.get(name, 0) != cand_prunes.get(name, 0):
            print(f"diff_bench_json: note: {key}: prunes[{name!r}] "
                  f"{base_prunes.get(name, 0)} -> {cand_prunes.get(name, 0)}")
    note_ns_per_node(key, base, cand)


def ns_per_node(row):
    """csp_dispatch stage nanoseconds per CSP node, or None.

    The per-stage ns/node is the solver's single-thread throughput metric
    (the one the flat-state work is judged on): total csp_dispatch stage
    time over every node the row's sub-searches ran.
    """
    stage = (row.get("metrics") or {}).get("stages", {}).get("csp_dispatch")
    nodes = row.get("nodes_total", 0)
    if not stage or nodes <= 0:
        return None
    return stage.get("total_ns", 0) / nodes


def note_ns_per_node(key, base, cand):
    """Informational throughput note so ns/node trends show up in review.

    Never fails the diff: wall-clock-derived, so load- and
    machine-dependent — but a consistent multi-row drift is exactly what a
    reviewer wants surfaced.
    """
    base_npn, cand_npn = ns_per_node(base), ns_per_node(cand)
    if base_npn is None or cand_npn is None:
        return
    ratio = cand_npn / base_npn if base_npn > 0 else float("inf")
    print(f"diff_bench_json: note: {key}: csp_dispatch ns/node "
          f"{base_npn:.1f} -> {cand_npn:.1f} ({ratio:.2f}x)")


def note_portfolio_drift(key, base, cand):
    """Informational portfolio-attribution notes (racing portfolio rows).

    Keys are absent on pre-portfolio logs and on rows that never raced or
    never held a solution, so every access tolerates a missing field.
    Never fails the diff: which member wins and how fast an incumbent
    lands are wall-clock outcomes, load-dependent by nature — but a
    winner flip or a big time-to-best swing is exactly the kind of drift
    a reviewer wants surfaced next to the hard status/cost checks.
    """
    for field in ("time_to_incumbent_s", "time_to_best_s"):
        base_t, cand_t = base.get(field), cand.get(field)
        if base_t is None and cand_t is None:
            continue
        if base_t is None or cand_t is None:
            side = "candidate" if base_t is None else "baseline"
            print(f"diff_bench_json: note: {key}: {field} only in "
                  f"{side} row")
            continue
        ratio = cand_t / base_t if base_t > 0 else float("inf")
        if base_t != cand_t:
            print(f"diff_bench_json: note: {key}: {field} "
                  f"{base_t:.4f} -> {cand_t:.4f} ({ratio:.2f}x)")
    base_w, cand_w = base.get("winner_member"), cand.get("winner_member")
    if base_w != cand_w:
        print(f"diff_bench_json: note: {key}: winner_member "
              f"{base_w!r} -> {cand_w!r}")


def note_service_drift(key, base, cand):
    """Informational service-throughput notes (status "batch" rows).

    Requests/sec and latency percentiles are load- and core-count-
    dependent, so every shift is a note, never a failure — the bench's
    own exit gate enforces the >=3x and identity contracts on a known
    machine; here a reviewer just wants the trend surfaced.
    """
    for field in ("req_per_sec", "latency_p50_s", "latency_p95_s",
                  "latency_max_s"):
        base_v, cand_v = base.get(field), cand.get(field)
        if base_v is None and cand_v is None:
            continue
        if base_v is None or cand_v is None:
            side = "candidate" if base_v is None else "baseline"
            print(f"diff_bench_json: note: {key}: {field} only in "
                  f"{side} row")
            continue
        if base_v != cand_v:
            ratio = cand_v / base_v if base_v > 0 else float("inf")
            print(f"diff_bench_json: note: {key}: {field} "
                  f"{base_v:.4f} -> {cand_v:.4f} ({ratio:.2f}x)")


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    baseline = load_rows(sys.argv[1])
    candidate = load_rows(sys.argv[2])
    shared = sorted(set(baseline) & set(candidate))
    added = sorted(set(candidate) - set(baseline))
    removed = sorted(set(baseline) - set(candidate))

    for key in added:
        print(f"diff_bench_json: note: added row {key}")
    for key in removed:
        print(f"diff_bench_json: note: removed row {key}")
    if not shared:
        print("diff_bench_json: no shared row keys — nothing was compared")
        return 1

    regressions = []
    upgrades = 0
    for key in shared:
        base, cand = baseline[key], candidate[key]
        if (base["status"] in INFORMATIONAL_STATUSES
                or cand["status"] in INFORMATIONAL_STATUSES):
            if base["status"] != cand["status"]:
                print(f"diff_bench_json: note: {key}: status "
                      f"{base['status']!r} -> {cand['status']!r}")
            note_service_drift(key, base, cand)
            continue
        base_rank, cand_rank = RANK[base["status"]], RANK[cand["status"]]
        if cand_rank < base_rank:
            regressions.append(f"  {key}: status downgraded "
                               f"{base['status']!r} -> {cand['status']!r}")
            continue
        if (base_rank == 2 and base["status"] != cand["status"]):
            regressions.append(f"  {key}: terminal proofs contradict: "
                               f"{base['status']!r} -> {cand['status']!r}")
            continue
        if cand_rank > base_rank:
            upgrades += 1
            print(f"diff_bench_json: note: upgraded row {key}: "
                  f"{base['status']!r} -> {cand['status']!r}")
        if (has_solution(base) and has_solution(cand)
                and base["cost"] != cand["cost"]):
            regressions.append(f"  {key}: cost {base['cost']!r} -> "
                               f"{cand['cost']!r}")
        note_portfolio_drift(key, base, cand)
        note_metric_drift(key, base, cand)

    if regressions:
        print(f"diff_bench_json: {len(regressions)} regression(s) over "
              f"{len(shared)} shared rows:")
        print("\n".join(regressions))
        return 1
    summary = f"diff_bench_json: {len(shared)} shared rows hold"
    if upgrades:
        summary += f" ({upgrades} upgraded)"
    if added or removed:
        summary += f"; {len(added)} added, {len(removed)} removed"
    print(summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
