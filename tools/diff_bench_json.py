#!/usr/bin/env python3
"""Diff two bench --json logs on statuses and costs (never timings).

Usage: diff_bench_json.py BASELINE.json CANDIDATE.json

Rows are keyed by (benchmark, n, lambda, area, threads). Added and removed
keys are reported informationally — bench sections come and go as the
suite grows, and a `--fast` candidate is a legitimate subset of the full
committed log. Shared keys are judged on proof strength and cost:

  * statuses are ranked unknown < feasible < {optimal, infeasible}; a
    candidate may hold or *upgrade* a row (sound pruning finishes proofs
    the baseline left truncated) but never downgrade it, and never flip
    between the two terminal proofs (optimal <-> infeasible is a
    contradiction, not an upgrade);
  * costs are compared only when both sides hold a solution — a row that
    timed out before its first incumbent has no cost to compare.

Wall clocks, node counts and skip counters are compared nowhere because
they are load- and machine-dependent.

Exit status: 0 = no regression on any shared row, 1 = regression
(status downgrade, terminal-proof contradiction, or cost change) or
unusable input.
"""

import json
import sys

# Proof strength; optimal and infeasible are both terminal proofs.
RANK = {"unknown": 0, "feasible": 1, "optimal": 2, "infeasible": 2}


def has_solution(row):
    return row["status"] in ("feasible", "optimal")


def load_rows(path):
    with open(path) as handle:
        rows = json.load(handle)
    indexed = {}
    for row in rows:
        key = (row["benchmark"], row["n"], row["lambda"], row["area"],
               row["threads"])
        if key in indexed:
            raise SystemExit(f"{path}: duplicate row key {key}")
        if row["status"] not in RANK:
            raise SystemExit(f"{path}: row {key} has unknown status "
                             f"{row['status']!r}")
        indexed[key] = row
    return indexed


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    baseline = load_rows(sys.argv[1])
    candidate = load_rows(sys.argv[2])
    shared = sorted(set(baseline) & set(candidate))
    added = sorted(set(candidate) - set(baseline))
    removed = sorted(set(baseline) - set(candidate))

    for key in added:
        print(f"diff_bench_json: note: added row {key}")
    for key in removed:
        print(f"diff_bench_json: note: removed row {key}")
    if not shared:
        print("diff_bench_json: no shared row keys — nothing was compared")
        return 1

    regressions = []
    upgrades = 0
    for key in shared:
        base, cand = baseline[key], candidate[key]
        base_rank, cand_rank = RANK[base["status"]], RANK[cand["status"]]
        if cand_rank < base_rank:
            regressions.append(f"  {key}: status downgraded "
                               f"{base['status']!r} -> {cand['status']!r}")
            continue
        if (base_rank == 2 and base["status"] != cand["status"]):
            regressions.append(f"  {key}: terminal proofs contradict: "
                               f"{base['status']!r} -> {cand['status']!r}")
            continue
        if cand_rank > base_rank:
            upgrades += 1
            print(f"diff_bench_json: note: upgraded row {key}: "
                  f"{base['status']!r} -> {cand['status']!r}")
        if (has_solution(base) and has_solution(cand)
                and base["cost"] != cand["cost"]):
            regressions.append(f"  {key}: cost {base['cost']!r} -> "
                               f"{cand['cost']!r}")

    if regressions:
        print(f"diff_bench_json: {len(regressions)} regression(s) over "
              f"{len(shared)} shared rows:")
        print("\n".join(regressions))
        return 1
    summary = f"diff_bench_json: {len(shared)} shared rows hold"
    if upgrades:
        summary += f" ({upgrades} upgraded)"
    if added or removed:
        summary += f"; {len(added)} added, {len(removed)} removed"
    print(summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
