#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by `thls --trace`,
a flight-recorder dump produced by `thlsd --flight-dir`, or (with
--journal) a request-lifecycle journal produced by `thlsd --journal`.

Trace mode checks, in order:
  1. schema  — the file is either {"traceEvents": [...]} or a bare event
     list; every event has a string `name`, `ph` in {B, E, X, i, M},
     numeric `ts` >= 0, and integer `pid`/`tid`. "X" (complete) events —
     the flight recorder's dump format — must also carry a numeric
     `dur` >= 0.
  2. balance — per (pid, tid), B/E events form properly nested spans with
     matching names, and nothing is left open at the end. X events are
     self-contained and exempt.
  3. order   — per (pid, tid), timestamps never decrease in file order
     (the exporter merges deterministically by timestamp then sequence).

Optionally, --require-span NAME (repeatable) asserts that at least one
complete span with that exact name exists anywhere in the trace — CI uses
this to prove every instrumented solver layer actually emitted events.
X events count as complete spans.

Journal mode (--journal) validates a JSON-lines request journal instead
(see src/obs/journal.hpp):
  1. schema    — every line parses as an object with string `event`,
     integer `journal_version`/`seq`/`ts_ms`, and `req` >= 1.
  2. sequence  — `seq` is strictly increasing in file order.
  3. lifecycle — per request id: exactly one `admit` (or `reject`), at
     most one terminal event (`end`/`cancel`/`deadline_miss`/`drop`), the
     admit precedes every other event of that request, and any
     `solve_start` precedes the terminal. --require-terminals asserts
     every admitted request reached a terminal (use after the daemon has
     shut down, when no request can still be in flight).

Exit status: 0 when the file passes every check, 1 otherwise.

Usage:
  python3 tools/check_trace_json.py trace.json \
      --require-span stage/screen --require-span stage/csp
  python3 tools/check_trace_json.py thlsd.journal --journal \
      --require-terminals
"""

import argparse
import json
import sys

VALID_PHASES = {"B", "E", "X", "i", "M"}

JOURNAL_TERMINALS = {"end", "cancel", "deadline_miss", "drop"}
JOURNAL_TYPES = JOURNAL_TERMINALS | {
    "admit",
    "reject",
    "dequeue",
    "warm_attach",
    "solve_start",
    "incumbent",
}


def fail(message):
    print(f"check_trace_json: FAIL: {message}", file=sys.stderr)
    return 1


def load_events(path):
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        events = data.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("top-level object has no 'traceEvents' list")
        return events
    if isinstance(data, list):
        return data
    raise ValueError("top level must be an object or a list")


def check_schema(events):
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            return f"event #{i} is not an object"
        name = event.get("name")
        if not isinstance(name, str) or not name:
            return f"event #{i} has no string 'name'"
        phase = event.get("ph")
        if phase not in VALID_PHASES:
            return f"event #{i} ({name}) has invalid ph {phase!r}"
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            return f"event #{i} ({name}) has invalid ts {ts!r}"
        if phase == "X":
            dur = event.get("dur")
            if (
                not isinstance(dur, (int, float))
                or isinstance(dur, bool)
                or dur < 0
            ):
                return f"event #{i} ({name}) has invalid dur {dur!r}"
        for key in ("pid", "tid"):
            value = event.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                return f"event #{i} ({name}) has invalid {key} {value!r}"
    return None


def check_balance(events):
    stacks = {}  # (pid, tid) -> [names of open spans]
    for i, event in enumerate(events):
        if event["ph"] not in ("B", "E"):
            continue
        key = (event["pid"], event["tid"])
        stack = stacks.setdefault(key, [])
        if event["ph"] == "B":
            stack.append(event["name"])
        else:
            if not stack:
                return f"event #{i}: E '{event['name']}' with no open span on tid {key[1]}"
            top = stack.pop()
            if top != event["name"]:
                return (
                    f"event #{i}: E '{event['name']}' does not match open "
                    f"span '{top}' on tid {key[1]}"
                )
    for (pid, tid), stack in stacks.items():
        if stack:
            return f"tid {tid}: spans left open at end of trace: {stack}"
    return None


def check_order(events):
    last = {}  # (pid, tid) -> last ts
    for i, event in enumerate(events):
        key = (event["pid"], event["tid"])
        ts = event["ts"]
        if key in last and ts < last[key]:
            return (
                f"event #{i} ({event['name']}): ts {ts} decreases from "
                f"{last[key]} on tid {key[1]}"
            )
        last[key] = ts
    return None


def check_required(events, required):
    complete = set()
    stacks = {}
    for event in events:
        if event["ph"] == "B":
            stacks.setdefault((event["pid"], event["tid"]), []).append(
                event["name"]
            )
        elif event["ph"] == "E":
            stack = stacks.get((event["pid"], event["tid"]), [])
            if stack and stack[-1] == event["name"]:
                stack.pop()
                complete.add(event["name"])
        elif event["ph"] == "X":
            complete.add(event["name"])
    missing = [name for name in required if name not in complete]
    if missing:
        return f"required spans missing from trace: {missing}"
    return None


def load_journal(path):
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"line {lineno}: {error}") from error
            if not isinstance(event, dict):
                raise ValueError(f"line {lineno}: not an object")
            events.append((lineno, event))
    return events


def check_journal_schema(events):
    for lineno, event in events:
        kind = event.get("event")
        if kind not in JOURNAL_TYPES:
            return f"line {lineno}: invalid event {kind!r}"
        for key in ("journal_version", "seq", "ts_ms"):
            value = event.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                return f"line {lineno} ({kind}): invalid {key} {value!r}"
        req = event.get("req")
        if not isinstance(req, int) or isinstance(req, bool) or req < 1:
            return f"line {lineno} ({kind}): invalid req {req!r}"
    return None


def check_journal_sequence(events):
    last = None
    for lineno, event in events:
        seq = event["seq"]
        if last is not None and seq <= last:
            return (
                f"line {lineno}: seq {seq} does not increase from {last} "
                "(writer must stamp strictly increasing sequence numbers)"
            )
        last = seq
    return None


def check_journal_lifecycle(events, require_terminals):
    admitted = {}  # req -> admit line number
    rejected = set()
    terminal = {}  # req -> (line, type)
    for lineno, event in events:
        kind = event["event"]
        req = event["req"]
        if kind == "admit":
            if req in admitted:
                return f"line {lineno}: duplicate admit for req {req}"
            if req in rejected:
                return f"line {lineno}: admit for rejected req {req}"
            admitted[req] = lineno
            continue
        if kind == "reject":
            # A rejected ticket never entered the queue: it must have no
            # admit and no further events.
            if req in admitted:
                return f"line {lineno}: reject for admitted req {req}"
            if req in rejected:
                return f"line {lineno}: duplicate reject for req {req}"
            rejected.add(req)
            continue
        if req in rejected:
            return f"line {lineno}: {kind} after reject for req {req}"
        if req not in admitted:
            return f"line {lineno}: {kind} before admit for req {req}"
        if req in terminal:
            prior_line, prior_kind = terminal[req]
            return (
                f"line {lineno}: {kind} for req {req} after terminal "
                f"{prior_kind} at line {prior_line}"
            )
        if kind in JOURNAL_TERMINALS:
            terminal[req] = (lineno, kind)
    if require_terminals:
        open_requests = sorted(set(admitted) - set(terminal))
        if open_requests:
            return (
                f"{len(open_requests)} admitted request(s) without a "
                f"terminal event: {open_requests[:10]}"
            )
    return None


def run_journal(args):
    try:
        events = load_journal(args.trace)
    except (OSError, ValueError) as error:
        return fail(f"{args.trace}: {error}")

    for check in (check_journal_schema, check_journal_sequence):
        error = check(events)
        if error:
            return fail(error)
    error = check_journal_lifecycle(events, args.require_terminals)
    if error:
        return fail(error)

    admits = sum(1 for _, e in events if e["event"] == "admit")
    terminals = sum(1 for _, e in events if e["event"] in JOURNAL_TERMINALS)
    print(
        f"check_trace_json: OK: journal {len(events)} events "
        f"({admits} admits, {terminals} terminals)"
    )
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="path to the trace/journal file")
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="assert at least one complete span with this name (repeatable)",
    )
    parser.add_argument(
        "--journal",
        action="store_true",
        help="validate a JSON-lines request journal instead of a trace",
    )
    parser.add_argument(
        "--require-terminals",
        action="store_true",
        help="journal mode: every admitted request must have a terminal",
    )
    args = parser.parse_args()

    if args.journal:
        return run_journal(args)

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        return fail(f"{args.trace}: {error}")

    for check in (check_schema, check_balance, check_order):
        error = check(events)
        if error:
            return fail(error)
    if args.require_span:
        error = check_required(events, args.require_span)
        if error:
            return fail(error)

    spans = sum(1 for e in events if e["ph"] == "B")
    completes = sum(1 for e in events if e["ph"] == "X")
    instants = sum(1 for e in events if e["ph"] == "i")
    print(
        f"check_trace_json: OK: {len(events)} events "
        f"({spans} spans, {completes} complete, {instants} instants)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
