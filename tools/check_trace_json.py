#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by `thls --trace`.

Checks, in order:
  1. schema  — the file is either {"traceEvents": [...]} or a bare event
     list; every event has a string `name`, `ph` in {B, E, i, M}, numeric
     `ts` >= 0, and integer `pid`/`tid`.
  2. balance — per (pid, tid), B/E events form properly nested spans with
     matching names, and nothing is left open at the end.
  3. order   — per (pid, tid), timestamps never decrease in file order
     (the exporter merges deterministically by timestamp then sequence).

Optionally, --require-span NAME (repeatable) asserts that at least one
complete span with that exact name exists anywhere in the trace — CI uses
this to prove every instrumented solver layer actually emitted events.

Exit status: 0 when the trace passes every check, 1 otherwise.

Usage:
  python3 tools/check_trace_json.py trace.json \
      --require-span stage/screen --require-span stage/csp
"""

import argparse
import json
import sys

VALID_PHASES = {"B", "E", "i", "M"}


def fail(message):
    print(f"check_trace_json: FAIL: {message}", file=sys.stderr)
    return 1


def load_events(path):
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        events = data.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("top-level object has no 'traceEvents' list")
        return events
    if isinstance(data, list):
        return data
    raise ValueError("top level must be an object or a list")


def check_schema(events):
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            return f"event #{i} is not an object"
        name = event.get("name")
        if not isinstance(name, str) or not name:
            return f"event #{i} has no string 'name'"
        phase = event.get("ph")
        if phase not in VALID_PHASES:
            return f"event #{i} ({name}) has invalid ph {phase!r}"
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            return f"event #{i} ({name}) has invalid ts {ts!r}"
        for key in ("pid", "tid"):
            value = event.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                return f"event #{i} ({name}) has invalid {key} {value!r}"
    return None


def check_balance(events):
    stacks = {}  # (pid, tid) -> [names of open spans]
    for i, event in enumerate(events):
        if event["ph"] not in ("B", "E"):
            continue
        key = (event["pid"], event["tid"])
        stack = stacks.setdefault(key, [])
        if event["ph"] == "B":
            stack.append(event["name"])
        else:
            if not stack:
                return f"event #{i}: E '{event['name']}' with no open span on tid {key[1]}"
            top = stack.pop()
            if top != event["name"]:
                return (
                    f"event #{i}: E '{event['name']}' does not match open "
                    f"span '{top}' on tid {key[1]}"
                )
    for (pid, tid), stack in stacks.items():
        if stack:
            return f"tid {tid}: spans left open at end of trace: {stack}"
    return None


def check_order(events):
    last = {}  # (pid, tid) -> last ts
    for i, event in enumerate(events):
        key = (event["pid"], event["tid"])
        ts = event["ts"]
        if key in last and ts < last[key]:
            return (
                f"event #{i} ({event['name']}): ts {ts} decreases from "
                f"{last[key]} on tid {key[1]}"
            )
        last[key] = ts
    return None


def check_required(events, required):
    complete = set()
    stacks = {}
    for event in events:
        if event["ph"] == "B":
            stacks.setdefault((event["pid"], event["tid"]), []).append(
                event["name"]
            )
        elif event["ph"] == "E":
            stack = stacks.get((event["pid"], event["tid"]), [])
            if stack and stack[-1] == event["name"]:
                stack.pop()
                complete.add(event["name"])
    missing = [name for name in required if name not in complete]
    if missing:
        return f"required spans missing from trace: {missing}"
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="path to the trace JSON file")
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="assert at least one complete span with this name (repeatable)",
    )
    args = parser.parse_args()

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        return fail(f"{args.trace}: {error}")

    for check in (check_schema, check_balance, check_order):
        error = check(events)
        if error:
            return fail(error)
    if args.require_span:
        error = check_required(events, args.require_span)
        if error:
            return fail(error)

    spans = sum(1 for e in events if e["ph"] == "B")
    instants = sum(1 for e in events if e["ph"] == "i")
    print(
        f"check_trace_json: OK: {len(events)} events "
        f"({spans} spans, {instants} instants)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
