// thls — command-line front end for the trojan-hls library.
//
//   thls optimize <dfg-file> [options]       cost-minimal schedule+binding
//   thls simulate <dfg-file> [options]       optimize + Monte-Carlo attack
//   thls export-verilog <dfg-file> [options] optimize + RTL emission
//   thls export-dot <dfg-file> [options]     DFG structure as Graphviz
//   thls benchmarks                          list the paper's suite
//
// <dfg-file> is either a path to a textual DFG (see src/dfg/parse.hpp) or
// the name of a built-in benchmark (polynom, diff2, dtmf, mof2,
// ellipticicass, fir16, ar_lattice, matmul2x2, fft4).
//
// Common options:
//   --catalog table1|section5   IP market (default section5)
//   --lambda-det N              detection-phase latency bound (default CP+1)
//   --lambda-rec N              recovery-phase latency bound (default CP+1)
//   --detection-only            Rajendran baseline: no recovery phase
//   --area N                    total area bound (default 10x minimum core)
//   --strategy exact|heuristic  optimizer strategy (default exact)
//   --threads N                 parallel search lanes (default 1; 0 = all
//                               hardware threads; results are identical
//                               for every value)
//   --time-limit S              search wall-clock budget in seconds
//   --no-bounds                 disable the branch-and-bound lower bounds
//                               (A/B baseline; same answers, slower)
//   --portfolio                 racing portfolio: greedy + SLS incumbent
//                               seeders race ahead of the exact search
//                               (same proved answers, faster to optimal)
//   --progress                  print combos-tried / incumbent-cost lines
//                               as the search advances
//   --seed N                    RNG seed (default 1)
//   --trials N                  simulate: campaign size (default 400)
//   -o FILE                     export: write to FILE instead of stdout
//
// Observability (optimize/simulate/export-verilog):
//   --trace FILE                capture a Chrome trace-event JSON of the
//                               solve (load in Perfetto / chrome://tracing)
//   --metrics-json FILE         write per-stage counters and duration
//                               histograms as JSON
//   --explain                   print a prune-reason breakdown and per-stage
//                               time share after the solve
#include <cstdio>

#include "common.hpp"

#include "benchmarks/suite.hpp"
#include "core/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "dfg/analysis.hpp"
#include "dfg/dot.hpp"
#include "rtl/verilog.hpp"
#include "trojan/monte_carlo.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace ht;

namespace {

struct Options {
  std::string command;
  std::string graph_arg;
  std::string catalog = "section5";
  int lambda_det = 0;
  int lambda_rec = 0;
  bool detection_only = false;
  long long area = 0;
  int max_instances = 0;
  std::string strategy = "exact";
  int threads = 1;
  double time_limit = 0;  // 0: engine default
  bool cost_bounds = true;
  bool static_screens = true;
  bool portfolio = false;
  bool progress = false;
  std::uint64_t seed = 1;
  int trials = 400;
  std::string out_file;
  bool share_registers = false;
  bool close_pairs = true;
  std::string trace_file;
  std::string metrics_file;
  bool explain = false;

  bool wants_metrics() const { return explain || !metrics_file.empty(); }

  tools::SpecOptions spec_options() const {
    tools::SpecOptions spec;
    spec.graph_arg = graph_arg;
    spec.catalog = catalog;
    spec.lambda_det = lambda_det;
    spec.lambda_rec = lambda_rec;
    spec.detection_only = detection_only;
    spec.area = area;
    spec.max_instances = max_instances;
    spec.close_pairs = close_pairs;
    spec.seed = seed;
    return spec;
  }

  tools::EngineOptions engine_options() const {
    tools::EngineOptions engine;
    engine.strategy = strategy;
    engine.threads = threads;
    engine.time_limit = time_limit;
    engine.cost_bounds = cost_bounds;
    engine.static_screens = static_screens;
    engine.portfolio = portfolio;
    engine.metrics = wants_metrics();
    engine.seed = seed;
    return engine;
  }
};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::fprintf(stderr, "thls: %s\n\n", error.c_str());
  std::fputs(
      "usage: thls <optimize|simulate|export-verilog|export-dot> "
      "<dfg-file|benchmark> [options]\n"
      "       thls benchmarks\n"
      "options: --catalog table1|section5  --lambda-det N  --lambda-rec N\n"
      "         --detection-only  --area N  --max-instances N\n"
      "         --strategy exact|heuristic\n"
      "         --threads N (0 = all cores)  --time-limit SECONDS  --progress\n"
      "         --no-bounds (disable branch-and-bound lower bounds)\n"
      "         --no-screens (disable the static pre-CSP screens)\n"
      "         --portfolio (race greedy + SLS incumbent seeders)\n"
      "         --seed N  --trials N  -o FILE  --share-registers\n"
      "         --no-close-pairs (skip Section 3.3 close-pair profiling)\n"
      "         --trace FILE (Chrome trace-event JSON of the solve)\n"
      "         --metrics-json FILE (per-stage counters/histograms as JSON)\n"
      "         --explain (prune-reason breakdown + per-stage time share)\n",
      stderr);
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options options;
  if (argc < 2) usage();
  options.command = argv[1];
  int i = 2;
  if (options.command != "benchmarks") {
    if (argc < 3) usage("missing <dfg-file|benchmark>");
    options.graph_arg = argv[2];
    i = 3;
  }
  auto need_value = [&](const std::string& flag) -> std::string {
    if (i >= argc) usage("flag " + flag + " needs a value");
    return argv[i++];
  };
  while (i < argc) {
    const std::string flag = argv[i++];
    if (flag == "--catalog") {
      options.catalog = need_value(flag);
    } else if (flag == "--lambda-det") {
      options.lambda_det = std::stoi(need_value(flag));
    } else if (flag == "--lambda-rec") {
      options.lambda_rec = std::stoi(need_value(flag));
    } else if (flag == "--detection-only") {
      options.detection_only = true;
    } else if (flag == "--area") {
      options.area = std::stoll(need_value(flag));
    } else if (flag == "--max-instances") {
      options.max_instances = std::stoi(need_value(flag));
    } else if (flag == "--strategy") {
      options.strategy = need_value(flag);
    } else if (flag == "--threads") {
      options.threads = std::stoi(need_value(flag));
    } else if (flag == "--time-limit") {
      options.time_limit = std::stod(need_value(flag));
    } else if (flag == "--no-bounds") {
      options.cost_bounds = false;
    } else if (flag == "--no-screens") {
      options.static_screens = false;
    } else if (flag == "--portfolio") {
      options.portfolio = true;
    } else if (flag == "--progress") {
      options.progress = true;
    } else if (flag == "--seed") {
      options.seed = std::stoull(need_value(flag));
    } else if (flag == "--trials") {
      options.trials = std::stoi(need_value(flag));
    } else if (flag == "-o") {
      options.out_file = need_value(flag);
    } else if (flag == "--share-registers") {
      options.share_registers = true;
    } else if (flag == "--no-close-pairs") {
      options.close_pairs = false;
    } else if (flag == "--trace") {
      options.trace_file = need_value(flag);
    } else if (flag == "--metrics-json") {
      options.metrics_file = need_value(flag);
    } else if (flag == "--explain") {
      options.explain = true;
    } else {
      usage("unknown flag " + flag);
    }
  }
  return options;
}

dfg::Dfg load_graph(const std::string& arg) {
  return tools::load_graph(arg);
}

core::ProblemSpec build_spec(const Options& options) {
  return tools::build_spec(options.spec_options());
}

/// --explain: per-stage time share plus the prune-reason breakdown.
/// Stage spans nest (stage/csp contains validation, nogood propagation is
/// inside the CSP), so shares are per stage, not a partition of the wall.
void print_explain(const core::OptimizeResult& result) {
  const double wall_ns = result.stats.seconds * 1e9;
  util::TablePrinter stages({"stage", "calls", "total ms", "share"});
  for (int s = 0; s < obs::kNumStages; ++s) {
    const auto stage = static_cast<obs::Stage>(s);
    const obs::StageStats& stats = result.metrics.stage(stage);
    if (stats.count == 0) continue;
    const double share =
        wall_ns > 0 ? 100.0 * static_cast<double>(stats.total_ns) / wall_ns
                    : 0.0;
    stages.add_row({obs::stage_name(stage), std::to_string(stats.count),
                    util::format_double(
                        static_cast<double>(stats.total_ns) / 1e6, 3),
                    util::format_double(share, 1) + "%"});
  }
  std::fputs(
      stages.to_string("per-stage time (stages nest; shares overlap)")
          .c_str(),
      stdout);
  util::TablePrinter prunes({"prune reason", "license sets"});
  long long total_pruned = 0;
  for (int r = 0; r < obs::kNumPruneReasons; ++r) {
    const auto reason = static_cast<obs::PruneReason>(r);
    prunes.add_row({obs::prune_reason_name(reason),
                    std::to_string(result.metrics.prune(reason))});
    total_pruned += result.metrics.prune(reason);
  }
  prunes.add_row({"(dispatched)",
                  std::to_string(result.stats.combos_tried)});
  std::fputs(prunes
                 .to_string("prune-reason breakdown (" +
                            std::to_string(total_pruned) +
                            " license sets skipped without CSP dispatch)")
                 .c_str(),
             stdout);
}

core::OptimizeResult run_optimizer(const core::ProblemSpec& spec,
                                   const Options& options) {
  core::SynthesisRequest request =
      tools::build_request(spec, options.engine_options());
  request.kind = core::RequestKind::kMinimize;
  if (options.progress) {
    request.progress = [](const core::SynthesisProgress& progress) {
      const long skipped = progress.combos_skipped_screen +
                           progress.combos_skipped_cache +
                           progress.lb_prunes;
      if (progress.have_incumbent) {
        std::fprintf(stderr,
                     "progress: combos=%ld skipped=%ld nodes=%ld "
                     "incumbent=$%lld t=%.2fs\n",
                     progress.combos_tried, skipped, progress.csp_nodes,
                     progress.incumbent_cost, progress.seconds);
      } else {
        std::fprintf(stderr,
                     "progress: combos=%ld skipped=%ld nodes=%ld "
                     "incumbent=- t=%.2fs\n",
                     progress.combos_tried, skipped, progress.csp_nodes,
                     progress.seconds);
      }
    };
  }
  core::SynthesisEngine engine(std::move(request));
  if (!options.trace_file.empty()) obs::start_tracing();
  const core::OptimizeResult result = engine.run().result;
  if (!options.trace_file.empty()) {
    const obs::TraceLog log = obs::stop_tracing();
    std::ostringstream buffer;
    obs::write_chrome_trace(log, buffer);
    util::write_file(options.trace_file, buffer.str());
    std::fprintf(stderr, "trace: %zu events (%llu dropped) -> %s\n",
                 log.events.size(),
                 static_cast<unsigned long long>(log.dropped),
                 options.trace_file.c_str());
  }
  if (!options.metrics_file.empty()) {
    util::write_file(options.metrics_file,
                     obs::to_json(result.metrics) + "\n");
    std::fprintf(stderr, "metrics: %s\n", options.metrics_file.c_str());
  }
  if (options.explain) print_explain(result);
  return result;
}

void emit(const Options& options, const std::string& content) {
  if (options.out_file.empty()) {
    std::fputs(content.c_str(), stdout);
  } else {
    util::write_file(options.out_file, content);
    std::printf("wrote %zu bytes to %s\n", content.size(),
                options.out_file.c_str());
  }
}

int cmd_optimize(const Options& options) {
  const core::ProblemSpec spec = build_spec(options);
  const core::OptimizeResult result = run_optimizer(spec, options);
  std::printf("graph: %s  (%d ops, critical path %d)\n",
              spec.graph.name().c_str(), spec.graph.num_ops(),
              dfg::critical_path_length(spec.graph));
  std::printf("constraints: lambda_det=%d lambda_rec=%d area<=%lld mode=%s\n",
              spec.lambda_detection, spec.lambda_recovery, spec.area_limit,
              spec.with_recovery ? "detect+recover" : "detection-only");
  std::printf("status: %s\n", core::to_string(result.status).c_str());
  if (!result.has_solution()) return 1;
  std::printf("minimum purchasing cost: %s\n",
              util::format_money(result.cost).c_str());
  std::printf("u=%zu cores  t=%zu licenses  v=%zu vendors  area=%lld\n\n",
              result.solution.cores_used(spec).size(),
              result.solution.licenses_used(spec).size(),
              result.solution.vendors_used(spec).size(),
              result.solution.total_area(spec));
  std::fputs(result.solution.to_string(spec).c_str(), stdout);
  return 0;
}

int cmd_simulate(const Options& options) {
  const core::ProblemSpec spec = build_spec(options);
  const core::OptimizeResult result = run_optimizer(spec, options);
  if (!result.has_solution()) {
    std::printf("optimization failed: %s\n",
                core::to_string(result.status).c_str());
    return 1;
  }
  if (!spec.with_recovery) {
    std::puts("note: detection-only design; simulating with re-execution "
              "as the (ineffective) recovery strategy");
  }
  trojan::CampaignConfig config;
  config.trials = options.trials;
  config.seed = options.seed;
  const trojan::CampaignStats stats = trojan::run_campaign(
      spec, result.solution, config,
      spec.with_recovery ? trojan::RecoveryStrategy::kRebindPerRules
                         : trojan::RecoveryStrategy::kReexecuteSame);
  std::printf("design cost %s; campaign of %d adversarial trials "
              "(seed %llu):\n",
              util::format_money(result.cost).c_str(), stats.trials,
              static_cast<unsigned long long>(config.seed));
  std::printf("  payload activated : %d\n", stats.payload_activated);
  std::printf("  detected          : %d  (rate %.3f)\n", stats.detected,
              stats.detection_rate());
  std::printf("  silent corruptions: %d\n", stats.silent_corruptions);
  std::printf("  recoveries        : %d of %d  (rate %.3f)\n",
              stats.recovered, stats.recovery_ran, stats.recovery_rate());
  return 0;
}

int cmd_export_verilog(const Options& options) {
  const core::ProblemSpec spec = build_spec(options);
  const core::OptimizeResult result = run_optimizer(spec, options);
  if (!result.has_solution()) {
    std::printf("optimization failed: %s\n",
                core::to_string(result.status).c_str());
    return 1;
  }
  rtl::ElaborateOptions elaborate_options;
  elaborate_options.share_registers = options.share_registers;
  const rtl::ElaboratedDesign design =
      rtl::elaborate(spec, result.solution, elaborate_options);
  std::fprintf(stderr, "elaborated %d data registers%s\n",
               design.num_data_registers,
               options.share_registers ? " (shared)" : "");
  emit(options, rtl::to_verilog(design));
  return 0;
}

int cmd_export_dot(const Options& options) {
  emit(options, dfg::to_dot(load_graph(options.graph_arg)));
  return 0;
}

int cmd_benchmarks() {
  util::TablePrinter table(
      {"name", "ops", "critical path", "adders", "multipliers", "alus"});
  auto add = [&](const std::string& name, const dfg::Dfg& graph) {
    const auto counts = graph.ops_per_class();
    table.add_row({name, std::to_string(graph.num_ops()),
                   std::to_string(dfg::critical_path_length(graph)),
                   std::to_string(counts[0]), std::to_string(counts[1]),
                   std::to_string(counts[2])});
  };
  for (const benchmarks::BenchmarkCase& entry : benchmarks::paper_suite()) {
    add(entry.name, entry.factory());
  }
  add("ar_lattice", benchmarks::ar_lattice());
  add("matmul2x2", benchmarks::matmul2x2());
  add("fft4", benchmarks::fft4());
  std::fputs(
      table.to_string("built-in benchmarks (paper suite + extras)").c_str(),
      stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options options = parse_args(argc, argv);
    if (options.command == "optimize") return cmd_optimize(options);
    if (options.command == "simulate") return cmd_simulate(options);
    if (options.command == "export-verilog") {
      return cmd_export_verilog(options);
    }
    if (options.command == "export-dot") return cmd_export_dot(options);
    if (options.command == "benchmarks") return cmd_benchmarks();
    usage("unknown command " + options.command);
  } catch (const util::Error& error) {
    std::fprintf(stderr, "thls: %s\n", error.what());
    return 1;
  }
}
