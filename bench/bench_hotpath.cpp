// Hot-path microbenchmarks for the flat-solver data-layout kernels: the
// SWAR/packed mask kernels (util/mask_kernels.hpp), the incremental
// occupancy skyline (core/skyline.hpp), and the version-stamped fast-reset
// containers (util/fast_reset.hpp). Each section times the kernel against
// the scalar/rebuild/clear baseline it replaced, so the per-structure
// speedups behind the solver-level node-throughput claim stay reproducible
// in isolation.
//
// `--json <path>` appends one record per row to the shared BENCH flow
// (bench_util.hpp): `benchmark` is "hotpath/<kernel>[/baseline]", `n` the
// working-set size, `nodes_total` the operations timed, `wall_s` the loop
// seconds — ns/op is wall_s * 1e9 / nodes_total, the same derivation
// tools/diff_bench_json.py uses for the per-stage solver metrics.
#include "bench_util.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/skyline.hpp"
#include "util/fast_reset.hpp"
#include "util/mask_kernels.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace ht;

/// Per-row records for `--json <path>` (see bench_util.hpp).
benchx::JsonReport g_json;

/// Defeats dead-code elimination without a memory barrier per iteration.
volatile long long g_sink = 0;

void record_row(util::TablePrinter& table, const std::string& kernel,
                int n, long long ops, double seconds) {
  const double ns_per_op = seconds * 1e9 / static_cast<double>(ops);
  table.add_row({kernel, std::to_string(n), std::to_string(ops),
                 util::format_double(ns_per_op, 2)});
  benchx::JsonRecord record;
  record.benchmark = "hotpath/" + kernel;
  record.n = n;
  record.nodes_total = static_cast<long>(std::min<long long>(
      ops, std::numeric_limits<long>::max()));
  record.wall_s = seconds;
  g_json.add(record);
}

// --- Mask kernels ---------------------------------------------------------

/// Nogood-literal membership: packed lo<<16|hi single-compare ranges vs the
/// two-compare (lo <= c && c <= hi) pair the solver used before packing.
void bench_packed_ranges(util::TablePrinter& table) {
  util::Rng rng(101);
  const int n = 4096;
  std::vector<std::uint32_t> packed(n);
  std::vector<int> lo(n), hi(n);
  for (int i = 0; i < n; ++i) {
    lo[i] = static_cast<int>(rng.uniform_int(0, 200));
    hi[i] = static_cast<int>(rng.uniform_int(lo[i], 220));
    packed[i] = util::pack_cycle_range(lo[i], hi[i]);
  }
  const long long rounds = 20'000;
  long long hits = 0;
  util::Timer timer;
  for (long long r = 0; r < rounds; ++r) {
    const int cycle = static_cast<int>(r % 230);
    for (int i = 0; i < n; ++i) {
      hits += util::packed_range_contains(packed[i], cycle) ? 1 : 0;
    }
  }
  record_row(table, "mask/packed_range", n, rounds * n,
             timer.elapsed_seconds());
  g_sink = g_sink + hits;

  hits = 0;
  timer.reset();
  for (long long r = 0; r < rounds; ++r) {
    const int cycle = static_cast<int>(r % 230);
    for (int i = 0; i < n; ++i) {
      hits += (lo[i] <= cycle && cycle <= hi[i]) ? 1 : 0;
    }
  }
  record_row(table, "mask/packed_range/baseline", n, rounds * n,
             timer.elapsed_seconds());
  g_sink = g_sink + hits;
}

/// Four-lane SWAR range membership vs the same test one lane at a time.
void bench_swar_ranges(util::TablePrinter& table) {
  util::Rng rng(102);
  const int n = 4096;  // lanes, packed four per word
  std::vector<std::uint64_t> lo_lanes(n / 4), hi_lanes(n / 4);
  std::vector<int> lo(n), hi(n);
  for (int i = 0; i < n; ++i) {
    lo[i] = static_cast<int>(rng.uniform_int(0, 200));
    hi[i] = static_cast<int>(rng.uniform_int(lo[i], 220));
  }
  for (int w = 0; w < n / 4; ++w) {
    for (int lane = 0; lane < 4; ++lane) {
      lo_lanes[w] |= util::swar16_broadcast(lo[w * 4 + lane]) &
                     (0xffffull << (16 * lane));
      hi_lanes[w] |= util::swar16_broadcast(hi[w * 4 + lane]) &
                     (0xffffull << (16 * lane));
    }
  }
  const long long rounds = 20'000;
  long long hits = 0;
  util::Timer timer;
  for (long long r = 0; r < rounds; ++r) {
    const std::uint64_t cycle =
        util::swar16_broadcast(static_cast<int>(r % 230));
    for (int w = 0; w < n / 4; ++w) {
      hits += __builtin_popcountll(
          util::swar16_in_range(cycle, lo_lanes[w], hi_lanes[w]));
    }
  }
  record_row(table, "mask/swar16_in_range", n, rounds * n,
             timer.elapsed_seconds());
  g_sink = g_sink + hits;

  hits = 0;
  timer.reset();
  for (long long r = 0; r < rounds; ++r) {
    const int cycle = static_cast<int>(r % 230);
    for (int i = 0; i < n; ++i) {
      hits += (lo[i] <= cycle && cycle <= hi[i]) ? 1 : 0;
    }
  }
  record_row(table, "mask/swar16_in_range/baseline", n, rounds * n,
             timer.elapsed_seconds());
  g_sink = g_sink + hits;
}

/// Occupancy-row max: the unrolled range_max_i32 vs std::max_element.
void bench_range_max(util::TablePrinter& table) {
  util::Rng rng(103);
  const int n = 64;  // typical lambda-sized row
  std::vector<int> row(n);
  for (int& cell : row) cell = static_cast<int>(rng.uniform_int(0, 1000));
  const long long rounds = 2'000'000;
  long long acc = 0;
  util::Timer timer;
  for (long long r = 0; r < rounds; ++r) {
    const int len = 1 + static_cast<int>(r % n);
    acc += util::range_max_i32(row.data(), len);
  }
  record_row(table, "mask/range_max_i32", n, rounds, timer.elapsed_seconds());
  g_sink = g_sink + acc;

  acc = 0;
  timer.reset();
  for (long long r = 0; r < rounds; ++r) {
    const int len = 1 + static_cast<int>(r % n);
    acc += *std::max_element(row.begin(), row.begin() + len);
  }
  record_row(table, "mask/range_max_i32/baseline", n, rounds,
             timer.elapsed_seconds());
  g_sink = g_sink + acc;
}

// --- Skyline --------------------------------------------------------------

/// Assign/unassign churn with peak queries: delta maintenance on one
/// OccupancySkyline vs rebuilding the profile from the live set each step
/// (what bounds.cpp did before the skyline existed).
void bench_skyline(util::TablePrinter& table) {
  struct Placement {
    int start, len, instances;
    long long area;
  };
  const int lambda = 32;
  const long long steps = 200'000;

  util::Rng rng(104);
  core::OccupancySkyline sky(lambda);
  std::vector<Placement> live;
  long long acc = 0;
  util::Timer timer;
  for (long long step = 0; step < steps; ++step) {
    if (!live.empty() && rng.chance(0.45)) {
      const std::size_t at = rng.index(live.size());
      const Placement p = live[at];
      live[at] = live.back();
      live.pop_back();
      sky.remove(p.start, p.len, p.instances, p.area);
    } else {
      Placement p;
      p.len = static_cast<int>(rng.uniform_int(1, 6));
      p.start = static_cast<int>(rng.uniform_int(1, lambda - p.len + 1));
      p.instances = static_cast<int>(rng.uniform_int(1, 3));
      p.area = rng.uniform_int(10, 500);
      live.push_back(p);
      sky.add(p.start, p.len, p.instances, p.area);
    }
    acc += sky.peak_instances() + sky.peak_area();
  }
  record_row(table, "skyline/delta", lambda, steps, timer.elapsed_seconds());
  g_sink = g_sink + acc;

  // Identical churn sequence (same seed), profile rebuilt every step.
  util::Rng rng2(104);
  live.clear();
  std::vector<int> instances(lambda);
  std::vector<long long> area(lambda);
  acc = 0;
  timer.reset();
  for (long long step = 0; step < steps; ++step) {
    if (!live.empty() && rng2.chance(0.45)) {
      const std::size_t at = rng2.index(live.size());
      live[at] = live.back();
      live.pop_back();
    } else {
      Placement p;
      p.len = static_cast<int>(rng2.uniform_int(1, 6));
      p.start = static_cast<int>(rng2.uniform_int(1, lambda - p.len + 1));
      p.instances = static_cast<int>(rng2.uniform_int(1, 3));
      p.area = rng2.uniform_int(10, 500);
      live.push_back(p);
    }
    std::fill(instances.begin(), instances.end(), 0);
    std::fill(area.begin(), area.end(), 0);
    for (const Placement& p : live) {
      for (int cycle = p.start; cycle < p.start + p.len; ++cycle) {
        instances[static_cast<std::size_t>(cycle - 1)] += p.instances;
        area[static_cast<std::size_t>(cycle - 1)] += p.area;
      }
    }
    acc += *std::max_element(instances.begin(), instances.end()) +
           *std::max_element(area.begin(), area.end());
  }
  record_row(table, "skyline/rebuild/baseline", lambda, steps,
             timer.elapsed_seconds());
  g_sink = g_sink + acc;
}

// --- Fast reset -----------------------------------------------------------

/// Backtrack-shaped reuse: touch a few slots, reset, repeat. The
/// version-stamped container pays one counter bump per reset; the honest
/// baseline re-clears the whole array.
void bench_fast_reset(util::TablePrinter& table) {
  const int n = 4096;
  const int touches = 8;  // sparse writes per reset, like one CSP node
  const long long rounds = 500'000;

  util::Rng rng(105);
  util::FastResetVector<int> fast(n, 0);
  long long acc = 0;
  util::Timer timer;
  for (long long r = 0; r < rounds; ++r) {
    for (int t = 0; t < touches; ++t) {
      const std::size_t i = rng.index(n);
      fast.ref(i) += 1;
      acc += fast.get(i);
    }
    fast.reset();
  }
  record_row(table, "fast_reset/reset", n, rounds, timer.elapsed_seconds());
  g_sink = g_sink + acc;

  util::Rng rng2(105);
  std::vector<int> plain(n, 0);
  acc = 0;
  timer.reset();
  for (long long r = 0; r < rounds; ++r) {
    for (int t = 0; t < touches; ++t) {
      const std::size_t i = rng2.index(n);
      plain[i] += 1;
      acc += plain[i];
    }
    std::fill(plain.begin(), plain.end(), 0);
  }
  record_row(table, "fast_reset/clear/baseline", n, rounds,
             timer.elapsed_seconds());
  g_sink = g_sink + acc;
}

void print_hotpath() {
  util::TablePrinter table({"kernel", "n", "ops", "ns/op"});
  bench_packed_ranges(table);
  bench_swar_ranges(table);
  bench_range_max(table);
  bench_skyline(table);
  bench_fast_reset(table);
  benchx::print_table(table, "Hot-path kernels vs their scalar baselines");
}

// Google-benchmark registrations for the same kernels, for users who want
// repetition/statistics handling (`--benchmark_filter=...`).

void BM_PackedRangeContains(benchmark::State& state) {
  util::Rng rng(201);
  const int n = static_cast<int>(state.range(0));
  std::vector<std::uint32_t> packed(static_cast<std::size_t>(n));
  for (auto& p : packed) {
    const int lo = static_cast<int>(rng.uniform_int(0, 200));
    p = util::pack_cycle_range(lo, static_cast<int>(rng.uniform_int(lo, 220)));
  }
  int cycle = 0;
  for (auto _ : state) {
    long long hits = 0;
    for (const std::uint32_t p : packed) {
      hits += util::packed_range_contains(p, cycle) ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
    cycle = (cycle + 1) % 230;
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PackedRangeContains)->Arg(256)->Arg(4096);

void BM_SkylineChurn(benchmark::State& state) {
  const int lambda = static_cast<int>(state.range(0));
  util::Rng rng(202);
  core::OccupancySkyline sky(lambda);
  for (auto _ : state) {
    const int len = static_cast<int>(rng.uniform_int(1, 6));
    const int start = static_cast<int>(rng.uniform_int(1, lambda - len + 1));
    sky.add(start, len, 1, 100);
    benchmark::DoNotOptimize(sky.peak_instances());
    sky.remove(start, len, 1, 100);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkylineChurn)->Arg(16)->Arg(64);

void BM_FastResetCycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::FastResetVector<int> fast(static_cast<std::size_t>(n), 0);
  util::Rng rng(203);
  for (auto _ : state) {
    for (int t = 0; t < 8; ++t) fast.ref(rng.index(n)) += 1;
    fast.reset();
    benchmark::DoNotOptimize(fast.get(0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FastResetCycle)->Arg(256)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ht::benchx::consume_json_flag(argc, argv);
  print_hotpath();
  if (!json_path.empty()) {
    if (g_json.write_to(json_path)) {
      std::printf("wrote %zu records to %s\n", g_json.size(),
                  json_path.c_str());
    } else {
      std::printf("FAILED to write %s\n", json_path.c_str());
      return 1;
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
