// Reproduces the paper's Table 4: minimum purchasing cost of designs with
// DETECTION AND RECOVERY on the six benchmarks. Here lambda bounds the
// total schedule (detection phase followed by recovery phase) and the
// phase split is the optimizer's decision, per the paper's lambda
// definition ("covers a schedule of detection phase and a schedule of
// recovery phase"). The headline comparison against Table 3 — recovery
// demands strictly more vendor diversity and cost — is printed at the end.
#include "bench_util.hpp"

#include "benchmarks/suite.hpp"
#include "core/engine.hpp"
#include "dfg/analysis.hpp"
#include "vendor/catalogs.hpp"

namespace {

using namespace ht;

core::ProblemSpec base_spec(const benchmarks::BenchmarkCase& entry,
                            long long area) {
  core::ProblemSpec spec;
  spec.graph = entry.factory();
  spec.catalog = vendor::section5();
  spec.with_recovery = true;
  spec.lambda_detection = 1;  // placeholder; split search sets both
  spec.lambda_recovery = 1;
  spec.area_limit = area;
  return spec;
}

core::SplitResult solve_row(const benchmarks::BenchmarkCase& entry,
                            const benchmarks::TableRow& row) {
  core::ProblemSpec spec = base_spec(entry, row.area);
  const int splits = std::max(
      1, row.lambda - 2 * dfg::critical_path_length(spec.graph) + 1);
  core::OptimizerOptions options;
  options.strategy =
      spec.graph.num_ops() <= 12 ? core::Strategy::kExact
                                 : core::Strategy::kHeuristic;
  options.time_limit_seconds = std::max(2.0, 24.0 / splits);
  options.csp_node_limit = 600'000;
  core::SynthesisRequest request = core::make_request(spec, options);
  request.kind = core::RequestKind::kMinimizeTotalLatency;
  request.lambda_total = row.lambda;
  const core::SynthesisResponse response = core::synthesize(request);
  return core::SplitResult{response.result, response.lambda_detection,
                           response.lambda_recovery};
}

void print_reproduction() {
  std::puts("=== Table 4: designs with detection and recovery ===");
  std::puts("(lambda bounds the combined schedule; split chosen by the");
  std::puts(" optimizer. '*' = best found within budget)\n");
  util::TablePrinter table({"Benchmarks", "n", "lambda", "A", "split", "u",
                            "t", "v", "mc", "status"});
  long long total_recovery_cost = 0;
  for (const benchmarks::BenchmarkCase& entry : benchmarks::paper_suite()) {
    for (const benchmarks::TableRow& row : entry.table4) {
      const core::SplitResult split = solve_row(entry, row);
      const int n = entry.factory().num_ops();
      if (!split.result.has_solution()) {
        table.add_row({entry.name, std::to_string(n),
                       std::to_string(row.lambda),
                       util::with_commas(row.area), "-", "-", "-", "-", "-",
                       core::to_string(split.result.status)});
        continue;
      }
      core::ProblemSpec spec = base_spec(entry, row.area);
      spec.lambda_detection = split.lambda_detection;
      spec.lambda_recovery = split.lambda_recovery;
      core::require_valid(spec, split.result.solution);
      const benchx::RowMetrics metrics =
          benchx::metrics_of(spec, split.result);
      total_recovery_cost += metrics.cost;
      table.add_row(
          {entry.name, std::to_string(n), std::to_string(row.lambda),
           util::with_commas(row.area),
           std::to_string(split.lambda_detection) + "+" +
               std::to_string(split.lambda_recovery),
           std::to_string(metrics.cores), std::to_string(metrics.licenses),
           std::to_string(metrics.vendors), benchx::cost_cell(metrics),
           core::to_string(split.result.status)});
    }
  }
  benchx::print_table(table, "");
  std::fputs(table.to_csv().c_str(), stdout);

  // Headline comparison: recovery vs detection-only diversity on the rows
  // where both tables use comparable settings.
  std::puts("\n=== detection-only vs detection+recovery (same benchmark, "
            "loose settings) ===");
  util::TablePrinter compare({"Benchmarks", "det-only mc", "det-only t/v",
                              "det+rec mc", "det+rec t/v"});
  for (const benchmarks::BenchmarkCase& entry : benchmarks::paper_suite()) {
    // Loosest settings of each table.
    const auto& d_row = entry.table3[0];
    core::ProblemSpec d_spec = core::make_detection_only_spec(
        entry.factory(), vendor::section5(), d_row.lambda, d_row.area);
    core::OptimizerOptions d_options;
    d_options.strategy = core::Strategy::kHeuristic;
    d_options.time_limit_seconds = 10;
    const core::OptimizeResult d_result =
        core::synthesize(core::make_request(d_spec, d_options)).result;

    const auto& r_row = entry.table4[0];
    const core::SplitResult r_result = solve_row(entry, r_row);

    if (!d_result.has_solution() || !r_result.result.has_solution()) {
      compare.add_row({entry.name, "-", "-", "-", "-"});
      continue;
    }
    core::ProblemSpec r_spec = base_spec(entry, r_row.area);
    r_spec.lambda_detection = r_result.lambda_detection;
    r_spec.lambda_recovery = r_result.lambda_recovery;
    compare.add_row(
        {entry.name, util::format_money(d_result.cost),
         std::to_string(d_result.solution.licenses_used(d_spec).size()) +
             "/" +
             std::to_string(d_result.solution.vendors_used(d_spec).size()),
         util::format_money(r_result.result.cost),
         std::to_string(
             r_result.result.solution.licenses_used(r_spec).size()) +
             "/" +
             std::to_string(
                 r_result.result.solution.vendors_used(r_spec).size())});
  }
  benchx::print_table(compare, "");
  std::puts("The detection-only designs underestimate the diversity of IP "
            "cores\nneeded once run-time recovery is required — the paper's "
            "conclusion.\n");
}

void BM_Table4Row(benchmark::State& state) {
  const auto& entry =
      benchmarks::paper_suite()[static_cast<std::size_t>(state.range(0))];
  const auto& row = entry.table4[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_row(entry, row));
  }
  state.SetLabel(entry.name);
}
BENCHMARK(BM_Table4Row)->DenseRange(0, 2)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

HT_BENCH_MAIN(print_reproduction)
