// Shared helpers for the table-reproduction benches.
//
// Each bench binary prints its paper table first (so `./bench_*` with no
// arguments reproduces the evaluation), then runs its google-benchmark
// timing section.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/optimizer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace ht::benchx {

/// u / t / v / mc columns of the paper's Tables 3-4 for one solution.
struct RowMetrics {
  std::size_t cores;     // u: IP core instances
  std::size_t licenses;  // t: (vendor, type) licenses
  std::size_t vendors;   // v: distinct vendors
  long long cost;        // mc: minimum purchasing cost
  bool starred;          // '*': not proved optimal (like the paper)
};

inline RowMetrics metrics_of(const core::ProblemSpec& spec,
                             const core::OptimizeResult& result) {
  RowMetrics metrics{};
  metrics.cores = result.solution.cores_used(spec).size();
  metrics.licenses = result.solution.licenses_used(spec).size();
  metrics.vendors = result.solution.vendors_used(spec).size();
  metrics.cost = result.cost;
  metrics.starred = result.status != core::OptStatus::kOptimal;
  return metrics;
}

inline std::string cost_cell(const RowMetrics& metrics) {
  return util::format_money(metrics.cost) + (metrics.starred ? "*" : "");
}

/// Prints a rendered table plus its CSV twin to stdout.
inline void print_table(const util::TablePrinter& table,
                        const std::string& title) {
  std::fputs(table.to_string(title).c_str(), stdout);
  std::fputs("\n", stdout);
}

/// Standard main body: print the reproduction, then run registered
/// google-benchmark timings.
#define HT_BENCH_MAIN(print_fn)                                   \
  int main(int argc, char** argv) {                               \
    print_fn();                                                   \
    ::benchmark::Initialize(&argc, argv);                         \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {   \
      return 1;                                                   \
    }                                                             \
    ::benchmark::RunSpecifiedBenchmarks();                        \
    ::benchmark::Shutdown();                                      \
    return 0;                                                     \
  }

}  // namespace ht::benchx
