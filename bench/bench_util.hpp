// Shared helpers for the table-reproduction benches.
//
// Each bench binary prints its paper table first (so `./bench_*` with no
// arguments reproduces the evaluation), then runs its google-benchmark
// timing section.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/incumbent_pool.hpp"
#include "core/optimizer.hpp"
#include "obs/metrics.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace ht::benchx {

/// u / t / v / mc columns of the paper's Tables 3-4 for one solution.
struct RowMetrics {
  std::size_t cores;     // u: IP core instances
  std::size_t licenses;  // t: (vendor, type) licenses
  std::size_t vendors;   // v: distinct vendors
  long long cost;        // mc: minimum purchasing cost
  bool starred;          // '*': not proved optimal (like the paper)
};

inline RowMetrics metrics_of(const core::ProblemSpec& spec,
                             const core::OptimizeResult& result) {
  RowMetrics metrics{};
  metrics.cores = result.solution.cores_used(spec).size();
  metrics.licenses = result.solution.licenses_used(spec).size();
  metrics.vendors = result.solution.vendors_used(spec).size();
  metrics.cost = result.cost;
  metrics.starred = result.status != core::OptStatus::kOptimal;
  return metrics;
}

inline std::string cost_cell(const RowMetrics& metrics) {
  return util::format_money(metrics.cost) + (metrics.starred ? "*" : "");
}

/// Prints a rendered table plus its CSV twin to stdout.
inline void print_table(const util::TablePrinter& table,
                        const std::string& title) {
  std::fputs(table.to_string(title).c_str(), stdout);
  std::fputs("\n", stdout);
}

/// One per-row record of the machine-readable bench log (`--json <path>`).
/// Mirrors the printed tables so perf trajectories can be diffed run over
/// run without scraping stdout.
struct JsonRecord {
  std::string benchmark;
  int n = 0;       ///< DFG operation count
  int lambda = 0;  ///< detection-phase latency bound
  long long area = 0;
  int threads = 1;
  std::string status;
  long long cost = 0;
  /// CSP nodes of the *winning* sub-search only — the attempt whose result
  /// the row reports (the full-market probe included when its backfilled
  /// answer is the one committed). 0 when no attempt won (unknown /
  /// infeasible rows), even if sub-searches burned nodes getting there.
  long nodes = 0;
  /// CSP nodes summed across *every* sub-search of the row: non-winning
  /// split/frontier attempts and unsuccessful probe runs included. Always
  /// >= `nodes`; compare run over run with `nodes_total`, read the
  /// winner's effort from `nodes`.
  long nodes_total = 0;
  long nogoods = 0;
  long backjumps = 0;
  long restarts = 0;
  long combos_tried = 0;
  long combos_skipped_cache = 0;
  long combos_skipped_screen = 0;
  /// License sets refuted by the branch-and-bound lower bounds before any
  /// CSP dispatch.
  long lb_prunes = 0;
  /// LP relaxations priced for the opt-in LP bound (cache misses only).
  long lb_lp_solves = 0;
  /// Watched-literal entries examined by the nogood propagator
  /// (nodes_total-style aggregation).
  long nogood_watch_visits = 0;
  double wall_s = 0.0;
  // ---- racing portfolio attribution (core/incumbent_pool.hpp). Negative
  // values mean "not applicable" and the key is omitted, so rows from
  // pre-portfolio runs and portfolio-off rows without a solution
  // serialize exactly as before. ------------------------------------------
  /// Seconds until the first pool incumbent existed (-1: none).
  double time_to_incumbent_s = -1.0;
  /// Seconds until a binding at the final committed cost first existed
  /// (-1: no solution). Populated portfolio-off too (the winning set's
  /// commit time), so A/B runs compare time-to-optimal directly.
  double time_to_best_s = -1.0;
  /// Member whose binding was committed (-1 none; emitted as its name).
  int winner_member = -1;
  /// Incumbents published by the greedy/SLS members (0 portfolio-off).
  long incumbents = 0;
  // ---- service-throughput summary rows (thlsd concurrency study).
  // Negative values mean "not a service row" and the keys are omitted, so
  // solver rows serialize exactly as before. ------------------------------
  /// Completed requests per wall second for the batch this row summarizes.
  double req_per_sec = -1.0;
  /// End-to-end (queue wait + solve) latency percentiles of the batch.
  double latency_p50_s = -1.0;
  double latency_p95_s = -1.0;
  double latency_max_s = -1.0;
  /// Per-stage counters and duration histograms (obs/metrics.hpp); all
  /// zeros — and omitted from the JSON — unless the bench enabled
  /// OptimizerOptions::collect_metrics for this row.
  obs::SolveMetrics metrics;
};

inline JsonRecord record_of(std::string benchmark,
                            const core::ProblemSpec& spec, int threads,
                            const core::OptimizeResult& result,
                            double wall_s) {
  JsonRecord record;
  record.benchmark = std::move(benchmark);
  record.n = spec.graph.num_ops();
  record.lambda = spec.lambda_detection;
  record.area = spec.area_limit;
  record.threads = threads;
  record.status = core::to_string(result.status);
  record.cost = result.cost;
  record.nodes = result.stats.csp_nodes;
  record.nodes_total = result.stats.nodes_total;
  record.nogoods = result.stats.nogoods_learned;
  record.backjumps = result.stats.backjumps;
  record.restarts = result.stats.restarts;
  record.combos_tried = result.stats.combos_tried;
  record.combos_skipped_cache = result.stats.combos_skipped_cache;
  record.combos_skipped_screen = result.stats.combos_skipped_screen;
  record.lb_prunes = result.stats.lb_prunes;
  record.lb_lp_solves = result.stats.lb_lp_solves;
  record.nogood_watch_visits = result.stats.nogood_watch_visits;
  record.wall_s = wall_s;
  record.time_to_incumbent_s = result.stats.time_to_incumbent_seconds;
  record.time_to_best_s = result.stats.time_to_best_seconds;
  record.winner_member = result.stats.best_source;
  record.incumbents = result.stats.incumbents_published;
  record.metrics = result.metrics;
  return record;
}

/// Accumulates JsonRecords and writes them as one JSON array.
class JsonReport {
 public:
  void add(JsonRecord record) { records_.push_back(std::move(record)); }
  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }

  /// Returns false on I/O failure.
  bool write_to(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "[\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const JsonRecord& r = records_[i];
      out << "  {\"benchmark\": \"" << escaped(r.benchmark) << "\""
          << ", \"n\": " << r.n << ", \"lambda\": " << r.lambda
          << ", \"area\": " << r.area << ", \"threads\": " << r.threads
          << ", \"status\": \"" << escaped(r.status) << "\""
          << ", \"cost\": " << r.cost << ", \"nodes\": " << r.nodes
          << ", \"nodes_total\": " << r.nodes_total
          << ", \"nogoods\": " << r.nogoods
          << ", \"backjumps\": " << r.backjumps
          << ", \"restarts\": " << r.restarts
          << ", \"combos_tried\": " << r.combos_tried
          << ", \"combos_skipped_cache\": " << r.combos_skipped_cache
          << ", \"combos_skipped_screen\": " << r.combos_skipped_screen
          << ", \"lb_prunes\": " << r.lb_prunes
          << ", \"lb_lp_solves\": " << r.lb_lp_solves
          << ", \"nogood_watch_visits\": " << r.nogood_watch_visits
          << ", \"wall_s\": " << util::format_double(r.wall_s, 4);
      if (r.time_to_incumbent_s >= 0.0) {
        out << ", \"time_to_incumbent_s\": "
            << util::format_double(r.time_to_incumbent_s, 4);
      }
      if (r.time_to_best_s >= 0.0) {
        out << ", \"time_to_best_s\": "
            << util::format_double(r.time_to_best_s, 4);
      }
      if (r.winner_member >= 0) {
        out << ", \"winner_member\": \""
            << core::portfolio_member_name(r.winner_member) << "\"";
      }
      if (r.incumbents > 0) out << ", \"incumbents\": " << r.incumbents;
      if (r.req_per_sec >= 0.0) {
        out << ", \"req_per_sec\": " << util::format_double(r.req_per_sec, 4);
      }
      if (r.latency_p50_s >= 0.0) {
        out << ", \"latency_p50_s\": "
            << util::format_double(r.latency_p50_s, 4);
      }
      if (r.latency_p95_s >= 0.0) {
        out << ", \"latency_p95_s\": "
            << util::format_double(r.latency_p95_s, 4);
      }
      if (r.latency_max_s >= 0.0) {
        out << ", \"latency_max_s\": "
            << util::format_double(r.latency_max_s, 4);
      }
      // Per-stage metrics ride along only when the row collected them, so
      // rows from metrics-off benches serialize exactly as before.
      if (!r.metrics.empty()) {
        out << ", \"metrics\": " << obs::to_json(r.metrics);
      }
      out << "}" << (i + 1 < records_.size() ? ",\n" : "\n");
    }
    out << "]\n";
    return static_cast<bool>(out);
  }

 private:
  static std::string escaped(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
    return out;
  }

  std::vector<JsonRecord> records_;
};

/// Strips `--json <path>` from argv (google-benchmark rejects flags it
/// does not know) and returns the path, or "" when the flag is absent.
inline std::string consume_json_flag(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      path = argv[i + 1];
      ++i;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return path;
}

/// Standard main body: print the reproduction, then run registered
/// google-benchmark timings.
#define HT_BENCH_MAIN(print_fn)                                   \
  int main(int argc, char** argv) {                               \
    print_fn();                                                   \
    ::benchmark::Initialize(&argc, argv);                         \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {   \
      return 1;                                                   \
    }                                                             \
    ::benchmark::RunSpecifiedBenchmarks();                        \
    ::benchmark::Shutdown();                                      \
    return 0;                                                     \
  }

}  // namespace ht::benchx
