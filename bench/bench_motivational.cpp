// Reproduces the paper's Section 4 motivational material: Table 1 (the
// 4-vendor IP market), and Figure 5 (the 5-op DFG scheduled for detection
// and recovery at minimum purchasing cost — the paper reports $4160 with
// lambda_det = 4, lambda_rec = 3, area <= 22000).
#include "bench_util.hpp"

#include "benchmarks/classic.hpp"
#include "core/engine.hpp"
#include "core/optimizer.hpp"
#include "dfg/dot.hpp"
#include "vendor/catalogs.hpp"

namespace {

using namespace ht;

core::ProblemSpec motivational_spec() {
  core::ProblemSpec spec;
  spec.graph = benchmarks::polynom();
  spec.catalog = vendor::table1();
  spec.lambda_detection = 4;
  spec.lambda_recovery = 3;
  spec.with_recovery = true;
  spec.area_limit = 22000;
  return spec;
}

void print_reproduction() {
  std::puts("=== Table 1: area and cost for each type of computational IP ===");
  const vendor::Catalog catalog = vendor::table1();
  util::TablePrinter table1({"VENDOR", "TYPE", "AREA (unit cell)",
                             "COST (IP core license)"});
  for (vendor::VendorId v = 0; v < catalog.num_vendors(); ++v) {
    for (dfg::ResourceClass rc :
         {dfg::ResourceClass::kAdder, dfg::ResourceClass::kMultiplier}) {
      const vendor::IpOffer& offer = catalog.offer(v, rc);
      table1.add_row({catalog.vendor_name(v), dfg::resource_class_name(rc),
                      std::to_string(offer.area),
                      util::format_money(offer.cost)});
    }
  }
  benchx::print_table(table1, "");

  std::puts("=== Figure 5: motivational example ===");
  std::puts("DFG: polynom (5 ops), lambda_det=4, lambda_rec=3, area<=22000");
  const core::ProblemSpec spec = motivational_spec();
  const core::OptimizeResult result = core::synthesize(core::make_request(spec)).result;
  if (!result.has_solution()) {
    std::printf("optimizer failed: %s\n",
                core::to_string(result.status).c_str());
    return;
  }
  std::printf("status: %s   minimum purchasing cost: %s   (paper: $4,160)\n",
              core::to_string(result.status).c_str(),
              util::format_money(result.cost).c_str());
  std::printf("cores used (u): %zu   licenses (t): %zu   vendors (v): %zu   "
              "area: %lld / %lld\n\n",
              result.solution.cores_used(spec).size(),
              result.solution.licenses_used(spec).size(),
              result.solution.vendors_used(spec).size(),
              result.solution.total_area(spec), spec.area_limit);
  std::fputs(result.solution.to_string(spec).c_str(), stdout);

  std::puts("\n=== detection-only variant (Rajendran et al. baseline) ===");
  core::ProblemSpec detection = spec;
  detection.with_recovery = false;
  detection.lambda_recovery = 0;
  const core::OptimizeResult det = core::synthesize(core::make_request(detection)).result;
  if (det.has_solution()) {
    std::printf("detection-only minimum cost: %s  -> recovery premium: %s\n",
                util::format_money(det.cost).c_str(),
                util::format_money(result.cost - det.cost).c_str());
  }
  std::puts("");
}

void BM_MotivationalExact(benchmark::State& state) {
  const core::ProblemSpec spec = motivational_spec();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::synthesize(core::make_request(spec)).result);
  }
}
BENCHMARK(BM_MotivationalExact)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_MotivationalDetectionOnly(benchmark::State& state) {
  core::ProblemSpec spec = motivational_spec();
  spec.with_recovery = false;
  spec.lambda_recovery = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::synthesize(core::make_request(spec)).result);
  }
}
BENCHMARK(BM_MotivationalDetectionOnly)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

HT_BENCH_MAIN(print_reproduction)
