// Design-space frontiers (series the paper's point-samples sit on):
//
//   * cost vs. area budget for the area-bound case (ellipticicass
//     detection-only at the paper's tight lambda = 8) — shows where the
//     cheap-license/large-core tradeoff bites and where the row goes
//     infeasible;
//   * cost vs. total schedule length for diff2 with detection+recovery —
//     shows the latency floor at twice the critical path and the cost
//     plateau once scheduling slack stops mattering.
#include "bench_util.hpp"

#include "benchmarks/classic.hpp"
#include "core/engine.hpp"
#include "core/frontier.hpp"
#include "vendor/catalogs.hpp"

namespace {

using namespace ht;

std::string cell(const core::OptimizeResult& result) {
  if (!result.has_solution()) return core::to_string(result.status);
  return util::format_money(result.cost) +
         (result.status == core::OptStatus::kOptimal ? "" : "*");
}

void print_reproduction() {
  std::puts("=== Design-space frontiers ===\n");

  {
    core::ProblemSpec spec = core::make_detection_only_spec(
        benchmarks::ellipticicass(), vendor::section5(), 8, 1);
    spec.area_limit = 1;  // swept below
    core::OptimizerOptions options;
    options.strategy = core::Strategy::kHeuristic;
    options.time_limit_seconds = 8;
    const std::vector<long long> areas = {16000, 20000, 24000, 28000,
                                          32000, 40000, 60000, 100000};
    core::SynthesisRequest request = core::make_request(spec, options);
    request.kind = core::RequestKind::kAreaFrontier;
    request.sweep_values = areas;
    util::TablePrinter table({"area budget", "min cost", "u", "t", "v"});
    for (const core::FrontierPoint& point :
         core::synthesize(request).frontier) {
      if (point.result.has_solution()) {
        core::ProblemSpec point_spec = spec;
        point_spec.area_limit = point.constraint;
        const benchx::RowMetrics metrics =
            benchx::metrics_of(point_spec, point.result);
        table.add_row({util::with_commas(point.constraint),
                       cell(point.result), std::to_string(metrics.cores),
                       std::to_string(metrics.licenses),
                       std::to_string(metrics.vendors)});
      } else {
        table.add_row({util::with_commas(point.constraint),
                       cell(point.result), "-", "-", "-"});
      }
    }
    benchx::print_table(
        table, "ellipticicass, detection-only, lambda = 8 (area sweep)");
    std::puts("('unknown' = search budget exhausted without a solution or");
    std::puts(" an infeasibility proof — zero-mobility elliptic at tight");
    std::puts(" area is exactly where the paper's ILP struggled too)\n");
  }

  {
    core::ProblemSpec base;
    base.graph = benchmarks::diff2();
    base.catalog = vendor::section5();
    base.with_recovery = true;
    base.lambda_detection = 1;  // set per split by the sweep
    base.lambda_recovery = 1;
    base.area_limit = 120000;
    core::OptimizerOptions options;
    options.strategy = core::Strategy::kHeuristic;
    options.time_limit_seconds = 4;
    core::SynthesisRequest request = core::make_request(base, options);
    request.kind = core::RequestKind::kLatencyFrontier;
    request.sweep_values = {6, 7, 8, 9, 10, 12, 14, 18};
    util::TablePrinter table({"lambda total", "min cost"});
    for (const core::FrontierPoint& point :
         core::synthesize(request).frontier) {
      table.add_row({std::to_string(point.constraint), cell(point.result)});
    }
    benchx::print_table(
        table, "diff2, detection+recovery, area <= 120,000 (latency sweep)");
    std::puts("(critical path 4 -> anything below lambda = 8 cannot hold");
    std::puts(" both phases; the cost plateaus once slack stops forcing");
    std::puts(" extra concurrent instances)\n");
  }
}

void BM_AreaFrontierPoint(benchmark::State& state) {
  core::ProblemSpec spec = core::make_detection_only_spec(
      benchmarks::ellipticicass(), vendor::section5(), 8, 100000);
  spec.area_limit = state.range(0);
  core::OptimizerOptions options;
  options.strategy = core::Strategy::kHeuristic;
  options.time_limit_seconds = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::synthesize(core::make_request(spec, options)).result);
  }
}
BENCHMARK(BM_AreaFrontierPoint)->Arg(24000)->Arg(60000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

HT_BENCH_MAIN(print_reproduction)
