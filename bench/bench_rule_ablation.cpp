// Rule ablation: which design rules drive the purchasing cost?
//
// DESIGN.md calls out the interpretation choices this repository makes; this
// bench measures each one on the motivational market and on diff2 over the
// Section 5 market:
//
//   * full rules (paper defaults)          — the reference point
//   * no recovery phase                    — Rajendran detection-only [5]
//   * recovery w/o Rule 1 (same-op rebind) — how much rec-R1 costs
//   * recovery w/o close pairs             — how much rec-R2 costs
//   * symmetric sibling diversity          — our stricter non-literal
//                                            reading of eq (7)
//   * no anti-collusion (det Rule 2 off)   — detection Rule 1 alone
#include "bench_util.hpp"

#include "benchmarks/classic.hpp"
#include "core/engine.hpp"
#include "dfg/analysis.hpp"
#include "trojan/profiling.hpp"
#include "vendor/catalogs.hpp"

namespace {

using namespace ht;

struct Variant {
  std::string name;
  core::ProblemSpec spec;
};

std::vector<Variant> variants_of(const core::ProblemSpec& base) {
  std::vector<Variant> out;
  out.push_back({"full rules", base});

  Variant detection_only{"detection only [5]", base};
  detection_only.spec.with_recovery = false;
  detection_only.spec.lambda_recovery = 0;
  out.push_back(detection_only);

  Variant no_rec1{"recovery w/o rec-R1", base};
  no_rec1.spec.rules.recovery_same_op = false;
  out.push_back(no_rec1);

  Variant no_close{"recovery w/o rec-R2 (close pairs)", base};
  no_close.spec.rules.recovery_close_pairs = false;
  out.push_back(no_close);

  Variant symmetric{"symmetric sibling diversity", base};
  symmetric.spec.rules.sibling_diversity_all_copies = true;
  out.push_back(symmetric);

  Variant no_collusion{"w/o det-R2 (anti-collusion)", base};
  no_collusion.spec.rules.detection_parent_child = false;
  no_collusion.spec.rules.detection_sibling = false;
  out.push_back(no_collusion);

  return out;
}

void report(const std::string& title, const core::ProblemSpec& base) {
  util::TablePrinter table(
      {"variant", "status", "u", "t", "v", "mc", "delta vs full"});
  long long reference = -1;
  for (const Variant& variant : variants_of(base)) {
    core::OptimizerOptions options;
    options.time_limit_seconds = 20;
    if (base.graph.num_ops() > 12) {
      options.strategy = core::Strategy::kHeuristic;
    }
    const core::OptimizeResult result =
        core::synthesize(core::make_request(variant.spec, options)).result;
    if (!result.has_solution()) {
      table.add_row({variant.name, core::to_string(result.status), "-", "-",
                     "-", "-", "-"});
      continue;
    }
    const benchx::RowMetrics metrics =
        benchx::metrics_of(variant.spec, result);
    if (reference < 0) reference = metrics.cost;
    table.add_row({variant.name, core::to_string(result.status),
                   std::to_string(metrics.cores),
                   std::to_string(metrics.licenses),
                   std::to_string(metrics.vendors),
                   benchx::cost_cell(metrics),
                   util::format_money(metrics.cost - reference)});
  }
  benchx::print_table(table, title);
}

void print_reproduction() {
  std::puts("=== Rule ablation: cost contribution of each design rule ===\n");

  core::ProblemSpec motivational;
  motivational.graph = benchmarks::polynom();
  motivational.catalog = vendor::table1();
  motivational.lambda_detection = 4;
  motivational.lambda_recovery = 3;
  motivational.with_recovery = true;
  motivational.area_limit = 22000;
  report("polynom on the Table 1 market (Figure 5 setting)", motivational);

  core::ProblemSpec diff2;
  diff2.graph = benchmarks::diff2();
  diff2.catalog = vendor::section5();
  diff2.lambda_detection = 6;
  diff2.lambda_recovery = 5;
  diff2.with_recovery = true;
  diff2.area_limit = 120000;
  {
    util::Rng rng(7);
    trojan::ProfileConfig config;
    config.tolerance = 0;
    diff2.closely_related =
        trojan::profile_close_pairs(diff2.graph, config, rng);
  }
  report("diff2 on the Section 5 market (profiled close pairs)", diff2);

  // Multi-cycle multipliers (extension beyond the paper's 1-cycle model):
  // same rule set, 2-cycle multiplies, latency bounds stretched to the new
  // weighted critical paths.
  std::puts("=== Multi-cycle multipliers (2-cycle) vs the 1-cycle model ===");
  util::TablePrinter mc({"design", "mult latency", "lambda d+r", "status",
                         "mc"});
  auto mc_row = [&](const std::string& name, core::ProblemSpec spec,
                    int mult_latency) {
    spec.class_latency[static_cast<int>(
        dfg::ResourceClass::kMultiplier)] = mult_latency;
    const int cp =
        dfg::critical_path_length(spec.graph, spec.op_latencies());
    spec.lambda_detection = cp + 2;
    spec.lambda_recovery = cp + 2;
    core::OptimizerOptions options;
    options.time_limit_seconds = 15;
    if (spec.graph.num_ops() > 12) {
      options.strategy = core::Strategy::kHeuristic;
    }
    const core::OptimizeResult result = core::synthesize(core::make_request(spec, options)).result;
    mc.add_row({name, std::to_string(mult_latency),
                std::to_string(spec.lambda_detection) + "+" +
                    std::to_string(spec.lambda_recovery),
                core::to_string(result.status),
                result.has_solution() ? util::format_money(result.cost)
                                      : std::string("-")});
  };
  core::ProblemSpec poly_mc = motivational;
  poly_mc.area_limit = 40000;
  mc_row("polynom/table1", poly_mc, 1);
  mc_row("polynom/table1", poly_mc, 2);
  core::ProblemSpec diff2_mc = diff2;
  diff2_mc.area_limit = 150000;
  mc_row("diff2/section5", diff2_mc, 1);
  mc_row("diff2/section5", diff2_mc, 2);
  benchx::print_table(mc, "");
  std::puts("(slower multipliers stretch the schedule; at matching slack");
  std::puts("the license cost is unchanged: diversity, not speed, drives");
  std::puts("mc)\n");
}

void BM_AblationVariant(benchmark::State& state) {
  core::ProblemSpec spec;
  spec.graph = benchmarks::polynom();
  spec.catalog = vendor::table1();
  spec.lambda_detection = 4;
  spec.lambda_recovery = 3;
  spec.with_recovery = true;
  spec.area_limit = 22000;
  const auto variants = variants_of(spec);
  const Variant& variant =
      variants[static_cast<std::size_t>(state.range(0))];
  core::OptimizerOptions options;
  options.time_limit_seconds = 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::synthesize(core::make_request(variant.spec, options)).result);
  }
  state.SetLabel(variant.name);
}
BENCHMARK(BM_AblationVariant)->DenseRange(0, 5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

HT_BENCH_MAIN(print_reproduction)
