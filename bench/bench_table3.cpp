// Reproduces the paper's Table 3: minimum purchasing cost of designs with
// DETECTION ONLY (the Rajendran et al. baseline rules) on the six
// benchmarks, two (lambda, area) settings each, over the 8-vendor Section 5
// market. Absolute dollar values differ from the paper (its 8-vendor price
// table was omitted "due to the page limit"); the reproduced shape is the
// row structure, the feasibility of every row, and the u/t/v diversity
// columns. Rows not proved optimal within budget are starred, as in the
// paper.
#include "bench_util.hpp"

#include "benchmarks/suite.hpp"
#include "core/engine.hpp"
#include "vendor/catalogs.hpp"

namespace {

using namespace ht;

core::OptimizeResult solve_row(const benchmarks::BenchmarkCase& entry,
                               const benchmarks::TableRow& row) {
  core::ProblemSpec spec = core::make_detection_only_spec(
      entry.factory(), vendor::section5(), row.lambda, row.area);
  // Exact first with a modest budget; fall back to the heuristic when the
  // instance is too big to prove (mirrors the paper's '*' rows).
  core::OptimizerOptions exact;
  exact.strategy = core::Strategy::kExact;
  exact.time_limit_seconds = spec.graph.num_ops() <= 12 ? 20.0 : 8.0;
  exact.csp_node_limit = 1'500'000;
  core::OptimizeResult result = core::synthesize(core::make_request(spec, exact)).result;
  if (result.status == core::OptStatus::kOptimal ||
      result.status == core::OptStatus::kInfeasible) {
    return result;
  }
  core::OptimizerOptions heuristic;
  heuristic.strategy = core::Strategy::kHeuristic;
  heuristic.time_limit_seconds = 20.0;
  core::OptimizeResult fallback = core::synthesize(core::make_request(spec, heuristic)).result;
  if (result.has_solution() &&
      (!fallback.has_solution() || result.cost <= fallback.cost)) {
    return result;
  }
  return fallback;
}

void print_reproduction() {
  std::puts("=== Table 3: designs with detection only ===");
  std::puts("(8-vendor x 3-type market; '*' = best found within budget,");
  std::puts(" not proved optimal — same convention as the paper)\n");
  util::TablePrinter table({"Benchmarks", "n", "lambda", "A", "u", "t", "v",
                            "mc", "status"});
  for (const benchmarks::BenchmarkCase& entry : benchmarks::paper_suite()) {
    for (const benchmarks::TableRow& row : entry.table3) {
      const core::ProblemSpec spec = core::make_detection_only_spec(
          entry.factory(), vendor::section5(), row.lambda, row.area);
      const core::OptimizeResult result = solve_row(entry, row);
      if (!result.has_solution()) {
        table.add_row({entry.name, std::to_string(spec.graph.num_ops()),
                       std::to_string(row.lambda),
                       util::with_commas(row.area), "-", "-", "-", "-",
                       core::to_string(result.status)});
        continue;
      }
      core::require_valid(spec, result.solution);
      const benchx::RowMetrics metrics = benchx::metrics_of(spec, result);
      table.add_row({entry.name, std::to_string(spec.graph.num_ops()),
                     std::to_string(row.lambda), util::with_commas(row.area),
                     std::to_string(metrics.cores),
                     std::to_string(metrics.licenses),
                     std::to_string(metrics.vendors),
                     benchx::cost_cell(metrics),
                     core::to_string(result.status)});
    }
  }
  benchx::print_table(table, "");
  std::fputs(table.to_csv().c_str(), stdout);
  std::puts("");
}

void BM_Table3Row(benchmark::State& state) {
  const auto& entry =
      benchmarks::paper_suite()[static_cast<std::size_t>(state.range(0))];
  const auto& row = entry.table3[0];
  core::ProblemSpec spec = core::make_detection_only_spec(
      entry.factory(), vendor::section5(), row.lambda, row.area);
  core::OptimizerOptions options;
  options.strategy = core::Strategy::kHeuristic;
  options.time_limit_seconds = 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::synthesize(core::make_request(spec, options)).result);
  }
  state.SetLabel(entry.name);
}
BENCHMARK(BM_Table3Row)->DenseRange(0, 5)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

HT_BENCH_MAIN(print_reproduction)
