// Solver scaling study — the paper's Section 5 remark made quantitative:
// "The ILP may take a very long time to get global optimal results for big
// benchmarks." We compare three engines on the same specs:
//
//   * ilp        — the faithful formulation (eqs 3-17) under our branch &
//                  bound (stands in for Lingo)
//   * exact      — cheapest-first license enumeration + complete CSP
//   * heuristic  — same enumeration with budgeted, restarted CSP
//
// and sweep problem size with random DFGs.
//
// Pass `--threads N` (default: hardware concurrency, min 2) to also run the
// parallel-scaling section: every row is solved once with 1 worker and once
// with N, and must report identical status and cost — the engine's commit
// rule makes the parallel search bit-deterministic.
#include "bench_util.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "benchmarks/random_dfg.hpp"
#include "benchmarks/suite.hpp"
#include "core/ilp_formulation.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "vendor/catalogs.hpp"

namespace {

using namespace ht;

core::ProblemSpec random_spec(int num_ops, std::uint64_t seed) {
  util::Rng rng(seed);
  benchmarks::RandomDfgConfig config;
  config.num_ops = num_ops;
  config.max_depth = 5;
  core::ProblemSpec spec;
  spec.graph = benchmarks::random_dfg(config, rng);
  spec.catalog = vendor::section5();
  spec.lambda_detection = 7;
  spec.lambda_recovery = 6;
  spec.with_recovery = true;
  spec.area_limit = 400000;
  return spec;
}

void print_reproduction() {
  std::puts("=== Solver scaling (exact vs heuristic vs faithful ILP) ===\n");

  // Part 1: the faithful ILP against the CSP engines on a small spec.
  {
    core::ProblemSpec spec;
    spec.graph = benchmarks::by_name("polynom").factory();
    spec.catalog = vendor::table1();
    spec.lambda_detection = 4;
    spec.lambda_recovery = 3;
    spec.with_recovery = true;
    spec.area_limit = 22000;
    spec.max_instances_per_offer = 2;

    util::TablePrinter table(
        {"engine", "status", "mc", "time (s)", "nodes"});

    util::Timer timer;
    const core::OptimizeResult exact = core::minimize_cost(spec);
    table.add_row({"exact (license enum + CSP)",
                   core::to_string(exact.status),
                   util::format_money(exact.cost),
                   util::format_double(timer.elapsed_seconds(), 3),
                   std::to_string(exact.stats.csp_nodes)});

    timer.reset();
    core::OptimizerOptions h;
    h.strategy = core::Strategy::kHeuristic;
    const core::OptimizeResult heur = core::minimize_cost(spec, h);
    table.add_row({"heuristic", core::to_string(heur.status),
                   util::format_money(heur.cost),
                   util::format_double(timer.elapsed_seconds(), 3),
                   std::to_string(heur.stats.csp_nodes)});

    timer.reset();
    ilp::BnbOptions bnb;
    bnb.time_limit_seconds = 60;
    const core::OptimizeResult ilp_result = core::minimize_cost_ilp(spec, bnb);
    table.add_row({"faithful ILP (eqs 3-17), cold",
                   core::to_string(ilp_result.status),
                   ilp_result.has_solution()
                       ? util::format_money(ilp_result.cost)
                       : std::string("-"),
                   util::format_double(timer.elapsed_seconds(), 3),
                   std::to_string(ilp_result.stats.csp_nodes)});

    // Warm-started: the CSP optimum becomes the upper bound; the ILP only
    // has to prove nothing cheaper exists.
    timer.reset();
    ilp::BnbOptions warm_options;
    warm_options.time_limit_seconds = 60;
    const core::OptimizeResult warm =
        core::minimize_cost_ilp_warm(spec, exact.solution, warm_options);
    table.add_row({"faithful ILP, warm-started",
                   core::to_string(warm.status),
                   util::format_money(warm.cost),
                   util::format_double(timer.elapsed_seconds(), 3),
                   std::to_string(warm.stats.csp_nodes)});
    benchx::print_table(table, "motivational example (polynom, Table 1)");
    std::puts("(the cold ILP mirrors the paper's remark that \"the ILP may "
              "take a\nvery long time\"; our CSP engines replace Lingo)\n");
  }

  // Part 2: size sweep with random DFGs.
  {
    util::TablePrinter table({"n (ops)", "exact mc", "exact s", "heur mc",
                              "heur s", "gap"});
    for (int n : {5, 8, 12, 16, 20, 25}) {
      const core::ProblemSpec spec = random_spec(n, 1000 + n);
      util::Timer timer;
      core::OptimizerOptions e;
      e.time_limit_seconds = 15;
      const core::OptimizeResult exact = core::minimize_cost(spec, e);
      const double exact_s = timer.elapsed_seconds();

      timer.reset();
      core::OptimizerOptions h;
      h.strategy = core::Strategy::kHeuristic;
      h.time_limit_seconds = 15;
      const core::OptimizeResult heur = core::minimize_cost(spec, h);
      const double heur_s = timer.elapsed_seconds();

      std::string gap = "-";
      if (exact.has_solution() && heur.has_solution()) {
        gap = util::format_double(
                  100.0 * static_cast<double>(heur.cost - exact.cost) /
                      static_cast<double>(exact.cost),
                  1) +
              "%";
      }
      table.add_row(
          {std::to_string(n),
           exact.has_solution() ? benchx::cost_cell(benchx::metrics_of(
                                      spec, exact))
                                : core::to_string(exact.status),
           util::format_double(exact_s, 2),
           heur.has_solution() ? benchx::cost_cell(benchx::metrics_of(
                                     spec, heur))
                               : core::to_string(heur.status),
           util::format_double(heur_s, 2), gap});
    }
    benchx::print_table(table, "random-DFG size sweep (seed 1000+n)");
  }
  std::puts("");
}

// Parallel license-set search: same spec, 1 worker vs `threads` workers.
// The engine guarantees identical results for every worker count, so the
// mc/status columns must match pairwise; speedup is wall-clock only.
void print_parallel_scaling(int threads) {
  std::printf("=== Parallel search scaling (1 thread vs %d threads) ===\n\n",
              threads);

  struct Row {
    std::string name;
    core::ProblemSpec spec;
    core::OptimizerOptions options;
  };
  std::vector<Row> rows;

  // Random-DFG rows under tight latency bounds: many cheap license sets
  // have to be disproven before the winner, which is exactly the workload
  // the worker pool spreads out.
  for (int n : {20, 25, 30}) {
    Row row;
    row.name = "random n=" + std::to_string(n);
    row.spec = random_spec(n, 1000 + n);
    row.spec.lambda_detection = 6;
    row.spec.lambda_recovery = 5;
    row.options.strategy = core::Strategy::kHeuristic;
    row.options.heuristic_restarts = 3;
    row.options.heuristic_node_limit = 80'000;
    row.options.max_combos = 2'000;
    row.options.time_limit_seconds = 120;
    rows.push_back(std::move(row));
  }
  // A paper benchmark under the Section 5 catalog.
  {
    Row row;
    row.name = "dtmf (section5)";
    row.spec.graph = benchmarks::by_name("dtmf").factory();
    row.spec.catalog = vendor::section5();
    row.spec.lambda_detection = 11;
    row.spec.lambda_recovery = 9;
    row.spec.with_recovery = true;
    row.spec.area_limit = 400000;
    row.options.strategy = core::Strategy::kHeuristic;
    row.options.heuristic_restarts = 3;
    row.options.heuristic_node_limit = 80'000;
    row.options.max_combos = 1'000;
    row.options.time_limit_seconds = 120;
    rows.push_back(std::move(row));
  }

  util::TablePrinter table({"benchmark", "status", "mc", "1-thr s",
                            std::to_string(threads) + "-thr s", "speedup",
                            "match"});
  for (Row& row : rows) {
    row.options.threads = 1;
    util::Timer timer;
    const core::OptimizeResult serial = core::minimize_cost(row.spec,
                                                            row.options);
    const double serial_s = timer.elapsed_seconds();

    row.options.threads = threads;
    timer.reset();
    const core::OptimizeResult parallel = core::minimize_cost(row.spec,
                                                              row.options);
    const double parallel_s = timer.elapsed_seconds();

    const bool match = serial.status == parallel.status &&
                       (!serial.has_solution() ||
                        serial.cost == parallel.cost);
    table.add_row(
        {row.name, core::to_string(parallel.status),
         parallel.has_solution() ? util::format_money(parallel.cost)
                                 : std::string("-"),
         util::format_double(serial_s, 2), util::format_double(parallel_s, 2),
         util::format_double(serial_s / std::max(parallel_s, 1e-9), 2) + "x",
         match ? "yes" : "NO"});
    if (!match) {
      std::printf("MISMATCH on %s: 1-thread %s/%lld vs %d-thread %s/%lld\n",
                  row.name.c_str(), core::to_string(serial.status).c_str(),
                  serial.cost, threads,
                  core::to_string(parallel.status).c_str(), parallel.cost);
    }
  }
  benchx::print_table(table, "deterministic parallel search");
  std::puts("(mc/status must match: the engine commits the lowest "
            "(cost, palette index)\nwinner, so worker count never changes "
            "the answer — only the wall clock)\n");
}

void BM_ExactByOps(benchmark::State& state) {
  const core::ProblemSpec spec =
      random_spec(static_cast<int>(state.range(0)),
                  2000 + static_cast<std::uint64_t>(state.range(0)));
  core::OptimizerOptions options;
  options.time_limit_seconds = 15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::minimize_cost(spec, options));
  }
}
BENCHMARK(BM_ExactByOps)->Arg(5)->Arg(10)->Arg(15)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_HeuristicByOps(benchmark::State& state) {
  const core::ProblemSpec spec =
      random_spec(static_cast<int>(state.range(0)),
                  2000 + static_cast<std::uint64_t>(state.range(0)));
  core::OptimizerOptions options;
  options.strategy = core::Strategy::kHeuristic;
  options.time_limit_seconds = 15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::minimize_cost(spec, options));
  }
}
BENCHMARK(BM_HeuristicByOps)->Arg(5)->Arg(10)->Arg(15)->Arg(20)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

// Custom main (instead of HT_BENCH_MAIN): strip `--threads N` before
// google-benchmark sees the argv, then run the reproduction, the parallel
// scaling section, and the registered timings.
int main(int argc, char** argv) {
  int threads =
      std::max(2, static_cast<int>(ht::util::ThreadPool::hardware_concurrency()));
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[i + 1]);
      ++i;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  print_reproduction();
  if (threads > 1) print_parallel_scaling(threads);

  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
