// Solver scaling study — the paper's Section 5 remark made quantitative:
// "The ILP may take a very long time to get global optimal results for big
// benchmarks." We compare three engines on the same specs:
//
//   * ilp        — the faithful formulation (eqs 3-17) under our branch &
//                  bound (stands in for Lingo)
//   * exact      — cheapest-first license enumeration + complete CSP
//   * heuristic  — same enumeration with budgeted, restarted CSP
//
// and sweep problem size with random DFGs.
//
// Pass `--threads N` (default: hardware concurrency, min 2) to also run the
// parallel-scaling section: every row is solved once with 1 worker and once
// with N, and must report identical status and cost — the engine's commit
// rule makes the parallel search bit-deterministic.
#include "bench_util.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/journal.hpp"

#include "benchmarks/random_dfg.hpp"
#include "benchmarks/suite.hpp"
#include "core/engine.hpp"
#include "core/ilp_formulation.hpp"
#include "core/reoptimize.hpp"
#include "dfg/analysis.hpp"
#include "service/service.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "vendor/catalogs.hpp"

namespace {

using namespace ht;

/// Per-row records for `--json <path>` (see bench_util.hpp).
benchx::JsonReport g_json;

/// `--no-bounds`: run every engine call with the branch-and-bound lower
/// bounds disabled (A/B baseline; see PruningOptions::cost_bounds).
bool g_no_bounds = false;

core::ProblemSpec random_spec(int num_ops, std::uint64_t seed) {
  util::Rng rng(seed);
  benchmarks::RandomDfgConfig config;
  config.num_ops = num_ops;
  config.max_depth = 5;
  core::ProblemSpec spec;
  spec.graph = benchmarks::random_dfg(config, rng);
  spec.catalog = vendor::section5();
  // One cycle of slack over the critical path plus a single instance per
  // license keeps cheap license sets genuinely scarce, so the sweep
  // measures real multi-set searches (and gives the static screens
  // something to refute) instead of accepting the first palette at every
  // size.
  const int critical_path =
      dfg::critical_path_length(spec.graph, spec.op_latencies());
  spec.lambda_detection = critical_path + 1;
  spec.lambda_recovery = critical_path;
  spec.with_recovery = true;
  spec.area_limit = 400000;
  spec.max_instances_per_offer = 1;
  return spec;
}

/// A paper benchmark on the Section 5 catalog with `slack` extra cycles on
/// the detection phase and a per-license instance cap — the Table 3/4
/// "heavy row" shape used by the pruning study.
core::ProblemSpec suite_like_spec(const std::string& name, int slack,
                                  int max_instances) {
  core::ProblemSpec spec;
  spec.graph = benchmarks::by_name(name).factory();
  spec.catalog = vendor::section5();
  const int critical_path =
      dfg::critical_path_length(spec.graph, spec.op_latencies());
  spec.lambda_detection = critical_path + slack;
  spec.lambda_recovery = critical_path + std::max(0, slack - 1);
  spec.with_recovery = true;
  spec.area_limit = 400000;
  spec.max_instances_per_offer = max_instances;
  return spec;
}

void print_reproduction() {
  std::puts("=== Solver scaling (exact vs heuristic vs faithful ILP) ===\n");

  // Part 1: the faithful ILP against the CSP engines on a small spec.
  {
    core::ProblemSpec spec;
    spec.graph = benchmarks::by_name("polynom").factory();
    spec.catalog = vendor::table1();
    spec.lambda_detection = 4;
    spec.lambda_recovery = 3;
    spec.with_recovery = true;
    spec.area_limit = 22000;
    spec.max_instances_per_offer = 2;

    util::TablePrinter table(
        {"engine", "status", "mc", "time (s)", "nodes"});

    util::Timer timer;
    const core::OptimizeResult exact = core::synthesize(core::make_request(spec)).result;
    table.add_row({"exact (license enum + CSP)",
                   core::to_string(exact.status),
                   util::format_money(exact.cost),
                   util::format_double(timer.elapsed_seconds(), 3),
                   std::to_string(exact.stats.csp_nodes)});

    timer.reset();
    core::OptimizerOptions h;
    h.strategy = core::Strategy::kHeuristic;
    const core::OptimizeResult heur = core::synthesize(core::make_request(spec, h)).result;
    table.add_row({"heuristic", core::to_string(heur.status),
                   util::format_money(heur.cost),
                   util::format_double(timer.elapsed_seconds(), 3),
                   std::to_string(heur.stats.csp_nodes)});

    timer.reset();
    ilp::BnbOptions bnb;
    bnb.time_limit_seconds = 60;
    const core::OptimizeResult ilp_result = core::minimize_cost_ilp(spec, bnb);
    table.add_row({"faithful ILP (eqs 3-17), cold",
                   core::to_string(ilp_result.status),
                   ilp_result.has_solution()
                       ? util::format_money(ilp_result.cost)
                       : std::string("-"),
                   util::format_double(timer.elapsed_seconds(), 3),
                   std::to_string(ilp_result.stats.csp_nodes)});

    // Warm-started: the CSP optimum becomes the upper bound; the ILP only
    // has to prove nothing cheaper exists.
    timer.reset();
    ilp::BnbOptions warm_options;
    warm_options.time_limit_seconds = 60;
    const core::OptimizeResult warm =
        core::minimize_cost_ilp_warm(spec, exact.solution, warm_options);
    table.add_row({"faithful ILP, warm-started",
                   core::to_string(warm.status),
                   util::format_money(warm.cost),
                   util::format_double(timer.elapsed_seconds(), 3),
                   std::to_string(warm.stats.csp_nodes)});
    benchx::print_table(table, "motivational example (polynom, Table 1)");
    std::puts("(the cold ILP mirrors the paper's remark that \"the ILP may "
              "take a\nvery long time\"; our CSP engines replace Lingo)\n");
  }

  // Part 2: size sweep with random DFGs.
  {
    util::TablePrinter table({"n (ops)", "exact mc", "exact s", "heur mc",
                              "heur s", "gap"});
    for (int n : {5, 8, 12, 16, 20, 25}) {
      const core::ProblemSpec spec = random_spec(n, 1000 + n);
      util::Timer timer;
      core::OptimizerOptions e;
      e.time_limit_seconds = 15;
      e.cost_bounds = !g_no_bounds;
      e.collect_metrics = true;
      const core::OptimizeResult exact = core::synthesize(core::make_request(spec, e)).result;
      const double exact_s = timer.elapsed_seconds();
      g_json.add(benchx::record_of("size_sweep/exact", spec, 1, exact,
                                   exact_s));

      timer.reset();
      core::OptimizerOptions h;
      h.strategy = core::Strategy::kHeuristic;
      h.time_limit_seconds = 15;
      h.cost_bounds = !g_no_bounds;
      h.collect_metrics = true;
      const core::OptimizeResult heur = core::synthesize(core::make_request(spec, h)).result;
      const double heur_s = timer.elapsed_seconds();
      g_json.add(benchx::record_of("size_sweep/heuristic", spec, 1, heur,
                                   heur_s));

      std::string gap = "-";
      if (exact.has_solution() && heur.has_solution()) {
        gap = util::format_double(
                  100.0 * static_cast<double>(heur.cost - exact.cost) /
                      static_cast<double>(exact.cost),
                  1) +
              "%";
      }
      table.add_row(
          {std::to_string(n),
           exact.has_solution() ? benchx::cost_cell(benchx::metrics_of(
                                      spec, exact))
                                : core::to_string(exact.status),
           util::format_double(exact_s, 2),
           heur.has_solution() ? benchx::cost_cell(benchx::metrics_of(
                                     spec, heur))
                               : core::to_string(heur.status),
           util::format_double(heur_s, 2), gap});
    }
    benchx::print_table(table, "random-DFG size sweep (seed 1000+n)");
  }
  std::puts("");
}

// Parallel license-set search: same spec, 1 worker vs `threads` workers.
// The engine guarantees identical results for every worker count, so the
// mc/status columns must match pairwise; speedup is wall-clock only.
void print_parallel_scaling(int threads) {
  std::printf("=== Parallel search scaling (1 thread vs %d threads) ===\n\n",
              threads);

  struct Row {
    std::string name;
    core::ProblemSpec spec;
    core::OptimizerOptions options;
  };
  std::vector<Row> rows;

  // Random-DFG rows under tight latency bounds: many cheap license sets
  // have to be disproven before the winner, which is exactly the workload
  // the worker pool spreads out.
  for (int n : {20, 25, 30}) {
    Row row;
    row.name = "random n=" + std::to_string(n);
    row.spec = random_spec(n, 1000 + n);
    row.spec.lambda_detection = 6;
    row.spec.lambda_recovery = 5;
    row.options.strategy = core::Strategy::kHeuristic;
    row.options.heuristic_restarts = 3;
    row.options.heuristic_node_limit = 80'000;
    row.options.max_combos = 2'000;
    row.options.time_limit_seconds = 120;
    row.options.cost_bounds = !g_no_bounds;
    row.options.collect_metrics = true;
    rows.push_back(std::move(row));
  }
  // A paper benchmark under the Section 5 catalog.
  {
    Row row;
    row.name = "dtmf (section5)";
    row.spec.graph = benchmarks::by_name("dtmf").factory();
    row.spec.catalog = vendor::section5();
    row.spec.lambda_detection = 11;
    row.spec.lambda_recovery = 9;
    row.spec.with_recovery = true;
    row.spec.area_limit = 400000;
    row.options.strategy = core::Strategy::kHeuristic;
    row.options.heuristic_restarts = 3;
    row.options.heuristic_node_limit = 80'000;
    row.options.max_combos = 1'000;
    row.options.time_limit_seconds = 120;
    row.options.cost_bounds = !g_no_bounds;
    row.options.collect_metrics = true;
    rows.push_back(std::move(row));
  }

  util::TablePrinter table({"benchmark", "status", "mc", "1-thr s",
                            std::to_string(threads) + "-thr s", "speedup",
                            "match"});
  for (Row& row : rows) {
    row.options.threads = 1;
    util::Timer timer;
    const core::OptimizeResult serial = core::synthesize(core::make_request(row.spec,
                                                            row.options)).result;
    const double serial_s = timer.elapsed_seconds();
    g_json.add(benchx::record_of("parallel/" + row.name, row.spec, 1,
                                 serial, serial_s));

    row.options.threads = threads;
    timer.reset();
    const core::OptimizeResult parallel = core::synthesize(core::make_request(row.spec,
                                                              row.options)).result;
    const double parallel_s = timer.elapsed_seconds();
    g_json.add(benchx::record_of("parallel/" + row.name, row.spec, threads,
                                 parallel, parallel_s));

    const bool match = serial.status == parallel.status &&
                       (!serial.has_solution() ||
                        serial.cost == parallel.cost);
    table.add_row(
        {row.name, core::to_string(parallel.status),
         parallel.has_solution() ? util::format_money(parallel.cost)
                                 : std::string("-"),
         util::format_double(serial_s, 2), util::format_double(parallel_s, 2),
         util::format_double(serial_s / std::max(parallel_s, 1e-9), 2) + "x",
         match ? "yes" : "NO"});
    if (!match) {
      std::printf("MISMATCH on %s: 1-thread %s/%lld vs %d-thread %s/%lld\n",
                  row.name.c_str(), core::to_string(serial.status).c_str(),
                  serial.cost, threads,
                  core::to_string(parallel.status).c_str(), parallel.cost);
    }
  }
  benchx::print_table(table, "deterministic parallel search");
  std::puts("(mc/status must match: the engine commits the lowest "
            "(cost, palette index)\nwinner, so worker count never changes "
            "the answer — only the wall clock)\n");
}

// Prune-before-solve study: identical budgets, three engine modes.
//
//   off    — no pruning at all (the historical engine behavior)
//   on     — static screens + dominance cache, chronological CSP
//   learn  — everything on, plus the conflict-directed CSP (backjumping,
//            nogood learning, Luby restarts re-armed by the restart budget)
//
// Off vs on resolve the exact same cheapest-first budget window — every
// skip consumes a dispatch slot — so statuses and license costs must match
// row by row. Learning keeps every answer or *upgrades* it (a '*' row may
// become proven): nogoods are sound deductions, so nothing feasible is
// lost, and the restart schedule re-arms the per-set budget the
// no-learning engine stopped spending after its single canonical descent.
void print_pruning_study() {
  std::puts("=== Prune-before-solve (screens + cache + nogood learning) ===\n");

  struct Row {
    std::string name;
    core::ProblemSpec spec;
    long max_combos;
  };
  std::vector<Row> rows;
  rows.push_back({"polynom tight", suite_like_spec("polynom", 0, 1), 5'000});
  rows.push_back({"dtmf tight", suite_like_spec("dtmf", 0, 1), 2'000});
  rows.push_back(
      {"ellipticicass", suite_like_spec("ellipticicass", 2, 1), 1'000});
  rows.push_back(
      {"ellipticicass mi=2", suite_like_spec("ellipticicass", 2, 2), 1'000});
  rows.push_back({"fir16", suite_like_spec("fir16", 2, 1), 1'000});

  const auto rank = [](core::OptStatus status) {
    // Proof strength for the upgrade check: unknown < starred feasible <
    // proven (optimal / infeasible are both terminal proofs).
    switch (status) {
      case core::OptStatus::kUnknown: return 0;
      case core::OptStatus::kFeasible: return 1;
      default: return 2;
    }
  };

  util::TablePrinter table({"benchmark", "status", "mc", "off s", "on s",
                            "learn s", "speedup", "nodes off/learn",
                            "match"});
  for (const Row& row : rows) {
    core::SynthesisRequest request;
    request.spec = row.spec;
    request.strategy = core::Strategy::kHeuristic;
    request.limits.heuristic_restarts = 3;
    request.limits.heuristic_node_limit = 80'000;
    request.limits.max_combos = row.max_combos;
    request.limits.time_limit_seconds = 300;
    request.pruning.cost_bounds = !g_no_bounds;
    // Embed per-stage metrics in the JSON rows (observation only: statuses
    // and costs are bit-identical with collection off).
    request.observability.metrics = true;

    core::SynthesisRequest off_request = request;
    off_request.pruning.dominance_cache = false;
    off_request.pruning.static_screens = false;
    off_request.pruning.nogood_learning = false;
    // Bounds stay off on both strict-equality rows so this study isolates
    // screens + cache; the bounds study below has its own A/B.
    off_request.pruning.cost_bounds = false;
    core::SynthesisEngine off_engine(std::move(off_request));
    util::Timer timer;
    const core::OptimizeResult off = off_engine.minimize();
    const double off_s = timer.elapsed_seconds();
    g_json.add(benchx::record_of("pruning_off/" + row.name, row.spec, 1,
                                 off, off_s));

    core::SynthesisRequest on_request = request;
    on_request.pruning.nogood_learning = false;
    on_request.pruning.cost_bounds = false;
    core::SynthesisEngine on_engine(std::move(on_request));
    timer.reset();
    const core::OptimizeResult on = on_engine.minimize();
    const double on_s = timer.elapsed_seconds();
    g_json.add(benchx::record_of("pruning_on/" + row.name, row.spec, 1, on,
                                 on_s));

    core::SynthesisEngine learn_engine(std::move(request));
    timer.reset();
    const core::OptimizeResult learn = learn_engine.minimize();
    const double learn_s = timer.elapsed_seconds();
    g_json.add(benchx::record_of("pruning_learn/" + row.name, row.spec, 1,
                                 learn, learn_s));

    // Off vs on: strict equality. Learning: equal or upgraded — same cost
    // whenever both hold a solution, proof strength never weaker.
    const bool match =
        off.status == on.status &&
        (!off.has_solution() || off.cost == on.cost) &&
        rank(learn.status) >= rank(on.status) &&
        (!on.has_solution() || !learn.has_solution() ||
         on.cost == learn.cost);
    table.add_row(
        {row.name, core::to_string(learn.status),
         learn.has_solution() ? util::format_money(learn.cost)
                              : std::string("-"),
         util::format_double(off_s, 2), util::format_double(on_s, 2),
         util::format_double(learn_s, 2),
         util::format_double(off_s / std::max(learn_s, 1e-3), 1) + "x",
         std::to_string(off.stats.nodes_total) + "/" +
             std::to_string(learn.stats.nodes_total),
         match ? "yes" : "NO"});
  }
  benchx::print_table(table, "pruning A/B (heuristic, 1 thread)");
  std::puts("(off vs on resolve the same budget window, so mc/status must "
            "match; learning\nmay only upgrade an answer — '*' rows become "
            "proven when conflict-directed\nsearch finishes the refutations "
            "the canonical descent left truncated)\n");
}

// Cross-operation dominance-cache study. Screens are held off so every
// refutation is a CSP proof and the cache's contribution is unmistakable:
// a warm repeat and a post-detection reoptimize() skip almost the whole
// refuted prefix via sealed dominance proofs.
void print_cache_study() {
  std::puts("=== Dominance cache across operations (screens off) ===\n");

  const core::ProblemSpec spec = suite_like_spec("polynom", 0, 1);
  core::SynthesisRequest request;
  request.spec = spec;
  request.pruning.static_screens = false;
  // Lower bounds would refute the same prefix the cache seals; keep them
  // off so the cache is the only thing skipping work here.
  request.pruning.cost_bounds = false;
  request.observability.metrics = true;
  core::SynthesisEngine engine(request);

  util::TablePrinter table({"operation", "status", "mc", "tried",
                            "cache skips", "time (s)"});
  const auto add_row = [&](const std::string& name,
                           const core::OptimizeResult& result,
                           double seconds) {
    table.add_row(
        {name, core::to_string(result.status),
         result.has_solution() ? util::format_money(result.cost)
                               : std::string("-"),
         std::to_string(result.stats.combos_tried),
         std::to_string(result.stats.combos_skipped_cache),
         util::format_double(seconds, 3)});
    g_json.add(benchx::record_of("cache_study/" + name, spec, 1, result,
                                 seconds));
  };

  util::Timer timer;
  const core::OptimizeResult cold = engine.minimize();
  add_row("minimize (cold)", cold, timer.elapsed_seconds());

  timer.reset();
  const core::OptimizeResult warm = engine.minimize();
  add_row("minimize (warm)", warm, timer.elapsed_seconds());

  if (cold.has_solution()) {
    const std::set<core::LicenseKey> used =
        cold.solution.licenses_used(spec);
    const std::set<core::LicenseKey> banned = {*used.begin()};
    timer.reset();
    const core::OptimizeResult respun = engine.reoptimize(banned);
    add_row("reoptimize (1 banned)", respun, timer.elapsed_seconds());
  }
  benchx::print_table(table, "sealed infeasibility proofs carry over");
  std::puts("(every complete CSP refutation from the cold run dominates "
            "the same set —\nand its subsets — in later operations on the "
            "engine)\n");
}

// Flat-state A/B: the CSP data-layout gate (PruningOptions::csp_flat_state
// -> CspOptions::flat_state). The flat side swaps the inner loop's state
// for arena-backed structure-of-arrays with counter-based nogood
// propagation; its contract is bit-identity — statuses, costs, nodes_total
// and backjumps must match the legacy side exactly, with the wall clock
// (and the per-stage csp_dispatch ns/node this table reports) as the only
// difference. Budgets are node/combo-bound, never the clock, so the window
// both sides resolve is deterministic. Any drift sets the process exit
// code: the CI bench-smoke step runs this section via `--fast`.
bool g_flat_ab_mismatch = false;

void print_flat_ab_study() {
  std::puts("=== Flat solver state A/B (csp_flat_state off vs on) ===\n");

  struct Row {
    std::string name;
    core::ProblemSpec spec;
  };
  std::vector<Row> rows;
  rows.push_back({"polynom tight", suite_like_spec("polynom", 0, 1)});
  rows.push_back({"random n=25", random_spec(25, 1025)});

  util::TablePrinter table({"benchmark", "status", "mc", "nodes",
                            "legacy s", "flat s", "legacy ns/node",
                            "flat ns/node", "speedup", "match"});
  for (const Row& row : rows) {
    core::SynthesisRequest request;
    request.spec = row.spec;
    // Screens and bounds off so every windowed set is CSP work (the thing
    // the gate changes); node/combo budgets keep the section smoke-sized
    // and make the resolved window a pure function of the spec.
    request.pruning.static_screens = false;
    request.pruning.cost_bounds = false;
    request.limits.csp_node_limit = 60'000;
    request.limits.max_combos = 48;
    request.limits.time_limit_seconds = 300;
    request.observability.metrics = true;

    request.pruning.csp_flat_state = false;
    util::Timer timer;
    const core::OptimizeResult legacy = core::synthesize(request).result;
    const double legacy_s = timer.elapsed_seconds();
    g_json.add(benchx::record_of("flat_ab/legacy/" + row.name, row.spec, 1,
                                 legacy, legacy_s));

    request.pruning.csp_flat_state = true;
    timer.reset();
    const core::OptimizeResult flat = core::synthesize(request).result;
    const double flat_s = timer.elapsed_seconds();
    g_json.add(benchx::record_of("flat_ab/flat/" + row.name, row.spec, 1,
                                 flat, flat_s));

    const auto ns_per_node = [](const core::OptimizeResult& result) {
      const long long ns =
          result.metrics.stage(obs::Stage::kCspDispatch).total_ns;
      return result.stats.nodes_total > 0
                 ? static_cast<double>(ns) /
                       static_cast<double>(result.stats.nodes_total)
                 : 0.0;
    };
    const bool match = legacy.status == flat.status &&
                       legacy.cost == flat.cost &&
                       legacy.stats.nodes_total == flat.stats.nodes_total &&
                       legacy.stats.backjumps == flat.stats.backjumps;
    if (!match) {
      g_flat_ab_mismatch = true;
      std::printf(
          "MISMATCH on %s: legacy %s/%lld/%ld nodes/%ld bj vs flat "
          "%s/%lld/%ld nodes/%ld bj\n",
          row.name.c_str(), core::to_string(legacy.status).c_str(),
          legacy.cost, legacy.stats.nodes_total, legacy.stats.backjumps,
          core::to_string(flat.status).c_str(), flat.cost,
          flat.stats.nodes_total, flat.stats.backjumps);
    }
    table.add_row(
        {row.name, core::to_string(flat.status),
         flat.has_solution() ? util::format_money(flat.cost)
                             : std::string("-"),
         std::to_string(flat.stats.nodes_total),
         util::format_double(legacy_s, 2), util::format_double(flat_s, 2),
         util::format_double(ns_per_node(legacy), 1),
         util::format_double(ns_per_node(flat), 1),
         util::format_double(legacy_s / std::max(flat_s, 1e-3), 2) + "x",
         match ? "yes" : "NO"});
  }
  benchx::print_table(table, "flat-state bit-identity + node throughput");
  std::puts("(statuses, costs, nodes and backjumps must be identical — the "
            "gate only\nchanges the memory layout; ns/node is the "
            "csp_dispatch stage total over\nnodes_total)\n");
}

// Lower-bound A/B: the same size-sweep heavy row solved with the
// branch-and-bound lower bounds off and on. Bound prunes consume dispatch
// slots exactly like cache/screen skips, so the bounded run resolves the
// same cheapest-first budget window: license costs must be identical and
// proof strength can only go up (a time-limited 'unknown'/'feasible' row
// may finish inside the limit once the bounds skip the hopeless prefix).
void print_bounds_study() {
  std::puts("=== Lower-bound pruning A/B (cost bounds off vs on) ===\n");

  const core::ProblemSpec spec = random_spec(25, 1025);
  const auto rank = [](core::OptStatus status) {
    switch (status) {
      case core::OptStatus::kUnknown: return 0;
      case core::OptStatus::kFeasible: return 1;
      default: return 2;
    }
  };

  util::TablePrinter table({"engine", "status", "mc", "off s", "on s",
                            "speedup", "lb prunes", "match"});
  for (const bool heuristic : {false, true}) {
    const std::string name = heuristic ? "heuristic n=25" : "exact n=25";
    core::OptimizerOptions base;
    if (heuristic) base.strategy = core::Strategy::kHeuristic;
    base.time_limit_seconds = 15;
    base.collect_metrics = true;

    core::OptimizerOptions off_options = base;
    off_options.cost_bounds = false;
    util::Timer timer;
    const core::OptimizeResult off = core::synthesize(core::make_request(spec, off_options)).result;
    const double off_s = timer.elapsed_seconds();
    g_json.add(benchx::record_of("bounds_off/" + name, spec, 1, off, off_s));

    core::OptimizerOptions on_options = base;
    on_options.cost_bounds = true;
    timer.reset();
    const core::OptimizeResult on = core::synthesize(core::make_request(spec, on_options)).result;
    const double on_s = timer.elapsed_seconds();
    g_json.add(benchx::record_of("bounds_on/" + name, spec, 1, on, on_s));

    const bool match = rank(on.status) >= rank(off.status) &&
                       (!off.has_solution() || !on.has_solution() ||
                        off.cost == on.cost);
    table.add_row(
        {name, core::to_string(on.status),
         on.has_solution() ? util::format_money(on.cost) : std::string("-"),
         util::format_double(off_s, 2), util::format_double(on_s, 2),
         util::format_double(off_s / std::max(on_s, 1e-3), 1) + "x",
         std::to_string(on.stats.lb_prunes), match ? "yes" : "NO"});
    if (!match) {
      std::printf("MISMATCH on %s: off %s/%lld vs on %s/%lld\n",
                  name.c_str(), core::to_string(off.status).c_str(), off.cost,
                  core::to_string(on.status).c_str(), on.cost);
    }
  }
  benchx::print_table(table, "bound pruning A/B (1 thread)");
  std::puts("(bound prunes consume the same dispatch window as every other "
            "skip, so the\nlicense cost never moves — the bounds only stop "
            "the engine from re-proving\nhopeless sets the floors already "
            "refute)\n");
}

// Racing portfolio A/B: the same contested rows solved exact-only and with
// `PortfolioOptions::enabled` (greedy + SLS incumbent seeders racing the
// exact enumeration; see core/incumbent_pool.hpp). The portfolio trades
// none of the answer for time-to-optimal: members supply incumbent *costs*
// while every proof still comes from the exact dispatch loop, so on any
// row the exact side proves optimal the portfolio must report the
// identical status and cost. On budget-truncated rows the pool incumbent
// can only upgrade the answer (unknown -> feasible, or a cheaper feasible
// cost) — never weaken it. Either contract violated sets the process exit
// code; the CI bench-smoke step runs this section via `--fast`. The
// headline column is time-to-best: seconds until a binding at the final
// committed cost first existed (the seeders collapse it, the proof then
// catches up).
bool g_portfolio_mismatch = false;

void print_portfolio_study() {
  std::puts("=== Racing portfolio A/B (exact-only vs exact+greedy+SLS) ===\n");

  struct Row {
    std::string name;
    core::ProblemSpec spec;
    bool screens;  ///< static screens + cost bounds on this row
  };
  std::vector<Row> rows;
  // The contested regime the portfolio targets: the polynom row runs
  // screens/bounds off so every cheap-set refutation is real CSP grind
  // (the cache-study shape) and the SLS binder races a ~1s proof; the
  // high-n size-sweep rows keep the production pruning stack. mi=2 eases
  // capacity so the n=30/35 rows prove optimal — there the exact loop
  // only *finds* the winner late in the grind while a phase-A member
  // publishes the same cost in milliseconds.
  rows.push_back({"polynom contested", suite_like_spec("polynom", 0, 1),
                  false});
  rows.push_back({"random n=25", random_spec(25, 1025), true});
  // One extra cycle of slack + mi=2 keeps the high-n rows provable while
  // pushing the winning palette deep enough into the cheapest-first order
  // that the exact loop finds it late.
  for (const int n : {30, 36}) {
    core::ProblemSpec spec =
        random_spec(n, 1000 + static_cast<std::uint64_t>(n));
    spec.max_instances_per_offer = 2;
    spec.lambda_detection += 1;
    spec.lambda_recovery += 1;
    rows.push_back({"random n=" + std::to_string(n) + " mi=2 slack",
                    std::move(spec), true});
  }

  const auto rank = [](core::OptStatus status) {
    switch (status) {
      case core::OptStatus::kUnknown: return 0;
      case core::OptStatus::kFeasible: return 1;
      default: return 2;
    }
  };

  util::TablePrinter table({"benchmark", "status", "mc", "off s", "on s",
                            "off t-best", "on t-best", "t-best speedup",
                            "winner", "incumbents", "match"});
  for (const Row& row : rows) {
    core::SynthesisRequest request;
    request.spec = row.spec;
    request.pruning.static_screens = row.screens;
    request.pruning.cost_bounds = row.screens && !g_no_bounds;
    request.limits.time_limit_seconds = 120;
    request.observability.metrics = true;

    util::Timer timer;
    const core::OptimizeResult off = core::synthesize(request).result;
    const double off_s = timer.elapsed_seconds();
    g_json.add(benchx::record_of("portfolio_off/" + row.name, row.spec, 1,
                                 off, off_s));

    request.portfolio.enabled = true;
    timer.reset();
    const core::OptimizeResult on = core::synthesize(request).result;
    const double on_s = timer.elapsed_seconds();
    g_json.add(benchx::record_of("portfolio_on/" + row.name, row.spec, 1,
                                 on, on_s));

    // Proved rows: strict identity. Truncated rows: upgrade-only (proof
    // strength never weaker, committed cost never higher).
    const bool match =
        off.status == core::OptStatus::kOptimal ||
                off.status == core::OptStatus::kInfeasible
            ? (on.status == off.status && on.cost == off.cost)
            : (rank(on.status) >= rank(off.status) &&
               (!off.has_solution() || !on.has_solution() ||
                on.cost <= off.cost));
    if (!match) {
      g_portfolio_mismatch = true;
      std::printf("MISMATCH on %s: exact-only %s/%lld vs portfolio %s/%lld\n",
                  row.name.c_str(), core::to_string(off.status).c_str(),
                  off.cost, core::to_string(on.status).c_str(), on.cost);
    }
    const double off_best = off.stats.time_to_best_seconds;
    const double on_best = on.stats.time_to_best_seconds;
    table.add_row(
        {row.name, core::to_string(on.status),
         on.has_solution() ? util::format_money(on.cost) : std::string("-"),
         util::format_double(off_s, 3), util::format_double(on_s, 3),
         off_best >= 0 ? util::format_double(off_best, 3) : std::string("-"),
         on_best >= 0 ? util::format_double(on_best, 3) : std::string("-"),
         off_best >= 0 && on_best >= 0
             ? util::format_double(off_best / std::max(on_best, 1e-3), 1) +
                   "x"
             : std::string("-"),
         core::portfolio_member_name(on.stats.best_source),
         std::to_string(on.stats.incumbents_published),
         match ? "yes" : "NO"});
  }
  benchx::print_table(table, "portfolio time-to-optimal A/B (1 thread)");
  std::puts("(the exact loop still supplies every proof; the seeders only "
            "publish\nincumbent costs, so proved rows must be identical "
            "and t-best — when a\nbinding at the final cost first existed "
            "— is the portfolio's win)\n");
}

// Service throughput A/B: the same 16-request single-hot-market batch
// through an in-process SynthesisService with the engine pool at 1 (the
// pre-snapshot fully-serialized behavior) and at 4 (concurrent same-market
// serving over the shared warm snapshot). area_limit is excluded from
// spec_family_fingerprint, so 16 distinct *ascending* area limits land in
// one market group — ascending so no request's window is refuted by an
// earlier request's sealed proofs (a proof at a tighter area never
// dominates a roomier query) and both sides resolve the same work; the
// parallelism measured is real, not cache shortcutting. Identity is the
// hard contract: every concurrent reply must be bit-identical to a cold
// single-request solve, and a final *descending* replay (the tightest area
// again, now dominated by the batch's roomier proofs) must hit the warm
// snapshot. Either violated sets the process exit code. The ≥3x
// requests/sec gate additionally requires >= 4 hardware threads — on a
// smaller host the batch still runs and both identity gates still bind,
// but wall-clock speedup is hardware-limited and only reported.
bool g_service_mismatch = false;

void print_service_throughput_study() {
  std::puts("=== Service throughput (same-market concurrency A/B) ===\n");

  constexpr int kRequests = 16;
  constexpr int kWorkers = 4;
  std::vector<core::SynthesisRequest> requests;
  for (int i = 0; i < kRequests; ++i) {
    core::SynthesisRequest request;
    request.spec = suite_like_spec("polynom", 0, 1);
    request.spec.area_limit = 400'000 + 1'000 * static_cast<long long>(i);
    // Screens and bounds off so each request is real CSP grind; the
    // node/combo budgets make every resolved window a pure function of
    // the spec (the identity check depends on that determinism). Sized
    // for tens of milliseconds per solve so the speedup measurement
    // dominates scheduling noise, not the other way round.
    request.pruning.static_screens = false;
    request.pruning.cost_bounds = false;
    request.limits.max_combos = 96;
    request.limits.csp_node_limit = 60'000;
    request.limits.time_limit_seconds = 300;
    requests.push_back(std::move(request));
  }

  // Cold references: each request on a fresh engine, no service, no warm
  // state. The service's speed-only contract makes these the oracle.
  std::vector<core::SynthesisResponse> cold;
  cold.reserve(requests.size());
  for (const core::SynthesisRequest& request : requests) {
    cold.push_back(core::synthesize(request));
  }

  struct Batch {
    double wall_s = 0.0;
    double p50 = 0.0, p95 = 0.0, max = 0.0;
    long long replay_cache_skips = 0;
    int max_concurrent = 0;
  };
  const auto same_outcome = [&](const core::SynthesisResponse& got,
                                std::size_t i) {
    const core::SynthesisResponse& want = cold[i];
    return got.result.status == want.result.status &&
           got.result.cost == want.result.cost &&
           (!want.result.has_solution() ||
            got.result.solution.licenses_used(requests[i].spec) ==
                want.result.solution.licenses_used(requests[i].spec));
  };

  const auto run_batch = [&](int pool, const char* tag,
                             obs::RequestJournal* journal = nullptr) {
    Batch batch;
    service::ServiceConfig config;
    config.workers = kWorkers;
    config.queue_capacity = kRequests + 8;
    config.engine_pool = pool;
    config.journal = journal;
    service::SynthesisService service(config);

    std::mutex mutex;
    std::condition_variable cv;
    std::size_t finished = 0;
    std::vector<service::ServiceReply> replies(requests.size());
    util::Timer timer;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      service::JobInfo info;
      info.id = std::string(tag) + "-" + std::to_string(i);
      std::string error;
      const bool admitted = service.submit(
          info, requests[i],
          [&, i](const service::ServiceReply& reply) {
            std::lock_guard<std::mutex> lock(mutex);
            replies[i] = reply;
            ++finished;
            cv.notify_all();
          },
          &error);
      if (!admitted) {
        g_service_mismatch = true;
        std::printf("ADMISSION FAILURE (%s) on request %zu: %s\n", tag, i,
                    error.c_str());
        std::lock_guard<std::mutex> lock(mutex);
        ++finished;
      }
    }
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return finished == requests.size(); });
    }
    batch.wall_s = timer.elapsed_seconds();

    std::vector<double> e2e;
    for (std::size_t i = 0; i < replies.size(); ++i) {
      const service::ServiceReply& reply = replies[i];
      if (!reply.ok() || !reply.warm || !same_outcome(reply.response, i)) {
        g_service_mismatch = true;
        std::printf(
            "MISMATCH (%s) on area %lld: service %s/%lld vs cold %s/%lld\n",
            tag, requests[i].spec.area_limit,
            core::to_string(reply.response.result.status).c_str(),
            reply.response.result.cost,
            core::to_string(cold[i].result.status).c_str(),
            cold[i].result.cost);
      }
      e2e.push_back(reply.queue_seconds + reply.solve_seconds);
      g_json.add(benchx::record_of(std::string("service_") + tag +
                                       "/polynom",
                                   requests[i].spec, kWorkers,
                                   reply.response.result,
                                   reply.solve_seconds));
    }
    std::sort(e2e.begin(), e2e.end());
    const auto pct = [&](double p) {
      const std::size_t idx = std::min(
          e2e.size() - 1, static_cast<std::size_t>(
                              p * static_cast<double>(e2e.size())));
      return e2e[idx];
    };
    batch.p50 = pct(0.50);
    batch.p95 = pct(0.95);
    batch.max = e2e.back();

    // Descending replay: the tightest area again. Every roomier request's
    // sealed proofs dominate it, so the published snapshot must hand this
    // solve cache skips — and the skips consume dispatch slots, so the
    // answer still matches the cold oracle exactly.
    service::JobInfo replay;
    replay.id = std::string(tag) + "-replay";
    const service::ServiceReply replayed =
        service.execute(replay, requests.front());
    batch.replay_cache_skips =
        replayed.response.result.stats.combos_skipped_cache;
    if (!replayed.ok() || !same_outcome(replayed.response, 0) ||
        batch.replay_cache_skips <= 0) {
      g_service_mismatch = true;
      std::printf(
          "REPLAY FAILURE (%s): %s, cache skips %lld (want > 0, identical "
          "outcome)\n",
          tag,
          replayed.ok() ? core::to_string(replayed.response.result.status)
                              .c_str()
                        : replayed.error.c_str(),
          batch.replay_cache_skips);
    }

    // Measured engine concurrency, from the market group's high-water
    // mark (reported; the pool=1 side must stay at exactly 1).
    const service::Json stats = service.stats();
    for (const service::Json& market : stats.get("markets").items()) {
      batch.max_concurrent = std::max(
          batch.max_concurrent,
          static_cast<int>(market.get("max_concurrent").as_int(0)));
    }
    if (pool == 1 && batch.max_concurrent > 1) {
      g_service_mismatch = true;
      std::printf("POOL BREACH (%s): max_concurrent %d with pool=1\n", tag,
                  batch.max_concurrent);
    }

    benchx::JsonRecord summary;
    summary.benchmark = std::string("service_throughput/") + tag;
    summary.n = requests.front().spec.graph.num_ops();
    summary.lambda = requests.front().spec.lambda_detection;
    summary.threads = kWorkers;
    summary.status = "batch";
    summary.wall_s = batch.wall_s;
    summary.req_per_sec =
        static_cast<double>(kRequests) / std::max(batch.wall_s, 1e-9);
    summary.latency_p50_s = batch.p50;
    summary.latency_p95_s = batch.p95;
    summary.latency_max_s = batch.max;
    summary.combos_skipped_cache = batch.replay_cache_skips;
    g_json.add(std::move(summary));
    return batch;
  };

  const Batch serial = run_batch(1, "pool1");
  const Batch pooled = run_batch(kWorkers, "pool4");

  // Journal A/B: the same saturated pool-4 batch with the request journal
  // attached. The identity/replay gates inside run_batch bind again (the
  // journal only observes), and the journal itself must hold exactly one
  // admit and one "end" terminal for each of the 17 requests (16 batch +
  // 1 replay). The req/s delta vs. journal-off is the observability tax;
  // it is reported for every run and only a catastrophic slowdown fails
  // (CI machines are too noisy for a tight throughput gate).
  const std::string journal_path = "bench_service_journal.jsonl";
  std::remove(journal_path.c_str());
  Batch journaled;
  {
    std::string journal_error;
    auto journal = obs::RequestJournal::open(journal_path, &journal_error);
    if (journal == nullptr) {
      g_service_mismatch = true;
      std::printf("JOURNAL OPEN FAILURE: %s\n", journal_error.c_str());
    } else {
      journaled = run_batch(kWorkers, "pool4_journal", journal.get());
      journal->flush();
    }
  }  // journal destructor joins the writer before the file is read
  {
    std::ifstream in(journal_path);
    std::string line;
    int admits = 0;
    int ends = 0;
    int other_terminals = 0;
    while (std::getline(in, line)) {
      if (line.find("\"event\":\"admit\"") != std::string::npos) ++admits;
      if (line.find("\"event\":\"end\"") != std::string::npos) ++ends;
      if (line.find("\"event\":\"cancel\"") != std::string::npos ||
          line.find("\"event\":\"deadline_miss\"") != std::string::npos ||
          line.find("\"event\":\"drop\"") != std::string::npos) {
        ++other_terminals;
      }
    }
    if (admits != kRequests + 1 || ends != kRequests + 1 ||
        other_terminals != 0) {
      g_service_mismatch = true;
      std::printf(
          "JOURNAL MISMATCH: %d admits, %d ends, %d other terminals "
          "(want %d/%d/0)\n",
          admits, ends, other_terminals, kRequests + 1, kRequests + 1);
    }
  }
  std::remove(journal_path.c_str());
  const double journal_tax =
      journaled.wall_s > 0.0
          ? (journaled.wall_s - pooled.wall_s) / pooled.wall_s
          : 0.0;
  std::printf("journal overhead: %+.1f%% wall time on the pool=%d batch\n",
              journal_tax * 100.0, kWorkers);
  if (journal_tax > 0.25) {
    g_service_mismatch = true;
    std::printf("JOURNAL OVERHEAD FAILURE: %+.1f%% > 25%%\n",
                journal_tax * 100.0);
  }

  const double speedup =
      serial.wall_s / std::max(pooled.wall_s, 1e-9);
  const unsigned hw = std::thread::hardware_concurrency();
  util::TablePrinter table({"mode", "wall s", "req/s", "p50 s", "p95 s",
                            "max s", "max conc", "replay skips"});
  const auto add_row = [&](const char* name, const Batch& batch) {
    table.add_row(
        {name, util::format_double(batch.wall_s, 2),
         util::format_double(static_cast<double>(kRequests) /
                                 std::max(batch.wall_s, 1e-9),
                             1),
         util::format_double(batch.p50, 3),
         util::format_double(batch.p95, 3),
         util::format_double(batch.max, 3),
         std::to_string(batch.max_concurrent),
         std::to_string(batch.replay_cache_skips)});
  };
  add_row("pool=1 (serialized)", serial);
  add_row("pool=4 (concurrent)", pooled);
  add_row("pool=4 + journal", journaled);
  benchx::print_table(table, "single hot market, 16 requests, 4 workers");
  std::printf("throughput speedup: %.2fx (%u hardware threads)\n",
              speedup, hw);
  if (hw >= 4) {
    if (speedup < 3.0) {
      g_service_mismatch = true;
      std::printf("SPEEDUP FAILURE: %.2fx < 3x with %u hardware threads\n",
                  speedup, hw);
    }
  } else {
    std::puts("(hardware-limited: < 4 hardware threads, so the >=3x "
              "requests/sec gate is\nreported only; identity and replay "
              "gates above still bind)");
  }
  std::puts("(every reply is bit-identical to a cold single-request solve; "
            "the pool only\nchanges who computes an answer first, never the "
            "answer)\n");
}

void BM_ExactByOps(benchmark::State& state) {
  const core::ProblemSpec spec =
      random_spec(static_cast<int>(state.range(0)),
                  2000 + static_cast<std::uint64_t>(state.range(0)));
  core::OptimizerOptions options;
  options.time_limit_seconds = 15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::synthesize(core::make_request(spec, options)).result);
  }
}
BENCHMARK(BM_ExactByOps)->Arg(5)->Arg(10)->Arg(15)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_HeuristicByOps(benchmark::State& state) {
  const core::ProblemSpec spec =
      random_spec(static_cast<int>(state.range(0)),
                  2000 + static_cast<std::uint64_t>(state.range(0)));
  core::OptimizerOptions options;
  options.strategy = core::Strategy::kHeuristic;
  options.time_limit_seconds = 15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::synthesize(core::make_request(spec, options)).result);
  }
}
BENCHMARK(BM_HeuristicByOps)->Arg(5)->Arg(10)->Arg(15)->Arg(20)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

// Custom main (instead of HT_BENCH_MAIN): strip `--threads N`,
// `--json <path>`, `--fast` and `--no-bounds` before google-benchmark sees
// the argv, then run the reproduction, the parallel-scaling / pruning /
// bounds / cache sections, and the registered timings. `--fast` runs only
// the pruning / cache / flat-state / portfolio / service-throughput
// studies — the subset whose statuses and costs are reproducible under any
// load, which is what the CI bench-smoke diff checks. `--no-bounds` disables the lower bounds
// everywhere (the bounds study still runs its own explicit A/B).
int main(int argc, char** argv) {
  const std::string json_path = ht::benchx::consume_json_flag(argc, argv);
  int threads =
      std::max(2, static_cast<int>(ht::util::ThreadPool::hardware_concurrency()));
  bool fast = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[i + 1]);
      ++i;
    } else if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else if (std::strcmp(argv[i], "--no-bounds") == 0) {
      g_no_bounds = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  if (!fast) {
    print_reproduction();
    if (threads > 1) print_parallel_scaling(threads);
  }
  print_pruning_study();
  print_cache_study();
  print_flat_ab_study();
  print_portfolio_study();
  print_service_throughput_study();
  if (!fast) print_bounds_study();

  if (!json_path.empty()) {
    if (g_json.write_to(json_path)) {
      std::printf("wrote %zu records to %s\n", g_json.size(),
                  json_path.c_str());
    } else {
      std::printf("FAILED to write %s\n", json_path.c_str());
      return 1;
    }
  }
  if (g_flat_ab_mismatch) {
    std::puts("flat_ab: bit-identity violated; failing the run");
    return 1;
  }
  if (g_portfolio_mismatch) {
    std::puts("portfolio: exact-identity/upgrade contract violated; "
              "failing the run");
    return 1;
  }
  if (g_service_mismatch) {
    std::puts("service_throughput: identity/replay/speedup contract "
              "violated; failing the run");
    return 1;
  }
  if (fast) return 0;

  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
