// Run-time detection & recovery experiment (the paper's Section 3 claims,
// measured). For rule-compliant designs produced by the optimizer we run
// adversarial Monte-Carlo Trojan campaigns and report, per strategy:
//
//   * activation rate    — how often the injected Trojan's payload fired
//   * detection rate     — NC/RC mismatch given a fired payload
//   * recovery rate      — recovered-to-golden given a detection
//
// Strategies compared: the paper's rules-based re-binding, and the
// soft-error-style "re-execute on the same cores" baseline the paper argues
// cannot work (Section 3.2). Both combinational and sequential (counter)
// triggers are exercised, including close-operand triggers that recovery
// Rule 2 exists for.
#include "bench_util.hpp"

#include "benchmarks/classic.hpp"
#include "core/engine.hpp"
#include "trojan/monte_carlo.hpp"
#include "trojan/profiling.hpp"
#include "vendor/catalogs.hpp"

namespace {

using namespace ht;

struct Design {
  std::string name;
  core::ProblemSpec spec;
  core::Solution solution;
};

Design make_design(const std::string& name, dfg::Dfg graph, int lambda_det,
                   int lambda_rec, long long area, bool profile_close) {
  core::ProblemSpec spec;
  spec.graph = std::move(graph);
  spec.catalog = vendor::section5();
  spec.lambda_detection = lambda_det;
  spec.lambda_recovery = lambda_rec;
  spec.with_recovery = true;
  spec.area_limit = area;
  if (profile_close) {
    util::Rng rng(2024);
    trojan::ProfileConfig config;
    config.tolerance = 0;
    spec.closely_related =
        trojan::profile_close_pairs(spec.graph, config, rng);
  }
  core::OptimizerOptions options;
  options.strategy = core::Strategy::kHeuristic;
  options.time_limit_seconds = 20;
  const core::OptimizeResult result = core::synthesize(core::make_request(spec, options)).result;
  if (!result.has_solution()) {
    throw util::InternalError("bench_runtime: could not build design " +
                              name);
  }
  return Design{name, std::move(spec), result.solution};
}

std::string rate(double value) { return util::format_double(value, 3); }

void run_and_report(util::TablePrinter& table, const Design& design,
                    const std::string& scenario,
                    const trojan::CampaignConfig& config,
                    trojan::RecoveryStrategy strategy) {
  const trojan::CampaignStats stats =
      trojan::run_campaign(design.spec, design.solution, config, strategy);
  const std::string strategy_name =
      strategy == trojan::RecoveryStrategy::kRebindPerRules
          ? "rebind-per-rules"
          : "re-execute-same";
  table.add_row(
      {design.name, scenario, strategy_name, std::to_string(stats.trials),
       std::to_string(stats.payload_activated),
       rate(stats.detection_rate()), std::to_string(stats.recovery_ran),
       rate(stats.recovery_rate()),
       std::to_string(stats.silent_corruptions)});
}

void print_reproduction() {
  std::puts("=== Run-time Trojan detection & recovery (Section 3) ===");
  std::puts("Adversarial campaigns: each trial infects one (vendor, class)");
  std::puts("license used by the design with a rare trigger matching a real");
  std::puts("operation's operands. Seed 2014.\n");

  const Design polynom =
      make_design("polynom", benchmarks::polynom(), 4, 3, 60000, false);
  const Design diff2 =
      make_design("diff2", benchmarks::diff2(), 6, 5, 120000, true);

  util::TablePrinter table({"design", "trigger", "strategy", "trials",
                            "activated", "det-rate", "recoveries",
                            "rec-rate", "silent"});

  trojan::CampaignConfig combinational;
  combinational.trials = 400;
  combinational.sequential_fraction = 0.0;
  for (const Design* design : {&polynom, &diff2}) {
    run_and_report(table, *design, "combinational", combinational,
                   trojan::RecoveryStrategy::kRebindPerRules);
  }

  trojan::CampaignConfig sequential;
  sequential.trials = 400;
  sequential.sequential_fraction = 1.0;
  sequential.sequential_threshold = 4;
  for (const Design* design : {&polynom, &diff2}) {
    run_and_report(table, *design, "sequential(k=4)", sequential,
                   trojan::RecoveryStrategy::kRebindPerRules);
  }

  trojan::CampaignConfig close_mask;
  close_mask.trials = 400;
  close_mask.sequential_fraction = 0.0;
  close_mask.trigger_mask = ~0xFull;  // fires on closely-related operands
  run_and_report(table, diff2, "close-operands", close_mask,
                 trojan::RecoveryStrategy::kRebindPerRules);

  // The baseline that cannot work: re-execution on the same cores, with the
  // Trojan in the primary computation.
  trojan::CampaignConfig nc_only = combinational;
  nc_only.target_both_computations = false;
  for (const Design* design : {&polynom, &diff2}) {
    run_and_report(table, *design, "combinational/NC", nc_only,
                   trojan::RecoveryStrategy::kReexecuteSame);
    run_and_report(table, *design, "combinational/NC", nc_only,
                   trojan::RecoveryStrategy::kRebindPerRules);
  }

  benchx::print_table(table, "");
  std::puts("Rules-based recovery clears every detected Trojan; plain");
  std::puts("re-execution replays the trigger and never recovers.\n");

  // Collusion exposure (what detection Rule 2 buys): arm EVERY license
  // with an always-on collusion Trojan and stream random frames.
  std::puts("=== Collusion exposure: rules vs. no anti-collusion rule ===");
  util::TablePrinter collusion({"design", "det-R2", "frames",
                                "frames w/ activation", "detected"});
  auto probe_variant = [&](const std::string& label, bool anti_collusion) {
    core::ProblemSpec spec;
    spec.graph = benchmarks::diff2();
    spec.catalog = vendor::section5();
    spec.lambda_detection = 6;
    spec.lambda_recovery = 5;
    spec.with_recovery = true;
    spec.area_limit = 120000;
    spec.rules.detection_parent_child = anti_collusion;
    spec.rules.detection_sibling = anti_collusion;
    core::OptimizerOptions options;
    options.time_limit_seconds = 15;
    const core::OptimizeResult result = core::synthesize(core::make_request(spec, options)).result;
    if (!result.has_solution()) return;
    const trojan::CollusionProbe probe =
        trojan::run_collusion_probe(spec, result.solution, 200, 2014);
    collusion.add_row({label, anti_collusion ? "on" : "off",
                       std::to_string(probe.frames),
                       std::to_string(probe.frames_with_activation),
                       std::to_string(probe.frames_detected)});
  };
  probe_variant("diff2 (full rules)", true);
  probe_variant("diff2 (no det-R2)", false);
  benchx::print_table(collusion, "");
  std::puts("With the anti-collusion rule, a colluding IP pair never finds");
  std::puts("a same-vendor channel; without it, the cost-minimal binding");
  std::puts("chains same-vendor cores and the Trojan activates freely.\n");
}

void BM_CampaignPolynom(benchmark::State& state) {
  static const Design design =
      make_design("polynom", benchmarks::polynom(), 4, 3, 60000, false);
  trojan::CampaignConfig config;
  config.trials = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trojan::run_campaign(design.spec, design.solution, config));
  }
}
BENCHMARK(BM_CampaignPolynom)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_SingleSimulatedFrame(benchmark::State& state) {
  static const Design design =
      make_design("diff2", benchmarks::diff2(), 6, 5, 120000, false);
  const trojan::RuntimeSimulator simulator(design.spec, design.solution);
  const std::vector<trojan::Word> inputs = {1, 2, 3, 4, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run(inputs, {}));
  }
}
BENCHMARK(BM_SingleSimulatedFrame)->Unit(benchmark::kMicrosecond);

}  // namespace

HT_BENCH_MAIN(print_reproduction)
