// The two concrete IP-core catalogs used by the paper's evaluation.
#pragma once

#include "vendor/catalog.hpp"

namespace ht::vendor {

/// The paper's Table 1: 4 vendors, adders and multipliers only. Areas in
/// unit cells, costs in dollars, copied verbatim from the paper.
Catalog table1();

/// The Section 5 market: 8 vendors x 3 types (adder, multiplier, alu). The
/// paper states its table is "very similar to [Table 1]" but omits it for
/// space; this is our deterministic extension — vendors 1–4 keep their
/// Table 1 adder/multiplier numbers, vendors 5–8 and the alu column use
/// values drawn in the same ranges (documented in DESIGN.md).
Catalog section5();

}  // namespace ht::vendor
