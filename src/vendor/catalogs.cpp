#include "vendor/catalogs.hpp"

namespace ht::vendor {

using dfg::ResourceClass;

Catalog table1() {
  Catalog catalog(4);
  // VENDOR | adder area/cost | multiplier area/cost   (paper Table 1)
  catalog.set_offer(0, ResourceClass::kAdder, {532, 450});
  catalog.set_offer(0, ResourceClass::kMultiplier, {6843, 950});
  catalog.set_offer(1, ResourceClass::kAdder, {640, 630});
  catalog.set_offer(1, ResourceClass::kMultiplier, {5731, 880});
  catalog.set_offer(2, ResourceClass::kAdder, {763, 540});
  catalog.set_offer(2, ResourceClass::kMultiplier, {6325, 760});
  catalog.set_offer(3, ResourceClass::kAdder, {618, 580});
  catalog.set_offer(3, ResourceClass::kMultiplier, {5937, 1000});
  return catalog;
}

Catalog section5() {
  Catalog catalog(8);
  struct Row {
    IpOffer adder, multiplier, alu;
  };
  // Vendors 1-4: Table 1 numbers plus an alu offer; vendors 5-8: same ranges.
  const Row rows[8] = {
      {{532, 450}, {6843, 950}, {1105, 520}},
      {{640, 630}, {5731, 880}, {980, 610}},
      {{763, 540}, {6325, 760}, {1240, 480}},
      {{618, 580}, {5937, 1000}, {1022, 690}},
      {{585, 495}, {6104, 905}, {1178, 555}},
      {{701, 465}, {6590, 830}, {1063, 640}},
      {{549, 610}, {5810, 945}, {1310, 505}},
      {{672, 525}, {6477, 795}, {941, 585}},
  };
  for (VendorId v = 0; v < 8; ++v) {
    catalog.set_offer(v, ResourceClass::kAdder, rows[v].adder);
    catalog.set_offer(v, ResourceClass::kMultiplier, rows[v].multiplier);
    catalog.set_offer(v, ResourceClass::kAlu, rows[v].alu);
  }
  return catalog;
}

}  // namespace ht::vendor
