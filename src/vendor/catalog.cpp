#include "vendor/catalog.hpp"

#include <algorithm>

namespace ht::vendor {

Catalog::Catalog(int num_vendors) : num_vendors_(num_vendors) {
  util::check_spec(num_vendors > 0, "Catalog requires at least one vendor");
  offers_.resize(static_cast<std::size_t>(num_vendors) *
                 dfg::kNumResourceClasses);
}

std::optional<IpOffer>& Catalog::slot(VendorId v, dfg::ResourceClass rc) {
  util::check_spec(v >= 0 && v < num_vendors_, "Catalog: vendor out of range");
  return offers_[static_cast<std::size_t>(v) * dfg::kNumResourceClasses +
                 static_cast<std::size_t>(rc)];
}

const std::optional<IpOffer>& Catalog::slot(VendorId v,
                                            dfg::ResourceClass rc) const {
  util::check_spec(v >= 0 && v < num_vendors_, "Catalog: vendor out of range");
  return offers_[static_cast<std::size_t>(v) * dfg::kNumResourceClasses +
                 static_cast<std::size_t>(rc)];
}

void Catalog::set_offer(VendorId v, dfg::ResourceClass rc, IpOffer offer) {
  util::check_spec(offer.area > 0 && offer.cost > 0,
                   "Catalog: offers need positive area and cost");
  slot(v, rc) = offer;
}

bool Catalog::offers(VendorId v, dfg::ResourceClass rc) const {
  return slot(v, rc).has_value();
}

const IpOffer& Catalog::offer(VendorId v, dfg::ResourceClass rc) const {
  const std::optional<IpOffer>& entry = slot(v, rc);
  util::check_spec(entry.has_value(),
                   "Catalog: " + vendor_name(v) + " offers no " +
                       dfg::resource_class_name(rc));
  return *entry;
}

std::vector<VendorId> Catalog::vendors_by_cost(dfg::ResourceClass rc) const {
  std::vector<VendorId> result;
  for (VendorId v = 0; v < num_vendors_; ++v) {
    if (offers(v, rc)) result.push_back(v);
  }
  std::sort(result.begin(), result.end(), [&](VendorId a, VendorId b) {
    const IpOffer& oa = offer(a, rc);
    const IpOffer& ob = offer(b, rc);
    if (oa.cost != ob.cost) return oa.cost < ob.cost;
    if (oa.area != ob.area) return oa.area < ob.area;
    return a < b;
  });
  return result;
}

int Catalog::num_vendors_offering(dfg::ResourceClass rc) const {
  int count = 0;
  for (VendorId v = 0; v < num_vendors_; ++v) {
    if (offers(v, rc)) ++count;
  }
  return count;
}

std::string Catalog::vendor_name(VendorId v) const {
  return "Ven " + std::to_string(v + 1);
}

void Catalog::validate() const {
  for (const auto& entry : offers_) {
    if (entry) {
      util::check_spec(entry->area > 0 && entry->cost > 0,
                       "Catalog: offer with non-positive area/cost");
    }
  }
}

}  // namespace ht::vendor
