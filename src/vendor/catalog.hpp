// Vendor / IP-core market model.
//
// A Catalog is the designer's view of the IP market: for each vendor and
// each resource class (adder / multiplier / alu) it may hold an *offer*
// giving the silicon area of one core instance and the one-time license
// cost. Matching the paper's cost model, instantiating an IP core any number
// of times incurs its license cost exactly once (Section 4: "using multiple
// copies of a same IP core does not incur additional fee"), while every
// instance contributes its area.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dfg/dfg.hpp"

namespace ht::vendor {

/// Dense 0-based vendor index. Printed 1-based ("Ven 1") to match the paper.
using VendorId = int;

/// One catalog entry: a purchasable IP core of some resource class.
struct IpOffer {
  int area = 0;  ///< unit cells per instance
  int cost = 0;  ///< license fee in dollars (paid once per (vendor, class))
};

/// The market: |vendors| x |resource classes| optional offers.
class Catalog {
 public:
  explicit Catalog(int num_vendors);

  int num_vendors() const { return num_vendors_; }

  /// Registers (or replaces) vendor `v`'s offer for class `rc`.
  void set_offer(VendorId v, dfg::ResourceClass rc, IpOffer offer);

  /// True if vendor `v` sells cores of class `rc`.
  bool offers(VendorId v, dfg::ResourceClass rc) const;

  /// The offer; throws util::SpecError if the vendor has none for `rc`.
  const IpOffer& offer(VendorId v, dfg::ResourceClass rc) const;

  /// Vendors offering class `rc`, cheapest license first (ties: lower area,
  /// then lower id). This ordering drives greedy vendor selection.
  std::vector<VendorId> vendors_by_cost(dfg::ResourceClass rc) const;

  /// Number of vendors offering class `rc`.
  int num_vendors_offering(dfg::ResourceClass rc) const;

  /// "Ven 3" style display name (1-based like the paper).
  std::string vendor_name(VendorId v) const;

  /// Throws util::SpecError on non-positive areas/costs.
  void validate() const;

 private:
  std::optional<IpOffer>& slot(VendorId v, dfg::ResourceClass rc);
  const std::optional<IpOffer>& slot(VendorId v, dfg::ResourceClass rc) const;

  int num_vendors_;
  std::vector<std::optional<IpOffer>> offers_;  // vendor-major
};

}  // namespace ht::vendor
