#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

namespace ht::obs {

namespace internal {
std::atomic<bool> g_tracing{false};

namespace {
// Plain thread_local (not atomic): only the owning thread reads or writes
// its own slot, so scopes cost one store on entry and one on exit.
thread_local std::uint64_t g_correlation = 0;
}  // namespace

std::uint64_t correlation() { return g_correlation; }
void set_correlation(std::uint64_t id) { g_correlation = id; }
}  // namespace internal

namespace {

using Clock = std::chrono::steady_clock;

/// Hard per-thread event cap: a runaway capture degrades to counting drops
/// instead of exhausting memory. Spans that already recorded their begin
/// still record their end past the cap, so traces stay balanced.
constexpr std::size_t kMaxEvents = 1u << 20;

std::int64_t now_ns_since_epoch() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// One thread's append-only event buffer. Only its owning thread appends;
/// the mutex exists so the collector (stop_tracing) and stale-session
/// resets synchronize with appends without data races.
struct Buffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint64_t seq = 0;
  std::uint64_t session = 0;
  std::uint64_t dropped = 0;
  /// Depth of spans whose begin was dropped at the cap; their ends are
  /// dropped too, keeping recorded begin/end pairs balanced.
  int open_dropped = 0;
  std::uint32_t tid = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<Buffer>> buffers;
  std::atomic<std::uint64_t> session{0};
  std::atomic<std::int64_t> base_ns{0};
  std::uint32_t next_tid = 0;
};

Registry& registry() {
  // Leaked on purpose: thread_local buffer holders may be destroyed during
  // process shutdown after function-local statics, so the registry must
  // never be torn down.
  static Registry* instance = new Registry;
  return *instance;
}

Buffer& local_buffer() {
  thread_local std::shared_ptr<Buffer> tls;
  if (!tls) {
    tls = std::make_shared<Buffer>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    tls->tid = reg.next_tid++;
    tls->session = reg.session.load(std::memory_order_relaxed);
    reg.buffers.push_back(tls);
  }
  return *tls;
}

void append(TraceEvent event) {
  Registry& reg = registry();
  Buffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  const std::uint64_t session = reg.session.load(std::memory_order_acquire);
  if (buffer.session != session) {
    // First event of a new capture on this thread: discard leftovers from
    // an earlier session.
    buffer.events.clear();
    buffer.seq = 0;
    buffer.dropped = 0;
    buffer.open_dropped = 0;
    buffer.session = session;
  }
  if (buffer.events.size() >= kMaxEvents) {
    if (event.phase == 'E' && buffer.open_dropped == 0) {
      // End of a span whose begin *was* recorded: keep it so the trace
      // stays balanced (depth is bounded by span nesting, so the overshoot
      // past the cap is tiny).
    } else {
      if (event.phase == 'B') ++buffer.open_dropped;
      if (event.phase == 'E') --buffer.open_dropped;
      ++buffer.dropped;
      return;
    }
  }
  event.tid = buffer.tid;
  event.seq = buffer.seq++;
  event.corr = internal::correlation();
  const std::int64_t base = reg.base_ns.load(std::memory_order_relaxed);
  const std::int64_t now = now_ns_since_epoch();
  event.ts_ns = now > base ? static_cast<std::uint64_t>(now - base) : 0;
  buffer.events.push_back(std::move(event));
}

void json_escape(const std::string& text, std::ostream& out) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out << c;
    }
  }
}

}  // namespace

void start_tracing() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.session.fetch_add(1, std::memory_order_acq_rel);
  reg.base_ns.store(now_ns_since_epoch(), std::memory_order_relaxed);
  internal::g_tracing.store(true, std::memory_order_release);
}

TraceLog stop_tracing() {
  TraceLog log;
  Registry& reg = registry();
  internal::g_tracing.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(reg.mutex);
  const std::uint64_t session = reg.session.load(std::memory_order_relaxed);
  for (const std::shared_ptr<Buffer>& buffer : reg.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    if (buffer->session != session) continue;  // never wrote this capture
    log.dropped += buffer->dropped;
    log.events.insert(log.events.end(),
                      std::make_move_iterator(buffer->events.begin()),
                      std::make_move_iterator(buffer->events.end()));
    buffer->events.clear();
    buffer->seq = 0;
    buffer->dropped = 0;
    buffer->open_dropped = 0;
  }
  // Buffers whose owning thread has exited (registry holds the only
  // reference) have been drained and can go.
  reg.buffers.erase(
      std::remove_if(reg.buffers.begin(), reg.buffers.end(),
                     [](const std::shared_ptr<Buffer>& b) {
                       return b.use_count() == 1;
                     }),
      reg.buffers.end());
  // Deterministic merge: given the same per-thread event streams, the
  // output order is a pure function of the recorded data.
  std::sort(log.events.begin(), log.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.seq < b.seq;
            });
  return log;
}

void trace_begin(const char* name) {
  if (!tracing_enabled()) return;
  TraceEvent event;
  event.name = name;
  event.phase = 'B';
  append(std::move(event));
}

void trace_begin(const char* name, const char* k1, long long v1) {
  if (!tracing_enabled()) return;
  TraceEvent event;
  event.name = name;
  event.phase = 'B';
  event.num_args = 1;
  event.args[0].key = k1;
  event.args[0].num = v1;
  append(std::move(event));
}

void trace_end(const char* name) {
  if (!tracing_enabled()) return;
  TraceEvent event;
  event.name = name;
  event.phase = 'E';
  append(std::move(event));
}

void trace_instant(const char* name) {
  if (!tracing_enabled()) return;
  TraceEvent event;
  event.name = name;
  append(std::move(event));
}

void trace_instant(const char* name, const char* k1, long long v1) {
  if (!tracing_enabled()) return;
  TraceEvent event;
  event.name = name;
  event.num_args = 1;
  event.args[0].key = k1;
  event.args[0].num = v1;
  append(std::move(event));
}

void trace_instant(const char* name, const char* k1, std::string v1) {
  if (!tracing_enabled()) return;
  TraceEvent event;
  event.name = name;
  event.num_args = 1;
  event.args[0].key = k1;
  event.args[0].str = std::move(v1);
  append(std::move(event));
}

void trace_instant(const char* name, const char* k1, long long v1,
                   const char* k2, long long v2) {
  if (!tracing_enabled()) return;
  TraceEvent event;
  event.name = name;
  event.num_args = 2;
  event.args[0].key = k1;
  event.args[0].num = v1;
  event.args[1].key = k2;
  event.args[1].num = v2;
  append(std::move(event));
}

void trace_instant(const char* name, const char* k1, std::string v1,
                   const char* k2, long long v2) {
  if (!tracing_enabled()) return;
  TraceEvent event;
  event.name = name;
  event.num_args = 2;
  event.args[0].key = k1;
  event.args[0].str = std::move(v1);
  event.args[1].key = k2;
  event.args[1].num = v2;
  append(std::move(event));
}

void write_chrome_trace(const TraceLog& log, std::ostream& out) {
  out << "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < log.events.size(); ++i) {
    const TraceEvent& event = log.events[i];
    out << "  {\"name\": \"";
    json_escape(event.name, out);
    out << "\", \"ph\": \"" << event.phase << "\", \"ts\": ";
    // Microseconds with nanosecond precision, no float rounding drama.
    out << event.ts_ns / 1000 << '.';
    const auto frac = static_cast<int>(event.ts_ns % 1000);
    out << static_cast<char>('0' + frac / 100)
        << static_cast<char>('0' + (frac / 10) % 10)
        << static_cast<char>('0' + frac % 10);
    out << ", \"pid\": 1, \"tid\": " << event.tid;
    if (event.num_args > 0 || event.corr != 0) {
      out << ", \"args\": {";
      for (int a = 0; a < event.num_args; ++a) {
        if (a > 0) out << ", ";
        out << '"';
        json_escape(event.args[a].key, out);
        out << "\": ";
        if (!event.args[a].str.empty()) {
          out << '"';
          json_escape(event.args[a].str, out);
          out << '"';
        } else {
          out << event.args[a].num;
        }
      }
      if (event.corr != 0) {
        if (event.num_args > 0) out << ", ";
        out << "\"req\": " << event.corr;
      }
      out << '}';
    }
    out << '}' << (i + 1 < log.events.size() ? ",\n" : "\n");
  }
  out << "], \"displayTimeUnit\": \"ms\", \"otherData\": {\"dropped\": "
      << log.dropped << "}}\n";
}

}  // namespace ht::obs
