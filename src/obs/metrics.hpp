// Solver metrics: named per-stage counters and fixed-bucket duration
// histograms, aggregated per synthesis operation into a SolveMetrics struct
// that rides on OptimizeResult next to OptimizeStats.
//
// Collection model. The engine binds a thread-local SolveMetrics sink for
// each worker (MetricsBinding); instrumentation sites anywhere below it —
// the dispatch loop, the CSP, the cache, the validator — record through
// record_stage()/StageTimer without any API plumbing. An unbound thread
// (metrics collection off, or a CSP subtree-split pool lane) pays one
// thread-local load + branch per site and records nothing, so the disabled
// path stays in the noise. Workers merge their local sinks into the shared
// per-operation struct under the engine's commit lock, which keeps the
// whole thing TSan-clean without hot-path atomics.
//
// Determinism. Metrics only observe; no control flow reads them. Results
// are bit-identical with collection on or off, at any thread count —
// enforced by tests/obs_test.cpp. Durations (and therefore histograms and
// totals) legitimately vary run to run; counts of deterministic events
// (prunes, probes, validations) do not at a fixed thread count.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace ht::obs {

/// The solver pipeline's stages, one histogram each. Kept in sync with
/// stage_name() and the metric catalog in DESIGN.md.
enum class Stage {
  kEnumeration = 0,  ///< license-set enumeration + queue construction
  kScreen,           ///< static feasibility screens, per license set
  kCacheProbe,       ///< dominance-cache frozen-tier lookups
  kBoundsRefute,     ///< per-palette branch-and-bound floor checks
  kLpBound,          ///< LP relaxation pricing of the global cost floor
  kCspDispatch,      ///< full license-set evaluation (greedy + CSP)
  kNogoodPropagation,  ///< nogood blocking checks inside the CSP
  kValidation,       ///< solution validation before commit
  kSlsSearch,        ///< portfolio SLS member (decimation + descent)
};
inline constexpr int kNumStages = 9;

const char* stage_name(Stage stage);

/// Why a license set was skipped without CSP dispatch. kBound is the
/// combinatorial floor / per-palette floors; kLp marks sets only the
/// LP-tightened portion of the cost floor refutes.
enum class PruneReason { kScreen = 0, kCache, kBound, kLp };
inline constexpr int kNumPruneReasons = 4;

const char* prune_reason_name(PruneReason reason);

/// Histogram buckets by duration: <1us, <10us, <100us, <1ms, <10ms,
/// <100ms, <1s, >=1s.
inline constexpr int kNumBuckets = 8;
int bucket_of(long long ns);

struct StageStats {
  long long count = 0;
  long long total_ns = 0;
  std::array<long long, kNumBuckets> buckets{};

  /// Records one timed sample covering `n` underlying events (n > 1 for
  /// per-solve aggregates like nogood propagation).
  void add(long long ns, long long n = 1);
  void merge(const StageStats& other);
  bool operator==(const StageStats&) const = default;
};

struct SolveMetrics {
  std::array<StageStats, kNumStages> stages{};
  std::array<long long, kNumPruneReasons> prunes{};

  StageStats& stage(Stage s) { return stages[static_cast<std::size_t>(s)]; }
  const StageStats& stage(Stage s) const {
    return stages[static_cast<std::size_t>(s)];
  }
  long long prune(PruneReason r) const {
    return prunes[static_cast<std::size_t>(r)];
  }
  void add_prune(PruneReason r, long long n = 1) {
    prunes[static_cast<std::size_t>(r)] += n;
  }

  bool empty() const;
  void reset() { *this = SolveMetrics{}; }
  void merge(const SolveMetrics& other);
  bool operator==(const SolveMetrics&) const = default;
};

/// Stable JSON serialization:
/// {"stages": {"screen": {"count": N, "total_ns": N, "buckets": [8 x N]},
///  ...}, "prunes": {"screen": N, "cache": N, "bound": N, "lp": N}}
std::string to_json(const SolveMetrics& metrics);

/// Parses the to_json() format (unknown keys tolerated). Returns false on
/// malformed input; `out` is untouched on failure.
bool parse_metrics_json(const std::string& text, SolveMetrics* out);

/// The calling thread's bound sink, or nullptr (collection off).
SolveMetrics* bound_metrics();

/// Scoped thread-local sink binding. Nestable: restores the previous
/// binding on destruction. Pass nullptr to record nothing in the scope.
class MetricsBinding {
 public:
  explicit MetricsBinding(SolveMetrics* sink);
  ~MetricsBinding();
  MetricsBinding(const MetricsBinding&) = delete;
  MetricsBinding& operator=(const MetricsBinding&) = delete;

 private:
  SolveMetrics* previous_;
};

/// Records into the bound sink; no-op when unbound.
void record_stage(Stage stage, long long ns, long long count = 1);
void record_prune(PruneReason reason, long long count = 1);

std::int64_t metrics_now_ns();

/// RAII stage timer. Unbound: one thread-local load + branch, no clock
/// reads.
class StageTimer {
 public:
  explicit StageTimer(Stage stage) : sink_(bound_metrics()), stage_(stage) {
    if (sink_ != nullptr) start_ns_ = metrics_now_ns();
  }
  ~StageTimer();
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  SolveMetrics* sink_;
  Stage stage_;
  std::int64_t start_ns_ = 0;
};

}  // namespace ht::obs
