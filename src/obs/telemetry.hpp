// Scrape-side observability primitives: a bounded percentile window with
// an order-independent merge, and a Prometheus text-exposition builder.
//
// PercentileWindow holds at most `capacity` samples. Past the cap it keeps
// the LARGEST samples seen — the multiset of the top-capacity values of
// everything ever pushed — which makes push() and merge() commutative and
// associative: any partition of the same samples across worker threads,
// merged in any order, yields bit-identical window contents (the property
// obs_test locks down). Keeping the top tail biases retained quantiles
// upward once the window saturates; for the latency windows that feed
// anomaly thresholds and telemetry gauges that is the conservative
// direction (a threshold never relaxes because old slow samples aged out
// of a FIFO). Size the capacity above the expected scrape interval's
// traffic and the bias never engages.
//
// PrometheusText renders the text exposition format (version 0.0.4):
// counters, gauges, and cumulative histograms — the `telemetry` wire op's
// payload, scraped by `thls-client top/tail` or any Prometheus agent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace ht::obs {

class PercentileWindow {
 public:
  explicit PercentileWindow(std::size_t capacity = 4096);

  void push(double sample);
  void merge(const PercentileWindow& other);

  std::size_t size() const { return samples_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Total samples ever pushed (merge sums it), not just those retained.
  long long pushed() const { return pushed_; }
  bool empty() const { return samples_.empty(); }
  void clear();

  /// The p-quantile (0 <= p <= 1) of the retained samples by the same
  /// index rule stats() uses: sorted[floor(p * n)], clamped. 0 when empty.
  double quantile(double p) const;
  double max() const;

  /// Retained samples, ascending — the deterministic merge artifact the
  /// tests compare.
  std::vector<double> sorted_samples() const;

 private:
  std::size_t capacity_;
  /// Min-heap over the retained samples (samples_[0] is the smallest), so
  /// evicting the smallest on overflow is O(log n).
  std::vector<double> samples_;
  long long pushed_ = 0;
};

/// Builder for Prometheus text exposition (one TYPE/HELP header per
/// metric, then samples). Append in metric order; emit() returns the body.
class PrometheusText {
 public:
  /// `labels` is the rendered label set without braces, e.g.
  /// "market=\"0x1234\"" — empty for none.
  void counter(const std::string& name, const std::string& help,
               double value, const std::string& labels = "");
  void gauge(const std::string& name, const std::string& help, double value,
             const std::string& labels = "");

  /// Cumulative histogram from a StageStats (nanosecond log-decade
  /// buckets, see metrics.hpp) rendered with seconds-valued `le` bounds
  /// 1e-06 .. 1 plus +Inf, `_sum` in seconds, and `_count`.
  void histogram(const std::string& name, const std::string& help,
                 const StageStats& stats);

  std::string str() const { return body_; }

 private:
  void sample(const std::string& name, const std::string& labels,
              double value);
  void header(const std::string& name, const std::string& help,
              const char* type);

  std::string body_;
};

}  // namespace ht::obs
