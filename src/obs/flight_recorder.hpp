// Flight recorder: an always-on fixed-size ring of recent coarse spans per
// service worker, dumped as a Chrome-trace file when a request ends
// anomalously — so a slow, cancelled, or deadline-missed request is
// explained after the fact without ever running with full tracing on.
//
// Recording model. Each service worker lane owns one ring slot; the
// service records a handful of phase spans per request (queue wait, engine
// checkout, solve, snapshot merge) tagged with the request-correlation id.
// Rings are fixed-size and overwrite oldest-first, so steady-state cost is
// a few array writes per request and memory is bounded for the daemon's
// lifetime. Recording never touches the solver hot path — only the
// service's per-request bookkeeping, which is microseconds next to a
// solve.
//
// Anomaly rules (checked once per finished request, in note_reply):
//   1. the request missed its deadline, or
//   2. it finished cancelled, or
//   3. its end-to-end latency exceeds
//        max(min_anomaly_seconds, anomaly_factor * rolling_p95)
//      once at least `min_samples` replies have been observed (the rolling
//      p95 comes from a bounded PercentileWindow of recent latencies).
// On anomaly the correlated slice of EVERY lane's ring (all spans carrying
// the request id, plus each lane's overlapping recent activity for
// context) is written to `dump_dir/req-<id>.trace.json` as Chrome "X"
// complete events — loadable in Perfetto, validated by
// tools/check_trace_json.py. At most `max_dumps` files are written per
// recorder lifetime so an anomaly storm cannot fill a disk.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"

namespace ht::obs {

struct FlightRecorderConfig {
  /// Directory for anomaly dumps (created on first dump). Empty disables
  /// dumping; the rings still record (cheap) so tests can inspect them.
  std::string dump_dir;
  /// Spans retained per worker lane.
  std::size_t ring_capacity = 256;
  /// Latency floor below which a request is never anomalous on time alone.
  double min_anomaly_seconds = 0.25;
  /// e2e > anomaly_factor * rolling p95 flags a request.
  double anomaly_factor = 4.0;
  /// Replies observed before the latency rule arms (deadline misses and
  /// cancellations dump from the first request).
  int min_samples = 64;
  /// Lifetime cap on dump files.
  int max_dumps = 64;
};

/// One recorded span. Names must be string literals (the ring stores the
/// pointer, trace.hpp's convention).
struct FlightSpan {
  const char* name = nullptr;
  std::uint64_t corr = 0;      ///< request id the span belongs to
  std::uint64_t begin_ns = 0;  ///< recorder-relative steady clock
  std::uint64_t end_ns = 0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Steady nanoseconds since the recorder was created — the timebase
  /// every recorded span uses.
  std::uint64_t now_ns() const;

  /// Records one completed span into lane `lane` (any non-negative index;
  /// lanes materialize on first use). Thread-safe; lanes are expected to
  /// be worker-private so contention is nil.
  void record(int lane, const FlightSpan& span);

  /// Feeds one finished request's end-to-end latency, evaluates the
  /// anomaly rules, and dumps the correlated ring slice when they fire.
  /// Returns the dump path ("" = no dump). `expired`/`cancelled` mirror
  /// the service reply flags.
  std::string note_reply(std::uint64_t corr, double e2e_seconds,
                         bool expired, bool cancelled);

  /// The latency threshold a request must exceed to be anomalous right
  /// now, or a negative value while the window is still arming.
  double latency_threshold() const;

  /// Spans recorded for `corr` across every lane (oldest first per lane).
  /// Test/diagnostic surface; dumps use the same extraction.
  std::vector<FlightSpan> correlated(std::uint64_t corr) const;

  int dumps_written() const;

 private:
  struct Lane {
    std::vector<FlightSpan> ring;  ///< capacity-bounded, wraps
    std::size_t next = 0;
    std::uint64_t recorded = 0;
  };

  std::string dump(std::uint64_t corr);

  const FlightRecorderConfig config_;
  const std::chrono::steady_clock::time_point base_;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  PercentileWindow window_;
  int dumps_ = 0;
};

}  // namespace ht::obs
