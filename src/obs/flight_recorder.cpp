#include "obs/flight_recorder.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace ht::obs {

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(std::move(config)),
      base_(std::chrono::steady_clock::now()),
      window_(4096) {}

std::uint64_t FlightRecorder::now_ns() const {
  const auto elapsed = std::chrono::steady_clock::now() - base_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

void FlightRecorder::record(int lane, const FlightSpan& span) {
  if (lane < 0 || span.name == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto index = static_cast<std::size_t>(lane);
  while (lanes_.size() <= index) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  Lane& slot = *lanes_[index];
  if (slot.ring.size() < config_.ring_capacity) {
    slot.ring.push_back(span);
  } else {
    slot.ring[slot.next] = span;
  }
  slot.next = (slot.next + 1) % std::max<std::size_t>(1,
                                                      config_.ring_capacity);
  ++slot.recorded;
}

double FlightRecorder::latency_threshold() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (window_.size() < static_cast<std::size_t>(
                           std::max(1, config_.min_samples))) {
    return -1.0;
  }
  return std::max(config_.min_anomaly_seconds,
                  config_.anomaly_factor * window_.quantile(0.95));
}

std::string FlightRecorder::note_reply(std::uint64_t corr,
                                       double e2e_seconds, bool expired,
                                       bool cancelled) {
  bool anomalous = expired || cancelled;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Threshold BEFORE this sample joins the window, so one slow request
    // cannot raise the bar it is judged against.
    if (!anomalous &&
        window_.size() >=
            static_cast<std::size_t>(std::max(1, config_.min_samples))) {
      const double threshold =
          std::max(config_.min_anomaly_seconds,
                   config_.anomaly_factor * window_.quantile(0.95));
      anomalous = e2e_seconds > threshold;
    }
    window_.push(e2e_seconds);
    if (!anomalous || config_.dump_dir.empty() ||
        dumps_ >= config_.max_dumps) {
      return "";
    }
    ++dumps_;
  }
  return dump(corr);
}

std::vector<FlightSpan> FlightRecorder::correlated(std::uint64_t corr) const {
  std::vector<FlightSpan> spans;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    // Oldest-first ring order: [next, end) then [0, next) once wrapped.
    const std::size_t n = lane->ring.size();
    const std::size_t start =
        n == config_.ring_capacity ? lane->next : 0;
    for (std::size_t i = 0; i < n; ++i) {
      const FlightSpan& span = lane->ring[(start + i) % n];
      if (span.corr == corr) spans.push_back(span);
    }
  }
  return spans;
}

int FlightRecorder::dumps_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dumps_;
}

std::string FlightRecorder::dump(std::uint64_t corr) {
  // Lanes are snapshotted with lane indices so the dump keeps per-worker
  // rows ("tid" = lane) like a live trace would.
  struct Entry {
    FlightSpan span;
    int lane;
  };
  std::vector<Entry> entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
      const Lane& lane = *lanes_[l];
      const std::size_t n = lane.ring.size();
      const std::size_t start =
          n == config_.ring_capacity ? lane.next : 0;
      for (std::size_t i = 0; i < n; ++i) {
        const FlightSpan& span = lane.ring[(start + i) % n];
        if (span.corr == corr) {
          entries.push_back({span, static_cast<int>(l)});
        }
      }
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.span.begin_ns != b.span.begin_ns) {
                return a.span.begin_ns < b.span.begin_ns;
              }
              return a.lane < b.lane;
            });

  ::mkdir(config_.dump_dir.c_str(), 0755);  // best effort; open reports
  char name[48];
  std::snprintf(name, sizeof name, "req-%llu.trace.json",
                static_cast<unsigned long long>(corr));
  const std::string path = config_.dump_dir + "/" + name;
  std::ofstream out(path, std::ios::trunc);
  if (!out) return "";
  out << "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const FlightSpan& span = entries[i].span;
    const std::uint64_t dur_ns =
        span.end_ns > span.begin_ns ? span.end_ns - span.begin_ns : 0;
    out << "  {\"name\": \"" << span.name << "\", \"ph\": \"X\", \"ts\": "
        << span.begin_ns / 1000 << '.' << (span.begin_ns % 1000) / 100
        << (span.begin_ns % 100) / 10 << span.begin_ns % 10
        << ", \"dur\": " << dur_ns / 1000 << '.' << (dur_ns % 1000) / 100
        << (dur_ns % 100) / 10 << dur_ns % 10 << ", \"pid\": 1, \"tid\": "
        << entries[i].lane << ", \"args\": {\"req\": " << span.corr << "}}"
        << (i + 1 < entries.size() ? ",\n" : "\n");
  }
  out << "], \"displayTimeUnit\": \"ms\", \"otherData\": {\"req\": " << corr
      << "}}\n";
  return out.good() ? path : "";
}

}  // namespace ht::obs
