// Solver-wide tracing: spans and instant events with small key/value
// payloads, recorded into thread-local append-only buffers and exported as
// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// Overhead contract. Recording is gated on one process-wide relaxed atomic
// flag: when tracing is off, every HT_TRACE_SPAN / trace_instant call is a
// single load + branch — no locks, no allocation, no clock read — so
// instrumentation can live on solver hot paths permanently. When tracing is
// on, events go into a per-thread buffer (its own mutex, uncontended in
// steady state) stamped with a steady-clock timestamp relative to the
// capture start.
//
// Sessions. start_tracing() opens a capture (bumps the session id, so
// buffers left over from earlier captures are lazily discarded) and
// stop_tracing() closes it and returns every surviving event, merged
// deterministically by (timestamp, thread id, per-thread sequence). Start
// and stop must be called while no instrumented solver is running — the
// engine joins its worker pools before returning, so bracketing an engine
// operation is always safe. Each thread's buffer is capped (kMaxEvents
// per thread); past the cap new spans and instants are counted as dropped
// while close events of already-recorded spans still land, so exported
// traces stay balanced.
//
// Event names and payload keys must be string literals (or otherwise
// outlive the capture); payload *values* may be dynamic strings.
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace ht::obs {

namespace internal {
extern std::atomic<bool> g_tracing;
/// The calling thread's request-correlation id (0 = none). Stamped onto
/// every recorded event; see CorrelationScope.
std::uint64_t correlation();
void set_correlation(std::uint64_t id);
}  // namespace internal

/// True while a capture is open. The relaxed load is the entire cost of a
/// disabled trace point.
inline bool tracing_enabled() {
  return internal::g_tracing.load(std::memory_order_relaxed);
}

/// One key/value payload entry. `str` non-empty means a string value;
/// otherwise `num` is the value.
struct TraceArg {
  const char* key = nullptr;
  long long num = 0;
  std::string str;
};

struct TraceEvent {
  const char* name = nullptr;
  char phase = 'i';  ///< 'B' span begin, 'E' span end, 'i' instant
  std::uint32_t tid = 0;
  std::uint64_t ts_ns = 0;  ///< relative to the capture start
  std::uint64_t seq = 0;    ///< per-thread recording order
  /// Request-correlation id active on the recording thread (0 = none).
  /// Exported as a "req" arg, so every span of one service request is
  /// joinable across threads and with the request journal.
  std::uint64_t corr = 0;
  int num_args = 0;
  TraceArg args[2];
};

/// Everything one capture produced, merged across threads.
struct TraceLog {
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;  ///< events lost to per-thread buffer caps
};

/// Opens a capture: clears stale buffers, rebases the clock, enables
/// recording. Calling with a capture already open restarts it.
void start_tracing();

/// Closes the capture and returns the merged log (empty when no capture
/// was open). Idempotent.
TraceLog stop_tracing();

void trace_begin(const char* name);
void trace_begin(const char* name, const char* k1, long long v1);
void trace_end(const char* name);
void trace_instant(const char* name);
void trace_instant(const char* name, const char* k1, long long v1);
void trace_instant(const char* name, const char* k1, std::string v1);
void trace_instant(const char* name, const char* k1, long long v1,
                   const char* k2, long long v2);
void trace_instant(const char* name, const char* k1, std::string v1,
                   const char* k2, long long v2);

/// Serializes a log in Chrome trace-event format:
/// {"traceEvents": [...], "displayTimeUnit": "ms", ...}. Timestamps are
/// exported in microseconds (fractional, nanosecond precision).
void write_chrome_trace(const TraceLog& log, std::ostream& out);

/// RAII span: begin at construction, end at destruction. The enabled flag
/// is sampled once at construction so a span that started recording always
/// records its end (flag flips mid-span never unbalance the trace).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (tracing_enabled()) {
      name_ = name;
      trace_begin(name);
    }
  }
  TraceSpan(const char* name, const char* key, long long value) {
    if (tracing_enabled()) {
      name_ = name;
      trace_begin(name, key, value);
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) trace_end(name_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  ///< non-null iff the begin was recorded
};

/// The calling thread's correlation id (0 when none is set).
inline std::uint64_t correlation_id() { return internal::correlation(); }

/// RAII request-correlation scope: every event the calling thread records
/// while the scope is alive carries `id` (0 = clear). Nestable — the
/// previous id is restored on destruction — and zero-cost beyond one
/// thread-local store each way; when tracing is off nothing ever reads it.
/// The service worker sets one per job; the engine re-establishes it on
/// every search lane it spawns (the id travels inside the request, not via
/// thread inheritance).
class CorrelationScope {
 public:
  explicit CorrelationScope(std::uint64_t id)
      : previous_(internal::correlation()) {
    internal::set_correlation(id);
  }
  ~CorrelationScope() { internal::set_correlation(previous_); }
  CorrelationScope(const CorrelationScope&) = delete;
  CorrelationScope& operator=(const CorrelationScope&) = delete;

 private:
  std::uint64_t previous_;
};

#define HT_OBS_CONCAT_(a, b) a##b
#define HT_OBS_CONCAT(a, b) HT_OBS_CONCAT_(a, b)
/// Scoped span over the rest of the enclosing block:
///   HT_TRACE_SPAN("stage/csp");
///   HT_TRACE_SPAN("stage/csp", "combo", index);
#define HT_TRACE_SPAN(...) \
  ::ht::obs::TraceSpan HT_OBS_CONCAT(ht_trace_span_, __LINE__)(__VA_ARGS__)

}  // namespace ht::obs
