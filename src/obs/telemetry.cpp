#include "obs/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ht::obs {

PercentileWindow::PercentileWindow(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

void PercentileWindow::push(double sample) {
  ++pushed_;
  if (samples_.size() < capacity_) {
    samples_.push_back(sample);
    std::push_heap(samples_.begin(), samples_.end(), std::greater<>());
    return;
  }
  // Saturated: keep the top-capacity multiset. Ties at the boundary keep
  // the incumbent — either choice retains the same multiset of values, so
  // the merge stays order-independent.
  if (sample <= samples_.front()) return;
  std::pop_heap(samples_.begin(), samples_.end(), std::greater<>());
  samples_.back() = sample;
  std::push_heap(samples_.begin(), samples_.end(), std::greater<>());
}

void PercentileWindow::merge(const PercentileWindow& other) {
  const long long other_pushed = other.pushed_;
  for (const double sample : other.samples_) push(sample);
  // push() already counted the retained samples; account for the ones the
  // other window had itself evicted, so pushed() is partition-invariant.
  pushed_ +=
      other_pushed - static_cast<long long>(other.samples_.size());
}

void PercentileWindow::clear() {
  samples_.clear();
  pushed_ = 0;
}

double PercentileWindow::quantile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = sorted_samples();
  std::size_t idx =
      static_cast<std::size_t>(p * static_cast<double>(sorted.size()));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

double PercentileWindow::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

std::vector<double> PercentileWindow::sorted_samples() const {
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

namespace {

std::string format_value(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  // Integral values (the common counter case) print without a fraction so
  // scrapes diff cleanly; everything else gets fixed precision.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%.9g", value);
  return buffer;
}

}  // namespace

void PrometheusText::header(const std::string& name, const std::string& help,
                            const char* type) {
  body_ += "# HELP " + name + " " + help + "\n";
  body_ += "# TYPE " + name + " ";
  body_ += type;
  body_ += '\n';
}

void PrometheusText::sample(const std::string& name,
                            const std::string& labels, double value) {
  body_ += name;
  if (!labels.empty()) body_ += "{" + labels + "}";
  body_ += ' ';
  body_ += format_value(value);
  body_ += '\n';
}

void PrometheusText::counter(const std::string& name, const std::string& help,
                             double value, const std::string& labels) {
  // One header per metric name even when labeled series repeat it: track
  // by scanning the body for the TYPE line (bodies are small; scrapes are
  // seconds apart).
  if (body_.find("# TYPE " + name + " ") == std::string::npos) {
    header(name, help, "counter");
  }
  sample(name, labels, value);
}

void PrometheusText::gauge(const std::string& name, const std::string& help,
                           double value, const std::string& labels) {
  if (body_.find("# TYPE " + name + " ") == std::string::npos) {
    header(name, help, "gauge");
  }
  sample(name, labels, value);
}

void PrometheusText::histogram(const std::string& name,
                               const std::string& help,
                               const StageStats& stats) {
  header(name, help, "histogram");
  // metrics.hpp buckets are <1us, <10us, ..., <1s, >=1s: the first seven
  // map onto cumulative le bounds 1e-06..1 (seconds), the last is +Inf.
  static const char* kBounds[] = {"1e-06", "1e-05", "0.0001", "0.001",
                                  "0.01",  "0.1",   "1"};
  long long cumulative = 0;
  for (int b = 0; b < kNumBuckets - 1; ++b) {
    cumulative += stats.buckets[static_cast<std::size_t>(b)];
    sample(name + "_bucket", std::string("le=\"") + kBounds[b] + "\"",
           static_cast<double>(cumulative));
  }
  cumulative += stats.buckets[kNumBuckets - 1];
  sample(name + "_bucket", "le=\"+Inf\"", static_cast<double>(cumulative));
  sample(name + "_sum", "", static_cast<double>(stats.total_ns) * 1e-9);
  // _count must equal the +Inf bucket (one bucket hit per add(); `count`
  // can run ahead of it for multi-event samples, see StageStats::add).
  sample(name + "_count", "", static_cast<double>(cumulative));
}

}  // namespace ht::obs
