#include "obs/journal.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace ht::obs {
namespace {

long long wall_ms_now() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void append_escaped(const std::string& text, std::string* out) {
  for (const char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) *out += c;
    }
  }
}

void append_hex64(std::uint64_t value, std::string* out) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "0x%016llx",
                static_cast<unsigned long long>(value));
  *out += buffer;
}

void append_double(double value, std::string* out) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.6f", value);
  *out += buffer;
}

}  // namespace

bool JournalEvent::lifecycle_endpoint() const {
  return std::strcmp(type, "admit") == 0 || std::strcmp(type, "end") == 0 ||
         std::strcmp(type, "cancel") == 0 ||
         std::strcmp(type, "deadline_miss") == 0 ||
         std::strcmp(type, "reject") == 0 || std::strcmp(type, "drop") == 0;
}

std::string journal_line(const JournalEvent& event, std::uint64_t seq,
                         long long ts_ms) {
  std::string line;
  line.reserve(160);
  line += "{\"journal_version\":";
  line += std::to_string(kJournalVersion);
  line += ",\"seq\":";
  line += std::to_string(seq);
  line += ",\"ts_ms\":";
  line += std::to_string(ts_ms);
  line += ",\"event\":\"";
  append_escaped(event.type, &line);
  line += "\",\"req\":";
  line += std::to_string(event.req);
  if (event.market != 0) {
    line += ",\"market\":\"";
    append_hex64(event.market, &line);
    line += '"';
  }
  if (!event.id.empty()) {
    line += ",\"id\":\"";
    append_escaped(event.id, &line);
    line += '"';
  }
  if (!event.status.empty()) {
    line += ",\"status\":\"";
    append_escaped(event.status, &line);
    line += '"';
  }
  if (event.queue_s >= 0.0) {
    line += ",\"queue_s\":";
    append_double(event.queue_s, &line);
  }
  if (event.solve_s >= 0.0) {
    line += ",\"solve_s\":";
    append_double(event.solve_s, &line);
  }
  if (event.cost != JournalEvent::kNoCost) {
    line += ",\"cost\":";
    line += std::to_string(event.cost);
  }
  if (event.nodes >= 0) {
    line += ",\"nodes\":";
    line += std::to_string(event.nodes);
  }
  if (event.snapshot_version >= 0) {
    line += ",\"snapshot_version\":";
    line += std::to_string(event.snapshot_version);
  }
  line += '}';
  return line;
}

std::unique_ptr<RequestJournal> RequestJournal::open(
    const std::string& path, std::string* error,
    std::size_t buffer_capacity) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    if (error != nullptr) {
      *error = "cannot open journal " + path + ": " + std::strerror(errno);
    }
    return nullptr;
  }
  return std::unique_ptr<RequestJournal>(
      new RequestJournal(file, path, buffer_capacity));
}

RequestJournal::RequestJournal(std::FILE* file, std::string path,
                               std::size_t buffer_capacity)
    : path_(std::move(path)),
      buffer_capacity_(std::max<std::size_t>(1, buffer_capacity)),
      file_(file),
      writer_([this] { writer_loop(); }) {}

RequestJournal::~RequestJournal() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closing_ = true;
    ready_.notify_all();
  }
  writer_.join();
  std::fclose(file_);
}

void RequestJournal::append(const JournalEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closing_) return;
  if (pending_.size() >= buffer_capacity_ && !event.lifecycle_endpoint()) {
    // Backlogged: shed the best-effort in-between events, never the
    // admit/terminal pair the journal's exactly-once contract rides on
    // (their overshoot is bounded by the admission queue depth).
    ++counters_.dropped;
    return;
  }
  pending_.push_back(journal_line(event, next_seq_++, wall_ms_now()));
  ++counters_.appended;
  ready_.notify_one();
}

void RequestJournal::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  flushed_.wait(lock, [&] {
    return pending_.empty() || closing_;
  });
}

JournalCounters RequestJournal::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void RequestJournal::writer_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    ready_.wait(lock, [&] { return !pending_.empty() || closing_; });
    while (!pending_.empty()) {
      const std::string line = std::move(pending_.front());
      pending_.pop_front();
      // Write with no lock held: a slow disk must never stall append().
      lock.unlock();
      std::fputs(line.c_str(), file_);
      std::fputc('\n', file_);
      // Line-at-a-time flush: a crash loses only still-buffered events,
      // and a concurrent reader (tail -f, the CI validator on a live
      // daemon) only ever sees whole lines.
      std::fflush(file_);
      lock.lock();
      ++counters_.written;
    }
    flushed_.notify_all();
    if (closing_) return;
  }
}

}  // namespace ht::obs
