// Append-only JSON-lines request journal — the durable record of every
// request's lifecycle through the synthesis service (thlsd --journal).
//
// One line per event, one event per request-lifecycle transition:
//
//   admit         request accepted into the admission queue
//   reject        admission failed (queue full); TERMINAL
//   dequeue       a worker picked the request up (carries the queue wait)
//   warm_attach   worker adopted the market's published warm snapshot
//   solve_start   the engine was entered
//   incumbent     the solve published a new best solution (cost attached)
//   end           request completed; TERMINAL (status/cost/nodes attached)
//   cancel        request finished cancelled (queued or mid-solve); TERMINAL
//   deadline_miss request expired before or during the solve; TERMINAL
//   drop          request drained at shutdown without running; TERMINAL
//
// Every request writes exactly one admit (or nothing, if admission never
// assigned it an id) and exactly one terminal event; the in-between events
// are best-effort. tools/check_trace_json.py --journal enforces exactly
// that shape, plus monotonic request ids and per-request ordering.
//
// Line schema (journal_version 1; unknown keys must be tolerated):
//   {"journal_version":1,"seq":N,"ts_ms":N,"event":"admit","req":N,
//    "market":"0x...","id":"...",...}
// `seq` is a process-wide strictly increasing sequence number; `ts_ms` is
// wall-clock milliseconds since the Unix epoch (for operators; ordering
// guarantees ride on `seq`, never on the clock). Event-specific keys:
// queue_s, solve_s, status, cost, nodes, snapshot_version.
//
// Durability and bounding. append() serializes the line and hands it to a
// dedicated writer thread over a bounded buffer; the writer flushes after
// every line (fputs + fflush), so a crash loses at most the lines still in
// the buffer — never tears one mid-line. When the buffer is full,
// *droppable* events (dequeue/warm_attach/solve_start/incumbent) are
// counted and discarded; lifecycle endpoints (admit and the terminals) are
// never dropped — the buffer grows past its cap for them, bounded by the
// admission queue depth. The journal never blocks a solver thread on disk.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace ht::obs {

inline constexpr int kJournalVersion = 1;

/// One journal line before serialization. Optional fields use sentinels:
/// negative seconds/nodes and kJournalNoCost are "absent".
struct JournalEvent {
  /// Event name from the fixed vocabulary above. Must outlive the call
  /// (string literals in practice).
  const char* type = "";
  std::uint64_t req = 0;     ///< service request id (admission ticket)
  std::uint64_t market = 0;  ///< spec_family_fingerprint; 0 = omit
  std::string id;            ///< client-chosen job id; empty = omit
  std::string status;        ///< OptStatus name; empty = omit
  double queue_s = -1.0;     ///< queue wait; < 0 = omit
  double solve_s = -1.0;     ///< solve wall time; < 0 = omit
  long long cost = kNoCost;  ///< incumbent / final cost; kNoCost = omit
  long long nodes = -1;      ///< CSP nodes of the solve; < 0 = omit
  long long snapshot_version = -1;  ///< warm snapshot adopted; < 0 = omit

  static constexpr long long kNoCost = -0x7fffffffffffffff;
  /// True for events that may never be discarded at the buffer cap.
  bool lifecycle_endpoint() const;
};

/// Monotonic journal counters, for stats()/telemetry reconciliation.
struct JournalCounters {
  long long appended = 0;  ///< events accepted into the buffer
  long long written = 0;   ///< lines flushed to the file
  long long dropped = 0;   ///< droppable events discarded at the cap
};

class RequestJournal {
 public:
  /// Opens `path` for appending and starts the writer thread. Returns
  /// nullptr with `error` set when the file cannot be opened.
  /// `buffer_capacity` bounds the droppable-event backlog.
  static std::unique_ptr<RequestJournal> open(
      const std::string& path, std::string* error,
      std::size_t buffer_capacity = 4096);

  /// Flushes everything buffered and joins the writer thread.
  ~RequestJournal();

  RequestJournal(const RequestJournal&) = delete;
  RequestJournal& operator=(const RequestJournal&) = delete;

  /// Serializes and enqueues one event. Thread-safe; never blocks on I/O.
  /// Stamps `seq` and `ts_ms`. Callers must order a request's admit before
  /// its other events themselves (the service appends admit while still
  /// holding its admission lock).
  void append(const JournalEvent& event);

  /// Blocks until every event appended so far has been flushed to disk.
  void flush();

  JournalCounters counters() const;
  const std::string& path() const { return path_; }

 private:
  RequestJournal(std::FILE* file, std::string path,
                 std::size_t buffer_capacity);
  void writer_loop();

  const std::string path_;
  const std::size_t buffer_capacity_;
  std::FILE* file_;

  mutable std::mutex mutex_;
  std::condition_variable ready_;    ///< writer wakeup
  std::condition_variable flushed_;  ///< flush() wakeup
  std::deque<std::string> pending_;
  std::uint64_t next_seq_ = 1;
  JournalCounters counters_;
  bool closing_ = false;

  std::thread writer_;
};

/// Serializes one event as a journal line (no trailing newline); exposed
/// for tests. `seq`/`ts_ms` are the values the journal would stamp.
std::string journal_line(const JournalEvent& event, std::uint64_t seq,
                         long long ts_ms);

}  // namespace ht::obs
