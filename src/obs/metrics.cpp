#include "obs/metrics.hpp"

#include <chrono>
#include <cstdlib>

namespace ht::obs {

namespace {

thread_local SolveMetrics* t_sink = nullptr;

constexpr const char* kStageNames[kNumStages] = {
    "enumeration",     "screen",       "cache_probe",
    "bounds_refute",   "lp_bound",     "csp_dispatch",
    "nogood_propagation", "validation", "sls_search",
};

constexpr const char* kPruneNames[kNumPruneReasons] = {"screen", "cache",
                                                       "bound", "lp"};

}  // namespace

const char* stage_name(Stage stage) {
  return kStageNames[static_cast<std::size_t>(stage)];
}

const char* prune_reason_name(PruneReason reason) {
  return kPruneNames[static_cast<std::size_t>(reason)];
}

int bucket_of(long long ns) {
  long long bound = 1'000;  // 1us
  for (int b = 0; b < kNumBuckets - 1; ++b) {
    if (ns < bound) return b;
    bound *= 10;
  }
  return kNumBuckets - 1;
}

void StageStats::add(long long ns, long long n) {
  count += n;
  total_ns += ns;
  ++buckets[static_cast<std::size_t>(bucket_of(ns))];
}

void StageStats::merge(const StageStats& other) {
  count += other.count;
  total_ns += other.total_ns;
  for (int b = 0; b < kNumBuckets; ++b) buckets[b] += other.buckets[b];
}

bool SolveMetrics::empty() const { return *this == SolveMetrics{}; }

void SolveMetrics::merge(const SolveMetrics& other) {
  for (int s = 0; s < kNumStages; ++s) stages[s].merge(other.stages[s]);
  for (int r = 0; r < kNumPruneReasons; ++r) prunes[r] += other.prunes[r];
}

std::string to_json(const SolveMetrics& metrics) {
  std::string out = "{\"stages\": {";
  for (int s = 0; s < kNumStages; ++s) {
    const StageStats& stats = metrics.stages[static_cast<std::size_t>(s)];
    if (s > 0) out += ", ";
    out += '"';
    out += kStageNames[s];
    out += "\": {\"count\": " + std::to_string(stats.count) +
           ", \"total_ns\": " + std::to_string(stats.total_ns) +
           ", \"buckets\": [";
    for (int b = 0; b < kNumBuckets; ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(stats.buckets[static_cast<std::size_t>(b)]);
    }
    out += "]}";
  }
  out += "}, \"prunes\": {";
  for (int r = 0; r < kNumPruneReasons; ++r) {
    if (r > 0) out += ", ";
    out += '"';
    out += kPruneNames[r];
    out += "\": " + std::to_string(metrics.prunes[static_cast<std::size_t>(r)]);
  }
  out += "}}";
  return out;
}

namespace {

/// Minimal cursor parser for the to_json() schema: objects, arrays,
/// strings, integers. Unknown keys are skipped so the format can grow.
struct Cursor {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return p < end && *p == c;
  }
  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return false;
      }
      out->push_back(*p++);
    }
    return consume('"');
  }
  bool parse_number(long long* out) {
    skip_ws();
    char* after = nullptr;
    const long long value = std::strtoll(p, &after, 10);
    if (after == p) return false;
    // Tolerate a fractional tail (we only ever emit integers).
    if (after < end && *after == '.') {
      ++after;
      while (after < end && *after >= '0' && *after <= '9') ++after;
    }
    p = after;
    *out = value;
    return true;
  }
  bool skip_value() {
    skip_ws();
    if (p >= end) return false;
    if (*p == '"') {
      std::string ignored;
      return parse_string(&ignored);
    }
    if (*p == '{' || *p == '[') {
      const char open = *p;
      const char close = open == '{' ? '}' : ']';
      ++p;
      skip_ws();
      if (consume(close)) return true;
      for (;;) {
        if (open == '{') {
          std::string key;
          if (!parse_string(&key) || !consume(':')) return false;
        }
        if (!skip_value()) return false;
        if (consume(close)) return true;
        if (!consume(',')) return false;
      }
    }
    // number / true / false / null
    while (p < end && *p != ',' && *p != '}' && *p != ']' && *p != ' ' &&
           *p != '\n' && *p != '\t' && *p != '\r') {
      ++p;
    }
    return true;
  }
};

bool parse_stage_stats(Cursor& cur, StageStats* out) {
  if (!cur.consume('{')) return false;
  if (cur.consume('}')) return true;
  for (;;) {
    std::string key;
    if (!cur.parse_string(&key) || !cur.consume(':')) return false;
    if (key == "count") {
      if (!cur.parse_number(&out->count)) return false;
    } else if (key == "total_ns") {
      if (!cur.parse_number(&out->total_ns)) return false;
    } else if (key == "buckets") {
      if (!cur.consume('[')) return false;
      for (int b = 0; b < kNumBuckets; ++b) {
        if (b > 0 && !cur.consume(',')) return false;
        if (!cur.parse_number(&out->buckets[static_cast<std::size_t>(b)])) {
          return false;
        }
      }
      if (!cur.consume(']')) return false;
    } else if (!cur.skip_value()) {
      return false;
    }
    if (cur.consume('}')) return true;
    if (!cur.consume(',')) return false;
  }
}

}  // namespace

bool parse_metrics_json(const std::string& text, SolveMetrics* out) {
  SolveMetrics parsed;
  Cursor cur{text.data(), text.data() + text.size()};
  if (!cur.consume('{')) return false;
  if (!cur.peek('}')) {
    for (;;) {
      std::string key;
      if (!cur.parse_string(&key) || !cur.consume(':')) return false;
      if (key == "stages") {
        if (!cur.consume('{')) return false;
        if (!cur.consume('}')) {
          for (;;) {
            std::string name;
            if (!cur.parse_string(&name) || !cur.consume(':')) return false;
            int stage = -1;
            for (int s = 0; s < kNumStages; ++s) {
              if (name == kStageNames[s]) stage = s;
            }
            if (stage >= 0) {
              if (!parse_stage_stats(
                      cur, &parsed.stages[static_cast<std::size_t>(stage)])) {
                return false;
              }
            } else if (!cur.skip_value()) {
              return false;
            }
            if (cur.consume('}')) break;
            if (!cur.consume(',')) return false;
          }
        }
      } else if (key == "prunes") {
        if (!cur.consume('{')) return false;
        if (!cur.consume('}')) {
          for (;;) {
            std::string name;
            if (!cur.parse_string(&name) || !cur.consume(':')) return false;
            int reason = -1;
            for (int r = 0; r < kNumPruneReasons; ++r) {
              if (name == kPruneNames[r]) reason = r;
            }
            if (reason >= 0) {
              if (!cur.parse_number(
                      &parsed.prunes[static_cast<std::size_t>(reason)])) {
                return false;
              }
            } else if (!cur.skip_value()) {
              return false;
            }
            if (cur.consume('}')) break;
            if (!cur.consume(',')) return false;
          }
        }
      } else if (!cur.skip_value()) {
        return false;
      }
      if (cur.consume('}')) break;
      if (!cur.consume(',')) return false;
    }
  } else {
    cur.consume('}');
  }
  *out = parsed;
  return true;
}

SolveMetrics* bound_metrics() { return t_sink; }

MetricsBinding::MetricsBinding(SolveMetrics* sink) : previous_(t_sink) {
  t_sink = sink;
}

MetricsBinding::~MetricsBinding() { t_sink = previous_; }

void record_stage(Stage stage, long long ns, long long count) {
  if (t_sink != nullptr) t_sink->stage(stage).add(ns, count);
}

void record_prune(PruneReason reason, long long count) {
  if (t_sink != nullptr) t_sink->add_prune(reason, count);
}

std::int64_t metrics_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

StageTimer::~StageTimer() {
  if (sink_ != nullptr) {
    sink_->stage(stage_).add(metrics_now_ns() - start_ns_);
  }
}

}  // namespace ht::obs
