// Two-phase dense primal tableau simplex.
//
// Scope: correctness over raw speed. The ILP branch & bound only relaxes
// models of a few thousand variables (the paper's formulation on small
// benchmarks), where a dense tableau is entirely adequate. Degeneracy is
// handled by switching from Dantzig to Bland's rule after a stall window,
// which guarantees termination.
#include <algorithm>
#include <cmath>
#include <vector>

#include "lp/lp_problem.hpp"

namespace ht::lp {
namespace {

struct Tableau {
  // rows x cols matrix; col `num_cols` is the rhs.
  std::vector<std::vector<double>> a;
  std::vector<double> cost;     // reduced-cost row (current phase)
  double cost_rhs = 0.0;        // negative of current objective value
  std::vector<int> basis;       // basic column per row
  int num_cols = 0;
  int first_artificial = 0;     // columns >= this are artificial

  double& at(int row, int col) {
    return a[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
  }
  double rhs(int row) const {
    return a[static_cast<std::size_t>(row)][static_cast<std::size_t>(num_cols)];
  }
  int num_rows() const { return static_cast<int>(a.size()); }
};

void pivot(Tableau& t, int pivot_row, int pivot_col) {
  const double pivot_value = t.at(pivot_row, pivot_col);
  auto& prow = t.a[static_cast<std::size_t>(pivot_row)];
  for (double& entry : prow) entry /= pivot_value;
  for (int r = 0; r < t.num_rows(); ++r) {
    if (r == pivot_row) continue;
    const double factor = t.at(r, pivot_col);
    if (factor == 0.0) continue;
    auto& row = t.a[static_cast<std::size_t>(r)];
    for (int c = 0; c <= t.num_cols; ++c) {
      row[static_cast<std::size_t>(c)] -=
          factor * prow[static_cast<std::size_t>(c)];
    }
  }
  const double cost_factor = t.cost[static_cast<std::size_t>(pivot_col)];
  if (cost_factor != 0.0) {
    for (int c = 0; c < t.num_cols; ++c) {
      t.cost[static_cast<std::size_t>(c)] -=
          cost_factor * prow[static_cast<std::size_t>(c)];
    }
    t.cost_rhs -= cost_factor * prow[static_cast<std::size_t>(t.num_cols)];
  }
  t.basis[static_cast<std::size_t>(pivot_row)] = pivot_col;
}

enum class IterateOutcome { kOptimal, kUnbounded, kIterationLimit };

/// Runs simplex iterations on the current phase until optimal/unbounded.
/// `allow_col(col)` gates entering columns (used to bar artificials).
template <typename AllowCol>
IterateOutcome iterate(Tableau& t, const SimplexOptions& options,
                       long& iterations, AllowCol allow_col) {
  const long bland_after = 2000;  // stall window before switching rules
  long phase_iterations = 0;
  while (true) {
    if (iterations >= options.max_iterations) {
      return IterateOutcome::kIterationLimit;
    }
    const bool use_bland = phase_iterations > bland_after;
    // Entering column.
    int entering = -1;
    double best = -options.pivot_tol;
    for (int c = 0; c < t.num_cols; ++c) {
      if (!allow_col(c)) continue;
      const double reduced = t.cost[static_cast<std::size_t>(c)];
      if (reduced < best) {
        entering = c;
        if (use_bland) break;  // Bland: first eligible index
        best = reduced;
      }
    }
    if (entering < 0) return IterateOutcome::kOptimal;

    // Ratio test.
    int leaving = -1;
    double best_ratio = 0.0;
    for (int r = 0; r < t.num_rows(); ++r) {
      const double coeff = t.at(r, entering);
      if (coeff <= options.pivot_tol) continue;
      const double ratio = t.rhs(r) / coeff;
      if (leaving < 0 || ratio < best_ratio - options.pivot_tol ||
          (std::abs(ratio - best_ratio) <= options.pivot_tol &&
           t.basis[static_cast<std::size_t>(r)] <
               t.basis[static_cast<std::size_t>(leaving)])) {
        leaving = r;
        best_ratio = ratio;
      }
    }
    if (leaving < 0) return IterateOutcome::kUnbounded;

    pivot(t, leaving, entering);
    ++iterations;
    ++phase_iterations;
  }
}

}  // namespace

LpResult solve(const LpProblem& problem, const SimplexOptions& options) {
  LpResult result;
  const int n = problem.num_variables();

  // ---- translate to standard form ------------------------------------
  // x_j = lower_j + x'_j with x'_j >= 0; finite upper bounds become rows.
  struct Row {
    std::vector<std::pair<int, double>> terms;
    Relation rel;
    double rhs;
  };
  std::vector<Row> rows;
  rows.reserve(static_cast<std::size_t>(problem.num_constraints()) +
               static_cast<std::size_t>(n));
  for (const Constraint& c : problem.rows()) {
    Row row{{}, c.rel, c.rhs};
    std::vector<double> dense(static_cast<std::size_t>(n), 0.0);
    for (const auto& [var, coeff] : c.terms) {
      dense[static_cast<std::size_t>(var)] += coeff;
    }
    for (int v = 0; v < n; ++v) {
      const double coeff = dense[static_cast<std::size_t>(v)];
      if (coeff != 0.0) {
        row.terms.emplace_back(v, coeff);
        if (problem.lower(v) != 0.0) row.rhs -= coeff * problem.lower(v);
      }
    }
    rows.push_back(std::move(row));
  }
  for (int v = 0; v < n; ++v) {
    const double span = problem.upper(v) - problem.lower(v);
    if (std::isfinite(span)) {
      rows.push_back(Row{{{v, 1.0}}, Relation::kLe, span});
    }
  }

  const int m = static_cast<int>(rows.size());
  // Column counts: structural + one slack/surplus per inequality.
  int num_slacks = 0;
  for (const Row& row : rows) {
    if (row.rel != Relation::kEq) ++num_slacks;
  }

  Tableau t;
  t.first_artificial = n + num_slacks;
  t.num_cols = n + num_slacks + m;  // worst case: artificial in every row
  t.a.assign(static_cast<std::size_t>(m),
             std::vector<double>(static_cast<std::size_t>(t.num_cols) + 1,
                                 0.0));
  t.basis.assign(static_cast<std::size_t>(m), -1);
  t.cost.assign(static_cast<std::size_t>(t.num_cols), 0.0);

  int next_slack = n;
  int next_artificial = t.first_artificial;
  for (int r = 0; r < m; ++r) {
    Row row = rows[static_cast<std::size_t>(r)];
    double sign = 1.0;
    if (row.rhs < 0.0) {  // normalize to nonnegative rhs
      sign = -1.0;
      row.rhs = -row.rhs;
      if (row.rel == Relation::kLe) {
        row.rel = Relation::kGe;
      } else if (row.rel == Relation::kGe) {
        row.rel = Relation::kLe;
      }
    }
    for (const auto& [var, coeff] : row.terms) {
      t.at(r, var) = sign * coeff;
    }
    t.at(r, t.num_cols) = row.rhs;
    if (row.rel == Relation::kLe) {
      t.at(r, next_slack) = 1.0;
      t.basis[static_cast<std::size_t>(r)] = next_slack;
      ++next_slack;
    } else if (row.rel == Relation::kGe) {
      t.at(r, next_slack) = -1.0;
      ++next_slack;
      t.at(r, next_artificial) = 1.0;
      t.basis[static_cast<std::size_t>(r)] = next_artificial;
      ++next_artificial;
    } else {
      t.at(r, next_artificial) = 1.0;
      t.basis[static_cast<std::size_t>(r)] = next_artificial;
      ++next_artificial;
    }
  }

  long iterations = 0;

  // ---- phase 1: minimize artificial sum -------------------------------
  bool has_artificial_basis = false;
  for (int r = 0; r < m; ++r) {
    if (t.basis[static_cast<std::size_t>(r)] >= t.first_artificial) {
      has_artificial_basis = true;
    }
  }
  if (has_artificial_basis) {
    // cost = sum of artificials; make basic reduced costs zero by
    // subtracting the rows whose basis is artificial.
    std::fill(t.cost.begin(), t.cost.end(), 0.0);
    for (int c = t.first_artificial; c < t.num_cols; ++c) {
      t.cost[static_cast<std::size_t>(c)] = 1.0;
    }
    t.cost_rhs = 0.0;
    for (int r = 0; r < m; ++r) {
      if (t.basis[static_cast<std::size_t>(r)] < t.first_artificial) continue;
      for (int c = 0; c < t.num_cols; ++c) {
        t.cost[static_cast<std::size_t>(c)] -= t.at(r, c);
      }
      t.cost_rhs -= t.rhs(r);
    }
    const IterateOutcome outcome =
        iterate(t, options, iterations, [](int) { return true; });
    result.iterations = iterations;
    if (outcome == IterateOutcome::kIterationLimit) {
      result.status = LpStatus::kIterationLimit;
      return result;
    }
    if (outcome == IterateOutcome::kUnbounded) {
      // Phase-1 objective is bounded below by 0; cannot happen.
      throw util::InternalError("simplex: phase-1 reported unbounded");
    }
    if (-t.cost_rhs > options.feasibility_tol) {
      result.status = LpStatus::kInfeasible;
      return result;
    }
    // Pivot remaining artificials (at value ~0) out of the basis.
    for (int r = 0; r < m; ++r) {
      if (t.basis[static_cast<std::size_t>(r)] < t.first_artificial) continue;
      int col = -1;
      for (int c = 0; c < t.first_artificial; ++c) {
        if (std::abs(t.at(r, c)) > options.pivot_tol) {
          col = c;
          break;
        }
      }
      if (col >= 0) {
        pivot(t, r, col);
        ++iterations;
      }
      // If no structural pivot exists the row is redundant (all zeros with
      // zero rhs); the artificial stays basic at zero and is barred from
      // entering, which keeps it at zero for the rest of the solve.
    }
  }

  // ---- phase 2: original objective -------------------------------------
  std::fill(t.cost.begin(), t.cost.end(), 0.0);
  t.cost_rhs = 0.0;
  for (int v = 0; v < n; ++v) {
    t.cost[static_cast<std::size_t>(v)] = problem.objective(v);
  }
  for (int r = 0; r < m; ++r) {
    const int basic = t.basis[static_cast<std::size_t>(r)];
    const double c_b =
        basic < n ? problem.objective(basic) : 0.0;
    if (c_b == 0.0) continue;
    for (int c = 0; c < t.num_cols; ++c) {
      t.cost[static_cast<std::size_t>(c)] -= c_b * t.at(r, c);
    }
    t.cost_rhs -= c_b * t.rhs(r);
  }
  const int first_artificial = t.first_artificial;
  const IterateOutcome outcome =
      iterate(t, options, iterations,
              [first_artificial](int c) { return c < first_artificial; });
  result.iterations = iterations;
  if (outcome == IterateOutcome::kIterationLimit) {
    result.status = LpStatus::kIterationLimit;
    return result;
  }
  if (outcome == IterateOutcome::kUnbounded) {
    result.status = LpStatus::kUnbounded;
    return result;
  }

  // ---- extract ---------------------------------------------------------
  result.status = LpStatus::kOptimal;
  result.values.assign(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < m; ++r) {
    const int basic = t.basis[static_cast<std::size_t>(r)];
    if (basic < n) {
      result.values[static_cast<std::size_t>(basic)] = t.rhs(r);
    }
  }
  double objective = 0.0;
  for (int v = 0; v < n; ++v) {
    result.values[static_cast<std::size_t>(v)] += problem.lower(v);
    objective +=
        problem.objective(v) * result.values[static_cast<std::size_t>(v)];
  }
  result.objective = objective;
  return result;
}

}  // namespace ht::lp
