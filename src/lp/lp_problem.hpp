// Linear-program model: minimize c'x subject to linear rows and variable
// bounds. This is the substrate under ht_ilp's branch & bound, standing in
// for the commercial solver (Lingo) the paper used.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace ht::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Relation { kLe, kGe, kEq };

/// One linear row: sum(coeff_j * x_{var_j}) REL rhs.
struct Constraint {
  std::vector<std::pair<int, double>> terms;
  Relation rel = Relation::kLe;
  double rhs = 0.0;
};

/// A minimization LP with per-variable bounds.
class LpProblem {
 public:
  /// Adds a variable with bounds [lower, upper] and objective coefficient
  /// `objective`; returns its dense index.
  int add_variable(double lower = 0.0, double upper = kInf,
                   double objective = 0.0, std::string name = "");

  /// Adds a row. Variable indices must already exist; duplicate indices in
  /// `terms` are accumulated.
  void add_constraint(std::vector<std::pair<int, double>> terms, Relation rel,
                      double rhs);

  void set_objective(int var, double coefficient);

  int num_variables() const { return static_cast<int>(lower_.size()); }
  int num_constraints() const { return static_cast<int>(rows_.size()); }

  double lower(int var) const { return lower_[check_var(var)]; }
  double upper(int var) const { return upper_[check_var(var)]; }
  double objective(int var) const { return objective_[check_var(var)]; }
  const std::string& name(int var) const { return names_[check_var(var)]; }
  const std::vector<Constraint>& rows() const { return rows_; }

  /// Tightens a variable's bounds (used by branch & bound).
  void set_bounds(int var, double lower, double upper);

 private:
  std::size_t check_var(int var) const;

  std::vector<double> lower_, upper_, objective_;
  std::vector<std::string> names_;
  std::vector<Constraint> rows_;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> values;  ///< one per model variable
  long iterations = 0;
};

struct SimplexOptions {
  long max_iterations = 200000;
  double feasibility_tol = 1e-7;
  double pivot_tol = 1e-9;
};

/// Two-phase dense primal simplex. Handles general bounds by translating
/// lower bounds to zero and materializing finite upper bounds as rows.
LpResult solve(const LpProblem& problem, const SimplexOptions& options = {});

}  // namespace ht::lp
