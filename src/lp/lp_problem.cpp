#include "lp/lp_problem.hpp"

namespace ht::lp {

int LpProblem::add_variable(double lower, double upper, double objective,
                            std::string name) {
  util::check_spec(lower <= upper, "LpProblem: lower bound exceeds upper");
  lower_.push_back(lower);
  upper_.push_back(upper);
  objective_.push_back(objective);
  if (name.empty()) name = "x" + std::to_string(lower_.size() - 1);
  names_.push_back(std::move(name));
  return num_variables() - 1;
}

void LpProblem::add_constraint(std::vector<std::pair<int, double>> terms,
                               Relation rel, double rhs) {
  for (const auto& [var, coeff] : terms) {
    (void)coeff;
    check_var(var);
  }
  rows_.push_back(Constraint{std::move(terms), rel, rhs});
}

void LpProblem::set_objective(int var, double coefficient) {
  objective_[check_var(var)] = coefficient;
}

void LpProblem::set_bounds(int var, double lower, double upper) {
  util::check_spec(lower <= upper, "LpProblem: lower bound exceeds upper");
  const std::size_t index = check_var(var);
  lower_[index] = lower;
  upper_[index] = upper;
}

std::size_t LpProblem::check_var(int var) const {
  util::check_spec(var >= 0 && var < num_variables(),
                   "LpProblem: variable index out of range");
  return static_cast<std::size_t>(var);
}

}  // namespace ht::lp
