#include "util/rng.hpp"

namespace ht::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  check_spec(lo <= hi, "Rng::uniform_int requires lo <= hi");
  const std::uint64_t range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::index(std::size_t size) {
  check_spec(size > 0, "Rng::index requires size > 0");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

}  // namespace ht::util
