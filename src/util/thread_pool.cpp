#include "util/thread_pool.hpp"

#include <utility>

namespace ht::util {

ThreadPool::ThreadPool(int num_workers) {
  const int n = num_workers < 0 ? 0 : num_workers;
  deques_.reserve(static_cast<std::size_t>(n) + 1);
  // Deque n (the last one) takes submissions when the submitting thread is
  // not a worker; workers steal from it like any other.
  for (int i = 0; i <= n; ++i) {
    deques_.push_back(std::make_unique<WorkDeque>());
  }
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::hardware_concurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::submit(Task task) {
  const std::size_t slot =
      next_deque_.fetch_add(1, std::memory_order_relaxed) % deques_.size();
  {
    std::lock_guard<std::mutex> lock(deques_[slot]->mutex);
    deques_[slot]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    // Pairing the notify with the sleep mutex closes the wakeup race
    // against workers re-checking `queued_` before sleeping.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  work_cv_.notify_one();
}

bool ThreadPool::run_one(std::size_t home) {
  Task task;
  bool found = false;
  const std::size_t n = deques_.size();
  // Own deque from the back (LIFO), then steal fronts round-robin.
  {
    WorkDeque& own = *deques_[home % n];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
      found = true;
    }
  }
  for (std::size_t step = 1; !found && step < n; ++step) {
    WorkDeque& victim = *deques_[(home + step) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      found = true;
    }
  }
  if (!found) return false;
  queued_.fetch_sub(1, std::memory_order_relaxed);
  task.fn();
  task.group->finish_one();
  return true;
}

void ThreadPool::worker_loop(std::size_t id) {
  for (;;) {
    if (run_one(id)) continue;
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    work_cv_.wait(lock, [this] {
      return stop_ || queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_) return;
  }
}

void TaskGroup::run(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  pool_.submit(ThreadPool::Task{std::move(fn), this});
}

void TaskGroup::wait() {
  // The waiting thread helps: drain queued tasks (any group's — finishing
  // them can only get this group done sooner), then sleep until the last
  // in-flight task of this group completes.
  const std::size_t home = pool_.deques_.size() - 1;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (pending_ == 0) return;
    }
    if (pool_.run_one(home)) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    return;
  }
}

void TaskGroup::finish_one() {
  // Notify while holding the lock: a waiter that sees pending_ == 0 may
  // destroy the group the moment it can re-acquire the mutex, so the
  // broadcast must complete before the lock is released.
  std::lock_guard<std::mutex> lock(mutex_);
  if (--pending_ == 0) done_cv_.notify_all();
}

}  // namespace ht::util
