#include "util/status.hpp"

namespace ht::util {

void check_spec(bool condition, const std::string& message) {
  if (!condition) throw SpecError(message);
}

void check_internal(bool condition, const std::string& message) {
  if (!condition) throw InternalError(message);
}

}  // namespace ht::util
