#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace ht::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

void log_debug(const std::string& message) {
  log(LogLevel::kDebug, message);
}
void log_info(const std::string& message) { log(LogLevel::kInfo, message); }
void log_warning(const std::string& message) {
  log(LogLevel::kWarning, message);
}
void log_error(const std::string& message) { log(LogLevel::kError, message); }

LogField::LogField(const char* k, double v) : key(k) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", v);
  value = buffer;
}

std::string format_fields(const std::string& event,
                          std::initializer_list<LogField> fields) {
  std::string line = event;
  for (const LogField& field : fields) {
    line += ' ';
    line += field.key;
    line += '=';
    const bool quote =
        field.value.empty() ||
        field.value.find_first_of(" =\"") != std::string::npos;
    if (quote) {
      line += '"';
      for (const char c : field.value) {
        if (c == '"' || c == '\\') line += '\\';
        line += c;
      }
      line += '"';
    } else {
      line += field.value;
    }
  }
  return line;
}

void log_fields(LogLevel level, const std::string& event,
                std::initializer_list<LogField> fields) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  log(level, format_fields(event, fields));
}

}  // namespace ht::util
