// Small string utilities used across the libraries (no locale dependence).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ht::util {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
std::string trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Formats a double with `digits` digits after the decimal point.
std::string format_double(double value, int digits);

/// Formats an integer with thousands separators, e.g. 22000 -> "22,000".
std::string with_commas(long long value);

/// "$4,160" style money formatting (integral dollars).
std::string format_money(long long dollars);

}  // namespace ht::util
