// Deterministic pseudo-random number generation.
//
// All stochastic components (random DFG generation, Monte-Carlo Trojan
// injection, local-search restarts) draw from ht::util::Rng so that every
// experiment in the repository is reproducible from a printed seed.
//
// The generator is xoshiro256++ seeded via SplitMix64, which is small, fast,
// and has no measurable bias for the uses in this repository.
#pragma once

#include <cstdint>
#include <vector>

#include "util/status.hpp"

namespace ht::util {

/// xoshiro256++ PRNG with SplitMix64 seeding. Satisfies the minimal surface
/// the repository needs; deliberately not a std::uniform_random_bit_engine
/// so call sites cannot accidentally mix in unseeded std generators.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli draw with probability p of returning true.
  bool chance(double p);

  /// Uniformly chosen index in [0, size). Requires size > 0.
  std::size_t index(std::size_t size);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      std::size_t j = index(i + 1);
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    check_spec(!items.empty(), "Rng::pick on empty vector");
    return items[index(items.size())];
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace ht::util
