// Minimal leveled logger.
//
// Solvers emit progress at Info level; tests run with the level raised to
// Warning so ctest output stays readable. The level is atomic and writes go
// through one fprintf call each, so the parallel engine's workers may log
// concurrently (lines never tear, interleaving order is unspecified).
#pragma once

#include <string>

namespace ht::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that will be printed.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes "[level] message" to stderr if `level` passes the global filter.
void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warning(const std::string& message);
void log_error(const std::string& message);

}  // namespace ht::util
