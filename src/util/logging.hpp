// Minimal leveled logger.
//
// Solvers emit progress at Info level; tests run with the level raised to
// Warning so ctest output stays readable. The level is atomic and writes go
// through one fprintf call each, so the parallel engine's workers may log
// concurrently (lines never tear, interleaving order is unspecified).
#pragma once

#include <initializer_list>
#include <string>

namespace ht::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that will be printed.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes "[level] message" to stderr if `level` passes the global filter.
void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warning(const std::string& message);
void log_error(const std::string& message);

/// One key/value pair of a structured log line. The converting
/// constructors cover the values solver code logs (counts, costs, names);
/// values containing spaces or '=' are quoted so lines stay grep- and
/// split-safe.
struct LogField {
  LogField(const char* k, const std::string& v) : key(k), value(v) {}
  LogField(const char* k, const char* v) : key(k), value(v) {}
  LogField(const char* k, long long v) : key(k), value(std::to_string(v)) {}
  LogField(const char* k, long v) : key(k), value(std::to_string(v)) {}
  LogField(const char* k, int v) : key(k), value(std::to_string(v)) {}
  LogField(const char* k, std::size_t v) : key(k), value(std::to_string(v)) {}
  LogField(const char* k, double v);

  const char* key;
  std::string value;
};

/// Renders "event key1=value1 key2=value2 ..." — the structured form every
/// engine progress line uses, consistent with the obs metric names.
std::string format_fields(const std::string& event,
                          std::initializer_list<LogField> fields);

/// log(level, format_fields(event, fields)) in one call.
void log_fields(LogLevel level, const std::string& event,
                std::initializer_list<LogField> fields);

}  // namespace ht::util
