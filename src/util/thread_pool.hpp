// Work-stealing thread pool and cooperative cancellation.
//
// The pool exists for the parallel synthesis engine (core/engine.hpp): N
// workers each own a deque; submissions are distributed round-robin, owners
// pop LIFO (cache-warm), idle workers steal FIFO from the others. A
// TaskGroup tracks a batch of tasks, and TaskGroup::wait() has the waiting
// thread *help* — it executes queued tasks instead of blocking — so a pool
// of W workers plus the calling thread delivers W+1 lanes of compute and
// nested waits cannot deadlock on an empty worker set.
//
// CancelToken is the cooperative stop signal shared by every layer of a
// synthesis request: the engine checks it between license sets, the CSP
// solver inside its node loop. Setting it never tears state — workers
// finish or abandon their current combo and the engine commits only
// completed results.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ht::util {

/// Cooperative cancellation flag, safe to set from any thread (including a
/// signal-free watchdog or a progress callback).
class CancelToken {
 public:
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

class TaskGroup;

/// Fixed-size pool of worker threads with per-worker deques and stealing.
/// Tasks are submitted through a TaskGroup; the pool itself only moves
/// closures to threads. Destruction requires every group to have completed
/// (the engine owns both and tears them down in order).
class ThreadPool {
 public:
  /// Spawns `num_workers` threads (clamped to >= 0; 0 is a valid pool that
  /// only ever executes work inside TaskGroup::wait()).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Best guess at the machine's parallelism (>= 1).
  static int hardware_concurrency();

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  struct WorkDeque {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void submit(Task task);
  /// Pops one task (own deque back first, then steals fronts round-robin)
  /// and runs it. Returns false when every deque is empty.
  bool run_one(std::size_t home);
  void worker_loop(std::size_t id);

  std::vector<std::unique_ptr<WorkDeque>> deques_;
  std::vector<std::thread> workers_;
  std::atomic<unsigned> next_deque_{0};
  std::atomic<long> queued_{0};

  std::mutex sleep_mutex_;
  std::condition_variable work_cv_;
  bool stop_ = false;  // guarded by sleep_mutex_
};

/// A batch of tasks on one pool. run() schedules, wait() helps execute
/// until every task of this group has *finished* (not merely started).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> fn);
  void wait();

 private:
  friend class ThreadPool;

  void finish_one();

  ThreadPool& pool_;
  std::mutex mutex_;
  std::condition_variable done_cv_;
  long pending_ = 0;  // guarded by mutex_
};

}  // namespace ht::util
