// Wall-clock stopwatch used for solver time limits and bench reporting.
#pragma once

#include <chrono>

namespace ht::util {

/// Starts running at construction; elapsed() reports wall-clock seconds.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ht::util
