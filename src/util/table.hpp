// ASCII table rendering for the benchmark harnesses.
//
// The bench binaries reproduce the paper's Tables 1/3/4; TablePrinter keeps
// their output aligned and also emits CSV so results can be post-processed.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ht::util {

/// Column-aligned ASCII table with an optional title, plus CSV export.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; it must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with padded columns, a header rule, and an optional title.
  std::string to_string(const std::string& title = "") const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing ',' or '"').
  std::string to_csv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Convenience: writes `content` to `path`, creating parent dirs if needed.
void write_file(const std::string& path, const std::string& content);

}  // namespace ht::util
