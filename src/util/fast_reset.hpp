// Version-stamped containers with O(1) bulk reset.
//
// A FastResetVector<T> behaves like a vector whose every element reverts to
// a default value on reset(), except that reset() is a single version-counter
// increment instead of an O(n) fill. Each slot carries the version at which
// it was last written; a read whose slot version differs from the container
// version yields the default. The pattern comes from scratch buffers that
// are cleared once per search node / per sweep iteration but touched in only
// a few places between clears — exactly where an O(n) clear dominates.
//
// FastResetBitset is the same discipline at word granularity: a bitset whose
// reset() bumps one counter, with per-64-bit-word stamps. Word-level
// accessors (word_value / word_ref) exist so callers can OR whole occupier
// words in without per-bit stamp checks.
//
// Wraparound: versions are 32-bit. When the counter would wrap to 0 the
// container does one honest O(n) clear of the stamp array and restarts at
// version 1 — stale stamps can therefore never alias a live version. The
// property tests in tests/fast_reset_test.cpp drive the counter across the
// wrap to pin this down.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace ht::util {

template <class T>
class FastResetVector {
 public:
  FastResetVector() = default;
  explicit FastResetVector(std::size_t size, T default_value = T{})
      : default_(default_value) {
    resize(size);
  }

  void resize(std::size_t size) {
    slots_.resize(size, default_);
    stamps_.resize(size, 0);
  }

  std::size_t size() const { return slots_.size(); }

  /// O(1): every slot reads as the default until written again.
  void reset() {
    if (++version_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0);
      version_ = 1;
    }
  }

  T get(std::size_t i) const {
    return stamps_[i] == version_ ? slots_[i] : default_;
  }

  /// Reference to the slot, revived to the default first if it is stale.
  T& ref(std::size_t i) {
    if (stamps_[i] != version_) {
      stamps_[i] = version_;
      slots_[i] = default_;
    }
    return slots_[i];
  }

  void set(std::size_t i, T value) {
    stamps_[i] = version_;
    slots_[i] = value;
  }

 private:
  T default_{};
  std::uint32_t version_ = 1;
  std::vector<T> slots_;
  std::vector<std::uint32_t> stamps_;
};

class FastResetBitset {
 public:
  FastResetBitset() = default;
  explicit FastResetBitset(std::size_t bits) { resize(bits); }

  void resize(std::size_t bits) {
    words_.resize((bits + 63) / 64, 0);
    stamps_.resize(words_.size(), 0);
  }

  std::size_t num_words() const { return words_.size(); }

  /// O(1) clear of every bit.
  void reset() {
    if (++version_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0);
      version_ = 1;
    }
  }

  void set(std::size_t bit) { word_ref(bit >> 6) |= 1ull << (bit & 63); }
  void clear(std::size_t bit) { word_ref(bit >> 6) &= ~(1ull << (bit & 63)); }
  bool test(std::size_t bit) const {
    return (word_value(bit >> 6) >> (bit & 63)) & 1u;
  }

  std::uint64_t word_value(std::size_t w) const {
    return stamps_[w] == version_ ? words_[w] : 0;
  }

  /// Reference to a live word (revived to zero if stale) — for bulk ORs.
  std::uint64_t& word_ref(std::size_t w) {
    if (stamps_[w] != version_) {
      stamps_[w] = version_;
      words_[w] = 0;
    }
    return words_[w];
  }

  int popcount() const {
    int n = 0;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      n += __builtin_popcountll(word_value(w));
    }
    return n;
  }

 private:
  std::uint32_t version_ = 1;
  std::vector<std::uint64_t> words_;
  std::vector<std::uint32_t> stamps_;
};

}  // namespace ht::util
