// Error handling primitives shared by every ht_* library.
//
// The libraries report contract violations and infeasible user input with
// exceptions derived from ht::util::Error, so call sites can distinguish
// "your problem specification is broken" (SpecError) from "the solver could
// not find a feasible answer" (InfeasibleError) and from internal invariant
// failures (InternalError).
#pragma once

#include <stdexcept>
#include <string>

namespace ht::util {

/// Base class of all exceptions thrown by the trojan-hls libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// The caller handed us an ill-formed object (cyclic DFG, empty vendor
/// catalog, negative latency bound, ...).
class SpecError : public Error {
 public:
  explicit SpecError(const std::string& what) : Error(what) {}
};

/// A solver proved (or gave up trying to refute) that no solution satisfies
/// the constraints.
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what) : Error(what) {}
};

/// An internal invariant failed; indicates a bug in this library.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Throws SpecError with `message` unless `condition` holds.
void check_spec(bool condition, const std::string& message);

/// Throws InternalError with `message` unless `condition` holds.
void check_internal(bool condition, const std::string& message);

}  // namespace ht::util
