#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace ht::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string with_commas(long long value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ull - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (negative) out += '-';
  return std::string(out.rbegin(), out.rend());
}

std::string format_money(long long dollars) {
  if (dollars < 0) return "-$" + with_commas(-dollars);
  return "$" + with_commas(dollars);
}

}  // namespace ht::util
