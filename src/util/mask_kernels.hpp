// Small branch-free kernels over packed vendor/cycle words.
//
// The CSP inner loop spends its time in three shapes of scan: "does cycle t
// fall in any of these literal ranges" (nogood propagation), "which vendors
// survive this 24-bit mask" (domain maintenance), and "max occupancy over a
// cycle interval" (resource feasibility / skyline queries). This header
// packs those scans into word-parallel primitives shared by the solver, the
// skyline, and the hot-path microbenchmarks, so the batching is written —
// and benchmarked — exactly once.
//
// Cycle values must fit 15 bits (the SWAR compares reserve the per-lane top
// bit as the borrow sentinel). Every caller guards its lambda against
// kSwarCycleLimit at construction and falls back to scalar code beyond it.
#pragma once

#include <cstdint>

namespace ht::util {

/// Exclusive upper bound on cycle numbers the 16-bit-lane compares accept.
constexpr int kSwarCycleLimit = 1 << 15;

/// Top bit of each 16-bit lane: the compare sentinel.
constexpr std::uint64_t kLaneHigh16 = 0x8000800080008000ull;

/// Broadcasts a 15-bit value into all four 16-bit lanes.
inline std::uint64_t swar16_broadcast(int value) {
  return static_cast<std::uint64_t>(static_cast<std::uint16_t>(value)) *
         0x0001000100010001ull;
}

/// Per-lane unsigned a >= b for four 16-bit lanes, both operands < 2^15.
/// Result has the lane's top bit set where the compare holds.
inline std::uint64_t swar16_ge(std::uint64_t a, std::uint64_t b) {
  return ((a | kLaneHigh16) - b) & kLaneHigh16;
}

/// Lanes where lo <= cycle <= hi, all 15-bit; `cycle` is pre-broadcast.
inline std::uint64_t swar16_in_range(std::uint64_t cycle_bcast,
                                     std::uint64_t lo_lanes,
                                     std::uint64_t hi_lanes) {
  return swar16_ge(cycle_bcast, lo_lanes) & swar16_ge(hi_lanes, cycle_bcast);
}

/// Index (0..3) of the first set lane of a swar16 compare result.
inline int swar16_first_lane(std::uint64_t lanes) {
  return __builtin_ctzll(lanes) >> 4;
}

/// One nogood-literal range packed as lo<<16 | hi (cycles < 2^15).
inline std::uint32_t pack_cycle_range(int lo, int hi) {
  return (static_cast<std::uint32_t>(lo) << 16) |
         static_cast<std::uint32_t>(hi);
}

/// cycle in [lo, hi] for a packed range, one compare, no branches: the
/// unsigned subtraction folds both bounds into a single wraparound test.
inline bool packed_range_contains(std::uint32_t packed, int cycle) {
  const std::uint32_t lo = packed >> 16;
  const std::uint32_t hi = packed & 0xffffu;
  return static_cast<std::uint32_t>(cycle) - lo <= hi - lo;
}

/// Max over `len` ints starting at `row` (len >= 1). Unrolled four-wide so
/// the occupancy-interval scans in the solver and the skyline window
/// queries autovectorize; equivalent to std::max_element by value.
inline int range_max_i32(const int* row, int len) {
  int m0 = row[0], m1 = m0, m2 = m0, m3 = m0;
  int i = 1;
  for (; i + 3 < len; i += 4) {
    if (row[i] > m0) m0 = row[i];
    if (row[i + 1] > m1) m1 = row[i + 1];
    if (row[i + 2] > m2) m2 = row[i + 2];
    if (row[i + 3] > m3) m3 = row[i + 3];
  }
  for (; i < len; ++i) {
    if (row[i] > m0) m0 = row[i];
  }
  if (m1 > m0) m0 = m1;
  if (m2 > m0) m0 = m2;
  if (m3 > m0) m0 = m3;
  return m0;
}

}  // namespace ht::util
