#include "util/table.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "util/status.hpp"

namespace ht::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  check_spec(!header_.empty(), "TablePrinter requires a non-empty header");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  check_spec(row.size() == header_.size(),
             "TablePrinter row width mismatches header");
  rows_.push_back(std::move(row));
}

std::string TablePrinter::to_string(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string rule = "+";
  for (std::size_t width : widths) {
    rule.append(width + 2, '-');
    rule += '+';
  }
  rule += '\n';

  std::string out;
  if (!title.empty()) out += title + "\n";
  out += rule;
  out += render_row(header_);
  out += rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

std::string TablePrinter::to_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find(',') == std::string::npos &&
        cell.find('"') == std::string::npos) {
      return cell;
    }
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += quote(row[c]);
    }
    out += '\n';
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::filesystem::path fs_path(path);
  if (fs_path.has_parent_path()) {
    std::filesystem::create_directories(fs_path.parent_path());
  }
  std::ofstream stream(fs_path, std::ios::binary);
  check_spec(stream.good(), "cannot open for writing: " + path);
  stream << content;
}

}  // namespace ht::util
