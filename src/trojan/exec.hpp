// Functional semantics of DFG operations on 64-bit words.
//
// All vendors' cores of a class are functionally equivalent (that is what
// lets NC and RC be compared); only their Trojans differ. Arithmetic wraps
// modulo 2^64, shifts mask their amount, division by zero yields zero —
// total functions so any input vector is simulatable.
#pragma once

#include <vector>

#include "dfg/dfg.hpp"
#include "trojan/trojan.hpp"

namespace ht::trojan {

/// Executes one operation functionally (no Trojan involvement).
Word execute_op(dfg::OpType type, Word a, Word b);

/// Evaluates the whole DFG on `inputs` (one word per primary input) with
/// trusted cores; returns every op's value. This is the golden reference
/// the run-time experiments compare against.
std::vector<Word> golden_eval(const dfg::Dfg& graph,
                              const std::vector<Word>& inputs);

/// Resolves one operand against computed op values and primary inputs.
Word operand_value(const dfg::Dfg& graph, const dfg::Operand& operand,
                   const std::vector<Word>& op_values,
                   const std::vector<Word>& inputs);

}  // namespace ht::trojan
