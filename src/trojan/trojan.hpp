// Hardware-Trojan behavioral models (the paper's Section 3.1 taxonomy).
//
// A Trojan is a trigger plus a payload. Triggers are combinational (fire
// while the host unit's operand values match a rare pattern) or sequential
// (a counter advances on matching events and fires once it passes a
// threshold — Figure 2(b)). Payloads are memoryless XOR alterations of the
// host unit's output (Figure 2's payload; Figure 3's payload-with-memory
// variant is out of the paper's scope and modeled only to show test-time
// detectability in tests).
//
// Matching the paper's fault model: the trigger signal is set exactly while
// its condition holds and resets otherwise, and a memoryless payload stops
// corrupting as soon as the trigger resets — which is what recovery by
// re-binding exploits.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace ht::trojan {

using Word = std::int64_t;

/// Trigger condition over the host operation's two operand words.
struct TriggerSpec {
  enum class Kind {
    kCombinational,
    kSequential,
    /// Collusion (the threat detection Rule 2 exists for): the trigger is
    /// smuggled to the host by a *same-vendor* core directly upstream, so
    /// it fires when an operand was produced by a core of the host's own
    /// vendor (AND the operand pattern matches; set mask = 0 for
    /// "any value from a colluding core").
    kCollusion,
  };

  Kind kind = Kind::kCombinational;

  /// Operand match: (a & mask) == pattern_a && (b & mask) == pattern_b.
  /// A narrow mask (e.g. ~0xF) makes nearby operand values — the paper's
  /// "closely related inputs" — hit the same trigger.
  std::uint64_t mask = ~0ull;
  std::uint64_t pattern_a = 0;
  std::uint64_t pattern_b = 0;

  /// Sequential only: the payload fires on the `threshold`-th consecutive
  /// matching event and stays active while matches continue (a k-bit
  /// counter reaching 2^k - 1 in Figure 2(b)).
  int threshold = 1;

  bool matches(Word a, Word b) const {
    return (static_cast<std::uint64_t>(a) & mask) == (pattern_a & mask) &&
           (static_cast<std::uint64_t>(b) & mask) == (pattern_b & mask);
  }
};

/// Memoryless payload: XORs the host output while the trigger is active.
struct PayloadSpec {
  std::uint64_t xor_mask = 1;
  /// Pedagogical only (Figure 3): once activated, stay active. The paper's
  /// recovery targets memoryless payloads; tests use this flag to show why.
  bool has_memory = false;
};

struct TrojanSpec {
  TriggerSpec trigger;
  PayloadSpec payload;
  std::string description;
};

/// Per-core-instance run-time trigger state (the sequential counter and the
/// Figure-3 latch). One exists per physical core instance and persists
/// across the detection and recovery phases — same silicon.
class TriggerState {
 public:
  /// Feeds one executed operation's operands; returns true if the payload
  /// is active for this execution. `same_vendor_upstream` reports whether
  /// any operand was produced by a core of the host unit's vendor (the
  /// collusion channel; ignored by the other trigger kinds).
  bool step(const TrojanSpec& spec, Word a, Word b,
            bool same_vendor_upstream = false);

  void reset();

 private:
  int counter_ = 0;
  bool latched_ = false;
};

}  // namespace ht::trojan
