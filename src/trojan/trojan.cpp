#include "trojan/trojan.hpp"

namespace ht::trojan {

bool TriggerState::step(const TrojanSpec& spec, Word a, Word b,
                        bool same_vendor_upstream) {
  const bool match = spec.trigger.matches(a, b);
  bool active = false;
  switch (spec.trigger.kind) {
    case TriggerSpec::Kind::kCombinational:
      active = match;
      break;
    case TriggerSpec::Kind::kCollusion:
      active = match && same_vendor_upstream;
      break;
    case TriggerSpec::Kind::kSequential:
      // The counter is internal state of the trigger logic (Figure 2(b));
      // it arms on matching events. The trigger *signal* is only set while
      // the condition currently holds — so it resets the moment the host
      // unit sees other operands, which is what recovery exploits.
      if (match && counter_ < spec.trigger.threshold) ++counter_;
      active = match && counter_ >= spec.trigger.threshold;
      break;
  }
  if (spec.payload.has_memory) {
    latched_ = latched_ || active;
    return latched_;
  }
  return active;
}

void TriggerState::reset() {
  counter_ = 0;
  latched_ = false;
}

}  // namespace ht::trojan
