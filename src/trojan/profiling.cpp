#include "trojan/profiling.hpp"

#include <cstdlib>
#include <limits>

namespace ht::trojan {
namespace {

Word distance(Word a, Word b) {
  const Word diff = static_cast<Word>(static_cast<std::uint64_t>(a) -
                                      static_cast<std::uint64_t>(b));
  if (diff == std::numeric_limits<Word>::min()) {
    return std::numeric_limits<Word>::max();
  }
  return diff < 0 ? -diff : diff;
}

}  // namespace

std::vector<std::pair<dfg::OpId, dfg::OpId>> profile_close_pairs(
    const dfg::Dfg& graph, const ProfileConfig& config, util::Rng& rng) {
  util::check_spec(config.num_vectors > 0,
                   "profile_close_pairs: need at least one vector");
  const int n = graph.num_ops();
  // max over vectors of operand distance, per unordered pair (i < j).
  std::vector<Word> worst(static_cast<std::size_t>(n) *
                              static_cast<std::size_t>(n),
                          0);

  for (int sample = 0; sample < config.num_vectors; ++sample) {
    std::vector<Word> inputs;
    inputs.reserve(static_cast<std::size_t>(graph.num_inputs()));
    for (int i = 0; i < graph.num_inputs(); ++i) {
      inputs.push_back(rng.uniform_int(config.min_value, config.max_value));
    }
    const std::vector<Word> values = golden_eval(graph, inputs);
    for (dfg::OpId i = 0; i < n; ++i) {
      for (dfg::OpId j = i + 1; j < n; ++j) {
        if (dfg::resource_class_of(graph.op(i).type) !=
            dfg::resource_class_of(graph.op(j).type)) {
          continue;
        }
        Word& slot = worst[static_cast<std::size_t>(i) *
                               static_cast<std::size_t>(n) +
                           static_cast<std::size_t>(j)];
        for (int port = 0; port < 2; ++port) {
          const Word vi = operand_value(
              graph, graph.op(i).inputs[static_cast<std::size_t>(port)],
              values, inputs);
          const Word vj = operand_value(
              graph, graph.op(j).inputs[static_cast<std::size_t>(port)],
              values, inputs);
          slot = std::max(slot, distance(vi, vj));
        }
      }
    }
  }

  std::vector<std::pair<dfg::OpId, dfg::OpId>> pairs;
  for (dfg::OpId i = 0; i < n; ++i) {
    for (dfg::OpId j = i + 1; j < n; ++j) {
      if (dfg::resource_class_of(graph.op(i).type) !=
          dfg::resource_class_of(graph.op(j).type)) {
        continue;
      }
      if (worst[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(j)] <= config.tolerance) {
        pairs.emplace_back(i, j);
      }
    }
  }
  return pairs;
}

}  // namespace ht::trojan
