#include "trojan/exec.hpp"

#include <algorithm>

namespace ht::trojan {

Word execute_op(dfg::OpType type, Word a, Word b) {
  const std::uint64_t ua = static_cast<std::uint64_t>(a);
  const std::uint64_t ub = static_cast<std::uint64_t>(b);
  switch (type) {
    case dfg::OpType::kAdd:
      return static_cast<Word>(ua + ub);
    case dfg::OpType::kSub:
      return static_cast<Word>(ua - ub);
    case dfg::OpType::kMul:
      return static_cast<Word>(ua * ub);
    case dfg::OpType::kDiv:
      return b == 0 ? 0 : a / b;
    case dfg::OpType::kShl:
      return static_cast<Word>(ua << (ub & 63));
    case dfg::OpType::kShr:
      return a >> (ub & 63);
    case dfg::OpType::kAnd:
      return static_cast<Word>(ua & ub);
    case dfg::OpType::kOr:
      return static_cast<Word>(ua | ub);
    case dfg::OpType::kXor:
      return static_cast<Word>(ua ^ ub);
    case dfg::OpType::kLt:
      return a < b ? 1 : 0;
    case dfg::OpType::kMax:
      return std::max(a, b);
    case dfg::OpType::kMin:
      return std::min(a, b);
  }
  throw util::InternalError("execute_op: unknown OpType");
}

Word operand_value(const dfg::Dfg& graph, const dfg::Operand& operand,
                   const std::vector<Word>& op_values,
                   const std::vector<Word>& inputs) {
  switch (operand.kind) {
    case dfg::Operand::Kind::kOp:
      return op_values[static_cast<std::size_t>(operand.index)];
    case dfg::Operand::Kind::kInput:
      util::check_spec(
          operand.index >= 0 &&
              operand.index < static_cast<int>(inputs.size()),
          "operand_value: input vector shorter than DFG inputs (" +
              std::to_string(graph.num_inputs()) + " needed)");
      return inputs[static_cast<std::size_t>(operand.index)];
    case dfg::Operand::Kind::kConst:
      return operand.value;
  }
  throw util::InternalError("operand_value: unknown operand kind");
}

std::vector<Word> golden_eval(const dfg::Dfg& graph,
                              const std::vector<Word>& inputs) {
  util::check_spec(static_cast<int>(inputs.size()) == graph.num_inputs(),
                   "golden_eval: wrong input count");
  std::vector<Word> values(static_cast<std::size_t>(graph.num_ops()), 0);
  for (dfg::OpId op = 0; op < graph.num_ops(); ++op) {
    const dfg::Operation& operation = graph.op(op);
    const Word a = operand_value(graph, operation.inputs[0], values, inputs);
    const Word b = operand_value(graph, operation.inputs[1], values, inputs);
    values[static_cast<std::size_t>(op)] = execute_op(operation.type, a, b);
  }
  return values;
}

}  // namespace ht::trojan
