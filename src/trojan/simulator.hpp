// Cycle-accurate run-time simulation of a bound design under Trojan attack.
//
// Executes a Solution the way the deployed circuit would run: the detection
// phase evaluates NC and RC cycle by cycle on their bound core instances,
// the outputs are compared (a mismatch is the paper's run-time detection
// event), and on detection the recovery phase re-executes the computation
// under the recovery binding. Trigger state lives per physical core
// instance and persists across phases — it is the same silicon.
//
// An InfectionMap assigns one TrojanSpec per (vendor, class) license,
// reflecting the paper's assumption that every instantiation of an IP core
// carries the same Trojan.
#pragma once

#include <map>

#include "core/solution.hpp"
#include "trojan/exec.hpp"

namespace ht::trojan {

/// All instances of an infected (vendor, class) IP core share the Trojan.
using InfectionMap = std::map<core::LicenseKey, TrojanSpec>;

/// How the circuit reacts to a detection event.
enum class RecoveryStrategy {
  /// The paper's scheme: run the recovery-phase binding (rules-compliant
  /// re-binding away from the detection-phase vendors).
  kRebindPerRules,
  /// Soft-error-style baseline: re-execute NC on the same cores. The
  /// paper's Section 3.2 argues this cannot clear a Trojan whose trigger
  /// condition persists.
  kReexecuteSame,
};

/// Everything observable from one activation scenario.
struct RunResult {
  std::vector<Word> golden_outputs;
  std::vector<Word> nc_outputs;
  std::vector<Word> rc_outputs;
  std::vector<Word> recovery_outputs;  ///< empty if recovery never ran

  bool payload_fired_detection = false;  ///< any altered op in NC or RC
  bool mismatch_detected = false;        ///< NC vs RC disagreement
  bool recovery_ran = false;
  bool payload_fired_recovery = false;
  bool recovered_correctly = false;  ///< recovery outputs match golden

  /// Missed attack: a payload fired during detection yet NC == RC.
  bool silent_corruption() const {
    return payload_fired_detection && !mismatch_detected;
  }
};

class RuntimeSimulator {
 public:
  /// `solution` must validate against `spec` (checked).
  RuntimeSimulator(const core::ProblemSpec& spec,
                   const core::Solution& solution);

  /// Simulates one frame. When `persistent_states` is non-null, sequential
  /// trigger counters carry over between calls (a streaming workload on the
  /// same silicon); otherwise each call starts from power-on state.
  RunResult run(const std::vector<Word>& inputs,
                const InfectionMap& infections,
                RecoveryStrategy strategy = RecoveryStrategy::kRebindPerRules,
                std::map<core::CoreKey, TriggerState>* persistent_states =
                    nullptr) const;

 private:
  struct ExecEvent {  // one op execution, ordered by (cycle, kind, op)
    int cycle;
    core::CopyKind kind;
    dfg::OpId op;
    core::CoreKey core;
  };

  const core::ProblemSpec& spec_;
  const core::Solution& solution_;
  std::vector<ExecEvent> detection_events_;
  std::vector<ExecEvent> recovery_events_;   // rules-compliant binding
  std::vector<ExecEvent> reexecute_events_;  // NC binding replayed
};

/// Which detection-phase computation was corrupted, judged against the
/// trusted recovery result. Meaningful only when recovery ran and
/// recovered correctly; feeds core::suspect_licenses for quarantine.
enum class CorruptedSide { kNone, kNormal, kRedundant, kBoth };

CorruptedSide diagnose_corrupted_side(const RunResult& result);

}  // namespace ht::trojan
