// Profiling-based discovery of closely-related operation pairs.
//
// Section 3.3: "operation pairs with closely-related inputs can be
// identified by analyzing the algorithm or profiling input relations
// through a large set of test vectors." This implements the profiling
// route: sample input vectors, evaluate the DFG, and report same-class op
// pairs whose operand values always stay within a tolerance of each other.
// The result plugs directly into ProblemSpec::closely_related.
#pragma once

#include <vector>

#include "trojan/exec.hpp"
#include "util/rng.hpp"

namespace ht::trojan {

struct ProfileConfig {
  int num_vectors = 256;
  /// Pairs whose operand distance never exceeds this are "close".
  Word tolerance = 15;
  /// Sampled primary-input range [min_value, max_value].
  Word min_value = 0;
  Word max_value = 1 << 20;
};

/// Max over both operand positions of |operand(i) - operand(j)| for one
/// input vector; the profile keeps the max over all vectors.
std::vector<std::pair<dfg::OpId, dfg::OpId>> profile_close_pairs(
    const dfg::Dfg& graph, const ProfileConfig& config, util::Rng& rng);

}  // namespace ht::trojan
