// Monte-Carlo Trojan-activation campaigns.
//
// The paper argues (Section 3) that its design rules make an activated
// Trojan (a) visible as an NC/RC mismatch and (b) removable by the
// recovery re-binding, while plain re-execution is not a remedy. This
// driver measures exactly that, adversarially: each trial infects one
// (vendor, class) license actually used by the design and gives the Trojan
// the rare trigger that matches the operand values of one real operation
// bound to that license — i.e. the strongest attacker consistent with the
// paper's threat model ("activated by a certain input or input sequence in
// one operation").
//
// Sequential triggers are exercised by streaming the same input frame for
// `threshold` consecutive runs with persistent core state, modeling the
// counter-based trigger of Figure 2(b).
#pragma once

#include "core/solution.hpp"
#include "trojan/simulator.hpp"
#include "util/rng.hpp"

namespace ht::trojan {

struct CampaignConfig {
  int trials = 500;
  std::uint64_t seed = 2014;
  /// Fraction of trials using a sequential (counter) trigger.
  double sequential_fraction = 0.25;
  /// Counter threshold for sequential triggers (frames to arm).
  int sequential_threshold = 3;
  /// Trigger operand mask; clearing low bits makes "closely related"
  /// operand values hit the same trigger (recovery Rule 2's concern).
  std::uint64_t trigger_mask = ~0ull;
  /// Primary-input sampling range.
  Word input_min = 0;
  Word input_max = 1 << 20;
  /// When false, only NC copies are targeted. Useful for isolating the
  /// re-execution baseline's failure mode: if the Trojan sits in RC, plain
  /// re-execution of NC is trivially "correct" (NC never was wrong), which
  /// would dilute the comparison.
  bool target_both_computations = true;
};

struct CampaignStats {
  int trials = 0;
  int payload_activated = 0;   ///< trigger fired during detection
  int detected = 0;            ///< NC/RC mismatch observed
  int silent_corruptions = 0;  ///< payload fired, outputs still agreed
  int recovery_ran = 0;
  int recovered = 0;           ///< recovery output matched golden
  int recovery_failed = 0;

  double detection_rate() const {
    return payload_activated == 0
               ? 1.0
               : static_cast<double>(detected) / payload_activated;
  }
  double recovery_rate() const {
    return recovery_ran == 0 ? 0.0
                             : static_cast<double>(recovered) / recovery_ran;
  }
};

/// Runs `config.trials` independent attack scenarios against the design.
CampaignStats run_campaign(const core::ProblemSpec& spec,
                           const core::Solution& solution,
                           const CampaignConfig& config,
                           RecoveryStrategy strategy =
                               RecoveryStrategy::kRebindPerRules);

/// Collusion exposure probe (detection Rule 2's threat): every license is
/// infected with an always-armed collusion Trojan (mask 0: any value from
/// a same-vendor upstream core triggers), and random frames are streamed.
/// A rule-compliant design can never activate one — same-vendor
/// parent-child bindings do not exist; designs synthesized without the
/// anti-collusion rule typically do.
struct CollusionProbe {
  int frames = 0;
  int frames_with_activation = 0;
  int frames_detected = 0;  ///< activations surfaced as NC/RC mismatch
};

CollusionProbe run_collusion_probe(const core::ProblemSpec& spec,
                                   const core::Solution& solution,
                                   int frames, std::uint64_t seed);

}  // namespace ht::trojan
