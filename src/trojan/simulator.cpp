#include "trojan/simulator.hpp"

#include <algorithm>

#include "core/validate.hpp"

namespace ht::trojan {

RuntimeSimulator::RuntimeSimulator(const core::ProblemSpec& spec,
                                   const core::Solution& solution)
    : spec_(spec), solution_(solution) {
  core::require_valid(spec, solution);

  auto core_of = [&](core::CopyKind kind, dfg::OpId op) {
    const core::Binding& binding = solution.at(kind, op);
    return core::CoreKey{binding.vendor,
                         dfg::resource_class_of(spec.graph.op(op).type),
                         binding.instance};
  };

  for (core::CopyKind kind :
       {core::CopyKind::kNormal, core::CopyKind::kRedundant}) {
    for (dfg::OpId op = 0; op < spec.graph.num_ops(); ++op) {
      detection_events_.push_back(ExecEvent{solution.at(kind, op).cycle, kind,
                                            op, core_of(kind, op)});
    }
  }
  if (solution.with_recovery()) {
    for (dfg::OpId op = 0; op < spec.graph.num_ops(); ++op) {
      recovery_events_.push_back(
          ExecEvent{solution.at(core::CopyKind::kRecovery, op).cycle,
                    core::CopyKind::kRecovery, op,
                    core_of(core::CopyKind::kRecovery, op)});
    }
  }
  // Baseline "just run it again": NC's schedule and cores, results kept in
  // the recovery value space.
  for (dfg::OpId op = 0; op < spec.graph.num_ops(); ++op) {
    reexecute_events_.push_back(
        ExecEvent{solution.at(core::CopyKind::kNormal, op).cycle,
                  core::CopyKind::kRecovery, op,
                  core_of(core::CopyKind::kNormal, op)});
  }

  auto order = [](const ExecEvent& a, const ExecEvent& b) {
    if (a.cycle != b.cycle) return a.cycle < b.cycle;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.op < b.op;
  };
  std::sort(detection_events_.begin(), detection_events_.end(), order);
  std::sort(recovery_events_.begin(), recovery_events_.end(), order);
  std::sort(reexecute_events_.begin(), reexecute_events_.end(), order);
}

namespace {

std::vector<Word> outputs_of(const dfg::Dfg& graph,
                             const std::vector<Word>& op_values) {
  std::vector<Word> out;
  for (dfg::OpId op : graph.outputs()) {
    out.push_back(op_values[static_cast<std::size_t>(op)]);
  }
  return out;
}

}  // namespace

RunResult RuntimeSimulator::run(
    const std::vector<Word>& inputs, const InfectionMap& infections,
    RecoveryStrategy strategy,
    std::map<core::CoreKey, TriggerState>* persistent_states) const {
  RunResult result;
  const dfg::Dfg& graph = spec_.graph;
  result.golden_outputs = outputs_of(graph, golden_eval(graph, inputs));

  // Per-kind value spaces; trigger state per physical core, shared across
  // both phases (and across frames when the caller passes persistent
  // state).
  std::array<std::vector<Word>, core::kNumCopyKinds> values;
  for (auto& space : values) {
    space.assign(static_cast<std::size_t>(graph.num_ops()), 0);
  }
  std::map<core::CoreKey, TriggerState> local_states;
  std::map<core::CoreKey, TriggerState>& states =
      persistent_states != nullptr ? *persistent_states : local_states;

  // Provenance per value space: which vendor's core produced each op's
  // value (feeds the collusion trigger).
  std::array<std::vector<vendor::VendorId>, core::kNumCopyKinds> producer;
  for (auto& space : producer) {
    space.assign(static_cast<std::size_t>(graph.num_ops()), -1);
  }

  auto execute = [&](const std::vector<ExecEvent>& events,
                     bool& payload_fired) {
    for (const ExecEvent& event : events) {
      const dfg::Operation& operation = graph.op(event.op);
      auto& space = values[static_cast<std::size_t>(event.kind)];
      auto& origin = producer[static_cast<std::size_t>(event.kind)];
      const Word a = operand_value(graph, operation.inputs[0], space, inputs);
      const Word b = operand_value(graph, operation.inputs[1], space, inputs);
      Word out = execute_op(operation.type, a, b);
      const auto infection = infections.find(
          core::LicenseKey{event.core.vendor, event.core.rc});
      if (infection != infections.end()) {
        bool same_vendor_upstream = false;
        for (const dfg::Operand& operand : operation.inputs) {
          if (operand.kind == dfg::Operand::Kind::kOp &&
              origin[static_cast<std::size_t>(operand.index)] ==
                  event.core.vendor) {
            same_vendor_upstream = true;
          }
        }
        TriggerState& state = states[event.core];
        if (state.step(infection->second, a, b, same_vendor_upstream)) {
          out = static_cast<Word>(static_cast<std::uint64_t>(out) ^
                                  infection->second.payload.xor_mask);
          payload_fired = true;
        }
      }
      space[static_cast<std::size_t>(event.op)] = out;
      origin[static_cast<std::size_t>(event.op)] = event.core.vendor;
    }
  };

  execute(detection_events_, result.payload_fired_detection);
  result.nc_outputs = outputs_of(
      graph, values[static_cast<std::size_t>(core::CopyKind::kNormal)]);
  result.rc_outputs = outputs_of(
      graph, values[static_cast<std::size_t>(core::CopyKind::kRedundant)]);
  result.mismatch_detected = result.nc_outputs != result.rc_outputs;

  if (result.mismatch_detected) {
    const std::vector<ExecEvent>* plan = nullptr;
    switch (strategy) {
      case RecoveryStrategy::kRebindPerRules:
        util::check_spec(solution_.with_recovery(),
                         "RuntimeSimulator: rules-based recovery requested "
                         "on a detection-only solution");
        plan = &recovery_events_;
        break;
      case RecoveryStrategy::kReexecuteSame:
        plan = &reexecute_events_;
        break;
    }
    result.recovery_ran = true;
    execute(*plan, result.payload_fired_recovery);
    result.recovery_outputs = outputs_of(
        graph, values[static_cast<std::size_t>(core::CopyKind::kRecovery)]);
    result.recovered_correctly =
        result.recovery_outputs == result.golden_outputs;
  }
  return result;
}

CorruptedSide diagnose_corrupted_side(const RunResult& result) {
  util::check_spec(result.recovery_ran && result.recovered_correctly,
                   "diagnose_corrupted_side: needs a trusted (successful) "
                   "recovery result to compare against");
  const bool nc_wrong = result.nc_outputs != result.recovery_outputs;
  const bool rc_wrong = result.rc_outputs != result.recovery_outputs;
  if (nc_wrong && rc_wrong) return CorruptedSide::kBoth;
  if (nc_wrong) return CorruptedSide::kNormal;
  if (rc_wrong) return CorruptedSide::kRedundant;
  return CorruptedSide::kNone;
}

}  // namespace ht::trojan
