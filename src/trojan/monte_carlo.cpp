#include "trojan/monte_carlo.hpp"

namespace ht::trojan {

CampaignStats run_campaign(const core::ProblemSpec& spec,
                           const core::Solution& solution,
                           const CampaignConfig& config,
                           RecoveryStrategy strategy) {
  util::check_spec(config.trials > 0, "run_campaign: trials must be > 0");
  util::Rng rng(config.seed);
  const RuntimeSimulator simulator(spec, solution);
  const dfg::Dfg& graph = spec.graph;

  // Detection-phase copies to target, with their licenses.
  std::vector<std::pair<core::CopyRef, core::LicenseKey>> targets;
  std::vector<core::CopyKind> target_kinds = {core::CopyKind::kNormal};
  if (config.target_both_computations) {
    target_kinds.push_back(core::CopyKind::kRedundant);
  }
  for (core::CopyKind kind : target_kinds) {
    for (dfg::OpId op = 0; op < graph.num_ops(); ++op) {
      const core::Binding& binding = solution.at(kind, op);
      targets.push_back(
          {core::CopyRef{kind, op},
           core::LicenseKey{binding.vendor,
                            dfg::resource_class_of(graph.op(op).type)}});
    }
  }

  CampaignStats stats;
  for (int trial = 0; trial < config.trials; ++trial) {
    ++stats.trials;

    // Input frame.
    std::vector<Word> inputs;
    for (int i = 0; i < graph.num_inputs(); ++i) {
      inputs.push_back(rng.uniform_int(config.input_min, config.input_max));
    }
    const std::vector<Word> clean = golden_eval(graph, inputs);

    // Adversarial Trojan: pick a real detection-phase (op, license) and use
    // the operand values that op will actually see as the rare trigger.
    const auto& [target, license] = rng.pick(targets);
    const dfg::Operation& operation = graph.op(target.op);
    const Word a = operand_value(graph, operation.inputs[0], clean, inputs);
    const Word b = operand_value(graph, operation.inputs[1], clean, inputs);

    TrojanSpec trojan;
    trojan.trigger.mask = config.trigger_mask;
    trojan.trigger.pattern_a = static_cast<std::uint64_t>(a);
    trojan.trigger.pattern_b = static_cast<std::uint64_t>(b);
    trojan.payload.xor_mask = 1ull << rng.uniform_int(0, 62);
    const bool sequential = rng.chance(config.sequential_fraction);
    int frames = 1;
    if (sequential) {
      trojan.trigger.kind = TriggerSpec::Kind::kSequential;
      trojan.trigger.threshold = config.sequential_threshold;
      frames = config.sequential_threshold;
    }
    InfectionMap infections;
    infections.emplace(license, trojan);

    // Stream identical frames so a sequential counter can arm; the last
    // frame carries the observable attack.
    std::map<core::CoreKey, TriggerState> silicon_state;
    RunResult result;
    for (int frame = 0; frame < frames; ++frame) {
      result = simulator.run(inputs, infections, strategy, &silicon_state);
    }

    if (result.payload_fired_detection) ++stats.payload_activated;
    if (result.mismatch_detected) ++stats.detected;
    if (result.silent_corruption()) ++stats.silent_corruptions;
    if (result.recovery_ran) {
      ++stats.recovery_ran;
      if (result.recovered_correctly) {
        ++stats.recovered;
      } else {
        ++stats.recovery_failed;
      }
    }
  }
  return stats;
}

CollusionProbe run_collusion_probe(const core::ProblemSpec& spec,
                                   const core::Solution& solution,
                                   int frames, std::uint64_t seed) {
  util::check_spec(frames > 0, "run_collusion_probe: frames must be > 0");
  util::Rng rng(seed);
  const RuntimeSimulator simulator(spec, solution);

  // Arm every license the design uses with an always-on collusion Trojan.
  InfectionMap infections;
  for (const core::LicenseKey& license : solution.licenses_used(spec)) {
    TrojanSpec trojan;
    trojan.trigger.kind = TriggerSpec::Kind::kCollusion;
    trojan.trigger.mask = 0;  // any operand value; provenance is the trigger
    trojan.payload.xor_mask = 0x5555;
    infections.emplace(license, trojan);
  }

  CollusionProbe probe;
  for (int frame = 0; frame < frames; ++frame) {
    ++probe.frames;
    std::vector<Word> inputs;
    for (int i = 0; i < spec.graph.num_inputs(); ++i) {
      inputs.push_back(rng.uniform_int(0, 1 << 20));
    }
    const RunResult result =
        simulator.run(inputs, infections,
                      solution.with_recovery()
                          ? RecoveryStrategy::kRebindPerRules
                          : RecoveryStrategy::kReexecuteSame);
    if (result.payload_fired_detection) ++probe.frames_with_activation;
    if (result.mismatch_detected) ++probe.frames_detected;
  }
  return probe;
}

}  // namespace ht::trojan
