// Data-flow graph (DFG) intermediate representation.
//
// The paper schedules and binds the operations of a behavioral DFG (as
// produced by an HLS front end such as GAUT) onto IP cores. This IR models
// exactly what that flow needs:
//
//   * operations are binary (two operands), typed (add/sub/mul/...), and take
//     one cycle on any core of the matching resource class;
//   * operands are either outputs of other operations, named primary inputs,
//     or integer constants — the operand *ordering* matters because the
//     run-time simulator (ht_trojan) executes the DFG functionally;
//   * the dependence edges required by scheduling are derived from operands.
//
// Graphs are built through Dfg's append-only API which keeps the operation
// list topologically ordered by construction (an operand may only reference
// an already-created operation), making cycles unrepresentable.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace ht::dfg {

/// Functional kind of an operation. This drives both simulation semantics
/// and the hardware resource class the operation must be bound to.
enum class OpType {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kShl,   // left shift (by constant amounts in our benchmarks)
  kShr,   // arithmetic right shift
  kAnd,
  kOr,
  kXor,
  kLt,    // signed less-than, yields 0/1
  kMax,
  kMin,
};

/// Hardware resource class: the kind of IP core that can execute an op.
/// Matches the paper's Section 5 setup of "multipliers, adders and other
/// operators" (three types of computational IPs per vendor).
enum class ResourceClass { kAdder = 0, kMultiplier = 1, kAlu = 2 };

inline constexpr int kNumResourceClasses = 3;

/// Resource class an OpType executes on. Adds/subtracts map to adders,
/// multiplies/divides to multipliers, everything else to the generic ALU.
ResourceClass resource_class_of(OpType type);

/// Short mnemonic, e.g. "mul"; used in DOT export and trace printing.
std::string op_type_name(OpType type);

/// Human-readable class name: "adder" / "multiplier" / "alu".
std::string resource_class_name(ResourceClass rc);

/// Index of an operation inside its Dfg (dense, 0-based).
using OpId = int;

/// One operand of an operation.
struct Operand {
  enum class Kind {
    kOp,     ///< output of operation `index`
    kInput,  ///< primary input `index`
    kConst,  ///< immediate `value`
  };

  Kind kind = Kind::kConst;
  int index = 0;            ///< op id or primary-input id (kOp / kInput)
  std::int64_t value = 0;   ///< immediate (kConst)

  static Operand op(OpId id) { return {Kind::kOp, id, 0}; }
  static Operand input(int input_id) { return {Kind::kInput, input_id, 0}; }
  static Operand constant(std::int64_t v) { return {Kind::kConst, 0, v}; }

  bool operator==(const Operand&) const = default;
};

/// A single-cycle binary operation.
struct Operation {
  OpType type = OpType::kAdd;
  std::array<Operand, 2> inputs{};
  std::string name;  ///< optional label for diagnostics / DOT
};

/// Append-only DFG. See file comment for the invariants.
class Dfg {
 public:
  Dfg() = default;
  explicit Dfg(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Declares a primary input and returns an operand referring to it.
  Operand add_input(std::string name);

  /// Appends an operation; both operands must reference existing ops/inputs.
  OpId add_op(OpType type, Operand a, Operand b, std::string name = "");

  /// Marks an operation's result as a primary output of the graph.
  void mark_output(OpId id);

  // ---- convenience builders -------------------------------------------
  OpId add(Operand a, Operand b, std::string name = "") {
    return add_op(OpType::kAdd, a, b, std::move(name));
  }
  OpId sub(Operand a, Operand b, std::string name = "") {
    return add_op(OpType::kSub, a, b, std::move(name));
  }
  OpId mul(Operand a, Operand b, std::string name = "") {
    return add_op(OpType::kMul, a, b, std::move(name));
  }

  // ---- accessors --------------------------------------------------------
  int num_ops() const { return static_cast<int>(ops_.size()); }
  int num_inputs() const { return static_cast<int>(input_names_.size()); }
  const Operation& op(OpId id) const;
  const std::vector<Operation>& ops() const { return ops_; }
  const std::vector<std::string>& input_names() const { return input_names_; }
  const std::vector<OpId>& outputs() const { return outputs_; }

  /// Dependence edges (from, to): `to` consumes the output of `from`.
  /// Derived from operands; duplicates are collapsed.
  std::vector<std::pair<OpId, OpId>> edges() const;

  /// Ops whose output is consumed by `id` (0, 1 or 2 entries, deduplicated).
  std::vector<OpId> parents(OpId id) const;

  /// Ops consuming the output of `id`.
  std::vector<OpId> children(OpId id) const;

  /// Number of operations per resource class.
  std::array<int, kNumResourceClasses> ops_per_class() const;

  /// Throws util::SpecError when internal references are out of range
  /// (cannot happen through the builder API; guards hand-rolled graphs).
  void validate() const;

 private:
  std::string name_;
  std::vector<Operation> ops_;
  std::vector<std::string> input_names_;
  std::vector<OpId> outputs_;
};

}  // namespace ht::dfg
