#include "dfg/analysis.hpp"

#include <algorithm>
#include <set>

namespace ht::dfg {

namespace {

void check_latencies(const Dfg& graph, const std::vector<int>& op_latency) {
  util::check_spec(
      static_cast<int>(op_latency.size()) == graph.num_ops(),
      "analysis: op_latency must have one entry per operation");
  for (int latency : op_latency) {
    util::check_spec(latency >= 1, "analysis: op latencies must be >= 1");
  }
}

}  // namespace

std::vector<int> asap_levels(const Dfg& graph,
                             const std::vector<int>& op_latency) {
  check_latencies(graph, op_latency);
  std::vector<int> level(static_cast<std::size_t>(graph.num_ops()), 1);
  // Ops are stored in topological order, so one forward pass suffices.
  for (OpId id = 0; id < graph.num_ops(); ++id) {
    for (OpId parent : graph.parents(id)) {
      level[static_cast<std::size_t>(id)] = std::max(
          level[static_cast<std::size_t>(id)],
          level[static_cast<std::size_t>(parent)] +
              op_latency[static_cast<std::size_t>(parent)]);
    }
  }
  return level;
}

std::vector<int> asap_levels(const Dfg& graph) {
  return asap_levels(
      graph, std::vector<int>(static_cast<std::size_t>(graph.num_ops()), 1));
}

int critical_path_length(const Dfg& graph,
                         const std::vector<int>& op_latency) {
  if (graph.num_ops() == 0) return 0;
  const std::vector<int> asap = asap_levels(graph, op_latency);
  int finish = 0;
  for (OpId id = 0; id < graph.num_ops(); ++id) {
    finish = std::max(finish, asap[static_cast<std::size_t>(id)] +
                                  op_latency[static_cast<std::size_t>(id)] -
                                  1);
  }
  return finish;
}

int critical_path_length(const Dfg& graph) {
  return critical_path_length(
      graph, std::vector<int>(static_cast<std::size_t>(graph.num_ops()), 1));
}

std::vector<int> alap_levels(const Dfg& graph, int latency,
                             const std::vector<int>& op_latency) {
  check_latencies(graph, op_latency);
  util::check_spec(latency >= 0, "alap_levels: negative latency");
  const int needed = critical_path_length(graph, op_latency);
  if (latency < needed) {
    throw util::InfeasibleError(
        "latency bound " + std::to_string(latency) +
        " is below the critical path length " + std::to_string(needed) +
        " of DFG '" + graph.name() + "'");
  }
  std::vector<int> level(static_cast<std::size_t>(graph.num_ops()), 0);
  for (OpId id = graph.num_ops() - 1; id >= 0; --id) {
    // Must finish by the bound...
    level[static_cast<std::size_t>(id)] =
        latency - op_latency[static_cast<std::size_t>(id)] + 1;
    // ...and before every child starts.
    for (OpId child : graph.children(id)) {
      level[static_cast<std::size_t>(id)] =
          std::min(level[static_cast<std::size_t>(id)],
                   level[static_cast<std::size_t>(child)] -
                       op_latency[static_cast<std::size_t>(id)]);
    }
  }
  return level;
}

std::vector<int> alap_levels(const Dfg& graph, int latency) {
  return alap_levels(
      graph, latency,
      std::vector<int>(static_cast<std::size_t>(graph.num_ops()), 1));
}

Schedulability analyze_schedulability(const Dfg& graph, int latency) {
  Schedulability result;
  result.asap = asap_levels(graph);
  result.alap = alap_levels(graph, latency);
  result.critical_path_length = critical_path_length(graph);
  return result;
}

std::vector<std::pair<OpId, OpId>> sibling_pairs(const Dfg& graph) {
  std::set<std::pair<OpId, OpId>> unique;
  for (OpId child = 0; child < graph.num_ops(); ++child) {
    const std::vector<OpId> parent_list = graph.parents(child);
    for (std::size_t a = 0; a < parent_list.size(); ++a) {
      for (std::size_t b = a + 1; b < parent_list.size(); ++b) {
        OpId lo = std::min(parent_list[a], parent_list[b]);
        OpId hi = std::max(parent_list[a], parent_list[b]);
        unique.emplace(lo, hi);
      }
    }
  }
  return {unique.begin(), unique.end()};
}

int min_cores_lower_bound(const Dfg& graph, ResourceClass rc, int latency) {
  util::check_spec(latency > 0, "min_cores_lower_bound: latency must be > 0");
  const std::vector<int> asap = asap_levels(graph);
  const std::vector<int> alap = alap_levels(graph, latency);
  // For every cycle window [a, b], all ops of class rc whose whole ASAP/ALAP
  // interval lies within the window must execute inside it, so at least
  // ceil(count / window_length) cores are required.
  int best = 0;
  for (int a = 1; a <= latency; ++a) {
    for (int b = a; b <= latency; ++b) {
      int count = 0;
      for (OpId id = 0; id < graph.num_ops(); ++id) {
        if (resource_class_of(graph.op(id).type) != rc) continue;
        if (asap[static_cast<std::size_t>(id)] >= a &&
            alap[static_cast<std::size_t>(id)] <= b) {
          ++count;
        }
      }
      const int window = b - a + 1;
      best = std::max(best, (count + window - 1) / window);
    }
  }
  return best;
}

}  // namespace ht::dfg
