// Graphviz DOT export for DFGs (and, in ht_core, for bound schedules).
#pragma once

#include <string>

#include "dfg/dfg.hpp"

namespace ht::dfg {

/// Renders the dependence structure of `graph` as a DOT digraph. Primary
/// inputs appear as boxes, operations as ellipses labeled "name:type",
/// primary outputs as double circles.
std::string to_dot(const Dfg& graph);

}  // namespace ht::dfg
