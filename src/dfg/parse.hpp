// Textual DFG format parser — the front door for users who are not
// constructing graphs through the C++ builder (and for the thls CLI).
//
// Format (one statement per line, '#' starts a comment):
//
//     dfg polynom
//     input a b c d e
//     m1 = mul a b
//     m2 = mul c d
//     s1 = add m1 m2
//     m3 = mul m2 e
//     s2 = add s1 m3
//     output s2
//
// Operations: add sub mul div shl shr and or xor lt max min.
// Operands are previously defined op names, declared inputs, or integer
// literals. Every name must be defined before use (DFGs are acyclic).
#pragma once

#include <string>
#include <string_view>

#include "dfg/dfg.hpp"

namespace ht::dfg {

/// Parses the format above; throws util::SpecError with a line number on
/// any syntax or reference error.
Dfg parse_dfg(std::string_view text);

/// Renders a Dfg back into the textual format (round-trips with
/// parse_dfg up to whitespace). Constants appear inline as literals.
std::string to_text(const Dfg& graph);

}  // namespace ht::dfg
