#include "dfg/parse.hpp"

#include <map>
#include <optional>

#include "util/strings.hpp"

namespace ht::dfg {
namespace {

std::optional<OpType> op_type_from_name(std::string_view name) {
  static const std::map<std::string, OpType, std::less<>> table = {
      {"add", OpType::kAdd}, {"sub", OpType::kSub}, {"mul", OpType::kMul},
      {"div", OpType::kDiv}, {"shl", OpType::kShl}, {"shr", OpType::kShr},
      {"and", OpType::kAnd}, {"or", OpType::kOr},   {"xor", OpType::kXor},
      {"lt", OpType::kLt},   {"max", OpType::kMax}, {"min", OpType::kMin},
  };
  const auto it = table.find(name);
  if (it == table.end()) return std::nullopt;
  return it->second;
}

bool is_integer_literal(const std::string& token) {
  if (token.empty()) return false;
  std::size_t start = token[0] == '-' ? 1 : 0;
  if (start == token.size()) return false;
  for (std::size_t i = start; i < token.size(); ++i) {
    if (token[i] < '0' || token[i] > '9') return false;
  }
  return true;
}

[[noreturn]] void fail(int line, const std::string& message) {
  throw util::SpecError("dfg parse error at line " + std::to_string(line) +
                        ": " + message);
}

/// Tokenizes one line (comments stripped) into whitespace-separated words.
std::vector<std::string> tokenize(std::string_view line) {
  const std::size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : line) {
    if (ch == ' ' || ch == '\t' || ch == '\r') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current += ch;
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

}  // namespace

Dfg parse_dfg(std::string_view text) {
  Dfg graph;
  bool named = false;
  std::map<std::string, Operand> symbols;
  std::map<std::string, OpId> op_names;
  std::vector<std::pair<int, std::string>> pending_outputs;

  int line_number = 0;
  for (const std::string& raw_line : util::split(text, '\n')) {
    ++line_number;
    const std::vector<std::string> tokens = tokenize(raw_line);
    if (tokens.empty()) continue;

    if (tokens[0] == "dfg") {
      if (tokens.size() != 2) fail(line_number, "expected: dfg <name>");
      if (named) fail(line_number, "duplicate dfg header");
      graph.set_name(tokens[1]);
      named = true;
      continue;
    }
    if (tokens[0] == "input") {
      if (tokens.size() < 2) fail(line_number, "expected: input <names...>");
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (symbols.count(tokens[i])) {
          fail(line_number, "redefinition of '" + tokens[i] + "'");
        }
        symbols.emplace(tokens[i], graph.add_input(tokens[i]));
      }
      continue;
    }
    if (tokens[0] == "output") {
      if (tokens.size() < 2) fail(line_number, "expected: output <names...>");
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        pending_outputs.emplace_back(line_number, tokens[i]);
      }
      continue;
    }

    // Operation statement: <name> = <op> <a> <b>
    if (tokens.size() != 5 || tokens[1] != "=") {
      fail(line_number, "expected: <name> = <op> <a> <b>");
    }
    const std::string& name = tokens[0];
    if (symbols.count(name)) {
      fail(line_number, "redefinition of '" + name + "'");
    }
    const std::optional<OpType> type = op_type_from_name(tokens[2]);
    if (!type) fail(line_number, "unknown operation '" + tokens[2] + "'");

    auto resolve = [&](const std::string& token) -> Operand {
      if (is_integer_literal(token)) {
        return Operand::constant(std::stoll(token));
      }
      const auto it = symbols.find(token);
      if (it == symbols.end()) {
        fail(line_number, "use of undefined name '" + token + "'");
      }
      return it->second;
    };
    const Operand a = resolve(tokens[3]);
    const Operand b = resolve(tokens[4]);
    const OpId id = graph.add_op(*type, a, b, name);
    symbols.emplace(name, Operand::op(id));
    op_names.emplace(name, id);
  }

  for (const auto& [line, name] : pending_outputs) {
    const auto it = op_names.find(name);
    if (it == op_names.end()) {
      fail(line, "output '" + name + "' is not an operation");
    }
    graph.mark_output(it->second);
  }
  util::check_spec(graph.num_ops() > 0, "dfg parse error: no operations");
  util::check_spec(!graph.outputs().empty(),
                   "dfg parse error: no outputs declared");
  graph.validate();
  return graph;
}

std::string to_text(const Dfg& graph) {
  std::string out = "dfg " + (graph.name().empty() ? "unnamed" : graph.name()) +
                    "\n";
  if (graph.num_inputs() > 0) {
    out += "input";
    for (const std::string& name : graph.input_names()) out += " " + name;
    out += "\n";
  }
  auto operand_text = [&](const Operand& operand) -> std::string {
    switch (operand.kind) {
      case Operand::Kind::kOp:
        return graph.op(operand.index).name;
      case Operand::Kind::kInput:
        return graph.input_names()[static_cast<std::size_t>(operand.index)];
      case Operand::Kind::kConst:
        return std::to_string(operand.value);
    }
    throw util::InternalError("to_text: unknown operand kind");
  };
  for (OpId id = 0; id < graph.num_ops(); ++id) {
    const Operation& operation = graph.op(id);
    out += operation.name + " = " + op_type_name(operation.type) + " " +
           operand_text(operation.inputs[0]) + " " +
           operand_text(operation.inputs[1]) + "\n";
  }
  if (!graph.outputs().empty()) {
    out += "output";
    for (OpId id : graph.outputs()) out += " " + graph.op(id).name;
    out += "\n";
  }
  return out;
}

}  // namespace ht::dfg
