#include "dfg/dfg.hpp"

#include <algorithm>
#include <set>

namespace ht::dfg {

ResourceClass resource_class_of(OpType type) {
  switch (type) {
    case OpType::kAdd:
    case OpType::kSub:
      return ResourceClass::kAdder;
    case OpType::kMul:
    case OpType::kDiv:
      return ResourceClass::kMultiplier;
    case OpType::kShl:
    case OpType::kShr:
    case OpType::kAnd:
    case OpType::kOr:
    case OpType::kXor:
    case OpType::kLt:
    case OpType::kMax:
    case OpType::kMin:
      return ResourceClass::kAlu;
  }
  throw util::InternalError("resource_class_of: unknown OpType");
}

std::string op_type_name(OpType type) {
  switch (type) {
    case OpType::kAdd:
      return "add";
    case OpType::kSub:
      return "sub";
    case OpType::kMul:
      return "mul";
    case OpType::kDiv:
      return "div";
    case OpType::kShl:
      return "shl";
    case OpType::kShr:
      return "shr";
    case OpType::kAnd:
      return "and";
    case OpType::kOr:
      return "or";
    case OpType::kXor:
      return "xor";
    case OpType::kLt:
      return "lt";
    case OpType::kMax:
      return "max";
    case OpType::kMin:
      return "min";
  }
  throw util::InternalError("op_type_name: unknown OpType");
}

std::string resource_class_name(ResourceClass rc) {
  switch (rc) {
    case ResourceClass::kAdder:
      return "adder";
    case ResourceClass::kMultiplier:
      return "multiplier";
    case ResourceClass::kAlu:
      return "alu";
  }
  throw util::InternalError("resource_class_name: unknown class");
}

Operand Dfg::add_input(std::string name) {
  input_names_.push_back(std::move(name));
  return Operand::input(static_cast<int>(input_names_.size()) - 1);
}

OpId Dfg::add_op(OpType type, Operand a, Operand b, std::string name) {
  auto check_operand = [&](const Operand& operand) {
    switch (operand.kind) {
      case Operand::Kind::kOp:
        util::check_spec(operand.index >= 0 && operand.index < num_ops(),
                         "Dfg::add_op: operand references a not-yet-created "
                         "operation (graphs are append-only / acyclic)");
        break;
      case Operand::Kind::kInput:
        util::check_spec(operand.index >= 0 && operand.index < num_inputs(),
                         "Dfg::add_op: operand references unknown input");
        break;
      case Operand::Kind::kConst:
        break;
    }
  };
  check_operand(a);
  check_operand(b);
  if (name.empty()) {
    name = op_type_name(type) + std::to_string(ops_.size());
  }
  ops_.push_back(Operation{type, {a, b}, std::move(name)});
  return static_cast<OpId>(ops_.size()) - 1;
}

void Dfg::mark_output(OpId id) {
  util::check_spec(id >= 0 && id < num_ops(),
                   "Dfg::mark_output: unknown op id");
  if (std::find(outputs_.begin(), outputs_.end(), id) == outputs_.end()) {
    outputs_.push_back(id);
  }
}

const Operation& Dfg::op(OpId id) const {
  util::check_spec(id >= 0 && id < num_ops(), "Dfg::op: id out of range");
  return ops_[static_cast<std::size_t>(id)];
}

std::vector<std::pair<OpId, OpId>> Dfg::edges() const {
  std::set<std::pair<OpId, OpId>> unique;
  for (OpId to = 0; to < num_ops(); ++to) {
    for (const Operand& operand : ops_[static_cast<std::size_t>(to)].inputs) {
      if (operand.kind == Operand::Kind::kOp) {
        unique.emplace(operand.index, to);
      }
    }
  }
  return {unique.begin(), unique.end()};
}

std::vector<OpId> Dfg::parents(OpId id) const {
  const Operation& operation = op(id);
  std::vector<OpId> out;
  for (const Operand& operand : operation.inputs) {
    if (operand.kind == Operand::Kind::kOp &&
        std::find(out.begin(), out.end(), operand.index) == out.end()) {
      out.push_back(operand.index);
    }
  }
  return out;
}

std::vector<OpId> Dfg::children(OpId id) const {
  util::check_spec(id >= 0 && id < num_ops(), "Dfg::children: id out of range");
  std::vector<OpId> out;
  for (OpId to = 0; to < num_ops(); ++to) {
    for (const Operand& operand : ops_[static_cast<std::size_t>(to)].inputs) {
      if (operand.kind == Operand::Kind::kOp && operand.index == id) {
        out.push_back(to);
        break;
      }
    }
  }
  return out;
}

std::array<int, kNumResourceClasses> Dfg::ops_per_class() const {
  std::array<int, kNumResourceClasses> counts{};
  for (const Operation& operation : ops_) {
    counts[static_cast<int>(resource_class_of(operation.type))]++;
  }
  return counts;
}

void Dfg::validate() const {
  for (OpId id = 0; id < num_ops(); ++id) {
    for (const Operand& operand : ops_[static_cast<std::size_t>(id)].inputs) {
      switch (operand.kind) {
        case Operand::Kind::kOp:
          util::check_spec(
              operand.index >= 0 && operand.index < id,
              "Dfg::validate: op " + std::to_string(id) +
                  " references op " + std::to_string(operand.index) +
                  " which is not strictly earlier (acyclicity violated)");
          break;
        case Operand::Kind::kInput:
          util::check_spec(operand.index >= 0 && operand.index < num_inputs(),
                           "Dfg::validate: dangling input reference");
          break;
        case Operand::Kind::kConst:
          break;
      }
    }
  }
  for (OpId id : outputs_) {
    util::check_spec(id >= 0 && id < num_ops(),
                     "Dfg::validate: dangling output reference");
  }
}

}  // namespace ht::dfg
