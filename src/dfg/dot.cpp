#include "dfg/dot.hpp"

#include <algorithm>

namespace ht::dfg {

std::string to_dot(const Dfg& graph) {
  std::string out = "digraph \"" + graph.name() + "\" {\n";
  out += "  rankdir=TB;\n";
  for (int i = 0; i < graph.num_inputs(); ++i) {
    out += "  in" + std::to_string(i) + " [shape=box,label=\"" +
           graph.input_names()[static_cast<std::size_t>(i)] + "\"];\n";
  }
  const auto& outputs = graph.outputs();
  for (OpId id = 0; id < graph.num_ops(); ++id) {
    const Operation& operation = graph.op(id);
    const bool is_output =
        std::find(outputs.begin(), outputs.end(), id) != outputs.end();
    out += "  op" + std::to_string(id) + " [shape=" +
           (is_output ? "doublecircle" : "ellipse") + ",label=\"" +
           operation.name + ":" + op_type_name(operation.type) + "\"];\n";
  }
  for (OpId id = 0; id < graph.num_ops(); ++id) {
    const Operation& operation = graph.op(id);
    for (std::size_t port = 0; port < operation.inputs.size(); ++port) {
      const Operand& operand = operation.inputs[port];
      switch (operand.kind) {
        case Operand::Kind::kOp:
          out += "  op" + std::to_string(operand.index) + " -> op" +
                 std::to_string(id) + ";\n";
          break;
        case Operand::Kind::kInput:
          out += "  in" + std::to_string(operand.index) + " -> op" +
                 std::to_string(id) + ";\n";
          break;
        case Operand::Kind::kConst:
          // Constants are folded into the node label space; omit from DOT to
          // keep benchmark graphs readable.
          break;
      }
    }
  }
  out += "}\n";
  return out;
}

}  // namespace ht::dfg
