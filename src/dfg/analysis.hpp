// Static scheduling analyses on a Dfg.
//
// All operations take one cycle, so ASAP/ALAP levels are plain longest-path
// computations over the dependence DAG. Cycles are 1-based throughout the
// repository to match the paper's formulation (steps l = 1..lambda).
#pragma once

#include <vector>

#include "dfg/dfg.hpp"

namespace ht::dfg {

/// Per-op scheduling freedom under a latency bound.
struct Schedulability {
  std::vector<int> asap;      ///< earliest cycle (1-based)
  std::vector<int> alap;      ///< latest cycle (1-based) for the given bound
  int critical_path_length;   ///< cycles needed with unlimited resources
};

/// Earliest start cycle of every op (1-based longest path from sources).
std::vector<int> asap_levels(const Dfg& graph);

/// Latest start cycle of every op such that all finish by `latency` cycles.
/// Throws util::InfeasibleError if `latency` is below the critical path.
std::vector<int> alap_levels(const Dfg& graph, int latency);

// ---- weighted variants: per-op execution latencies (multi-cycle units) ---

/// Earliest start cycles when op i takes `op_latency[i]` cycles: a child
/// may start once every parent has *finished* (parent start + its latency).
std::vector<int> asap_levels(const Dfg& graph,
                             const std::vector<int>& op_latency);

/// Latest start cycles such that op i finishes (start + op_latency[i] - 1)
/// by `latency`. Throws util::InfeasibleError when the weighted critical
/// path exceeds the bound.
std::vector<int> alap_levels(const Dfg& graph, int latency,
                             const std::vector<int>& op_latency);

/// Weighted critical path: cycles needed with unlimited resources.
int critical_path_length(const Dfg& graph,
                         const std::vector<int>& op_latency);

/// ASAP + ALAP + critical path in one call.
Schedulability analyze_schedulability(const Dfg& graph, int latency);

/// Length of the longest dependence chain, in cycles (0 for an empty graph).
int critical_path_length(const Dfg& graph);

/// All unordered pairs (i, j), i < j, that feed the same child operation —
/// the "provide inputs to the same operation" pairs of detection Rule 2.
std::vector<std::pair<OpId, OpId>> sibling_pairs(const Dfg& graph);

/// Minimum number of cores of `rc` needed to meet `latency` (a simple
/// bin-packing lower bound: ceil(ops_of_class / latency) refined by ASAP/ALAP
/// interval density). Used by the heuristic solver for initial allocation.
int min_cores_lower_bound(const Dfg& graph, ResourceClass rc, int latency);

}  // namespace ht::dfg
