#include "benchmarks/suite.hpp"

#include "benchmarks/classic.hpp"
#include "util/status.hpp"

namespace ht::benchmarks {

const std::vector<BenchmarkCase>& paper_suite() {
  // (lambda, A) pairs copied from the paper's Tables 3 and 4.
  static const std::vector<BenchmarkCase> suite = {
      {"polynom",
       polynom,
       {{3, 30000}, {6, 20000}},
       {{6, 60000}, {12, 30000}}},
      {"diff2",
       diff2,
       {{4, 50000}, {14, 30000}},
       {{8, 80000}, {14, 30000}}},
      {"dtmf",
       dtmf,
       {{4, 70000}, {8, 30000}},
       {{8, 70000}, {15, 35000}}},
      {"mof2",
       mof2,
       {{7, 80000}, {14, 40000}},
       {{14, 80000}, {24, 40000}}},
      {"ellipticicass",
       ellipticicass,
       {{8, 30000}, {16, 20000}},
       {{16, 50000}, {24, 40000}}},
      {"fir16",
       fir16,
       {{6, 200000}, {12, 140000}},
       {{12, 220000}, {16, 180000}}},
  };
  return suite;
}

const BenchmarkCase& by_name(const std::string& name) {
  for (const BenchmarkCase& entry : paper_suite()) {
    if (entry.name == name) return entry;
  }
  throw util::SpecError("unknown benchmark: " + name);
}

}  // namespace ht::benchmarks
