#include "benchmarks/classic.hpp"

#include <array>

namespace ht::benchmarks {

using dfg::Dfg;
using dfg::Operand;
using dfg::OpType;

Dfg polynom() {
  Dfg g("polynom");
  Operand a = g.add_input("a");
  Operand b = g.add_input("b");
  Operand c = g.add_input("c");
  Operand d = g.add_input("d");
  Operand e = g.add_input("e");

  dfg::OpId m1 = g.mul(a, b, "m1");                        // cycle-level 1
  dfg::OpId m2 = g.mul(c, d, "m2");                        // 1
  dfg::OpId s1 = g.add(Operand::op(m1), Operand::op(m2), "s1");  // 2
  dfg::OpId m3 = g.mul(Operand::op(m2), e, "m3");          // 2
  dfg::OpId s2 = g.add(Operand::op(s1), Operand::op(m3), "s2");  // 3
  g.mark_output(s2);
  return g;
}

Dfg diff2() {
  Dfg g("diff2");
  Operand x = g.add_input("x");
  Operand y = g.add_input("y");
  Operand u = g.add_input("u");
  Operand dx = g.add_input("dx");
  Operand a = g.add_input("a");
  const Operand three = Operand::constant(3);

  // Balanced HAL form: u' = u - (3x)(u dx) - (3y)dx. The product u*dx is
  // materialized twice (p2 for the u' chain, p2b for y') exactly as GAUT's
  // CDFG duplicates common factors across outputs, giving the paper's 11 ops.
  dfg::OpId p1 = g.mul(three, x, "3x");        // level 1
  dfg::OpId p2 = g.mul(u, dx, "udx");          // 1
  dfg::OpId p3 = g.mul(three, y, "3y");        // 1
  dfg::OpId p2b = g.mul(u, dx, "udx2");        // 1
  dfg::OpId x1 = g.add(x, dx, "x1");           // 1
  dfg::OpId q1 = g.mul(Operand::op(p1), Operand::op(p2), "3xudx");  // 2
  dfg::OpId q2 = g.mul(Operand::op(p3), dx, "3ydx");                // 2
  dfg::OpId y1 = g.add(y, Operand::op(p2b), "y1");                  // 2
  dfg::OpId cont = g.add_op(OpType::kLt, Operand::op(x1), a, "cont");  // 2
  dfg::OpId r1 = g.sub(u, Operand::op(q1), "r1");                   // 3
  dfg::OpId u1 = g.sub(Operand::op(r1), Operand::op(q2), "u1");     // 4
  g.mark_output(u1);
  g.mark_output(x1);
  g.mark_output(y1);
  g.mark_output(cont);
  return g;
}

Dfg dtmf() {
  Dfg g("dtmf");
  Operand c1 = g.add_input("c1");
  Operand y11 = g.add_input("y11");
  Operand y12 = g.add_input("y12");
  Operand c2 = g.add_input("c2");
  Operand y21 = g.add_input("y21");
  Operand y22 = g.add_input("y22");
  Operand x = g.add_input("x");
  Operand amp = g.add_input("amp");
  const Operand bias = Operand::constant(128);
  const Operand two = Operand::constant(2);
  const Operand one = Operand::constant(1);

  // Two second-order oscillator updates y[n] = c*y[n-1] - y[n-2], mixed and
  // scaled, with a DC/gain side path — the row/column tone pair of DTMF.
  dfg::OpId m1 = g.mul(c1, y11, "m1");                       // level 1
  dfg::OpId m2 = g.mul(c2, y21, "m2");                       // 1
  dfg::OpId g1 = g.add(x, bias, "g1");                       // 1
  dfg::OpId o1 = g.sub(Operand::op(m1), y12, "tone1");       // 2
  dfg::OpId o2 = g.sub(Operand::op(m2), y22, "tone2");       // 2
  dfg::OpId g2 = g.add_op(OpType::kShr, Operand::op(g1), two, "g2");  // 2
  dfg::OpId mix = g.add(Operand::op(o1), Operand::op(o2), "mix");     // 3
  dfg::OpId a1 = g.add_op(OpType::kShr, Operand::op(o1), one, "a1");  // 3
  dfg::OpId out = g.add(Operand::op(mix), Operand::op(g2), "out");    // 4
  dfg::OpId t = g.mul(Operand::op(mix), amp, "scaled");               // 4
  dfg::OpId out2 = g.add(Operand::op(a1), Operand::op(o2), "out2");   // 4
  g.mark_output(out);
  g.mark_output(t);
  g.mark_output(out2);
  return g;
}

Dfg mof2() {
  Dfg g("mof2");
  Operand x = g.add_input("x");
  Operand x1 = g.add_input("x1");
  Operand x2 = g.add_input("x2");
  Operand y1 = g.add_input("y1");
  Operand y2 = g.add_input("y2");
  Operand b0 = g.add_input("b0");
  Operand b1 = g.add_input("b1");
  Operand b2 = g.add_input("b2");
  Operand a1 = g.add_input("a1");
  Operand a2 = g.add_input("a2");
  Operand c0 = g.add_input("c0");
  Operand c1 = g.add_input("c1");

  // y = b0 x + b1 x1 + b2 x2 - a1 y1 - a2 y2 ; z = c0 x + c1 y.
  dfg::OpId m0 = g.mul(b0, x, "b0x");    // level 1
  dfg::OpId m1 = g.mul(b1, x1, "b1x1");  // 1
  dfg::OpId m2 = g.mul(b2, x2, "b2x2");  // 1
  dfg::OpId m3 = g.mul(a1, y1, "a1y1");  // 1
  dfg::OpId m4 = g.mul(a2, y2, "a2y2");  // 1
  dfg::OpId m5 = g.mul(c0, x, "c0x");    // 1
  dfg::OpId t1 = g.add(Operand::op(m0), Operand::op(m1), "t1");  // 2
  dfg::OpId t2 = g.add(Operand::op(t1), Operand::op(m2), "t2");  // 3
  dfg::OpId t3 = g.sub(Operand::op(t2), Operand::op(m3), "t3");  // 4
  dfg::OpId y = g.sub(Operand::op(t3), Operand::op(m4), "y");    // 5
  dfg::OpId m6 = g.mul(c1, Operand::op(y), "c1y");               // 6
  dfg::OpId z = g.add(Operand::op(m5), Operand::op(m6), "z");    // 7
  g.mark_output(y);
  g.mark_output(z);
  return g;
}

Dfg ellipticicass() {
  Dfg g("ellipticicass");
  Operand in = g.add_input("in");
  std::array<Operand, 9> s{};
  for (int i = 0; i < 9; ++i) {
    s[static_cast<std::size_t>(i)] = g.add_input("s" + std::to_string(i + 1));
  }
  std::array<Operand, 8> c{};
  for (int i = 0; i < 8; ++i) {
    c[static_cast<std::size_t>(i)] = g.add_input("c" + std::to_string(i + 1));
  }
  auto O = [](dfg::OpId id) { return Operand::op(id); };

  // Ladder of adder chains with coefficient multipliers, the elliptic wave
  // filter shape, sized to the paper's 29 ops / 8-cycle critical path.
  // level 1
  dfg::OpId a1 = g.add(in, s[0], "a1");
  dfg::OpId a2 = g.add(s[1], s[2], "a2");
  dfg::OpId a3 = g.add(s[3], s[4], "a3");
  dfg::OpId a4 = g.add(s[5], s[6], "a4");
  dfg::OpId a0 = g.add(s[7], s[8], "a0");
  // level 2
  dfg::OpId m1 = g.mul(O(a1), c[0], "m1");
  dfg::OpId m2 = g.mul(O(a2), c[1], "m2");
  dfg::OpId a5 = g.add(O(a1), O(a2), "a5");
  dfg::OpId a6 = g.add(O(a3), O(a4), "a6");
  dfg::OpId a7 = g.add(O(a0), O(a3), "a7");
  // level 3
  dfg::OpId a8 = g.add(O(m1), O(a6), "a8");
  dfg::OpId a9 = g.add(O(m2), O(a7), "a9");
  dfg::OpId m3 = g.mul(O(a5), c[2], "m3");
  dfg::OpId m4 = g.mul(O(a6), c[3], "m4");
  // level 4
  dfg::OpId a10 = g.add(O(a8), O(a9), "a10");
  dfg::OpId a11 = g.add(O(m3), O(m4), "a11");
  dfg::OpId m5 = g.mul(O(a8), c[4], "m5");
  // level 5
  dfg::OpId a12 = g.add(O(a10), O(a11), "a12");
  dfg::OpId a13 = g.add(O(m5), O(a11), "a13");
  dfg::OpId m6 = g.mul(O(a10), c[5], "m6");
  // level 6
  dfg::OpId a14 = g.add(O(a12), O(a13), "a14");
  dfg::OpId a15 = g.add(O(m6), O(a13), "a15");
  dfg::OpId m7 = g.mul(O(a12), c[6], "m7");
  // level 7
  dfg::OpId a16 = g.add(O(a14), O(m7), "a16");
  dfg::OpId a17 = g.add(O(a15), O(a14), "a17");
  dfg::OpId m8 = g.mul(O(a15), c[7], "m8");
  // level 8
  dfg::OpId a18 = g.add(O(a16), O(a17), "a18");
  dfg::OpId a19 = g.add(O(m8), O(a16), "a19");
  dfg::OpId a20 = g.add(O(a17), O(m8), "a20");

  g.mark_output(a18);
  g.mark_output(a19);
  g.mark_output(a20);
  return g;
}

Dfg fir16() {
  Dfg g("fir16");
  std::array<Operand, 16> x{};
  std::array<Operand, 16> h{};
  for (int i = 0; i < 16; ++i) {
    x[static_cast<std::size_t>(i)] = g.add_input("x" + std::to_string(i));
    h[static_cast<std::size_t>(i)] = g.add_input("h" + std::to_string(i));
  }
  // 16 taps, then a balanced adder tree (8 + 4 + 2 + 1 = 15 adds).
  std::vector<dfg::OpId> layer;
  for (int i = 0; i < 16; ++i) {
    layer.push_back(g.mul(x[static_cast<std::size_t>(i)],
                          h[static_cast<std::size_t>(i)],
                          "t" + std::to_string(i)));
  }
  int depth = 0;
  while (layer.size() > 1) {
    ++depth;
    std::vector<dfg::OpId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(g.add(dfg::Operand::op(layer[i]),
                           dfg::Operand::op(layer[i + 1]),
                           "s" + std::to_string(depth) + "_" +
                               std::to_string(i / 2)));
    }
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  g.mark_output(layer.front());
  return g;
}

}  // namespace ht::benchmarks
