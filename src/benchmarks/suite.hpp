// Registry of the paper's evaluation benchmarks together with the latency
// and area settings of Tables 3 and 4, so benches and tests can iterate the
// whole evaluation exactly as the paper tabulates it.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dfg/dfg.hpp"

namespace ht::benchmarks {

/// One (lambda, area) experiment row as listed in Table 3 / Table 4.
struct TableRow {
  int lambda = 0;  ///< latency bound (cycles); see table semantics below
  long long area = 0;
};

/// A registered benchmark plus its per-table experiment settings.
///
/// Table 3 rows bound the *detection phase* latency (the designs are
/// detection-only). Table 4 rows bound the *total* schedule length covering
/// detection followed by recovery, per the paper's lambda definition.
struct BenchmarkCase {
  std::string name;
  std::function<dfg::Dfg()> factory;
  std::vector<TableRow> table3;  ///< detection-only settings
  std::vector<TableRow> table4;  ///< detection + recovery settings
};

/// All six paper benchmarks in the paper's row order.
const std::vector<BenchmarkCase>& paper_suite();

/// Lookup by name; throws util::SpecError for unknown names.
const BenchmarkCase& by_name(const std::string& name);

}  // namespace ht::benchmarks
