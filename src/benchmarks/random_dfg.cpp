#include "benchmarks/random_dfg.hpp"

#include <vector>

namespace ht::benchmarks {

using dfg::Dfg;
using dfg::Operand;
using dfg::OpType;

namespace {

OpType draw_op_type(const RandomDfgConfig& config, util::Rng& rng) {
  const double total =
      config.adder_weight + config.multiplier_weight + config.alu_weight;
  util::check_spec(total > 0.0, "random_dfg: all class weights are zero");
  const double draw = rng.uniform01() * total;
  if (draw < config.adder_weight) {
    return rng.chance(0.5) ? OpType::kAdd : OpType::kSub;
  }
  if (draw < config.adder_weight + config.multiplier_weight) {
    return OpType::kMul;
  }
  switch (rng.uniform_int(0, 3)) {
    case 0:
      return OpType::kXor;
    case 1:
      return OpType::kAnd;
    case 2:
      return OpType::kOr;
    default:
      return OpType::kShr;
  }
}

}  // namespace

dfg::Dfg random_dfg(const RandomDfgConfig& config, util::Rng& rng) {
  util::check_spec(config.num_ops > 0, "random_dfg: num_ops must be > 0");
  Dfg graph("random");
  std::vector<int> depth;  // depth of each created op (1-based)

  auto draw_operand = [&](int current_op) -> std::pair<Operand, int> {
    // Candidates: earlier ops that keep us within max_depth.
    std::vector<dfg::OpId> candidates;
    for (dfg::OpId id = 0; id < current_op; ++id) {
      if (config.max_depth <= 0 ||
          depth[static_cast<std::size_t>(id)] < config.max_depth) {
        candidates.push_back(id);
      }
    }
    if (!candidates.empty() && rng.chance(config.edge_probability)) {
      dfg::OpId chosen = rng.pick(candidates);
      return {Operand::op(chosen), depth[static_cast<std::size_t>(chosen)]};
    }
    return {graph.add_input("in" + std::to_string(graph.num_inputs())), 0};
  };

  for (int i = 0; i < config.num_ops; ++i) {
    auto [lhs, lhs_depth] = draw_operand(i);
    auto [rhs, rhs_depth] = draw_operand(i);
    graph.add_op(draw_op_type(config, rng), lhs, rhs);
    depth.push_back(std::max(lhs_depth, rhs_depth) + 1);
  }

  // Everything with no consumer is an output.
  for (dfg::OpId id = 0; id < graph.num_ops(); ++id) {
    if (graph.children(id).empty()) graph.mark_output(id);
  }
  graph.validate();
  return graph;
}

}  // namespace ht::benchmarks
