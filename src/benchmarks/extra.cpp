#include "benchmarks/extra.hpp"

#include <array>

namespace ht::benchmarks {

using dfg::Dfg;
using dfg::Operand;

Dfg ar_lattice() {
  Dfg g("ar_lattice");
  Operand f = g.add_input("f0");
  Operand b = g.add_input("b0");
  std::array<Operand, 6> k{};
  std::array<Operand, 6> kp{};
  for (int i = 0; i < 6; ++i) {
    k[static_cast<std::size_t>(i)] = g.add_input("k" + std::to_string(i));
    kp[static_cast<std::size_t>(i)] = g.add_input("kp" + std::to_string(i));
  }
  // Six lattice stages:
  //   f_{i+1} = f_i + k_i  * b_i
  //   b_{i+1} = b_i + kp_i * f_i
  for (int i = 0; i < 6; ++i) {
    const dfg::OpId mf =
        g.mul(k[static_cast<std::size_t>(i)], b, "kf" + std::to_string(i));
    const dfg::OpId mb =
        g.mul(kp[static_cast<std::size_t>(i)], f, "kb" + std::to_string(i));
    const dfg::OpId f_next =
        g.add(f, Operand::op(mf), "f" + std::to_string(i + 1));
    const dfg::OpId b_next =
        g.add(b, Operand::op(mb), "b" + std::to_string(i + 1));
    f = Operand::op(f_next);
    b = Operand::op(b_next);
  }
  // Output gain network: 4 more multiplies.
  Operand gain = g.add_input("gain");
  Operand atten = g.add_input("atten");
  const dfg::OpId p = g.mul(f, gain, "p");
  const dfg::OpId q = g.mul(b, gain, "q");
  const dfg::OpId pr = g.mul(Operand::op(p), atten, "pr");
  const dfg::OpId qr = g.mul(Operand::op(q), atten, "qr");
  g.mark_output(pr);
  g.mark_output(qr);
  return g;
}

Dfg matmul2x2() {
  Dfg g("matmul2x2");
  std::array<std::array<Operand, 2>, 2> a{};
  std::array<std::array<Operand, 2>, 2> b{};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          g.add_input("a" + std::to_string(i) + std::to_string(j));
    }
  }
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      b[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          g.add_input("b" + std::to_string(i) + std::to_string(j));
    }
  }
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      const std::string tag = std::to_string(i) + std::to_string(j);
      const dfg::OpId m0 =
          g.mul(a[static_cast<std::size_t>(i)][0],
                b[0][static_cast<std::size_t>(j)], "m" + tag + "_0");
      const dfg::OpId m1 =
          g.mul(a[static_cast<std::size_t>(i)][1],
                b[1][static_cast<std::size_t>(j)], "m" + tag + "_1");
      const dfg::OpId c =
          g.add(Operand::op(m0), Operand::op(m1), "c" + tag);
      g.mark_output(c);
    }
  }
  return g;
}

Dfg fft4() {
  Dfg g("fft4");
  Operand x0 = g.add_input("x0");
  Operand x1 = g.add_input("x1");
  Operand x2 = g.add_input("x2");
  Operand x3 = g.add_input("x3");
  Operand w0 = g.add_input("w0");
  Operand w1 = g.add_input("w1");
  Operand w2 = g.add_input("w2");
  // Stage 1 butterflies.
  const dfg::OpId t0 = g.add(x0, x2, "t0");
  const dfg::OpId t1 = g.sub(x0, x2, "t1");
  const dfg::OpId t2 = g.add(x1, x3, "t2");
  const dfg::OpId t3 = g.sub(x1, x3, "t3");
  // Stage 2.
  const dfg::OpId X0 = g.add(Operand::op(t0), Operand::op(t2), "X0");
  const dfg::OpId X2 = g.sub(Operand::op(t0), Operand::op(t2), "X2");
  const dfg::OpId X1im = g.sub(Operand::constant(0), Operand::op(t3), "X1im");
  // Windowing.
  const dfg::OpId y0 = g.mul(Operand::op(X0), w0, "y0");
  const dfg::OpId y2 = g.mul(Operand::op(X2), w2, "y2");
  const dfg::OpId y1re = g.mul(Operand::op(t1), w1, "y1re");
  const dfg::OpId y1im = g.mul(Operand::op(X1im), w1, "y1im");
  g.mark_output(y0);
  g.mark_output(y1re);
  g.mark_output(y1im);
  g.mark_output(y2);
  return g;
}

}  // namespace ht::benchmarks
