// Additional classic HLS kernels beyond the paper's six evaluation
// graphs. Not part of the Table 3/4 reproduction — they exist so users of
// the library have a broader workload set (and so tests can exercise the
// flow on deep multiply chains, wide trees, and multi-output kernels the
// paper's suite doesn't cover).
#pragma once

#include "dfg/dfg.hpp"

namespace ht::benchmarks {

/// Six-stage AR lattice filter with an output gain network.
/// 28 ops: 16 mul, 12 add; deep (critical path 14) — the stress case for
/// latency-bound scheduling.
dfg::Dfg ar_lattice();

/// 2x2 matrix multiply, fully unrolled. 12 ops: 8 mul, 4 add; critical
/// path 2 — the stress case for concurrency/area.
dfg::Dfg matmul2x2();

/// 4-point real-input FFT (radix-2 butterflies) with windowing. 11 ops:
/// 4 mul, 7 add/sub; multiple outputs.
dfg::Dfg fft4();

}  // namespace ht::benchmarks
