// Parameterized random DFG generator.
//
// Used by property-based tests (scheduling/binding invariants must hold on
// arbitrary DAGs, not just the six paper benchmarks) and by the solver
// scaling bench to sweep problem size.
#pragma once

#include "dfg/dfg.hpp"
#include "util/rng.hpp"

namespace ht::benchmarks {

struct RandomDfgConfig {
  int num_ops = 10;
  /// Probability that a given operand of an op is the output of an earlier
  /// op (otherwise it is a fresh primary input).
  double edge_probability = 0.6;
  /// Weights of drawing each resource class for an op type
  /// (adder : multiplier : alu).
  double adder_weight = 0.5;
  double multiplier_weight = 0.3;
  double alu_weight = 0.2;
  /// Upper bound on the depth of the generated DAG (0 = unconstrained).
  /// Achieved by restricting operand candidates to shallow predecessors.
  int max_depth = 0;
};

/// Generates a valid, connected-ish DAG with `config.num_ops` operations.
/// Every op whose result is unused is marked as a primary output.
dfg::Dfg random_dfg(const RandomDfgConfig& config, util::Rng& rng);

}  // namespace ht::benchmarks
