// Reconstructions of the six DFGs used in the paper's Section 5 evaluation.
//
// The paper takes its benchmarks from the 1992 High-Level Synthesis
// Benchmark suite, converted to CDFGs with GAUT. Those exact CDFG files are
// not distributed, so each graph here is reconstructed from (a) the paper's
// stated operation count, (b) the latency bounds of Tables 3/4 (which bound
// the critical path from above: the tightest detection-phase lambda must be
// schedulable), and (c) the canonical structure of the algorithm in the HLS
// literature. Every property is locked in by tests/benchmarks_test.cpp.
//
//   benchmark      n   critical path   op mix
//   polynom        5   3               3 mul, 2 add
//   diff2         11   4               6 mul, 2 sub, 2 add, 1 lt (HAL)
//   dtmf          11   4               3 mul, 2 sub, 4 add, 2 shr
//   mof2          12   7               7 mul, 3 add, 2 sub
//   ellipticicass 29   8               8 mul, 21 add
//   fir16         31   5               16 mul, 15 add
#pragma once

#include "dfg/dfg.hpp"

namespace ht::benchmarks {

/// Polynomial evaluation: a*b + c*d + (c*d)*e. 5 ops, critical path 3.
/// This is also the motivational 5-op DFG of the paper's Figure 5.
dfg::Dfg polynom();

/// HAL second-order differential-equation solver (balanced form):
/// u' = u - (3*x)*(u*dx) - (3*y)*dx ; x' = x + dx ; y' = y + u*dx ;
/// continue = x' < a. 11 ops, critical path 4.
dfg::Dfg diff2();

/// DTMF tone generator: two coupled second-order digital oscillators mixed
/// with a gain path. 11 ops, critical path 4.
dfg::Dfg dtmf();

/// Multiple-output second-order (biquad) filter, direct form I, with a
/// second derived output. 12 ops, critical path 7.
dfg::Dfg mof2();

/// Fifth-order elliptic wave filter slice (ladder of adder chains with
/// coefficient multipliers), trimmed to the paper's 29 operations,
/// critical path 8.
dfg::Dfg ellipticicass();

/// 16-tap finite impulse response filter: 16 coefficient multiplies feeding
/// a balanced adder tree. 31 ops, critical path 5.
dfg::Dfg fir16();

}  // namespace ht::benchmarks
