// Verilog-2001 emission of an elaborated design.
//
// Produces a single self-contained synthesizable-style module: the step
// counter as the controller, case-mux always blocks for operand steering,
// one assign per functional unit, registers with enables, the NC/RC
// comparator and the detection flag. Intended for inspection and for
// feeding downstream tools; the in-repo signoff path is RtlSimulator.
#pragma once

#include <string>

#include "rtl/elaborate.hpp"

namespace ht::rtl {

/// Renders the whole design as one Verilog module named after the netlist.
/// Ports: clk, rst, every primary input, every primary output.
std::string to_verilog(const ElaboratedDesign& design);

}  // namespace ht::rtl
