#include "rtl/elaborate.hpp"

#include <algorithm>
#include <map>

#include "core/validate.hpp"

namespace ht::rtl {

using core::Binding;
using core::CopyKind;
using core::CoreKey;

namespace {

Cell make_cell(CellKind kind, std::string name, std::vector<WireId> inputs,
               WireId output) {
  Cell cell;
  cell.kind = kind;
  cell.name = std::move(name);
  cell.inputs = std::move(inputs);
  cell.output = output;
  return cell;
}

Cell make_const(std::string name, WireId output, std::int64_t value) {
  Cell cell = make_cell(CellKind::kConst, std::move(name), {}, output);
  cell.value = value;
  return cell;
}

}  // namespace

ElaboratedDesign elaborate(const core::ProblemSpec& spec,
                           const core::Solution& solution,
                           const ElaborateOptions& options) {
  core::require_valid(spec, solution);
  util::check_spec(spec.unit_latency(),
                   "rtl::elaborate models single-cycle functional units; "
                   "multi-cycle cores are a scheduling-level feature only");
  const dfg::Dfg& graph = spec.graph;
  const bool with_recovery = solution.with_recovery();
  const int lambda_det = spec.lambda_detection;
  const int lambda_rec = with_recovery ? spec.lambda_recovery : 0;

  ElaboratedDesign design;
  Netlist& nl = design.netlist;
  nl = Netlist(graph.name() + "_thls");
  design.total_steps = lambda_det + lambda_rec + 1;  // +1: settle step

  auto global_step = [&](CopyKind kind, dfg::OpId op) {
    const Binding& binding = solution.at(kind, op);
    return kind == CopyKind::kRecovery ? lambda_det + binding.cycle
                                       : binding.cycle;
  };

  // ---- wires -------------------------------------------------------------
  const WireId one1 = nl.add_wire("const_one", 1);
  const WireId step = nl.add_wire("step", 16);

  std::vector<WireId> in_wire;
  for (int i = 0; i < graph.num_inputs(); ++i) {
    const std::string name =
        "in_" + graph.input_names()[static_cast<std::size_t>(i)];
    const WireId w = nl.add_wire(name, 64);
    nl.mark_input(w);
    in_wire.push_back(w);
    design.input_names.push_back(name);
  }

  std::map<std::int64_t, WireId> const_wire;  // 64-bit data constants
  auto data_const = [&](std::int64_t value) {
    auto [it, inserted] = const_wire.try_emplace(value, -1);
    if (inserted) {
      it->second = nl.add_wire("const_" + std::to_string(value), 64);
      nl.add_cell(make_const("c_" + std::to_string(value), it->second,
                             value));
    }
    return it->second;
  };

  std::vector<WireId> step_const(
      static_cast<std::size_t>(design.total_steps) + 1, -1);
  std::vector<WireId> en_step(
      static_cast<std::size_t>(design.total_steps) + 1, -1);
  for (int s = 1; s <= design.total_steps; ++s) {
    step_const[static_cast<std::size_t>(s)] =
        nl.add_wire("stepval_" + std::to_string(s), 16);
    en_step[static_cast<std::size_t>(s)] =
        nl.add_wire("step_is_" + std::to_string(s), 1);
  }

  // Result registers. Without sharing: one per operation copy. With
  // sharing: left-edge allocation over value lifetimes — a value occupies
  // its register from the end of its write step (birth) through its last
  // consumer's step (death); two values may share a register when the
  // intervals are disjoint. DFG outputs live to the end of the frame (the
  // comparator and the output muxes read them last).
  struct Lifetime {
    core::CopyRef ref;
    int birth;
    int death;
  };
  std::vector<Lifetime> lifetimes;
  for (core::CopyRef ref : solution.all_copies()) {
    Lifetime life{ref, global_step(ref.kind, ref.op), 0};
    const bool is_output =
        std::find(graph.outputs().begin(), graph.outputs().end(), ref.op) !=
        graph.outputs().end();
    if (is_output) {
      life.death = design.total_steps;
    } else {
      life.death = life.birth;
      for (dfg::OpId child : graph.children(ref.op)) {
        life.death = std::max(life.death, global_step(ref.kind, child));
      }
    }
    lifetimes.push_back(life);
  }
  std::sort(lifetimes.begin(), lifetimes.end(),
            [](const Lifetime& a, const Lifetime& b) {
              if (a.birth != b.birth) return a.birth < b.birth;
              return a.ref < b.ref;
            });

  struct RegSlot {
    WireId wire = -1;
    std::vector<Lifetime> tenants;
    int last_birth = -1;
    int last_death = -1;
  };
  std::vector<RegSlot> slots;
  std::map<std::pair<CopyKind, dfg::OpId>, WireId> reg_wire;
  for (const Lifetime& life : lifetimes) {
    RegSlot* slot = nullptr;
    if (options.share_registers) {
      for (RegSlot& candidate : slots) {
        if (candidate.last_death <= life.birth &&
            candidate.last_birth < life.birth) {
          slot = &candidate;
          break;
        }
      }
    }
    if (slot == nullptr) {
      slots.push_back(RegSlot{});
      slot = &slots.back();
      slot->wire = nl.add_wire(
          "r_" + core::copy_kind_name(life.ref.kind) + "_" +
              graph.op(life.ref.op).name +
              (options.share_registers ? "_sh" : ""),
          64);
    }
    slot->tenants.push_back(life);
    slot->last_birth = life.birth;
    slot->last_death = std::max(slot->last_death, life.death);
    reg_wire[{life.ref.kind, life.ref.op}] = slot->wire;
  }
  design.num_data_registers = static_cast<int>(slots.size());

  // Per-core FU plumbing.
  struct FuPlumbing {
    WireId mux_a, mux_b, active, out;
    std::vector<core::CopyRef> assignments;  // sorted by global step
  };
  std::map<CoreKey, FuPlumbing> fu;
  for (core::CopyRef ref : solution.all_copies()) {
    const Binding& binding = solution.at(ref);
    const CoreKey core{binding.vendor,
                       dfg::resource_class_of(graph.op(ref.op).type),
                       binding.instance};
    fu[core].assignments.push_back(ref);
  }
  int fu_index = 0;
  for (auto& [core, plumbing] : fu) {
    const std::string base = "fu" + std::to_string(fu_index++) + "_v" +
                             std::to_string(core.vendor + 1) + "_" +
                             dfg::resource_class_name(core.rc) +
                             std::to_string(core.instance);
    plumbing.mux_a = nl.add_wire(base + "_a", 64);
    plumbing.mux_b = nl.add_wire(base + "_b", 64);
    plumbing.active = nl.add_wire(base + "_active", 1);
    plumbing.out = nl.add_wire(base + "_out", 64);
    std::sort(plumbing.assignments.begin(), plumbing.assignments.end(),
              [&](core::CopyRef a, core::CopyRef b) {
                return global_step(a.kind, a.op) < global_step(b.kind, b.op);
              });
  }

  // Checker wires.
  std::vector<WireId> eq_wires;
  for (std::size_t i = 0; i < graph.outputs().size(); ++i) {
    eq_wires.push_back(
        nl.add_wire("eq_out" + std::to_string(i), 1));
  }
  const WireId match = nl.add_wire("nc_rc_match", 1);
  const WireId mismatch = nl.add_wire("nc_rc_mismatch", 1);
  const WireId in_recovery = nl.add_wire("in_recovery_window", 1);
  const WireId detected_gate = nl.add_wire("detected_now", 1);
  const WireId detected_flag = nl.add_wire("trojan_detected", 1);

  // ---- cells --------------------------------------------------------------
  nl.add_cell(make_const("c_one", one1, 1));
  nl.add_cell(make_cell(CellKind::kCounter, "controller_step", {}, step));
  for (int s = 1; s <= design.total_steps; ++s) {
    nl.add_cell(make_const("c_step_" + std::to_string(s),
                           step_const[static_cast<std::size_t>(s)], s));
    nl.add_cell(make_cell(CellKind::kEq, "en_step_" + std::to_string(s),
                          {step, step_const[static_cast<std::size_t>(s)]},
                          en_step[static_cast<std::size_t>(s)]));
  }

  // Checker: NC/RC equality per DFG output, AND-reduced.
  for (std::size_t i = 0; i < graph.outputs().size(); ++i) {
    const dfg::OpId op = graph.outputs()[i];
    nl.add_cell(make_cell(CellKind::kEq, "check_out" + std::to_string(i),
                          {reg_wire.at({CopyKind::kNormal, op}),
                           reg_wire.at({CopyKind::kRedundant, op})},
                          eq_wires[i]));
  }
  nl.add_cell(make_cell(CellKind::kAnd, "check_reduce", eq_wires, match));
  nl.add_cell(make_cell(CellKind::kNot, "check_invert", {match}, mismatch));

  // Window in which the comparator result is meaningful (all detection
  // registers written): steps lambda_det+1 .. total.
  std::vector<WireId> window;
  for (int s = lambda_det + 1; s <= design.total_steps; ++s) {
    window.push_back(en_step[static_cast<std::size_t>(s)]);
  }
  nl.add_cell(make_cell(CellKind::kOr, "recovery_window", window,
                        in_recovery));
  nl.add_cell(make_cell(CellKind::kAnd, "detected_now_gate",
                        {mismatch, in_recovery}, detected_gate));
  // Sticky flag, sampled on the first post-detection step.
  nl.add_cell(make_cell(
      CellKind::kRegister, "detected_flag_reg",
      {mismatch, en_step[static_cast<std::size_t>(lambda_det + 1)]},
      detected_flag));

  // Operand resolution for one copy.
  auto operand_wire = [&](CopyKind kind, dfg::OpId op, int port) -> WireId {
    const dfg::Operand& operand =
        graph.op(op).inputs[static_cast<std::size_t>(port)];
    switch (operand.kind) {
      case dfg::Operand::Kind::kOp:
        return reg_wire.at({kind, operand.index});
      case dfg::Operand::Kind::kInput:
        return in_wire[static_cast<std::size_t>(operand.index)];
      case dfg::Operand::Kind::kConst:
        return data_const(operand.value);
    }
    throw util::InternalError("elaborate: unknown operand kind");
  };

  // FUs: operand muxes, activity mux, the unit itself.
  for (auto& [core, plumbing] : fu) {
    Cell mux_a = make_cell(CellKind::kCaseMux,
                           nl.wire(plumbing.mux_a).name + "_mux", {step},
                           plumbing.mux_a);
    Cell mux_b = make_cell(CellKind::kCaseMux,
                           nl.wire(plumbing.mux_b).name + "_mux", {step},
                           plumbing.mux_b);
    Cell active = make_cell(CellKind::kCaseMux,
                            nl.wire(plumbing.active).name + "_mux", {step},
                            plumbing.active);
    for (core::CopyRef ref : plumbing.assignments) {
      const std::int64_t s = global_step(ref.kind, ref.op);
      mux_a.inputs.push_back(operand_wire(ref.kind, ref.op, 0));
      mux_a.select_values.push_back(s);
      mux_b.inputs.push_back(operand_wire(ref.kind, ref.op, 1));
      mux_b.select_values.push_back(s);
      // Recovery executions only happen after a detection event.
      active.inputs.push_back(
          ref.kind == CopyKind::kRecovery ? detected_gate : one1);
      active.select_values.push_back(s);
    }
    nl.add_cell(std::move(mux_a));
    nl.add_cell(std::move(mux_b));
    nl.add_cell(std::move(active));

    Cell unit = make_cell(
        CellKind::kFu, "u_" + nl.wire(plumbing.out).name,
        {plumbing.mux_a, plumbing.mux_b, plumbing.active}, plumbing.out);
    unit.core = core;
    // Per-step operation kinds (an adder core performs add or sub
    // depending on which operation is scheduled on it this step), plus the
    // static collusion exposure: does this step's op consume a value from
    // a same-vendor core within its own schedule?
    for (core::CopyRef ref : plumbing.assignments) {
      unit.select_values.push_back(global_step(ref.kind, ref.op));
      unit.step_ops.push_back(graph.op(ref.op).type);
      bool exposed = false;
      for (const dfg::Operand& operand : graph.op(ref.op).inputs) {
        if (operand.kind == dfg::Operand::Kind::kOp &&
            solution.at(ref.kind, operand.index).vendor == core.vendor) {
          exposed = true;
        }
      }
      unit.step_collusion.push_back(exposed ? 1 : 0);
    }
    nl.add_cell(std::move(unit));
  }

  // Result registers: one cell per slot. Multi-tenant slots need a D-side
  // case mux (which tenant's FU writes this step) and an OR of the tenant
  // write enables.
  auto fu_out_of = [&](core::CopyRef ref) {
    const Binding& binding = solution.at(ref);
    const CoreKey core{binding.vendor,
                       dfg::resource_class_of(graph.op(ref.op).type),
                       binding.instance};
    return fu.at(core).out;
  };
  int slot_index = 0;
  for (const RegSlot& slot : slots) {
    WireId d_wire;
    WireId enable_wire;
    if (slot.tenants.size() == 1) {
      d_wire = fu_out_of(slot.tenants[0].ref);
      enable_wire = en_step[static_cast<std::size_t>(slot.tenants[0].birth)];
    } else {
      const std::string base = "slot" + std::to_string(slot_index);
      d_wire = nl.add_wire(base + "_d", 64);
      enable_wire = nl.add_wire(base + "_we", 1);
      Cell d_mux = make_cell(CellKind::kCaseMux, base + "_d_mux", {step},
                             d_wire);
      std::vector<WireId> enables;
      for (const Lifetime& tenant : slot.tenants) {
        d_mux.inputs.push_back(fu_out_of(tenant.ref));
        d_mux.select_values.push_back(tenant.birth);
        enables.push_back(en_step[static_cast<std::size_t>(tenant.birth)]);
      }
      nl.add_cell(std::move(d_mux));
      nl.add_cell(make_cell(CellKind::kOr, base + "_we_or", enables,
                            enable_wire));
    }
    nl.add_cell(make_cell(CellKind::kRegister,
                          nl.wire(slot.wire).name + "_q",
                          {d_wire, enable_wire}, slot.wire));
    ++slot_index;
  }

  // Primary outputs.
  for (std::size_t i = 0; i < graph.outputs().size(); ++i) {
    const dfg::OpId op = graph.outputs()[i];
    const std::string out_name = "out_" + graph.op(op).name;
    if (with_recovery) {
      const WireId out = nl.add_wire(out_name, 64);
      Cell sel = make_cell(CellKind::kCaseMux, out_name + "_sel",
                           {detected_flag,
                            reg_wire.at({CopyKind::kNormal, op}),
                            reg_wire.at({CopyKind::kRecovery, op})},
                           out);
      sel.select_values = {0, 1};
      nl.add_cell(std::move(sel));
      nl.mark_output(out_name, out);
    } else {
      nl.mark_output(out_name, reg_wire.at({CopyKind::kNormal, op}));
    }
    design.output_names.push_back(out_name);
  }
  nl.mark_output("trojan_detected", detected_flag);
  design.detected_name = "trojan_detected";

  nl.validate();
  return design;
}

}  // namespace ht::rtl
