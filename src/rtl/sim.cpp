#include "rtl/sim.hpp"

#include "trojan/exec.hpp"

namespace ht::rtl {
namespace {

std::uint64_t width_mask(int width) {
  return width >= 64 ? ~0ull : (1ull << width) - 1;
}

}  // namespace

RtlSimulator::RtlSimulator(const ElaboratedDesign& design)
    : design_(design) {
  design.netlist.validate();
  eval_order_ = design.netlist.combinational_order();
}

RtlRunResult RtlSimulator::run(
    const std::vector<trojan::Word>& inputs,
    const trojan::InfectionMap& infections,
    std::map<core::CoreKey, trojan::TriggerState>* persistent_states) const {
  const Netlist& nl = design_.netlist;
  util::check_spec(inputs.size() == nl.inputs().size(),
                   "RtlSimulator: expected " +
                       std::to_string(nl.inputs().size()) + " inputs");

  std::vector<std::uint64_t> value(static_cast<std::size_t>(nl.num_wires()),
                                   0);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const WireId w = nl.inputs()[i];
    value[static_cast<std::size_t>(w)] =
        static_cast<std::uint64_t>(inputs[i]) &
        width_mask(nl.wire(w).width);
  }

  std::map<core::CoreKey, trojan::TriggerState> local_states;
  std::map<core::CoreKey, trojan::TriggerState>& states =
      persistent_states != nullptr ? *persistent_states : local_states;

  // step counter wire(s) and register next-values.
  auto eval_combinational = [&](int step) {
    // Counters present their current step value.
    for (const Cell& cell : nl.cells()) {
      if (cell.kind == CellKind::kCounter) {
        value[static_cast<std::size_t>(cell.output)] =
            static_cast<std::uint64_t>(step) &
            width_mask(nl.wire(cell.output).width);
      }
    }
    for (int index : eval_order_) {
      const Cell& cell = nl.cells()[static_cast<std::size_t>(index)];
      const std::uint64_t mask = width_mask(nl.wire(cell.output).width);
      auto in = [&](std::size_t port) {
        return value[static_cast<std::size_t>(cell.inputs[port])];
      };
      std::uint64_t out = 0;
      switch (cell.kind) {
        case CellKind::kConst:
          out = static_cast<std::uint64_t>(cell.value);
          break;
        case CellKind::kCaseMux: {
          const std::uint64_t select = in(0);
          for (std::size_t i = 0; i < cell.select_values.size(); ++i) {
            if (select == static_cast<std::uint64_t>(cell.select_values[i])) {
              out = in(1 + i);
              break;
            }
          }
          break;
        }
        case CellKind::kFu: {
          const auto a = static_cast<trojan::Word>(in(0));
          const auto b = static_cast<trojan::Word>(in(1));
          const bool active = in(2) != 0;
          // Which op (if any) this core performs at the current step.
          int scheduled = -1;
          for (std::size_t i = 0; i < cell.select_values.size(); ++i) {
            if (cell.select_values[i] == step) {
              scheduled = static_cast<int>(i);
              break;
            }
          }
          trojan::Word result =
              scheduled >= 0
                  ? trojan::execute_op(
                        cell.step_ops[static_cast<std::size_t>(scheduled)],
                        a, b)
                  : 0;
          if (active) {
            const bool exposed =
                scheduled >= 0 &&
                cell.step_collusion[static_cast<std::size_t>(scheduled)] !=
                    0;
            const auto infection = infections.find(
                core::LicenseKey{cell.core.vendor, cell.core.rc});
            if (infection != infections.end() &&
                states[cell.core].step(infection->second, a, b, exposed)) {
              result = static_cast<trojan::Word>(
                  static_cast<std::uint64_t>(result) ^
                  infection->second.payload.xor_mask);
            }
          }
          out = static_cast<std::uint64_t>(result);
          break;
        }
        case CellKind::kEq:
          out = in(0) == in(1) ? 1 : 0;
          break;
        case CellKind::kAnd: {
          out = ~0ull;
          for (std::size_t i = 0; i < cell.inputs.size(); ++i) {
            out &= in(i);
          }
          break;
        }
        case CellKind::kOr: {
          out = 0;
          for (std::size_t i = 0; i < cell.inputs.size(); ++i) {
            out |= in(i);
          }
          break;
        }
        case CellKind::kNot:
          out = ~in(0);
          break;
        case CellKind::kRegister:
        case CellKind::kCounter:
          continue;  // sequential; handled at the clock edge
      }
      value[static_cast<std::size_t>(cell.output)] = out & mask;
    }
  };

  for (int step = 1; step <= design_.total_steps; ++step) {
    eval_combinational(step);
    // Clock edge: registers latch.
    std::vector<std::pair<WireId, std::uint64_t>> latched;
    for (const Cell& cell : nl.cells()) {
      if (cell.kind != CellKind::kRegister) continue;
      const bool enabled =
          cell.inputs.size() < 2 ||
          value[static_cast<std::size_t>(cell.inputs[1])] != 0;
      if (enabled) {
        latched.emplace_back(
            cell.output,
            value[static_cast<std::size_t>(cell.inputs[0])] &
                width_mask(nl.wire(cell.output).width));
      }
    }
    for (const auto& [wire, v] : latched) {
      value[static_cast<std::size_t>(wire)] = v;
    }
  }
  // Settle pass: propagate the final register values to the outputs.
  eval_combinational(design_.total_steps + 1);

  RtlRunResult result;
  for (const auto& [name, wire] : nl.outputs()) {
    if (name == design_.detected_name) {
      result.detected = value[static_cast<std::size_t>(wire)] != 0;
    } else {
      result.outputs.push_back(
          static_cast<trojan::Word>(value[static_cast<std::size_t>(wire)]));
    }
  }
  return result;
}

}  // namespace ht::rtl
