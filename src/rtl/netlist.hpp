// Structural RTL netlist intermediate representation.
//
// ht_core's optimizer produces a schedule and binding; a real HLS flow then
// emits a controller + datapath. This IR models that output at the
// register-transfer level with a small, simulatable cell library:
//
//   kConst     constant driver
//   kCounter   free-running step counter (the controller's state)
//   kFu        one bound IP-core instance (combinational 2-input op),
//              tagged with its CoreKey so Trojans can be injected per core
//   kCaseMux   case mux: output = input whose tag matches the select value
//              (operand steering and output selection)
//   kRegister  D register with enable (operation result storage, flags)
//   kEq        64-bit equality comparator (the NC/RC checker)
//   kAnd/kOr   bitwise reductions over N inputs (control logic)
//   kNot       inversion
//
// One wire has exactly one driver; combinational cells must form a DAG
// through wires (registers break cycles). Netlist::validate() checks both.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/solution.hpp"
#include "dfg/dfg.hpp"

namespace ht::rtl {

using WireId = int;

struct Wire {
  std::string name;
  int width = 64;  ///< 64 for data, 1 for control, 16 for the counter
};

enum class CellKind {
  kConst,
  kCounter,
  kFu,
  kCaseMux,
  kRegister,
  kEq,
  kAnd,
  kOr,
  kNot,
};

std::string cell_kind_name(CellKind kind);

struct Cell {
  CellKind kind = CellKind::kConst;
  std::string name;
  std::vector<WireId> inputs;
  WireId output = -1;

  // kConst
  std::int64_t value = 0;
  // kFu: inputs = {a, b, active}; tagged with the physical core it models.
  // A core executes different op types of its class per step (an adder
  // does add or sub): step_ops[i] is performed when the controller step
  // equals select_values[i].
  core::CoreKey core;
  std::vector<dfg::OpType> step_ops;
  /// Parallel to step_ops: whether the operation scheduled at this step
  /// consumes a value produced by a core of this FU's own vendor — the
  /// collusion channel (static under a fixed binding). Simulation-only
  /// metadata; irrelevant to the emitted Verilog.
  std::vector<char> step_collusion;
  // kCaseMux: inputs[0] is the select; inputs[1 + i] is taken when the
  // select equals select_values[i]; otherwise the output is 0.
  // (kFu reuses select_values for its per-step op table.)
  std::vector<std::int64_t> select_values;
  // kRegister: inputs = {d} or {d, enable}; resets to 0.
};

/// Flat single-module netlist.
class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  WireId add_wire(std::string name, int width = 64);
  int num_wires() const { return static_cast<int>(wires_.size()); }
  const Wire& wire(WireId id) const;

  /// Appends a cell driving `cell.output`; a wire may have one driver.
  void add_cell(Cell cell);
  const std::vector<Cell>& cells() const { return cells_; }

  /// Declares a primary input (an undriven wire fed by the testbench).
  void mark_input(WireId wire);
  /// Declares a named primary output.
  void mark_output(std::string name, WireId wire);

  const std::vector<WireId>& inputs() const { return inputs_; }
  const std::vector<std::pair<std::string, WireId>>& outputs() const {
    return outputs_;
  }

  /// Index of the cell driving `wire`, or -1 for primary inputs.
  int driver_of(WireId wire) const;

  /// Combinational cells in evaluation order (registers and counters are
  /// sequential and excluded). Throws util::SpecError on a combinational
  /// cycle.
  std::vector<int> combinational_order() const;

  /// Structural checks: every wire driven exactly once or a primary input,
  /// port arities per kind, select arity of case muxes, acyclic
  /// combinational logic.
  void validate() const;

 private:
  std::string name_;
  std::vector<Wire> wires_;
  std::vector<Cell> cells_;
  std::vector<int> driver_;  // per wire, cell index or -1
  std::vector<WireId> inputs_;
  std::vector<std::pair<std::string, WireId>> outputs_;
};

}  // namespace ht::rtl
