#include "rtl/netlist.hpp"

#include <algorithm>

namespace ht::rtl {

std::string cell_kind_name(CellKind kind) {
  switch (kind) {
    case CellKind::kConst:
      return "const";
    case CellKind::kCounter:
      return "counter";
    case CellKind::kFu:
      return "fu";
    case CellKind::kCaseMux:
      return "case_mux";
    case CellKind::kRegister:
      return "register";
    case CellKind::kEq:
      return "eq";
    case CellKind::kAnd:
      return "and";
    case CellKind::kOr:
      return "or";
    case CellKind::kNot:
      return "not";
  }
  return "?";
}

WireId Netlist::add_wire(std::string name, int width) {
  util::check_spec(width > 0 && width <= 64,
                   "Netlist: wire width must be in [1, 64]");
  wires_.push_back(Wire{std::move(name), width});
  driver_.push_back(-1);
  return num_wires() - 1;
}

const Wire& Netlist::wire(WireId id) const {
  util::check_spec(id >= 0 && id < num_wires(),
                   "Netlist: wire id out of range");
  return wires_[static_cast<std::size_t>(id)];
}

void Netlist::add_cell(Cell cell) {
  util::check_spec(cell.output >= 0 && cell.output < num_wires(),
                   "Netlist: cell output wire out of range");
  util::check_spec(driver_[static_cast<std::size_t>(cell.output)] == -1,
                   "Netlist: wire '" + wire(cell.output).name +
                       "' already driven");
  util::check_spec(
      std::find(inputs_.begin(), inputs_.end(), cell.output) ==
          inputs_.end(),
      "Netlist: cell drives a primary input wire");
  for (WireId input : cell.inputs) {
    util::check_spec(input >= 0 && input < num_wires(),
                     "Netlist: cell input wire out of range");
  }
  driver_[static_cast<std::size_t>(cell.output)] =
      static_cast<int>(cells_.size());
  cells_.push_back(std::move(cell));
}

void Netlist::mark_input(WireId wire_id) {
  util::check_spec(wire_id >= 0 && wire_id < num_wires(),
                   "Netlist: input wire out of range");
  util::check_spec(driver_[static_cast<std::size_t>(wire_id)] == -1,
                   "Netlist: primary input wire has a driver");
  if (std::find(inputs_.begin(), inputs_.end(), wire_id) == inputs_.end()) {
    inputs_.push_back(wire_id);
  }
}

void Netlist::mark_output(std::string name, WireId wire_id) {
  util::check_spec(wire_id >= 0 && wire_id < num_wires(),
                   "Netlist: output wire out of range");
  outputs_.emplace_back(std::move(name), wire_id);
}

int Netlist::driver_of(WireId wire_id) const {
  util::check_spec(wire_id >= 0 && wire_id < num_wires(),
                   "Netlist: wire id out of range");
  return driver_[static_cast<std::size_t>(wire_id)];
}

std::vector<int> Netlist::combinational_order() const {
  const std::size_t count = cells_.size();
  std::vector<int> state(count, 0);  // 0 unseen, 1 visiting, 2 done
  std::vector<int> order;
  order.reserve(count);

  auto is_sequential = [&](const Cell& cell) {
    return cell.kind == CellKind::kRegister ||
           cell.kind == CellKind::kCounter;
  };

  // Iterative DFS over combinational fan-in.
  for (std::size_t root = 0; root < count; ++root) {
    if (state[root] != 0 || is_sequential(cells_[root])) continue;
    std::vector<std::pair<int, std::size_t>> stack;  // (cell, next input)
    stack.emplace_back(static_cast<int>(root), 0);
    state[root] = 1;
    while (!stack.empty()) {
      auto& [cell_index, next_input] = stack.back();
      const Cell& cell = cells_[static_cast<std::size_t>(cell_index)];
      if (next_input >= cell.inputs.size()) {
        state[static_cast<std::size_t>(cell_index)] = 2;
        order.push_back(cell_index);
        stack.pop_back();
        continue;
      }
      const WireId input = cell.inputs[next_input++];
      const int driver = driver_[static_cast<std::size_t>(input)];
      if (driver < 0) continue;  // primary input
      const Cell& upstream = cells_[static_cast<std::size_t>(driver)];
      if (is_sequential(upstream)) continue;
      if (state[static_cast<std::size_t>(driver)] == 1) {
        throw util::SpecError("Netlist: combinational cycle through cell '" +
                              upstream.name + "'");
      }
      if (state[static_cast<std::size_t>(driver)] == 0) {
        state[static_cast<std::size_t>(driver)] = 1;
        stack.emplace_back(driver, 0);
      }
    }
  }
  return order;
}

void Netlist::validate() const {
  for (const Cell& cell : cells_) {
    switch (cell.kind) {
      case CellKind::kConst:
      case CellKind::kCounter:
        util::check_spec(cell.inputs.empty(),
                         "Netlist: " + cell.name + " takes no inputs");
        break;
      case CellKind::kFu:
        util::check_spec(cell.inputs.size() == 3,
                         "Netlist: " + cell.name + " needs {a, b, active}");
        util::check_spec(cell.step_ops.size() == cell.select_values.size() &&
                             !cell.step_ops.empty(),
                         "Netlist: " + cell.name +
                             " needs one op per scheduled step");
        util::check_spec(cell.step_collusion.size() == cell.step_ops.size(),
                         "Netlist: " + cell.name +
                             " needs one collusion flag per scheduled step");
        break;
      case CellKind::kEq:
        util::check_spec(cell.inputs.size() == 2,
                         "Netlist: " + cell.name + " needs 2 inputs");
        break;
      case CellKind::kCaseMux:
        util::check_spec(
            cell.inputs.size() == cell.select_values.size() + 1,
            "Netlist: " + cell.name +
                " needs 1 select + one input per select value");
        break;
      case CellKind::kRegister:
        util::check_spec(cell.inputs.size() == 1 || cell.inputs.size() == 2,
                         "Netlist: " + cell.name + " needs {d[, enable]}");
        break;
      case CellKind::kAnd:
      case CellKind::kOr:
        util::check_spec(!cell.inputs.empty(),
                         "Netlist: " + cell.name + " needs >= 1 input");
        break;
      case CellKind::kNot:
        util::check_spec(cell.inputs.size() == 1,
                         "Netlist: " + cell.name + " needs 1 input");
        break;
    }
  }
  // Undriven non-input wires are dangling.
  for (WireId w = 0; w < num_wires(); ++w) {
    if (driver_[static_cast<std::size_t>(w)] >= 0) continue;
    util::check_spec(
        std::find(inputs_.begin(), inputs_.end(), w) != inputs_.end(),
        "Netlist: wire '" + wire(w).name + "' has no driver and is not a "
        "primary input");
  }
  (void)combinational_order();  // throws on combinational cycles
}

}  // namespace ht::rtl
