// Self-checking Verilog testbench generation.
//
// Completes the RTL hand-off: alongside the design module (to_verilog),
// emit a testbench that drives the design with concrete input frames,
// clocks it through total_steps cycles per frame, and compares every data
// output and the trojan_detected flag against golden values computed by
// the behavioral model. The result runs under any Verilog simulator with
// no further infrastructure ($display PASS/FAIL, $finish).
//
// Trojans cannot be injected into plain Verilog (they live inside the IP
// vendors' cores), so generated testbenches check the *clean* behavior:
// outputs equal the golden values and the detection flag stays low. The
// attacked behavior is signed off by rtl::RtlSimulator, which shares the
// cell semantics.
#pragma once

#include <vector>

#include "rtl/elaborate.hpp"
#include "trojan/exec.hpp"

namespace ht::rtl {

struct TestbenchOptions {
  /// Input frames to drive; each must have one word per design input.
  std::vector<std::vector<trojan::Word>> frames;
  std::string module_name = "tb";
};

/// Renders the testbench (instantiates the design by its netlist name).
/// Golden outputs are computed here via the behavioral evaluator.
std::string to_verilog_testbench(const core::ProblemSpec& spec,
                                 const ElaboratedDesign& design,
                                 const TestbenchOptions& options);

}  // namespace ht::rtl
