#include "rtl/testbench.hpp"

#include "rtl/sim.hpp"

namespace ht::rtl {
namespace {

std::string hex64(trojan::Word value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "64'h%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::string sanitize(const std::string& name) {
  std::string out;
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_';
    out += ok ? ch : '_';
  }
  return out;
}

}  // namespace

std::string to_verilog_testbench(const core::ProblemSpec& spec,
                                 const ElaboratedDesign& design,
                                 const TestbenchOptions& options) {
  util::check_spec(!options.frames.empty(),
                   "to_verilog_testbench: need at least one input frame");
  for (const auto& frame : options.frames) {
    util::check_spec(frame.size() == design.input_names.size(),
                     "to_verilog_testbench: frame arity mismatch");
  }

  // Golden expectations per frame from the behavioral evaluator.
  std::vector<std::vector<trojan::Word>> expected;
  for (const auto& frame : options.frames) {
    const auto values = trojan::golden_eval(spec.graph, frame);
    std::vector<trojan::Word> outs;
    for (dfg::OpId op : spec.graph.outputs()) {
      outs.push_back(values[static_cast<std::size_t>(op)]);
    }
    expected.push_back(std::move(outs));
  }

  const std::string dut = sanitize(design.netlist.name());
  std::string out;
  out += "// Self-checking testbench for " + dut + " (clean-run signoff).\n";
  out += "`timescale 1ns/1ps\n";
  out += "module " + sanitize(options.module_name) + ";\n";
  out += "  reg clk = 0;\n  reg rst = 1;\n";
  for (const std::string& input : design.input_names) {
    out += "  reg [63:0] " + sanitize(input) + ";\n";
  }
  for (const std::string& output : design.output_names) {
    out += "  wire [63:0] " + sanitize(output) + ";\n";
  }
  out += "  wire trojan_detected;\n";
  out += "  integer errors = 0;\n\n";

  out += "  " + dut + " dut (\n    .clk(clk), .rst(rst)";
  for (const std::string& input : design.input_names) {
    out += ",\n    ." + sanitize(input) + "(" + sanitize(input) + ")";
  }
  for (const std::string& output : design.output_names) {
    out += ",\n    ." + sanitize(output) + "(" + sanitize(output) + ")";
  }
  out += ",\n    .trojan_detected(trojan_detected)\n  );\n\n";
  out += "  always #5 clk = ~clk;\n\n";

  out += "  task check64(input [63:0] got, input [63:0] want);\n";
  out += "    begin\n";
  out += "      if (got !== want) begin\n";
  out += "        $display(\"FAIL: got %h want %h\", got, want);\n";
  out += "        errors = errors + 1;\n";
  out += "      end\n";
  out += "    end\n";
  out += "  endtask\n\n";

  out += "  initial begin\n";
  for (std::size_t f = 0; f < options.frames.size(); ++f) {
    out += "    // frame " + std::to_string(f) + "\n";
    out += "    rst = 1;\n";
    for (std::size_t i = 0; i < design.input_names.size(); ++i) {
      out += "    " + sanitize(design.input_names[i]) + " = " +
             hex64(options.frames[f][i]) + ";\n";
    }
    out += "    @(posedge clk); #1 rst = 0;\n";
    out += "    repeat (" + std::to_string(design.total_steps) +
           ") @(posedge clk);\n";
    out += "    #1;\n";
    for (std::size_t o = 0; o < design.output_names.size(); ++o) {
      out += "    check64(" + sanitize(design.output_names[o]) + ", " +
             hex64(expected[f][o]) + ");\n";
    }
    out += "    if (trojan_detected !== 1'b0) begin\n";
    out += "      $display(\"FAIL: spurious detection in frame " +
           std::to_string(f) + "\");\n";
    out += "      errors = errors + 1;\n";
    out += "    end\n";
  }
  out += "    if (errors == 0) $display(\"PASS\");\n";
  out += "    else $display(\"FAIL: %0d errors\", errors);\n";
  out += "    $finish;\n";
  out += "  end\n";
  out += "endmodule\n";
  return out;
}

}  // namespace ht::rtl
