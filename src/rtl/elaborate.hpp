// Controller + datapath elaboration: (ProblemSpec, Solution) -> Netlist.
//
// The generated architecture is the one the paper's flow implies:
//
//   * one functional-unit cell per bound core instance (CoreKey), shared by
//     the detection and recovery phases;
//   * a step counter as the controller state: detection-phase cycle c is
//     step c, recovery-phase cycle r is step lambda_det + r;
//   * per-operation-copy result registers, enabled at their scheduled step;
//   * case muxes steering each FU's operand ports by step;
//   * an `active` case mux per FU (1 when the FU executes this step) —
//     recovery-step entries are gated on the comparator so the recovery
//     phase only runs after a detection, exactly the paper's phase model;
//   * the NC/RC output comparator tree, a sticky `trojan_detected` flag
//     sampled on the first recovery step, and final output muxes that
//     switch from the NC results to the recovery results on detection.
#pragma once

#include "core/solution.hpp"
#include "rtl/netlist.hpp"

namespace ht::rtl {

struct ElaborateOptions {
  /// Register binding: share data registers between operation copies whose
  /// value lifetimes are disjoint (left-edge allocation over global
  /// steps). DFG-output registers are never shared — the comparator and
  /// the final output muxes read them at the end of the frame.
  bool share_registers = false;
};

/// The netlist plus the handles a testbench needs.
struct ElaboratedDesign {
  Netlist netlist{"design"};
  /// Steps to clock before outputs are valid (lambda_det + lambda_rec + 1;
  /// the final settle step lets the last recovery registers propagate).
  int total_steps = 0;
  /// Wire names of the primary data inputs, in DFG input order.
  std::vector<std::string> input_names;
  /// Output wire names, in DFG output order.
  std::vector<std::string> output_names;
  /// Name of the 1-bit detection flag output.
  std::string detected_name;
  /// Data registers instantiated (== op copies without sharing; fewer with
  /// ElaborateOptions::share_registers).
  int num_data_registers = 0;
};

/// Lowers a validated solution. Works for detection-only solutions too
/// (no recovery registers; outputs come straight from NC).
ElaboratedDesign elaborate(const core::ProblemSpec& spec,
                           const core::Solution& solution,
                           const ElaborateOptions& options = {});

}  // namespace ht::rtl
