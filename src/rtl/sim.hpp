// Cycle-accurate netlist interpreter with per-core Trojan injection.
//
// Simulates an elaborated design exactly as the behavioral RuntimeSimulator
// simulates the schedule — same trigger/payload semantics, applied at the
// FU cells (which carry their CoreKey) — so the two can be cross-validated
// bit for bit: same inputs + same infections must give the same detection
// flag and the same final outputs. tests/rtl_sim_test.cpp holds that
// equivalence over benchmarks, attacks and seeds.
#pragma once

#include <map>

#include "rtl/elaborate.hpp"
#include "trojan/simulator.hpp"

namespace ht::rtl {

struct RtlRunResult {
  /// Final values of the data outputs, in ElaboratedDesign::output_names
  /// order (sampled after the settle step).
  std::vector<trojan::Word> outputs;
  /// Final value of the trojan_detected flag.
  bool detected = false;
};

class RtlSimulator {
 public:
  explicit RtlSimulator(const ElaboratedDesign& design);

  /// Clocks the design through one complete frame (total_steps cycles plus
  /// a final combinational settle). `persistent_states` carries sequential
  /// trigger counters across frames like the behavioral simulator's.
  RtlRunResult run(const std::vector<trojan::Word>& inputs,
                   const trojan::InfectionMap& infections = {},
                   std::map<core::CoreKey, trojan::TriggerState>*
                       persistent_states = nullptr) const;

 private:
  const ElaboratedDesign& design_;
  std::vector<int> eval_order_;  // combinational cells, topologically
};

}  // namespace ht::rtl
