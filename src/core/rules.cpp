#include "core/rules.hpp"

#include <algorithm>
#include <map>

#include "dfg/analysis.hpp"

namespace ht::core {

int copy_index(CopyRef ref, int num_ops) {
  return static_cast<int>(ref.kind) * num_ops + ref.op;
}

std::vector<VendorConflict> vendor_conflicts(const ProblemSpec& spec) {
  const int n = spec.graph.num_ops();
  std::map<std::pair<int, int>, VendorConflict> unique;

  auto emit = [&](CopyRef a, CopyRef b, const char* rule) {
    int ia = copy_index(a, n);
    int ib = copy_index(b, n);
    if (ia > ib) {
      std::swap(ia, ib);
      std::swap(a, b);
    }
    unique.emplace(std::make_pair(ia, ib), VendorConflict{a, b, rule});
  };

  std::vector<CopyKind> kinds = {CopyKind::kNormal, CopyKind::kRedundant};
  if (spec.with_recovery) kinds.push_back(CopyKind::kRecovery);

  // Detection Rule 1: same op, NC vs RC.
  if (spec.rules.detection_same_op) {
    for (dfg::OpId op = 0; op < n; ++op) {
      emit({CopyKind::kNormal, op}, {CopyKind::kRedundant, op}, "det-R1");
    }
  }

  // Detection Rule 2, parent-child, within every schedule (eq. 6 ranges
  // over D, D' and R).
  if (spec.rules.detection_parent_child) {
    for (const auto& [from, to] : spec.graph.edges()) {
      for (CopyKind kind : kinds) {
        emit({kind, from}, {kind, to}, "det-R2-chain");
      }
    }
  }

  // Detection Rule 2, ops feeding the same child.
  if (spec.rules.detection_sibling) {
    for (const auto& [a, b] : dfg::sibling_pairs(spec.graph)) {
      emit({CopyKind::kNormal, a}, {CopyKind::kNormal, b}, "det-R2-sibling");
      if (spec.rules.sibling_diversity_all_copies) {
        emit({CopyKind::kRedundant, a}, {CopyKind::kRedundant, b},
             "det-R2-sibling");
        if (spec.with_recovery) {
          emit({CopyKind::kRecovery, a}, {CopyKind::kRecovery, b},
               "det-R2-sibling");
        }
      }
    }
  }

  if (spec.with_recovery) {
    // Recovery Rule 1: recovery copy avoids both detection vendors of the
    // same op.
    if (spec.rules.recovery_same_op) {
      for (dfg::OpId op = 0; op < n; ++op) {
        emit({CopyKind::kRecovery, op}, {CopyKind::kNormal, op}, "rec-R1");
        emit({CopyKind::kRecovery, op}, {CopyKind::kRedundant, op}, "rec-R1");
      }
    }
    // Recovery Rule 2: recovery copy also avoids the detection vendors of
    // closely-related ops (both orientations of the unordered pair).
    if (spec.rules.recovery_close_pairs) {
      for (const auto& [a, b] : spec.closely_related) {
        emit({CopyKind::kRecovery, a}, {CopyKind::kNormal, b}, "rec-R2");
        emit({CopyKind::kRecovery, a}, {CopyKind::kRedundant, b}, "rec-R2");
        emit({CopyKind::kRecovery, b}, {CopyKind::kNormal, a}, "rec-R2");
        emit({CopyKind::kRecovery, b}, {CopyKind::kRedundant, a}, "rec-R2");
      }
    }
  }

  std::vector<VendorConflict> out;
  out.reserve(unique.size());
  for (auto& [key, conflict] : unique) {
    (void)key;
    out.push_back(std::move(conflict));
  }
  return out;
}

std::vector<std::vector<int>> conflict_adjacency(
    const ProblemSpec& spec, const std::vector<VendorConflict>& conflicts) {
  const int n = spec.graph.num_ops();
  std::vector<std::vector<int>> adjacency(
      static_cast<std::size_t>(kNumCopyKinds) * static_cast<std::size_t>(n));
  for (const VendorConflict& conflict : conflicts) {
    const int ia = copy_index(conflict.a, n);
    const int ib = copy_index(conflict.b, n);
    adjacency[static_cast<std::size_t>(ia)].push_back(ib);
    adjacency[static_cast<std::size_t>(ib)].push_back(ia);
  }
  return adjacency;
}

std::array<int, dfg::kNumResourceClasses> min_vendors_per_class(
    const ProblemSpec& spec) {
  const int n = spec.graph.num_ops();
  const std::vector<VendorConflict> conflicts = vendor_conflicts(spec);
  const std::vector<std::vector<int>> adjacency =
      conflict_adjacency(spec, conflicts);

  std::array<int, dfg::kNumResourceClasses> bounds{};
  for (int rc = 0; rc < dfg::kNumResourceClasses; ++rc) {
    // Nodes of this class.
    std::vector<int> nodes;
    for (CopyKind kind :
         {CopyKind::kNormal, CopyKind::kRedundant, CopyKind::kRecovery}) {
      if (kind == CopyKind::kRecovery && !spec.with_recovery) continue;
      for (dfg::OpId op = 0; op < n; ++op) {
        if (static_cast<int>(dfg::resource_class_of(spec.graph.op(op).type)) ==
            rc) {
          nodes.push_back(copy_index({kind, op}, n));
        }
      }
    }
    if (nodes.empty()) continue;

    // Greedy clique: repeatedly try to grow a clique seeded at each node in
    // descending same-class degree order.
    auto is_adjacent = [&](int a, int b) {
      const auto& list = adjacency[static_cast<std::size_t>(a)];
      return std::find(list.begin(), list.end(), b) != list.end();
    };
    std::vector<int> order = nodes;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return adjacency[static_cast<std::size_t>(a)].size() >
             adjacency[static_cast<std::size_t>(b)].size();
    });
    int best = 1;
    for (int seed : order) {
      std::vector<int> clique = {seed};
      for (int candidate : order) {
        if (candidate == seed) continue;
        bool compatible = true;
        for (int member : clique) {
          if (!is_adjacent(candidate, member)) {
            compatible = false;
            break;
          }
        }
        if (compatible) clique.push_back(candidate);
      }
      best = std::max(best, static_cast<int>(clique.size()));
    }
    bounds[rc] = best;
  }
  return bounds;
}

}  // namespace ht::core
