#include "core/greedy.hpp"

#include <algorithm>
#include <map>

#include "core/rules.hpp"
#include "core/validate.hpp"
#include "dfg/analysis.hpp"

namespace ht::core {
namespace {

struct CopyMeta {
  CopyKind kind;
  dfg::OpId op;
  int cls;
  int phase;  // 0 detection, 1 recovery
};

}  // namespace

std::optional<Solution> greedy_construct(const ProblemSpec& spec,
                                         const Palettes& palettes,
                                         util::Rng& rng) {
  const int n = spec.graph.num_ops();
  std::vector<CopyKind> kinds = {CopyKind::kNormal, CopyKind::kRedundant};
  if (spec.with_recovery) kinds.push_back(CopyKind::kRecovery);

  // ---- copies and conflict adjacency -----------------------------------
  std::vector<CopyMeta> copies;
  std::map<CopyRef, int> index_of;
  for (CopyKind kind : kinds) {
    for (dfg::OpId op = 0; op < n; ++op) {
      index_of[{kind, op}] = static_cast<int>(copies.size());
      copies.push_back(CopyMeta{
          kind, op,
          static_cast<int>(dfg::resource_class_of(spec.graph.op(op).type)),
          kind == CopyKind::kRecovery ? 1 : 0});
    }
  }
  const std::size_t num_copies = copies.size();
  std::vector<std::vector<int>> neighbors(num_copies);
  for (const VendorConflict& conflict : vendor_conflicts(spec)) {
    const int a = index_of.at(conflict.a);
    const int b = index_of.at(conflict.b);
    neighbors[static_cast<std::size_t>(a)].push_back(b);
    neighbors[static_cast<std::size_t>(b)].push_back(a);
  }

  // ---- stage 1: DSATUR list coloring, load-balanced --------------------
  const int nv = spec.catalog.num_vendors();
  std::vector<int> color(num_copies, -1);
  std::vector<std::vector<char>> forbidden(
      num_copies, std::vector<char>(static_cast<std::size_t>(nv), 0));
  std::vector<int> saturation(num_copies, 0);
  // Two load signals steer the color choice toward low instance peaks:
  // level_load balances within an op's ASAP level (a proxy for its cycle —
  // exact when the latency equals the critical path and mobility is zero),
  // total load balances overall.
  const std::vector<int> asap_for_load = dfg::asap_levels(spec.graph);
  const int max_level =
      *std::max_element(asap_for_load.begin(), asap_for_load.end());
  std::array<std::vector<int>, dfg::kNumResourceClasses> load;
  std::array<std::vector<int>, dfg::kNumResourceClasses> level_load;
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    load[static_cast<std::size_t>(cls)].assign(
        static_cast<std::size_t>(nv), 0);
    level_load[static_cast<std::size_t>(cls)].assign(
        static_cast<std::size_t>(nv) * static_cast<std::size_t>(max_level),
        0);
  }
  auto level_slot = [&](int cls, int v, int op) -> int& {
    return level_load[static_cast<std::size_t>(cls)]
                     [static_cast<std::size_t>(v) *
                          static_cast<std::size_t>(max_level) +
                      static_cast<std::size_t>(
                          asap_for_load[static_cast<std::size_t>(op)] - 1)];
  };

  for (std::size_t step = 0; step < num_copies; ++step) {
    // Most saturated uncolored copy; ties by degree, then randomly.
    int chosen = -1;
    for (std::size_t c = 0; c < num_copies; ++c) {
      if (color[c] >= 0) continue;
      if (chosen < 0) {
        chosen = static_cast<int>(c);
        continue;
      }
      const std::size_t best = static_cast<std::size_t>(chosen);
      if (saturation[c] != saturation[best]) {
        if (saturation[c] > saturation[best]) chosen = static_cast<int>(c);
      } else if (neighbors[c].size() != neighbors[best].size()) {
        if (neighbors[c].size() > neighbors[best].size()) {
          chosen = static_cast<int>(c);
        }
      } else if (rng.chance(0.3)) {
        chosen = static_cast<int>(c);
      }
    }
    const std::size_t c = static_cast<std::size_t>(chosen);
    const auto& palette =
        palettes[static_cast<std::size_t>(copies[c].cls)];

    vendor::VendorId best_vendor = -1;
    std::pair<int, int> best_key{0, 0};
    for (vendor::VendorId v : palette) {
      if (forbidden[c][static_cast<std::size_t>(v)]) continue;
      const std::pair<int, int> key = {
          level_slot(copies[c].cls, v, copies[c].op),
          load[static_cast<std::size_t>(copies[c].cls)]
              [static_cast<std::size_t>(v)]};
      if (best_vendor < 0 || key < best_key ||
          (key == best_key && rng.chance(0.5))) {
        best_vendor = v;
        best_key = key;
      }
    }
    if (best_vendor < 0) return std::nullopt;  // coloring dead end
    color[c] = best_vendor;
    load[static_cast<std::size_t>(copies[c].cls)]
        [static_cast<std::size_t>(best_vendor)]++;
    level_slot(copies[c].cls, best_vendor, copies[c].op)++;
    for (int nb : neighbors[c]) {
      auto& row = forbidden[static_cast<std::size_t>(nb)];
      if (!row[static_cast<std::size_t>(best_vendor)]) {
        row[static_cast<std::size_t>(best_vendor)] = 1;
        ++saturation[static_cast<std::size_t>(nb)];
      }
    }
  }

  // ---- stage 2: list scheduling per phase timeline ----------------------
  const std::vector<int> latencies = spec.op_latencies();
  const std::vector<int> asap = dfg::asap_levels(spec.graph, latencies);
  const std::vector<int> alap_det =
      dfg::alap_levels(spec.graph, spec.lambda_detection, latencies);
  std::vector<int> alap_rec;
  if (spec.with_recovery) {
    alap_rec =
        dfg::alap_levels(spec.graph, spec.lambda_recovery, latencies);
  }

  std::vector<int> cycle_of(num_copies, -1);
  // usage[(v, cls)] per cycle per phase, tracked as peaks.
  std::map<std::pair<int, int>, int> peak;  // (v, cls) -> instances needed

  for (int phase = 0; phase < (spec.with_recovery ? 2 : 1); ++phase) {
    const int lambda =
        phase == 0 ? spec.lambda_detection : spec.lambda_recovery;
    const std::vector<int>& alap = phase == 0 ? alap_det : alap_rec;

    // Copies in this timeline and per-(v, cls) per-cycle targets.
    std::vector<int> members;
    std::map<std::pair<int, int>, int> count;  // instance-cycles demanded
    for (std::size_t c = 0; c < num_copies; ++c) {
      if (copies[c].phase != phase) continue;
      members.push_back(static_cast<int>(c));
      count[{color[c], copies[c].cls}] +=
          latencies[static_cast<std::size_t>(copies[c].op)];
    }
    std::map<std::pair<int, int>, int> target;
    for (const auto& [key, total] : count) {
      target[key] = (total + lambda - 1) / lambda;
    }

    std::vector<int> unscheduled_parents(num_copies, 0);
    std::vector<int> earliest(num_copies, 0);
    for (int c : members) {
      unscheduled_parents[static_cast<std::size_t>(c)] = static_cast<int>(
          spec.graph.parents(copies[static_cast<std::size_t>(c)].op).size());
      earliest[static_cast<std::size_t>(c)] =
          asap[static_cast<std::size_t>(
              copies[static_cast<std::size_t>(c)].op)];
    }

    std::vector<char> done(num_copies, 0);
    int remaining = static_cast<int>(members.size());
    // Occupancy per (vendor, class) per cycle (multi-cycle ops hold their
    // instance for their whole latency).
    std::map<std::pair<int, int>, std::vector<int>> busy;
    auto busy_at = [&](const std::pair<int, int>& key, int cycle) -> int& {
      auto& row = busy[key];
      if (row.empty()) row.assign(static_cast<std::size_t>(lambda) + 2, 0);
      return row[static_cast<std::size_t>(cycle)];
    };
    for (int cycle = 1; cycle <= lambda && remaining > 0; ++cycle) {
      // Ready members, urgent first, then earliest deadline.
      std::vector<int> ready;
      for (int c : members) {
        if (done[static_cast<std::size_t>(c)]) continue;
        if (unscheduled_parents[static_cast<std::size_t>(c)] == 0 &&
            earliest[static_cast<std::size_t>(c)] <= cycle) {
          ready.push_back(c);
        }
      }
      rng.shuffle(ready);
      std::stable_sort(ready.begin(), ready.end(), [&](int a, int b) {
        return alap[static_cast<std::size_t>(
                   copies[static_cast<std::size_t>(a)].op)] <
               alap[static_cast<std::size_t>(
                   copies[static_cast<std::size_t>(b)].op)];
      });
      for (int c : ready) {
        const std::size_t ci = static_cast<std::size_t>(c);
        const std::pair<int, int> key = {color[ci], copies[ci].cls};
        const int op_lat =
            latencies[static_cast<std::size_t>(copies[ci].op)];
        const bool urgent =
            alap[static_cast<std::size_t>(copies[ci].op)] == cycle;
        if (!urgent && busy_at(key, cycle) >= target[key]) continue;
        cycle_of[ci] = cycle;
        done[ci] = 1;
        --remaining;
        for (int occupied = cycle; occupied < cycle + op_lat; ++occupied) {
          int& count = busy_at(key, occupied);
          ++count;
          peak[key] = std::max(peak[key], count);
        }
        for (dfg::OpId child : spec.graph.children(copies[ci].op)) {
          const int child_copy = index_of.at({copies[ci].kind, child});
          --unscheduled_parents[static_cast<std::size_t>(child_copy)];
          earliest[static_cast<std::size_t>(child_copy)] =
              std::max(earliest[static_cast<std::size_t>(child_copy)],
                       cycle + op_lat);
        }
      }
    }
    if (remaining > 0) {
      throw util::InternalError(
          "greedy_construct: list scheduling failed to place every op "
          "within its ALAP deadline");
    }
  }

  // ---- area / instance-cap check ----------------------------------------
  long long area = 0;
  for (const auto& [key, instances] : peak) {
    const auto rc = static_cast<dfg::ResourceClass>(key.second);
    if (instances > spec.instance_cap(rc)) return std::nullopt;
    area += static_cast<long long>(instances) *
            spec.catalog.offer(key.first, rc).area;
  }
  if (area > spec.area_limit) return std::nullopt;

  // ---- emit: pack occupancy intervals onto instances --------------------
  // Instances of one (vendor, class) are interchangeable; greedy interval
  // packing (sorted by start, first instance free at that start) realizes
  // exactly the peaks counted above — including multi-cycle occupancy.
  Solution solution(n, spec.with_recovery);
  std::map<std::tuple<int, int, int>, std::vector<std::size_t>> groups;
  for (std::size_t c = 0; c < num_copies; ++c) {
    groups[{copies[c].phase, color[c], copies[c].cls}].push_back(c);
  }
  for (auto& [key, group] : groups) {
    (void)key;
    std::sort(group.begin(), group.end(), [&](std::size_t a, std::size_t b) {
      return cycle_of[a] < cycle_of[b];
    });
    std::vector<int> instance_free_at;  // first cycle each instance is free
    for (std::size_t c : group) {
      const int start = cycle_of[c];
      const int finish =
          start + latencies[static_cast<std::size_t>(copies[c].op)];
      int chosen = -1;
      for (std::size_t i = 0; i < instance_free_at.size(); ++i) {
        if (instance_free_at[i] <= start) {
          chosen = static_cast<int>(i);
          break;
        }
      }
      if (chosen < 0) {
        chosen = static_cast<int>(instance_free_at.size());
        instance_free_at.push_back(0);
      }
      instance_free_at[static_cast<std::size_t>(chosen)] = finish;
      solution.at(copies[c].kind, copies[c].op) =
          Binding{start, color[c], chosen};
    }
  }
  require_valid(spec, solution);
  return solution;
}

}  // namespace ht::core
