// Shared incumbent pool for the racing algorithm portfolio.
//
// Portfolio members (the greedy seeder, the SLS binder, and the exact
// dispatch loop itself) publish feasible bindings here as they find them.
// The pool keeps two views of "best so far":
//
//  * an atomic best-cost hint — a single long long that concurrent members
//    may read lock-free as an upper bound on the optimum (monotonically
//    non-increasing; release on publish, acquire on read, so a reader that
//    observes the hint also observes every write the publisher made before
//    lowering it);
//  * the sequenced best entry — the full (cost, member rank, palette
//    index, Solution) record, guarded by a mutex and ordered by the
//    deterministic commit comparator below.
//
// Deterministic commit rule. Entries are ranked by the lexicographic key
// (cost, member rank, palette index): cheaper bindings win, ties go to the
// stronger member (exact = 0 < greedy = 1 < SLS = 2 — a proof-capable
// member outranks an incomplete one), and remaining ties to the lower
// palette index. The key is a pure function of the entry, never of publish
// order, so best() is identical for every publish interleaving — this is
// what makes an N-thread portfolio race replayable: feed the same entry
// set in any order and the same winner falls out. Timing fields
// (publish_seconds) are attribution-only and excluded from the comparator.
#pragma once

#include <array>
#include <atomic>
#include <limits>
#include <mutex>
#include <optional>

#include "core/solution.hpp"

namespace ht::core {

/// Portfolio member identity; the numeric value doubles as the member rank
/// in the deterministic commit comparator (lower outranks).
enum class PortfolioMember { kExact = 0, kGreedy = 1, kSls = 2 };
inline constexpr int kNumPortfolioMembers = 3;

/// Stable name ("exact", "greedy", "sls"); "-" for out-of-range ranks.
const char* portfolio_member_name(int rank);

/// One published feasible binding.
struct Incumbent {
  long long cost = 0;  ///< billed license cost of `solution`
  int member_rank = 0;  ///< PortfolioMember value of the publisher
  /// Deterministic intra-member sequence number (restart / attempt index
  /// for the stochastic members, the palette index for the exact loop).
  long palette_index = 0;
  Solution solution;
  /// Elapsed seconds (operation clock) when the publisher finished the
  /// attempt that produced this binding. Attribution only — never part of
  /// the commit comparator.
  double publish_seconds = 0.0;
};

/// True when `a` beats `b` under the (cost, member rank, palette index)
/// rule.
bool incumbent_beats(const Incumbent& a, const Incumbent& b);

class IncumbentPool {
 public:
  /// Per-member attribution counters. `first_seconds` is the earliest
  /// publish time of the member (-1 when it never published);
  /// `best_cost` its cheapest published cost.
  struct MemberStats {
    long published = 0;
    long long best_cost = std::numeric_limits<long long>::max();
    double first_seconds = -1.0;
  };

  /// Lock-free upper bound on the optimum: the cheapest published cost so
  /// far, or max() when the pool is empty. Safe to poll from any thread.
  long long best_cost_hint() const {
    return best_cost_hint_.load(std::memory_order_acquire);
  }

  /// Records one feasible binding. Returns true when the entry became the
  /// pool's deterministic best.
  bool publish(Incumbent entry);

  /// The deterministic best entry (see the commit rule above), or nullopt
  /// when nothing was published.
  std::optional<Incumbent> best() const;

  /// Earliest publish time across every member (-1: empty pool).
  double first_publish_seconds() const;

  /// Earliest publish time among entries at the pool's best cost (-1:
  /// empty pool). This is the portfolio's time-to-best: when a binding at
  /// the winning cost first existed, regardless of which member's entry
  /// ends up committed.
  double best_cost_seconds() const;

  long published() const;
  MemberStats member_stats(int rank) const;

 private:
  mutable std::mutex mutex_;
  std::atomic<long long> best_cost_hint_{
      std::numeric_limits<long long>::max()};
  std::optional<Incumbent> best_;
  double first_publish_seconds_ = -1.0;
  double best_cost_seconds_ = -1.0;
  long published_ = 0;
  std::array<MemberStats, kNumPortfolioMembers> members_{};
};

}  // namespace ht::core
