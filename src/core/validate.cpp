#include "core/validate.hpp"

#include <map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ht::core {

std::string ValidationReport::to_string() const {
  std::string out;
  for (const std::string& violation : violations) {
    out += violation + "\n";
  }
  return out;
}

ValidationReport validate_solution(const ProblemSpec& spec,
                                   const Solution& solution) {
  ValidationReport report;
  auto fail = [&](const std::string& message) {
    report.violations.push_back(message);
  };

  const int n = spec.graph.num_ops();
  if (solution.num_ops() != n) {
    fail("solution op count differs from DFG");
    return report;
  }
  if (solution.with_recovery() != spec.with_recovery) {
    fail("solution recovery mode differs from spec");
    return report;
  }

  auto describe = [&](CopyRef ref) {
    return copy_kind_name(ref.kind) + ":" + spec.graph.op(ref.op).name;
  };

  // 1. Completeness, windows, catalog membership (eq. 3 plus domains).
  for (CopyRef ref : solution.all_copies()) {
    const Binding& binding = solution.at(ref);
    if (!binding.is_set()) {
      fail("unscheduled copy " + describe(ref));
      continue;
    }
    const int lambda = ref.kind == CopyKind::kRecovery
                           ? spec.lambda_recovery
                           : spec.lambda_detection;
    const int finish = binding.cycle + spec.op_latency(ref.op) - 1;
    if (binding.cycle < 1 || finish > lambda) {
      fail("copy " + describe(ref) + " occupies cycles [" +
           std::to_string(binding.cycle) + ", " + std::to_string(finish) +
           "] outside [1, " + std::to_string(lambda) + "]");
    }
    const dfg::ResourceClass rc =
        dfg::resource_class_of(spec.graph.op(ref.op).type);
    if (binding.vendor < 0 || binding.vendor >= spec.catalog.num_vendors() ||
        !spec.catalog.offers(binding.vendor, rc)) {
      fail("copy " + describe(ref) + " bound to vendor without a " +
           dfg::resource_class_name(rc) + " offer");
      continue;
    }
    if (binding.instance < 0 || binding.instance >= spec.instance_cap(rc)) {
      fail("copy " + describe(ref) + " uses instance " +
           std::to_string(binding.instance) + " beyond the cap");
    }
  }
  if (!report.ok()) return report;  // later checks assume sane bindings

  // 2. Dependence order inside each schedule (eq. 4): a consumer starts
  // only after its producer has finished (start + latency).
  for (const auto& [from, to] : spec.graph.edges()) {
    for (CopyKind kind : solution.active_kinds()) {
      if (solution.at(kind, from).cycle + spec.op_latency(from) >
          solution.at(kind, to).cycle) {
        fail("dependence violated in " + copy_kind_name(kind) + ": " +
             spec.graph.op(from).name + " !< " + spec.graph.op(to).name);
      }
    }
  }

  // 3. Vendor-diversity rules (eqs. 5-10).
  for (const VendorConflict& conflict : vendor_conflicts(spec)) {
    if (solution.at(conflict.a).vendor == solution.at(conflict.b).vendor) {
      fail("rule " + conflict.rule + " violated: " + describe(conflict.a) +
           " and " + describe(conflict.b) + " share " +
           spec.catalog.vendor_name(solution.at(conflict.a).vendor));
    }
  }

  // 4. One op per core instance per cycle (eq. 16), over the whole
  // occupancy interval for multi-cycle units. NC and RC share the
  // detection timeline; the recovery phase has its own timeline.
  std::map<std::tuple<int, CoreKey, int>, CopyRef> occupancy;  // phase, core, cycle
  for (CopyRef ref : solution.all_copies()) {
    const Binding& binding = solution.at(ref);
    const int phase = ref.kind == CopyKind::kRecovery ? 1 : 0;
    const CoreKey core{binding.vendor,
                       dfg::resource_class_of(spec.graph.op(ref.op).type),
                       binding.instance};
    for (int cycle = binding.cycle;
         cycle < binding.cycle + spec.op_latency(ref.op); ++cycle) {
      auto [it, inserted] = occupancy.try_emplace({phase, core, cycle}, ref);
      if (!inserted) {
        fail("core conflict: " + describe(it->second) + " and " +
             describe(ref) + " share " +
             spec.catalog.vendor_name(core.vendor) + " " +
             dfg::resource_class_name(core.rc) + "#" +
             std::to_string(core.instance) + " at cycle " +
             std::to_string(cycle));
      }
    }
  }

  // 5. Area bound (eq. 13).
  const long long area = solution.total_area(spec);
  if (area > spec.area_limit) {
    fail("area " + std::to_string(area) + " exceeds limit " +
         std::to_string(spec.area_limit));
  }

  return report;
}

void require_valid(const ProblemSpec& spec, const Solution& solution) {
  HT_TRACE_SPAN("stage/validate");
  obs::StageTimer validate_timer(obs::Stage::kValidation);
  const ValidationReport report = validate_solution(spec, solution);
  if (!report.ok()) {
    throw util::InternalError("solver produced an invalid solution:\n" +
                              report.to_string());
  }
}

}  // namespace ht::core
