#include "core/warm_state.hpp"

#include <algorithm>
#include <utility>

namespace ht::core {
namespace {

bool same_signature(const PaletteSignature& a, const PaletteSignature& b) {
  return a.masks == b.masks && a.lambda_detection == b.lambda_detection &&
         a.lambda_recovery == b.lambda_recovery &&
         a.area_limit == b.area_limit;
}

/// Same offer-area compatibility rule as the stores' begin_op: an offer
/// seen by both sides must have the same area; offers only one side has
/// seen union in. Layout lengths differ only across vendor-count changes,
/// which the fingerprint already rules incompatible.
bool merge_offer_areas(const std::vector<long long>& base,
                       const std::vector<long long>& delta,
                       std::vector<long long>* merged) {
  if (base.size() != delta.size()) return false;
  merged->resize(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (base[i] >= 0 && delta[i] >= 0 && base[i] != delta[i]) return false;
    (*merged)[i] = base[i] >= 0 ? base[i] : delta[i];
  }
  return true;
}

WarmSnapshotPtr snapshot_from_delta(std::uint64_t market,
                                    std::uint64_t version,
                                    const WarmDelta& delta) {
  auto next = std::make_shared<WarmSnapshot>();
  next->market = market;
  next->version = version;
  next->cache = delta.cache;     // export_delta output: already canonical
  next->nogoods = delta.nogoods;
  return next;
}

}  // namespace

bool warm_delta_empty(const WarmDelta& delta) {
  return delta.cache.proofs.empty() && delta.cache.lp_memos.empty() &&
         delta.nogoods.entries.empty();
}

WarmSnapshotPtr merge_warm(const WarmSnapshotPtr& base, std::uint64_t market,
                           const WarmDelta& delta) {
  if (warm_delta_empty(delta)) return base;
  if (base == nullptr) return snapshot_from_delta(market, 1, delta);

  // Compatibility: both sub-deltas were accumulated by one engine under one
  // begin_op discipline, so their fingerprints agree with each other; check
  // against the published snapshot. A mismatch means the family structure
  // changed (or an offer's area did) — the old warm state is worthless for
  // the new family, so the delta replaces it, exactly like the stores drop
  // themselves on an incompatible begin_op.
  std::vector<long long> cache_areas;
  std::vector<long long> nogood_areas;
  const bool compatible =
      base->cache.fingerprint == delta.cache.fingerprint &&
      base->nogoods.fingerprint == delta.nogoods.fingerprint &&
      merge_offer_areas(base->cache.offer_areas, delta.cache.offer_areas,
                        &cache_areas) &&
      merge_offer_areas(base->nogoods.offer_areas, delta.nogoods.offer_areas,
                        &nogood_areas);
  if (!compatible) {
    return snapshot_from_delta(market, base->version + 1, delta);
  }

  auto next = std::make_shared<WarmSnapshot>();
  next->market = market;
  next->version = base->version + 1;

  next->cache.fingerprint = base->cache.fingerprint;
  next->cache.offer_areas = std::move(cache_areas);
  // Base proofs first so the keep-first antichain rule retains the already
  // published entry of any mutually-dominating (equal-signature) pair.
  next->cache.proofs.reserve(base->cache.proofs.size() +
                             delta.cache.proofs.size());
  next->cache.proofs = base->cache.proofs;
  next->cache.proofs.insert(next->cache.proofs.end(),
                            delta.cache.proofs.begin(),
                            delta.cache.proofs.end());
  std::stable_sort(next->cache.proofs.begin(), next->cache.proofs.end(),
                   cache_proof_less);
  compact_cache_proofs(&next->cache.proofs);

  next->cache.lp_memos = base->cache.lp_memos;
  for (const LpMemo& memo : delta.cache.lp_memos) {
    const bool known = std::any_of(
        base->cache.lp_memos.begin(), base->cache.lp_memos.end(),
        [&](const LpMemo& have) {
          return have.cost_digest == memo.cost_digest &&
                 same_signature(have.sig, memo.sig);
        });
    if (!known) next->cache.lp_memos.push_back(memo);
  }

  next->nogoods.fingerprint = base->nogoods.fingerprint;
  next->nogoods.offer_areas = std::move(nogood_areas);
  next->nogoods.entries = base->nogoods.entries;
  next->nogoods.entries.insert(next->nogoods.entries.end(),
                               delta.nogoods.entries.begin(),
                               delta.nogoods.entries.end());
  canonicalize_sealed_nogoods(&next->nogoods.entries);
  return next;
}

}  // namespace ht::core
