#include "core/frontier.hpp"

#include "dfg/analysis.hpp"

namespace ht::core {

std::vector<FrontierPoint> area_frontier(const ProblemSpec& spec,
                                         const std::vector<long long>& areas,
                                         const OptimizerOptions& options) {
  std::vector<FrontierPoint> frontier;
  for (long long area : areas) {
    ProblemSpec point_spec = spec;
    point_spec.area_limit = area;
    FrontierPoint point;
    point.constraint = area;
    point.result = minimize_cost(point_spec, options);
    frontier.push_back(std::move(point));
  }
  return frontier;
}

std::vector<FrontierPoint> latency_frontier(
    const ProblemSpec& base, const std::vector<int>& lambda_totals,
    const OptimizerOptions& options) {
  util::check_spec(base.with_recovery,
                   "latency_frontier sweeps the combined schedule; the spec "
                   "must have recovery enabled");
  const int critical_path = dfg::critical_path_length(base.graph);
  std::vector<FrontierPoint> frontier;
  for (int lambda_total : lambda_totals) {
    FrontierPoint point;
    point.constraint = lambda_total;
    if (lambda_total < 2 * critical_path) {
      point.result.status = OptStatus::kInfeasible;
    } else {
      point.result =
          minimize_cost_total_latency(base, lambda_total, options).result;
    }
    frontier.push_back(std::move(point));
  }
  return frontier;
}

}  // namespace ht::core
