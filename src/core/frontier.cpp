// Thin wrappers over SynthesisEngine::sweep_frontier; kept so existing
// callers keep their signatures. Points are optimized in parallel when the
// options ask for threads.
#include "core/frontier.hpp"

#include "core/engine.hpp"

namespace ht::core {

std::vector<FrontierPoint> area_frontier(const ProblemSpec& spec,
                                         const std::vector<long long>& areas,
                                         const OptimizerOptions& options) {
  SynthesisEngine engine(make_request(spec, options));
  FrontierSweep sweep;
  sweep.axis = FrontierSweep::Axis::kArea;
  sweep.values = areas;
  return engine.sweep_frontier(sweep);
}

std::vector<FrontierPoint> latency_frontier(
    const ProblemSpec& base, const std::vector<int>& lambda_totals,
    const OptimizerOptions& options) {
  SynthesisEngine engine(make_request(base, options));
  FrontierSweep sweep;
  sweep.axis = FrontierSweep::Axis::kTotalLatency;
  sweep.values.assign(lambda_totals.begin(), lambda_totals.end());
  return engine.sweep_frontier(sweep);
}

}  // namespace ht::core
