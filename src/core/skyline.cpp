#include "core/skyline.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace ht::core {

void OccupancySkyline::reset(int lambda) {
  lambda_ = lambda;
  instances_.assign(static_cast<std::size_t>(lambda), 0);
  area_.assign(static_cast<std::size_t>(lambda), 0);
  peak_instances_ = 0;
  peak_area_ = 0;
  peak_dirty_ = false;
}

void OccupancySkyline::add(int start, int len, int instances,
                           long long area) {
  util::check_internal(start >= 1 && start + len - 1 <= lambda_,
                       "skyline: interval outside 1..lambda");
  for (int cycle = start; cycle < start + len; ++cycle) {
    const std::size_t i = static_cast<std::size_t>(cycle - 1);
    instances_[i] += instances;
    area_[i] += area;
    // Adds only raise cells, so the cached peaks stay exact (when clean).
    if (!peak_dirty_) {
      peak_instances_ = std::max(peak_instances_, instances_[i]);
      peak_area_ = std::max(peak_area_, area_[i]);
    }
  }
}

void OccupancySkyline::remove(int start, int len, int instances,
                              long long area) {
  util::check_internal(start >= 1 && start + len - 1 <= lambda_,
                       "skyline: interval outside 1..lambda");
  for (int cycle = start; cycle < start + len; ++cycle) {
    const std::size_t i = static_cast<std::size_t>(cycle - 1);
    instances_[i] -= instances;
    area_[i] -= area;
  }
  // A removal can lower the peak; recompute lazily on the next query.
  peak_dirty_ = true;
}

int OccupancySkyline::peak_instances() const {
  if (peak_dirty_) {
    peak_instances_ =
        lambda_ == 0 ? 0 : util::range_max_i32(instances_.data(), lambda_);
    peak_area_ = 0;
    for (long long a : area_) peak_area_ = std::max(peak_area_, a);
    peak_dirty_ = false;
  }
  return peak_instances_;
}

long long OccupancySkyline::peak_area() const {
  peak_instances();  // refreshes both caches
  return peak_area_;
}

int energetic_interval_floor(const std::vector<EnergeticItem>& items,
                             int lambda) {
  if (lambda <= 0) return 0;
  int floor = 0;
  // ending.ref(b) accumulates the demand of items whose occupancy ends at b
  // among those confined to [a, lambda]; re-bucketed per window start a.
  // The O(1) stamped reset is what makes the per-a rebucketing cheap.
  util::FastResetVector<long long> ending(
      static_cast<std::size_t>(lambda) + 1);
  for (int a = 1; a <= lambda; ++a) {
    ending.reset();
    for (const EnergeticItem& item : items) {
      if (item.lo >= a && item.hi <= lambda) {
        ending.ref(static_cast<std::size_t>(item.hi)) += item.demand;
      }
    }
    long long demand = 0;
    for (int b = a; b <= lambda; ++b) {
      demand += ending.get(static_cast<std::size_t>(b));
      const long long width = b - a + 1;
      const long long need = (demand + width - 1) / width;
      floor = std::max(floor, static_cast<int>(need));
    }
  }
  return floor;
}

}  // namespace ht::core
