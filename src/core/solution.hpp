// Solution model: a complete schedule and binding.
//
// Each DFG operation has up to three scheduled copies (the paper's D, D', R
// variables): its NC copy and RC copy in the detection phase, and its
// recovery copy. A Binding places one copy at a cycle on one instance of
// one vendor's core. From the bindings every reported metric of the paper's
// tables is derived: u (cores instantiated), t (licenses), v (distinct
// vendors) and mc (minimum purchasing cost).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "core/problem.hpp"

namespace ht::core {

/// The three scheduled copies of an operation.
enum class CopyKind {
  kNormal = 0,     ///< NC: the original computation (paper's D)
  kRedundant = 1,  ///< RC: the re-computation for detection (paper's D')
  kRecovery = 2,   ///< recovery-phase re-execution (paper's R)
};

inline constexpr int kNumCopyKinds = 3;

std::string copy_kind_name(CopyKind kind);

/// Reference to one copy of one operation.
struct CopyRef {
  CopyKind kind = CopyKind::kNormal;
  dfg::OpId op = 0;

  bool operator==(const CopyRef&) const = default;
  auto operator<=>(const CopyRef&) const = default;
};

/// Placement of one copy: cycle (1-based within its phase's timeline),
/// vendor, and instance index of that vendor's core of the op's class.
struct Binding {
  int cycle = -1;
  vendor::VendorId vendor = -1;
  int instance = -1;

  bool is_set() const { return cycle >= 1 && vendor >= 0 && instance >= 0; }
  bool operator==(const Binding&) const = default;
};

/// One physical core: `instance` of `vendor`'s core of class `rc`.
struct CoreKey {
  vendor::VendorId vendor = -1;
  dfg::ResourceClass rc = dfg::ResourceClass::kAdder;
  int instance = -1;

  auto operator<=>(const CoreKey&) const = default;
};

/// A license: one purchasable (vendor, class) pair.
struct LicenseKey {
  vendor::VendorId vendor = -1;
  dfg::ResourceClass rc = dfg::ResourceClass::kAdder;

  auto operator<=>(const LicenseKey&) const = default;
};

/// Complete assignment for a ProblemSpec. The recovery copies are present
/// only when the spec requests recovery.
class Solution {
 public:
  Solution() = default;
  Solution(int num_ops, bool with_recovery);

  int num_ops() const { return num_ops_; }
  bool with_recovery() const { return with_recovery_; }

  Binding& at(CopyRef ref);
  const Binding& at(CopyRef ref) const;
  Binding& at(CopyKind kind, dfg::OpId op) { return at(CopyRef{kind, op}); }
  const Binding& at(CopyKind kind, dfg::OpId op) const {
    return at(CopyRef{kind, op});
  }

  /// Copy kinds present under this solution's mode.
  std::vector<CopyKind> active_kinds() const;

  /// All copy references in (kind, op) order.
  std::vector<CopyRef> all_copies() const;

  // ---- derived metrics (require the spec for classes/areas/costs) ------
  std::set<CoreKey> cores_used(const ProblemSpec& spec) const;
  std::set<LicenseKey> licenses_used(const ProblemSpec& spec) const;
  std::set<vendor::VendorId> vendors_used(const ProblemSpec& spec) const;
  long long license_cost(const ProblemSpec& spec) const;
  long long total_area(const ProblemSpec& spec) const;

  /// Schedule length actually used by the detection phase (max cycle over
  /// NC and RC copies) / the recovery phase.
  int detection_makespan() const;
  int recovery_makespan() const;

  /// Renders the two phase schedules as tables (rows = cycles, entries =
  /// "op@VenK.instance"), the shape of the paper's Figure 5.
  std::string to_string(const ProblemSpec& spec) const;

 private:
  int num_ops_ = 0;
  bool with_recovery_ = false;
  std::vector<Binding> bindings_;  // kind-major, 3 * num_ops_
};

}  // namespace ht::core
