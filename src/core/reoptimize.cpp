#include "core/reoptimize.hpp"

namespace ht::core {

std::set<LicenseKey> suspect_licenses(const ProblemSpec& spec,
                                      const Solution& solution,
                                      std::optional<CopyKind> side) {
  util::check_spec(!side || *side != CopyKind::kRecovery,
                   "suspect_licenses: the suspect side is a detection-phase "
                   "computation (NC or RC)");
  std::set<LicenseKey> suspects;
  for (CopyKind kind : {CopyKind::kNormal, CopyKind::kRedundant}) {
    if (side && *side != kind) continue;
    for (dfg::OpId op = 0; op < spec.graph.num_ops(); ++op) {
      const Binding& binding = solution.at(kind, op);
      suspects.insert(LicenseKey{
          binding.vendor, dfg::resource_class_of(spec.graph.op(op).type)});
    }
  }
  return suspects;
}

vendor::Catalog without_licenses(const vendor::Catalog& catalog,
                                 const std::set<LicenseKey>& banned) {
  vendor::Catalog thinned(catalog.num_vendors());
  for (vendor::VendorId v = 0; v < catalog.num_vendors(); ++v) {
    for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
      const auto rc = static_cast<dfg::ResourceClass>(cls);
      if (!catalog.offers(v, rc)) continue;
      if (banned.count(LicenseKey{v, rc})) continue;
      thinned.set_offer(v, rc, catalog.offer(v, rc));
    }
  }
  return thinned;
}

OptimizeResult reoptimize_without(const ProblemSpec& spec,
                                  const std::set<LicenseKey>& banned,
                                  const OptimizerOptions& options) {
  ProblemSpec thinned = spec;
  thinned.catalog = without_licenses(spec.catalog, banned);
  // A class whose every offer is banned makes the problem unsolvable;
  // report that as infeasibility rather than a spec error.
  const auto counts = thinned.graph.ops_per_class();
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    if (counts[cls] == 0) continue;
    if (thinned.catalog.num_vendors_offering(
            static_cast<dfg::ResourceClass>(cls)) == 0) {
      OptimizeResult result;
      result.status = OptStatus::kInfeasible;
      return result;
    }
  }
  return minimize_cost(thinned, options);
}

}  // namespace ht::core
