#include "core/reoptimize.hpp"

#include "core/engine.hpp"

namespace ht::core {

std::set<LicenseKey> suspect_licenses(const ProblemSpec& spec,
                                      const Solution& solution,
                                      std::optional<CopyKind> side) {
  util::check_spec(!side || *side != CopyKind::kRecovery,
                   "suspect_licenses: the suspect side is a detection-phase "
                   "computation (NC or RC)");
  std::set<LicenseKey> suspects;
  for (CopyKind kind : {CopyKind::kNormal, CopyKind::kRedundant}) {
    if (side && *side != kind) continue;
    for (dfg::OpId op = 0; op < spec.graph.num_ops(); ++op) {
      const Binding& binding = solution.at(kind, op);
      suspects.insert(LicenseKey{
          binding.vendor, dfg::resource_class_of(spec.graph.op(op).type)});
    }
  }
  return suspects;
}

vendor::Catalog without_licenses(const vendor::Catalog& catalog,
                                 const std::set<LicenseKey>& banned) {
  vendor::Catalog thinned(catalog.num_vendors());
  for (vendor::VendorId v = 0; v < catalog.num_vendors(); ++v) {
    for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
      const auto rc = static_cast<dfg::ResourceClass>(cls);
      if (!catalog.offers(v, rc)) continue;
      if (banned.count(LicenseKey{v, rc})) continue;
      thinned.set_offer(v, rc, catalog.offer(v, rc));
    }
  }
  return thinned;
}

OptimizeResult reoptimize_without(const ProblemSpec& spec,
                                  const std::set<LicenseKey>& banned,
                                  const OptimizerOptions& options) {
  SynthesisEngine engine(make_request(spec, options));
  return engine.reoptimize(banned);
}

}  // namespace ht::core
