#include "core/ilp_formulation.hpp"

#include <algorithm>
#include <climits>
#include <cmath>

#include "core/rules.hpp"
#include "lp/lp_problem.hpp"
#include "dfg/analysis.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace ht::core {

namespace {
dfg::ResourceClass class_of(const ProblemSpec& spec, dfg::OpId op) {
  return dfg::resource_class_of(spec.graph.op(op).type);
}
}  // namespace

IlpFormulation::IlpFormulation(const ProblemSpec& spec) : spec_(spec) {
  spec.validate();
  util::check_spec(spec.unit_latency(),
                   "IlpFormulation models the paper's single-cycle units; "
                   "use the CSP optimizer for multi-cycle latencies");
  num_ops_ = spec.graph.num_ops();
  kinds_ = {CopyKind::kNormal, CopyKind::kRedundant};
  if (spec.with_recovery) kinds_.push_back(CopyKind::kRecovery);
  max_lambda_ = std::max(spec.lambda_detection,
                         spec.with_recovery ? spec.lambda_recovery : 0);
  max_cap_ = 0;
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    max_cap_ = std::max(
        max_cap_, cap_of(static_cast<dfg::ResourceClass>(cls)));
  }
  create_variables();
  add_constraints();
}

int IlpFormulation::lambda_of(CopyKind kind) const {
  return kind == CopyKind::kRecovery ? spec_.lambda_recovery
                                     : spec_.lambda_detection;
}

int IlpFormulation::cap_of(dfg::ResourceClass rc) const {
  return spec_.instance_cap(rc);
}

std::size_t IlpFormulation::schedule_slot(CopyKind kind, dfg::OpId op,
                                          int cycle, vendor::VendorId vendor,
                                          int instance) const {
  const std::size_t kinds = kNumCopyKinds;
  (void)kinds;
  std::size_t slot = static_cast<std::size_t>(kind);
  slot = slot * static_cast<std::size_t>(num_ops_) +
         static_cast<std::size_t>(op);
  slot = slot * static_cast<std::size_t>(max_lambda_) +
         static_cast<std::size_t>(cycle - 1);
  slot = slot * static_cast<std::size_t>(spec_.catalog.num_vendors()) +
         static_cast<std::size_t>(vendor);
  slot = slot * static_cast<std::size_t>(max_cap_) +
         static_cast<std::size_t>(instance);
  return slot;
}

void IlpFormulation::create_variables() {
  const int nv = spec_.catalog.num_vendors();
  schedule_index_.assign(static_cast<std::size_t>(kNumCopyKinds) *
                             static_cast<std::size_t>(num_ops_) *
                             static_cast<std::size_t>(max_lambda_) *
                             static_cast<std::size_t>(nv) *
                             static_cast<std::size_t>(max_cap_),
                         -1);
  epsilon_index_.assign(static_cast<std::size_t>(nv) *
                            dfg::kNumResourceClasses *
                            static_cast<std::size_t>(max_cap_),
                        -1);
  delta_index_.assign(
      static_cast<std::size_t>(nv) * dfg::kNumResourceClasses, -1);

  // Schedule variables, restricted to each copy's ASAP/ALAP window — a
  // standard HLS-ILP reduction that leaves the model equivalent.
  const std::vector<int> asap = dfg::asap_levels(spec_.graph);
  const std::vector<int> alap_det =
      dfg::alap_levels(spec_.graph, spec_.lambda_detection);
  std::vector<int> alap_rec;
  if (spec_.with_recovery) {
    alap_rec = dfg::alap_levels(spec_.graph, spec_.lambda_recovery);
  }

  for (CopyKind kind : kinds_) {
    for (dfg::OpId op = 0; op < num_ops_; ++op) {
      const dfg::ResourceClass rc = class_of(spec_, op);
      const int lo = asap[static_cast<std::size_t>(op)];
      const int hi = kind == CopyKind::kRecovery
                         ? alap_rec[static_cast<std::size_t>(op)]
                         : alap_det[static_cast<std::size_t>(op)];
      for (int cycle = lo; cycle <= hi; ++cycle) {
        for (vendor::VendorId v = 0; v < nv; ++v) {
          if (!spec_.catalog.offers(v, rc)) continue;
          for (int m = 0; m < cap_of(rc); ++m) {
            const std::string name =
                copy_kind_name(kind) + "_" + std::to_string(op) + "_l" +
                std::to_string(cycle) + "_k" + std::to_string(v) + "_m" +
                std::to_string(m);
            schedule_index_[schedule_slot(kind, op, cycle, v, m)] =
                model_.add_binary(name);
          }
        }
      }
    }
  }

  // epsilon(k,t,m) and delta(k,t), only for classes the DFG uses and
  // vendors that offer them.
  const auto op_counts = spec_.graph.ops_per_class();
  for (vendor::VendorId v = 0; v < nv; ++v) {
    for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
      const auto rc = static_cast<dfg::ResourceClass>(cls);
      if (op_counts[cls] == 0 || !spec_.catalog.offers(v, rc)) continue;
      for (int m = 0; m < cap_of(rc); ++m) {
        epsilon_index_[(static_cast<std::size_t>(v) *
                            dfg::kNumResourceClasses +
                        static_cast<std::size_t>(cls)) *
                           static_cast<std::size_t>(max_cap_) +
                       static_cast<std::size_t>(m)] =
            model_.add_binary("eps_k" + std::to_string(v) + "_t" +
                              std::to_string(cls) + "_m" + std::to_string(m));
      }
      delta_index_[static_cast<std::size_t>(v) * dfg::kNumResourceClasses +
                   static_cast<std::size_t>(cls)] =
          model_.add_binary(
              "delta_k" + std::to_string(v) + "_t" + std::to_string(cls),
              static_cast<double>(spec_.catalog.offer(v, rc).cost));
    }
  }
}

int IlpFormulation::schedule_var(CopyKind kind, dfg::OpId op, int cycle,
                                 vendor::VendorId vendor,
                                 int instance) const {
  if (cycle < 1 || cycle > max_lambda_ || vendor < 0 ||
      vendor >= spec_.catalog.num_vendors() || instance < 0 ||
      instance >= max_cap_) {
    return -1;
  }
  return schedule_index_[schedule_slot(kind, op, cycle, vendor, instance)];
}

int IlpFormulation::epsilon_var(vendor::VendorId vendor,
                                dfg::ResourceClass rc, int instance) const {
  if (instance < 0 || instance >= max_cap_) return -1;
  return epsilon_index_[(static_cast<std::size_t>(vendor) *
                             dfg::kNumResourceClasses +
                         static_cast<std::size_t>(rc)) *
                            static_cast<std::size_t>(max_cap_) +
                        static_cast<std::size_t>(instance)];
}

int IlpFormulation::delta_var(vendor::VendorId vendor,
                              dfg::ResourceClass rc) const {
  return delta_index_[static_cast<std::size_t>(vendor) *
                          dfg::kNumResourceClasses +
                      static_cast<std::size_t>(rc)];
}

void IlpFormulation::add_constraints() {
  const int nv = spec_.catalog.num_vendors();

  // Helper: all variables of one copy, optionally filtered by vendor.
  auto copy_terms = [&](CopyKind kind, dfg::OpId op, int only_vendor,
                        double weight_by_cycle) {
    std::vector<std::pair<int, double>> terms;
    const dfg::ResourceClass rc = class_of(spec_, op);
    for (int cycle = 1; cycle <= lambda_of(kind); ++cycle) {
      for (vendor::VendorId v = 0; v < nv; ++v) {
        if (only_vendor >= 0 && v != only_vendor) continue;
        for (int m = 0; m < cap_of(rc); ++m) {
          const int var = schedule_var(kind, op, cycle, v, m);
          if (var < 0) continue;
          terms.emplace_back(var,
                             weight_by_cycle != 0.0
                                 ? weight_by_cycle * cycle
                                 : 1.0);
        }
      }
    }
    return terms;
  };

  // (3) every copy scheduled exactly once.
  for (CopyKind kind : kinds_) {
    for (dfg::OpId op = 0; op < num_ops_; ++op) {
      model_.add_constraint(copy_terms(kind, op, -1, 0.0), lp::Relation::kEq,
                            1.0);
    }
  }

  // (4) dependence: start(j) >= start(i) + 1 within each schedule.
  for (const auto& [from, to] : spec_.graph.edges()) {
    for (CopyKind kind : kinds_) {
      std::vector<std::pair<int, double>> terms =
          copy_terms(kind, from, -1, 1.0);
      for (auto& [var, coeff] : copy_terms(kind, to, -1, 1.0)) {
        terms.emplace_back(var, -coeff);
      }
      model_.add_constraint(std::move(terms), lp::Relation::kLe, -1.0);
    }
  }

  // (5)-(10): every vendor-diversity rule, via the shared conflict engine.
  // Each conflict (a, b) lowers to: for every vendor k,
  //   sum_{l,m} H_a(l,k,m) + sum_{l,m} H_b(l,k,m) <= 1.
  for (const VendorConflict& conflict : vendor_conflicts(spec_)) {
    for (vendor::VendorId v = 0; v < nv; ++v) {
      std::vector<std::pair<int, double>> terms =
          copy_terms(conflict.a.kind, conflict.a.op, v, 0.0);
      const auto more = copy_terms(conflict.b.kind, conflict.b.op, v, 0.0);
      terms.insert(terms.end(), more.begin(), more.end());
      if (terms.empty()) continue;
      model_.add_constraint(std::move(terms), lp::Relation::kLe, 1.0);
    }
  }

  const auto op_counts = spec_.graph.ops_per_class();

  // (11)-(12): epsilon/delta indicators; the '>= usage/Z' halves become
  // 'usage <= Z * indicator' with Z = the trivially safe copy count.
  const double big_z =
      static_cast<double>(kNumCopyKinds * num_ops_ * max_lambda_ + 1);
  for (vendor::VendorId v = 0; v < nv; ++v) {
    for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
      const auto rc = static_cast<dfg::ResourceClass>(cls);
      if (op_counts[cls] == 0 || !spec_.catalog.offers(v, rc)) continue;

      std::vector<std::pair<int, double>> all_usage;
      for (int m = 0; m < cap_of(rc); ++m) {
        const int eps = epsilon_var(v, rc, m);
        std::vector<std::pair<int, double>> usage;
        for (CopyKind kind : kinds_) {
          for (dfg::OpId op = 0; op < num_ops_; ++op) {
            if (class_of(spec_, op) != rc) continue;
            for (int cycle = 1; cycle <= lambda_of(kind); ++cycle) {
              const int var = schedule_var(kind, op, cycle, v, m);
              if (var >= 0) usage.emplace_back(var, 1.0);
            }
          }
        }
        all_usage.insert(all_usage.end(), usage.begin(), usage.end());
        // usage - Z*eps <= 0  (eps = 1 if any use)
        std::vector<std::pair<int, double>> lhs = usage;
        lhs.emplace_back(eps, -big_z);
        model_.add_constraint(std::move(lhs), lp::Relation::kLe, 0.0);
        // eps <= usage  (no phantom instances)
        std::vector<std::pair<int, double>> rhs = usage;
        for (auto& [var, coeff] : rhs) coeff = -coeff;
        rhs.emplace_back(eps, 1.0);
        model_.add_constraint(std::move(rhs), lp::Relation::kLe, 0.0);
        // Symmetry breaking (not in the paper; sound): instances fill in
        // order, eps(m) >= eps(m+1).
        if (m > 0) {
          model_.add_constraint(
              {{eps, 1.0}, {epsilon_var(v, rc, m - 1), -1.0}},
              lp::Relation::kLe, 0.0);
        }
      }
      const int delta = delta_var(v, rc);
      std::vector<std::pair<int, double>> lhs = all_usage;
      lhs.emplace_back(delta, -big_z);
      model_.add_constraint(std::move(lhs), lp::Relation::kLe, 0.0);
      std::vector<std::pair<int, double>> rhs = all_usage;
      for (auto& [var, coeff] : rhs) coeff = -coeff;
      rhs.emplace_back(delta, 1.0);
      model_.add_constraint(std::move(rhs), lp::Relation::kLe, 0.0);
    }
  }

  // (13) area.
  std::vector<std::pair<int, double>> area_terms;
  for (vendor::VendorId v = 0; v < nv; ++v) {
    for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
      const auto rc = static_cast<dfg::ResourceClass>(cls);
      if (op_counts[cls] == 0 || !spec_.catalog.offers(v, rc)) continue;
      for (int m = 0; m < cap_of(rc); ++m) {
        area_terms.emplace_back(
            epsilon_var(v, rc, m),
            static_cast<double>(spec_.catalog.offer(v, rc).area));
      }
    }
  }
  model_.add_constraint(std::move(area_terms), lp::Relation::kLe,
                        static_cast<double>(spec_.area_limit));

  // (14)-(15) hold structurally: recovery copies live on the recovery
  // phase's timeline, which follows the detection phase by construction.

  // (16) one op per core instance per cycle, per phase timeline.
  for (vendor::VendorId v = 0; v < nv; ++v) {
    for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
      const auto rc = static_cast<dfg::ResourceClass>(cls);
      if (op_counts[cls] == 0 || !spec_.catalog.offers(v, rc)) continue;
      for (int m = 0; m < cap_of(rc); ++m) {
        for (int cycle = 1; cycle <= spec_.lambda_detection; ++cycle) {
          std::vector<std::pair<int, double>> terms;
          for (CopyKind kind : {CopyKind::kNormal, CopyKind::kRedundant}) {
            for (dfg::OpId op = 0; op < num_ops_; ++op) {
              if (class_of(spec_, op) != rc) continue;
              const int var = schedule_var(kind, op, cycle, v, m);
              if (var >= 0) terms.emplace_back(var, 1.0);
            }
          }
          if (terms.size() > 1) {
            model_.add_constraint(std::move(terms), lp::Relation::kLe, 1.0);
          }
        }
        if (spec_.with_recovery) {
          for (int cycle = 1; cycle <= spec_.lambda_recovery; ++cycle) {
            std::vector<std::pair<int, double>> terms;
            for (dfg::OpId op = 0; op < num_ops_; ++op) {
              if (class_of(spec_, op) != rc) continue;
              const int var =
                  schedule_var(CopyKind::kRecovery, op, cycle, v, m);
              if (var >= 0) terms.emplace_back(var, 1.0);
            }
            if (terms.size() > 1) {
              model_.add_constraint(std::move(terms), lp::Relation::kLe, 1.0);
            }
          }
        }
      }
    }
  }
}

Solution IlpFormulation::decode(const std::vector<double>& values) const {
  util::check_spec(
      static_cast<int>(values.size()) == model_.num_variables(),
      "IlpFormulation::decode: assignment size mismatch");
  Solution solution(num_ops_, spec_.with_recovery);
  for (CopyKind kind : kinds_) {
    for (dfg::OpId op = 0; op < num_ops_; ++op) {
      const dfg::ResourceClass rc = class_of(spec_, op);
      for (int cycle = 1; cycle <= lambda_of(kind); ++cycle) {
        for (vendor::VendorId v = 0; v < spec_.catalog.num_vendors(); ++v) {
          for (int m = 0; m < cap_of(rc); ++m) {
            const int var = schedule_var(kind, op, cycle, v, m);
            if (var >= 0 && values[static_cast<std::size_t>(var)] > 0.5) {
              solution.at(kind, op) = Binding{cycle, v, m};
            }
          }
        }
      }
    }
  }
  return solution;
}

OptimizeResult minimize_cost_ilp(const ProblemSpec& spec,
                                 const ilp::BnbOptions& options) {
  util::Timer timer;
  OptimizeResult result;
  try {
    (void)dfg::alap_levels(spec.graph, spec.lambda_detection);
    if (spec.with_recovery) {
      (void)dfg::alap_levels(spec.graph, spec.lambda_recovery);
    }
  } catch (const util::InfeasibleError&) {
    result.status = OptStatus::kInfeasible;
    result.stats.seconds = timer.elapsed_seconds();
    return result;
  }

  const IlpFormulation formulation(spec);
  const ilp::SolveResult solved =
      ilp::solve_branch_and_bound(formulation.model(), options);
  result.stats.seconds = timer.elapsed_seconds();
  result.stats.csp_nodes = solved.stats.nodes;
  switch (solved.status) {
    case ilp::SolveStatus::kOptimal:
      result.status = OptStatus::kOptimal;
      break;
    case ilp::SolveStatus::kFeasible:
      result.status = OptStatus::kFeasible;
      break;
    case ilp::SolveStatus::kInfeasible:
      result.status = OptStatus::kInfeasible;
      return result;
    case ilp::SolveStatus::kUnknown:
      result.status = OptStatus::kUnknown;
      return result;
  }
  result.solution = formulation.decode(solved.values);
  require_valid(spec, result.solution);
  result.cost = result.solution.license_cost(spec);
  util::check_internal(
      result.cost == static_cast<long long>(solved.objective + 0.5),
      "ILP objective disagrees with decoded license cost");
  return result;
}

long long license_lp_lower_bound(
    const ProblemSpec& spec,
    const std::array<int, dfg::kNumResourceClasses>& instance_floors,
    const std::array<int, dfg::kNumResourceClasses>& vendor_floors) {
  HT_TRACE_SPAN("lp/simplex");
  obs::StageTimer lp_timer(obs::Stage::kLpBound);
  lp::LpProblem relax;
  const auto op_counts = spec.graph.ops_per_class();
  std::vector<std::pair<int, double>> area_row;
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    if (op_counts[cls] == 0) continue;
    const auto rc = static_cast<dfg::ResourceClass>(cls);
    const int cap = spec.instance_cap(rc);
    std::vector<std::pair<int, double>> instance_row;
    std::vector<std::pair<int, double>> license_row;
    for (vendor::VendorId v = 0; v < spec.catalog.num_vendors(); ++v) {
      if (!spec.catalog.offers(v, rc)) continue;
      const vendor::IpOffer& offer = spec.catalog.offer(v, rc);
      const int delta = relax.add_variable(0.0, 1.0, offer.cost);
      const int count = relax.add_variable(0.0, lp::kInf, 0.0);
      // n(v, c) <= cap * delta(v, c): instances only on bought licenses.
      relax.add_constraint({{count, 1.0}, {delta, -double(cap)}},
                           lp::Relation::kLe, 0.0);
      instance_row.emplace_back(count, 1.0);
      license_row.emplace_back(delta, 1.0);
      area_row.emplace_back(count, double(offer.area));
    }
    relax.add_constraint(std::move(instance_row), lp::Relation::kGe,
                         double(instance_floors[cls]));
    relax.add_constraint(std::move(license_row), lp::Relation::kGe,
                         double(vendor_floors[cls]));
  }
  if (!area_row.empty()) {
    relax.add_constraint(std::move(area_row), lp::Relation::kLe,
                         double(spec.area_limit));
  }
  const lp::LpResult priced = lp::solve(relax);
  switch (priced.status) {
    case lp::LpStatus::kOptimal:
      return static_cast<long long>(std::ceil(priced.objective - 1e-6));
    case lp::LpStatus::kInfeasible:
      return LLONG_MAX / 4;
    default:
      return -1;
  }
}

OptimizeResult minimize_cost_ilp_warm(const ProblemSpec& spec,
                                      const Solution& warm,
                                      const ilp::BnbOptions& options) {
  require_valid(spec, warm);
  util::Timer timer;
  const long long warm_cost = warm.license_cost(spec);

  const IlpFormulation formulation(spec);
  ilp::BnbOptions bounded = options;
  bounded.initial_upper_bound = static_cast<double>(warm_cost);
  const ilp::SolveResult solved =
      ilp::solve_branch_and_bound(formulation.model(), bounded);

  OptimizeResult result;
  result.stats.seconds = timer.elapsed_seconds();
  result.stats.csp_nodes = solved.stats.nodes;
  switch (solved.status) {
    case ilp::SolveStatus::kOptimal:   // strictly better design found
    case ilp::SolveStatus::kFeasible:
      result.solution = formulation.decode(solved.values);
      require_valid(spec, result.solution);
      result.cost = result.solution.license_cost(spec);
      result.status = solved.status == ilp::SolveStatus::kOptimal
                          ? OptStatus::kOptimal
                          : OptStatus::kFeasible;
      return result;
    case ilp::SolveStatus::kInfeasible:
      // Exhausted under the warm bound: nothing strictly better exists,
      // so the warm solution is proved optimal.
      result.solution = warm;
      result.cost = warm_cost;
      result.status = OptStatus::kOptimal;
      return result;
    case ilp::SolveStatus::kUnknown:
      result.solution = warm;
      result.cost = warm_cost;
      result.status = OptStatus::kFeasible;
      return result;
  }
  throw util::InternalError("minimize_cost_ilp_warm: unreachable");
}

}  // namespace ht::core
