#include "core/incumbent_pool.hpp"

namespace ht::core {

const char* portfolio_member_name(int rank) {
  switch (rank) {
    case static_cast<int>(PortfolioMember::kExact):
      return "exact";
    case static_cast<int>(PortfolioMember::kGreedy):
      return "greedy";
    case static_cast<int>(PortfolioMember::kSls):
      return "sls";
  }
  return "-";
}

bool incumbent_beats(const Incumbent& a, const Incumbent& b) {
  if (a.cost != b.cost) return a.cost < b.cost;
  if (a.member_rank != b.member_rank) return a.member_rank < b.member_rank;
  return a.palette_index < b.palette_index;
}

bool IncumbentPool::publish(Incumbent entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++published_;
  if (entry.member_rank >= 0 && entry.member_rank < kNumPortfolioMembers) {
    MemberStats& member =
        members_[static_cast<std::size_t>(entry.member_rank)];
    ++member.published;
    if (member.first_seconds < 0.0 ||
        entry.publish_seconds < member.first_seconds) {
      member.first_seconds = entry.publish_seconds;
    }
    if (entry.cost < member.best_cost) member.best_cost = entry.cost;
  }
  if (first_publish_seconds_ < 0.0 ||
      entry.publish_seconds < first_publish_seconds_) {
    first_publish_seconds_ = entry.publish_seconds;
  }
  // Time-to-best tracks the earliest moment a binding at the (current)
  // best cost existed: a strictly cheaper entry resets the clock, an
  // equal-cost entry may only move it earlier.
  const long long prior_best = best_ ? best_->cost
                                     : std::numeric_limits<long long>::max();
  if (entry.cost < prior_best) {
    best_cost_seconds_ = entry.publish_seconds;
  } else if (entry.cost == prior_best &&
             entry.publish_seconds < best_cost_seconds_) {
    best_cost_seconds_ = entry.publish_seconds;
  }
  const bool improved = !best_ || incumbent_beats(entry, *best_);
  if (improved) {
    // Publish the hint *after* the full entry is recorded: the release
    // store pairs with best_cost_hint()'s acquire load, so a reader that
    // sees the lowered bound could also safely read everything the
    // publisher wrote (today readers only use the cost itself).
    best_ = std::move(entry);
    best_cost_hint_.store(best_->cost, std::memory_order_release);
  }
  return improved;
}

std::optional<Incumbent> IncumbentPool::best() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return best_;
}

double IncumbentPool::first_publish_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return first_publish_seconds_;
}

double IncumbentPool::best_cost_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return best_cost_seconds_;
}

long IncumbentPool::published() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return published_;
}

IncumbentPool::MemberStats IncumbentPool::member_stats(int rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (rank < 0 || rank >= kNumPortfolioMembers) return MemberStats{};
  return members_[static_cast<std::size_t>(rank)];
}

}  // namespace ht::core
