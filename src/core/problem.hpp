// Problem specification for Trojan-tolerant scheduling and binding.
//
// A ProblemSpec is everything the paper's Section 4 gives the designer: the
// DFG to implement, the vendor/IP catalog, latency bounds for the detection
// phase (which holds the normal computation NC and the re-computation RC)
// and the recovery phase, a total silicon-area bound, and the set of design
// rules to enforce.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "dfg/dfg.hpp"
#include "vendor/catalog.hpp"

namespace ht::core {

/// Hard cap on catalog vendors, shared by every solver layer. The CSP
/// solver and the infeasibility dominance cache encode vendor sets as
/// 64-bit masks, and palette enumeration materializes per-class vendor
/// subsets — tractable only well below the mask width. One constant so the
/// layers cannot drift apart: a catalog accepted by the enumerator is
/// always representable by the bitmask engines, and vice versa.
inline constexpr int kMaxVendors = 24;

/// Which of the paper's design rules are active. All default on; benches
/// toggle them for ablations, and `sibling_diversity_all_copies` selects
/// between the paper's literal equation (7) (NC only) and the symmetric
/// reading of Rule 2 (NC, RC and recovery alike).
struct RuleConfig {
  /// Detection Rule 1: op i in NC and op i in RC use different vendors.
  bool detection_same_op = true;
  /// Detection Rule 2 (part 1): parent and child ops use different vendors
  /// (applied within NC, within RC, and within recovery — the paper's
  /// equation (6) ranges over all three schedules).
  bool detection_parent_child = true;
  /// Detection Rule 2 (part 2): two ops feeding the same child use
  /// different vendors.
  bool detection_sibling = true;
  /// Apply the sibling rule in RC and recovery too (symmetric reading).
  /// Default false: only NC is constrained, exactly the paper's equation
  /// (7) — and the setting under which the paper's Figure-5 optimum of
  /// $4160 is achievable (the symmetric reading over-constrains the
  /// 4-vendor motivational example; see DESIGN.md).
  bool sibling_diversity_all_copies = false;
  /// Recovery Rule 1: op i in recovery avoids both vendors op i used in the
  /// detection phase.
  bool recovery_same_op = true;
  /// Recovery Rule 2: an op in recovery also avoids the vendors its
  /// closely-related ops used in the detection phase.
  bool recovery_close_pairs = true;
};

/// A scheduling/binding problem instance.
struct ProblemSpec {
  dfg::Dfg graph;
  vendor::Catalog catalog{1};

  /// Detection-phase latency bound (cycles available to NC and RC).
  int lambda_detection = 0;
  /// Recovery-phase latency bound; ignored when `with_recovery` is false.
  int lambda_recovery = 0;
  /// False reproduces the detection-only baseline of Rajendran et al.
  /// (the paper's Table 3); true is the paper's full scheme (Table 4).
  bool with_recovery = true;

  /// Total area bound over all instantiated IP cores (unit cells).
  long long area_limit = 0;

  /// Cap on instances of one (vendor, class) offer; 0 derives a sufficient
  /// default (the number of DFG ops of that class).
  int max_instances_per_offer = 0;

  /// Execution latency, in cycles, of each resource class (indexed by
  /// ResourceClass). The paper assumes single-cycle units; raising e.g.
  /// the multiplier latency to 2 models pipelined-free multi-cycle cores —
  /// an op occupies its instance for the whole interval and its consumers
  /// wait for the result. Supported by the CSP/greedy optimizer stack;
  /// the faithful ILP and the RTL back end require unit latencies.
  std::array<int, dfg::kNumResourceClasses> class_latency{1, 1, 1};

  RuleConfig rules;

  /// Unordered same-type op pairs with closely-related inputs (recovery
  /// Rule 2). May be empty; ht_trojan can derive it by profiling.
  std::vector<std::pair<dfg::OpId, dfg::OpId>> closely_related;

  /// Effective instance cap for one offer.
  int instance_cap(dfg::ResourceClass rc) const;

  /// Execution latency of one operation under `class_latency`.
  int op_latency(dfg::OpId op) const;

  /// Per-op latency vector for the dfg:: analysis overloads.
  std::vector<int> op_latencies() const;

  /// True when every class executes in one cycle (the paper's model).
  bool unit_latency() const;

  /// Throws util::SpecError when inconsistent (empty graph, non-positive
  /// bounds, close pairs of mismatched type, vendors missing a needed
  /// class entirely, ...).
  void validate() const;
};

/// Convenience constructor used by benches and tests: benchmark graph plus
/// one Table-3/Table-4 row. For detection-only rows `lambda` bounds the
/// detection phase; for recovery rows it bounds the *total* schedule and
/// the split between the phases is left to the optimizer (this helper
/// stores the total in `lambda_detection` + `lambda_recovery` via an even
/// critical-path-aware split; the optimizer tries all splits).
ProblemSpec make_detection_only_spec(dfg::Dfg graph, vendor::Catalog catalog,
                                     int lambda, long long area_limit);

}  // namespace ht::core
