#include "core/sls_binder.hpp"

#include <algorithm>
#include <vector>

#include "core/rules.hpp"
#include "core/validate.hpp"
#include "util/timer.hpp"

namespace ht::core {
namespace {

/// Multiplicative field updates. Reinforcement must outweigh decay so a
/// vendor that keeps appearing in feasible bindings stays dominant; the
/// clamps keep fields away from degenerate all-zero / runaway states.
constexpr double kReinforce = 1.6;
constexpr double kPenalize = 0.7;
constexpr double kFieldFloor = 1e-6;
constexpr double kFieldCeil = 1e6;

struct ClassField {
  dfg::ResourceClass rc = dfg::ResourceClass::kAdder;
  /// Vendors offering the class, cheapest license first (the catalog's
  /// canonical order); `bias[k]` belongs to `vendors[k]`.
  std::vector<vendor::VendorId> vendors;
  std::vector<double> bias;
  int min_size = 1;
  int size = 1;  ///< current decimation width

  void reset_bias() {
    // Cost prior: rank k in the cheapest-first list starts at 1/(1+k), so
    // the first samples lean toward cheap palettes — the same bet the
    // exact enumerator's cheapest-first queue makes.
    for (std::size_t k = 0; k < bias.size(); ++k) {
      bias[k] = 1.0 / (1.0 + static_cast<double>(k));
    }
    size = min_size;
  }

  void bump(vendor::VendorId v, double factor) {
    for (std::size_t k = 0; k < vendors.size(); ++k) {
      if (vendors[k] != v) continue;
      bias[k] = std::clamp(bias[k] * factor, kFieldFloor, kFieldCeil);
      return;
    }
  }

  /// Samples `size` distinct vendors by roulette over the bias field
  /// (weighted, without replacement). Deterministic given the rng state.
  void sample(util::Rng& rng, std::vector<vendor::VendorId>* out) const {
    out->clear();
    std::vector<double> weights = bias;
    for (int pick = 0; pick < size; ++pick) {
      double total = 0.0;
      for (double w : weights) total += w;
      if (total <= 0.0) break;
      double roll = rng.uniform01() * total;
      std::size_t chosen = weights.size() - 1;
      for (std::size_t k = 0; k < weights.size(); ++k) {
        if (weights[k] <= 0.0) continue;
        roll -= weights[k];
        if (roll <= 0.0) {
          chosen = k;
          break;
        }
      }
      out->push_back(vendors[chosen]);
      weights[chosen] = 0.0;  // without replacement
    }
    std::sort(out->begin(), out->end());
  }
};

}  // namespace

SlsOutcome sls_search(const ProblemSpec& spec, const SlsOptions& options) {
  SlsOutcome outcome;
  util::Timer timer;

  const auto min_sizes = min_vendors_per_class(spec);
  const auto ops_per_class = spec.graph.ops_per_class();
  std::vector<ClassField> fields;
  int max_headroom = 0;
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    if (ops_per_class[cls] == 0) continue;
    ClassField field;
    field.rc = static_cast<dfg::ResourceClass>(cls);
    field.vendors = spec.catalog.vendors_by_cost(field.rc);
    field.bias.assign(field.vendors.size(), 0.0);
    field.min_size =
        std::min(static_cast<int>(field.vendors.size()),
                 std::max(1, min_sizes[cls]));
    if (static_cast<int>(field.vendors.size()) < min_sizes[cls]) {
      // The market cannot supply the class's clique bound; nothing to
      // search (the engine reports infeasibility before ever calling us,
      // but stay safe standalone).
      return outcome;
    }
    max_headroom = std::max(
        max_headroom, static_cast<int>(field.vendors.size()) - field.min_size);
    fields.push_back(std::move(field));
  }
  if (fields.empty()) return outcome;

  long attempt = 0;
  const auto out_of_time = [&] {
    return options.time_limit_seconds > 0.0 &&
           timer.elapsed_seconds() >= options.time_limit_seconds;
  };
  const auto record = [&](const Solution& solution, long long cost) {
    ++outcome.candidates_validated;
    if (cost >= outcome.cost) return;
    outcome.feasible = true;
    outcome.cost = cost;
    outcome.solution = solution;
    if (options.on_improved) options.on_improved(solution, cost, attempt);
  };
  // Up to `construction_tries` greedy attempts against an explicit
  // palette set; first success wins. The greedy's randomized
  // tie-breaking binds tight palettes only a fraction of the time, so a
  // single shot would misread good narrow palettes as dead ends.
  const auto construct = [&](const Palettes& palettes,
                             util::Rng& rng) -> std::optional<Solution> {
    const int tries = std::max(1, options.construction_tries);
    for (int t = 0; t < tries; ++t) {
      ++outcome.steps;
      ++attempt;
      std::optional<Solution> built = greedy_construct(spec, palettes, rng);
      if (built) return built;
      if (options.cancel && options.cancel->cancelled()) break;
      if (out_of_time()) break;
    }
    return std::nullopt;
  };

  Palettes palettes;
  std::vector<vendor::VendorId> sampled;
  for (int r = 0; r < options.restarts; ++r) {
    if (options.cancel && options.cancel->cancelled()) break;
    if (out_of_time()) break;
    ++outcome.restarts_run;
    util::Rng rng(palette_seed(options.seed, static_cast<std::uint64_t>(r) + 1));
    for (ClassField& field : fields) field.reset_bias();

    int failures_in_a_row = 0;
    for (int p = 0; p < options.perturbations; ++p) {
      if (options.cancel && options.cancel->cancelled()) break;
      if (out_of_time()) break;
      palettes = Palettes{};
      for (const ClassField& field : fields) {
        field.sample(rng, &sampled);
        palettes[static_cast<int>(field.rc)] = sampled;
      }
      const std::optional<Solution> constructed = construct(palettes, rng);
      if (!constructed) {
        // Decimation failure: the sampled palettes were too narrow or
        // badly biased. Penalize what we sampled and widen every class
        // that still has market headroom so the next sample has more
        // diversity to color with.
        ++failures_in_a_row;
        for (ClassField& field : fields) {
          for (vendor::VendorId v : palettes[static_cast<int>(field.rc)]) {
            field.bump(v, kPenalize);
          }
          if (failures_in_a_row >= 2 &&
              field.size < static_cast<int>(field.vendors.size())) {
            ++field.size;
          }
        }
        continue;
      }
      failures_in_a_row = 0;
      long long cost = constructed->license_cost(spec);
      record(*constructed, cost);
      Solution current = *constructed;
      // Feedback: reinforce the licenses the binding actually bills (the
      // billed set may be a strict subset of the sampled palettes).
      const std::set<LicenseKey> used = current.licenses_used(spec);
      for (ClassField& field : fields) {
        for (vendor::VendorId v : palettes[static_cast<int>(field.rc)]) {
          const bool billed = used.count(LicenseKey{v, field.rc}) != 0;
          field.bump(v, billed ? kReinforce : kPenalize);
        }
      }
      // Cost descent, first-improvement hill climbing on the billed
      // license set. Neighborhoods per move, in deterministic order of
      // decreasing fee savings: (1) drop a droppable license, most
      // expensive first (respecting the per-class clique floor); (2) swap
      // a billed license for a strictly cheaper unbilled vendor of the
      // same class. Swaps are what let the descent *introduce* vendors
      // the current binding never used — drop-only descent plateaus as
      // soon as the optimum needs a license outside the billed set.
      for (int move = 0; move < options.descent_moves; ++move) {
        if (options.cancel && options.cancel->cancelled()) break;
        if (out_of_time()) break;
        const std::set<LicenseKey> billed = current.licenses_used(spec);
        const long long current_cost = current.license_cost(spec);
        // (fee savings, palette) candidates; larger savings tried first.
        std::vector<std::pair<long long, Palettes>> moves;
        const auto floor_of = [&](dfg::ResourceClass rc) {
          for (const ClassField& field : fields) {
            if (field.rc == rc) return field.min_size;
          }
          return 1;
        };
        for (const LicenseKey& key : billed) {
          int class_count = 0;
          for (const LicenseKey& other : billed) {
            if (other.rc == key.rc) ++class_count;
          }
          const long long fee = spec.catalog.offer(key.vendor, key.rc).cost;
          Palettes rest{};
          for (const LicenseKey& other : billed) {
            if (other == key) continue;
            rest[static_cast<int>(other.rc)].push_back(other.vendor);
          }
          if (class_count > floor_of(key.rc)) moves.emplace_back(fee, rest);
          for (const ClassField& field : fields) {
            if (field.rc != key.rc) continue;
            for (vendor::VendorId v : field.vendors) {
              const long long swap_fee = spec.catalog.offer(v, key.rc).cost;
              if (swap_fee >= fee) break;  // cheapest-first list
              if (billed.count(LicenseKey{v, key.rc}) != 0) continue;
              Palettes swapped = rest;
              swapped[static_cast<int>(key.rc)].push_back(v);
              moves.emplace_back(fee - swap_fee, std::move(swapped));
            }
          }
        }
        for (auto& [savings, palette] : moves) {
          for (auto& list : palette) std::sort(list.begin(), list.end());
        }
        std::stable_sort(moves.begin(), moves.end(),
                         [](const auto& a, const auto& b) {
                           return a.first > b.first;
                         });
        bool improved = false;
        for (const auto& [savings, palette] : moves) {
          if (options.cancel && options.cancel->cancelled()) break;
          if (out_of_time()) break;
          const std::optional<Solution> descended = construct(palette, rng);
          if (!descended) continue;
          const long long descended_cost = descended->license_cost(spec);
          ++outcome.candidates_validated;
          if (descended_cost >= current_cost) continue;
          current = *descended;
          if (descended_cost < outcome.cost) {
            outcome.feasible = true;
            outcome.cost = descended_cost;
            outcome.solution = current;
            if (options.on_improved) {
              options.on_improved(current, descended_cost, attempt);
            }
          }
          for (ClassField& field : fields) {
            for (vendor::VendorId v : palette[static_cast<int>(field.rc)]) {
              field.bump(v, kReinforce);
            }
          }
          improved = true;
          break;
        }
        if (!improved) break;
      }
    }
  }
  if (outcome.feasible) require_valid(spec, outcome.solution);
  return outcome;
}

}  // namespace ht::core
