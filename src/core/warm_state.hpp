// Shared warm-state snapshots for concurrent same-market serving.
//
// A WarmSnapshot is an immutable, refcounted bundle of everything a
// SynthesisEngine accumulates that is worth keeping between requests of one
// spec family ("market"): the SearchCache's sealed infeasibility proofs and
// LP-bound memos, and the NogoodStore's sealed guarded nogoods. The service
// publishes at most one snapshot per market under an RCU-style pointer
// swap: a request grabs the current pointer (cheap, under the market
// mutex), adopts it into a pooled engine (SynthesisEngine::adopt_warm),
// solves with NO market lock held, and on completion its surviving delta is
// folded into the next snapshot by merge_warm() — a short deterministic
// merge under the lock. Readers holding the old snapshot keep it alive via
// the shared_ptr refcount; nothing is ever mutated in place.
//
// Why sharing is safe: both stores already split entries into an immutable
// sealed tier (the only tier dispatch-path queries may consult) and a
// private live/pending tier. A snapshot is purely sealed-tier content, so
// concurrent engines reading it need no synchronization, and the
// established speed-only contract (warm reuse changes how fast a result is
// found, never which result — DESIGN.md §5) carries over unchanged: which
// snapshot a request happened to see only affects which proofs it can skip
// with, and every proof is complete regardless of which engine produced it.
//
// Merge determinism: merge_warm() canonicalizes with the stores' existing
// compaction rules (cost/signature order, dominance antichain for proofs,
// dedup + seal cap for nogoods), so the merged snapshot is a pure function
// of the merged entry *set*. Completion order still influences which deltas
// have been folded in by a given instant — that is inherent to concurrency
// and harmless under the speed-only contract.
#pragma once

#include <cstdint>
#include <memory>

#include "core/nogood.hpp"
#include "core/search_cache.hpp"

namespace ht::core {

/// Immutable warm-state bundle for one market (spec family).
struct WarmSnapshot {
  std::uint64_t market = 0;   ///< spec_family_fingerprint of the family
  std::uint64_t version = 0;  ///< merges folded in (monotonic per market)
  CacheSnapshot cache;
  NogoodSnapshot nogoods;
};

using WarmSnapshotPtr = std::shared_ptr<const WarmSnapshot>;

/// What one request's engine accumulated on top of its adopted base:
/// SearchCache::export_delta() + NogoodStore::export_delta().
struct WarmDelta {
  CacheSnapshot cache;
  NogoodSnapshot nogoods;
};

/// True when the delta carries nothing worth publishing.
bool warm_delta_empty(const WarmDelta& delta);

/// Folds `delta` into `base` and returns the next snapshot to publish.
/// Returns `base` itself when the delta is empty. When the delta was
/// accumulated under a different spec-family fingerprint or a conflicting
/// offer-area layout, the delta REPLACES the snapshot (mirroring the
/// stores' own begin_op invalidation — the family changed under us).
/// Otherwise proofs/nogoods/memos are unioned and re-canonicalized with
/// the stores' compaction rules, base entries winning ties (keep-first).
WarmSnapshotPtr merge_warm(const WarmSnapshotPtr& base, std::uint64_t market,
                           const WarmDelta& delta);

}  // namespace ht::core
