// Post-detection quarantine and re-synthesis.
//
// The paper's recovery keeps the mission alive on the re-bound schedule
// "until [the infected ICs] can be replaced". This module is the
// replacement-planning half of that story: after a run-time detection the
// operator knows the Trojan lives in one of the licenses used by the
// corrupted computation; this narrows the market, and the design is
// re-synthesized with the suspect licenses banned — producing the design
// to program into the next maintenance window.
#pragma once

#include <optional>
#include <set>

#include "core/optimizer.hpp"

namespace ht::core {

/// Licenses used by the detection phase of `solution`. When `side` names
/// one computation (diagnosis available — see trojan::diagnose_corrupted
/// side), only that computation's licenses are suspects; otherwise every
/// detection-phase license is.
std::set<LicenseKey> suspect_licenses(const ProblemSpec& spec,
                                      const Solution& solution,
                                      std::optional<CopyKind> side);

/// Copy of `catalog` with the `banned` (vendor, class) offers removed.
/// Vendors left with no offers remain in the catalog (they just sell
/// nothing relevant).
vendor::Catalog without_licenses(const vendor::Catalog& catalog,
                                 const std::set<LicenseKey>& banned);

/// Re-synthesizes `spec` on the thinned market. Returns kInfeasible when
/// the quarantine leaves too little diversity — the signal that the part
/// must be replaced rather than re-programmed.
[[deprecated(
    "build a SynthesisRequest (RequestKind::kReoptimize, banned) and call "
    "core::synthesize() / SynthesisEngine::run()")]]
OptimizeResult reoptimize_without(const ProblemSpec& spec,
                                  const std::set<LicenseKey>& banned,
                                  const OptimizerOptions& options = {});

}  // namespace ht::core
