// Fast greedy constructor: DSATUR vendor coloring + peak-minimizing list
// scheduling.
//
// Key structural fact the pure CSP search cannot exploit: the
// vendor-diversity rules constrain *vendors only*, never cycles, so a
// solution decomposes into (1) a list coloring of the conflict graph with
// the class palettes and (2) a schedule whose only coupling to (1) is the
// silicon area — each (vendor, class) pair needs as many core instances as
// its peak per-cycle usage. The constructor therefore colors first
// (balancing load across palette vendors so peaks stay low), then
// list-schedules each phase timeline deferring non-urgent ops whenever a
// (vendor, class) is at its per-cycle target, and finally checks the area
// bound. Randomized tie-breaking makes retries cheap and diverse.
//
// This is the workhorse of the heuristic optimizer strategy; the complete
// CSP remains the fallback and the proof engine.
#pragma once

#include <optional>

#include "core/csp_solver.hpp"
#include "util/rng.hpp"

namespace ht::core {

/// One attempt; returns a validated-by-construction solution or nullopt if
/// the coloring dead-ends or the area bound is exceeded. Deterministic for
/// a given rng state.
std::optional<Solution> greedy_construct(const ProblemSpec& spec,
                                         const Palettes& palettes,
                                         util::Rng& rng);

}  // namespace ht::core
