// Cost-minimizing optimizer — the paper's Section 4 solved end to end.
//
// Strategy: enumerate license sets cheapest-first (see palette.hpp) and run
// the complete CSP scheduler/binder on each until one is feasible. Because
// license sets are visited in nondecreasing cost, the first feasible one is
// provably cost-optimal as long as every cheaper set received a complete
// (not budget-truncated) infeasibility proof; when a budget is exhausted the
// result degrades honestly to "feasible, best found" — the same caveat the
// paper marks with '*' in its Tables 3 and 4.
//
// kExact uses large CSP budgets per license set; kHeuristic uses small
// budgets with randomized restarts and is the fast path for the bigger
// benchmarks.
//
// These entry points are thin wrappers over core::SynthesisEngine (see
// engine.hpp), which is the full API: multi-threaded search, progress
// callbacks, cooperative cancellation, and the frontier/reoptimize
// operations behind the same request object.
#pragma once

#include <cstdint>
#include <string>

#include "core/csp_solver.hpp"
#include "core/validate.hpp"
#include "obs/metrics.hpp"

namespace ht::core {

enum class Strategy { kExact, kHeuristic };

struct OptimizerOptions {
  Strategy strategy = Strategy::kExact;
  double time_limit_seconds = 120.0;
  /// Per-license-set CSP node budget (exact strategy).
  long csp_node_limit = 4'000'000;
  /// Heuristic strategy: restarts per license set and per-restart budget.
  int heuristic_restarts = 3;
  long heuristic_node_limit = 80'000;
  /// Stop after this many license sets regardless of proof state.
  long max_combos = 200'000;
  std::uint64_t seed = 1;
  /// Compute lanes for the license-set search (1 = sequential, 0 = one per
  /// hardware thread). Results are identical for every value; see
  /// core/engine.hpp for the full request-level API (progress callbacks,
  /// cancellation).
  int threads = 1;
  /// Branch-and-bound lower bounds on the license-set search (see
  /// PruningOptions::cost_bounds in core/engine.hpp). Off gives A/B
  /// baselines the pre-bound engine.
  bool cost_bounds = true;
  /// Collect per-stage timing metrics into OptimizeResult::metrics (see
  /// ObservabilityOptions in core/engine.hpp). Purely observational.
  bool collect_metrics = false;
  /// Racing portfolio mode (see PortfolioOptions in core/engine.hpp):
  /// greedy + SLS incumbent seeders race ahead of the exact enumeration.
  /// Statuses and costs of proved results are unchanged; time-to-optimal
  /// shrinks.
  bool portfolio = false;
};

enum class OptStatus {
  kOptimal,     ///< minimum cost proved
  kFeasible,    ///< valid design found; optimality not proved ('*' rows)
  kInfeasible,  ///< proved that no design meets the constraints
  kUnknown,     ///< budgets exhausted with nothing to show
};

std::string to_string(OptStatus status);

struct OptimizeStats {
  long combos_tried = 0;
  /// License sets refuted by the static feasibility screens (area /
  /// capacity / clique bounds) before any CSP dispatch.
  long combos_skipped_screen = 0;
  /// License sets skipped because a sealed dominance-cache entry (see
  /// core/search_cache.hpp) already proves them infeasible.
  long combos_skipped_cache = 0;
  long unknown_combos = 0;
  /// CSP nodes of the *winning* sub-search (historical meaning: the search
  /// whose result was committed).
  long csp_nodes = 0;
  /// CSP nodes summed across *every* sub-search of the operation — split
  /// sweeps and frontier points include their non-winning attempts, which
  /// csp_nodes drops. For a plain minimize the two coincide.
  long nodes_total = 0;
  /// Conflict-directed search counters, aggregated like nodes_total.
  long nogoods_learned = 0;
  long backjumps = 0;
  long restarts = 0;
  /// License sets refuted by the branch-and-bound lower bounds
  /// (core/bounds.hpp) before any CSP dispatch — the global cost floor and
  /// the per-palette instance/area floors.
  long lb_prunes = 0;
  /// LP relaxations actually priced (cache misses) for the opt-in LP
  /// bound; a warm engine reuses the memoized bound and reports 0.
  long lb_lp_solves = 0;
  /// Watched-literal bucket entries examined by the nogood propagator,
  /// aggregated like nodes_total. The scan-all check this replaces visited
  /// every nogood containing the copy on every candidate value.
  long nogood_watch_visits = 0;
  // ---- racing portfolio attribution. The pool counters are zero unless
  // PortfolioOptions::enabled; best_source and time_to_best_seconds are
  // reported for every minimize (portfolio off: source 0 = exact, time =
  // commit time of the winning set) so A/B runs can compare them. --------
  /// Incumbents published to the shared pool by the phase-A members
  /// (greedy, SLS, and the exact member's full-market probe).
  long incumbents_published = 0;
  /// greedy_construct calls made by the SLS member.
  long sls_steps = 0;
  /// Portfolio member whose binding was committed: -1 none, 0 exact,
  /// 1 greedy, 2 SLS (see core/incumbent_pool.hpp).
  int best_source = -1;
  /// Seconds until the first pool incumbent existed (-1: none). This is
  /// the portfolio's "a valid design in hand" latency.
  double time_to_incumbent_seconds = -1.0;
  /// Seconds until a binding at the final committed cost first existed,
  /// whichever member produced it (-1: no solution). With the portfolio
  /// off this is the moment the winning set committed; the bench A/B
  /// compares the two as time-to-optimal.
  double time_to_best_seconds = -1.0;
  double seconds = 0.0;
};

struct OptimizeResult {
  OptStatus status = OptStatus::kUnknown;
  Solution solution;       ///< valid iff status is kOptimal/kFeasible
  long long cost = 0;      ///< license cost of `solution`
  OptimizeStats stats;
  /// Per-stage counters and duration histograms; all zeros unless the
  /// request enabled metrics collection (ObservabilityOptions::metrics /
  /// OptimizerOptions::collect_metrics). Aggregated across every
  /// sub-search of the operation, like OptimizeStats::nodes_total.
  obs::SolveMetrics metrics;

  bool has_solution() const {
    return status == OptStatus::kOptimal || status == OptStatus::kFeasible;
  }
};

/// Minimizes license cost for a fully specified problem (fixed detection
/// and recovery latency bounds). The returned solution is always validated
/// against the spec before being returned.
[[deprecated(
    "build a SynthesisRequest (RequestKind::kMinimize) and call "
    "core::synthesize() / SynthesisEngine::run(); see core/engine.hpp")]]
OptimizeResult minimize_cost(const ProblemSpec& spec,
                             const OptimizerOptions& options = {});

/// Table-4 semantics: `lambda_total` bounds the *combined* schedule
/// (detection phase followed by recovery phase) and the split between the
/// phases is free. Tries every split with at least the critical path on
/// each side and returns the best result (plus the winning split).
struct SplitResult {
  OptimizeResult result;
  int lambda_detection = 0;
  int lambda_recovery = 0;
};
[[deprecated(
    "build a SynthesisRequest (RequestKind::kMinimizeTotalLatency, "
    "lambda_total) and call core::synthesize() / SynthesisEngine::run()")]]
SplitResult minimize_cost_total_latency(const ProblemSpec& base,
                                        int lambda_total,
                                        const OptimizerOptions& options = {});

}  // namespace ht::core
