#include "core/csp_solver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <map>
#include <mutex>
#include <unordered_set>

#include "core/rules.hpp"
#include "core/skyline.hpp"
#include "dfg/analysis.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fast_reset.hpp"
#include "util/mask_kernels.hpp"

namespace ht::core {
namespace {

using Clock = std::chrono::steady_clock;

/// Per-solve ceiling on learned nogoods. CBJ keeps working past the cap;
/// only recording stops, so the cap bounds memory without hurting
/// completeness.
constexpr int kLearnCap = 512;

/// Luby restart sequence 1,1,2,1,1,2,4,1,... (1-indexed), iteratively.
long luby(long i) {
  for (;;) {
    long k = 1;
    while (((1l << k) - 1) < i) ++k;
    if (((1l << k) - 1) == i) return 1l << (k - 1);
    i -= (1l << (k - 1)) - 1;
  }
}

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t hash_nogood(const CspNogood& nogood) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const NogoodLit& lit : nogood.lits) {
    mix(static_cast<std::uint64_t>(lit.copy));
    mix(static_cast<std::uint64_t>(lit.vendor));
    mix(static_cast<std::uint64_t>(lit.cycle_lo));
    mix(static_cast<std::uint64_t>(lit.cycle_hi));
  }
  return h;
}

struct CopyMeta {
  CopyKind kind;
  dfg::OpId op;
  int cls;      // resource class index
  int phase;    // 0 = detection, 1 = recovery
  int latency;  // cycles the op occupies its instance
};

/// The root decision level of a solve, precomputed for subtree splitting:
/// which copy the canonical heuristic branches on first and its full
/// (cycle, vendor) value list under the empty assignment. A pure function
/// of spec + palette, so every lane count sees the same decomposition.
struct RootPlan {
  int copy = -1;
  std::vector<std::pair<int, int>> values;  // (cycle, vendor), canonical
  bool infeasible = false;
};

class Search {
 public:
  Search(const ProblemSpec& spec, const Palettes& palettes,
         const CspOptions& options)
      : spec_(spec), options_(options), learning_(options.learning) {
    util::check_spec(
        spec.catalog.num_vendors() <= kMaxVendors,
        "csp: catalog exceeds kMaxVendors (see core/problem.hpp)");
    build_copies();
    build_windows();
    build_conflicts();
    build_palette_masks(palettes);
    const int v = spec.catalog.num_vendors();
    forbid_count_.assign(copies_.size() * static_cast<std::size_t>(v), 0);
    assigned_cycle_.assign(copies_.size(), -1);
    assigned_vendor_.assign(copies_.size(), -1);
    allowed_mask_.resize(copies_.size());
    unassigned_pos_.resize(copies_.size());
    for (std::size_t c = 0; c < copies_.size(); ++c) {
      allowed_mask_[c] =
          palette_mask_[static_cast<std::size_t>(copies_[c].cls)];
      unassigned_pos_[c] = static_cast<int>(c);
      unassigned_.push_back(static_cast<int>(c));
    }
    const std::size_t usage_size =
        2ull * static_cast<std::size_t>(v) * dfg::kNumResourceClasses *
        static_cast<std::size_t>(max_lambda_);
    usage_.assign(usage_size, 0);
    usage_vstride_ = dfg::kNumResourceClasses * max_lambda_;
    peak_.assign(static_cast<std::size_t>(v) * dfg::kNumResourceClasses, 0);
    for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
      class_cap_[static_cast<std::size_t>(cls)] =
          spec.instance_cap(static_cast<dfg::ResourceClass>(cls));
    }
    // The value arena is sized for the deepest possible search up front:
    // dfs holds spans into it across recursive calls, so it must never
    // reallocate mid-search. One contiguous block, depth-major; per-depth
    // capacity is the largest root domain of any copy (windows and masks
    // only ever shrink during search).
    std::size_t value_cap = 0;
    for (std::size_t c = 0; c < copies_.size(); ++c) {
      const std::size_t window = est_[c] <= lst_[c]
                                     ? static_cast<std::size_t>(lst_[c] -
                                                                est_[c] + 1)
                                     : 0;
      const std::size_t vendors = static_cast<std::size_t>(
          __builtin_popcountll(
              palette_mask_[static_cast<std::size_t>(copies_[c].cls)]));
      value_cap = std::max(value_cap, window * vendors);
    }
    value_cap_ = value_cap;
    value_arena_.resize((copies_.size() + 1) * value_cap_);
    for (int i = 0; i < kMaxVendors; ++i) vendor_rank_[i] = i;
    // Packed-representation guards: the flat hot path packs cycles into
    // 15-bit lanes and (degree, copy) into one 40-bit selection key; solves
    // outside those ranges run the legacy machinery (bit-identical either
    // way, so the fallback is silent).
    bool packed_ok = max_lambda_ < util::kSwarCycleLimit &&
                     copies_.size() < (1u << 20);
    for (std::size_t c = 0; packed_ok && c < copies_.size(); ++c) {
      if (degree_[c] > 0xFFFFF) packed_ok = false;
    }
    packed_ok_ = packed_ok;
    flat_sel_ = options.flat_state && packed_ok_;
    if (flat_sel_) {
      select_static_.resize(copies_.size());
      select_key_.resize(copies_.size());
      for (std::size_t c = 0; c < copies_.size(); ++c) {
        select_static_[c] =
            ((0xFFFFFull - static_cast<std::uint64_t>(degree_[c])) << 20) |
            static_cast<std::uint64_t>(c);
        select_key_[c] = select_key_of(c);
      }
    }
    if (learning_) {
      words_ = (copies_.size() + 63) / 64;
      conf_pool_.assign(copies_.size() + 1,
                        util::FastResetBitset(copies_.size()));
      jump_conf_.assign(words_, 0);
      assigned_bits_.assign(words_, 0);
      occ_.assign(usage_size * words_, 0);
      forbid_setter_.assign(forbid_count_.size(), -1);
      est_setter_.assign(copies_.size(), -1);
      lst_setter_.assign(copies_.size(), -1);
      by_copy_.resize(copies_.size());
      if (packed_ok_) by_copy_packed_.resize(copies_.size());
      flat_mode_ = flat_sel_;
      watch_mode_ = !flat_mode_ && options.nogood_watch;
      if (flat_mode_) {
        cnt_buckets_.resize(copies_.size() * kMaxVendors);
        // The trail holds raw pointers into ng_count_; learned nogoods grow
        // it mid-search, so reserve the worst case (imported + learn cap)
        // up front — growth within capacity never reallocates.
        const std::size_t max_nogoods =
            (options.imported != nullptr ? options.imported->size() : 0) +
            static_cast<std::size_t>(kLearnCap);
        ng_count_.reserve(max_nogoods);
        ng_entries_.reserve(max_nogoods);
      }
      if (watch_mode_) {
        watch_buckets_.resize(copies_.size() * kMaxVendors);
        assign_stamp_.assign(copies_.size(), 0);
      }
      if (options.imported != nullptr) {
        for (const CspNogood& nogood : *options.imported) {
          if (!nogood_in_range(nogood)) continue;
          nogood_hashes_.insert(hash_nogood(nogood));
          add_nogood(nogood);
        }
        imported_count_ = static_cast<int>(nogoods_.size());
      }
    }
  }

  void set_internal_cancel(const util::CancelToken* token) {
    internal_cancel_ = token;
  }

  /// Restricts the root decision level to the given value block (subtree
  /// splitting). The solve then proves or refutes "a solution exists with
  /// the root copy taking one of these values" — never a full nogood on the
  /// root copy, so learning is suppressed at depth 0 when a restriction is
  /// active.
  void restrict_root(int copy, std::vector<std::pair<int, int>> values) {
    root_copy_ = copy;
    root_values_ = std::move(values);
    std::sort(root_values_.begin(), root_values_.end());
  }

  RootPlan plan_root() {
    RootPlan plan;
    for (std::size_t c = 0; c < copies_.size(); ++c) {
      if (est_[c] > lst_[c] ||
          palette_mask_[static_cast<std::size_t>(copies_[c].cls)] == 0) {
        plan.infeasible = true;
        return plan;
      }
    }
    const int copy = select_variable();
    if (copy < 0) return plan;  // no variables: trivially solvable
    plan.copy = copy;
    const ValueSpan values = enumerate_values(copy, 0, nullptr);
    for (const Value& value : values) {
      plan.values.emplace_back(value.cycle, value.vendor);
    }
    return plan;
  }

  CspResult run() {
    CspResult result;
    deadline_ = Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        options_.time_limit_seconds));
    // Static infeasibility: a copy with an empty window or empty palette.
    for (std::size_t c = 0; c < copies_.size(); ++c) {
      if (est_[c] > lst_[c] ||
          palette_mask_[static_cast<std::size_t>(copies_[c].cls)] == 0) {
        result.status = CspResult::Status::kInfeasible;
        return result;
      }
    }
    Outcome outcome;
    for (;;) {
      segment_limit_ =
          options_.restart_base > 0
              ? nodes_ + options_.restart_base * luby(segment_index_ + 1)
              : 0;
      outcome = dfs(0);
      if (outcome != Outcome::kRestart) break;
      // A restart keeps every learned nogood; only the descent order
      // changes (seed-dependent vendor preference for the next segment).
      ++restarts_;
      ++segment_index_;
      apply_rotation();
    }
    result.nodes = nodes_;
    result.backjumps = backjumps_;
    result.restarts = restarts_;
    result.watch_visits = watch_visits_;
    switch (outcome) {
      case Outcome::kSolved:
        result.status = CspResult::Status::kFeasible;
        result.solution = extract_solution();
        break;
      case Outcome::kExhausted:
        result.status = CspResult::Status::kInfeasible;
        break;
      case Outcome::kNodeLimit:
        result.status = CspResult::Status::kNodeLimit;
        break;
      case Outcome::kTimeout:
        result.status = CspResult::Status::kTimeout;
        break;
      case Outcome::kCancelled:
        result.status = CspResult::Status::kCancelled;
        break;
      case Outcome::kRestart:
        util::check_internal(false, "csp: restart escaped the run loop");
        break;
    }
    // Export what this solve learned — but only for outcomes whose
    // truncation point is deterministic. A timeout or cancellation stops at
    // a wall-clock-dependent node, so its nogood set must never leak into
    // state that is replayed deterministically.
    if (result.status == CspResult::Status::kFeasible ||
        result.status == CspResult::Status::kInfeasible ||
        result.status == CspResult::Status::kNodeLimit) {
      result.learned.assign(
          nogoods_.begin() + imported_count_, nogoods_.end());
    }
    // One aggregated sample per solve: count covers every blocking check,
    // duration extrapolates the 1-in-64 clocked subset (see assign()).
    if (record_obs_ && ng_checks_ > 0) {
      obs::record_stage(obs::Stage::kNogoodPropagation, ng_sampled_ns_ * 64,
                        ng_checks_);
    }
    return result;
  }

 private:
  enum class Outcome {
    kSolved,
    kExhausted,
    kNodeLimit,
    kTimeout,
    kCancelled,
    kRestart,
  };

  // ---- model construction ---------------------------------------------
  void build_copies() {
    const int n = spec_.graph.num_ops();
    std::vector<CopyKind> kinds = {CopyKind::kNormal, CopyKind::kRedundant};
    if (spec_.with_recovery) kinds.push_back(CopyKind::kRecovery);
    for (CopyKind kind : kinds) {
      for (dfg::OpId op = 0; op < n; ++op) {
        const int cls = static_cast<int>(
            dfg::resource_class_of(spec_.graph.op(op).type));
        const int phase = kind == CopyKind::kRecovery ? 1 : 0;
        copy_of_[{kind, op}] = static_cast<int>(copies_.size());
        copies_.push_back(
            CopyMeta{kind, op, cls, phase, spec_.op_latency(op)});
      }
    }
    max_lambda_ = std::max(spec_.lambda_detection,
                           spec_.with_recovery ? spec_.lambda_recovery : 0);
  }

  void build_windows() {
    const std::vector<int> latencies = spec_.op_latencies();
    const std::vector<int> asap = dfg::asap_levels(spec_.graph, latencies);
    const std::vector<int> alap_det =
        dfg::alap_levels(spec_.graph, spec_.lambda_detection, latencies);
    std::vector<int> alap_rec;
    if (spec_.with_recovery) {
      alap_rec =
          dfg::alap_levels(spec_.graph, spec_.lambda_recovery, latencies);
    }
    est_.resize(copies_.size());
    lst_.resize(copies_.size());
    for (std::size_t c = 0; c < copies_.size(); ++c) {
      const CopyMeta& meta = copies_[c];
      est_[c] = asap[static_cast<std::size_t>(meta.op)];
      lst_[c] = meta.phase == 0
                    ? alap_det[static_cast<std::size_t>(meta.op)]
                    : alap_rec[static_cast<std::size_t>(meta.op)];
    }
    // Same-schedule dependence neighbors.
    parents_.resize(copies_.size());
    children_.resize(copies_.size());
    for (std::size_t c = 0; c < copies_.size(); ++c) {
      const CopyMeta& meta = copies_[c];
      for (dfg::OpId parent : spec_.graph.parents(meta.op)) {
        parents_[c].push_back(copy_of_.at({meta.kind, parent}));
      }
      for (dfg::OpId child : spec_.graph.children(meta.op)) {
        children_[c].push_back(copy_of_.at({meta.kind, child}));
      }
    }
  }

  void build_conflicts() {
    neighbors_.resize(copies_.size());
    for (const VendorConflict& conflict : vendor_conflicts(spec_)) {
      const int a = copy_of_.at(conflict.a);
      const int b = copy_of_.at(conflict.b);
      neighbors_[static_cast<std::size_t>(a)].push_back(b);
      neighbors_[static_cast<std::size_t>(b)].push_back(a);
    }
    degree_.resize(copies_.size());
    for (std::size_t c = 0; c < copies_.size(); ++c) {
      degree_[c] = static_cast<int>(neighbors_[c].size() +
                                    parents_[c].size() + children_[c].size());
    }
  }

  void build_palette_masks(const Palettes& palettes) {
    for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
      std::uint64_t mask = 0;
      for (vendor::VendorId v : palettes[static_cast<std::size_t>(cls)]) {
        util::check_spec(
            spec_.catalog.offers(v, static_cast<dfg::ResourceClass>(cls)),
            "csp: palette vendor does not offer the class");
        mask |= 1ull << v;
      }
      palette_mask_[static_cast<std::size_t>(cls)] = mask;
      for (vendor::VendorId v = 0; v < spec_.catalog.num_vendors(); ++v) {
        if (mask & (1ull << v)) {
          offer_area_[static_cast<std::size_t>(cls)][static_cast<std::size_t>(
              v)] =
              spec_.catalog.offer(v, static_cast<dfg::ResourceClass>(cls))
                  .area;
        }
      }
    }
  }

  // ---- state access -----------------------------------------------------
  std::size_t usage_index(int phase, int v, int cls, int cycle) const {
    return ((static_cast<std::size_t>(phase) *
                 static_cast<std::size_t>(spec_.catalog.num_vendors()) +
             static_cast<std::size_t>(v)) *
                dfg::kNumResourceClasses +
            static_cast<std::size_t>(cls)) *
               static_cast<std::size_t>(max_lambda_) +
           static_cast<std::size_t>(cycle - 1);
  }
  int& usage(int phase, int v, int cls, int cycle) {
    return usage_[usage_index(phase, v, cls, cycle)];
  }
  /// Index of cycle 1 of the contiguous (phase, vendor, class) usage row.
  std::size_t usage_row_index(int phase, int v, int cls) const {
    return (static_cast<std::size_t>(phase) *
                static_cast<std::size_t>(spec_.catalog.num_vendors()) +
            static_cast<std::size_t>(v)) *
               dfg::kNumResourceClasses *
               static_cast<std::size_t>(max_lambda_) +
           static_cast<std::size_t>(cls) *
               static_cast<std::size_t>(max_lambda_);
  }
  int& peak(int v, int cls) {
    return peak_[static_cast<std::size_t>(v) * dfg::kNumResourceClasses +
                 static_cast<std::size_t>(cls)];
  }
  int& forbid_count(int copy, int v) {
    return forbid_count_[static_cast<std::size_t>(copy) *
                             static_cast<std::size_t>(
                                 spec_.catalog.num_vendors()) +
                         static_cast<std::size_t>(v)];
  }
  int& forbid_setter(int copy, int v) {
    return forbid_setter_[static_cast<std::size_t>(copy) *
                              static_cast<std::size_t>(
                                  spec_.catalog.num_vendors()) +
                          static_cast<std::size_t>(v)];
  }

  // ---- conflict-set bitsets --------------------------------------------
  // Per-depth conflict sets are version-stamped fast-reset bitsets (see
  // util/fast_reset.hpp): dfs clears one per node, so the O(1) stamped
  // reset replaces a words-long memset on the hottest path. jump_conf_ and
  // assigned_bits_ stay plain word vectors — the trail holds raw pointers
  // into assigned_bits_, which stamping would invalidate.
  using Conf = util::FastResetBitset;
  using ConfWords = std::vector<std::uint64_t>;

  static void conf_set(ConfWords& conf, int copy) {
    conf[static_cast<std::size_t>(copy) >> 6] |= 1ull << (copy & 63);
  }
  static void conf_clear_bit(ConfWords& conf, int copy) {
    conf[static_cast<std::size_t>(copy) >> 6] &= ~(1ull << (copy & 63));
  }
  static bool conf_test(const ConfWords& conf, int copy) {
    return (conf[static_cast<std::size_t>(copy) >> 6] >> (copy & 63)) & 1u;
  }

  /// ORs the occupier set of one usage cell into the conflict set: the
  /// copies currently occupying (phase, vendor, class, cycle). Exact
  /// culprits for a per-instance-cap overflow at that cell.
  void conf_add_cell(Conf& conf, int phase, int v, int cls, int cycle) {
    const std::size_t base = usage_index(phase, v, cls, cycle) * words_;
    for (std::size_t w = 0; w < words_; ++w) {
      conf.word_ref(w) |= occ_[base + w];
    }
  }

  /// ORs every currently assigned copy into the conflict set, minus `self`.
  /// Conservative culprits for an area-bound overflow: peaks are a running
  /// aggregate whose contributors alone do not reproduce the failure (a
  /// non-contributor can occupy the cell a later contributor raised), so
  /// only the full assignment is a sound explanation.
  void conf_add_all_assigned(Conf& conf, int self) {
    for (std::size_t w = 0; w < words_; ++w) {
      conf.word_ref(w) |= assigned_bits_[w];
    }
    conf.clear(static_cast<std::size_t>(self));
  }

  /// Seeds the conflict set with the assigned copies responsible for the
  /// *current domain* of `copy` being smaller than its static domain:
  /// whoever tightened its window and whoever forbade each palette vendor
  /// missing from its live mask. Values outside the static domain need no
  /// culprit — their exclusion is unconditional.
  void seed_domain_culprits(int copy, Conf& conf) {
    const std::size_t cs = static_cast<std::size_t>(copy);
    if (est_setter_[cs] >= 0) conf.set(static_cast<std::size_t>(est_setter_[cs]));
    if (lst_setter_[cs] >= 0) conf.set(static_cast<std::size_t>(lst_setter_[cs]));
    const std::uint64_t missing =
        palette_mask_[static_cast<std::size_t>(copies_[cs].cls)] &
        ~allowed_mask_[cs];
    for (std::uint64_t bits = missing; bits != 0; bits &= bits - 1) {
      const int v = __builtin_ctzll(bits);
      const int setter = forbid_setter(copy, v);
      if (setter >= 0) conf.set(static_cast<std::size_t>(setter));
    }
  }

  // ---- nogoods ----------------------------------------------------------
  bool nogood_in_range(const CspNogood& nogood) const {
    for (const NogoodLit& lit : nogood.lits) {
      if (lit.copy < 0 || lit.copy >= static_cast<int>(copies_.size())) {
        return false;
      }
    }
    return !nogood.lits.empty();
  }

  /// Packs one literal for the by-copy prefilter: vendor in the high word,
  /// cycle range below. Ranges that stick out of the 15-bit cycle domain
  /// are clamped conservatively — the prefilter may pass such an entry to
  /// the full check but never rejects a live one.
  static std::uint64_t pack_lit(const NogoodLit& lit) {
    const int lo = std::min(lit.cycle_lo, util::kSwarCycleLimit - 1);
    const int hi = std::min(lit.cycle_hi, util::kSwarCycleLimit - 1);
    const std::uint32_t range = lo <= hi ? util::pack_cycle_range(lo, hi)
                                         : util::pack_cycle_range(1, 0);
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                lit.vendor))
            << 32) |
           range;
  }

  void add_nogood(const CspNogood& nogood) {
    const int id = static_cast<int>(nogoods_.size());
    nogoods_.push_back(nogood);
    for (const NogoodLit& lit : nogoods_.back().lits) {
      by_copy_[static_cast<std::size_t>(lit.copy)].push_back(id);
      if (packed_ok_) {
        by_copy_packed_[static_cast<std::size_t>(lit.copy)].push_back(
            pack_lit(lit));
      }
    }
    if (watch_mode_) watch_nogood(id);
    if (flat_mode_) index_counters(id);
  }

  // ---- true-literal-counter nogood index (flat mode) --------------------
  // Per nogood, ng_count_ tracks (an upper bound on) how many of its
  // literals currently hold. Assignments bump the count through static
  // per-(copy, vendor) buckets of packed cycle ranges, trailed like every
  // other search write; a candidate completes the nogood only if the count
  // already covers every literal outside the candidate's copy, so the
  // check is one bucket scan of branch-free range compares instead of the
  // watched-literal index's move-and-requeue churn. When a bucket entry
  // claims completion the solver re-derives the verdict with the reference
  // scan, keeping conflict sets — and the whole search tree — bit-identical
  // to scan mode.
  //
  // Counts may run STALE-HIGH, never stale-low: a learned nogood is born
  // with its literals in force, and when those older assignments rewind,
  // the trail (recorded before the nogood existed) cannot decrement its
  // baseline. A stale-high count costs a false completion claim, which the
  // reference scan refutes and repair_count() then corrects; soundness only
  // needs count >= true-literal count, which increments, rewinds and
  // repairs all preserve.

  struct CntRef {
    std::uint32_t range = 0;  // packed [lo, hi] the entry's group accepts
    std::int32_t id = 0;      // nogood id
    std::int32_t inc = 0;     // literals the group contributes when true
    std::int32_t needs = 0;   // count needed from the *other* copies
  };
  struct GroupRef {
    std::int32_t copy = 0;
    std::int32_t inc = 0;
  };

  /// Buckets a fresh nogood's literals by copy and seeds its true-count
  /// from the current assignment. A group (all literals on one copy) gets
  /// an entry only if a single assignment can make it fully true — one
  /// vendor, non-empty intersected range inside the packed cycle domain;
  /// groups that can never hold keep the nogood unfireable and need no
  /// entry.
  void index_counters(int id) {
    const CspNogood& ng = nogoods_[static_cast<std::size_t>(id)];
    const int n = static_cast<int>(ng.lits.size());
    ng_count_.resize(static_cast<std::size_t>(id) + 1, 0);
    ng_entries_.resize(static_cast<std::size_t>(id) + 1);
    int count = 0;
    for (int i = 0; i < n; ++i) {
      const int c = ng.lits[static_cast<std::size_t>(i)].copy;
      bool first = true;
      for (int j = 0; j < i; ++j) {
        if (ng.lits[static_cast<std::size_t>(j)].copy == c) {
          first = false;
          break;
        }
      }
      if (!first) continue;
      const int vend = ng.lits[static_cast<std::size_t>(i)].vendor;
      int k = 0;
      int lo = 1;
      int hi = util::kSwarCycleLimit - 1;
      bool one_vendor = true;
      bool all_true = true;
      for (int j = 0; j < n; ++j) {
        const NogoodLit& lit = ng.lits[static_cast<std::size_t>(j)];
        if (lit.copy != c) continue;
        ++k;
        if (lit.vendor != vend) one_vendor = false;
        lo = std::max(lo, lit.cycle_lo);
        hi = std::min(hi, lit.cycle_hi);
        if (!lit_true(lit)) all_true = false;
      }
      if (!one_vendor || lo > hi) continue;
      cnt_buckets_[bucket_index(c, vend)].push_back(
          CntRef{util::pack_cycle_range(lo, hi), id, k, n - k});
      ng_entries_[static_cast<std::size_t>(id)].push_back(GroupRef{c, k});
      if (all_true) count += k;
    }
    ng_count_[static_cast<std::size_t>(id)] = count;
  }

  /// Recomputes one nogood's true-count from scratch after a false
  /// completion claim exposed it as stale-high. Untrailed on purpose: any
  /// value the trail later restores was itself >= the true count at its
  /// snapshot, so the soundness invariant survives the mix.
  void repair_count(int id) {
    const CspNogood& ng = nogoods_[static_cast<std::size_t>(id)];
    int count = 0;
    for (const GroupRef& group : ng_entries_[static_cast<std::size_t>(id)]) {
      bool all_true = true;
      for (const NogoodLit& lit : ng.lits) {
        if (lit.copy == group.copy && !lit_true(lit)) {
          all_true = false;
          break;
        }
      }
      if (all_true) count += group.inc;
    }
    ng_count_[static_cast<std::size_t>(id)] = count;
  }

  /// All literals of `id` hold under the current assignment extended by
  /// the candidate — the reference scan's per-nogood check, extracted so
  /// counter claims can be verified without scanning the whole by-copy
  /// list.
  bool nogood_fires(int id, int copy, int cycle, int v) const {
    for (const NogoodLit& lit : nogoods_[static_cast<std::size_t>(id)].lits) {
      if (!lit_true_under(lit, copy, cycle, v)) return false;
    }
    return true;
  }

  /// Counter-mode counterpart of watched_blocks(): scans the candidate's
  /// (copy, vendor) bucket; an entry whose range holds the candidate cycle
  /// and whose count already covers the other copies claims a completion.
  /// Each claim is verified against the nogood's own literals (<= 4 of
  /// them) — every nogood that truly fires on this candidate has a
  /// claiming entry here, and entries sit in id order, so the first
  /// verified claim IS the reference scan's verdict: same nogood, same
  /// conflict set, bit for bit.
  bool counter_blocks(int copy, int cycle, int v, Conf* conf) {
    const std::vector<CntRef>& bucket = cnt_buckets_[bucket_index(copy, v)];
    for (const CntRef& ref : bucket) {
      ++watch_visits_;
      if (!util::packed_range_contains(ref.range, cycle)) continue;
      if (ng_count_[static_cast<std::size_t>(ref.id)] < ref.needs) continue;
      if (nogood_fires(ref.id, copy, cycle, v)) {
        if (conf != nullptr) {
          for (const NogoodLit& lit :
               nogoods_[static_cast<std::size_t>(ref.id)].lits) {
            if (lit.copy != copy) conf->set(static_cast<std::size_t>(lit.copy));
          }
        }
        return true;
      }
      // A refuted claim means the count ran stale-high. Cool it off so the
      // bucket does not stay permanently hot.
      repair_count(ref.id);
    }
    return false;
  }

  // ---- two-watched-literal nogood index ---------------------------------
  // Each nogood watches two of its literals; a bucket per (copy, vendor)
  // holds the watches whose literal a candidate assignment on that pair
  // could make TRUE. Invariant: while a nogood has >= 2 non-TRUE literals,
  // both watches point at non-TRUE literals; with exactly one non-TRUE
  // literal, that literal is watched (and the other watch, if TRUE, became
  // TRUE after every non-watched literal, so the LIFO trail un-TRUEs it
  // first on backtracking). The invariant guarantees every completion —
  // "all literals except the candidate's already hold" — is caught at a
  // watch, where the solver falls back to the reference scan so the
  // reported conflict set (and hence the whole search tree) is
  // bit-identical to scan mode.

  std::size_t bucket_index(int copy, int v) const {
    return static_cast<std::size_t>(copy) * kMaxVendors +
           static_cast<std::size_t>(v);
  }

  /// True under the current assignment.
  bool lit_true(const NogoodLit& lit) const {
    const std::size_t ls = static_cast<std::size_t>(lit.copy);
    const int ac = assigned_cycle_[ls];
    return ac >= 0 && assigned_vendor_[ls] == lit.vendor &&
           ac >= lit.cycle_lo && ac <= lit.cycle_hi;
  }

  /// True under the current assignment extended by the candidate
  /// copy := (cycle, v). The candidate's copy is unassigned at check time,
  /// so its literals are decided by the candidate alone.
  bool lit_true_under(const NogoodLit& lit, int copy, int cycle,
                      int v) const {
    if (lit.copy == copy) {
      return lit.vendor == v && cycle >= lit.cycle_lo &&
             cycle <= lit.cycle_hi;
    }
    return lit_true(lit);
  }

  void enqueue_watch(int id, int slot, int li) {
    const NogoodLit& lit =
        nogoods_[static_cast<std::size_t>(id)].lits[static_cast<std::size_t>(li)];
    watch_buckets_[bucket_index(lit.copy, lit.vendor)].push_back(
        WatchRef{id, slot, li});
  }

  /// Picks initial watches for a freshly stored nogood. Priority: non-TRUE
  /// literals first (they keep the nogood quiescent), then TRUE literals by
  /// deepest assignment stamp. Imported nogoods arrive before any
  /// assignment and watch their first two literals; learned nogoods are
  /// born with every literal TRUE (they record the conflicting assignments
  /// in force) and watch the two deepest — the LIFO trail un-assigns those
  /// first, so by the time the nogood can fire again its non-TRUE literals
  /// are exactly its watches.
  void watch_nogood(int id) {
    const CspNogood& ng = nogoods_[static_cast<std::size_t>(id)];
    const int n = static_cast<int>(ng.lits.size());
    const auto key = [&](int li) {
      const NogoodLit& lit = ng.lits[static_cast<std::size_t>(li)];
      return lit_true(lit)
                 ? assign_stamp_[static_cast<std::size_t>(lit.copy)]
                 : std::numeric_limits<long>::max();
    };
    int w0 = 0;
    for (int li = 1; li < n; ++li) {
      if (key(li) > key(w0)) w0 = li;
    }
    int w1 = -1;
    for (int li = 0; li < n; ++li) {
      if (li == w0) continue;
      if (w1 < 0 || key(li) > key(w1)) w1 = li;
    }
    watch_lit_.resize(static_cast<std::size_t>(id) + 1,
                      std::array<int, 2>{-1, -1});
    watch_lit_[static_cast<std::size_t>(id)] = {w0, w1};
    enqueue_watch(id, 0, w0);
    if (w1 >= 0) enqueue_watch(id, 1, w1);
  }

  /// Watched-literal counterpart of nogood_blocks(): visits only the
  /// watches bucketed under (copy, v). Watch moves are never undone on
  /// backtracking — the invariant above survives rewinds because literals
  /// un-TRUE in reverse assignment order.
  bool watched_blocks(int copy, int cycle, int v, Conf* conf) {
    std::vector<WatchRef>& bucket = watch_buckets_[bucket_index(copy, v)];
    for (std::size_t i = 0; i < bucket.size();) {
      const WatchRef ref = bucket[i];
      const std::size_t id = static_cast<std::size_t>(ref.id);
      if (watch_lit_[id][static_cast<std::size_t>(ref.slot)] != ref.li) {
        // The watch moved on; its old bucket entry is deleted lazily.
        bucket[i] = bucket.back();
        bucket.pop_back();
        continue;
      }
      ++watch_visits_;
      const CspNogood& ng = nogoods_[id];
      const NogoodLit& self = ng.lits[static_cast<std::size_t>(ref.li)];
      if (cycle < self.cycle_lo || cycle > self.cycle_hi) {
        ++i;
        continue;
      }
      // The candidate makes this watch TRUE: move it to a literal the
      // candidate leaves non-TRUE, if any.
      const int other = watch_lit_[id][static_cast<std::size_t>(1 - ref.slot)];
      int replacement = -1;
      for (int li = 0; li < static_cast<int>(ng.lits.size()); ++li) {
        if (li == ref.li || li == other) continue;
        if (!lit_true_under(ng.lits[static_cast<std::size_t>(li)], copy,
                            cycle, v)) {
          replacement = li;
          break;
        }
      }
      if (replacement >= 0) {
        watch_lit_[id][static_cast<std::size_t>(ref.slot)] = replacement;
        enqueue_watch(ref.id, ref.slot, replacement);
        bucket[i] = bucket.back();
        bucket.pop_back();
        continue;
      }
      if (other < 0 ||
          lit_true_under(ng.lits[static_cast<std::size_t>(other)], copy,
                         cycle, v)) {
        // Every other literal holds under the candidate: some stored
        // nogood fires. Re-derive the verdict with the reference scan so
        // the conflict set is bit-identical to scan mode (first fired
        // nogood in id order).
        return nogood_blocks(copy, cycle, v, conf);
      }
      // Unit: the other watch is the lone literal the candidate leaves
      // non-TRUE and stays watched, so the completion is caught when its
      // own copy is tried.
      ++i;
    }
    return false;
  }

  /// Records the current wipeout explanation as a nogood if it is small
  /// enough to be worth checking: the conjunction of the culprits' current
  /// assignments admits no solution. Sound because the wipeout of the
  /// current variable was derived from exactly those assignments.
  void maybe_learn(const Conf& conf) {
    if (learned_count_ >= kLearnCap) return;
    const int size = conf.popcount();
    if (size < 1 || size > 4) return;
    CspNogood nogood;
    nogood.lits.reserve(static_cast<std::size_t>(size));
    for (std::size_t w = 0; w < words_; ++w) {
      for (std::uint64_t bits = conf.word_value(w); bits != 0;
           bits &= bits - 1) {
        const int c = static_cast<int>(w * 64) + __builtin_ctzll(bits);
        const std::size_t cs = static_cast<std::size_t>(c);
        if (assigned_cycle_[cs] < 0) return;  // culprit must be assigned
        nogood.lits.push_back(NogoodLit{c, assigned_vendor_[cs],
                                        assigned_cycle_[cs],
                                        assigned_cycle_[cs]});
      }
    }
    if (!nogood_hashes_.insert(hash_nogood(nogood)).second) return;
    add_nogood(nogood);
    ++learned_count_;
  }

  /// True iff assigning copy := (cycle, v) would complete some stored
  /// nogood (every other literal already holds). Adds the other literals'
  /// copies to the conflict set: their assignments are what rules this
  /// value out.
  bool nogood_blocks(int copy, int cycle, int v, Conf* conf) const {
    const std::vector<int>& ids = by_copy_[static_cast<std::size_t>(copy)];
    const std::uint64_t* packed =
        packed_ok_ ? by_copy_packed_[static_cast<std::size_t>(copy)].data()
                   : nullptr;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (packed != nullptr) {
        // Branch-free reject on the literal that put this id in the
        // by-copy list: if the candidate does not even satisfy that
        // literal, the full check below would fail at it anyway.
        const std::uint64_t p = packed[i];
        if (static_cast<int>(p >> 32) != v ||
            !util::packed_range_contains(static_cast<std::uint32_t>(p),
                                         cycle)) {
          continue;
        }
      }
      const int id = ids[i];
      const CspNogood& nogood = nogoods_[static_cast<std::size_t>(id)];
      bool fired = true;
      for (const NogoodLit& lit : nogood.lits) {
        if (lit.copy == copy) {
          if (lit.vendor != v || cycle < lit.cycle_lo ||
              cycle > lit.cycle_hi) {
            fired = false;
            break;
          }
        } else {
          const std::size_t ls = static_cast<std::size_t>(lit.copy);
          const int ac = assigned_cycle_[ls];
          if (ac < 0 || assigned_vendor_[ls] != lit.vendor ||
              ac < lit.cycle_lo || ac > lit.cycle_hi) {
            fired = false;
            break;
          }
        }
      }
      if (fired) {
        if (conf != nullptr) {
          for (const NogoodLit& lit : nogood.lits) {
            if (lit.copy != copy) {
              conf->set(static_cast<std::size_t>(lit.copy));
            }
          }
        }
        return true;
      }
    }
    return false;
  }

  // ---- trail / undo -----------------------------------------------------
  void record(int* slot) { trail_.emplace_back(slot, *slot); }
  void record_ll(long long* slot) { trail_ll_.emplace_back(slot, *slot); }
  void record_u64(std::uint64_t* slot) {
    trail_u64_.emplace_back(slot, *slot);
  }

  struct Mark {
    std::size_t trail;
    std::size_t trail_ll;
    std::size_t trail_u64;
  };
  Mark mark() const {
    return {trail_.size(), trail_ll_.size(), trail_u64_.size()};
  }
  void rewind(Mark m) {
    while (trail_.size() > m.trail) {
      auto [slot, old] = trail_.back();
      trail_.pop_back();
      *slot = old;
    }
    while (trail_ll_.size() > m.trail_ll) {
      auto [slot, old] = trail_ll_.back();
      trail_ll_.pop_back();
      *slot = old;
    }
    while (trail_u64_.size() > m.trail_u64) {
      auto [slot, old] = trail_u64_.back();
      trail_u64_.pop_back();
      *slot = old;
    }
  }

  // ---- assignment -------------------------------------------------------
  /// Applies copy := (cycle, vendor). Returns false on an immediate dead
  /// end (caller must rewind to its mark). With learning on, `conf`
  /// collects the assigned copies responsible for the failure — a set
  /// whose assignments alone already rule this value out.
  bool assign(int copy, int cycle, int v, Conf* conf) {
    // Stored nogoods are checked before any trail writes, so a blocked
    // value costs no rewind.
    if (learning_) {
      // Nogood-propagation metrics: this check is far too hot for a clock
      // read per call, so count every check and time one in 64 (the
      // counter, not the clock, picks the samples — deterministic). The
      // per-solve total is extrapolated in run().
      bool blocked;
      if (record_obs_ && (ng_checks_++ & 63) == 0) {
        const std::int64_t t0 = obs::metrics_now_ns();
        blocked = flat_mode_ ? counter_blocks(copy, cycle, v, conf)
                  : watch_mode_ ? watched_blocks(copy, cycle, v, conf)
                                : nogood_blocks(copy, cycle, v, conf);
        ng_sampled_ns_ += obs::metrics_now_ns() - t0;
      } else {
        blocked = flat_mode_ ? counter_blocks(copy, cycle, v, conf)
                  : watch_mode_ ? watched_blocks(copy, cycle, v, conf)
                                : nogood_blocks(copy, cycle, v, conf);
      }
      if (blocked) return false;
    }

    const CopyMeta& meta = copies_[static_cast<std::size_t>(copy)];
    record(&assigned_cycle_[static_cast<std::size_t>(copy)]);
    record(&assigned_vendor_[static_cast<std::size_t>(copy)]);
    assigned_cycle_[static_cast<std::size_t>(copy)] = cycle;
    assigned_vendor_[static_cast<std::size_t>(copy)] = v;
    // Stamps are not trailed: they are only read for assigned copies, and
    // the counter stays monotone across rewinds.
    if (watch_mode_) {
      assign_stamp_[static_cast<std::size_t>(copy)] = ++stamp_counter_;
    }
    if (learning_) {
      std::uint64_t& word = assigned_bits_[static_cast<std::size_t>(copy) >> 6];
      record_u64(&word);
      word |= 1ull << (copy & 63);
    }
    // Flat mode: bump the true-literal counters this assignment satisfies.
    // Trailed like every other write, so rewinds keep counts exact for any
    // nogood that existed when the assignment committed.
    if (flat_mode_) {
      for (const CntRef& ref : cnt_buckets_[bucket_index(copy, v)]) {
        if (util::packed_range_contains(ref.range, cycle)) {
          int& count = ng_count_[static_cast<std::size_t>(ref.id)];
          record(&count);
          count += ref.inc;
        }
      }
    }

    // Resource usage / peak / area, over the whole occupancy interval. The
    // usage row for (phase, vendor, class) is one contiguous cycle-indexed
    // skyline row; assignments are O(latency) deltas on it and the value
    // loop below queries it through the shared row_peak kernel.
    const std::size_t cell0 = usage_row_index(meta.phase, v, meta.cls);
    int* const row = usage_.data() + cell0;
    for (int busy = cycle; busy < cycle + meta.latency; ++busy) {
      int& use = row[busy - 1];
      record(&use);
      ++use;
      int& pk = peak(v, meta.cls);
      if (use > pk) {
        if (use > class_cap_[static_cast<std::size_t>(meta.cls)]) {
          // The previous occupiers of this cell alone overflow the cap
          // with us; our own occ bit for this cell is not yet set.
          if (conf != nullptr) {
            conf_add_cell(*conf, meta.phase, v, meta.cls, busy);
          }
          return false;
        }
        record(&pk);
        pk = use;
        record_ll(&area_committed_);
        area_committed_ +=
            offer_area_[static_cast<std::size_t>(meta.cls)]
                       [static_cast<std::size_t>(v)];
        if (area_committed_ > spec_.area_limit) {
          if (conf != nullptr) conf_add_all_assigned(*conf, copy);
          return false;
        }
      }
      if (learning_) {
        std::uint64_t& word =
            occ_[(cell0 + static_cast<std::size_t>(busy - 1)) * words_ +
                 (static_cast<std::size_t>(copy) >> 6)];
        record_u64(&word);
        word |= 1ull << (copy & 63);
      }
    }

    // Vendor-diversity propagation. The per-copy allowed mask is maintained
    // incrementally: it loses bit v exactly when the forbid count for
    // (copy, v) transitions 0 -> 1, and the trail restores it on rewind —
    // no O(vendors) rescan per propagation or per select/enumerate.
    for (int nb : neighbors_[static_cast<std::size_t>(copy)]) {
      if (assigned_vendor_[static_cast<std::size_t>(nb)] == v) {
        if (conf != nullptr) conf->set(static_cast<std::size_t>(nb));
        return false;
      }
      if (assigned_vendor_[static_cast<std::size_t>(nb)] >= 0) continue;
      int& count = forbid_count(nb, v);
      record(&count);
      ++count;
      if (count == 1) {
        if (learning_) {
          int& setter = forbid_setter(nb, v);
          record(&setter);
          setter = copy;
        }
        std::uint64_t& mask = allowed_mask_[static_cast<std::size_t>(nb)];
        record_u64(&mask);
        mask &= ~(1ull << v);
        if (flat_sel_) {
          std::uint64_t& key = select_key_[static_cast<std::size_t>(nb)];
          record_u64(&key);
          key = select_key_of(static_cast<std::size_t>(nb));
        }
        if (mask == 0) {
          // Every palette vendor of nb is forbidden; the first forbidder
          // of each vendor (excluding us) plus us make the wipeout.
          if (conf != nullptr) {
            const std::uint64_t palette =
                palette_mask_[static_cast<std::size_t>(
                    copies_[static_cast<std::size_t>(nb)].cls)];
            for (std::uint64_t bits = palette; bits != 0; bits &= bits - 1) {
              const int v2 = __builtin_ctzll(bits);
              const int setter = forbid_setter(nb, v2);
              if (setter >= 0 && setter != copy) {
                conf->set(static_cast<std::size_t>(setter));
              }
            }
          }
          return false;
        }
      }
    }

    // Dependence window propagation within the same schedule: children may
    // start once this op finishes; parents must have finished before this
    // op starts.
    for (int child : children_[static_cast<std::size_t>(copy)]) {
      const std::size_t ch = static_cast<std::size_t>(child);
      if (est_[ch] < cycle + meta.latency) {
        record(&est_[ch]);
        est_[ch] = cycle + meta.latency;
        if (flat_sel_) {
          record_u64(&select_key_[ch]);
          select_key_[ch] = select_key_of(ch);
        }
        if (learning_) {
          record(&est_setter_[ch]);
          est_setter_[ch] = copy;
        }
        if (est_[ch] > lst_[ch]) {
          // Window wipeout: we raised est; whoever lowered lst (if anyone)
          // shares the blame.
          if (conf != nullptr && learning_ && lst_setter_[ch] >= 0 &&
              lst_setter_[ch] != copy) {
            conf->set(static_cast<std::size_t>(lst_setter_[ch]));
          }
          return false;
        }
      }
    }
    for (int parent : parents_[static_cast<std::size_t>(copy)]) {
      const std::size_t pa = static_cast<std::size_t>(parent);
      const int parent_latency = copies_[pa].latency;
      if (lst_[pa] > cycle - parent_latency) {
        record(&lst_[pa]);
        lst_[pa] = cycle - parent_latency;
        if (flat_sel_) {
          record_u64(&select_key_[pa]);
          select_key_[pa] = select_key_of(pa);
        }
        if (learning_) {
          record(&lst_setter_[pa]);
          lst_setter_[pa] = copy;
        }
        if (est_[pa] > lst_[pa]) {
          if (conf != nullptr && learning_ && est_setter_[pa] >= 0 &&
              est_setter_[pa] != copy) {
            conf->set(static_cast<std::size_t>(est_setter_[pa]));
          }
          return false;
        }
      }
    }
    return true;
  }

  // ---- search -----------------------------------------------------------
  // Only unassigned copies live in unassigned_ (swap-remove on descent,
  // exact inverse on backtrack), so variable selection never rescans
  // assigned copies. The comparator is order-independent — (score asc,
  // degree desc, copy id asc) — and reproduces the historical first-seen
  // tie-breaking of the ascending full scan exactly.
  /// Packed selection key: score:24 | (2^20-1 - degree):20 | copy:20,
  /// ordering by exactly (score asc, degree desc, copy asc). Maintained
  /// incrementally in select_key_ — recomputed (and trailed) at the three
  /// assign-time sites that change est/lst/allowed — so the per-node argmin
  /// is a pure min-scan of precomputed keys. A wipeout makes the window
  /// momentarily negative and the key garbage, but assign fails and the
  /// caller rewinds before any select can read it.
  std::uint64_t select_key_of(std::size_t cs) const {
    const std::uint64_t score =
        static_cast<std::uint64_t>(lst_[cs] - est_[cs] + 1) *
        static_cast<std::uint64_t>(__builtin_popcountll(allowed_mask_[cs]));
    return (score << 40) | select_static_[cs];
  }

  int select_variable() const {
    if (flat_sel_) {
      // Copies are unique per key, so the minimum key names the same
      // variable the legacy comparator picks, with no branches in the
      // loop. The construction-time guards behind flat_sel_ keep every
      // field in range.
      std::uint64_t best_key = ~0ull;
      for (int c : unassigned_) {
        const std::uint64_t key = select_key_[static_cast<std::size_t>(c)];
        if (key < best_key) best_key = key;
      }
      return best_key == ~0ull ? -1
                               : static_cast<int>(best_key & 0xFFFFF);
    }
    int best = -1;
    long best_score = 0;
    for (int c : unassigned_) {
      const std::size_t cs = static_cast<std::size_t>(c);
      const long window = lst_[cs] - est_[cs] + 1;
      const long vendors =
          static_cast<long>(__builtin_popcountll(allowed_mask_[cs]));
      const long score = window * vendors;
      if (best < 0 || score < best_score ||
          (score == best_score &&
           (degree_[cs] > degree_[static_cast<std::size_t>(best)] ||
            (degree_[cs] == degree_[static_cast<std::size_t>(best)] &&
             c < best)))) {
        best = c;
        best_score = score;
      }
    }
    return best;
  }

  void remove_unassigned(int copy) {
    const std::size_t pos =
        static_cast<std::size_t>(unassigned_pos_[static_cast<std::size_t>(
            copy)]);
    const int moved = unassigned_.back();
    unassigned_[pos] = moved;
    unassigned_pos_[static_cast<std::size_t>(moved)] = static_cast<int>(pos);
    unassigned_.pop_back();
  }

  // Exact inverse of remove_unassigned under the search's LIFO discipline:
  // unassigned_pos_[copy] still names the slot it vacated.
  void restore_unassigned(int copy) {
    const std::size_t pos =
        static_cast<std::size_t>(unassigned_pos_[static_cast<std::size_t>(
            copy)]);
    if (pos == unassigned_.size()) {
      unassigned_.push_back(copy);
      return;
    }
    const int moved = unassigned_[pos];
    unassigned_.push_back(moved);
    unassigned_pos_[static_cast<std::size_t>(moved)] =
        static_cast<int>(unassigned_.size()) - 1;
    unassigned_[pos] = copy;
  }

  struct Value {
    long long area_delta;
    std::uint64_t order_key;  // cycle << 8 | vendor_rank, packed at push
    int cycle;
    int vendor;
  };

  /// A per-depth segment of the contiguous value arena.
  struct ValueSpan {
    Value* data;
    int count;
    Value* begin() const { return data; }
    Value* end() const { return data + count; }
  };

  // Values ordered by (area_delta, cycle, vendor preference): no added area
  // first, then earlier cycles, then lower vendor rank. vendor_rank_ is the
  // identity on the first descent of every solve (and always, with seed 0),
  // which is the historical canonical order; restarts with a nonzero seed
  // permute it deterministically per segment. The (cycle, rank) tail of the
  // comparator is hoisted into one packed key per candidate at push time —
  // rank is a permutation, so (area_delta, order_key) sorts identically to
  // the historical three-way comparator without re-ranking per comparison.
  // Culprits for values pruned here go to `conf` (nullable) just like
  // assign-time failures.
  ValueSpan enumerate_values(int copy, std::size_t depth, Conf* conf) {
    Value* const out = value_arena_.data() + depth * value_cap_;
    int count = 0;
    const CopyMeta& meta = copies_[static_cast<std::size_t>(copy)];
    const std::uint64_t allowed =
        allowed_mask_[static_cast<std::size_t>(copy)];
    const int cap = class_cap_[static_cast<std::size_t>(meta.cls)];
    const int pk_base_lo = est_[static_cast<std::size_t>(copy)];
    const int pk_base_hi = lst_[static_cast<std::size_t>(copy)];
    const std::size_t row0 = usage_row_index(meta.phase, 0, meta.cls);
    for (std::uint64_t bits = allowed; bits != 0; bits &= bits - 1) {
      const int v = __builtin_ctzll(bits);
      const int* const row =
          usage_.data() + row0 +
          static_cast<std::size_t>(v) * usage_vstride_;
      const int pk = peak_[static_cast<std::size_t>(v) *
                               dfg::kNumResourceClasses +
                           static_cast<std::size_t>(meta.cls)];
      const long long area_each =
          offer_area_[static_cast<std::size_t>(meta.cls)]
                     [static_cast<std::size_t>(v)];
      const std::uint64_t rank =
          static_cast<std::uint64_t>(
              vendor_rank_[static_cast<std::size_t>(v)]);
      for (int cycle = pk_base_lo; cycle <= pk_base_hi; ++cycle) {
        // Instances required over the occupancy interval: one above the
        // row's current skyline there.
        const int needed =
            (meta.latency == 1 ? row[cycle - 1]
                               : row_peak(row, cycle, meta.latency)) +
            1;
        long long area_delta = 0;
        if (needed > pk) {
          if (needed > cap) {
            if (conf != nullptr) {
              // The occupiers of the fullest busy cycle alone exclude
              // this value.
              for (int busy = cycle; busy < cycle + meta.latency; ++busy) {
                if (row[busy - 1] == needed - 1) {
                  conf_add_cell(*conf, meta.phase, v, meta.cls, busy);
                  break;
                }
              }
            }
            continue;
          }
          area_delta = static_cast<long long>(needed - pk) * area_each;
          if (area_committed_ + area_delta > spec_.area_limit) {
            if (conf != nullptr) conf_add_all_assigned(*conf, copy);
            continue;
          }
        }
        out[count++] =
            Value{area_delta,
                  (static_cast<std::uint64_t>(cycle) << 8) | rank, cycle, v};
      }
    }
    std::sort(out, out + count, [](const Value& a, const Value& b) {
      if (a.area_delta != b.area_delta) return a.area_delta < b.area_delta;
      return a.order_key < b.order_key;
    });
    return ValueSpan{out, count};
  }

  /// In-place stable filter of a root span to the restricted value block;
  /// returns the surviving count.
  int filter_root_values(ValueSpan values) const {
    Value* out = values.data;
    for (Value* v = values.data; v != values.data + values.count; ++v) {
      if (std::binary_search(root_values_.begin(), root_values_.end(),
                             std::make_pair(v->cycle, v->vendor))) {
        *out++ = *v;
      }
    }
    return static_cast<int>(out - values.data);
  }

  /// Seed-dependent vendor preference for restart segment segment_index_.
  /// Seed 0 (and segment 0, by construction of the run loop) keeps the
  /// canonical identity ranking.
  void apply_rotation() {
    for (int i = 0; i < kMaxVendors; ++i) vendor_rank_[i] = i;
    if (options_.seed == 0) return;
    std::uint64_t state =
        options_.seed ^
        (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(segment_index_));
    for (int i = kMaxVendors - 1; i > 0; --i) {
      const int j = static_cast<int>(
          splitmix64(state) % static_cast<std::uint64_t>(i + 1));
      std::swap(vendor_rank_[static_cast<std::size_t>(i)],
                vendor_rank_[static_cast<std::size_t>(j)]);
    }
  }

  Outcome dfs(std::size_t depth) {
    if (++nodes_ > options_.max_nodes) return Outcome::kNodeLimit;
    if (segment_limit_ > 0 && nodes_ > segment_limit_ && depth > 0) {
      return Outcome::kRestart;
    }
    if ((nodes_ & 0x3ff) == 0) {
      if ((options_.cancel != nullptr && options_.cancel->cancelled()) ||
          (internal_cancel_ != nullptr && internal_cancel_->cancelled())) {
        return Outcome::kCancelled;
      }
      if (Clock::now() >= deadline_) return Outcome::kTimeout;
    }
    const bool at_restricted_root = depth == 0 && root_copy_ >= 0;
    const int copy = at_restricted_root ? root_copy_ : select_variable();
    if (copy < 0) return Outcome::kSolved;  // everything assigned
    remove_unassigned(copy);

    Conf* conf = nullptr;
    if (learning_) {
      conf = &conf_pool_[depth];
      conf->reset();
      seed_domain_culprits(copy, *conf);
    }
    ValueSpan values = enumerate_values(copy, depth, conf);
    if (at_restricted_root) values.count = filter_root_values(values);

    for (const Value& value : values) {
      const Mark m = mark();
      if (assign(copy, value.cycle, value.vendor, conf)) {
        const Outcome outcome = dfs(depth + 1);
        if (outcome == Outcome::kExhausted && learning_) {
          if (!conf_test(jump_conf_, copy)) {
            // The subtree's wipeout does not mention our decision: no
            // sibling value of ours can repair it. Jump straight past
            // this level, handing the same explanation upward.
            rewind(m);
            restore_unassigned(copy);
            ++backjumps_;
            return Outcome::kExhausted;
          }
          conf_clear_bit(jump_conf_, copy);
          for (std::size_t w = 0; w < words_; ++w) {
            conf->word_ref(w) |= jump_conf_[w];
          }
        } else if (outcome == Outcome::kRestart) {
          rewind(m);
          restore_unassigned(copy);
          return Outcome::kRestart;
        } else if (outcome != Outcome::kExhausted) {
          return outcome;  // solved, or a limit: state is kept / discarded
        }
      }
      rewind(m);
    }
    restore_unassigned(copy);
    if (learning_) {
      conf->clear(static_cast<std::size_t>(copy));  // never our own decision
      // A restricted root only exhausted its block of values, which proves
      // nothing about the full domain — no nogood, and no parent anyway.
      if (!at_restricted_root) maybe_learn(*conf);
      for (std::size_t w = 0; w < words_; ++w) {
        jump_conf_[w] = conf->word_value(w);
      }
    }
    return Outcome::kExhausted;
  }

  Solution extract_solution() {
    Solution solution(spec_.graph.num_ops(), spec_.with_recovery);
    // Instances of one offer are interchangeable; pack the (possibly
    // multi-cycle) occupancy intervals per (phase, vendor, class) onto
    // instance indices with greedy interval scheduling — the instance
    // count realized equals the peak tracked during search.
    std::map<std::tuple<int, int, int>, std::vector<std::size_t>> groups;
    for (std::size_t c = 0; c < copies_.size(); ++c) {
      util::check_internal(assigned_cycle_[c] >= 1 && assigned_vendor_[c] >= 0,
                           "csp: extracting incomplete assignment");
      groups[{copies_[c].phase, assigned_vendor_[c], copies_[c].cls}]
          .push_back(c);
    }
    for (auto& [key, group] : groups) {
      (void)key;
      std::sort(group.begin(), group.end(),
                [&](std::size_t a, std::size_t b) {
                  return assigned_cycle_[a] < assigned_cycle_[b];
                });
      std::vector<int> instance_free_at;
      for (std::size_t c : group) {
        const CopyMeta& meta = copies_[c];
        const int start = assigned_cycle_[c];
        const int finish = start + meta.latency;
        int chosen = -1;
        for (std::size_t i = 0; i < instance_free_at.size(); ++i) {
          if (instance_free_at[i] <= start) {
            chosen = static_cast<int>(i);
            break;
          }
        }
        if (chosen < 0) {
          chosen = static_cast<int>(instance_free_at.size());
          instance_free_at.push_back(0);
        }
        instance_free_at[static_cast<std::size_t>(chosen)] = finish;
        solution.at(meta.kind, meta.op) =
            Binding{start, assigned_vendor_[c], chosen};
      }
    }
    return solution;
  }

  const ProblemSpec& spec_;
  const CspOptions& options_;
  const bool learning_;

  std::vector<CopyMeta> copies_;
  std::map<CopyRef, int> copy_of_;
  int max_lambda_ = 0;

  std::vector<int> est_, lst_;
  std::vector<std::vector<int>> parents_, children_;  // same-schedule deps
  std::vector<std::vector<int>> neighbors_;           // vendor conflicts
  std::vector<int> degree_;
  std::array<std::uint64_t, dfg::kNumResourceClasses> palette_mask_{};
  std::array<std::array<long long, kMaxVendors>, dfg::kNumResourceClasses>
      offer_area_{};

  std::vector<int> forbid_count_;
  std::vector<std::uint64_t> allowed_mask_;  // palette minus forbidden, live
  std::vector<int> assigned_cycle_, assigned_vendor_;
  std::vector<int> unassigned_;      // swap-remove list for select_variable
  std::vector<int> unassigned_pos_;  // copy -> slot in unassigned_
  std::vector<int> usage_;
  std::size_t usage_vstride_ = 0;  // usage_ stride between vendors
  std::vector<int> peak_;
  /// spec_.instance_cap per class, cached: the cap sits on the per-cycle
  /// usage loop and the value enumeration, too hot for an out-of-line call.
  std::array<int, dfg::kNumResourceClasses> class_cap_{};
  long long area_committed_ = 0;

  std::vector<std::pair<int*, int>> trail_;
  std::vector<std::pair<long long*, long long>> trail_ll_;
  std::vector<std::pair<std::uint64_t*, std::uint64_t>> trail_u64_;
  // Depth-major contiguous value storage: slot `depth * value_cap_` holds
  // that depth's candidate list. Sized once at construction and never
  // reallocated (dfs holds spans into it across recursion).
  std::vector<Value> value_arena_;
  std::size_t value_cap_ = 0;  // per-depth capacity (largest root domain)

  // Packed-path gates (see the constructor's guard block).
  bool packed_ok_ = false;   // cycles/copies/degrees fit the packed formats
  bool flat_sel_ = false;    // packed-key variable selection active
  std::vector<std::uint64_t> select_static_;  // (~degree):20 | copy:20
  std::vector<std::uint64_t> select_key_;     // see select_key_of

  // Conflict-directed state (allocated only with learning on).
  std::size_t words_ = 0;            // bitset words per conflict set
  std::vector<Conf> conf_pool_;      // per-depth conflict sets
  ConfWords jump_conf_;              // wipeout explanation in flight upward
  ConfWords assigned_bits_;          // bitset of assigned copies
  std::vector<std::uint64_t> occ_;   // per usage cell: occupier bitset
  std::vector<int> forbid_setter_;   // (copy, vendor) -> first forbidder
  std::vector<int> est_setter_, lst_setter_;  // copy -> window tightener
  std::vector<CspNogood> nogoods_;   // imported prefix + learned
  std::vector<std::vector<int>> by_copy_;  // copy -> nogood ids touching it
  std::vector<std::vector<std::uint64_t>> by_copy_packed_;  // pack_lit mirror
  std::unordered_set<std::uint64_t> nogood_hashes_;
  int imported_count_ = 0;
  int learned_count_ = 0;

  // True-literal-counter index (flat mode only; see counter_blocks).
  bool flat_mode_ = false;
  std::vector<std::vector<CntRef>> cnt_buckets_;  // copy*kMaxVendors+v
  std::vector<int> ng_count_;                // id -> (upper bound on) trues
  std::vector<std::vector<GroupRef>> ng_entries_;  // id -> indexed groups

  // Two-watched-literal index (watch mode only; see watched_blocks).
  struct WatchRef {
    int id = 0;    // nogood id
    int slot = 0;  // which of the nogood's two watches (0/1)
    int li = 0;    // literal index the watch pointed at when enqueued;
                   // a mismatch with watch_lit_ marks the entry stale
  };
  bool watch_mode_ = false;
  std::vector<std::vector<WatchRef>> watch_buckets_;  // copy*kMaxVendors+v
  std::vector<std::array<int, 2>> watch_lit_;  // id -> watched literal idxs
  std::vector<long> assign_stamp_;  // copy -> counter at last commit
  long stamp_counter_ = 0;
  long watch_visits_ = 0;

  // Nogood-propagation metrics (see assign()). The binding is sampled at
  // construction: a split-solve pool lane has no bound sink, so its blocks
  // record nothing — the documented caveat of the sampled aggregate.
  const bool record_obs_ = obs::bound_metrics() != nullptr;
  long long ng_checks_ = 0;
  long long ng_sampled_ns_ = 0;

  std::array<int, kMaxVendors> vendor_rank_{};
  long segment_index_ = 0;
  long segment_limit_ = 0;  // nodes_ bound of the current Luby segment
  long nodes_ = 0;
  long backjumps_ = 0;
  long restarts_ = 0;
  Clock::time_point deadline_{};
  const util::CancelToken* internal_cancel_ = nullptr;
  int root_copy_ = -1;
  std::vector<std::pair<int, int>> root_values_;  // sorted (cycle, vendor)
};

/// Deterministic subtree splitting: partition the canonical root value list
/// into contiguous blocks, solve each independently (optionally on a thread
/// pool), and commit the lowest-index solved block. Blocks at or below the
/// winner always run to completion, so the committed solution — and the
/// exported nogood set — is identical for every lane count.
CspResult split_solve(const ProblemSpec& spec, const Palettes& palettes,
                      const CspOptions& options) {
  RootPlan plan;
  {
    Search probe(spec, palettes, options);
    plan = probe.plan_root();
  }
  if (plan.infeasible || (plan.copy >= 0 && plan.values.empty())) {
    CspResult result;
    result.status = CspResult::Status::kInfeasible;
    return result;
  }
  const int blocks =
      plan.copy < 0 ? 1
                    : static_cast<int>(std::min<std::size_t>(
                          static_cast<std::size_t>(options.subtree_split),
                          plan.values.size()));
  if (blocks <= 1) {
    Search search(spec, palettes, options);
    return search.run();
  }

  // Contiguous partition of the canonical value order: a function of spec
  // and palette only.
  std::vector<std::vector<std::pair<int, int>>> parts(
      static_cast<std::size_t>(blocks));
  const std::size_t total_values = plan.values.size();
  const std::size_t base = total_values / static_cast<std::size_t>(blocks);
  const std::size_t extra = total_values % static_cast<std::size_t>(blocks);
  std::size_t pos = 0;
  for (int b = 0; b < blocks; ++b) {
    const std::size_t len = base + (static_cast<std::size_t>(b) < extra);
    parts[static_cast<std::size_t>(b)].assign(
        plan.values.begin() + static_cast<std::ptrdiff_t>(pos),
        plan.values.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
  }

  CspOptions block_options = options;
  block_options.subtree_split = 1;
  block_options.max_nodes =
      std::max<long>(1000, options.max_nodes / blocks);

  std::vector<util::CancelToken> tokens(static_cast<std::size_t>(blocks));
  std::vector<CspResult> results(static_cast<std::size_t>(blocks));
  std::vector<char> ran(static_cast<std::size_t>(blocks), 0);
  std::mutex mutex;
  int min_solved = blocks;  // lowest block index with a solution so far
  std::atomic<int> next{0};

  const auto lane = [&] {
    for (;;) {
      const int b = next.fetch_add(1, std::memory_order_relaxed);
      if (b >= blocks) return;
      {
        std::lock_guard<std::mutex> lock(mutex);
        // A lower block already solved: this block can never win, and
        // skipping it is deterministic (min_solved only decreases, so a
        // skipped block is always above the final winner).
        if (b > min_solved) continue;
      }
      Search search(spec, palettes, block_options);
      search.set_internal_cancel(&tokens[static_cast<std::size_t>(b)]);
      search.restrict_root(plan.copy, parts[static_cast<std::size_t>(b)]);
      CspResult result = search.run();
      std::lock_guard<std::mutex> lock(mutex);
      if (result.status == CspResult::Status::kFeasible && b < min_solved) {
        min_solved = b;
        // Higher blocks can no longer win; lower ones keep running so the
        // final winner never depends on timing.
        for (int j = b + 1; j < blocks; ++j) {
          tokens[static_cast<std::size_t>(j)].request_cancel();
        }
      }
      results[static_cast<std::size_t>(b)] = std::move(result);
      ran[static_cast<std::size_t>(b)] = 1;
    }
  };

  const int lanes = std::clamp(options.split_threads, 1, blocks);
  if (lanes <= 1) {
    lane();
  } else {
    util::ThreadPool pool(lanes - 1);
    util::TaskGroup group(pool);
    for (int i = 0; i < lanes - 1; ++i) group.run(lane);
    lane();
    group.wait();
  }

  CspResult out;
  const bool solved = min_solved < blocks;
  // Stats cover exactly the blocks whose completion is deterministic: the
  // winner and everything below it, or all blocks when nothing solved
  // (then nothing was skipped or internally cancelled).
  const int stat_hi = solved ? min_solved : blocks - 1;
  for (int b = 0; b <= stat_hi; ++b) {
    if (!ran[static_cast<std::size_t>(b)]) continue;
    out.nodes += results[static_cast<std::size_t>(b)].nodes;
    out.backjumps += results[static_cast<std::size_t>(b)].backjumps;
    out.restarts += results[static_cast<std::size_t>(b)].restarts;
    out.watch_visits += results[static_cast<std::size_t>(b)].watch_visits;
  }
  bool truncated = false;  // a contributing block hit the clock or a cancel
  for (int b = 0; b <= stat_hi; ++b) {
    const CspResult::Status s = results[static_cast<std::size_t>(b)].status;
    if (s == CspResult::Status::kTimeout ||
        s == CspResult::Status::kCancelled) {
      truncated = true;
    }
  }
  if (solved) {
    out.status = CspResult::Status::kFeasible;
    out.solution = results[static_cast<std::size_t>(min_solved)].solution;
  } else {
    bool any_cancel = false, any_timeout = false, any_nodelimit = false;
    for (int b = 0; b < blocks; ++b) {
      switch (results[static_cast<std::size_t>(b)].status) {
        case CspResult::Status::kCancelled: any_cancel = true; break;
        case CspResult::Status::kTimeout: any_timeout = true; break;
        case CspResult::Status::kNodeLimit: any_nodelimit = true; break;
        default: break;
      }
    }
    if (any_cancel) {
      out.status = CspResult::Status::kCancelled;
    } else if (any_timeout) {
      out.status = CspResult::Status::kTimeout;
    } else if (any_nodelimit) {
      out.status = CspResult::Status::kNodeLimit;
    } else {
      // Every block exhausted its slice of the root domain, and the
      // slices partition it: a complete infeasibility proof.
      out.status = CspResult::Status::kInfeasible;
    }
  }
  if (!truncated && out.status != CspResult::Status::kCancelled &&
      out.status != CspResult::Status::kTimeout) {
    for (int b = 0; b <= stat_hi; ++b) {
      const std::vector<CspNogood>& learned =
          results[static_cast<std::size_t>(b)].learned;
      out.learned.insert(out.learned.end(), learned.begin(), learned.end());
    }
  }
  return out;
}

}  // namespace

CspResult schedule_and_bind(const ProblemSpec& spec, const Palettes& palettes,
                            const CspOptions& options) {
  spec.validate();
  HT_TRACE_SPAN("csp/solve", "max_nodes", options.max_nodes);
  if (options.subtree_split > 1) return split_solve(spec, palettes, options);
  Search search(spec, palettes, options);
  return search.run();
}

}  // namespace ht::core
